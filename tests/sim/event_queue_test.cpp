#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ccredf::sim {
namespace {

using namespace ccredf::sim::literals;

TimePoint at(Duration d) { return TimePoint::origin() + d; }

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), TimePoint::infinity());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at(30_ns), [&] { fired.push_back(3); });
  q.schedule(at(10_ns), [&] { fired.push_back(1); });
  q.schedule(at(20_ns), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5_ns), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsEventTime) {
  EventQueue q;
  q.schedule(at(42_ns), [] {});
  const auto ev = q.pop();
  EXPECT_EQ(ev.time, at(42_ns));
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(at(50_ns), [] {});
  EXPECT_EQ(q.next_time(), at(50_ns));
  q.schedule(at(20_ns), [] {});
  EXPECT_EQ(q.next_time(), at(20_ns));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(at(10_ns), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(at(10_ns), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> fired;
  const EventId first = q.schedule(at(10_ns), [&] { fired.push_back(1); });
  q.schedule(at(20_ns), [&] { fired.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), at(20_ns));
  q.pop().fn();
  EXPECT_EQ(fired, std::vector<int>{2});
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.schedule(at(1_ns), [] {});
  q.schedule(at(2_ns), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), ConfigError);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1'000; ++i) {
    ids.push_back(q.schedule(at(Duration::nanoseconds((i * 7) % 100)), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  TimePoint last = TimePoint::origin();
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto ev = q.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
    ++popped;
  }
  EXPECT_EQ(popped, 1'000u - (1'000u + 2) / 3);
}

}  // namespace
}  // namespace ccredf::sim
