#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace ccredf::sim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 45u);  // not stuck
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.uniform_u64(7), 7u);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng r(1);
  EXPECT_THROW((void)r.uniform_u64(0), ConfigError);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng r(1);
  EXPECT_THROW((void)r.uniform_int(3, 2), ConfigError);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(17);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(1);
  EXPECT_THROW((void)r.exponential(0.0), ConfigError);
  EXPECT_THROW((void)r.exponential(-1.0), ConfigError);
}

TEST(Rng, ExponentialDuration) {
  Rng r(19);
  double sum_ns = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    sum_ns += r.exponential(Duration::nanoseconds(100)).ns();
  }
  EXPECT_NEAR(sum_ns / kN, 100.0, 3.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(31);
  auto p = r.permutation(20);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng r(37);
  const auto p = r.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10u);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(43), b(43);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace ccredf::sim
