#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, WelfordMatchesNaiveOnRandomData) {
  Rng rng(5);
  OnlineStats s;
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.uniform_real(-100.0, 100.0);
    s.add(v);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = (sq - sum * mean) / (kN - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(6);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStats, DurationOverloads) {
  OnlineStats s;
  s.add(Duration::nanoseconds(10));
  s.add(Duration::nanoseconds(20));
  EXPECT_EQ(s.mean_duration(), Duration::nanoseconds(15));
  EXPECT_EQ(s.max_duration(), Duration::nanoseconds(20));
  EXPECT_EQ(s.min_duration(), Duration::nanoseconds(10));
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.9);   // bin 4
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.count(), 3);
}

TEST(Histogram, OutOfRangeSaturates) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(4), 1);
}

TEST(Histogram, ExactQuantilesOnSmallSamples) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
}

TEST(Histogram, QuantileRejectsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_THROW((void)h.quantile(-0.1), ConfigError);
  EXPECT_THROW((void)h.quantile(1.1), ConfigError);
}

TEST(Histogram, BinnedQuantileFallbackAfterCap) {
  Histogram h(0.0, 1000.0, 100);
  Rng rng(8);
  // Exceed the raw-sample cap (2^16) to force the binned path.
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform_real(0.0, 1000.0));
  EXPECT_NEAR(h.quantile(0.5), 500.0, 20.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 20.0);
}

TEST(Histogram, RenderMentionsNonEmptyBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Counter, IncAndReset) {
  Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

}  // namespace
}  // namespace ccredf::sim
