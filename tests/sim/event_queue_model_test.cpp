// Model-based fuzz of EventQueue against a std::multimap reference.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace ccredf::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceOrdering) {
  Rng rng(GetParam());
  EventQueue real;
  // Reference: (time, seq) -> payload; seq encodes insertion order.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> ref;
  std::vector<EventId> live_ids;
  std::vector<std::pair<std::int64_t, std::uint64_t>> id_keys;  // by index
  std::vector<int> fired_real;
  std::uint64_t seq = 0;
  int payload = 0;

  for (int op = 0; op < 5'000; ++op) {
    const auto action = rng.uniform_u64(10);
    if (action < 6) {  // schedule
      const std::int64_t t_ps = rng.uniform_int(0, 1'000);
      const int tag = payload++;
      const EventId id = real.schedule(
          TimePoint::origin() + Duration::picoseconds(t_ps),
          [tag, &fired_real] { fired_real.push_back(tag); });
      ref.emplace(std::pair{t_ps, seq}, tag);
      live_ids.push_back(id);
      id_keys.push_back({t_ps, seq});
      ++seq;
    } else if (action < 8 && !real.empty()) {  // pop
      ASSERT_FALSE(ref.empty());
      const auto ev = real.pop();
      ev.fn();
      const auto it = ref.begin();
      ASSERT_EQ(fired_real.back(), it->second) << "op " << op;
      ASSERT_EQ(ev.time.since_origin().ps(), it->first.first);
      ref.erase(it);
    } else if (!live_ids.empty()) {  // cancel a random id
      const auto idx =
          static_cast<std::size_t>(rng.uniform_u64(live_ids.size()));
      const bool ok = real.cancel(live_ids[idx]);
      // Mirror in the reference: find by exact key + payload unknown --
      // key is unique because seq is unique.
      const auto it = ref.find(id_keys[idx]);
      ASSERT_EQ(ok, it != ref.end()) << "op " << op;
      if (it != ref.end()) ref.erase(it);
    }
    ASSERT_EQ(real.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(real.next_time().since_origin().ps(),
                ref.begin()->first.first);
    } else {
      ASSERT_TRUE(real.empty());
    }
  }
  // Drain and verify final ordering.
  while (!real.empty()) {
    const auto ev = real.pop();
    ev.fn();
    const auto it = ref.begin();
    ASSERT_EQ(fired_real.back(), it->second);
    ref.erase(it);
  }
  ASSERT_TRUE(ref.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ccredf::sim
