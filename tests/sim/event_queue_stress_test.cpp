// Stress the pooled event queue: long interleavings of schedule / cancel
// / pop must preserve (time, scheduling-order) firing, and the slab must
// recycle slots instead of growing without bound.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace ccredf::sim {
namespace {

TimePoint at_ns(std::int64_t ns) {
  return TimePoint::origin() + Duration::nanoseconds(ns);
}

struct Scheduled {
  EventId id = 0;
  std::int64_t time_ns = 0;
  std::uint64_t serial = 0;  // scheduling order, the documented tie-break
  bool cancelled = false;
};

TEST(EventQueueStress, InterleavedScheduleCancelPopKeepsOrder) {
  EventQueue q;
  Rng rng(0xC0FFEE);
  std::vector<Scheduled> pending;
  std::vector<std::uint64_t> fired;  // serials, in pop order
  std::vector<Scheduled> expected;
  std::uint64_t next_serial = 0;
  std::int64_t now_ns = 0;

  for (int round = 0; round < 2'000; ++round) {
    // Schedule a burst; a narrow time range forces plenty of ties.
    const int burst = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < burst; ++i) {
      Scheduled s;
      s.time_ns = now_ns + rng.uniform_int(0, 40);
      s.serial = next_serial++;
      s.id = q.schedule(at_ns(s.time_ns), [&fired, serial = s.serial] {
        fired.push_back(serial);
      });
      pending.push_back(s);
    }
    // Cancel a few pending events at random.
    const int cancels = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < cancels && !pending.empty(); ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      Scheduled& victim = pending[pick];
      EXPECT_TRUE(q.cancel(victim.id));
      EXPECT_FALSE(q.cancel(victim.id));  // second cancel must fail
      victim.cancelled = true;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Pop a few events; the queue decides which fire first.
    const int pops = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < pops && !q.empty(); ++i) {
      const auto ev = q.pop();
      now_ns = std::max(now_ns, (ev.time - TimePoint::origin()).ps() / 1000);
      ev.fn();
    }
    // Firing consumes from `pending` in (time, serial) order.
    std::sort(pending.begin(), pending.end(),
              [](const Scheduled& a, const Scheduled& b) {
                if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                return a.serial < b.serial;
              });
    while (expected.size() < fired.size() && !pending.empty()) {
      expected.push_back(pending.front());
      pending.erase(pending.begin());
    }
  }
  while (!q.empty()) {
    const auto ev = q.pop();
    ev.fn();
  }
  std::sort(pending.begin(), pending.end(),
            [](const Scheduled& a, const Scheduled& b) {
              if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
              return a.serial < b.serial;
            });
  for (const Scheduled& s : pending) expected.push_back(s);

  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].serial) << "position " << i;
  }
}

TEST(EventQueueStress, SlabPlateausUnderSteadyChurn) {
  EventQueue q;
  Rng rng(42);
  std::vector<std::pair<EventId, std::uint64_t>> live;  // (handle, serial)
  std::vector<std::uint64_t> fired;
  std::uint64_t serial = 0;
  std::int64_t t = 0;

  auto churn = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      live.emplace_back(
          q.schedule(at_ns(t + rng.uniform_int(1, 100)),
                     [&fired, s = serial] { fired.push_back(s); }),
          serial);
      ++serial;
      // Retire one event whenever the pending population tops 64; half
      // the turnover goes through cancel, half through pop.
      if (live.size() > 64) {
        if (rng.bernoulli(0.5)) {
          const auto pick = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          EXPECT_TRUE(q.cancel(live[pick].first));
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          fired.clear();
          const auto ev = q.pop();
          t = std::max(t, (ev.time - TimePoint::origin()).ps() / 1000);
          ev.fn();
          ASSERT_EQ(fired.size(), 1u);
          std::erase_if(live, [&](const auto& e) {
            return e.second == fired.front();
          });
        }
      }
      ASSERT_EQ(q.size(), live.size());
    }
  };

  churn(2'000);  // warm-up: reach the peak pending population
  const std::size_t plateau = q.slab_slots();
  churn(20'000);
  EXPECT_EQ(q.slab_slots(), plateau)
      << "slab grew under steady churn: slots are not being recycled";
}

}  // namespace
}  // namespace ccredf::sim
