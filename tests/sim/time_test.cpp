#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccredf::sim {
namespace {

using namespace ccredf::sim::literals;

TEST(Duration, UnitConstructorsAgree) {
  EXPECT_EQ(Duration::nanoseconds(1).ps(), 1'000);
  EXPECT_EQ(Duration::microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(Duration::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(Duration::seconds(1).ps(), 1'000'000'000'000);
}

TEST(Duration, LiteralsMatchFactories) {
  EXPECT_EQ(5_ns, Duration::nanoseconds(5));
  EXPECT_EQ(7_us, Duration::microseconds(7));
  EXPECT_EQ(3_ms, Duration::milliseconds(3));
  EXPECT_EQ(2_s, Duration::seconds(2));
  EXPECT_EQ(9_ps, Duration::picoseconds(9));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(3_ns + 2_ns, 5_ns);
  EXPECT_EQ(3_ns - 2_ns, 1_ns);
  EXPECT_EQ(3_ns * 4, 12_ns);
  EXPECT_EQ(4 * 3_ns, 12_ns);
  EXPECT_EQ(12_ns / 4, 3_ns);
  EXPECT_EQ(-(3_ns), Duration::nanoseconds(-3));
}

TEST(Duration, IntegerRatioAndRemainder) {
  EXPECT_EQ(10_ns / (3_ns), 3);
  EXPECT_EQ(10_ns % (3_ns), 1_ns);
  EXPECT_EQ(9_ns / (3_ns), 3);
  EXPECT_EQ(9_ns % (3_ns), 0_ps);
}

TEST(Duration, RealRatio) {
  EXPECT_DOUBLE_EQ((1_ns).ratio(2_ns), 0.5);
  EXPECT_DOUBLE_EQ((3_ns).ratio(3_ns), 1.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_GT(1_us, 999_ns);
  EXPECT_LE(1_ns, 1_ns);
  EXPECT_LT(1_ms, Duration::infinity());
}

TEST(Duration, CompoundAssignment) {
  Duration d = 5_ns;
  d += 3_ns;
  EXPECT_EQ(d, 8_ns);
  d -= 7_ns;
  EXPECT_EQ(d, 1_ns);
}

TEST(Duration, ConversionAccessors) {
  EXPECT_DOUBLE_EQ((1500_ps).ns(), 1.5);
  EXPECT_DOUBLE_EQ((2500_ns).us(), 2.5);
  EXPECT_DOUBLE_EQ((3500_us).ms(), 3.5);
  EXPECT_DOUBLE_EQ((4500_ms).s(), 4.5);
}

TEST(TimePoint, OriginAndAdvance) {
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.ps(), 0);
  const TimePoint t1 = t0 + 5_ns;
  EXPECT_EQ((t1 - t0), 5_ns);
  EXPECT_LT(t0, t1);
  EXPECT_LT(t1, TimePoint::infinity());
}

TEST(TimePoint, AtSinceOriginRoundTrip) {
  const TimePoint t = TimePoint::at(123_us);
  EXPECT_EQ(t.since_origin(), 123_us);
}

TEST(TimePoint, CompoundAdd) {
  TimePoint t = TimePoint::origin();
  t += 4_ns;
  EXPECT_EQ(t.since_origin(), 4_ns);
}

TEST(TimeFormat, StreamsHumanReadable) {
  std::ostringstream os;
  os << 1500_ps;
  EXPECT_EQ(os.str(), "1500ps");
  os.str("");
  os << 150_ns;
  EXPECT_EQ(os.str(), "150ns");
  os.str("");
  os << 15_us;
  EXPECT_NE(os.str().find("us"), std::string::npos);
}

TEST(TimeFormat, TimePointPrefixed) {
  std::ostringstream os;
  os << TimePoint::origin() + 3_ns;
  EXPECT_EQ(os.str().rfind("t+", 0), 0u);
}

}  // namespace
}  // namespace ccredf::sim
