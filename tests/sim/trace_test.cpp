#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccredf::sim {
namespace {

using namespace ccredf::sim::literals;

TimePoint at(Duration d) { return TimePoint::origin() + d; }

TEST(Trace, DisabledByDefault) {
  Trace t;
  t.set_capture(true);
  bool evaluated = false;
  t.emit(at(1_ns), TraceCategory::kSlot, [&] {
    evaluated = true;
    return "x";
  });
  EXPECT_FALSE(evaluated);  // zero-cost when category disabled
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CapturesWhenEnabled) {
  Trace t;
  t.set_capture(true);
  t.enable(TraceCategory::kSlot);
  t.emit(at(5_ns), TraceCategory::kSlot, [] { return "slot event"; });
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].text, "slot event");
  EXPECT_EQ(t.records()[0].time, at(5_ns));
  EXPECT_EQ(t.records()[0].category, TraceCategory::kSlot);
}

TEST(Trace, CategoryFiltering) {
  Trace t;
  t.set_capture(true);
  t.enable(TraceCategory::kFault);
  t.emit(at(1_ns), TraceCategory::kSlot, [] { return "no"; });
  t.emit(at(2_ns), TraceCategory::kFault, [] { return "yes"; });
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].text, "yes");
}

TEST(Trace, EnableAllDisableAll) {
  Trace t;
  t.enable_all();
  for (const auto c :
       {TraceCategory::kSlot, TraceCategory::kArbitration,
        TraceCategory::kData, TraceCategory::kService,
        TraceCategory::kFault, TraceCategory::kAdmission}) {
    EXPECT_TRUE(t.enabled(c));
  }
  t.disable_all();
  EXPECT_FALSE(t.enabled(TraceCategory::kSlot));
}

TEST(Trace, DisableSingleCategory) {
  Trace t;
  t.enable_all();
  t.disable(TraceCategory::kData);
  EXPECT_FALSE(t.enabled(TraceCategory::kData));
  EXPECT_TRUE(t.enabled(TraceCategory::kSlot));
}

TEST(Trace, StreamsFormattedOutput) {
  Trace t;
  std::ostringstream os;
  t.set_stream(&os);
  t.enable(TraceCategory::kAdmission);
  t.emit(at(3_ns), TraceCategory::kAdmission, [] { return "admitted c1"; });
  const std::string out = os.str();
  EXPECT_NE(out.find("[adm]"), std::string::npos);
  EXPECT_NE(out.find("admitted c1"), std::string::npos);
}

TEST(Trace, ClearResetsRecords) {
  Trace t;
  t.set_capture(true);
  t.enable(TraceCategory::kSlot);
  t.emit(at(1_ns), TraceCategory::kSlot, [] { return "a"; });
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace ccredf::sim
