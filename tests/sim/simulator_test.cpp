#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ccredf::sim {
namespace {

using namespace ccredf::sim::literals;

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::origin());
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ScheduleInFiresAtRightTime) {
  Simulator s;
  TimePoint fired_at;
  s.schedule_in(10_ns, [&] { fired_at = s.now(); });
  s.run_until(TimePoint::origin() + 20_ns);
  EXPECT_EQ(fired_at, TimePoint::origin() + 10_ns);
  EXPECT_EQ(s.now(), TimePoint::origin() + 20_ns);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  bool ran = false;
  s.schedule_in(50_ns, [&] { ran = true; });
  const std::size_t fired = s.run_until(TimePoint::origin() + 10_ns);
  EXPECT_EQ(fired, 0u);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(s.idle());
  EXPECT_EQ(s.now(), TimePoint::origin() + 10_ns);
}

TEST(Simulator, EventAtHorizonFires) {
  Simulator s;
  bool ran = false;
  s.schedule_in(10_ns, [&] { ran = true; });
  s.run_until(TimePoint::origin() + 10_ns);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsChainRecursively) {
  Simulator s;
  std::vector<std::int64_t> times;
  std::function<void()> tick = [&] {
    times.push_back(s.now().since_origin().ps());
    if (times.size() < 5) s.schedule_in(10_ns, tick);
  };
  s.schedule_in(10_ns, tick);
  s.run_all();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], static_cast<std::int64_t>(10'000 * (i + 1)));
  }
}

TEST(Simulator, CannotSchedulePast) {
  Simulator s;
  s.schedule_in(5_ns, [] {});
  s.run_until(TimePoint::origin() + 10_ns);
  EXPECT_THROW(s.schedule_at(TimePoint::origin() + 5_ns, [] {}),
               ConfigError);
  EXPECT_THROW(s.schedule_in(Duration::nanoseconds(-1), [] {}), ConfigError);
}

TEST(Simulator, CancelWorks) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_in(10_ns, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, AdvanceToMovesClockForwardOnly) {
  Simulator s;
  s.advance_to(TimePoint::origin() + 10_ns);
  EXPECT_EQ(s.now(), TimePoint::origin() + 10_ns);
  EXPECT_THROW(s.advance_to(TimePoint::origin() + 5_ns), ConfigError);
}

TEST(Simulator, RunAllCountsEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_in(Duration::nanoseconds(i), [] {});
  EXPECT_EQ(s.run_all(), 7u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, NextEventTime) {
  Simulator s;
  EXPECT_EQ(s.next_event_time(), TimePoint::infinity());
  s.schedule_in(3_ns, [] {});
  EXPECT_EQ(s.next_event_time(), TimePoint::origin() + 3_ns);
}

TEST(Simulator, EventScheduledDuringRunAtSameHorizonFires) {
  Simulator s;
  bool inner = false;
  s.schedule_in(5_ns, [&] { s.schedule_in(0_ps, [&] { inner = true; }); });
  s.run_until(TimePoint::origin() + 5_ns);
  EXPECT_TRUE(inner);
}

}  // namespace
}  // namespace ccredf::sim
