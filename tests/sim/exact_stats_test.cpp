// ExactStats: the integer-moment accumulator behind the slot engine's
// O(1) fast-forward.  The load-bearing property is BITWISE equivalence:
// add_n(x, k) must leave every derived statistic -- including the
// floating-point views -- identical to k sequential add(x) calls, for
// any interleaving with other samples.  DESIGN.md section 8 leans on
// this to batch idle slots without perturbing golden statistics.
#include "sim/stats.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace ccredf::sim {
namespace {

// Bitwise double comparison: EXPECT_EQ would accept -0.0 == 0.0 and
// reject NaN == NaN; the fast-forward contract is stricter than either.
::testing::AssertionResult same_bits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  if (ua == ub) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in their bit patterns";
}

void expect_identical(const ExactStats& a, const ExactStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum_exact(), b.sum_exact());
  EXPECT_TRUE(same_bits(a.sum(), b.sum()));
  EXPECT_TRUE(same_bits(a.mean(), b.mean()));
  EXPECT_TRUE(same_bits(a.variance(), b.variance()));
  EXPECT_TRUE(same_bits(a.stddev(), b.stddev()));
  EXPECT_TRUE(same_bits(a.min(), b.min()));
  EXPECT_TRUE(same_bits(a.max(), b.max()));
}

TEST(ExactStats, EmptyAccumulatorIsAllZero) {
  const ExactStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.sum_exact(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean_duration(), Duration::zero());
  EXPECT_EQ(s.min_duration(), Duration::zero());
  EXPECT_EQ(s.max_duration(), Duration::zero());
}

TEST(ExactStats, MomentsMatchHandComputation) {
  ExactStats s;
  for (const std::int64_t x : {2, 4, 4, 4, 5, 5, 7, 9}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_EQ(s.sum_exact(), 40);
  EXPECT_EQ(s.mean(), 5.0);
  // Sample variance: sum((x - 5)^2) = 32, / (n - 1) = 32 / 7.
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(ExactStats, AddNIsBitwiseKSequentialAdds) {
  // Interleave batched and sequential insertion of the same sample
  // stream, including negative values and k == 1 batches.
  const struct {
    std::int64_t x;
    std::int64_t k;
  } stream[] = {{116'100, 1},  {0, 250},    {-37, 3},
                {5'812'500, 7}, {116'100, 41}, {1, 1}};
  ExactStats batched;
  ExactStats sequential;
  for (const auto& [x, k] : stream) {
    batched.add_n(x, k);
    for (std::int64_t i = 0; i < k; ++i) sequential.add(x);
  }
  expect_identical(batched, sequential);
}

TEST(ExactStats, AddNIgnoresNonPositiveCounts) {
  ExactStats s;
  s.add_n(42, 0);
  s.add_n(42, -3);
  EXPECT_EQ(s.count(), 0);
  s.add(7);
  s.add_n(9, 0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.sum_exact(), 7);
  EXPECT_EQ(s.max(), 7.0);  // the k <= 0 calls must not touch min/max
  EXPECT_EQ(s.min(), 7.0);
}

TEST(ExactStats, DurationOverloadAccumulatesPicoseconds) {
  ExactStats s;
  s.add(Duration::picoseconds(1500));
  s.add_n(Duration::picoseconds(1500).ps(), 2);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.sum_exact(), 4500);
  EXPECT_EQ(s.mean_duration(), Duration::picoseconds(1500));
  EXPECT_EQ(s.min_duration(), Duration::picoseconds(1500));
  EXPECT_EQ(s.max_duration(), Duration::picoseconds(1500));
}

TEST(ExactStats, MergeMatchesSequentialInsertionBitwise) {
  // Exactness makes the merge order invisible -- unlike OnlineStats,
  // whose Welford fold is order-sensitive in the last ulps.
  ExactStats left;
  ExactStats right;
  ExactStats all;
  for (std::int64_t x = -100; x <= 100; x += 7) {
    ((x < 0) ? left : right).add(x * x - 3 * x);
    all.add(x * x - 3 * x);
  }
  ExactStats merged = left;
  merged.merge(right);
  expect_identical(merged, all);

  // Merging in the opposite order is just as exact.
  ExactStats flipped = right;
  flipped.merge(left);
  expect_identical(flipped, all);

  // Merging an empty accumulator is the identity.
  merged.merge(ExactStats{});
  expect_identical(merged, all);
}

TEST(ExactStats, SingleSampleHasZeroVariance) {
  ExactStats s;
  s.add(123);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 123.0);
  EXPECT_EQ(s.max(), 123.0);
}

TEST(ExactStats, LargeBatchStaysExact) {
  // A slot engine soak: 10^8 gap samples of ~10^6 ps in one call.  The
  // sum (10^14) and sum of squares (10^20, needs the 128-bit column)
  // must stay exact; Welford would have drifted in the low bits.
  ExactStats s;
  s.add_n(1'000'000, 100'000'000);
  EXPECT_EQ(s.count(), 100'000'000);
  EXPECT_EQ(s.sum_exact(), 100'000'000'000'000);
  EXPECT_EQ(s.mean(), 1'000'000.0);
  EXPECT_EQ(s.variance(), 0.0);
}


// -- ExactQuantiles: nearest-rank quantiles for sweep p50/p99 exports --

TEST(ExactQuantiles, EmptyReturnsZero) {
  ExactQuantiles q;
  EXPECT_EQ(q.count(), 0);
  EXPECT_EQ(q.quantile(0.5), 0);
  EXPECT_EQ(q.quantile(0.99), 0);
}

TEST(ExactQuantiles, NearestRankIsAlwaysASampleValue) {
  // Nearest-rank: the smallest value whose cumulative count reaches
  // ceil(q * n).  For {10, 20, 30, 40}: p25 -> 10, p50 -> 20,
  // p75 -> 30, p100 -> 40; p0 clamps to rank 1.
  ExactQuantiles q;
  for (std::int64_t v : {40, 10, 30, 20}) q.add(v);
  EXPECT_EQ(q.count(), 4);
  EXPECT_EQ(q.distinct(), 4u);
  EXPECT_EQ(q.quantile(0.0), 10);
  EXPECT_EQ(q.quantile(0.25), 10);
  EXPECT_EQ(q.quantile(0.5), 20);
  EXPECT_EQ(q.quantile(0.75), 30);
  EXPECT_EQ(q.quantile(0.99), 40);
  EXPECT_EQ(q.quantile(1.0), 40);
}

TEST(ExactQuantiles, DuplicatesCollapseIntoCounts) {
  ExactQuantiles q;
  q.add(7, 99);
  q.add(5, 1);
  EXPECT_EQ(q.count(), 100);
  EXPECT_EQ(q.distinct(), 2u);
  EXPECT_EQ(q.quantile(0.01), 5);  // rank 1 = the lone 5
  EXPECT_EQ(q.quantile(0.02), 7);
  EXPECT_EQ(q.quantile(0.5), 7);
  EXPECT_EQ(q.quantile(0.99), 7);
}

TEST(ExactQuantiles, OrderInsensitive) {
  // A pure function of the sample multiset: insertion order cannot move
  // any quantile (the property the sweep's byte-determinism rests on).
  ExactQuantiles a;
  ExactQuantiles b;
  const std::vector<std::int64_t> samples = {5, 3, 9, 3, 7, 1, 9, 9, 2, 5};
  for (std::int64_t v : samples) a.add(v);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) b.add(*it);
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(p), b.quantile(p)) << "p = " << p;
  }
}

TEST(ExactQuantiles, MergeMatchesSequentialAddition) {
  // Parallel reduction: shard-and-merge must equal one flat accumulator
  // for every quantile, regardless of the merge order.
  ExactQuantiles flat;
  ExactQuantiles s1;
  ExactQuantiles s2;
  ExactQuantiles s3;
  for (std::int64_t v = 0; v < 300; ++v) {
    const std::int64_t x = (v * 37) % 50;  // repeating values across shards
    flat.add(x);
    (v % 3 == 0 ? s1 : v % 3 == 1 ? s2 : s3).add(x);
  }
  ExactQuantiles merged;
  merged.merge(s3);  // deliberately out of shard order
  merged.merge(s1);
  merged.merge(s2);
  EXPECT_EQ(merged.count(), flat.count());
  EXPECT_EQ(merged.distinct(), flat.distinct());
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile(p), flat.quantile(p)) << "p = " << p;
  }
}

TEST(ExactQuantiles, DurationOverloadUsesPicoseconds) {
  ExactQuantiles q;
  q.add(Duration::microseconds(3));
  q.add(Duration::microseconds(1));
  q.add(Duration::microseconds(2));
  EXPECT_EQ(q.quantile(0.5), Duration::microseconds(2).ps());
}

}  // namespace
}  // namespace ccredf::sim
