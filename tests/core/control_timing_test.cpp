#include "core/control_timing.hpp"

#include <gtest/gtest.h>

#include "core/frames.hpp"
#include "net/network.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;

phy::RingPhy ring8() { return phy::RingPhy(phy::optobus(), 8, 10.0); }

ControlTiming timing8(const phy::RingPhy& r) {
  const FrameCodec codec(8, PriorityLayout{}, false);
  return ControlTiming(&r, codec.collection_bits(),
                       codec.distribution_bits());
}

TEST(ControlTiming, MasterSampledAtSlotStart) {
  const auto r = ring8();
  const auto ct = timing8(r);
  EXPECT_EQ(ct.sample_offset(3, 0), Duration::zero());
}

TEST(ControlTiming, SampleOffsetsAccumulatePropAndPassthrough) {
  const auto r = ring8();
  const auto ct = timing8(r);
  // h hops: 50 ns prop each + 2 passthrough bits (5 ns) each.
  EXPECT_EQ(ct.sample_offset(0, 1), Duration::nanoseconds(55));
  EXPECT_EQ(ct.sample_offset(0, 3), Duration::nanoseconds(165));
  EXPECT_EQ(ct.sample_offset(0, 7), Duration::nanoseconds(385));
}

TEST(ControlTiming, SampleOffsetsMonotoneInHops) {
  const auto r = ring8();
  const auto ct = timing8(r);
  for (NodeId h = 1; h < 8; ++h) {
    EXPECT_GT(ct.sample_offset(2, h), ct.sample_offset(2, h - 1));
  }
}

TEST(ControlTiming, SampleOffsetOfResolvesHops) {
  const auto r = ring8();
  const auto ct = timing8(r);
  EXPECT_EQ(ct.sample_offset_of(6, 1), ct.sample_offset(6, 3));  // wraps
  EXPECT_EQ(ct.sample_offset_of(2, 2), Duration::zero());
}

TEST(ControlTiming, CollectionCompleteIncludesPacketBits) {
  const auto r = ring8();
  const FrameCodec codec(8, PriorityLayout{}, false);
  const ControlTiming ct(&r, codec.collection_bits(),
                         codec.distribution_bits());
  // ring 400 ns + 8*2 bits passthrough (40 ns) + 169 bits (422.5 ns).
  const auto expect = Duration::picoseconds(
      400'000 + 40'000 + 169 * 2'500);
  EXPECT_EQ(ct.collection_complete_offset(), expect);
  // Strictly more than the paper's Eq. 2 terms alone.
  EXPECT_GT(ct.collection_complete_offset(), Duration::nanoseconds(440));
}

TEST(ControlTiming, DistributionTime) {
  const auto r = ring8();
  const FrameCodec codec(8, PriorityLayout{}, false);
  const ControlTiming ct(&r, codec.collection_bits(),
                         codec.distribution_bits());
  EXPECT_EQ(ct.distribution_time(),
            r.link().control_time(codec.distribution_bits()));
}

TEST(ControlTiming, FitsSlotBoundary) {
  const auto r = ring8();
  const auto ct = timing8(r);
  const auto need =
      ct.collection_complete_offset() + ct.distribution_time();
  EXPECT_TRUE(ct.fits_slot(need));
  EXPECT_FALSE(ct.fits_slot(need - Duration::picoseconds(1)));
}

TEST(ControlTiming, NetworkAutoPayloadSatisfiesExactBudget) {
  // The engine's auto-sized slot must pass the exact (not just Eq. 2)
  // control-phase check, for small and large rings alike.
  for (const NodeId nodes : {NodeId{2}, NodeId{4}, NodeId{16}, NodeId{64}}) {
    net::NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.default_payload_floor = 1;  // do not let the floor mask the math
    net::Network n(cfg);
    EXPECT_TRUE(n.control_timing().fits_slot(n.timing().slot()))
        << "nodes=" << nodes;
  }
}

}  // namespace
}  // namespace ccredf::core
