// Parameterised arbitration sweep: the Arbiter's safety and liveness
// invariants across priority-field widths, ring sizes and reuse modes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/arbitration.hpp"
#include "core/priority.hpp"
#include "ring/segment.hpp"
#include "sim/rng.hpp"

namespace ccredf::core {
namespace {

using Param = std::tuple<NodeId /*nodes*/, unsigned /*field bits*/,
                         bool /*reuse*/, std::uint64_t /*seed*/>;

class ArbitrationSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ArbitrationSweep, SafetyAndLivenessInvariants) {
  const auto [nodes, bits, reuse, seed] = GetParam();
  const ring::RingTopology topo(nodes);
  const Arbiter arb(topo, reuse);
  PriorityLayout layout;
  layout.field_bits = bits;
  layout.validate();
  const LogarithmicMapper mapper;
  sim::Rng rng(seed);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Request> reqs(nodes);
    for (NodeId i = 0; i < nodes; ++i) {
      if (rng.bernoulli(0.35)) continue;
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.uniform_u64(nodes));
      } while (dst == i);
      const auto cls = rng.bernoulli(0.5) ? TrafficClass::kRealTime
                                          : TrafficClass::kBestEffort;
      const auto laxity =
          static_cast<std::int64_t>(rng.uniform_u64(10'000));
      const auto seg =
          ring::Segment::for_transmission(topo, i, NodeSet::single(dst));
      reqs[i].priority = mapper.map(layout, cls, laxity);
      reqs[i].links = seg.links();
      reqs[i].dests = NodeSet::single(dst);
    }
    const auto master = static_cast<NodeId>(rng.uniform_u64(nodes));
    const auto r = arb.arbitrate(reqs, master);

    // Safety: disjoint grants, none across the break link, grant count
    // matches, every grant was a wanting request.
    LinkSet taken;
    int count = 0;
    for (const NodeId g : r.packet.granted) {
      ASSERT_TRUE(reqs[g].wants_slot());
      ASSERT_FALSE(reqs[g].links.intersects(taken));
      ASSERT_FALSE(
          reqs[g].links.contains(topo.break_link(r.next_master)));
      taken |= reqs[g].links;
      ++count;
    }
    ASSERT_EQ(count, r.granted_count);
    ASSERT_EQ(taken, r.granted_links);
    if (!reuse) {
      ASSERT_LE(count, 1);
    }

    // Liveness: some wanting request => the top one is granted and is
    // the next master; no requests => master unchanged, nothing granted.
    NodeId hp = kInvalidNode;
    Priority best = 0;
    for (NodeId i = 0; i < nodes; ++i) {
      if (reqs[i].priority > best) {
        best = reqs[i].priority;
        hp = i;
      }
    }
    if (hp == kInvalidNode) {
      ASSERT_EQ(r.next_master, master);
      ASSERT_EQ(r.granted_count, 0);
    } else {
      ASSERT_EQ(r.next_master, hp);
      ASSERT_TRUE(r.packet.granted.contains(hp));
      ASSERT_GE(r.granted_count, 1);
    }

    // Greedy maximality under reuse: no denied wanting request could
    // still be granted legally.
    if (reuse) {
      for (NodeId i = 0; i < nodes; ++i) {
        if (!reqs[i].wants_slot() || r.packet.granted.contains(i)) continue;
        const bool could_fit =
            !reqs[i].links.intersects(r.granted_links) &&
            !reqs[i].links.contains(topo.break_link(r.next_master));
        ASSERT_FALSE(could_fit)
            << "node " << i << " was deniable but grantable";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArbitrationSweep,
    ::testing::Combine(::testing::Values<NodeId>(3, 8, 17, 64),
                       ::testing::Values(3u, 5u, 8u),
                       ::testing::Bool(),
                       ::testing::Values<std::uint64_t>(1, 2)));

}  // namespace
}  // namespace ccredf::core
