#include "core/schedulability.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/clocking.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;

phy::RingPhy test_ring(NodeId n = 8, double len = 10.0) {
  return phy::RingPhy(phy::optobus(), n, len);
}

TEST(SlotTiming, MinSlotMatchesEq2) {
  // Eq. 2: t_minslot = N * t_node + t_prop.
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  // N * t_node: 8 nodes * 2 bits * 2.5 ns = 40 ns; t_prop: 8 * 50 = 400 ns.
  EXPECT_EQ(t.min_slot(), Duration::nanoseconds(440));
}

TEST(SlotTiming, SlotIsPayloadBytesTimesBitTime) {
  const auto ring = test_ring();
  const SlotTiming t(ring, 1024);
  EXPECT_EQ(t.slot(), Duration::nanoseconds(2560));  // 1024 * 2.5 ns
  EXPECT_EQ(t.payload_bytes(), 1024);
}

TEST(SlotTiming, PayloadBelowEq2Rejected) {
  const auto ring = test_ring(8, 10.0);
  // min slot 440 ns => min payload 176 bytes.
  EXPECT_THROW(SlotTiming(ring, 100), ConfigError);
  EXPECT_NO_THROW(SlotTiming(ring, 176));
}

TEST(SlotTiming, MinPayloadBytesIsTight) {
  const auto ring = test_ring(8, 10.0);
  const std::int64_t min = SlotTiming::min_payload_bytes(ring);
  EXPECT_EQ(min, 176);
  EXPECT_NO_THROW(SlotTiming(ring, min));
  EXPECT_THROW(SlotTiming(ring, min - 1), ConfigError);
}

TEST(SlotTiming, MinPayloadGrowsWithRingSize) {
  const std::int64_t small = SlotTiming::min_payload_bytes(test_ring(4));
  const std::int64_t large = SlotTiming::min_payload_bytes(test_ring(32));
  EXPECT_LT(small, large);
}

TEST(SlotTiming, MaxHandoverMatchesEq1WorstCase) {
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  // Eq. 1 with D = N-1: 7 * 50 ns, plus stop+detect bits (2 * 2.5 ns).
  EXPECT_EQ(t.max_handover(), Duration::nanoseconds(355));
}

TEST(SlotTiming, UmaxMatchesEq6) {
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  const double t_slot = 512 * 2.5;       // ns
  const double t_gap = 7 * 50 + 2 * 2.5;  // ns
  EXPECT_NEAR(t.u_max(), t_slot / (t_slot + t_gap), 1e-12);
  EXPECT_LT(t.u_max(), 1.0);
  EXPECT_GT(t.u_max(), 0.0);
}

TEST(SlotTiming, UmaxImprovesWithLargerSlots) {
  // Eq. 6: a longer slot amortises the hand-over gap.
  const auto ring = test_ring(8, 10.0);
  EXPECT_GT(SlotTiming(ring, 4096).u_max(), SlotTiming(ring, 512).u_max());
}

TEST(SlotTiming, UmaxDegradesWithLongerRing) {
  const auto near = test_ring(8, 10.0);
  const auto far = test_ring(8, 100.0);
  EXPECT_GT(SlotTiming(near, 4096).u_max(), SlotTiming(far, 4096).u_max());
}

TEST(SlotTiming, WorstCaseLatencyMatchesEq4) {
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  EXPECT_EQ(t.worst_case_latency(), 2 * t.slot() + t.max_handover());
}

TEST(SlotTiming, MaxDelayMatchesEq3) {
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  const Duration deadline = Duration::microseconds(50);
  EXPECT_EQ(t.max_delay(deadline), deadline + t.worst_case_latency());
}

TEST(SlotTiming, SlotPlusMaxGap) {
  const auto ring = test_ring(8, 10.0);
  const SlotTiming t(ring, 512);
  EXPECT_EQ(t.slot_plus_max_gap(), t.slot() + t.max_handover());
}

TEST(HandoverModel, GapMatchesEq1PlusStopBits) {
  const auto ring = test_ring(8, 10.0);
  const HandoverModel h(&ring);
  // 2 stop/detect bits at 2.5 ns.
  const Duration bits = Duration::nanoseconds(5);
  EXPECT_EQ(h.gap(0, 0), bits);                                  // D = 0
  EXPECT_EQ(h.gap(0, 1), Duration::nanoseconds(50) + bits);      // D = 1
  EXPECT_EQ(h.gap(0, 7), Duration::nanoseconds(350) + bits);     // D = 7
  EXPECT_EQ(h.gap(5, 4), Duration::nanoseconds(350) + bits);     // wraps
}

TEST(HandoverModel, MaxGapIsWorstCase) {
  const auto ring = test_ring(8, 10.0);
  const HandoverModel h(&ring);
  for (NodeId f = 0; f < 8; ++f) {
    for (NodeId t = 0; t < 8; ++t) {
      EXPECT_LE(h.gap(f, t), h.max_gap());
    }
  }
}

TEST(HandoverModel, RoundRobinGapIsOneHop) {
  const auto ring = test_ring(8, 10.0);
  const HandoverModel h(&ring);
  EXPECT_EQ(h.round_robin_gap(3), h.gap(3, 4));
}

ConnectionParams conn(std::int64_t e, std::int64_t p) {
  ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(1);
  c.size_slots = e;
  c.period_slots = p;
  return c;
}

TEST(EdfFeasibility, TotalUtilisationSums) {
  const std::vector<ConnectionParams> set{conn(1, 4), conn(1, 2), conn(3, 12)};
  EXPECT_NEAR(total_utilisation(set), 0.25 + 0.5 + 0.25, 1e-12);
}

TEST(EdfFeasibility, Eq5AcceptsUpToBound) {
  const std::vector<ConnectionParams> set{conn(1, 4), conn(1, 4)};
  EXPECT_TRUE(edf_feasible(set, 0.5));
  EXPECT_TRUE(edf_feasible(set, 0.6));
  EXPECT_FALSE(edf_feasible(set, 0.49));
}

TEST(EdfFeasibility, EmptySetAlwaysFeasible) {
  EXPECT_TRUE(edf_feasible({}, 0.0));
}

TEST(ConnectionParams, UtilisationAndValidation) {
  auto c = conn(2, 10);
  EXPECT_DOUBLE_EQ(c.utilisation(), 0.2);
  EXPECT_EQ(c.effective_deadline_slots(), 10);
  c.deadline_slots = 5;
  EXPECT_EQ(c.effective_deadline_slots(), 5);
  c.validate();

  auto bad = conn(5, 4);  // size > period
  EXPECT_THROW(bad.validate(), ConfigError);
  auto bad2 = conn(1, 4);
  bad2.dests = NodeSet{};
  EXPECT_THROW(bad2.validate(), ConfigError);
  auto bad3 = conn(4, 8);
  bad3.deadline_slots = 2;  // shorter than the message itself
  EXPECT_THROW(bad3.validate(), ConfigError);
}

}  // namespace
}  // namespace ccredf::core
