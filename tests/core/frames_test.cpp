#include "core/frames.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::core {
namespace {

FrameCodec codec_n(NodeId n, bool acks = false) {
  return FrameCodec(n, PriorityLayout{}, acks);
}

CollectionPacket sample_collection(NodeId n) {
  CollectionPacket p;
  p.requests.resize(n);
  p.requests[0].priority = 31;
  p.requests[0].links = LinkSet::from_mask(0b0011);
  p.requests[0].dests = NodeSet::single(2);
  if (n > 2) {
    p.requests[2].priority = 5;
    p.requests[2].links = LinkSet::from_mask(0b0100);
    p.requests[2].dests = NodeSet::single(3);
  }
  return p;
}

TEST(FrameCodec, CollectionBitCountMatchesFig4) {
  // start + N * (5-bit prio + N-bit links + N-bit dests)
  EXPECT_EQ(codec_n(4).collection_bits(), 1 + 4 * (5 + 4 + 4));
  EXPECT_EQ(codec_n(16).collection_bits(), 1 + 16 * (5 + 16 + 16));
}

TEST(FrameCodec, DistributionBitCountMatchesFig5) {
  // start + N result bits + ceil(log2 N) index bits.
  EXPECT_EQ(codec_n(4).distribution_bits(), 1 + 4 + 2);
  EXPECT_EQ(codec_n(8).distribution_bits(), 1 + 8 + 3);
  EXPECT_EQ(codec_n(5).distribution_bits(), 1 + 5 + 3);
}

TEST(FrameCodec, AckFieldAddsNBits) {
  EXPECT_EQ(codec_n(8, true).distribution_bits(),
            codec_n(8, false).distribution_bits() + 8);
}

TEST(FrameCodec, CollectionRoundTrip) {
  const FrameCodec c = codec_n(5);
  const CollectionPacket p = sample_collection(5);
  const auto enc = c.encode(p);
  EXPECT_EQ(enc.bit_count, static_cast<std::size_t>(c.collection_bits()));
  EXPECT_EQ(c.decode_collection(enc), p);
}

TEST(FrameCodec, DistributionRoundTrip) {
  const FrameCodec c = codec_n(6);
  DistributionPacket p;
  p.granted = NodeSet::from_mask(0b100101);
  p.hp_node = 5;
  const auto enc = c.encode(p);
  EXPECT_EQ(enc.bit_count, static_cast<std::size_t>(c.distribution_bits()));
  EXPECT_EQ(c.decode_distribution(enc), p);
}

TEST(FrameCodec, DistributionRoundTripWithAcks) {
  const FrameCodec c = codec_n(6, true);
  DistributionPacket p;
  p.granted = NodeSet::from_mask(0b000011);
  p.hp_node = 1;
  p.has_acks = true;
  p.acks = NodeSet::from_mask(0b110000);
  const auto enc = c.encode(p);
  EXPECT_EQ(c.decode_distribution(enc), p);
}

TEST(FrameCodec, IdleRingEncodes) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);  // all priority 0
  const auto enc = c.encode(p);
  const auto back = c.decode_collection(enc);
  for (const auto& r : back.requests) {
    EXPECT_FALSE(r.wants_slot());
    EXPECT_TRUE(r.links.empty());
  }
}

TEST(FrameCodec, IdleRequestMustBeZeroed) {
  // Paper §3: priority 0 requires zeros in the other fields.
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);
  p.requests[1].links = LinkSet::from_mask(0b1);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, PriorityWiderThanFieldRejected) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);
  p.requests[0].priority = 32;  // 5-bit field holds <= 31
  p.requests[0].dests = NodeSet::single(1);
  p.requests[0].links = LinkSet::from_mask(1);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, WrongRequestCountRejected) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(3);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, InvalidHpNodeRejected) {
  const FrameCodec c = codec_n(4);
  DistributionPacket p;
  p.hp_node = 4;
  EXPECT_THROW((void)c.encode(p), ConfigError);
  p.hp_node = kInvalidNode;
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, AckPresenceMismatchRejected) {
  const FrameCodec c = codec_n(4, true);
  DistributionPacket p;
  p.hp_node = 0;
  p.has_acks = false;
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, TruncatedFrameRejected) {
  const FrameCodec c = codec_n(4);
  auto enc = c.encode(sample_collection(4));
  enc.bit_count -= 1;
  EXPECT_THROW((void)c.decode_collection(enc), ConfigError);
}

TEST(FrameCodec, RandomisedRoundTrips) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<NodeId>(2 + rng.uniform_u64(30));
    const FrameCodec c = codec_n(n);
    CollectionPacket p;
    p.requests.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) continue;  // idle
      auto& r = p.requests[i];
      r.priority = static_cast<Priority>(1 + rng.uniform_u64(31));
      const std::uint64_t span = (n == 64) ? ~0ull
                                           : ((1ull << n) - 1);
      r.links = LinkSet::from_mask(rng.next_u64() & span);
      r.dests = NodeSet::from_mask(rng.next_u64() & span);
      if (r.links.empty()) r.links = LinkSet::from_mask(1);
      if (r.dests.empty()) r.dests = NodeSet::single((i + 1) % n);
    }
    const auto enc = c.encode(p);
    EXPECT_EQ(c.decode_collection(enc), p) << "n=" << n;

    DistributionPacket d;
    d.granted = NodeSet::from_mask(rng.next_u64() & ((1ull << n) - 1));
    d.hp_node = static_cast<NodeId>(rng.uniform_u64(n));
    const auto denc = c.encode(d);
    EXPECT_EQ(c.decode_distribution(denc), d) << "n=" << n;
  }
}

TEST(FrameCodec, ControlFitsWithinSlotForTypicalConfig) {
  // The whole point of Fig. 3: with B >= collection bits the arbitration
  // for slot N+1 completes during slot N.  For 16 nodes a collection
  // packet is 1 + 16*37 = 593 bits; a 600-byte slot spans 600 control
  // bits -- barely enough, which is why min_payload also matters.
  const FrameCodec c = codec_n(16);
  EXPECT_LE(c.collection_bits(), 600);
}

TEST(FrameCodec, RejectsBadNodeCounts) {
  EXPECT_THROW(FrameCodec(1, PriorityLayout{}, false), ConfigError);
  EXPECT_THROW(FrameCodec(65, PriorityLayout{}, false), ConfigError);
}

}  // namespace
}  // namespace ccredf::core
