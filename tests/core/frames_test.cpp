#include "core/frames.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::core {
namespace {

FrameCodec codec_n(NodeId n, bool acks = false) {
  return FrameCodec(n, PriorityLayout{}, acks);
}

CollectionPacket sample_collection(NodeId n) {
  CollectionPacket p;
  p.requests.resize(n);
  p.requests[0].priority = 31;
  p.requests[0].links = LinkSet::from_mask(0b0011);
  p.requests[0].dests = NodeSet::single(2);
  if (n > 2) {
    p.requests[2].priority = 5;
    p.requests[2].links = LinkSet::from_mask(0b0100);
    p.requests[2].dests = NodeSet::single(3);
  }
  return p;
}

TEST(FrameCodec, CollectionBitCountMatchesFig4) {
  // start + N * (5-bit prio + N-bit links + N-bit dests)
  EXPECT_EQ(codec_n(4).collection_bits(), 1 + 4 * (5 + 4 + 4));
  EXPECT_EQ(codec_n(16).collection_bits(), 1 + 16 * (5 + 16 + 16));
}

TEST(FrameCodec, DistributionBitCountMatchesFig5) {
  // start + N result bits + ceil(log2 N) index bits.
  EXPECT_EQ(codec_n(4).distribution_bits(), 1 + 4 + 2);
  EXPECT_EQ(codec_n(8).distribution_bits(), 1 + 8 + 3);
  EXPECT_EQ(codec_n(5).distribution_bits(), 1 + 5 + 3);
}

TEST(FrameCodec, AckFieldAddsNBits) {
  EXPECT_EQ(codec_n(8, true).distribution_bits(),
            codec_n(8, false).distribution_bits() + 8);
}

TEST(FrameCodec, CollectionRoundTrip) {
  const FrameCodec c = codec_n(5);
  const CollectionPacket p = sample_collection(5);
  const auto enc = c.encode(p);
  EXPECT_EQ(enc.bit_count, static_cast<std::size_t>(c.collection_bits()));
  EXPECT_EQ(c.decode_collection(enc), p);
}

TEST(FrameCodec, DistributionRoundTrip) {
  const FrameCodec c = codec_n(6);
  DistributionPacket p;
  p.granted = NodeSet::from_mask(0b100101);
  p.hp_node = 5;
  const auto enc = c.encode(p);
  EXPECT_EQ(enc.bit_count, static_cast<std::size_t>(c.distribution_bits()));
  EXPECT_EQ(c.decode_distribution(enc), p);
}

TEST(FrameCodec, DistributionRoundTripWithAcks) {
  const FrameCodec c = codec_n(6, true);
  DistributionPacket p;
  p.granted = NodeSet::from_mask(0b000011);
  p.hp_node = 1;
  p.has_acks = true;
  p.acks = NodeSet::from_mask(0b110000);
  const auto enc = c.encode(p);
  EXPECT_EQ(c.decode_distribution(enc), p);
}

TEST(FrameCodec, IdleRingEncodes) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);  // all priority 0
  const auto enc = c.encode(p);
  const auto back = c.decode_collection(enc);
  for (const auto& r : back.requests) {
    EXPECT_FALSE(r.wants_slot());
    EXPECT_TRUE(r.links.empty());
  }
}

TEST(FrameCodec, IdleRequestMustBeZeroed) {
  // Paper §3: priority 0 requires zeros in the other fields.
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);
  p.requests[1].links = LinkSet::from_mask(0b1);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, PriorityWiderThanFieldRejected) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(4);
  p.requests[0].priority = 32;  // 5-bit field holds <= 31
  p.requests[0].dests = NodeSet::single(1);
  p.requests[0].links = LinkSet::from_mask(1);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, WrongRequestCountRejected) {
  const FrameCodec c = codec_n(4);
  CollectionPacket p;
  p.requests.resize(3);
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, InvalidHpNodeRejected) {
  const FrameCodec c = codec_n(4);
  DistributionPacket p;
  p.hp_node = 4;
  EXPECT_THROW((void)c.encode(p), ConfigError);
  p.hp_node = kInvalidNode;
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, AckPresenceMismatchRejected) {
  const FrameCodec c = codec_n(4, true);
  DistributionPacket p;
  p.hp_node = 0;
  p.has_acks = false;
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameCodec, TruncatedFrameRejected) {
  const FrameCodec c = codec_n(4);
  auto enc = c.encode(sample_collection(4));
  enc.bit_count -= 1;
  EXPECT_THROW((void)c.decode_collection(enc), ConfigError);
}

TEST(FrameCodec, RandomisedRoundTrips) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<NodeId>(2 + rng.uniform_u64(30));
    const FrameCodec c = codec_n(n);
    CollectionPacket p;
    p.requests.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) continue;  // idle
      auto& r = p.requests[i];
      r.priority = static_cast<Priority>(1 + rng.uniform_u64(31));
      const std::uint64_t span = (n == 64) ? ~0ull
                                           : ((1ull << n) - 1);
      r.links = LinkSet::from_mask(rng.next_u64() & span);
      r.dests = NodeSet::from_mask(rng.next_u64() & span);
      if (r.links.empty()) r.links = LinkSet::from_mask(1);
      if (r.dests.empty()) r.dests = NodeSet::single((i + 1) % n);
    }
    const auto enc = c.encode(p);
    EXPECT_EQ(c.decode_collection(enc), p) << "n=" << n;

    DistributionPacket d;
    d.granted = NodeSet::from_mask(rng.next_u64() & ((1ull << n) - 1));
    d.hp_node = static_cast<NodeId>(rng.uniform_u64(n));
    const auto denc = c.encode(d);
    EXPECT_EQ(c.decode_distribution(denc), d) << "n=" << n;
  }
}

TEST(FrameCodec, ControlFitsWithinSlotForTypicalConfig) {
  // The whole point of Fig. 3: with B >= collection bits the arbitration
  // for slot N+1 completes during slot N.  For 16 nodes a collection
  // packet is 1 + 16*37 = 593 bits; a 600-byte slot spans 600 control
  // bits -- barely enough, which is why min_payload also matters.
  const FrameCodec c = codec_n(16);
  EXPECT_LE(c.collection_bits(), 600);
}

TEST(FrameCodec, RejectsBadNodeCounts) {
  EXPECT_THROW(FrameCodec(1, PriorityLayout{}, false), ConfigError);
  EXPECT_THROW(FrameCodec(65, PriorityLayout{}, false), ConfigError);
}

// -- frame-integrity extension (CRC + checked decoders) ------------------

FrameCodec codec_crc(NodeId n, bool acks = false) {
  return FrameCodec(n, PriorityLayout{}, acks, /*with_crc=*/true);
}

TEST(FrameCrc, Crc8DetectsEverySingleBitError) {
  // CRC-8 poly 0x07 has Hamming distance >= 2 at these lengths: flip any
  // one payload bit and the checksum changes.
  BitWriter w;
  w.write(0xDEADBEEFu, 32);
  const std::uint8_t good = crc8_bits(w.bytes(), 0, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    auto bytes = w.bytes();
    bytes[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
    EXPECT_NE(crc8_bits(bytes, 0, 32), good) << "bit " << i;
  }
}

TEST(FrameCrc, CrcLengthensFramesByEightBitsPerChecksum) {
  // One CRC per request record, one for the whole distribution packet.
  EXPECT_EQ(codec_crc(4).request_bits(), codec_n(4).request_bits() + 8);
  EXPECT_EQ(codec_crc(4).collection_bits(),
            codec_n(4).collection_bits() + 4 * 8);
  EXPECT_EQ(codec_crc(8).distribution_bits(),
            codec_n(8).distribution_bits() + 8);
}

TEST(FrameCrc, RoundTripsWithCrc) {
  const FrameCodec c = codec_crc(5);
  const CollectionPacket p = sample_collection(5);
  EXPECT_EQ(c.decode_collection(c.encode(p)), p);
  DistributionPacket d;
  d.granted = NodeSet::from_mask(0b10011);
  d.hp_node = 4;
  EXPECT_EQ(c.decode_distribution(c.encode(d)), d);
}

TEST(FrameCrc, StrictDecoderRejectsFlippedBit) {
  const FrameCodec c = codec_crc(5);
  auto enc = c.encode(sample_collection(5));
  enc.bytes[1] ^= 0x10u;  // inside request 0's fields
  EXPECT_THROW((void)c.decode_collection(enc), ConfigError);
}

TEST(FrameCrc, CheckedRequestAcceptsCleanRecord) {
  const FrameCodec c = codec_crc(5);
  Request rq;
  rq.priority = 9;
  rq.links = LinkSet::from_mask(0b00110);
  rq.dests = NodeSet::single(3);
  const auto checked = c.decode_request_checked(c.encode_request(rq), 1);
  ASSERT_TRUE(checked.ok) << checked.reason;
  EXPECT_EQ(checked.request, rq);
}

TEST(FrameCrc, CheckedRequestDetectsEverySingleBitFlip) {
  // Acceptance contract: with the CRC on, NO single-bit corruption of a
  // request record (priority, reservation or destination field) passes
  // the guards -- each is detected, never silently misarbitrated.
  const FrameCodec c = codec_crc(6);
  Request rq;
  rq.priority = 17;
  rq.links = LinkSet::from_mask(0b001111);  // source 0 -> furthest dest 4
  rq.dests = NodeSet::single(4);
  ASSERT_TRUE(c.decode_request_checked(c.encode_request(rq), 0).ok);
  const auto enc = c.encode_request(rq);
  for (std::size_t i = 0; i < enc.bit_count; ++i) {
    auto bad = enc;
    bad.bytes[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
    const auto checked = c.decode_request_checked(bad, 0);
    EXPECT_FALSE(checked.ok) << "flip of bit " << i << " undetected";
  }
}

TEST(FrameCrc, GuardsCatchFieldImplausibilityWithoutCrc) {
  // Even the CRC-free codec rejects structurally impossible records.
  const FrameCodec c = codec_n(5);
  Request idle;  // priority 0 => all fields must be zero
  auto enc = c.encode_request(idle);
  // Flip a destination bit: "idle" with a non-zero field.
  const std::size_t dest_bit = 5 + 5;  // after prio + links fields
  enc.bytes[dest_bit / 8] ^=
      static_cast<std::uint8_t>(0x80u >> (dest_bit % 8));
  EXPECT_FALSE(c.decode_request_checked(enc, 0).ok);

  Request live;
  live.priority = 3;
  live.links = LinkSet::from_mask(0b00001);
  live.dests = NodeSet::single(1);
  // A live request whose destinations include its own source.
  auto self_enc = c.encode_request(live);
  const auto self = c.decode_request_checked(self_enc, 1);
  EXPECT_FALSE(self.ok);
}

TEST(FrameCrc, ReservationFieldMustMatchRecomputedSegment) {
  // links is redundant given (source, dests): the consecutive links
  // from the source through its furthest destination.  A mutated
  // reservation field is therefore detectable even without the CRC --
  // which also keeps the arbiter's winner-is-grantable invariant safe
  // from forged segments not anchored at their source.
  const FrameCodec c = codec_n(6);
  Request rq;
  rq.priority = 8;
  rq.dests = NodeSet::single(3);
  rq.links = LinkSet::from_mask(0b000111);  // source 0: links {0,1,2}
  EXPECT_TRUE(c.decode_request_checked(c.encode_request(rq), 0).ok);

  Request shifted = rq;  // not anchored at the source
  shifted.links = LinkSet::from_mask(0b001110);
  EXPECT_FALSE(c.decode_request_checked(c.encode_request(shifted), 0).ok);

  Request longer = rq;  // claims links past the furthest destination
  longer.links = LinkSet::from_mask(0b001111);
  EXPECT_FALSE(c.decode_request_checked(c.encode_request(longer), 0).ok);

  Request shorter = rq;  // too few links to reach the destination
  shorter.links = LinkSet::from_mask(0b000011);
  EXPECT_FALSE(c.decode_request_checked(c.encode_request(shorter), 0).ok);

  // Wrap-around segment: source 4 to dest 1 crosses links {4, 5, 0}.
  Request wrap;
  wrap.priority = 8;
  wrap.dests = NodeSet::single(1);
  wrap.links = LinkSet::from_mask(0b110001);
  EXPECT_TRUE(c.decode_request_checked(c.encode_request(wrap), 4).ok);
  EXPECT_FALSE(c.decode_request_checked(c.encode_request(wrap), 3).ok);
}

TEST(FrameCrc, CheckedDistributionClassifiesInsteadOfThrowing) {
  const FrameCodec c = codec_crc(6);
  DistributionPacket d;
  d.granted = NodeSet::from_mask(0b000110);
  d.hp_node = 2;
  const auto enc = c.encode(d);
  const auto ok = c.decode_distribution_checked(enc);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.packet, d);

  auto flipped = enc;
  flipped.bytes[0] ^= 0x02u;
  EXPECT_FALSE(c.decode_distribution_checked(flipped).ok);

  auto truncated = enc;
  truncated.bit_count -= 1;
  EXPECT_FALSE(c.decode_distribution_checked(truncated).ok);
}

TEST(FrameCrc, HpRangeGuardWorksWithoutCrc) {
  // 6 nodes need 3 index bits, so values 6 and 7 are encodable but
  // invalid -- the range guard alone catches them.
  const FrameCodec c = codec_n(6);
  DistributionPacket d;
  d.hp_node = 1;
  auto enc = c.encode(d);
  // hp field sits after start bit + 6 grant bits: bits 7..9.  Force 111.
  for (std::size_t i = 7; i <= 9; ++i) {
    enc.bytes[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  const auto checked = c.decode_distribution_checked(enc);
  EXPECT_FALSE(checked.ok);
}

// -- payload-NACK extension (data-channel reliability) -------------------

FrameCodec codec_nacks(NodeId n, bool crc = false) {
  return FrameCodec(n, PriorityLayout{}, /*with_acks=*/true, crc,
                    /*with_nacks=*/true);
}

TEST(FrameNack, NackFieldAddsNBits) {
  EXPECT_EQ(codec_nacks(8).distribution_bits(),
            codec_n(8, true).distribution_bits() + 8);
  EXPECT_EQ(codec_nacks(5).distribution_bits(),
            codec_n(5, true).distribution_bits() + 5);
}

TEST(FrameNack, DistributionRoundTripsWithNacks) {
  for (const bool crc : {false, true}) {
    const FrameCodec c = codec_nacks(6, crc);
    DistributionPacket p;
    p.granted = NodeSet::from_mask(0b000011);
    p.hp_node = 1;
    p.has_acks = true;
    p.acks = NodeSet::from_mask(0b110000);
    p.has_nacks = true;
    p.nacks = NodeSet::from_mask(0b001100);
    const auto enc = c.encode(p);
    EXPECT_EQ(enc.bit_count,
              static_cast<std::size_t>(c.distribution_bits()));
    EXPECT_EQ(c.decode_distribution(enc), p) << "crc=" << crc;
  }
}

TEST(FrameNack, NackPresenceMismatchRejected) {
  const FrameCodec c = codec_nacks(4);
  DistributionPacket p;
  p.hp_node = 0;
  p.has_acks = true;
  p.has_nacks = false;  // codec expects a nack field
  EXPECT_THROW((void)c.encode(p), ConfigError);
}

TEST(FrameNack, NacksRequireTheAckField) {
  // The NACK rides the same ack mechanism; a codec with nacks but no
  // acks is a configuration contradiction.
  EXPECT_THROW(FrameCodec(4, PriorityLayout{}, /*with_acks=*/false,
                          /*with_crc=*/false, /*with_nacks=*/true),
               ConfigError);
}

TEST(FrameCrc, CrcOffIsBitIdenticalToLegacyEncoding) {
  // The extension flag defaults off; default-constructed codecs must
  // produce byte-for-byte the frames the seed produced.
  const FrameCodec legacy = codec_n(5);
  const FrameCodec flag_off(5, PriorityLayout{}, false, false);
  const auto a = legacy.encode(sample_collection(5));
  const auto b = flag_off.encode(sample_collection(5));
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.bit_count, b.bit_count);
}

}  // namespace
}  // namespace ccredf::core
