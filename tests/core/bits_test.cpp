#include "core/bits.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::core {
namespace {

TEST(BitWriter, MsbFirstPacking) {
  BitWriter w;
  w.write(0b101, 3);
  EXPECT_EQ(w.bit_count(), 3u);
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b1010'0000);
}

TEST(BitWriter, SpansByteBoundaries) {
  BitWriter w;
  w.write(0xABCD, 16);
  ASSERT_EQ(w.bytes().size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0xAB);
  EXPECT_EQ(w.bytes()[1], 0xCD);
}

TEST(BitWriter, UnalignedFields) {
  BitWriter w;
  w.write(0b1, 1);
  w.write(0b0110, 4);
  w.write(0b101, 3);
  EXPECT_EQ(w.bit_count(), 8u);
  EXPECT_EQ(w.bytes()[0], 0b1011'0101);
}

TEST(BitRoundTrip, ArbitraryFieldSequence) {
  BitWriter w;
  w.write(0x3, 2);
  w.write(0x1F, 5);
  w.write(0x0, 3);
  w.write(0xDEADBEEF, 32);
  w.write(0x1, 1);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(2), 0x3u);
  EXPECT_EQ(r.read(5), 0x1Fu);
  EXPECT_EQ(r.read(3), 0x0u);
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
  EXPECT_EQ(r.read(1), 0x1u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitRoundTrip, SixtyFourBitValue) {
  BitWriter w;
  const std::uint64_t v = 0x0123456789ABCDEFull;
  w.write(v, 64);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(64), v);
}

TEST(BitReader, ReadPastEndThrows) {
  BitWriter w;
  w.write(0xFF, 8);
  BitReader r(w.bytes(), w.bit_count());
  (void)r.read(8);
  EXPECT_THROW((void)r.pop_bit(), ConfigError);
}

TEST(BitWriter, WidthOver64Rejected) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 65), ConfigError);
}

TEST(IndexBits, CeilLog2) {
  // Width of the hp-node index field (paper Fig. 5: log2 N bits).
  EXPECT_EQ(index_bits(1), 1u);
  EXPECT_EQ(index_bits(2), 1u);
  EXPECT_EQ(index_bits(3), 2u);
  EXPECT_EQ(index_bits(4), 2u);
  EXPECT_EQ(index_bits(5), 3u);
  EXPECT_EQ(index_bits(8), 3u);
  EXPECT_EQ(index_bits(9), 4u);
  EXPECT_EQ(index_bits(64), 6u);
}

}  // namespace
}  // namespace ccredf::core
