#include "core/message.hpp"

#include <gtest/gtest.h>

namespace ccredf::core {
namespace {

using sim::Duration;
using sim::TimePoint;

Message rt_msg(std::int64_t deadline_ns) {
  Message m;
  m.id = 1;
  m.source = 0;
  m.dests = NodeSet::single(1);
  m.traffic_class = TrafficClass::kRealTime;
  m.deadline = TimePoint::origin() + Duration::nanoseconds(deadline_ns);
  return m;
}

TEST(Message, LaxityInWholeSlots) {
  const Message m = rt_msg(1'000);
  const Duration slot = Duration::nanoseconds(100);
  EXPECT_EQ(m.laxity_slots(TimePoint::origin(), slot), 10);
  EXPECT_EQ(m.laxity_slots(TimePoint::origin() + Duration::nanoseconds(50),
                           slot),
            9);  // rounds down
  EXPECT_EQ(m.laxity_slots(TimePoint::origin() + Duration::nanoseconds(999),
                           slot),
            0);
}

TEST(Message, LaxityNegativeWhenLate) {
  const Message m = rt_msg(100);
  const Duration slot = Duration::nanoseconds(100);
  EXPECT_LT(m.laxity_slots(TimePoint::origin() + Duration::nanoseconds(300),
                           slot),
            0);
}

TEST(Message, InfiniteDeadlineLaxityIsHuge) {
  Message m = rt_msg(0);
  m.deadline = TimePoint::infinity();
  EXPECT_GT(m.laxity_slots(TimePoint::origin(), Duration::nanoseconds(1)),
            std::int64_t{1} << 60);
}

TEST(Message, IsRealTime) {
  Message m = rt_msg(10);
  EXPECT_TRUE(m.is_real_time());
  m.traffic_class = TrafficClass::kBestEffort;
  EXPECT_FALSE(m.is_real_time());
}

TEST(Delivery, LatencyAndDeadlineChecks) {
  Delivery d;
  d.arrival = TimePoint::origin() + Duration::nanoseconds(100);
  d.completed = TimePoint::origin() + Duration::nanoseconds(450);
  d.deadline = TimePoint::origin() + Duration::nanoseconds(500);
  EXPECT_EQ(d.latency(), Duration::nanoseconds(350));
  EXPECT_TRUE(d.met_deadline());
  d.deadline = TimePoint::origin() + Duration::nanoseconds(400);
  EXPECT_FALSE(d.met_deadline());
  d.deadline = TimePoint::infinity();
  EXPECT_TRUE(d.met_deadline());
}

TEST(Delivery, ExactDeadlineCounts) {
  Delivery d;
  d.completed = TimePoint::origin() + Duration::nanoseconds(500);
  d.deadline = d.completed;
  EXPECT_TRUE(d.met_deadline());
}

}  // namespace
}  // namespace ccredf::core
