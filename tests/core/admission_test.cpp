#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::core {
namespace {

using sim::TimePoint;

ConnectionParams conn(std::int64_t e, std::int64_t p) {
  ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(1);
  c.size_slots = e;
  c.period_slots = p;
  return c;
}

TEST(Admission, AcceptsWithinBound) {
  AdmissionController a(0.8);
  const auto d = a.request(conn(1, 4), TimePoint::origin());
  EXPECT_TRUE(d.admitted);
  EXPECT_NE(d.id, kNoConnection);
  EXPECT_DOUBLE_EQ(d.utilisation_after, 0.25);
  EXPECT_EQ(a.active_connections(), 1u);
}

TEST(Admission, RejectsBeyondBound) {
  AdmissionController a(0.5);
  EXPECT_TRUE(a.request(conn(1, 4), TimePoint::origin()).admitted);  // 0.25
  EXPECT_TRUE(a.request(conn(1, 4), TimePoint::origin()).admitted);  // 0.50
  const auto d = a.request(conn(1, 100), TimePoint::origin());
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.id, kNoConnection);
  EXPECT_EQ(a.rejections(), 1);
  EXPECT_EQ(a.active_connections(), 2u);
}

TEST(Admission, ExactBoundaryIsAdmitted) {
  // Eq. 5 is a <= test.
  AdmissionController a(0.5);
  EXPECT_TRUE(a.request(conn(1, 2), TimePoint::origin()).admitted);
  EXPECT_FALSE(a.request(conn(1, 1000), TimePoint::origin()).admitted);
}

TEST(Admission, ManySmallConnectionsSumToExactlyBound) {
  // Floating-point sum of ten 0.05 shares against a 0.5 bound -- the
  // epsilon in the controller must forgive accumulated rounding.
  AdmissionController a(0.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.request(conn(1, 20), TimePoint::origin()).admitted) << i;
  }
  EXPECT_FALSE(a.request(conn(1, 20), TimePoint::origin()).admitted);
}

TEST(Admission, ReleaseFreesUtilisation) {
  AdmissionController a(0.5);
  const auto d1 = a.request(conn(1, 2), TimePoint::origin());
  ASSERT_TRUE(d1.admitted);
  EXPECT_FALSE(a.request(conn(1, 2), TimePoint::origin()).admitted);
  EXPECT_TRUE(a.release(d1.id));
  EXPECT_TRUE(a.request(conn(1, 2), TimePoint::origin()).admitted);
}

TEST(Admission, ReleaseUnknownFails) {
  AdmissionController a(0.5);
  EXPECT_FALSE(a.release(42));
}

TEST(Admission, IdsAreUnique) {
  AdmissionController a(10.0);
  const auto d1 = a.request(conn(1, 10), TimePoint::origin());
  const auto d2 = a.request(conn(1, 10), TimePoint::origin());
  EXPECT_NE(d1.id, d2.id);
}

TEST(Admission, FindReturnsStoredConnection) {
  AdmissionController a(1.0);
  const auto d = a.request(conn(2, 8),
                           TimePoint::origin() + sim::Duration::seconds(1));
  const Connection* c = a.find(d.id);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->params.size_slots, 2);
  EXPECT_EQ(c->admitted,
            TimePoint::origin() + sim::Duration::seconds(1));
  EXPECT_EQ(a.find(d.id + 100), nullptr);
}

TEST(Admission, SnapshotListsAll) {
  AdmissionController a(1.0);
  (void)a.request(conn(1, 10), TimePoint::origin());
  (void)a.request(conn(1, 5), TimePoint::origin());
  EXPECT_EQ(a.snapshot().size(), 2u);
}

TEST(Admission, CountsRequests) {
  AdmissionController a(0.3);
  (void)a.request(conn(1, 4), TimePoint::origin());
  (void)a.request(conn(1, 2), TimePoint::origin());  // rejected
  EXPECT_EQ(a.requests_seen(), 2);
  EXPECT_EQ(a.rejections(), 1);
}

TEST(Admission, InvalidParamsThrow) {
  AdmissionController a(1.0);
  auto bad = conn(0, 4);
  EXPECT_THROW((void)a.request(bad, TimePoint::origin()), ConfigError);
}

TEST(Admission, UtilisationNeverNegativeAfterReleases) {
  AdmissionController a(1.0);
  const auto d = a.request(conn(1, 3), TimePoint::origin());
  EXPECT_TRUE(a.release(d.id));
  EXPECT_GE(a.utilisation(), 0.0);
  EXPECT_NEAR(a.utilisation(), 0.0, 1e-12);
}

// -- capacity derating (graceful degradation) ----------------------------

TEST(Admission, CapacityFactorDeratesEffectiveBound) {
  AdmissionController a(0.8);
  EXPECT_DOUBLE_EQ(a.capacity_factor(), 1.0);
  EXPECT_DOUBLE_EQ(a.effective_u_max(), 0.8);
  a.set_capacity_factor(0.5);
  EXPECT_DOUBLE_EQ(a.effective_u_max(), 0.4);
  EXPECT_TRUE(a.request(conn(1, 4), TimePoint::origin()).admitted);  // 0.25
  EXPECT_FALSE(a.request(conn(1, 4), TimePoint::origin()).admitted);
  // Recovery: the same request fits once the channel heals.
  a.set_capacity_factor(1.0);
  EXPECT_TRUE(a.request(conn(1, 4), TimePoint::origin()).admitted);
}

TEST(Admission, CapacityFactorDoesNotEvictAdmittedConnections) {
  // Derating constrains NEW admissions; connections admitted before the
  // factor dropped keep their slots (utilisation may exceed the derated
  // bound until they are released).
  AdmissionController a(0.8);
  ASSERT_TRUE(a.request(conn(1, 2), TimePoint::origin()).admitted);  // 0.5
  a.set_capacity_factor(0.25);  // effective bound now 0.2 < 0.5
  EXPECT_EQ(a.active_connections(), 1u);
  EXPECT_DOUBLE_EQ(a.utilisation(), 0.5);
  EXPECT_FALSE(a.request(conn(1, 100), TimePoint::origin()).admitted);
}

TEST(Admission, CapacityFactorValidated) {
  AdmissionController a(0.8);
  EXPECT_THROW(a.set_capacity_factor(-0.1), ConfigError);
  EXPECT_THROW(a.set_capacity_factor(1.5), ConfigError);
  EXPECT_NO_THROW(a.set_capacity_factor(0.0));
  EXPECT_NO_THROW(a.set_capacity_factor(1.0));
}

}  // namespace
}  // namespace ccredf::core
