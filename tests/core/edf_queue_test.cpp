#include "core/edf_queue.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;
using sim::TimePoint;

Message make_msg(MessageId id, TrafficClass cls, std::int64_t deadline_ns,
                 std::int64_t arrival_ns = 0, std::int64_t size = 1) {
  Message m;
  m.id = id;
  m.source = 0;
  m.dests = NodeSet::single(1);
  m.traffic_class = cls;
  m.size_slots = size;
  m.remaining_slots = size;
  m.arrival = TimePoint::origin() + Duration::nanoseconds(arrival_ns);
  m.deadline = deadline_ns < 0
                   ? TimePoint::infinity()
                   : TimePoint::origin() + Duration::nanoseconds(deadline_ns);
  return m;
}

TimePoint later() { return TimePoint::origin() + Duration::seconds(1); }

TEST(EdfQueue, EmptyHeadIsNull) {
  EdfQueueSet q;
  EXPECT_EQ(q.head(later()), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, RtOrderedByDeadline) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 300));
  q.push(make_msg(2, TrafficClass::kRealTime, 100));
  q.push(make_msg(3, TrafficClass::kRealTime, 200));
  EXPECT_EQ(q.head(later())->id, 2u);
}

TEST(EdfQueue, DeadlineTieBrokenByArrivalThenId) {
  EdfQueueSet q;
  q.push(make_msg(5, TrafficClass::kRealTime, 100, 20));
  q.push(make_msg(4, TrafficClass::kRealTime, 100, 10));
  EXPECT_EQ(q.head(later())->id, 4u);

  EdfQueueSet q2;
  q2.push(make_msg(9, TrafficClass::kRealTime, 100, 10));
  q2.push(make_msg(8, TrafficClass::kRealTime, 100, 10));
  EXPECT_EQ(q2.head(later())->id, 8u);
}

TEST(EdfQueue, ClassPrecedenceRtOverBeOverNrt) {
  // Paper §3: BE only requested when no RT queued; NRT only when neither.
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kNonRealTime, -1));
  EXPECT_EQ(q.head(later())->id, 1u);
  q.push(make_msg(2, TrafficClass::kBestEffort, 1'000'000));
  EXPECT_EQ(q.head(later())->id, 2u);
  q.push(make_msg(3, TrafficClass::kRealTime, 2'000'000));
  EXPECT_EQ(q.head(later())->id, 3u);
}

TEST(EdfQueue, RtWinsEvenWithLooserDeadline) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kBestEffort, 10));      // very urgent BE
  q.push(make_msg(2, TrafficClass::kRealTime, 1'000'000));  // relaxed RT
  EXPECT_EQ(q.head(later())->id, 2u);
}

TEST(EdfQueue, EligibilityBySampleTime) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100, /*arrival=*/50));
  const TimePoint before = TimePoint::origin() + Duration::nanoseconds(40);
  const TimePoint after = TimePoint::origin() + Duration::nanoseconds(60);
  EXPECT_EQ(q.head(before), nullptr);
  ASSERT_NE(q.head(after), nullptr);
}

TEST(EdfQueue, IneligibleHeadFallsThroughToLaterMessage) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100, /*arrival=*/50));
  q.push(make_msg(2, TrafficClass::kRealTime, 200, /*arrival=*/0));
  const TimePoint sample = TimePoint::origin() + Duration::nanoseconds(10);
  ASSERT_NE(q.head(sample), nullptr);
  EXPECT_EQ(q.head(sample)->id, 2u);
}

TEST(EdfQueue, IneligibleRtDoesNotUnlockBe) {
  // Class precedence is by *queued* state: an RT message queued but not
  // yet sampled still blocks BE? No -- eligibility is per sampling time;
  // if no RT message is eligible the node may request BE (it cannot know
  // about an RT message that has not arrived yet).
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100, /*arrival=*/50));
  q.push(make_msg(2, TrafficClass::kBestEffort, 200, /*arrival=*/0));
  const TimePoint sample = TimePoint::origin() + Duration::nanoseconds(10);
  ASSERT_NE(q.head(sample), nullptr);
  EXPECT_EQ(q.head(sample)->id, 2u);
}

TEST(EdfQueue, NrtIsFifoNotDeadlineOrdered) {
  EdfQueueSet q;
  q.push(make_msg(7, TrafficClass::kNonRealTime, -1, 10));
  q.push(make_msg(6, TrafficClass::kNonRealTime, -1, 20));
  EXPECT_EQ(q.head(later())->id, 7u);
}

TEST(EdfQueue, ConsumeSingleSlotMessageCompletes) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100));
  const auto done = q.consume_slot(1);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, ConsumeMultiSlotMessageStays) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100, 0, /*size=*/3));
  EXPECT_FALSE(q.consume_slot(1).has_value());
  EXPECT_FALSE(q.consume_slot(1).has_value());
  const auto done = q.consume_slot(1);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->size_slots, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, ConsumeUnknownThrows) {
  EdfQueueSet q;
  EXPECT_THROW((void)q.consume_slot(42), ProtocolError);
}

TEST(EdfQueue, Contains) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kBestEffort, 100));
  EXPECT_TRUE(q.contains(1));
  EXPECT_FALSE(q.contains(2));
  (void)q.consume_slot(1);
  EXPECT_FALSE(q.contains(1));
}

TEST(EdfQueue, DropConnection) {
  EdfQueueSet q;
  auto a = make_msg(1, TrafficClass::kRealTime, 100);
  a.connection = 7;
  auto b = make_msg(2, TrafficClass::kRealTime, 200);
  b.connection = 8;
  auto c = make_msg(3, TrafficClass::kRealTime, 300);
  c.connection = 7;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.drop_connection(7), 2u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head(later())->id, 2u);
}

TEST(EdfQueue, ClearDropsEverything) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100));
  q.push(make_msg(2, TrafficClass::kBestEffort, 100));
  q.push(make_msg(3, TrafficClass::kNonRealTime, -1));
  EXPECT_EQ(q.clear(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, SizeOfPerClass) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kRealTime, 100));
  q.push(make_msg(2, TrafficClass::kRealTime, 200));
  q.push(make_msg(3, TrafficClass::kBestEffort, 100));
  EXPECT_EQ(q.size_of(TrafficClass::kRealTime), 2u);
  EXPECT_EQ(q.size_of(TrafficClass::kBestEffort), 1u);
  EXPECT_EQ(q.size_of(TrafficClass::kNonRealTime), 0u);
}

TEST(EdfQueue, EarliestRtDeadline) {
  EdfQueueSet q;
  EXPECT_FALSE(q.earliest_rt_deadline().has_value());
  q.push(make_msg(1, TrafficClass::kRealTime, 500));
  q.push(make_msg(2, TrafficClass::kRealTime, 100));
  ASSERT_TRUE(q.earliest_rt_deadline().has_value());
  EXPECT_EQ(*q.earliest_rt_deadline(),
            TimePoint::origin() + Duration::nanoseconds(100));
}

TEST(EdfQueue, NrtConsumeLeavesRtAndBeOrderUntouched) {
  // Regression for the old triple-scan consume_slot: consuming an NRT
  // message must not disturb the RT/BE queues or their iteration order.
  EdfQueueSet q;
  q.push(make_msg(10, TrafficClass::kRealTime, 300));
  q.push(make_msg(11, TrafficClass::kRealTime, 100));
  q.push(make_msg(20, TrafficClass::kBestEffort, 200));
  q.push(make_msg(21, TrafficClass::kBestEffort, 50));
  q.push(make_msg(30, TrafficClass::kNonRealTime, -1));
  q.push(make_msg(31, TrafficClass::kNonRealTime, -1));

  const auto done = q.consume_slot(30);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->id, 30u);

  EXPECT_EQ(q.size_of(TrafficClass::kRealTime), 2u);
  EXPECT_EQ(q.size_of(TrafficClass::kBestEffort), 2u);
  EXPECT_EQ(q.size_of(TrafficClass::kNonRealTime), 1u);
  // Drain by precedence and verify the EDF / FIFO order survived.
  const MessageId expect_order[] = {11, 10, 21, 20, 31};
  for (const MessageId id : expect_order) {
    ASSERT_NE(q.head(later()), nullptr);
    EXPECT_EQ(q.head(later())->id, id);
    EXPECT_TRUE(q.consume_slot(id).has_value());
  }
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, ConsumeNonFrontNrtMessage) {
  EdfQueueSet q;
  q.push(make_msg(1, TrafficClass::kNonRealTime, -1));
  q.push(make_msg(2, TrafficClass::kNonRealTime, -1));
  q.push(make_msg(3, TrafficClass::kNonRealTime, -1));
  const auto done = q.consume_slot(2);  // middle of the FIFO
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->id, 2u);
  EXPECT_EQ(q.head(later())->id, 1u);
  (void)q.consume_slot(1);
  EXPECT_EQ(q.head(later())->id, 3u);
}

TEST(EdfQueue, RejectsZeroSlotMessage) {
  EdfQueueSet q;
  auto m = make_msg(1, TrafficClass::kRealTime, 100);
  m.size_slots = 0;
  m.remaining_slots = 0;
  EXPECT_THROW(q.push(m), ConfigError);
}

}  // namespace
}  // namespace ccredf::core
