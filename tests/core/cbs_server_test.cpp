#include "core/cbs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;
using sim::TimePoint;

constexpr Duration kSlot = Duration::microseconds(1);

CbsParams params(std::int64_t q, std::int64_t t) {
  CbsParams p;
  p.source = 0;
  p.dests = NodeSet::single(1);
  p.budget_slots = q;
  p.period_slots = t;
  return p;
}

TEST(CbsParams, ValidatesRanges) {
  EXPECT_THROW(CbsServer(params(0, 10), kSlot), ConfigError);
  EXPECT_THROW(CbsServer(params(5, 4), kSlot), ConfigError);
  CbsParams no_dest = params(1, 10);
  no_dest.dests = NodeSet{};
  EXPECT_THROW(CbsServer(no_dest, kSlot), ConfigError);
  CbsParams self = params(1, 10);
  self.dests.insert(0);
  EXPECT_THROW(CbsServer(self, kSlot), ConfigError);
  EXPECT_THROW(CbsServer(params(1, 10), Duration::zero()), ConfigError);
}

TEST(CbsParams, AdmissionRecordWeighsLikePeriodicQOverT) {
  const CbsParams p = params(2, 50);
  EXPECT_DOUBLE_EQ(p.utilisation(), 0.04);
  const ConnectionParams rec = p.admission_params();
  EXPECT_EQ(rec.size_slots, 2);
  EXPECT_EQ(rec.period_slots, 50);
  EXPECT_EQ(rec.service, ServiceClass::kConstantBandwidth);
  EXPECT_EQ(rec.source, p.source);
}

TEST(CbsServer, FirstArrivalRecharges) {
  CbsServer s(params(2, 10), kSlot);
  const TimePoint t0 = TimePoint::origin() + Duration::microseconds(3);
  const TimePoint d = s.on_arrival(t0, /*backlogged=*/false);
  // The fresh server's deadline lies in the past, so the wake-up rule
  // must recharge: c = Q, d = t + T.
  EXPECT_EQ(d, t0 + kSlot * 10);
  EXPECT_EQ(s.budget_remaining(), 2);
  EXPECT_EQ(s.recharges(), 1);
}

TEST(CbsServer, IdleArrivalWithinBandwidthInheritsDeadline) {
  CbsServer s(params(2, 10), kSlot);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint d0 = s.on_arrival(t0, false);
  // Consume one budget slot: c = 1, so the wake-up bound c * T/Q = 5us.
  EXPECT_FALSE(s.charge_slot());
  // An idle arrival 2us in: d - now = 8us > 5us, within the reserved
  // bandwidth -- the job inherits (c, d) unchanged.
  const TimePoint d1 =
      s.on_arrival(t0 + Duration::microseconds(2), false);
  EXPECT_EQ(d1, d0);
  EXPECT_EQ(s.budget_remaining(), 1);
  EXPECT_EQ(s.recharges(), 1);
}

TEST(CbsServer, LateIdleArrivalRecharges) {
  CbsServer s(params(2, 10), kSlot);
  const TimePoint t0 = TimePoint::origin();
  s.on_arrival(t0, false);
  EXPECT_FALSE(s.charge_slot());
  // 7us in: d - now = 3us <= bound 5us -- the pair (c, d) would exceed
  // the reserved bandwidth, so the server recharges.
  const TimePoint late = t0 + Duration::microseconds(7);
  const TimePoint d = s.on_arrival(late, false);
  EXPECT_EQ(d, late + kSlot * 10);
  EXPECT_EQ(s.budget_remaining(), 2);
  EXPECT_EQ(s.recharges(), 2);
}

TEST(CbsServer, BackloggedArrivalNeverRecharges) {
  CbsServer s(params(2, 10), kSlot);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint d0 = s.on_arrival(t0, false);
  EXPECT_FALSE(s.charge_slot());
  // Far past the bandwidth bound, but the server is backlogged: the job
  // queues behind the in-service one and inherits the deadline as-is.
  const TimePoint d1 =
      s.on_arrival(t0 + Duration::microseconds(9), /*backlogged=*/true);
  EXPECT_EQ(d1, d0);
  EXPECT_EQ(s.recharges(), 1);
}

TEST(CbsServer, ExhaustionExactlyAtSlotBoundaryPostpones) {
  CbsServer s(params(2, 10), kSlot);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint d0 = s.on_arrival(t0, false);
  // Q = 2: the first granted slot leaves budget, the second exhausts it
  // EXACTLY at the slot boundary -- the postponement must fire on that
  // slot, not one late.
  EXPECT_FALSE(s.charge_slot());
  EXPECT_EQ(s.budget_remaining(), 1);
  EXPECT_TRUE(s.charge_slot());
  EXPECT_EQ(s.budget_remaining(), 2);       // refilled
  EXPECT_EQ(s.deadline(), d0 + kSlot * 10);  // d += T
  EXPECT_EQ(s.postponements(), 1);
}

TEST(CbsServer, RepeatedOverrunSlidesDeadlineLinearly) {
  CbsServer s(params(1, 4), kSlot);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint d0 = s.on_arrival(t0, false);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_TRUE(s.charge_slot());  // Q = 1: every grant postpones
    EXPECT_EQ(s.deadline(), d0 + kSlot * (4 * k));
  }
  EXPECT_EQ(s.postponements(), 5);
}

}  // namespace
}  // namespace ccredf::core
