#include "core/hypercycle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;
using sim::TimePoint;

constexpr NodeId kNodes = 8;

phy::RingPhy ring8() { return phy::RingPhy(phy::optobus(), kNodes, 10.0); }

Duration slot() { return Duration::microseconds(2); }

HypercyclePlanner planner(const phy::RingPhy& phy,
                          std::int64_t cap = std::int64_t{1} << 16,
                          bool reuse = true) {
  HypercyclePlanner::Config cfg;
  cfg.max_hyperperiod_slots = cap;
  cfg.spatial_reuse = reuse;
  return HypercyclePlanner(&phy, ring::RingTopology(kNodes), slot(), cfg);
}

ConnectionParams conn(NodeId src, NodeId dst, std::int64_t e,
                      std::int64_t p, std::int64_t d = 0) {
  ConnectionParams c;
  c.source = src;
  c.dests = NodeSet::single(dst);
  c.size_slots = e;
  c.period_slots = p;
  c.deadline_slots = d;
  return c;
}

TEST(Hypercycle, EmptySetDoesNotBuild) {
  const auto phy = ring8();
  auto pl = planner(phy);
  EXPECT_FALSE(pl.build(TimePoint::origin(), 0));
  EXPECT_FALSE(pl.valid());
  EXPECT_STREQ(pl.invalid_reason(), "no planned connections");
}

TEST(Hypercycle, SingleConnectionBuilds) {
  const auto phy = ring8();
  auto pl = planner(phy);
  pl.add(0, conn(0, 1, 1, 16), 0);
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0));
  EXPECT_TRUE(pl.valid());
  EXPECT_STREQ(pl.invalid_reason(), "");
  EXPECT_EQ(pl.hyperperiod_slots(), 16);
  // Steady state: exactly one bundle per hyperperiod, one grant.
  ASSERT_EQ(pl.cycle().size(), 1u);
  EXPECT_EQ(pl.cycle()[0].grant_count, 1u);
  EXPECT_EQ(pl.grants(pl.cycle()[0])[0].conn, 0);
  EXPECT_TRUE(pl.is_planned(0));
  EXPECT_FALSE(pl.is_planned(7));
}

TEST(Hypercycle, CoPrimePeriodsUseLcm) {
  const auto phy = ring8();
  auto pl = planner(phy);
  // Co-prime periods: H = lcm(7, 9) = 63.
  pl.add(0, conn(0, 1, 1, 7), 0);
  pl.add(1, conn(4, 5, 1, 9), 0);
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0)) << pl.invalid_reason();
  EXPECT_EQ(pl.hyperperiod_slots(), 63);
  // Each cyclic window completes H/P jobs per connection: 9 + 7 grants.
  std::int64_t grants_c0 = 0;
  std::int64_t grants_c1 = 0;
  for (const auto& b : pl.cycle()) {
    for (std::uint32_t g = 0; g < b.grant_count; ++g) {
      const auto& gr = pl.grants(b)[g];
      if (gr.conn == 0) ++grants_c0;
      if (gr.conn == 1) ++grants_c1;
      EXPECT_TRUE(gr.completes);  // e = 1: every grant completes its job
    }
  }
  EXPECT_EQ(grants_c0, 9);
  EXPECT_EQ(grants_c1, 7);
}

TEST(Hypercycle, HyperperiodCapFallsBack) {
  const auto phy = ring8();
  auto pl = planner(phy, /*cap=*/64);
  // lcm(16, 17, 19) = 5168 > 64: must refuse, never mis-plan.
  pl.add(0, conn(0, 1, 1, 16), 0);
  pl.add(1, conn(2, 3, 1, 17), 0);
  pl.add(2, conn(4, 5, 1, 19), 0);
  EXPECT_FALSE(pl.build(TimePoint::origin(), 0));
  EXPECT_FALSE(pl.valid());
  EXPECT_STREQ(pl.invalid_reason(), "hyperperiod exceeds cap");
}

TEST(Hypercycle, LcmOverflowFallsBack) {
  const auto phy = ring8();
  // A cap near int64 max: the overflow guard (not the cap compare) must
  // catch the product.
  auto pl = planner(phy, std::int64_t{1} << 62);
  pl.add(0, conn(0, 1, 1, (std::int64_t{1} << 31) - 1), 0);
  pl.add(1, conn(2, 3, 1, (std::int64_t{1} << 31) - 99), 0);
  pl.add(2, conn(4, 5, 1, (std::int64_t{1} << 31) - 999), 0);
  EXPECT_FALSE(pl.build(TimePoint::origin(), 0));
  EXPECT_STREQ(pl.invalid_reason(), "hyperperiod exceeds cap");
}

TEST(Hypercycle, DeadlineBeyondPeriodRefused) {
  const auto phy = ring8();
  auto pl = planner(phy);
  // The cursor's FIFO binding allows one outstanding job per connection,
  // so D > P (two live jobs) is out of model.
  ConnectionParams c = conn(0, 1, 1, 8, /*deadline=*/12);
  pl.add(0, c, 0);
  EXPECT_FALSE(pl.build(TimePoint::origin(), 0));
  EXPECT_STREQ(pl.invalid_reason(), "deadline beyond period");
}

TEST(Hypercycle, SpatialReusePacksDisjointSegments) {
  const auto phy = ring8();
  auto pl = planner(phy);
  // Four 1-hop transfers on disjoint quadrants, all same phase/period:
  // spatial reuse must pack them into shared slots.
  for (NodeId i = 0; i < 4; ++i) {
    pl.add(i, conn(static_cast<NodeId>(2 * i),
                   static_cast<NodeId>(2 * i + 1), 1, 8),
           0);
  }
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0)) << pl.invalid_reason();
  EXPECT_DOUBLE_EQ(pl.planned_utilisation(), 0.5);
  bool packed = false;
  for (const auto& b : pl.cycle()) {
    if (b.grant_count > 1) packed = true;
    // Packing invariants: pairwise link-disjoint, master's break link
    // untouched, master is the head grant's source.
    LinkSet taken;
    const LinkId brk = ring::RingTopology(kNodes).break_link(b.master);
    for (std::uint32_t g = 0; g < b.grant_count; ++g) {
      const auto& gr = pl.grants(b)[g];
      EXPECT_FALSE(gr.links.intersects(taken));
      EXPECT_FALSE(gr.links.contains(brk));
      taken |= gr.links;
      EXPECT_TRUE(b.granted.contains(gr.source));
    }
    EXPECT_EQ(b.master, pl.grants(b)[0].source);
  }
  EXPECT_TRUE(packed);
}

TEST(Hypercycle, ReuseOffSerialisesGrants) {
  const auto phy = ring8();
  auto pl = planner(phy, std::int64_t{1} << 16, /*reuse=*/false);
  for (NodeId i = 0; i < 4; ++i) {
    pl.add(i, conn(static_cast<NodeId>(2 * i),
                   static_cast<NodeId>(2 * i + 1), 1, 8),
           0);
  }
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0)) << pl.invalid_reason();
  for (const auto& b : pl.cycle()) EXPECT_EQ(b.grant_count, 1u);
}

TEST(Hypercycle, PlanIndependentOfRegistrationOrder) {
  const auto phy = ring8();
  auto a = planner(phy);
  auto b = planner(phy);
  const std::vector<std::pair<ConnectionId, ConnectionParams>> set = {
      {3, conn(0, 1, 1, 8)},
      {1, conn(2, 3, 2, 16)},
      {9, conn(5, 7, 1, 4)},
  };
  for (const auto& [id, c] : set) a.add(id, c, 0);
  for (auto it = set.rbegin(); it != set.rend(); ++it) {
    b.add(it->first, it->second, 0);
  }
  ASSERT_TRUE(a.build(TimePoint::origin(), 2)) << a.invalid_reason();
  ASSERT_TRUE(b.build(TimePoint::origin(), 2)) << b.invalid_reason();
  ASSERT_EQ(a.prefix().size(), b.prefix().size());
  ASSERT_EQ(a.cycle().size(), b.cycle().size());
  const auto same = [&](const HypercyclePlanner::Bundle& x,
                        const HypercyclePlanner::Bundle& y) {
    EXPECT_EQ(x.master, y.master);
    EXPECT_EQ(x.layout_slot, y.layout_slot);
    EXPECT_EQ(x.release_slot, y.release_slot);
    ASSERT_EQ(x.grant_count, y.grant_count);
    for (std::uint32_t g = 0; g < x.grant_count; ++g) {
      EXPECT_EQ(a.grants(x)[g].conn, b.grants(y)[g].conn);
      EXPECT_EQ(a.grants(x)[g].release_slot, b.grants(y)[g].release_slot);
      EXPECT_EQ(a.grants(x)[g].completes, b.grants(y)[g].completes);
    }
  };
  for (std::size_t i = 0; i < a.prefix().size(); ++i) {
    same(a.prefix()[i], b.prefix()[i]);
  }
  for (std::size_t i = 0; i < a.cycle().size(); ++i) {
    same(a.cycle()[i], b.cycle()[i]);
  }
}

TEST(Hypercycle, PlanForSlotMatchesCycleLayout) {
  const auto phy = ring8();
  auto pl = planner(phy);
  pl.add(0, conn(0, 1, 1, 4), 0);
  pl.add(1, conn(4, 6, 1, 8), 0);
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0)) << pl.invalid_reason();
  // Every cyclic bundle is found at its layout offset; every other slot
  // of the hyperperiod maps to -1.
  std::vector<bool> used(static_cast<std::size_t>(pl.hyperperiod_slots()));
  for (std::size_t i = 0; i < pl.cycle().size(); ++i) {
    const auto off = static_cast<std::size_t>(pl.cycle()[i].layout_slot);
    EXPECT_EQ(pl.plan_for_slot(pl.cycle()[i].layout_slot),
              static_cast<std::int32_t>(i));
    used[off] = true;
  }
  for (std::int64_t s = 0; s < pl.hyperperiod_slots(); ++s) {
    if (!used[static_cast<std::size_t>(s)]) {
      EXPECT_EQ(pl.plan_for_slot(s), -1);
    }
  }
}

TEST(Hypercycle, AdmitsPastEq6CeilingWithProof) {
  const auto phy = ring8();
  auto pl = planner(phy);
  // Two 1-hop streams per unit segment, all eight segments: total
  // utilisation 16/8 = 2.0, past any per-slot U_max < 1 -- admissible
  // only because spatial reuse multiplies per-slot GRANT capacity.
  for (NodeId i = 0; i < kNodes; ++i) {
    pl.add(2 * i, conn(i, static_cast<NodeId>((i + 1) % kNodes), 1, 8), 0);
    pl.add(2 * i + 1, conn(i, static_cast<NodeId>((i + 1) % kNodes), 1, 8),
           0);
  }
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0)) << pl.invalid_reason();
  EXPECT_DOUBLE_EQ(pl.planned_utilisation(), 2.0);
}

TEST(Hypercycle, OverSubscriptionMissesDeadline) {
  const auto phy = ring8();
  auto pl = planner(phy);
  // Two connections through the SAME link (0->2 covers 0->1), jointly
  // over unit utilisation: no packing can save this, the feasibility
  // sim must refuse.
  pl.add(0, conn(0, 2, 3, 4), 0);
  pl.add(1, conn(0, 1, 3, 4), 0);
  EXPECT_FALSE(pl.build(TimePoint::origin(), 0));
  EXPECT_FALSE(pl.valid());
}

TEST(Hypercycle, ClearDropsPlanAndConnections) {
  const auto phy = ring8();
  auto pl = planner(phy);
  pl.add(0, conn(0, 1, 1, 8), 0);
  ASSERT_TRUE(pl.build(TimePoint::origin(), 0));
  pl.clear();
  EXPECT_FALSE(pl.valid());
  EXPECT_EQ(pl.connection_count(), 0u);
  EXPECT_FALSE(pl.is_planned(0));
}

}  // namespace
}  // namespace ccredf::core
