#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::core {
namespace {

TEST(PriorityLayout, PaperTable1Allocation) {
  // 5-bit field (paper Fig. 4): 0 nothing, 1 NRT, 2-16 BE, 17-31 RT.
  const PriorityLayout l;
  EXPECT_EQ(l.field_bits, 5u);
  EXPECT_EQ(l.max_level(), 31);
  EXPECT_EQ(l.nothing(), 0);
  EXPECT_EQ(l.non_real_time(), 1);
  EXPECT_EQ(l.best_effort_lo(), 2);
  EXPECT_EQ(l.best_effort_hi(), 16);
  EXPECT_EQ(l.real_time_lo(), 17);
  EXPECT_EQ(l.real_time_hi(), 31);
}

TEST(PriorityLayout, ClassBandsOrdered) {
  // RT always outranks BE, which always outranks NRT (paper §3).
  const PriorityLayout l;
  EXPECT_GT(l.class_lo(TrafficClass::kRealTime),
            l.class_hi(TrafficClass::kBestEffort));
  EXPECT_GT(l.class_lo(TrafficClass::kBestEffort),
            l.class_hi(TrafficClass::kNonRealTime));
  EXPECT_GT(l.class_lo(TrafficClass::kNonRealTime), l.nothing());
}

TEST(PriorityLayout, EightBitVariant) {
  PriorityLayout l;
  l.field_bits = 8;
  l.validate();
  EXPECT_EQ(l.max_level(), 255);
  EXPECT_EQ(l.best_effort_hi(), 128);
  EXPECT_EQ(l.real_time_lo(), 129);
  EXPECT_EQ(l.real_time_hi(), 255);
}

TEST(PriorityLayout, ValidatesWidth) {
  PriorityLayout l;
  l.field_bits = 2;
  EXPECT_THROW(l.validate(), ConfigError);
  l.field_bits = 9;
  EXPECT_THROW(l.validate(), ConfigError);
}

TEST(LogarithmicMapper, ZeroLaxityIsMaxUrgency) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 0), l.real_time_hi());
  EXPECT_EQ(m.map(l, TrafficClass::kBestEffort, 0), l.best_effort_hi());
}

TEST(LogarithmicMapper, NegativeLaxityClampsToMax) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, -100), l.real_time_hi());
}

TEST(LogarithmicMapper, OneLevelPerDoubling) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  const Priority top = l.real_time_hi();
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 1), top - 1);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 2), top - 1);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 3), top - 2);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 6), top - 2);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 7), top - 3);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 14), top - 3);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 15), top - 4);
}

TEST(LogarithmicMapper, MonotonicallyNonIncreasingInLaxity) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  Priority prev = l.real_time_hi();
  for (std::int64_t laxity = 0; laxity < 100'000; laxity += 7) {
    const Priority p = m.map(l, TrafficClass::kRealTime, laxity);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(LogarithmicMapper, SaturatesAtClassFloor) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, INT64_MAX / 4),
            l.real_time_lo());
  EXPECT_EQ(m.map(l, TrafficClass::kBestEffort, INT64_MAX / 4),
            l.best_effort_lo());
}

TEST(LogarithmicMapper, NeverReturnsReservedZero) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  for (std::int64_t laxity : {0L, 1L, 100L, 1L << 40}) {
    for (auto cls : {TrafficClass::kRealTime, TrafficClass::kBestEffort,
                     TrafficClass::kNonRealTime}) {
      EXPECT_GT(m.map(l, cls, laxity), 0);
    }
  }
}

TEST(LogarithmicMapper, NrtAlwaysLevelOne) {
  const PriorityLayout l;
  const LogarithmicMapper m;
  EXPECT_EQ(m.map(l, TrafficClass::kNonRealTime, 0), 1);
  EXPECT_EQ(m.map(l, TrafficClass::kNonRealTime, 1'000'000), 1);
}

TEST(LogarithmicMapper, FinestResolutionNearDeadline) {
  // Levels consumed over laxity [0,16) must exceed those over [16,32):
  // the logarithmic map spends its resolution close to the deadline.
  const PriorityLayout l;
  const LogarithmicMapper m;
  const int near = m.map(l, TrafficClass::kRealTime, 0) -
                   m.map(l, TrafficClass::kRealTime, 15);
  const int far = m.map(l, TrafficClass::kRealTime, 16) -
                  m.map(l, TrafficClass::kRealTime, 31);
  EXPECT_GT(near, far);
}

TEST(LinearMapper, QuantumSteps) {
  const PriorityLayout l;
  const LinearMapper m(10);
  const Priority top = l.real_time_hi();
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 0), top);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 9), top);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 10), top - 1);
  EXPECT_EQ(m.map(l, TrafficClass::kRealTime, 25), top - 2);
}

TEST(LinearMapper, RejectsNonPositiveQuantum) {
  EXPECT_THROW(LinearMapper(0), ConfigError);
  EXPECT_THROW(LinearMapper(-5), ConfigError);
}

TEST(Mappers, ReportNames) {
  EXPECT_STREQ(LogarithmicMapper{}.name(), "logarithmic");
  EXPECT_STREQ(LinearMapper{4}.name(), "linear");
}

}  // namespace
}  // namespace ccredf::core
