#include "core/arbitration.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ring/segment.hpp"
#include "sim/rng.hpp"

namespace ccredf::core {
namespace {

Request req(Priority prio, const ring::RingTopology& topo, NodeId src,
            NodeId dst) {
  Request r;
  r.priority = prio;
  const auto seg = ring::Segment::for_transmission(topo, src,
                                                   NodeSet::single(dst));
  r.links = seg.links();
  r.dests = NodeSet::single(dst);
  return r;
}

TEST(Arbiter, NoRequestsKeepsMaster) {
  const ring::RingTopology topo(4);
  const Arbiter arb(topo, true);
  const std::vector<Request> reqs(4);
  const auto r = arb.arbitrate(reqs, 2);
  EXPECT_EQ(r.next_master, 2u);
  EXPECT_EQ(r.granted_count, 0);
  EXPECT_TRUE(r.packet.granted.empty());
}

TEST(Arbiter, SingleRequestWinsAndBecomesMaster) {
  const ring::RingTopology topo(4);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(4);
  reqs[2] = req(20, topo, 2, 3);
  const auto r = arb.arbitrate(reqs, 0);
  EXPECT_EQ(r.next_master, 2u);
  EXPECT_TRUE(r.packet.granted.contains(2));
  EXPECT_EQ(r.granted_count, 1);
}

TEST(Arbiter, HighestPriorityAlwaysBecomesMasterAndIsGranted) {
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(6);
  reqs[1] = req(18, topo, 1, 4);
  reqs[3] = req(30, topo, 3, 0);
  reqs[5] = req(25, topo, 5, 2);
  const auto r = arb.arbitrate(reqs, 0);
  EXPECT_EQ(r.next_master, 3u);
  EXPECT_TRUE(r.packet.granted.contains(3));
  EXPECT_EQ(r.packet.hp_node, 3u);
}

TEST(Arbiter, TieBrokenByLowerIndex) {
  // Paper §3: "In the event priority ties the index ... resolves the tie."
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(6);
  reqs[4] = req(20, topo, 4, 5);
  reqs[2] = req(20, topo, 2, 3);
  const auto r = arb.arbitrate(reqs, 0);
  EXPECT_EQ(r.next_master, 2u);
}

TEST(Arbiter, SpatialReuseGrantsDisjointSegments) {
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(6);
  reqs[0] = req(30, topo, 0, 2);  // links 0,1
  reqs[2] = req(20, topo, 2, 4);  // links 2,3
  const auto r = arb.arbitrate(reqs, 1);
  EXPECT_EQ(r.granted_count, 2);
  EXPECT_TRUE(r.packet.granted.contains(0));
  EXPECT_TRUE(r.packet.granted.contains(2));
}

TEST(Arbiter, OverlappingLowerPriorityDenied) {
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(6);
  reqs[0] = req(30, topo, 0, 3);  // links 0,1,2
  reqs[2] = req(20, topo, 2, 4);  // links 2,3 -- clashes on link 2
  const auto r = arb.arbitrate(reqs, 1);
  EXPECT_EQ(r.granted_count, 1);
  EXPECT_TRUE(r.packet.granted.contains(0));
  EXPECT_FALSE(r.packet.granted.contains(2));
}

TEST(Arbiter, SecondaryGrantMustAvoidNewMastersBreakLink) {
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(6);
  // Winner: node 3 (master next slot); its break link is link 2 (into 3).
  reqs[3] = req(30, topo, 3, 5);  // links 3,4
  // Node 1 -> 3 needs links 1,2; link 2 is the break link -> denied even
  // though it does not overlap the winner's links.
  reqs[1] = req(25, topo, 1, 3);
  // Node 0 -> 1 needs link 0 only -> granted.
  reqs[0] = req(20, topo, 0, 1);
  const auto r = arb.arbitrate(reqs, 2);
  EXPECT_EQ(r.next_master, 3u);
  EXPECT_TRUE(r.packet.granted.contains(3));
  EXPECT_FALSE(r.packet.granted.contains(1));
  EXPECT_TRUE(r.packet.granted.contains(0));
}

TEST(Arbiter, WithoutSpatialReuseOnlyWinnerGranted) {
  // Analysis mode (paper §5): one message per slot.
  const ring::RingTopology topo(6);
  const Arbiter arb(topo, false);
  std::vector<Request> reqs(6);
  reqs[0] = req(30, topo, 0, 2);
  reqs[3] = req(20, topo, 3, 5);  // disjoint, would be granted with reuse
  const auto r = arb.arbitrate(reqs, 1);
  EXPECT_EQ(r.granted_count, 1);
  EXPECT_TRUE(r.packet.granted.contains(0));
  EXPECT_FALSE(r.packet.granted.contains(3));
}

TEST(Arbiter, FullRingBroadcastByWinnerBlocksEveryoneElse) {
  const ring::RingTopology topo(5);
  const Arbiter arb(topo, true);
  std::vector<Request> reqs(5);
  NodeSet all = topo.all_nodes();
  all.erase(2);
  Request b;
  b.priority = 31;
  const auto seg = ring::Segment::for_transmission(topo, 2, all);
  b.links = seg.links();
  b.dests = all;
  reqs[2] = b;
  reqs[0] = req(30, topo, 0, 1);
  const auto r = arb.arbitrate(reqs, 0);
  EXPECT_EQ(r.next_master, 2u);
  EXPECT_EQ(r.granted_count, 1);
  EXPECT_TRUE(r.packet.granted.contains(2));
}

TEST(Arbiter, GrantedLinksNeverOverlap_PropertySweep) {
  // Core safety invariant under random request soups.
  sim::Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    const auto n = static_cast<NodeId>(3 + rng.uniform_u64(12));
    const ring::RingTopology topo(n);
    const Arbiter arb(topo, true);
    std::vector<Request> reqs(n);
    for (NodeId i = 0; i < n; ++i) {
      if (rng.bernoulli(0.3)) continue;
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.uniform_u64(n));
      } while (dst == i);
      reqs[i] = req(static_cast<Priority>(1 + rng.uniform_u64(31)), topo, i,
                    dst);
    }
    const auto master = static_cast<NodeId>(rng.uniform_u64(n));
    const auto r = arb.arbitrate(reqs, master);

    LinkSet seen;
    for (const NodeId g : r.packet.granted) {
      EXPECT_FALSE(reqs[g].links.intersects(seen));
      seen |= reqs[g].links;
      // No granted segment may use the next master's break link.
      EXPECT_FALSE(
          reqs[g].links.contains(topo.break_link(r.next_master)));
    }
    // The highest-priority requester (if any) is always granted.
    NodeId hp = kInvalidNode;
    Priority best = 0;
    for (NodeId i = 0; i < n; ++i) {
      if (reqs[i].priority > best) {
        best = reqs[i].priority;
        hp = i;
      }
    }
    if (hp != kInvalidNode) {
      EXPECT_EQ(r.next_master, hp);
      EXPECT_TRUE(r.packet.granted.contains(hp));
    } else {
      EXPECT_EQ(r.next_master, master);
    }
  }
}

TEST(Arbiter, RejectsWrongRequestCount) {
  const ring::RingTopology topo(4);
  const Arbiter arb(topo, true);
  EXPECT_THROW((void)arb.arbitrate(std::vector<Request>(3), 0), ConfigError);
  EXPECT_THROW((void)arb.arbitrate(std::vector<Request>(4), 4), ConfigError);
}

}  // namespace
}  // namespace ccredf::core
