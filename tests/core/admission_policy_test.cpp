// Density-based admission for deadline-constrained connections (the
// D_i < P_i extension; paper §5 assumes D_i = P_i).
#include <gtest/gtest.h>

#include "core/admission.hpp"
#include "net/network.hpp"

namespace ccredf::core {
namespace {

using sim::TimePoint;

ConnectionParams conn(std::int64_t e, std::int64_t p, std::int64_t d = 0) {
  ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(1);
  c.size_slots = e;
  c.period_slots = p;
  c.deadline_slots = d;
  return c;
}

TEST(AdmissionPolicy, WeightsAgreeWhenDeadlineEqualsPeriod) {
  const AdmissionController u(1.0, AdmissionPolicy::kUtilisation);
  const AdmissionController d(1.0, AdmissionPolicy::kDensity);
  const auto c = conn(2, 10);
  EXPECT_DOUBLE_EQ(u.weight(c), 0.2);
  EXPECT_DOUBLE_EQ(d.weight(c), 0.2);
}

TEST(AdmissionPolicy, DensityWeighsConstrainedDeadlines) {
  const AdmissionController d(1.0, AdmissionPolicy::kDensity);
  EXPECT_DOUBLE_EQ(d.weight(conn(2, 10, 4)), 0.5);  // e / D
  const AdmissionController u(1.0, AdmissionPolicy::kUtilisation);
  EXPECT_DOUBLE_EQ(u.weight(conn(2, 10, 4)), 0.2);  // e / P (unsafe!)
}

TEST(AdmissionPolicy, DensityRejectsWhatUtilisationWronglyAccepts) {
  // Two connections, each e=2 P=10 D=4: density 0.5 + 0.5 > 0.8 bound,
  // utilisation 0.2 + 0.2 <= 0.8.
  AdmissionController util(0.8, AdmissionPolicy::kUtilisation);
  AdmissionController dens(0.8, AdmissionPolicy::kDensity);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(util.request(conn(2, 10, 4), TimePoint::origin()).admitted);
  }
  EXPECT_TRUE(dens.request(conn(2, 10, 4), TimePoint::origin()).admitted);
  EXPECT_FALSE(dens.request(conn(2, 10, 4), TimePoint::origin()).admitted);
}

TEST(AdmissionPolicy, DensityReleaseRestoresBudget) {
  AdmissionController dens(0.6, AdmissionPolicy::kDensity);
  const auto r = dens.request(conn(2, 10, 4), TimePoint::origin());
  ASSERT_TRUE(r.admitted);
  EXPECT_NEAR(dens.utilisation(), 0.5, 1e-12);
  EXPECT_TRUE(dens.release(r.id));
  EXPECT_NEAR(dens.utilisation(), 0.0, 1e-12);
}

TEST(AdmissionPolicy, NetworkHonoursConfiguredPolicy) {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.admission_policy = AdmissionPolicy::kDensity;
  net::Network n(cfg);
  EXPECT_EQ(n.admission().policy(), AdmissionPolicy::kDensity);
}

TEST(AdmissionPolicy, DensityAdmittedConstrainedDeadlinesAreMet) {
  // End to end: constrained-deadline connections admitted under density
  // keep their user-level guarantee.
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.admission_policy = AdmissionPolicy::kDensity;
  net::Network n(cfg);
  ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(3);
  c.size_slots = 1;
  c.period_slots = 30;
  c.deadline_slots = 6;  // deadline well short of the period
  ASSERT_TRUE(n.open_connection(c).admitted);
  ConnectionParams c2 = c;
  c2.source = 2;
  c2.dests = NodeSet::single(5);
  c2.deadline_slots = 8;
  ASSERT_TRUE(n.open_connection(c2).admitted);
  n.run_slots(3000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 150);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(AdmissionPolicy, UtilisationPolicyCanOversubscribeConstrained) {
  // Documented hazard: with kUtilisation, heavy constrained-deadline sets
  // can be admitted beyond what their deadlines allow.  We only verify
  // the admission decision differs; scheduling consequences depend on
  // phasing.
  net::NetworkConfig cfg_u, cfg_d;
  cfg_u.nodes = cfg_d.nodes = 6;
  cfg_d.admission_policy = AdmissionPolicy::kDensity;
  net::Network nu(cfg_u), nd(cfg_d);
  ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(3);
  c.size_slots = 4;
  c.period_slots = 40;
  c.deadline_slots = 5;  // density 0.8 vs utilisation 0.1
  int admitted_u = 0, admitted_d = 0;
  for (NodeId i = 0; i < 5; ++i) {
    ConnectionParams ci = c;
    ci.source = i;
    ci.dests = NodeSet::single((i + 3) % 6);
    if (nu.open_connection(ci).admitted) ++admitted_u;
    if (nd.open_connection(ci).admitted) ++admitted_d;
  }
  EXPECT_EQ(admitted_u, 5);  // utilisation test sees only 0.5 total
  EXPECT_LE(admitted_d, 1);  // density test sees 0.8 each
}

}  // namespace
}  // namespace ccredf::core
