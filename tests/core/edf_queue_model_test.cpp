// Model-based fuzzing of EdfQueueSet: random operation sequences checked
// against a deliberately naive reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/edf_queue.hpp"
#include "sim/rng.hpp"

namespace ccredf::core {
namespace {

using sim::Duration;
using sim::TimePoint;

/// A brain-dead reference: flat vector + linear scans.
class ReferenceQueue {
 public:
  void push(Message m) { msgs_.push_back(std::move(m)); }

  [[nodiscard]] const Message* head(TimePoint sample) const {
    const Message* best = nullptr;
    // Class precedence first, then EDF (deadline, arrival, id).  For NRT
    // the order is FIFO, which we emulate with (arrival, push order);
    // push order is id order in this fuzz (ids ascend).
    for (int cls = 2; cls >= 0; --cls) {
      for (const auto& m : msgs_) {
        if (static_cast<int>(m.traffic_class) != cls) continue;
        if (m.arrival > sample) continue;
        if (best == nullptr) {
          best = &m;
          continue;
        }
        if (cls == 0) {  // NRT FIFO: first pushed wins (ids ascend)
          if (m.id < best->id) best = &m;
          continue;
        }
        const auto key = [](const Message& x) {
          return std::tuple(x.deadline, x.arrival, x.id);
        };
        if (key(m) < key(*best)) best = &m;
      }
      if (best != nullptr) return best;
    }
    return nullptr;
  }

  std::optional<Message> consume_slot(MessageId id) {
    for (auto it = msgs_.begin(); it != msgs_.end(); ++it) {
      if (it->id != id) continue;
      if (--it->remaining_slots > 0) return std::nullopt;
      Message done = *it;
      msgs_.erase(it);
      return done;
    }
    return std::nullopt;  // unreachable in this fuzz
  }

  std::size_t drop_connection(ConnectionId c) {
    const auto before = msgs_.size();
    std::erase_if(msgs_, [c](const Message& m) { return m.connection == c; });
    return before - msgs_.size();
  }

  [[nodiscard]] std::size_t size() const { return msgs_.size(); }

 private:
  std::vector<Message> msgs_;
};

class EdfModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfModelFuzz, MatchesReferenceOnRandomOps) {
  sim::Rng rng(GetParam());
  EdfQueueSet real;
  ReferenceQueue ref;
  MessageId next_id = 1;
  std::int64_t now_ns = 0;

  for (int op = 0; op < 2'000; ++op) {
    now_ns += rng.uniform_int(0, 50);
    const TimePoint now = TimePoint::origin() + Duration::nanoseconds(now_ns);
    const auto action = rng.uniform_u64(10);
    if (action < 5) {  // push
      Message m;
      m.id = next_id++;
      m.source = 0;
      m.dests = NodeSet::single(1);
      const auto cls = rng.uniform_u64(3);
      m.traffic_class = static_cast<TrafficClass>(cls);
      m.size_slots = rng.uniform_int(1, 4);
      m.remaining_slots = m.size_slots;
      // Arrivals may be "in the future" relative to later samples.
      m.arrival = now + Duration::nanoseconds(rng.uniform_int(0, 100));
      m.deadline = m.traffic_class == TrafficClass::kNonRealTime
                       ? TimePoint::infinity()
                       : m.arrival + Duration::nanoseconds(
                                         rng.uniform_int(1, 1'000));
      m.connection = static_cast<ConnectionId>(rng.uniform_u64(5));
      real.push(m);
      ref.push(m);
    } else if (action < 8) {  // sample + consume the head
      const TimePoint sample =
          now + Duration::nanoseconds(rng.uniform_int(0, 120));
      const Message* a = real.head(sample);
      const Message* b = ref.head(sample);
      ASSERT_EQ(a == nullptr, b == nullptr) << "op " << op;
      if (a != nullptr) {
        ASSERT_EQ(a->id, b->id) << "op " << op;
        const auto da = real.consume_slot(a->id);
        const auto db = ref.consume_slot(b->id);
        ASSERT_EQ(da.has_value(), db.has_value());
        if (da) {
          ASSERT_EQ(da->id, db->id);
        }
      }
    } else if (action == 8) {  // drop a random connection
      const auto c = static_cast<ConnectionId>(rng.uniform_u64(5));
      ASSERT_EQ(real.drop_connection(c), ref.drop_connection(c));
    } else {  // size probe
      ASSERT_EQ(real.size(), ref.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfModelFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ccredf::core
