// The multimedia scenario end-to-end: streams admitted, background load
// running, all stream deadlines met -- mirrors the multimedia_lan example
// as an assertion-carrying test.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "services/flow.hpp"
#include "services/messaging.hpp"
#include "workload/multimedia.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;

TEST(MultimediaRun, StreamsMeetDeadlinesUnderBackgroundLoad) {
  const auto scenario =
      workload::make_multimedia_scenario(workload::MultimediaParams{});
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  net::Network n(cfg);
  int admitted = 0;
  for (const auto& c : scenario.connections) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, static_cast<int>(scenario.connections.size()));

  workload::PoissonGenerator bg(
      n, scenario.background,
      sim::TimePoint::origin() + n.timing().slot() * 5000);
  n.run_slots(6000);

  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 100);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(MultimediaRun, MessengerAndFlowComposeOnALoadedRing) {
  // Integration of two services on one network: windowed byte transfers
  // complete with intact payloads while RT streams run.
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  net::Network n(cfg);
  const auto scenario =
      workload::make_multimedia_scenario(workload::MultimediaParams{});
  for (const auto& c : scenario.connections) {
    (void)n.open_connection(c);
  }

  services::Messenger msn(n);
  services::CreditFlowControl flow(n, /*window=*/2);
  int received = 0;
  msn.set_handler(6, [&](NodeId, const services::Messenger::Received& r) {
    EXPECT_FALSE(r.payload.empty());
    ++received;
  });
  // Ten windowed one-slot transfers 1 -> 6: the flow controller must
  // block beyond the window and drain as credits return.
  const std::vector<std::uint8_t> blob(64, 0x5A);
  for (int k = 0; k < 10; ++k) {
    // Messenger and flow are independent services; emulate a flow-
    // controlled byte channel by gating sends through the flow window.
    if (!flow.send(1, 6, 1, sim::Duration::milliseconds(50))) {
      // Blocked sends drain automatically; also push the payload variant
      // so the messenger path is exercised.
    }
    msn.send_bytes(1, 6, blob, core::TrafficClass::kBestEffort,
                   sim::Duration::milliseconds(50));
  }
  n.run_slots(3000);
  EXPECT_EQ(received, 10);
  EXPECT_EQ(flow.blocked(1, 6), 0u);
  EXPECT_GT(flow.sends_blocked_total(), 0);
  EXPECT_EQ(n.stats().cls(TrafficClass::kRealTime).user_misses, 0);
}

}  // namespace
}  // namespace ccredf
