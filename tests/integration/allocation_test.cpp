// Steady-state allocation audit for the slot engine.
//
// The whole point of the pooled event queue, the indexed EDF queues and
// the reused per-slot scratch is that a warmed-up simulation runs without
// touching the heap.  This binary replaces global operator new/delete
// with counting versions and asserts that running thousands of slots of
// an admitted periodic CCR-EDF load performs zero allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/network.hpp"
#include "workload/periodic.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator.  Only the allocation paths count; deletes
// stay silent so teardown noise cannot perturb a measurement window.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC pairs the replaced operator new (malloc-backed) with the standard
// deallocation functions and, once these deletes inline into callers,
// misreports the intended malloc/free pairing as mismatched.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace ccredf {
namespace {

TEST(Allocation, SteadyStateSlotsAreAllocationFree) {
  net::NetworkConfig cfg;
  cfg.nodes = 16;
  cfg.record_inboxes = false;  // inboxes grow forever by design
  net::Network n(cfg);

  // A strictly periodic admitted load: one connection per node at a
  // common period, so the queue population cycles through its full range
  // well inside the warm-up window.
  workload::PeriodicSetParams wp;
  wp.nodes = cfg.nodes;
  wp.connections = static_cast<int>(cfg.nodes);
  wp.total_utilisation = 0.5 * n.admission().u_max();
  wp.min_period_slots = 100;
  wp.max_period_slots = 100;
  wp.seed = 7;
  int admitted = 0;
  for (const auto& c : workload::make_periodic_set(wp)) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  ASSERT_GT(admitted, 0);

  // Warm-up: every pool, slab, vector and hash table reaches its
  // high-water capacity (50 full release periods).
  n.run_slots(5'000);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  n.run_slots(2'000);
  const std::uint64_t during =
      g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(during, 0u)
      << during << " heap allocations in 2000 steady-state slots -- "
         "something on the slot path is allocating again";
  // Sanity: the run actually simulated work.
  EXPECT_GT(n.stats().cls(core::TrafficClass::kRealTime).delivered, 0);
}

}  // namespace
}  // namespace ccredf
