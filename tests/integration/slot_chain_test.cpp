// Consistency of the observable slot chain: indices are consecutive,
// every slot's start equals the previous slot's end plus its gap, the
// master of slot k+1 is slot k's announced next master, and granted
// nodes are a subset of the previous slot's wanting requesters.
#include <gtest/gtest.h>

#include <optional>

#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using net::Network;
using net::NetworkConfig;
using net::SlotRecord;

class SlotChain : public ::testing::TestWithParam<int> {};

TEST_P(SlotChain, ChainInvariants) {
  NetworkConfig cfg;
  cfg.nodes = 8;
  switch (GetParam()) {
    case 1:
      cfg.protocol_factory = baseline::ccfpr_factory();
      break;
    case 2:
      cfg.protocol_factory = baseline::tdma_factory();
      break;
    default:
      break;
  }
  Network n(cfg);

  std::optional<SlotRecord> prev;
  std::int64_t checked = 0;
  n.add_slot_observer([&](const SlotRecord& rec) {
    EXPECT_EQ(rec.end - rec.start, n.timing().slot());
    EXPECT_EQ(rec.requests.size(), n.nodes());
    if (prev) {
      EXPECT_EQ(rec.index, prev->index + 1);
      EXPECT_EQ(rec.start, prev->end + prev->gap_after);
      EXPECT_EQ(rec.master, prev->next_master);
      // Every node granted in this slot requested it in the previous
      // collection phase.
      for (const NodeId g : rec.granted) {
        EXPECT_TRUE(prev->requests[g].wants_slot())
            << "slot " << rec.index << " node " << g;
      }
      ++checked;
    }
    prev = rec;
  });

  workload::PoissonParams p;
  p.rate_per_node = 0.5;
  p.seed = 3;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 500);
  n.run_slots(600);
  EXPECT_GT(checked, 500);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SlotChain,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           switch (tpi.param) {
                             case 1:
                               return std::string("CcFpr");
                             case 2:
                               return std::string("Tdma");
                             default:
                               return std::string("CcrEdf");
                           }
                         });

TEST(SlotChain, SimClockNeverOutrunsSlotEngine) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  n.add_slot_observer([&](const SlotRecord& rec) {
    EXPECT_LE(n.sim().now(), rec.end + rec.gap_after);
  });
  n.run_slots(100);
}

}  // namespace
}  // namespace ccredf
