// Property sweeps: protocol invariants under randomised topologies and
// loads (TEST_P across node counts x seeds x utilisation).
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/schedulability.hpp"
#include "net/network.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;
using net::Network;
using net::NetworkConfig;
using net::SlotRecord;

struct SweepParam {
  NodeId nodes;
  std::uint64_t seed;
  double utilisation_fraction;  // of U_max
};

class CcrEdfProperties
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CcrEdfProperties, InvariantsHoldUnderPeriodicLoad) {
  const SweepParam p = GetParam();
  NetworkConfig cfg;
  cfg.nodes = p.nodes;
  Network n(cfg);

  // Invariant observers --------------------------------------------------
  std::int64_t violations = 0;
  n.add_slot_observer([&](const SlotRecord& rec) {
    // (1) Granted segments never overlap and avoid the next master's
    //     break link (checked against the *requests* of the previous
    //     slot is awkward; instead check this slot's plan via next).
    // (2) The hand-over gap matches Eq. 1 for the observed hop count.
    const NodeId hops = n.topology().hops(rec.master, rec.next_master);
    const auto& lp = n.phy().link();
    sim::Duration expect = lp.control_time(2 * lp.clock_stop_bits);
    if (hops > 0 && !rec.token_lost) {
      expect += n.phy().path_delay(rec.master, hops);
    }
    if (!rec.token_lost && rec.gap_after != expect) ++violations;
    // (3) The next master is the highest-priority requester (or the
    //     current master if nobody requested).
    NodeId hp = kInvalidNode;
    core::Priority best = 0;
    for (NodeId i = 0; i < rec.requests.size(); ++i) {
      if (rec.requests[i].priority > best) {
        best = rec.requests[i].priority;
        hp = i;
      }
    }
    if (!rec.token_lost) {
      if (hp == kInvalidNode) {
        if (rec.next_master != rec.master) ++violations;
      } else if (rec.next_master != hp) {
        ++violations;
      }
    }
  });

  // Load ------------------------------------------------------------------
  workload::PeriodicSetParams wp;
  wp.nodes = p.nodes;
  wp.connections = static_cast<int>(p.nodes) * 2;
  wp.total_utilisation = p.utilisation_fraction * n.admission().u_max();
  wp.min_period_slots = 40;
  wp.max_period_slots = 400;
  wp.seed = p.seed;
  int admitted = 0;
  for (const auto& c : workload::make_periodic_set(wp)) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  EXPECT_GT(admitted, 0);

  n.run_slots(1500);

  EXPECT_EQ(violations, 0);
  EXPECT_EQ(n.stats().priority_inversions, 0);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 0);
  // Admitted connections keep the user-level guarantee (Eq. 3).
  EXPECT_EQ(rt.user_misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcrEdfProperties,
    ::testing::Values(
        SweepParam{4, 1, 0.3}, SweepParam{4, 2, 0.6},
        SweepParam{8, 3, 0.3}, SweepParam{8, 4, 0.6},
        SweepParam{8, 5, 0.85}, SweepParam{16, 6, 0.4},
        SweepParam{16, 7, 0.7}, SweepParam{32, 8, 0.5},
        SweepParam{12, 9, 0.85}, SweepParam{6, 10, 0.75}),
    [](const ::testing::TestParamInfo<SweepParam>& tpi) {
      // Built via ostringstream: chained operator+ on temporaries trips a
      // GCC 12 -Wrestrict false positive at -O3.
      std::ostringstream name;
      name << 'n' << tpi.param.nodes << "_s" << tpi.param.seed << "_u"
           << static_cast<int>(tpi.param.utilisation_fraction * 100);
      return name.str();
    });

class MixedTrafficProperties
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(MixedTrafficProperties, BestEffortNeverDisturbsRealTime) {
  const auto [nodes, seed] = GetParam();
  NetworkConfig cfg;
  cfg.nodes = nodes;
  Network n(cfg);

  workload::PeriodicSetParams wp;
  wp.nodes = nodes;
  wp.connections = static_cast<int>(nodes);
  wp.total_utilisation = 0.5 * n.admission().u_max();
  wp.min_period_slots = 50;
  wp.max_period_slots = 300;
  wp.seed = seed;
  for (const auto& c : workload::make_periodic_set(wp)) {
    (void)n.open_connection(c);
  }
  // Saturating best-effort background.
  workload::PoissonParams pp;
  pp.rate_per_node = 0.5;
  pp.seed = seed * 31 + 1;
  pp.min_laxity_slots = 5;
  pp.max_laxity_slots = 50;
  workload::PoissonGenerator gen(
      n, pp, sim::TimePoint::origin() + n.timing().slot() * 1200);

  n.run_slots(1500);

  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  const auto& be = n.stats().cls(TrafficClass::kBestEffort);
  EXPECT_GT(rt.delivered, 0);
  EXPECT_GT(be.delivered, 0);
  // The paper's guarantee: admitted RT traffic is immune to BE load.
  EXPECT_EQ(rt.user_misses, 0);
  EXPECT_EQ(n.stats().priority_inversions, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedTrafficProperties,
    ::testing::Combine(::testing::Values<NodeId>(4, 8, 16),
                       ::testing::Values<std::uint64_t>(11, 22, 33)));

class ConservationProperties
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationProperties, EveryGrantIsAccounted) {
  NetworkConfig cfg;
  cfg.nodes = 8;
  Network n(cfg);
  workload::PoissonParams pp;
  // Keep demand well below capacity (~0.7 slots of demand per slot for
  // uniform destinations) so queues provably drain before the check.
  pp.rate_per_node = 0.03;
  pp.seed = GetParam();
  pp.min_size_slots = 1;
  pp.max_size_slots = 5;
  workload::PoissonGenerator gen(
      n, pp, sim::TimePoint::origin() + n.timing().slot() * 800);
  n.run_slots(3000);  // generous drain time

  // Slot conservation: delivered sizes sum to executed grants.
  std::int64_t delivered_slots = 0;
  for (NodeId i = 0; i < 8; ++i) {
    for (const auto& d : n.node(i).inbox()) {
      if (d.dests.lowest() == i) delivered_slots += d.size_slots;
    }
  }
  EXPECT_EQ(delivered_slots, n.stats().total_grants);
  // Everything generated was delivered (queues fully drained).
  EXPECT_EQ(n.stats().cls(TrafficClass::kBestEffort).delivered,
            gen.generated());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperties,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace ccredf
