// End-to-end class semantics of Table 1: RT pre-empts BE pre-empts NRT
// network-wide, lower classes starve under sustained higher-class load
// and resume when it stops.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;
using net::Network;
using net::NetworkConfig;
using sim::Duration;

NetworkConfig cfg8() {
  NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

TEST(ClassPrecedence, NrtStarvesUnderBeLoadAndRecovers) {
  Network n(cfg8());
  // Saturating BE burst for the first 50 slots (~800 messages, far more
  // slot demand than 50 slots can carry, so queues stay deep for a
  // while).
  workload::PoissonParams p;
  p.rate_per_node = 2.0;
  p.seed = 3;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 50);
  n.send_non_realtime(0, NodeSet::single(4), 1);
  n.run_slots(40);
  // While BE saturates every node, the NRT message cannot win a slot
  // against any wanting BE node (level 1 vs levels >= 2).
  EXPECT_EQ(n.stats().cls(TrafficClass::kNonRealTime).delivered, 0);
  n.run_slots(8000);  // generation stopped at slot 50; queues drain
  EXPECT_EQ(n.stats().cls(TrafficClass::kNonRealTime).delivered, 1);
}

TEST(ClassPrecedence, BeYieldsToRtAtItsOwnNode) {
  Network n(cfg8());
  // Queue BE first, then RT at the same node: RT must leave first even
  // though BE is older and has the earlier deadline.
  n.send_best_effort(2, NodeSet::single(5), 1, Duration::microseconds(30));
  n.send(2, NodeSet::single(6), TrafficClass::kRealTime, 1,
         Duration::milliseconds(5));
  n.run_slots(6);
  ASSERT_EQ(n.node(5).inbox().size(), 1u);
  ASSERT_EQ(n.node(6).inbox().size(), 1u);
  EXPECT_LT(n.node(6).inbox()[0].completed, n.node(5).inbox()[0].completed);
}

TEST(ClassPrecedence, RtFromOneNodeBeatsBeFromAll) {
  Network n(cfg8());
  for (NodeId s = 0; s < 8; ++s) {
    if (s == 3) continue;
    n.send_best_effort(s, NodeSet::single((s + 1) % 8), 1,
                       Duration::microseconds(20));  // very urgent BE
  }
  n.send(3, NodeSet::single(7), TrafficClass::kRealTime, 1,
         Duration::milliseconds(50));  // relaxed RT
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(3);
  // First arbitration elects the RT sender despite its loose deadline.
  ASSERT_GE(masters.size(), 2u);
  EXPECT_EQ(masters[1], 3u);
}

TEST(ClassPrecedence, SpatialReuseLetsBeRideAlongsideRt) {
  // Paper §3: "a best effort message uses the spatially reused capacity
  // and may be transmitted simultaneously as a logical real-time
  // connection message".
  Network n(cfg8());
  n.send(0, NodeSet::single(2), TrafficClass::kRealTime, 1,
         Duration::milliseconds(1));                        // links 0,1
  n.send_best_effort(4, NodeSet::single(6), 1,
                     Duration::milliseconds(1));            // links 4,5
  std::int64_t shared_slots = 0;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.granted.contains(0) && rec.granted.contains(4)) ++shared_slots;
  });
  n.run_slots(5);
  EXPECT_EQ(shared_slots, 1);
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
  EXPECT_EQ(n.node(6).inbox().size(), 1u);
}

TEST(ClassPrecedence, NodeRequestsBeOnlyWithNoRtQueued) {
  // Observe the wire: while an RT message is queued at a node, its
  // requests carry RT-band priorities; once it drains, BE-band.
  Network n(cfg8());
  n.send(1, NodeSet::single(3), TrafficClass::kRealTime, 3,
         Duration::milliseconds(1));
  n.send_best_effort(1, NodeSet::single(5), 2, Duration::milliseconds(2));
  const core::PriorityLayout layout;
  bool saw_rt = false, saw_be = false, violation = false;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    const auto& rq = rec.requests[1];
    if (!rq.wants_slot()) return;
    const bool rt_band = rq.priority >= layout.real_time_lo();
    const bool rt_queued =
        n.node(1).queues().size_of(TrafficClass::kRealTime) > 0;
    if (rt_band) saw_rt = true;
    if (!rt_band) saw_be = true;
    if (rt_queued && !rt_band) violation = true;
  });
  n.run_slots(15);
  EXPECT_TRUE(saw_rt);
  EXPECT_TRUE(saw_be);
  EXPECT_FALSE(violation);
}

}  // namespace
}  // namespace ccredf
