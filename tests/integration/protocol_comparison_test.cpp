// Cross-protocol integration: identical workloads on CCR-EDF, CC-FPR and
// TDMA must all deliver everything at feasible load, but only CCR-EDF
// keeps the real-time guarantee -- the paper's comparative claims as
// executable assertions (E6's shape as a regression test).
#include <gtest/gtest.h>

#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "net/network.hpp"
#include "workload/periodic.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;
using net::Network;
using net::NetworkConfig;

struct Outcome {
  std::int64_t delivered = 0;
  std::int64_t user_misses = 0;
  std::int64_t inversions = 0;
};

Outcome run(int protocol, std::uint64_t seed, double load_frac) {
  NetworkConfig cfg;
  cfg.nodes = 8;
  if (protocol == 1) cfg.protocol_factory = baseline::ccfpr_factory();
  if (protocol == 2) cfg.protocol_factory = baseline::tdma_factory();
  Network n(cfg);
  workload::PeriodicSetParams wp;
  wp.nodes = 8;
  wp.connections = 14;
  wp.total_utilisation = load_frac * n.timing().u_max();
  wp.min_period_slots = 10;
  wp.max_period_slots = 100;
  wp.seed = seed;
  for (const auto& c : workload::make_periodic_set(wp)) {
    (void)n.open_connection(c);
  }
  n.run_slots(6000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  return Outcome{rt.delivered, rt.user_misses,
                 n.stats().priority_inversions};
}

class ProtocolComparison
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ProtocolComparison, CcrEdfAloneKeepsTheGuarantee) {
  const auto [seed, load] = GetParam();
  const Outcome edf = run(0, seed, load);
  const Outcome fpr = run(1, seed, load);
  const Outcome tdma = run(2, seed, load);

  // All protocols make progress on the same workload.
  EXPECT_GT(edf.delivered, 0);
  EXPECT_GT(fpr.delivered, 0);
  EXPECT_GT(tdma.delivered, 0);

  // The paper's claims, as assertions.
  EXPECT_EQ(edf.user_misses, 0);
  EXPECT_EQ(edf.inversions, 0);
  EXPECT_GT(fpr.inversions, 0);
  // On tight-deadline sets CC-FPR and TDMA miss; CCR-EDF never more.
  EXPECT_LE(edf.user_misses, fpr.user_misses);
  EXPECT_LE(edf.user_misses, tdma.user_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolComparison,
    ::testing::Combine(::testing::Values<std::uint64_t>(3, 5, 9),
                       ::testing::Values(0.4, 0.7)));

TEST(ProtocolComparison, AllProtocolsDrainFeasibleQueues) {
  for (int proto = 0; proto < 3; ++proto) {
    NetworkConfig cfg;
    cfg.nodes = 6;
    if (proto == 1) cfg.protocol_factory = baseline::ccfpr_factory();
    if (proto == 2) cfg.protocol_factory = baseline::tdma_factory();
    Network n(cfg);
    for (NodeId s = 0; s < 6; ++s) {
      n.send_non_realtime(s, NodeSet::single((s + 2) % 6), 2);
    }
    n.run_slots(100);
    std::size_t delivered = 0;
    for (NodeId i = 0; i < 6; ++i) delivered += n.node(i).inbox().size();
    EXPECT_EQ(delivered, 6u) << "protocol " << proto;
  }
}

}  // namespace
}  // namespace ccredf
