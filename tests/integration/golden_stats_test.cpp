// Golden end-to-end statistics for fixed-seed scenario runs.
//
// The constants below were captured from the simulator BEFORE the pooled
// event queue, indexed EDF queues and reused slot scratch were introduced,
// so this test pins two properties at once: bit-exact determinism across
// runs, and that the performance work did not change a single scheduling
// decision.  If an intentional semantic change lands, re-capture the
// numbers and update them in the same commit with a note explaining why.
#include <gtest/gtest.h>

#include <tuple>

#include "net/network.hpp"
#include "workload/multimedia.hpp"
#include "workload/poisson.hpp"
#include "workload/radar.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;

TEST(GoldenStats, RadarScenario20kSlots) {
  const auto sc = workload::make_radar_scenario(workload::RadarParams{});
  net::NetworkConfig cfg;
  cfg.nodes = sc.nodes_required;
  net::Network n(cfg);
  for (const auto& c : sc.connections) (void)n.open_connection(c);
  n.run_slots(20'000);

  const auto& st = n.stats();
  const auto& rt = st.cls(TrafficClass::kRealTime);
  EXPECT_EQ(rt.delivered, 340);
  EXPECT_EQ(rt.scheduling_misses, 0);
  EXPECT_EQ(rt.user_misses, 0);
  EXPECT_EQ(st.cls(TrafficClass::kBestEffort).delivered, 0);
  EXPECT_EQ(st.cls(TrafficClass::kNonRealTime).delivered, 0);
  EXPECT_EQ(st.total_grants, 4964);
  EXPECT_EQ(st.busy_slots, 3672);
  EXPECT_EQ(st.reuse_slots, 827);
  EXPECT_EQ(st.wasted_grants, 0);
  EXPECT_EQ(st.priority_inversions, 0);
  EXPECT_EQ(st.gap.sum(), 116'100'000.0);
  EXPECT_EQ(st.time_in_slots.ps(), 17'850'000'000);
  EXPECT_EQ(st.time_in_gaps.ps(), 116'100'000);
}

TEST(GoldenStats, MultimediaScenarioWithBackground20kSlots) {
  workload::MultimediaParams mp;
  const auto sc = workload::make_multimedia_scenario(mp);
  net::NetworkConfig cfg;
  cfg.nodes = mp.nodes;
  net::Network n(cfg);
  for (const auto& c : sc.connections) (void)n.open_connection(c);
  workload::PoissonParams pp = sc.background;
  pp.seed = 99;
  workload::PoissonGenerator gen(
      n, pp, sim::TimePoint::origin() + n.timing().slot() * 15'000);
  n.run_slots(20'000);

  const auto& st = n.stats();
  const auto& rt = st.cls(TrafficClass::kRealTime);
  EXPECT_EQ(rt.delivered, 1195);
  EXPECT_EQ(rt.scheduling_misses, 0);
  EXPECT_EQ(rt.user_misses, 0);
  EXPECT_EQ(st.cls(TrafficClass::kBestEffort).delivered, 1747);
  EXPECT_EQ(st.cls(TrafficClass::kNonRealTime).delivered, 0);
  EXPECT_EQ(st.total_grants, 12679);
  EXPECT_EQ(st.busy_slots, 11810);
  EXPECT_EQ(st.reuse_slots, 851);
  EXPECT_EQ(st.wasted_grants, 0);
  EXPECT_EQ(st.priority_inversions, 0);
  EXPECT_EQ(st.gap.sum(), 701'650'000.0);
  EXPECT_EQ(st.time_in_slots.ps(), 17'850'000'000);
  EXPECT_EQ(st.time_in_gaps.ps(), 701'650'000);
}

/// The same construction twice in one process must agree field for field
/// (no hidden global state; pools and caches are per-network).
TEST(GoldenStats, BackToBackRunsAreIdentical) {
  auto run = [] {
    const auto sc = workload::make_radar_scenario(workload::RadarParams{});
    net::NetworkConfig cfg;
    cfg.nodes = sc.nodes_required;
    net::Network n(cfg);
    for (const auto& c : sc.connections) (void)n.open_connection(c);
    n.run_slots(5'000);
    return std::tuple{n.stats().total_grants, n.stats().busy_slots,
                      n.stats().cls(TrafficClass::kRealTime).delivered,
                      n.stats().gap.sum(), n.sim().events_fired()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ccredf
