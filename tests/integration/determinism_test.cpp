// The whole simulation must be bit-for-bit reproducible per seed: two
// identically configured runs produce identical statistics, and the
// recorded slot traces match event for event.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using net::Network;
using net::NetworkConfig;
using net::SlotRecord;

struct SlotDigest {
  SlotIndex index;
  NodeId master;
  NodeId next_master;
  std::uint64_t granted_mask;
  std::int64_t gap_ps;
  std::size_t deliveries;
  bool operator==(const SlotDigest&) const = default;
};

std::vector<SlotDigest> run_once(std::uint64_t seed, bool with_faults) {
  NetworkConfig cfg;
  cfg.nodes = 10;
  Network n(cfg);
  std::unique_ptr<fault::FaultInjector> inj;
  if (with_faults) {
    inj = std::make_unique<fault::FaultInjector>(n, seed);
    inj->set_random_token_loss(0.01);
  }
  std::vector<SlotDigest> digests;
  n.add_slot_observer([&](const SlotRecord& rec) {
    digests.push_back(SlotDigest{rec.index, rec.master, rec.next_master,
                                 rec.granted.mask(), rec.gap_after.ps(),
                                 rec.deliveries.size()});
  });
  workload::PeriodicSetParams wp;
  wp.nodes = 10;
  wp.connections = 10;
  wp.total_utilisation = 0.4 * n.admission().u_max();
  wp.seed = seed;
  for (const auto& c : workload::make_periodic_set(wp)) {
    (void)n.open_connection(c);
  }
  workload::PoissonParams pp;
  pp.rate_per_node = 0.1;
  pp.seed = seed + 1;
  workload::PoissonGenerator gen(
      n, pp, sim::TimePoint::origin() + n.timing().slot() * 900);
  n.run_slots(1000);
  return digests;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraces) {
  const auto a = run_once(42, false);
  const auto b = run_once(42, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "slot " << i;
  }
}

TEST(Determinism, HoldsUnderFaultInjection) {
  const auto a = run_once(7, true);
  const auto b = run_once(7, true);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_once(1, false);
  const auto b = run_once(2, false);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ccredf
