// End-to-end CBS behaviour inside the slot engine: hard-RT precedence
// over equal-deadline server jobs, server churn under an active fault
// injector, and the fail-silent drop rule (a dropped job never touches
// server state).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/cbs.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "services/cbs.hpp"
#include "workload/aperiodic.hpp"

namespace ccredf {
namespace {

net::NetworkConfig cfg(NodeId nodes) {
  net::NetworkConfig c;
  c.nodes = nodes;
  c.max_queue_messages = 256;
  return c;
}

TEST(CbsIntegration, RtBandBeatsEqualDeadlineServerJob) {
  net::Network n(cfg(4));
  // Both streams source at node 0 towards node 1 with the SAME relative
  // deadline (10 slots): a hard-RT periodic connection and a CBS job
  // whose server deadline lands on the identical instant.  The RT band
  // must win the tie every time -- equal-deadline BE traffic never
  // displaces a guaranteed message.
  core::ConnectionParams rt;
  rt.source = 0;
  rt.dests = NodeSet::single(1);
  rt.size_slots = 1;
  rt.period_slots = 10;
  const net::Network::OpenResult rt_open = n.open_connection(rt);
  ASSERT_TRUE(rt_open.admitted);

  core::CbsParams cbs;
  cbs.source = 0;
  cbs.dests = NodeSet::single(1);
  cbs.budget_slots = 1;
  cbs.period_slots = 10;
  const net::Network::OpenResult cbs_open = n.open_cbs_server(cbs);
  ASSERT_TRUE(cbs_open.admitted);
  // First arrival recharges: server deadline = now + 10 slots, equal to
  // the RT message released at origin.
  n.cbs_send(cbs_open.id, 1);
  ASSERT_EQ(n.stats().cbs.jobs, 1);

  n.run_slots(40);

  const net::ConnectionStats& rt_stats = n.connection_stats(rt_open.id);
  const net::ConnectionStats& cbs_stats = n.connection_stats(cbs_open.id);
  EXPECT_GE(rt_stats.delivered, 3);
  EXPECT_EQ(rt_stats.scheduling_misses, 0);
  EXPECT_EQ(rt_stats.user_misses, 0);
  ASSERT_EQ(cbs_stats.delivered, 1);
  // The tie went to the RT band: its first message completed strictly
  // before the equal-deadline server job.
  EXPECT_LT(rt_stats.latency.min(), cbs_stats.latency.min());
}

TEST(CbsIntegration, PostponedServerNeverPerturbsRtDigest) {
  // The isolation gate in miniature: the RT connection's accounting over
  // a WALL horizon must be byte-identical whether or not a saturating
  // CBS flow (budget exhausting over and over) shares the ring.
  std::string digests[2];
  for (int with_cbs = 0; with_cbs < 2; ++with_cbs) {
    net::Network n(cfg(4));
    core::ConnectionParams rt;
    rt.source = 1;
    rt.dests = NodeSet::single(2);
    rt.size_slots = 2;
    rt.period_slots = 12;
    const net::Network::OpenResult rt_open = n.open_connection(rt);
    ASSERT_TRUE(rt_open.admitted);
    if (with_cbs == 1) {
      core::CbsParams cbs;
      cbs.source = 0;
      cbs.dests = NodeSet::single(1);
      cbs.budget_slots = 2;
      cbs.period_slots = 40;
      const net::Network::OpenResult s = n.open_cbs_server(cbs);
      ASSERT_TRUE(s.admitted);
      for (int j = 0; j < 50; ++j) n.cbs_send(s.id, 3);
      n.run_for(n.timing().slot_plus_max_gap() * 600);
      EXPECT_GT(n.stats().cbs.postponements, 0);
    } else {
      n.run_for(n.timing().slot_plus_max_gap() * 600);
    }
    const net::ConnectionStats& s = n.connection_stats(rt_open.id);
    std::ostringstream os;
    os << s.released << '/' << s.scheduling_misses << '/' << s.user_misses;
    digests[with_cbs] = os.str();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(CbsIntegration, ServerChurnSurvivesActiveFaultInjector) {
  net::Network n(cfg(8));
  fault::FaultInjector inj(n, /*seed=*/5);
  inj.set_control_ber(1e-4);
  inj.set_data_ber(5e-5);

  // A hard-RT connection rides through the whole churn as a canary.
  core::ConnectionParams rt;
  rt.source = 4;
  rt.dests = NodeSet::single(6);
  rt.size_slots = 1;
  rt.period_slots = 25;
  const net::Network::OpenResult canary = n.open_connection(rt);
  ASSERT_TRUE(canary.admitted);

  for (int round = 0; round < 6; ++round) {
    services::CbsFlowSetParams p;
    p.flows = 4;
    p.budget_slots = 2;
    p.period_slots = 40;
    p.first_source = static_cast<NodeId>(round % 4);
    services::CbsFlowSet flows(n, p);
    ASSERT_EQ(flows.admitted(), 4);
    workload::AperiodicParams ap;
    ap.rate_per_flow = 0.5;
    ap.seed = 100 + static_cast<std::uint64_t>(round);
    workload::AperiodicGenerator gen(
        n, flows.ids(), ap,
        n.sim().now() + n.timing().slot_plus_max_gap() * 300);
    n.run_slots(300);
    EXPECT_GT(gen.generated(), 0);
    flows.close_all();
  }
  // All server bandwidth was handed back; only the canary remains.
  EXPECT_NEAR(n.admission().utilisation(), rt.utilisation(), 1e-12);
  EXPECT_EQ(n.stats().cbs.servers_opened, 24);
  EXPECT_GT(n.connection_stats(canary.id).delivered, 0);
}

TEST(CbsIntegration, FailedSourceDropsJobWithoutChargingServer) {
  net::Network n(cfg(4));
  core::CbsParams cbs;
  cbs.source = 2;
  cbs.dests = NodeSet::single(3);
  cbs.budget_slots = 2;
  cbs.period_slots = 20;
  const net::Network::OpenResult s = n.open_cbs_server(cbs);
  ASSERT_TRUE(s.admitted);
  n.cbs_send(s.id, 1);
  ASSERT_EQ(n.stats().cbs.jobs, 1);
  n.run_slots(5);

  const core::CbsServer* srv = n.cbs_server(s.id);
  ASSERT_NE(srv, nullptr);
  const std::int64_t budget_before = srv->budget_remaining();
  const std::int64_t recharges_before = srv->recharges();
  const std::int64_t jobs_before = n.stats().cbs.jobs;

  n.fail_node(2);
  // The send must drop at the fail-silent source WITHOUT consulting the
  // wake-up rule -- a phantom recharge here would inflate the server's
  // bandwidth once the node comes back.
  n.cbs_send(s.id, 1);
  EXPECT_EQ(srv->budget_remaining(), budget_before);
  EXPECT_EQ(srv->recharges(), recharges_before);
  EXPECT_EQ(n.stats().cbs.jobs, jobs_before);

  n.restore_node(2);
  n.cbs_send(s.id, 1);
  EXPECT_EQ(n.stats().cbs.jobs, jobs_before + 1);
  n.run_slots(40);
  EXPECT_GT(n.connection_stats(s.id).delivered, 0);
}

}  // namespace
}  // namespace ccredf
