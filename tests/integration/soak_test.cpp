// Long-horizon soak: 50k slots of mixed periodic + Poisson + bursty
// traffic with sporadic token losses and one node failing and returning.
// Every protocol invariant must hold across the whole run, and the
// accounting must stay self-consistent.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "workload/burst.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;
using net::Network;
using net::NetworkConfig;
using net::SlotRecord;

TEST(Soak, FiftyThousandSlotsOfEverything) {
  NetworkConfig cfg;
  cfg.nodes = 16;
  Network n(cfg);
  fault::FaultInjector inj(n, /*seed=*/99);
  inj.set_random_token_loss(0.0005);
  inj.schedule_node_failure(
      11, sim::TimePoint::origin() + n.timing().slot() * 20'000);
  inj.schedule_node_restore(
      11, sim::TimePoint::origin() + n.timing().slot() * 30'000);

  // Invariant observers.
  std::int64_t chain_violations = 0;
  std::int64_t grant_overlaps = 0;
  std::optional<SlotRecord> prev;
  n.add_slot_observer([&](const SlotRecord& rec) {
    if (prev) {
      if (rec.start != prev->end + prev->gap_after) ++chain_violations;
      if (rec.master != prev->next_master) ++chain_violations;
      LinkSet seen;
      for (const NodeId g : rec.granted) {
        if (prev->requests[g].links.intersects(seen)) ++grant_overlaps;
        seen |= prev->requests[g].links;
      }
    }
    prev = rec;
  });

  // Load: periodic RT (admitted), Poisson BE, bursts, NRT background.
  workload::PeriodicSetParams wp;
  wp.nodes = 16;
  wp.connections = 20;
  wp.total_utilisation = 0.4 * n.admission().u_max();
  wp.min_period_slots = 50;
  wp.max_period_slots = 1000;
  wp.seed = 1;
  int admitted = 0;
  for (const auto& c : workload::make_periodic_set(wp)) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  ASSERT_GT(admitted, 10);

  const auto horizon = sim::TimePoint::origin() + n.timing().slot() * 48'000;
  workload::PoissonParams pp;
  pp.rate_per_node = 0.05;
  pp.seed = 2;
  workload::PoissonGenerator poisson(n, pp, horizon);
  workload::BurstParams bp;
  bp.seed = 3;
  workload::BurstGenerator bursts(n, bp, horizon);
  workload::PoissonParams np;
  np.rate_per_node = 0.01;
  np.traffic_class = TrafficClass::kNonRealTime;
  np.seed = 4;
  workload::PoissonGenerator nrt(n, np, horizon);

  n.run_slots(50'000);

  EXPECT_EQ(chain_violations, 0);
  EXPECT_EQ(grant_overlaps, 0);
  EXPECT_EQ(n.stats().priority_inversions, 0);
  EXPECT_EQ(n.recoveries(), inj.token_losses_injected());

  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  const auto& be = n.stats().cls(TrafficClass::kBestEffort);
  const auto& nr = n.stats().cls(TrafficClass::kNonRealTime);
  EXPECT_GT(rt.delivered, 1'000);
  EXPECT_GT(be.delivered, 1'000);
  // Non-real-time traffic is starved almost completely under sustained
  // RT+BE load -- priority level 1 loses every arbitration with
  // contention, which is exactly the class semantics of Table 1.
  EXPECT_GE(nr.delivered, 1);
  EXPECT_LT(nr.delivered, be.delivered / 10);
  // With sporadic token losses the guarantee may dent, but only barely
  // at this loss rate (one stall per ~2000 slots, deadlines >= 50 slots).
  EXPECT_LT(rt.user_miss_ratio(), 0.001);

  // Accounting self-consistency.
  std::int64_t released = 0, conn_delivered = 0;
  for (const auto& [id, cs] : n.stats().per_connection) {
    released += cs.released;
    conn_delivered += cs.delivered;
  }
  EXPECT_EQ(conn_delivered, rt.delivered);
  EXPECT_GE(released, conn_delivered);
  // Releases not yet delivered are still queued (or died with node 11).
  EXPECT_LE(released - conn_delivered,
            released / 10);
}

}  // namespace
}  // namespace ccredf
