// Fast-forward equivalence: the engine's O(1) idle skip (DESIGN.md
// section 8) must be INVISIBLE in every observable statistic.  Each case
// runs the identical scenario twice -- NetworkConfig::fast_forward on
// and off -- and compares a full fingerprint of the run: every counter,
// every exact moment, every per-node / per-class / per-connection
// series, the fault ledger and the discrete-event count.  Doubles are
// printed as hexfloats, so a single flipped mantissa bit fails the test.
//
// Non-vacuousness is asserted too: the fast-forward run must actually
// have skipped slots, otherwise the equivalence would hold trivially.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "workload/multimedia.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"
#include "workload/radar.hpp"

namespace ccredf {
namespace {

using core::TrafficClass;

void put(std::ostream& os, const char* key, double v) {
  os << key << '=' << std::hexfloat << v << std::defaultfloat << '\n';
}

void put(std::ostream& os, const char* key, std::int64_t v) {
  os << key << '=' << v << '\n';
}

void put_online(std::ostream& os, const char* key,
                const sim::OnlineStats& st) {
  os << key << ": ";
  put(os, "count", st.count());
  put(os, "mean", st.mean());
  put(os, "variance", st.variance());
  put(os, "sum", st.sum());
  put(os, "min", st.min());
  put(os, "max", st.max());
}

void put_exact(std::ostream& os, const char* key, const sim::ExactStats& st) {
  os << key << ": ";
  put(os, "count", st.count());
  put(os, "sum_exact", st.sum_exact());
  put(os, "mean", st.mean());
  put(os, "variance", st.variance());
  put(os, "min", st.min());
  put(os, "max", st.max());
}

/// Serializes everything a run can observe about a network, EXCEPT the
/// fast-forward telemetry itself (ff_slots_skipped / ff_windows differ
/// between the two engines by design -- they count the skipping).
std::string fingerprint(const net::Network& n) {
  const auto& st = n.stats();
  std::ostringstream os;
  put(os, "slots", st.slots);
  put(os, "busy_slots", st.busy_slots);
  put(os, "total_grants", st.total_grants);
  put(os, "reuse_slots", st.reuse_slots);
  put(os, "wasted_grants", st.wasted_grants);
  put(os, "buffer_drops", st.buffer_drops);
  put(os, "priority_inversions", st.priority_inversions);
  put_exact(os, "handover_hops", st.handover_hops);
  put_exact(os, "gap", st.gap);
  put(os, "time_in_slots_ps", st.time_in_slots.ps());
  put(os, "time_in_gaps_ps", st.time_in_gaps.ps());
  for (NodeId j = 0; j < n.nodes(); ++j) {
    os << "node " << static_cast<int>(j) << ": ";
    put(os, "requests", st.node_requests[j]);
    put(os, "grants", st.node_grants[j]);
    put(os, "idle", st.node_idle_slots(j));
  }
  for (const auto cls : {TrafficClass::kRealTime, TrafficClass::kBestEffort,
                         TrafficClass::kNonRealTime}) {
    const auto& c = st.cls(cls);
    os << "class " << static_cast<int>(cls) << ": ";
    put(os, "delivered", c.delivered);
    put(os, "scheduling_misses", c.scheduling_misses);
    put(os, "user_misses", c.user_misses);
    put(os, "bytes", c.bytes);
    put_online(os, "latency", c.latency);
  }
  std::vector<ConnectionId> ids;
  ids.reserve(st.per_connection.size());
  for (const auto& [id, cs] : st.per_connection) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ConnectionId id : ids) {
    const auto& cs = st.per_connection.at(id);
    os << "connection " << id << ": ";
    put(os, "released", cs.released);
    put(os, "delivered", cs.delivered);
    put(os, "scheduling_misses", cs.scheduling_misses);
    put(os, "user_misses", cs.user_misses);
    put_online(os, "latency", cs.latency);
  }
  const auto& f = st.faults;
  put(os, "token_losses", f.token_losses);
  put(os, "collection_drops", f.collection_drops);
  put(os, "collection_corruptions", f.collection_corruptions);
  put(os, "collection_detected", f.collection_detected);
  put(os, "collection_silent", f.collection_silent);
  put(os, "spurious_requests", f.spurious_requests);
  put(os, "distribution_corruptions", f.distribution_corruptions);
  put(os, "distribution_detected", f.distribution_detected);
  put(os, "rearbitration_slots", f.rearbitration_slots);
  put(os, "silent_misarbitrations", f.silent_misarbitrations);
  put(os, "recoveries", f.recoveries);
  put_online(os, "recovery_gap", f.recovery_gap);
  put(os, "ring_dark", f.ring_dark);
  put(os, "payload_corruptions", f.payload_corruptions);
  put(os, "payload_detected", f.payload_detected);
  put(os, "payload_undetected", f.payload_undetected);
  put(os, "payload_nacks", f.payload_nacks);
  for (NodeId j = 0; j < n.nodes(); ++j) {
    const auto& nf = st.per_node_faults[j];
    os << "node_faults " << static_cast<int>(j) << ": ";
    put(os, "requests_dropped", nf.requests_dropped);
    put(os, "requests_corrupted", nf.requests_corrupted);
    put(os, "requests_rejected", nf.requests_rejected);
    put(os, "spurious_requests", nf.spurious_requests);
    put(os, "payloads_corrupted", nf.payloads_corrupted);
  }
  put(os, "events_fired", static_cast<std::int64_t>(n.sim().events_fired()));
  put(os, "recoveries_engine", n.recoveries());
  put(os, "recovery_time_ps", n.recovery_time().ps());
  return os.str();
}

struct RunResult {
  std::string fingerprint;
  std::int64_t skipped = 0;
};

/// Runs a periodic workload at `load` x U_max on `nodes` nodes.
RunResult run_periodic(NodeId nodes, double load, bool fast_forward,
                       std::int64_t slots) {
  net::NetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.record_inboxes = false;
  cfg.fast_forward = fast_forward;
  net::Network n(cfg);
  workload::PeriodicSetParams wp;
  wp.nodes = nodes;
  wp.connections = static_cast<int>(nodes);
  wp.total_utilisation = load * n.timing().u_max();
  wp.seed = 42;
  for (const auto& c : workload::make_periodic_set(wp)) {
    (void)n.open_connection(c);
  }
  n.run_slots(slots);
  return {fingerprint(n), n.stats().ff_slots_skipped};
}

TEST(FastForward, PeriodicLoadsProduceIdenticalStatistics) {
  for (const double load : {0.3, 0.6, 0.9}) {
    SCOPED_TRACE(load);
    const RunResult ff = run_periodic(16, load, true, 10'000);
    const RunResult slow = run_periodic(16, load, false, 10'000);
    EXPECT_EQ(ff.fingerprint, slow.fingerprint);
    EXPECT_GT(ff.skipped, 0) << "fast-forward never engaged at this load";
    EXPECT_EQ(slow.skipped, 0);
  }
}

TEST(FastForward, RadarScenarioIsByteIdentical) {
  auto run = [](bool fast_forward) {
    const auto sc = workload::make_radar_scenario(workload::RadarParams{});
    net::NetworkConfig cfg;
    cfg.nodes = sc.nodes_required;
    cfg.fast_forward = fast_forward;
    net::Network n(cfg);
    for (const auto& c : sc.connections) (void)n.open_connection(c);
    n.run_slots(20'000);
    return RunResult{fingerprint(n), n.stats().ff_slots_skipped};
  };
  const RunResult ff = run(true);
  const RunResult slow = run(false);
  EXPECT_EQ(ff.fingerprint, slow.fingerprint);
  EXPECT_GT(ff.skipped, 0);
  EXPECT_EQ(slow.skipped, 0);
}

TEST(FastForward, MultimediaWithBackgroundIsByteIdentical) {
  auto run = [](bool fast_forward) {
    workload::MultimediaParams mp;
    const auto sc = workload::make_multimedia_scenario(mp);
    net::NetworkConfig cfg;
    cfg.nodes = mp.nodes;
    cfg.fast_forward = fast_forward;
    net::Network n(cfg);
    for (const auto& c : sc.connections) (void)n.open_connection(c);
    workload::PoissonParams pp = sc.background;
    pp.seed = 99;
    workload::PoissonGenerator gen(
        n, pp, sim::TimePoint::origin() + n.timing().slot() * 15'000);
    n.run_slots(20'000);
    return fingerprint(n);
  };
  EXPECT_EQ(run(true), run(false));
}

/// The hard case: every fault axis armed at once.  The skip decision
/// must replay the keyed fault draws exactly -- a single missed or
/// spuriously-taken idle fault desynchronises the ledger immediately.
TEST(FastForward, ArmedFaultAxesStayByteIdentical) {
  auto run = [](bool fast_forward) {
    net::NetworkConfig cfg;
    cfg.nodes = 16;
    cfg.record_inboxes = false;
    cfg.with_frame_crc = true;
    cfg.with_payload_crc = true;
    cfg.with_acks = true;
    cfg.fast_forward = fast_forward;
    net::Network n(cfg);
    fault::FaultInjector inj(n, 7);
    inj.set_control_ber(2e-6);
    inj.set_data_ber(1e-7);
    inj.set_random_token_loss(2e-4);
    inj.set_babbling_node(3, 5e-4);
    inj.schedule_token_loss(4'321);
    inj.schedule_collection_drop(2'000, 5);
    inj.schedule_distribution_corruption(6'500, 2);
    inj.schedule_node_failure(11, sim::TimePoint::origin() +
                                      n.timing().slot() * 3'000);
    inj.schedule_node_restore(11, sim::TimePoint::origin() +
                                      n.timing().slot() * 5'000);
    workload::PeriodicSetParams wp;
    wp.nodes = 16;
    wp.connections = 16;
    wp.total_utilisation = 0.3 * n.timing().u_max();
    wp.seed = 42;
    for (const auto& c : workload::make_periodic_set(wp)) {
      (void)n.open_connection(c);
    }
    n.run_slots(12'000);
    std::ostringstream os;
    os << fingerprint(n);
    os << "injected=" << inj.token_losses_injected() << '\n'
       << "bits_flipped=" << inj.bits_flipped() << '\n'
       << "data_bits_flipped=" << inj.data_bits_flipped() << '\n';
    return RunResult{os.str(), n.stats().ff_slots_skipped};
  };
  const RunResult ff = run(true);
  const RunResult slow = run(false);
  EXPECT_EQ(ff.fingerprint, slow.fingerprint);
  EXPECT_GT(ff.skipped, 0)
      << "armed fault axes must not disable fast-forward outright";
  EXPECT_EQ(slow.skipped, 0);
}

/// run_for (duration-bounded stepping) takes the same skips as
/// run_slots and lands on the same final state.
TEST(FastForward, RunForMatchesSlotBySlot) {
  auto run = [](bool fast_forward) {
    net::NetworkConfig cfg;
    cfg.nodes = 8;
    cfg.fast_forward = fast_forward;
    net::Network n(cfg);
    workload::PeriodicSetParams wp;
    wp.nodes = 8;
    wp.connections = 8;
    wp.total_utilisation = 0.2 * n.timing().u_max();
    wp.seed = 7;
    for (const auto& c : workload::make_periodic_set(wp)) {
      (void)n.open_connection(c);
    }
    n.run_for(sim::Duration::microseconds(5'000));
    return RunResult{fingerprint(n), n.stats().ff_slots_skipped};
  };
  const RunResult ff = run(true);
  const RunResult slow = run(false);
  EXPECT_EQ(ff.fingerprint, slow.fingerprint);
  EXPECT_GT(ff.skipped, 0);
}

}  // namespace
}  // namespace ccredf
