#include <gtest/gtest.h>

#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf::net {
namespace {

using core::TrafficClass;
using sim::Duration;

NetworkConfig capped(std::size_t cap) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.max_queue_messages = cap;
  return cfg;
}

TEST(BufferCap, UnlimitedByDefault) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  for (int i = 0; i < 500; ++i) {
    n.send_best_effort(0, NodeSet::single(1), 1, Duration::seconds(1));
  }
  EXPECT_EQ(n.stats().buffer_drops, 0);
  EXPECT_EQ(n.node(0).queues().size(), 500u);
}

TEST(BufferCap, TailDropsBestEffortBeyondCap) {
  Network n(capped(10));
  for (int i = 0; i < 25; ++i) {
    n.send_best_effort(0, NodeSet::single(1), 1, Duration::seconds(1));
  }
  EXPECT_EQ(n.node(0).queues().size(), 10u);
  EXPECT_EQ(n.stats().buffer_drops, 15);
}

TEST(BufferCap, NonRealTimeAlsoDropped) {
  Network n(capped(5));
  for (int i = 0; i < 8; ++i) {
    n.send_non_realtime(2, NodeSet::single(3), 1);
  }
  EXPECT_EQ(n.stats().buffer_drops, 3);
}

TEST(BufferCap, RealTimeNeverDropped) {
  Network n(capped(3));
  // Fill the buffer with BE, then release RT on top: RT must enter.
  for (int i = 0; i < 3; ++i) {
    n.send_best_effort(0, NodeSet::single(1), 1, Duration::seconds(1));
  }
  core::ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(4);
  c.size_slots = 1;
  c.period_slots = 10;
  ASSERT_TRUE(n.open_connection(c).admitted);
  n.run_slots(40);
  EXPECT_GT(n.stats().cls(TrafficClass::kRealTime).delivered, 0);
}

TEST(BufferCap, DroppedMessagesNeverDeliver) {
  Network n(capped(4));
  for (int i = 0; i < 20; ++i) {
    n.send_best_effort(0, NodeSet::single(1), 1, Duration::seconds(1));
  }
  n.run_slots(60);
  // Only the 4 buffered messages arrive.
  EXPECT_EQ(n.node(1).inbox().size(), 4u);
}

TEST(BufferCap, CapsBacklogUnderOverload) {
  Network n(capped(8));
  workload::PoissonParams p;
  p.rate_per_node = 3.0;  // heavy overload
  p.seed = 6;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 400);
  n.run_slots(500);
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_LE(n.node(i).queues().size(), 8u);
  }
  EXPECT_GT(n.stats().buffer_drops, 0);
}

}  // namespace
}  // namespace ccredf::net
