#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ccredf::net {
namespace {

using core::ConnectionParams;

NetworkConfig cfg8() {
  NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

ConnectionParams conn(NodeId src, NodeId dst, std::int64_t e,
                      std::int64_t p) {
  ConnectionParams c;
  c.source = src;
  c.dests = NodeSet::single(dst);
  c.size_slots = e;
  c.period_slots = p;
  return c;
}

TEST(ConnectionStats, TracksReleasesAndDeliveries) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 10));
  ASSERT_TRUE(r.admitted);
  n.run_slots(105);
  const auto& cs = n.connection_stats(r.id);
  EXPECT_GE(cs.released, 10);
  EXPECT_LE(cs.released, 12);
  // All but possibly the last in-flight release delivered.
  EXPECT_GE(cs.delivered, cs.released - 2);
  EXPECT_EQ(cs.user_misses, 0);
  EXPECT_GT(cs.latency.mean(), 0.0);
}

TEST(ConnectionStats, SeparatePerConnection) {
  Network n(cfg8());
  const auto a = n.open_connection(conn(0, 3, 1, 10));
  const auto b = n.open_connection(conn(4, 6, 1, 50));
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  n.run_slots(200);
  EXPECT_GT(n.connection_stats(a.id).delivered,
            n.connection_stats(b.id).delivered);
}

TEST(ConnectionStats, SumsToClassTotals) {
  Network n(cfg8());
  const auto a = n.open_connection(conn(0, 3, 1, 12));
  const auto b = n.open_connection(conn(2, 5, 2, 30));
  ASSERT_TRUE(a.admitted && b.admitted);
  n.run_slots(500);
  const auto total = n.stats().cls(core::TrafficClass::kRealTime).delivered;
  EXPECT_EQ(n.connection_stats(a.id).delivered +
                n.connection_stats(b.id).delivered,
            total);
}

TEST(ConnectionStats, UnknownConnectionIsEmpty) {
  Network n(cfg8());
  const auto& cs = n.connection_stats(999);
  EXPECT_EQ(cs.released, 0);
  EXPECT_EQ(cs.delivered, 0);
}

TEST(ConnectionStats, SurvivesClose) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 10));
  ASSERT_TRUE(r.admitted);
  n.run_slots(55);
  n.close_connection(r.id);
  const auto delivered = n.connection_stats(r.id).delivered;
  EXPECT_GT(delivered, 0);
  n.run_slots(100);
  // History retained; no further releases counted.
  EXPECT_LE(n.connection_stats(r.id).released,
            delivered + 2);
}

}  // namespace
}  // namespace ccredf::net
