#include "net/stats.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf::net {
namespace {

using core::TrafficClass;

TEST(ClassStats, RatiosOnEmptyAreZero) {
  const ClassStats s;
  EXPECT_DOUBLE_EQ(s.scheduling_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(s.user_miss_ratio(), 0.0);
}

TEST(ClassStats, RatiosComputed) {
  ClassStats s;
  s.delivered = 10;
  s.scheduling_misses = 4;
  s.user_misses = 1;
  EXPECT_DOUBLE_EQ(s.scheduling_miss_ratio(), 0.4);
  EXPECT_DOUBLE_EQ(s.user_miss_ratio(), 0.1);
}

TEST(NetworkStats, FreshIsZeroed) {
  const NetworkStats s;
  EXPECT_EQ(s.slots, 0);
  EXPECT_DOUBLE_EQ(s.slot_time_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.goodput_bps(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_grants_per_busy_slot(), 0.0);
}

TEST(NetworkStats, GoodputMatchesDeliveredBytes) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  workload::PoissonParams p;
  p.rate_per_node = 0.2;
  p.seed = 12;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 500);
  n.run_slots(800);
  const auto& s = n.stats();
  std::int64_t bytes = 0;
  for (const auto& c : s.per_class) bytes += c.bytes;
  const double total_s = (s.time_in_slots + s.time_in_gaps).s();
  EXPECT_NEAR(s.goodput_bps(), static_cast<double>(bytes) * 8.0 / total_s,
              1e-6);
}

TEST(NetworkStats, SlotTimeFractionBounded) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  n.run_slots(50);
  EXPECT_GT(n.stats().slot_time_fraction(), 0.0);
  EXPECT_LE(n.stats().slot_time_fraction(), 1.0);
}

TEST(NetworkStats, BusySlotsNeverExceedSlots) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  workload::PoissonParams p;
  p.rate_per_node = 1.0;
  p.seed = 2;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 300);
  n.run_slots(400);
  EXPECT_LE(n.stats().busy_slots, n.stats().slots);
  EXPECT_LE(n.stats().reuse_slots, n.stats().busy_slots);
  EXPECT_GE(n.stats().total_grants, n.stats().busy_slots);
}

TEST(NetworkStats, TimeAccountingSumsToWallClock) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  n.send_best_effort(0, NodeSet::single(3), 2,
                     sim::Duration::milliseconds(1));
  n.run_slots(100);
  // After the final gap, the engine's next slot start equals total
  // accounted time.
  const auto& s = n.stats();
  const auto total = s.time_in_slots + s.time_in_gaps;
  EXPECT_GE(n.sim().now(), sim::TimePoint::origin() + s.time_in_slots);
  EXPECT_EQ(total.ps() > 0, true);
}

}  // namespace
}  // namespace ccredf::net
