// SlotRecord::heard -- the free per-slot heartbeat the resilience layer
// feeds on.  A node is heard when its (possibly idle) request record
// validly reached the master during the collection phase; the set must
// behave identically on the engine's fast and slow collection paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/injector.hpp"
#include "net/network.hpp"

namespace ccredf::net {
namespace {

using sim::Duration;
using sim::TimePoint;

NetworkConfig cfg6() {
  NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

std::vector<SlotRecord> record(Network& n, std::int64_t slots) {
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& rec) { recs.push_back(rec); });
  n.run_slots(slots);
  return recs;
}

TEST(Heartbeat, CleanSlotHearsEveryLiveNode) {
  net::Network n(cfg6());
  // Mix idle slots with traffic: idle records count as evidence too.
  n.send_best_effort(2, NodeSet::single(5), 1, Duration::milliseconds(50));
  const auto recs = record(n, 20);
  const NodeSet all = n.topology().all_nodes();
  for (const auto& rec : recs) {
    EXPECT_EQ(rec.heard.mask(), all.mask()) << "slot " << rec.index;
  }
}

TEST(Heartbeat, FailedNodeIsUnheardUntilRestored) {
  net::Network n(cfg6());
  ASSERT_TRUE(n.fail_node(3));
  auto recs = record(n, 10);
  for (const auto& rec : recs) {
    EXPECT_FALSE(rec.heard.contains(3)) << "slot " << rec.index;
    EXPECT_TRUE(rec.heard.contains(1));
  }
  ASSERT_TRUE(n.restore_node(3));
  std::vector<SlotRecord> after;
  n.add_slot_observer([&](const SlotRecord& rec) { after.push_back(rec); });
  n.run_slots(10);
  for (const auto& rec : after) {
    EXPECT_TRUE(rec.heard.contains(3)) << "slot " << rec.index;
  }
}

TEST(Heartbeat, DroppedRecordIsUnheardForThatSlotOnly) {
  net::Network n(cfg6());
  fault::FaultInjector inj(n);
  inj.schedule_collection_drop(2, 4);
  const auto recs = record(n, 6);
  const NodeSet all = n.topology().all_nodes();
  for (const auto& rec : recs) {
    if (rec.index == 2) {
      EXPECT_FALSE(rec.heard.contains(4));
      EXPECT_EQ(rec.heard.mask(), (all & ~NodeSet::single(4)).mask());
    } else {
      EXPECT_EQ(rec.heard.mask(), all.mask()) << "slot " << rec.index;
    }
  }
}

TEST(Heartbeat, RejectedCorruptRecordIsUnheard) {
  // Frame-integrity guards rejecting a corrupted record leave the node
  // unheard: no VALID record arrived, which is exactly the evidence
  // standard the failure detector needs.
  NetworkConfig cfg = cfg6();
  cfg.with_frame_crc = true;
  net::Network n(cfg);
  fault::FaultInjector inj(n);
  inj.schedule_collection_corruption(3, 2, /*bits=*/4);
  const auto recs = record(n, 6);
  ASSERT_GE(n.stats().faults.collection_corruptions, 1);
  // Unheard exactly when the guards caught it; a silent forgery (a
  // corrupted record that still checks out) IS a valid-looking record
  // and must count as heard.
  EXPECT_EQ(recs[3].heard.contains(2),
            n.stats().faults.collection_detected == 0);
}

TEST(Heartbeat, MasterDeadSlotVoidsAllEvidence) {
  // The master dies mid-slot: whatever records it had sampled die with
  // it, so the slot must evidence NOBODY -- a conservative blank, not a
  // partial sample.
  net::Network n(cfg6());
  fault::FaultInjector inj(n);
  inj.schedule_node_failure(0, TimePoint::origin() + n.timing().slot() / 2);
  const auto recs = record(n, 10);
  ASSERT_TRUE(recs[0].token_lost);
  EXPECT_TRUE(recs[0].heard.empty());
  // Later slots (restarter's clock) hear everyone but the corpse.
  const NodeSet expect = n.topology().all_nodes() & ~NodeSet::single(0);
  EXPECT_EQ(recs.back().heard.mask(), expect.mask());
}

TEST(Heartbeat, FastAndSlowCollectionPathsAgree) {
  // Attaching a do-nothing fault hook forces the slow (per-hop) path;
  // the heard evidence must match the fast path's mask expression slot
  // for slot, under both idle and loaded slots.
  auto run = [](bool with_hook) {
    net::Network n(cfg6());
    std::optional<fault::FaultInjector> inj;
    if (with_hook) inj.emplace(n);  // injects nothing
    n.send_best_effort(1, NodeSet::single(4), 2, Duration::milliseconds(50));
    EXPECT_TRUE(n.fail_node(5));
    std::vector<std::uint64_t> heard;
    n.add_slot_observer([&](const SlotRecord& rec) {
      heard.push_back(rec.heard.mask());
    });
    n.run_slots(30);
    return heard;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ccredf::net
