#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ccredf::net {
namespace {

using core::TrafficClass;
using sim::Duration;

NetworkConfig small_config(NodeId nodes = 6) {
  NetworkConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

TEST(Network, ConstructionDerivesTiming) {
  Network n(small_config());
  EXPECT_EQ(n.nodes(), 6u);
  EXPECT_GE(n.timing().payload_bytes(),
            core::SlotTiming::min_payload_bytes(n.phy()));
  EXPECT_GT(n.timing().u_max(), 0.0);
  EXPECT_LT(n.timing().u_max(), 1.0);
  EXPECT_STREQ(n.protocol().name(), "CCR-EDF");
}

TEST(Network, RejectsBadConfigs) {
  NetworkConfig cfg;
  cfg.nodes = 1;
  EXPECT_THROW(Network{cfg}, ConfigError);
  cfg = small_config();
  cfg.designated_restarter = 99;
  EXPECT_THROW(Network{cfg}, ConfigError);
  cfg = small_config();
  cfg.link_lengths_m = {10.0, 10.0};  // wrong count for 6 nodes
  EXPECT_THROW(Network{cfg}, ConfigError);
}

TEST(Network, IdleRingAdvancesTime) {
  Network n(small_config());
  n.run_slots(10);
  EXPECT_EQ(n.stats().slots, 10);
  EXPECT_EQ(n.stats().busy_slots, 0);
  EXPECT_GT(n.sim().now(), sim::TimePoint::origin());
  // Master never moves without requests.
  EXPECT_EQ(n.current_master(), 0u);
}

TEST(Network, SingleMessageDelivered) {
  Network n(small_config());
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::milliseconds(1));
  n.run_slots(5);
  ASSERT_EQ(n.node(2).inbox().size(), 1u);
  const auto& d = n.node(2).inbox()[0];
  EXPECT_EQ(d.source, 0u);
  EXPECT_TRUE(d.met_deadline());
  EXPECT_EQ(n.stats().cls(TrafficClass::kBestEffort).delivered, 1);
}

TEST(Network, DeliveryLatencyWithinPipelineBound) {
  // A message on an idle ring is sampled in the current slot, granted for
  // the next, delivered at its end: latency <= 2 slots + gaps + prop.
  Network n(small_config());
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(10));
  n.run_slots(5);
  ASSERT_EQ(n.node(3).inbox().size(), 1u);
  const auto lat = n.node(3).inbox()[0].latency();
  EXPECT_LE(lat, n.timing().worst_case_latency() + n.phy().ring_delay());
}

TEST(Network, SenderBecomesMaster) {
  Network n(small_config());
  n.send_best_effort(4, NodeSet::single(1), 1, Duration::milliseconds(1));
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(3);
  // Slot 0 collects the request, slot 1 is mastered by the sender.
  ASSERT_GE(masters.size(), 2u);
  EXPECT_EQ(masters[1], 4u);
}

TEST(Network, MultiSlotMessageUsesMultipleSlots) {
  Network n(small_config());
  n.send_best_effort(0, NodeSet::single(2), 4, Duration::milliseconds(10));
  n.run_slots(10);
  ASSERT_EQ(n.node(2).inbox().size(), 1u);
  EXPECT_EQ(n.node(2).inbox()[0].size_slots, 4);
  EXPECT_EQ(n.stats().total_grants, 4);
  EXPECT_EQ(n.stats().busy_slots, 4);
}

TEST(Network, MulticastReachesAllDestinations) {
  Network n(small_config());
  NodeSet dests;
  dests.insert(2);
  dests.insert(4);
  n.send(1, dests, TrafficClass::kBestEffort, 1, Duration::milliseconds(1));
  n.run_slots(5);
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
  EXPECT_EQ(n.node(4).inbox().size(), 1u);
  EXPECT_EQ(n.node(3).inbox().size(), 0u);  // passed through, not a dest
}

TEST(Network, BroadcastReachesEveryoneButSource) {
  Network n(small_config());
  n.send(2, n.broadcast_dests(2), TrafficClass::kBestEffort, 1,
         Duration::milliseconds(1));
  n.run_slots(5);
  for (NodeId i = 0; i < n.nodes(); ++i) {
    EXPECT_EQ(n.node(i).inbox().size(), i == 2 ? 0u : 1u) << "node " << i;
  }
}

TEST(Network, NonRealTimeEventuallyDelivered) {
  Network n(small_config());
  n.send_non_realtime(0, NodeSet::single(5), 2);
  n.run_slots(8);
  ASSERT_EQ(n.node(5).inbox().size(), 1u);
  EXPECT_TRUE(n.node(5).inbox()[0].met_deadline());  // infinite deadline
}

TEST(Network, RtOutranksBestEffortAcrossNodes) {
  Network n(small_config());
  // BE at node 1, RT at node 3, both queued before any arbitration.
  n.send_best_effort(1, NodeSet::single(2), 1, Duration::milliseconds(1));
  n.send(3, NodeSet::single(4), TrafficClass::kRealTime, 1,
         Duration::milliseconds(1));
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(4);
  // First arbitration must elect the RT sender (node 3), not the BE one.
  ASSERT_GE(masters.size(), 2u);
  EXPECT_EQ(masters[1], 3u);
}

TEST(Network, NoPriorityInversionEver) {
  // The paper's central claim (§2): with CCR-EDF the globally most urgent
  // request is always granted.
  NetworkConfig cfg = small_config(8);
  Network n(cfg);
  for (int burst = 0; burst < 20; ++burst) {
    for (NodeId src = 0; src < 8; ++src) {
      n.send_best_effort(src, NodeSet::single((src + 3) % 8), 2,
                         Duration::microseconds(200 + 50 * src));
    }
    n.run_slots(10);
  }
  EXPECT_EQ(n.stats().priority_inversions, 0);
  EXPECT_GT(n.stats().total_grants, 0);
}

TEST(Network, SpatialReuseCarriesMultipleMessages) {
  Network n(small_config(8));
  // Two disjoint short segments: 0->1 and 4->5.
  n.send_best_effort(0, NodeSet::single(1), 1, Duration::milliseconds(1));
  n.send_best_effort(4, NodeSet::single(5), 1, Duration::milliseconds(1));
  n.run_slots(4);
  EXPECT_EQ(n.node(1).inbox().size(), 1u);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
  EXPECT_GE(n.stats().reuse_slots, 1);
}

TEST(Network, SpatialReuseDisabledSerialises) {
  NetworkConfig cfg = small_config(8);
  cfg.spatial_reuse = false;
  Network n(cfg);
  n.send_best_effort(0, NodeSet::single(1), 1, Duration::milliseconds(1));
  n.send_best_effort(4, NodeSet::single(5), 1, Duration::milliseconds(1));
  n.run_slots(6);
  EXPECT_EQ(n.stats().reuse_slots, 0);
  EXPECT_EQ(n.node(1).inbox().size(), 1u);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Network, GapReflectsHandoverDistance) {
  Network n(small_config(8));
  std::vector<Duration> gaps;
  std::vector<NodeId> hops;
  n.add_slot_observer([&](const SlotRecord& rec) {
    gaps.push_back(rec.gap_after);
    hops.push_back(n.topology().hops(rec.master, rec.next_master));
  });
  n.send_best_effort(5, NodeSet::single(6), 1, Duration::milliseconds(1));
  n.run_slots(3);
  // Slot 0: master 0 -> next master 5 (5 hops); link 10 m => 50 ns/hop,
  // plus 2 stop bits at 2.5 ns.
  ASSERT_GE(gaps.size(), 1u);
  EXPECT_EQ(hops[0], 5u);
  EXPECT_EQ(gaps[0], Duration::nanoseconds(5 * 50 + 5));
}

TEST(Network, RunForAdvancesWallClock) {
  Network n(small_config());
  n.run_for(Duration::microseconds(100));
  EXPECT_GE(n.sim().now(), sim::TimePoint::origin() +
                               Duration::microseconds(100) -
                               n.timing().slot_plus_max_gap());
  EXPECT_GT(n.stats().slots, 0);
}

TEST(Network, StatsTimeAccountingConsistent) {
  Network n(small_config());
  n.send_best_effort(0, NodeSet::single(3), 5, Duration::milliseconds(10));
  n.run_slots(20);
  const auto& s = n.stats();
  EXPECT_EQ(s.time_in_slots, n.timing().slot() * s.slots);
  EXPECT_GT(s.slot_time_fraction(), 0.0);
  EXPECT_LE(s.slot_time_fraction(), 1.0);
}

TEST(Network, SendValidatesArguments) {
  Network n(small_config());
  EXPECT_THROW(n.send_best_effort(0, NodeSet::single(0), 1,
                                  Duration::milliseconds(1)),
               ConfigError);
  EXPECT_THROW(n.send_best_effort(0, NodeSet{}, 1, Duration::milliseconds(1)),
               ConfigError);
  EXPECT_THROW(n.send_best_effort(9, NodeSet::single(1), 1,
                                  Duration::milliseconds(1)),
               ConfigError);
  EXPECT_THROW(n.send_best_effort(0, NodeSet::single(1), 0,
                                  Duration::milliseconds(1)),
               ConfigError);
}

TEST(Network, DeliveryCallbackFires) {
  Network n(small_config());
  int called = 0;
  n.node(2).set_delivery_callback([&](const core::Delivery& d) {
    ++called;
    EXPECT_EQ(d.source, 0u);
  });
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::milliseconds(1));
  n.run_slots(5);
  EXPECT_EQ(called, 1);
}

TEST(Network, FifoWithinSameSource) {
  // Two BE messages from one node with increasing deadlines leave in EDF
  // order; deliveries must preserve it.
  Network n(small_config());
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::microseconds(100));
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::microseconds(300));
  n.run_slots(6);
  ASSERT_EQ(n.node(2).inbox().size(), 1u);
  ASSERT_EQ(n.node(3).inbox().size(), 1u);
  EXPECT_LE(n.node(2).inbox()[0].completed, n.node(3).inbox()[0].completed);
}

}  // namespace
}  // namespace ccredf::net
