#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/network.hpp"

namespace ccredf::net {
namespace {

using core::ConnectionParams;
using core::TrafficClass;
using sim::Duration;

NetworkConfig cfg8() {
  NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

ConnectionParams conn(NodeId src, NodeId dst, std::int64_t e,
                      std::int64_t p, std::int64_t offset = 0) {
  ConnectionParams c;
  c.source = src;
  c.dests = NodeSet::single(dst);
  c.size_slots = e;
  c.period_slots = p;
  c.offset_slots = offset;
  return c;
}

TEST(Connection, AdmittedAndReleasesPeriodically) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 10));
  ASSERT_TRUE(r.admitted);
  n.run_slots(55);
  // ~55 slots of wall time / period 10 slots => about 5 releases.
  const auto delivered = n.stats().cls(TrafficClass::kRealTime).delivered;
  EXPECT_GE(delivered, 4);
  EXPECT_LE(delivered, 6);
}

TEST(Connection, AdmittedTrafficMeetsUserDeadlines) {
  Network n(cfg8());
  // Three connections totalling well under U_max.
  ASSERT_TRUE(n.open_connection(conn(0, 3, 1, 20)).admitted);
  ASSERT_TRUE(n.open_connection(conn(2, 5, 2, 40, 7)).admitted);
  ASSERT_TRUE(n.open_connection(conn(6, 1, 1, 16, 3)).admitted);
  n.run_slots(2000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 100);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(Connection, RejectionBeyondUmax) {
  Network n(cfg8());
  const double u_max = n.admission().u_max();
  // One connection eating ~90% of the bound.
  const auto p = static_cast<std::int64_t>(10.0 / (0.9 * u_max));
  ASSERT_TRUE(n.open_connection(conn(0, 3, 10, p)).admitted);
  // A second one at 20% must be rejected.
  const auto q = static_cast<std::int64_t>(10.0 / (0.2 * u_max));
  const auto r = n.open_connection(conn(4, 6, 10, q));
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.id, kNoConnection);
}

TEST(Connection, CloseStopsReleases) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 10));
  ASSERT_TRUE(r.admitted);
  n.run_slots(25);
  const auto before = n.stats().cls(TrafficClass::kRealTime).delivered;
  EXPECT_GT(before, 0);
  EXPECT_TRUE(n.close_connection(r.id));
  n.run_slots(50);
  const auto after = n.stats().cls(TrafficClass::kRealTime).delivered;
  // At most one in-flight message completes after the close.
  EXPECT_LE(after - before, 1);
}

TEST(Connection, CloseFreesAdmissionBudget) {
  Network n(cfg8());
  const double u_max = n.admission().u_max();
  const auto p = static_cast<std::int64_t>(10.0 / (0.9 * u_max));
  const auto r1 = n.open_connection(conn(0, 3, 10, p));
  ASSERT_TRUE(r1.admitted);
  EXPECT_FALSE(n.open_connection(conn(4, 6, 10, p)).admitted);
  EXPECT_TRUE(n.close_connection(r1.id));
  EXPECT_TRUE(n.open_connection(conn(4, 6, 10, p)).admitted);
}

TEST(Connection, CloseTwiceFails) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 10));
  ASSERT_TRUE(r.admitted);
  EXPECT_TRUE(n.close_connection(r.id));
  EXPECT_FALSE(n.close_connection(r.id));
  EXPECT_FALSE(n.close_connection(999));
}

TEST(Connection, OffsetDelaysFirstRelease) {
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 3, 1, 200, /*offset=*/100)).admitted);
  n.run_slots(50);
  EXPECT_EQ(n.stats().cls(TrafficClass::kRealTime).delivered, 0);
  n.run_slots(100);
  EXPECT_EQ(n.stats().cls(TrafficClass::kRealTime).delivered, 1);
}

TEST(Connection, MulticastConnection) {
  Network n(cfg8());
  ConnectionParams c;
  c.source = 1;
  c.dests.insert(3);
  c.dests.insert(5);
  c.size_slots = 1;
  c.period_slots = 20;
  ASSERT_TRUE(n.open_connection(c).admitted);
  n.run_slots(30);
  EXPECT_GE(n.node(3).inbox().size(), 1u);
  EXPECT_GE(n.node(5).inbox().size(), 1u);
}

TEST(Connection, ReleasesArriveInOrder) {
  Network n(cfg8());
  const auto r = n.open_connection(conn(0, 3, 1, 8));
  ASSERT_TRUE(r.admitted);
  n.run_slots(200);
  const auto& inbox = n.node(3).inbox();
  ASSERT_GT(inbox.size(), 5u);
  for (std::size_t i = 1; i < inbox.size(); ++i) {
    EXPECT_LE(inbox[i - 1].completed, inbox[i].completed);
    EXPECT_LE(inbox[i - 1].arrival, inbox[i].arrival);
  }
}

TEST(Connection, SourceMustDiffer) {
  Network n(cfg8());
  EXPECT_THROW((void)n.open_connection(conn(3, 3, 1, 10)), ConfigError);
}

TEST(Connection, FullLoadSaturatesNearUmax) {
  // At exactly-admissible full load the RT class keeps every user-level
  // deadline (the paper's guarantee) while utilisation approaches U_max.
  Network n(cfg8());
  const double u_max = n.admission().u_max();
  // Four connections each ~ u_max/5, e = 2.
  const auto period = static_cast<std::int64_t>(2.0 * 5.0 / u_max) + 1;
  int admitted = 0;
  for (NodeId i = 0; i < 4; ++i) {
    if (n.open_connection(conn(i, (i + 4) % 8, 2,
                               period, 3 * i)).admitted) {
      ++admitted;
    }
  }
  ASSERT_EQ(admitted, 4);
  n.run_slots(3000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 500);
  EXPECT_EQ(rt.user_misses, 0);
}

}  // namespace
}  // namespace ccredf::net
