#include "net/node.hpp"

#include <gtest/gtest.h>

namespace ccredf::net {
namespace {

core::Delivery make_delivery(MessageId id, NodeId src) {
  core::Delivery d;
  d.id = id;
  d.source = src;
  d.dests = NodeSet::single(1);
  return d;
}

TEST(Node, IdAndInitialState) {
  Node n(3);
  EXPECT_EQ(n.id(), 3u);
  EXPECT_TRUE(n.inbox().empty());
  EXPECT_TRUE(n.queues().empty());
  EXPECT_FALSE(n.failed());
}

TEST(Node, DeliverAppendsToInbox) {
  Node n(1);
  n.deliver(make_delivery(10, 0));
  n.deliver(make_delivery(11, 2));
  ASSERT_EQ(n.inbox().size(), 2u);
  EXPECT_EQ(n.inbox()[0].id, 10u);
  EXPECT_EQ(n.inbox()[1].id, 11u);
}

TEST(Node, ClearInbox) {
  Node n(1);
  n.deliver(make_delivery(10, 0));
  n.clear_inbox();
  EXPECT_TRUE(n.inbox().empty());
}

TEST(Node, CallbackFiresOnEveryDelivery) {
  Node n(1);
  int calls = 0;
  MessageId last = 0;
  n.set_delivery_callback([&](const core::Delivery& d) {
    ++calls;
    last = d.id;
  });
  n.deliver(make_delivery(7, 0));
  n.deliver(make_delivery(8, 0));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last, 8u);
  // Inbox still records alongside the callback.
  EXPECT_EQ(n.inbox().size(), 2u);
}

TEST(Node, FailureFlagToggle) {
  Node n(2);
  n.set_failed(true);
  EXPECT_TRUE(n.failed());
  n.set_failed(false);
  EXPECT_FALSE(n.failed());
}

}  // namespace
}  // namespace ccredf::net
