// Direct unit coverage of the CcrEdfProtocol adapter (the glue between
// the Arbiter/HandoverModel and the slot engine).
#include "net/ccredf_protocol.hpp"

#include <gtest/gtest.h>

#include "ring/segment.hpp"

namespace ccredf::net {
namespace {

using core::Request;
using sim::Duration;

struct Fixture {
  phy::RingPhy phy{phy::optobus(), 8, 10.0};
  ring::RingTopology topo{8};
};

Request req(core::Priority prio, const ring::RingTopology& topo, NodeId src,
            NodeId dst) {
  Request r;
  r.priority = prio;
  const auto seg =
      ring::Segment::for_transmission(topo, src, NodeSet::single(dst));
  r.links = seg.links();
  r.dests = NodeSet::single(dst);
  return r;
}

TEST(CcrEdfProtocol, Name) {
  Fixture f;
  CcrEdfProtocol p(&f.phy, f.topo, true);
  EXPECT_STREQ(p.name(), "CCR-EDF");
}

TEST(CcrEdfProtocol, PlanReflectsArbitration) {
  Fixture f;
  CcrEdfProtocol p(&f.phy, f.topo, true);
  std::vector<Request> reqs(8);
  reqs[5] = req(30, f.topo, 5, 7);
  reqs[1] = req(20, f.topo, 1, 3);
  const auto plan = p.plan_next_slot(reqs, 0, 0);
  EXPECT_EQ(plan.next_master, 5u);
  EXPECT_TRUE(plan.granted.contains(5));
  EXPECT_TRUE(plan.granted.contains(1));  // disjoint -> spatial reuse
}

TEST(CcrEdfProtocol, SpatialReuseOffSingleGrant) {
  Fixture f;
  CcrEdfProtocol p(&f.phy, f.topo, false);
  std::vector<Request> reqs(8);
  reqs[5] = req(30, f.topo, 5, 7);
  reqs[1] = req(20, f.topo, 1, 3);
  const auto plan = p.plan_next_slot(reqs, 0, 0);
  EXPECT_EQ(plan.granted.size(), 1);
}

TEST(CcrEdfProtocol, GapDelegatesToHandoverModel) {
  Fixture f;
  CcrEdfProtocol p(&f.phy, f.topo, true);
  const core::HandoverModel h(&f.phy);
  for (NodeId from = 0; from < 8; ++from) {
    for (NodeId to = 0; to < 8; ++to) {
      EXPECT_EQ(p.gap(from, to), h.gap(from, to));
    }
  }
  EXPECT_EQ(p.max_gap(), h.max_gap());
}

TEST(CcrEdfProtocol, MaxGapBoundsAllGaps) {
  Fixture f;
  CcrEdfProtocol p(&f.phy, f.topo, true);
  for (NodeId from = 0; from < 8; ++from) {
    for (NodeId to = 0; to < 8; ++to) {
      EXPECT_LE(p.gap(from, to), p.max_gap());
    }
  }
}

TEST(CcrEdfProtocol, ArbiterAccessorExposesConfiguration) {
  Fixture f;
  CcrEdfProtocol with(&f.phy, f.topo, true);
  CcrEdfProtocol without(&f.phy, f.topo, false);
  EXPECT_TRUE(with.arbiter().spatial_reuse());
  EXPECT_FALSE(without.arbiter().spatial_reuse());
}

}  // namespace
}  // namespace ccredf::net
