// The paper assumes equal link lengths "for simplicity"; the model
// supports per-link lengths, and every timing quantity must follow the
// exact per-link propagation sums rather than the average-based Eq. 1.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf::net {
namespace {

using sim::Duration;

NetworkConfig unequal_cfg() {
  NetworkConfig cfg;
  cfg.nodes = 5;
  cfg.link_lengths_m = {5.0, 10.0, 20.0, 40.0, 80.0};  // 25..400 ns hops
  return cfg;
}

TEST(UnequalLinks, ConstructionUsesExactLengths) {
  Network n(unequal_cfg());
  EXPECT_EQ(n.phy().link_delay(0), Duration::nanoseconds(25));
  EXPECT_EQ(n.phy().link_delay(4), Duration::nanoseconds(400));
  EXPECT_EQ(n.phy().ring_delay(), Duration::nanoseconds(775));
}

TEST(UnequalLinks, WorstHandoverExcludesCheapestLink) {
  Network n(unequal_cfg());
  // N-1 hops avoiding link 0 (the 25 ns one) = 750 ns + 2 stop bits.
  EXPECT_EQ(n.timing().max_handover(),
            Duration::nanoseconds(750) + Duration::nanoseconds(5));
}

TEST(UnequalLinks, ObservedGapsMatchPerLinkSums) {
  Network n(unequal_cfg());
  std::int64_t violations = 0;
  n.add_slot_observer([&](const SlotRecord& rec) {
    if (rec.token_lost) return;
    const NodeId hops = n.topology().hops(rec.master, rec.next_master);
    sim::Duration expect =
        n.phy().link().control_time(2 * n.phy().link().clock_stop_bits);
    if (hops > 0) expect += n.phy().path_delay(rec.master, hops);
    if (rec.gap_after != expect) ++violations;
  });
  workload::PoissonParams p;
  p.rate_per_node = 0.5;
  p.seed = 77;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 800);
  n.run_slots(1000);
  EXPECT_EQ(violations, 0);
  EXPECT_GT(n.stats().busy_slots, 100);
}

TEST(UnequalLinks, GuaranteeHoldsOnSkewedRing) {
  Network n(unequal_cfg());
  core::ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(4);  // the long way round
  c.size_slots = 1;
  c.period_slots = 15;
  ASSERT_TRUE(n.open_connection(c).admitted);
  n.run_slots(2000);
  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 100);
  EXPECT_EQ(rt.user_misses, 0);
  EXPECT_EQ(n.stats().priority_inversions, 0);
}

TEST(UnequalLinks, DeliveryTimestampIncludesExactPathDelay) {
  Network n(unequal_cfg());
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(1));
  sim::TimePoint slot_end;
  sim::TimePoint completed;
  n.add_slot_observer([&](const SlotRecord& rec) {
    for (const auto& d : rec.deliveries) {
      slot_end = rec.end;
      completed = d.completed;
    }
  });
  n.run_slots(4);
  // Path 1 -> 4 covers links 1,2,3: 50+100+200 ns.
  EXPECT_EQ(completed - slot_end, Duration::nanoseconds(350));
}

}  // namespace
}  // namespace ccredf::net
