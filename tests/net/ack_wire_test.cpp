// Wire-level fidelity: (a) the ack field of the distribution packet
// carries last slot's completed transfers when with_acks is on; (b) every
// slot's sampled requests and planned distribution are representable in
// the bit-exact TCMA frames (integration between the engine and codec).
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "workload/poisson.hpp"

namespace ccredf::net {
namespace {

using sim::Duration;

TEST(AckField, AcksFollowDeliveriesByOneSlot) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.with_acks = true;
  Network n(cfg);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  n.run_slots(6);
  // Slot k's acks mirror slot k-1's deliveries exactly.
  bool found = false;
  EXPECT_TRUE(recs.front().acks.empty());
  for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
    if (!recs[i].deliveries.empty()) {
      EXPECT_TRUE(recs[i + 1].acks.contains(2));
      found = true;
    } else {
      EXPECT_TRUE(recs[i + 1].acks.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(AckField, OffByDefault) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  Network n(cfg);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  n.run_slots(6);
  for (const auto& r : recs) EXPECT_TRUE(r.acks.empty());
}

TEST(AckField, TokenLossDestroysAcks) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.with_acks = true;
  Network n(cfg);
  fault::FaultInjector inj(n);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  // Message delivers in slot 2 (sampled slot 0/1); kill slot 3's packet.
  inj.schedule_token_loss(3);
  n.run_slots(6);
  for (const auto& r : recs) {
    if (r.token_lost) {
      EXPECT_TRUE(r.acks.empty());
    }
  }
}

// -- payload-CRC NACK wire -----------------------------------------------

NetworkConfig cfg6_nacks() {
  NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.with_acks = true;
  cfg.with_payload_crc = true;
  return cfg;
}

TEST(NackField, CorruptPayloadNacksTheSourceNextSlot) {
  Network n(cfg6_nacks());
  fault::FaultInjector inj(n);
  // Whichever slot the transfer lands in, its payload is corrupted.
  for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 2);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  n.run_slots(6);
  bool found = false;
  for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
    if (!recs[i].corrupt_deliveries.empty()) {
      EXPECT_EQ(recs[i].corrupt_deliveries.front().source, 2u);
      // The NACK (not an ack) rides the NEXT distribution packet.
      EXPECT_TRUE(recs[i + 1].nacks.contains(2));
      EXPECT_FALSE(recs[i + 1].acks.contains(2));
      found = true;
    } else {
      EXPECT_TRUE(recs[i + 1].nacks.empty());
    }
  }
  EXPECT_TRUE(found);
  // The CRC rejected the garbage before any inbox saw it.
  EXPECT_EQ(n.node(4).inbox().size(), 0u);
  EXPECT_EQ(n.stats().faults.payload_detected, 1);
  EXPECT_EQ(n.stats().faults.payload_nacks, 1);
}

TEST(NackField, WithoutPayloadCrcCorruptionIsSilentAndUnNacked) {
  NetworkConfig cfg;
  cfg.nodes = 6;
  cfg.with_acks = true;  // acks on, payload CRC off: no NACK wire
  Network n(cfg);
  fault::FaultInjector inj(n);
  for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 2);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  n.run_slots(6);
  for (const auto& r : recs) EXPECT_TRUE(r.nacks.empty());
  // The garbage reaches the application undetected.
  EXPECT_EQ(n.node(4).inbox().size(), 1u);
  EXPECT_EQ(n.stats().faults.payload_undetected, 1);
  EXPECT_EQ(n.stats().faults.payload_nacks, 0);
}

TEST(NackField, TokenLossDestroysNacks) {
  // Probe run: find the slot the corrupted transfer lands in (the
  // engine is deterministic, so an identical network repeats it).
  SlotIndex corrupt_slot = -1;
  {
    Network probe(cfg6_nacks());
    fault::FaultInjector inj(probe);
    for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 2);
    probe.add_slot_observer([&](const SlotRecord& r) {
      if (!r.corrupt_deliveries.empty()) corrupt_slot = r.index;
    });
    probe.send_best_effort(2, NodeSet::single(4), 1,
                           Duration::milliseconds(1));
    probe.run_slots(8);
  }
  ASSERT_GE(corrupt_slot, 0);

  // Real run: kill the distribution packet that would carry the NACK
  // back.  The NACK must die with the packet, exactly as acks do.
  Network n(cfg6_nacks());
  fault::FaultInjector inj(n);
  for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 2);
  inj.schedule_token_loss(corrupt_slot + 1);
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& r) { recs.push_back(r); });
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(1));
  n.run_slots(8);
  const auto lost_idx = static_cast<std::size_t>(corrupt_slot + 1);
  ASSERT_LT(lost_idx, recs.size());
  EXPECT_FALSE(
      recs[static_cast<std::size_t>(corrupt_slot)].corrupt_deliveries
          .empty());
  EXPECT_TRUE(recs[lost_idx].token_lost);
  EXPECT_TRUE(recs[lost_idx].nacks.empty());
  EXPECT_EQ(n.stats().faults.payload_nacks, 0);
}

TEST(WireFidelity, EverySlotRoundTripsThroughTheCodec) {
  // Re-encode what the engine actually produced each slot; any field
  // overflow (priority too wide, masks out of range) would throw.
  NetworkConfig cfg;
  cfg.nodes = 12;
  cfg.with_acks = true;
  Network n(cfg);
  std::int64_t slots_checked = 0;
  n.add_slot_observer([&](const SlotRecord& rec) {
    core::CollectionPacket col;
    col.requests = rec.requests;
    const auto enc = n.codec().encode(col);
    ASSERT_EQ(n.codec().decode_collection(enc), col);

    core::DistributionPacket dist;
    dist.granted = rec.granted;
    dist.hp_node = rec.master;  // this slot's master was announced before
    dist.has_acks = true;
    dist.acks = rec.acks;
    const auto denc = n.codec().encode(dist);
    ASSERT_EQ(n.codec().decode_distribution(denc), dist);
    ++slots_checked;
  });
  workload::PoissonParams p;
  p.rate_per_node = 0.8;
  p.seed = 9;
  p.min_size_slots = 1;
  p.max_size_slots = 3;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 400);
  n.run_slots(500);
  EXPECT_EQ(slots_checked, 500);
}

TEST(WireFidelity, RequestPrioritiesNeverExceedFieldWidth) {
  for (const unsigned bits : {3u, 5u, 8u}) {
    NetworkConfig cfg;
    cfg.nodes = 8;
    cfg.priority.field_bits = bits;
    Network n(cfg);
    const auto max_level = cfg.priority.max_level();
    n.add_slot_observer([&](const SlotRecord& rec) {
      for (const auto& r : rec.requests) {
        EXPECT_LE(r.priority, max_level);
      }
    });
    workload::PoissonParams p;
    p.rate_per_node = 0.5;
    p.min_laxity_slots = 1;
    p.max_laxity_slots = 100000;
    p.seed = 4;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 200);
    n.run_slots(250);
  }
}

}  // namespace
}  // namespace ccredf::net
