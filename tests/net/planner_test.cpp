// Hypercycle-planner engine tests (PROTOCOL.md section 9, DESIGN.md
// section 13): planner-backed admission past the Eq. 6 per-slot ceiling
// with zero misses, exact divergence back to slot-by-slot TCMA on every
// event outside the plan's model, and byte-identical statistics between
// the plan-driven fast-forward and slot-by-slot execution paths.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "services/resilience.hpp"

namespace ccredf::net {
namespace {

using core::ConnectionParams;
using core::TrafficClass;

NetworkConfig cfg8(bool planner = true, bool fast_forward = true) {
  NetworkConfig cfg;
  cfg.nodes = 8;
  cfg.planner = planner;
  cfg.fast_forward = fast_forward;
  cfg.record_inboxes = false;
  return cfg;
}

ConnectionParams conn(NodeId src, NodeId dst, std::int64_t e,
                      std::int64_t p, std::int64_t offset = 0) {
  ConnectionParams c;
  c.source = src;
  c.dests = NodeSet::single(dst);
  c.size_slots = e;
  c.period_slots = p;
  c.offset_slots = offset;
  return c;
}

/// Two 1-hop streams per unit segment on all 8 segments: utilisation
/// 16/8 = 2.0, far past U_max < 1 -- admissible only through the
/// planner's constructive spatial-reuse schedule.
std::vector<ConnectionParams> past_umax_set() {
  std::vector<ConnectionParams> v;
  for (NodeId i = 0; i < 8; ++i) {
    v.push_back(conn(i, static_cast<NodeId>((i + 1) % 8), 1, 8));
    v.push_back(conn(i, static_cast<NodeId>((i + 1) % 8), 1, 8));
  }
  return v;
}

/// Full statistics fingerprint (hexfloat doubles: one flipped mantissa
/// bit fails), planner counters included -- the parity gates cover them.
std::string fingerprint(const Network& n) {
  const auto& st = n.stats();
  std::ostringstream os;
  os << std::hexfloat;
  os << st.slots << ' ' << st.busy_slots << ' ' << st.total_grants << ' '
     << st.reuse_slots << ' ' << st.wasted_grants << ' '
     << st.priority_inversions << ' ' << st.planned_slots << ' '
     << st.plan_wait_slots << ' ' << st.plan_builds << ' '
     << st.plan_divergences << '\n';
  os << st.handover_hops.count() << ' ' << st.handover_hops.sum_exact()
     << ' ' << st.handover_hops.variance() << ' ' << st.gap.count() << ' '
     << st.gap.sum_exact() << ' ' << st.gap.variance() << '\n';
  os << st.time_in_slots.ps() << ' ' << st.time_in_gaps.ps() << '\n';
  for (NodeId j = 0; j < n.nodes(); ++j) {
    os << st.node_requests[j] << ' ' << st.node_grants[j] << ' ';
  }
  os << '\n';
  for (const auto cls : {TrafficClass::kRealTime, TrafficClass::kBestEffort,
                         TrafficClass::kNonRealTime}) {
    const auto& c = st.cls(cls);
    os << c.delivered << ' ' << c.scheduling_misses << ' ' << c.user_misses
       << ' ' << c.bytes << ' ' << c.latency.mean() << ' '
       << c.latency.variance() << ' ' << c.latency.min() << ' '
       << c.latency.max() << '\n';
  }
  std::vector<ConnectionId> ids;
  for (const auto& [id, cs] : st.per_connection) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const ConnectionId id : ids) {
    const auto& cs = st.per_connection.at(id);
    os << id << ':' << cs.released << ' ' << cs.delivered << ' '
       << cs.scheduling_misses << ' ' << cs.user_misses << ' '
       << cs.latency.mean() << ' ' << cs.latency.max() << '\n';
  }
  os << st.faults.token_losses << ' ' << st.faults.recoveries << ' '
     << n.recoveries() << ' ' << n.sim().events_fired() << '\n';
  return os.str();
}

TEST(Planner, AdmitsPastUmaxWithZeroMisses) {
  Network n(cfg8());
  for (const auto& c : past_umax_set()) {
    ASSERT_TRUE(n.open_connection(c).admitted);
  }
  ASSERT_TRUE(n.plan_valid());
  ASSERT_NE(n.planner(), nullptr);
  EXPECT_DOUBLE_EQ(n.planner()->planned_utilisation(), 2.0);
  EXPECT_GT(n.planner()->planned_utilisation(), n.admission().u_max());
  n.run_slots(20'000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 30'000);
  EXPECT_EQ(rt.scheduling_misses, 0);
  EXPECT_EQ(rt.user_misses, 0);
  EXPECT_GT(n.stats().planned_slots, 0);
  EXPECT_EQ(n.stats().plan_divergences, 0);
  EXPECT_TRUE(n.plan_engaged());
}

TEST(Planner, OffRejectsTheSameSet) {
  Network n(cfg8(/*planner=*/false));
  int rejected = 0;
  for (const auto& c : past_umax_set()) {
    if (!n.open_connection(c).admitted) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_FALSE(n.plan_valid());
  EXPECT_EQ(n.planner(), nullptr);
}

TEST(Planner, InfeasibleOverloadStillRejected) {
  // Two streams through the SAME link (0->2 covers 0->1) at joint
  // utilisation 1.0: spatial reuse cannot overlap them, so the planner's
  // exact simulation must refuse what Eq. 5 already refused -- never a
  // wrong admission.
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 1, 1, 4)).admitted);
  const auto r = n.open_connection(conn(0, 2, 3, 4));
  EXPECT_FALSE(r.admitted);
  // The feasible first stream stays planned.
  EXPECT_TRUE(n.plan_valid());
  n.run_slots(2'000);
  EXPECT_EQ(n.stats().cls(TrafficClass::kRealTime).user_misses, 0);
}

TEST(Planner, CloseRebuildsOrInvalidates) {
  Network n(cfg8());
  const auto a = n.open_connection(conn(0, 1, 1, 8));
  const auto b = n.open_connection(conn(4, 5, 1, 8));
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  ASSERT_TRUE(n.plan_valid());
  const auto builds_before = n.stats().plan_builds;
  n.run_slots(100);
  // Mid-stream close: the survivor has released jobs already, so the
  // rebuild refuses (the plan's layout assumes nominal first releases)
  // and the engine falls back to slot-by-slot TCMA -- which serves the
  // under-U_max survivor without misses.
  EXPECT_TRUE(n.close_connection(a.id));
  EXPECT_FALSE(n.plan_valid());
  EXPECT_EQ(n.stats().plan_builds, builds_before);
  n.run_slots(2'000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 200);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(Planner, FaultHookAttachDiverges) {
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 1, 1, 8)).admitted);
  ASSERT_TRUE(n.plan_engaged());
  fault::FaultInjector inj(n, 7);
  EXPECT_FALSE(n.plan_engaged());
  EXPECT_EQ(n.stats().plan_divergences, 1);
  n.run_slots(1'000);
  EXPECT_EQ(n.stats().planned_slots, 0);
}

TEST(Planner, ResilienceMonitorAttachDiverges) {
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 1, 1, 8)).admitted);
  ASSERT_TRUE(n.plan_engaged());
  {
    services::ResilienceMonitor mon(n, services::ResilienceParams{});
    EXPECT_FALSE(n.plan_engaged());
    EXPECT_EQ(n.stats().plan_divergences, 1);
    n.run_slots(1'000);
    EXPECT_EQ(n.stats().planned_slots, 0);
  }
  // With the monitor detached the next admission event can re-plan.
  ASSERT_TRUE(n.open_connection(conn(4, 5, 1, 8, /*offset=*/0)).admitted);
  EXPECT_FALSE(n.plan_valid());  // first stream is mid-release now
}

TEST(Planner, NodeChurnDiverges) {
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 1, 1, 8)).admitted);
  n.run_slots(64);
  ASSERT_TRUE(n.plan_engaged());
  ASSERT_TRUE(n.fail_node(5));
  EXPECT_FALSE(n.plan_engaged());
  EXPECT_EQ(n.stats().plan_divergences, 1);
  ASSERT_TRUE(n.restore_node(5));
  n.run_slots(1'000);
  EXPECT_EQ(n.stats().plan_divergences, 1);  // sticky, counted once
}

TEST(Planner, AperiodicTrafficDiverges) {
  Network n(cfg8());
  ASSERT_TRUE(n.open_connection(conn(0, 1, 1, 8)).admitted);
  n.run_slots(64);
  ASSERT_TRUE(n.plan_engaged());
  (void)n.send_best_effort(3, NodeSet::single(4), 1,
                           sim::Duration::infinity());
  EXPECT_FALSE(n.plan_engaged());
  n.run_slots(1'000);
  // TCMA serves both the periodic stream and the one-shot message.
  EXPECT_GT(n.stats().cls(TrafficClass::kBestEffort).delivered, 0);
  EXPECT_EQ(n.stats().cls(TrafficClass::kRealTime).user_misses, 0);
}

TEST(Planner, FastForwardVsSlotBySlotByteIdentical) {
  auto run = [](bool fast_forward) {
    Network n(cfg8(/*planner=*/true, fast_forward));
    for (const auto& c : past_umax_set()) {
      EXPECT_TRUE(n.open_connection(c).admitted);
    }
    n.run_slots(20'000);
    return fingerprint(n);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Planner, FastForwardVsSlotBySlotByteIdenticalWithOffsets) {
  // Staggered offsets and mixed periods: prefix bundles, waits and
  // cyclic bundles all interleave.
  auto run = [](bool fast_forward) {
    Network n(cfg8(/*planner=*/true, fast_forward));
    EXPECT_TRUE(n.open_connection(conn(0, 1, 1, 8, 3)).admitted);
    EXPECT_TRUE(n.open_connection(conn(2, 4, 2, 16)).admitted);
    EXPECT_TRUE(n.open_connection(conn(5, 6, 1, 12, 7)).admitted);
    n.run_slots(25'000);
    return fingerprint(n);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Planner, DivergenceMidRunStaysByteIdentical) {
  // The plan engages, then a best-effort message diverges it mid-run:
  // both engines must switch back to TCMA at the same slot boundary.
  auto run = [](bool fast_forward) {
    Network n(cfg8(/*planner=*/true, fast_forward));
    for (const auto& c : past_umax_set()) {
      EXPECT_TRUE(n.open_connection(c).admitted);
    }
    n.run_slots(5'000);
    (void)n.send_best_effort(3, NodeSet::single(4), 1,
                             sim::Duration::infinity());
    n.run_slots(5'000);
    return fingerprint(n);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Planner, OnVsOffByteIdenticalWhenNeverEngaged) {
  // With a fault hook attached before any admission the plan never
  // builds, so planner on/off must be byte-identical -- the sweep's
  // paired-cell gate for fault/churn/BER axes rests on this.
  auto run = [](bool planner) {
    Network n(cfg8(planner));
    fault::FaultInjector inj(n, 7);
    inj.set_control_ber(2e-6);
    inj.schedule_token_loss(1'000);
    for (const auto& c : {conn(0, 1, 1, 16), conn(3, 5, 1, 24)}) {
      EXPECT_TRUE(n.open_connection(c).admitted);
    }
    n.run_slots(8'000);
    return fingerprint(n);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Planner, PlannedEngineMatchesUnplannedOutcomes) {
  // On a set BOTH engines admit, planned mode must change nothing a
  // user can observe: same deliveries, same misses, same wall time.
  Network off(cfg8(/*planner=*/false));
  ASSERT_TRUE(off.open_connection(conn(0, 1, 1, 8)).admitted);
  off.run_slots(10'000);
  Network on(cfg8(/*planner=*/true));
  ASSERT_TRUE(on.open_connection(conn(0, 1, 1, 8)).admitted);
  on.run_slots(10'000);
  EXPECT_GT(on.stats().planned_slots, 0);
  EXPECT_EQ(on.stats().cls(TrafficClass::kRealTime).delivered,
            off.stats().cls(TrafficClass::kRealTime).delivered);
  EXPECT_EQ(on.stats().cls(TrafficClass::kRealTime).user_misses, 0);
  EXPECT_EQ(off.stats().cls(TrafficClass::kRealTime).user_misses, 0);
  EXPECT_EQ(on.stats().time_in_slots.ps(), off.stats().time_in_slots.ps());
}

}  // namespace
}  // namespace ccredf::net
