// Severed-segment fault model: hard per-link cut/splice events, the
// in-protocol detection evidence (truncated heard prefix), degraded-mode
// arbitration (cut-crossing transfers masked, master re-anchored at the
// cut's downstream endpoint) and the double-cut ring-dark parking.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "net/network.hpp"

namespace ccredf::net {
namespace {

using sim::Duration;
using sim::TimePoint;

NetworkConfig cfg6() {
  NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

std::vector<SlotRecord> record(Network& n, std::int64_t slots) {
  std::vector<SlotRecord> recs;
  n.add_slot_observer([&](const SlotRecord& rec) { recs.push_back(rec); });
  n.run_slots(slots);
  return recs;
}

TEST(LinkFault, CutAndSpliceAreIdempotent) {
  net::Network n(cfg6());
  EXPECT_TRUE(n.severed_links().empty());
  EXPECT_FALSE(n.splice_link(2));  // splice-of-intact: no-op
  EXPECT_TRUE(n.cut_link(2));
  EXPECT_FALSE(n.cut_link(2));  // double cut: no-op
  EXPECT_EQ(n.stats().faults.link_cuts, 1);
  EXPECT_EQ(n.severed_links().mask(), LinkSet::single(2).mask());
  EXPECT_TRUE(n.splice_link(2));
  EXPECT_FALSE(n.splice_link(2));  // double splice: no-op
  EXPECT_TRUE(n.severed_links().empty());
  EXPECT_EQ(n.stats().faults.link_cuts, 1);  // splices are not cuts
}

TEST(LinkFault, DegradedAnchorIsCutDownstreamEndpoint) {
  net::Network n(cfg6());
  EXPECT_EQ(n.degraded_anchor(), kInvalidNode);  // intact: no anchor
  ASSERT_TRUE(n.cut_link(2));
  EXPECT_EQ(n.degraded_anchor(), 3u);
  // A dead downstream endpoint delegates to the next live node.
  ASSERT_TRUE(n.fail_node(3));
  EXPECT_EQ(n.degraded_anchor(), 4u);
  ASSERT_TRUE(n.restore_node(3));
  ASSERT_TRUE(n.cut_link(4));
  EXPECT_EQ(n.degraded_anchor(), kInvalidNode);  // >= 2 cuts: no anchor
}

TEST(LinkFault, FirstCollectionHearsOnlyThePrefixThenReanchors) {
  // Master 0, cut at link 2: the collection packet dies leaving node 2,
  // so slot 0 hears exactly hops 0..2 = {0, 1, 2} -- the classified
  // loss pattern (a contiguous downstream suffix of LIVE nodes gone
  // silent).  The same slot re-anchors the clock at node 3, after which
  // the break link coincides with the cut and everyone is heard again.
  net::Network n(cfg6());
  ASSERT_TRUE(n.cut_link(2));
  const auto recs = record(n, 4);
  const NodeSet prefix =
      NodeSet::single(0) | NodeSet::single(1) | NodeSet::single(2);
  EXPECT_EQ(recs[0].heard.mask(), prefix.mask());
  EXPECT_EQ(recs[0].next_master, 3u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].master, 3u) << "slot " << i;
    EXPECT_EQ(recs[i].heard.mask(), n.topology().all_nodes().mask())
        << "slot " << i;
  }
  EXPECT_EQ(n.stats().faults.cut_detect_slots, 1);
}

TEST(LinkFault, CutAtMastersOwnEgressHearsOnlyTheMaster) {
  // Link 0 is the master's own egress: the packet dies leaving node 0,
  // so the master hears only itself that slot, then anchors at node 1.
  net::Network n(cfg6());
  ASSERT_TRUE(n.cut_link(0));
  const auto recs = record(n, 3);
  EXPECT_EQ(recs[0].heard.mask(), NodeSet::single(0).mask());
  EXPECT_EQ(recs[0].next_master, 1u);
  EXPECT_EQ(recs[1].heard.mask(), n.topology().all_nodes().mask());
}

TEST(LinkFault, CutOneHopUpstreamOfMasterNeedsNoReanchor) {
  // Link 5 = link_into(master 0) is already the break link: the
  // collection covers the whole ring and the master never moves.
  net::Network n(cfg6());
  ASSERT_TRUE(n.cut_link(5));
  const auto recs = record(n, 4);
  for (const auto& rec : recs) {
    EXPECT_EQ(rec.master, 0u) << "slot " << rec.index;
    EXPECT_EQ(rec.heard.mask(), n.topology().all_nodes().mask())
        << "slot " << rec.index;
  }
}

TEST(LinkFault, EveryCutPositionAnchorsAtItsDownstreamEndpoint) {
  for (LinkId l = 0; l < 6; ++l) {
    net::Network n(cfg6());
    ASSERT_TRUE(n.cut_link(l));
    const auto recs = record(n, 4);
    const NodeId anchor = (l + 1) % 6;
    EXPECT_EQ(recs.back().master, anchor) << "cut " << l;
    EXPECT_EQ(recs.back().heard.mask(), n.topology().all_nodes().mask())
        << "cut " << l;
  }
}

TEST(LinkFault, CutCrossingTransferIsMaskedAndSurvivorFlows) {
  // Node 1 -> node 5 crosses links {1, 2, 3, 4}; node 4 -> node 5 rides
  // only link 4.  Cutting link 2 must mask the first and keep granting
  // the second.
  net::Network n(cfg6());
  ASSERT_TRUE(n.cut_link(2));
  n.run_slots(2);  // settle on the anchor (node 3)
  n.send_best_effort(1, NodeSet::single(5), 1, Duration::milliseconds(50));
  n.send_best_effort(4, NodeSet::single(5), 1, Duration::milliseconds(50));
  const std::int64_t delivered_before =
      n.stats().cls(core::TrafficClass::kBestEffort).delivered;
  n.run_slots(10);
  // The survivor delivered; the crosser is still queued (degraded mode
  // excludes it from arbitration -- no grant is wasted on it either).
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered,
            delivered_before + 1);
  ASSERT_TRUE(n.splice_link(2));
  n.run_slots(10);
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered,
            delivered_before + 2);  // healed ring drains the crosser
}

TEST(LinkFault, GrantInFlightAcrossFreshCutIsVoided) {
  // The message is granted on an intact ring, then the link is cut
  // between arbitration and the transmission slot (mid-gap): the grant
  // must be voided, the message stays queued and drains after splice.
  net::Network n(cfg6());
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(50));
  // The grant for slot k+1 is decided during slot k; cut right after
  // slot 0 ends (inside the gap) so slot 1 executes into the cut.
  fault::FaultInjector inj(n);
  inj.schedule_link_cut(
      2, TimePoint::origin() + n.timing().slot() + Duration::nanoseconds(1));
  const std::int64_t wasted_before = n.stats().wasted_grants;
  n.run_slots(3);
  EXPECT_GT(n.stats().wasted_grants, wasted_before);
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 0);
  ASSERT_TRUE(n.splice_link(2));
  n.run_slots(8);
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 1);
}

TEST(LinkFault, MidSlotCutBooksTwoDetectSlots) {
  // A cut landing AFTER a slot's collection samples is first evidenced
  // by the NEXT collection: latency 2 slots, against 1 for a cut landing
  // on the slot boundary (both within the heartbeat-window + 1 bound).
  net::Network n(cfg6());
  fault::FaultInjector inj(n);
  // 90% into slot 0: collection sampled an intact ring already.
  inj.schedule_link_cut(
      2, TimePoint::origin() + (n.timing().slot() * 9) / 10);
  const auto recs = record(n, 3);
  EXPECT_EQ(recs[0].heard.mask(), n.topology().all_nodes().mask());
  // The late cut still re-anchors at the end of the slot that absorbed
  // it, so by slot 2 the clock sits on the anchor and heard is full --
  // the latency shows only in the detection counter.
  EXPECT_EQ(recs[2].master, 3u);
  EXPECT_EQ(n.stats().faults.cut_detect_slots, 2);
}

TEST(LinkFault, DoubleCutParksRingDarkAndSplicesStageRecovery) {
  // Two cuts partition the ring: like PR 4's all-failed case the clock
  // parks at the designated restarter and nothing is granted.  Splicing
  // back to one cut resumes degraded service; splicing the last cut
  // restores the full ring.
  net::Network n(cfg6());
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(500));
  ASSERT_TRUE(n.cut_link(1));
  ASSERT_TRUE(n.cut_link(3));
  const std::int64_t dark_before = n.stats().faults.ring_dark;
  const auto recs = record(n, 6);
  EXPECT_GE(n.stats().faults.ring_dark, dark_before + 5);
  for (const auto& rec : recs) {
    EXPECT_TRUE(rec.granted.empty()) << "slot " << rec.index;
  }
  EXPECT_EQ(recs.back().master, n.config().designated_restarter);
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 0);

  // One splice: single-cut degraded mode; 1 -> 4 crosses the remaining
  // cut (link 3), so it stays parked...
  ASSERT_TRUE(n.splice_link(1));
  n.run_slots(6);
  const std::int64_t dark_single = n.stats().faults.ring_dark;
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 0);
  // ...until the second splice heals the ring and it drains.
  ASSERT_TRUE(n.splice_link(3));
  n.run_slots(8);
  EXPECT_EQ(n.stats().faults.ring_dark, dark_single);  // no more dark slots
  EXPECT_EQ(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 1);
}

TEST(LinkFault, AnchoredSingleCutFastForwardMatchesSlotBySlot) {
  // Once the degraded orbit is stable (one cut, master on the anchor),
  // idle stretches fast-forward -- and the aggregate statistics must be
  // identical to slot-by-slot execution, cut bookkeeping included.
  struct Out {
    std::int64_t ff_windows = 0;
    std::string fingerprint;
  };
  auto run = [](bool ff) {
    NetworkConfig cfg;
    cfg.nodes = 6;
    cfg.fast_forward = ff;
    net::Network n(cfg);
    fault::FaultInjector inj(n);
    const Duration extent = n.timing().slot_plus_max_gap();
    inj.schedule_link_cut(2, TimePoint::origin() + extent * 10);
    inj.schedule_link_splice(2, TimePoint::origin() + extent * 120);
    n.send_best_effort(4, NodeSet::single(5), 1, Duration::milliseconds(2));
    n.run_slots(200);
    const auto& st = n.stats();
    std::ostringstream os;
    os << st.slots << ' ' << st.total_grants << ' ' << st.wasted_grants
       << ' ' << st.gap.count() << ' ' << st.gap.sum_exact() << ' '
       << st.faults.link_cuts << ' ' << st.faults.cut_detect_slots << ' '
       << st.faults.ring_dark << ' '
       << st.cls(core::TrafficClass::kBestEffort).delivered << ' '
       << static_cast<int>(n.current_master()) << ' ' << n.current_slot();
    return Out{st.ff_windows, os.str()};
  };
  const Out a = run(true);
  const Out b = run(false);
  EXPECT_GT(a.ff_windows, 0);
  EXPECT_EQ(b.ff_windows, 0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(LinkFault, CutDivergesAnEngagedPlan) {
  // The hypercycle planner's grant layout assumes an intact ring: any
  // link event must fall back to slot-by-slot TCMA, and no new plan may
  // build until the ring is spliced whole.
  NetworkConfig cfg;
  cfg.nodes = 4;
  cfg.planner = true;
  net::Network n(cfg);
  core::ConnectionParams p;
  p.source = 1;
  p.dests = NodeSet::single(2);
  p.size_slots = 1;
  p.period_slots = 8;
  ASSERT_TRUE(n.open_connection(p).admitted);
  n.run_slots(16);
  ASSERT_GT(n.stats().planned_slots, 0);
  const std::int64_t divergences = n.stats().plan_divergences;
  ASSERT_TRUE(n.cut_link(3));
  EXPECT_EQ(n.stats().plan_divergences, divergences + 1);
  n.run_slots(16);
  EXPECT_EQ(n.stats().plan_builds, 1);  // no rebuild while severed
  ASSERT_TRUE(n.splice_link(3));
  n.run_slots(1);
  EXPECT_TRUE(n.severed_links().empty());
}

}  // namespace
}  // namespace ccredf::net
