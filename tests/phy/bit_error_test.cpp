#include "phy/bit_error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::phy {
namespace {

constexpr std::uint64_t kSeed = 0x5EEDu;

std::vector<std::uint8_t> zeroes(std::size_t nbits) {
  return std::vector<std::uint8_t>((nbits + 7) / 8, 0);
}

TEST(BitErrorModel, ValidatesConstruction) {
  EXPECT_THROW(BitErrorModel(1, 0.0, kSeed), ConfigError);
  EXPECT_THROW(BitErrorModel(65, 0.0, kSeed), ConfigError);
  EXPECT_THROW(BitErrorModel(4, -0.1, kSeed), ConfigError);
  EXPECT_THROW(BitErrorModel(4, 1.0, kSeed), ConfigError);
  EXPECT_THROW(BitErrorModel(std::vector<double>{0.1}, kSeed), ConfigError);
  EXPECT_NO_THROW(BitErrorModel(4, 0.999, kSeed));
}

TEST(BitErrorModel, EnabledOnlyWithNonZeroRate) {
  EXPECT_FALSE(BitErrorModel(4, 0.0, kSeed).enabled());
  EXPECT_TRUE(BitErrorModel(4, 1e-6, kSeed).enabled());
  EXPECT_TRUE(
      BitErrorModel(std::vector<double>{0, 0, 1e-4, 0}, kSeed).enabled());
}

TEST(BitErrorModel, PathErrorProbabilityCompounds) {
  const BitErrorModel uniform(4, 0.1, kSeed);
  EXPECT_DOUBLE_EQ(uniform.path_error_probability(0, 1), 0.1);
  // 1 - (1 - 0.1)^2 over two links.
  EXPECT_NEAR(uniform.path_error_probability(0, 2), 0.19, 1e-12);
  // Full ring: 1 - 0.9^4.
  EXPECT_NEAR(uniform.path_error_probability(2, 4), 1.0 - 0.6561, 1e-12);

  // Per-link rates wrap around the ring from `first`.
  const BitErrorModel mixed(std::vector<double>{0.0, 0.5, 0.0, 0.0}, kSeed);
  EXPECT_DOUBLE_EQ(mixed.path_error_probability(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(mixed.path_error_probability(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(mixed.path_error_probability(3, 3), 0.5);
}

TEST(BitErrorModel, ZeroProbabilityNeverFlips) {
  const BitErrorModel m(4, 0.5, kSeed);
  auto buf = zeroes(256);
  for (SlotIndex s = 0; s < 50; ++s) {
    EXPECT_EQ(m.corrupt(s, 0, 0.0, buf.data(), 256), 0);
  }
  EXPECT_EQ(buf, zeroes(256));
}

TEST(BitErrorModel, SameCoordinatesFlipTheSameBits) {
  const BitErrorModel m(4, 0.5, kSeed);
  auto a = zeroes(96);
  auto b = zeroes(96);
  const int fa = m.corrupt(17, 3, 0.25, a.data(), 96);
  const int fb = m.corrupt(17, 3, 0.25, b.data(), 96);
  EXPECT_EQ(fa, fb);
  EXPECT_EQ(a, b);
  EXPECT_GT(fa, 0);  // p = 0.25 over 96 bits: flipless is ~1e-12
}

TEST(BitErrorModel, DifferentCoordinatesAreIndependent) {
  const BitErrorModel m(4, 0.5, kSeed);
  auto by_slot = zeroes(96);
  auto by_chan = zeroes(96);
  auto base = zeroes(96);
  m.corrupt(17, 3, 0.25, base.data(), 96);
  m.corrupt(18, 3, 0.25, by_slot.data(), 96);
  m.corrupt(17, 4, 0.25, by_chan.data(), 96);
  EXPECT_NE(base, by_slot);
  EXPECT_NE(base, by_chan);
}

TEST(BitErrorModel, FlipCountTracksProbability) {
  // Mean flips per frame = p * nbits; over many keyed frames the
  // empirical mean must land close (law of large numbers, fixed seed).
  const BitErrorModel m(4, 0.5, kSeed);
  const double p = 0.1;
  const std::size_t nbits = 200;
  std::int64_t total = 0;
  const int frames = 2000;
  for (SlotIndex s = 0; s < frames; ++s) {
    auto buf = zeroes(nbits);
    total += m.corrupt(s, 9, p, buf.data(), nbits);
  }
  const double mean = static_cast<double>(total) / frames;
  EXPECT_NEAR(mean, p * static_cast<double>(nbits), 1.0);
}

TEST(BitErrorModel, FlipsStayInsideTheBitRange) {
  // nbits not byte-aligned: bits past nbits (padding in the last byte)
  // must never be touched.
  const BitErrorModel m(4, 0.5, kSeed);
  const std::size_t nbits = 13;  // 2 bytes, 3 padding bits
  for (SlotIndex s = 0; s < 500; ++s) {
    auto buf = zeroes(nbits);
    m.corrupt(s, 1, 0.9, buf.data(), nbits);
    EXPECT_EQ(buf[1] & 0x07u, 0) << "padding bit flipped at slot " << s;
  }
}

TEST(BitErrorModel, CertainCorruptionHitsEveryFrame) {
  const BitErrorModel m(4, 0.5, kSeed);
  for (SlotIndex s = 0; s < 100; ++s) {
    auto buf = zeroes(32);
    EXPECT_GT(m.corrupt(s, 2, 0.999999, buf.data(), 32), 0);
  }
}

TEST(BitErrorModel, CountFlipsMatchesCorruptExactly) {
  // The bufferless payload sampler must agree flip-for-flip with the
  // buffer-materialising path at every coordinate -- the reliability
  // model's verdicts are then provably the same ones a real corrupted
  // buffer would have produced.
  const BitErrorModel m(4, 0.5, kSeed);
  const std::size_t nbits = 340 * 8;  // a typical slot payload
  for (SlotIndex s = 0; s < 200; ++s) {
    auto buf = zeroes(nbits);
    const int flipped = m.corrupt(s, 7, 1e-3, buf.data(), nbits);
    EXPECT_EQ(m.count_flips(s, 7, 1e-3, nbits), flipped) << "slot " << s;
  }
}

TEST(BitErrorModel, CountFlipsIsDeterministicAndKeyed) {
  const BitErrorModel m(4, 0.5, kSeed);
  EXPECT_EQ(m.count_flips(17, 3, 0.25, 96), m.count_flips(17, 3, 0.25, 96));
  EXPECT_EQ(m.count_flips(5, 1, 0.0, 4096), 0);
  // Over many frames the empirical mean tracks p * nbits, as corrupt().
  std::int64_t total = 0;
  for (SlotIndex s = 0; s < 2000; ++s) {
    total += m.count_flips(s, 9, 0.1, 200);
  }
  EXPECT_NEAR(static_cast<double>(total) / 2000.0, 20.0, 1.0);
}

TEST(BitErrorModel, SeedChangesTheStream) {
  const BitErrorModel a(4, 0.5, kSeed);
  const BitErrorModel b(4, 0.5, kSeed + 1);
  auto ba = zeroes(96);
  auto bb = zeroes(96);
  a.corrupt(5, 0, 0.25, ba.data(), 96);
  b.corrupt(5, 0, 0.25, bb.data(), 96);
  EXPECT_NE(ba, bb);
}

}  // namespace
}  // namespace ccredf::phy
