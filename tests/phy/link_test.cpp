#include "phy/link.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::phy {
namespace {

using sim::Duration;

TEST(RibbonLink, OptobusDefaults) {
  const RibbonLinkParams p = optobus();
  p.validate();
  EXPECT_EQ(p.data_fibres, 8);
  EXPECT_EQ(p.clock_rate_hz, 400'000'000);
  // 8 fibres at 400 Mbit/s => 3.2 Gbit/s aggregate (paper ref [10]).
  EXPECT_EQ(p.aggregate_data_rate(), 3'200'000'000);
}

TEST(RibbonLink, BitTime) {
  RibbonLinkParams p;
  p.clock_rate_hz = 400'000'000;
  EXPECT_EQ(p.bit_time(), Duration::picoseconds(2'500));
  p.clock_rate_hz = 1'000'000'000;
  EXPECT_EQ(p.bit_time(), Duration::picoseconds(1'000));
}

TEST(RibbonLink, DataTimeIsBytePerTick) {
  const RibbonLinkParams p = optobus();
  // Byte-parallel: one byte per clock tick regardless of fibre count.
  EXPECT_EQ(p.data_time(1), p.bit_time());
  EXPECT_EQ(p.data_time(100), p.bit_time() * 100);
}

TEST(RibbonLink, ControlTimeIsBitSerial) {
  const RibbonLinkParams p = optobus();
  EXPECT_EQ(p.control_time(8), p.bit_time() * 8);
}

TEST(RibbonLink, ControlAndDataShareTheClock) {
  const RibbonLinkParams p = optobus();
  // One slot of B bytes of data spans exactly B control bits -- the 8x
  // asymmetry that overlaps arbitration with data (paper Fig. 3).
  EXPECT_EQ(p.data_time(64), p.control_time(64));
}

TEST(RibbonLink, ConservativePresetSlower) {
  EXPECT_GT(conservative_ribbon().bit_time(), optobus().bit_time());
}

TEST(RibbonLink, ValidationRejectsNonsense) {
  RibbonLinkParams p;
  p.clock_rate_hz = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RibbonLinkParams{};
  p.data_fibres = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RibbonLinkParams{};
  p.propagation_ps_per_m = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RibbonLinkParams{};
  p.node_passthrough_bits = -1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RibbonLinkParams{};
  p.clock_stop_bits = 0;
  EXPECT_THROW(p.validate(), ConfigError);
}

}  // namespace
}  // namespace ccredf::phy
