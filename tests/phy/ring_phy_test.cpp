#include "phy/ring_phy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::phy {
namespace {

using sim::Duration;

RingPhy uniform_ring(NodeId n, double len_m) {
  return RingPhy(optobus(), n, len_m);
}

TEST(RingPhy, UniformConstruction) {
  const RingPhy r = uniform_ring(5, 10.0);
  EXPECT_EQ(r.nodes(), 5u);
  EXPECT_DOUBLE_EQ(r.mean_length_m(), 10.0);
}

TEST(RingPhy, LinkDelayIsPTimesL) {
  // Eq. 1 constituents: 10 m at 5 ns/m => 50 ns per hop.
  const RingPhy r = uniform_ring(4, 10.0);
  for (LinkId l = 0; l < 4; ++l) {
    EXPECT_EQ(r.link_delay(l), Duration::nanoseconds(50));
  }
}

TEST(RingPhy, PathDelayAccumulates) {
  const RingPhy r = uniform_ring(6, 10.0);
  EXPECT_EQ(r.path_delay(0, 0), Duration::zero());
  EXPECT_EQ(r.path_delay(0, 1), Duration::nanoseconds(50));
  EXPECT_EQ(r.path_delay(2, 3), Duration::nanoseconds(150));
  EXPECT_EQ(r.path_delay(4, 5), Duration::nanoseconds(250));  // wraps
}

TEST(RingPhy, RingDelayIsFullLoop) {
  const RingPhy r = uniform_ring(8, 25.0);
  // 8 links * 25 m * 5 ns/m = 1000 ns.
  EXPECT_EQ(r.ring_delay(), Duration::microseconds(1));
}

TEST(RingPhy, HandoverTimeMatchesEq1) {
  // Eq. 1: t_handover = P * L * D.
  const RingPhy r = uniform_ring(10, 10.0);
  for (NodeId d = 1; d < 10; ++d) {
    EXPECT_EQ(r.handover_time(3, d), Duration::nanoseconds(50 * d));
  }
}

TEST(RingPhy, MaxHandoverIsNMinusOneHops) {
  const RingPhy r = uniform_ring(10, 10.0);
  EXPECT_EQ(r.max_handover_time(), Duration::nanoseconds(50 * 9));
}

TEST(RingPhy, UnequalLinks) {
  const RingPhy r(optobus(), std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_EQ(r.link_delay(0), Duration::nanoseconds(50));
  EXPECT_EQ(r.link_delay(1), Duration::nanoseconds(100));
  EXPECT_EQ(r.link_delay(2), Duration::nanoseconds(150));
  EXPECT_EQ(r.ring_delay(), Duration::nanoseconds(300));
  EXPECT_DOUBLE_EQ(r.mean_length_m(), 20.0);
}

TEST(RingPhy, MaxHandoverExcludesShortestLinkWithUnequalLengths) {
  const RingPhy r(optobus(), std::vector<double>{10.0, 20.0, 30.0});
  // Worst N-1-hop path excludes the cheapest link (10 m): 100+150 = 250 ns.
  EXPECT_EQ(r.max_handover_time(), Duration::nanoseconds(250));
}

TEST(RingPhy, HopsBetween) {
  const RingPhy r = uniform_ring(6, 10.0);
  EXPECT_EQ(r.hops_between(0, 0), 0u);
  EXPECT_EQ(r.hops_between(0, 1), 1u);
  EXPECT_EQ(r.hops_between(5, 0), 1u);
  EXPECT_EQ(r.hops_between(0, 5), 5u);
  EXPECT_EQ(r.hops_between(3, 2), 5u);
}

TEST(RingPhy, RejectsBadConfigs) {
  EXPECT_THROW(uniform_ring(1, 10.0), ConfigError);
  EXPECT_THROW(RingPhy(optobus(), std::vector<double>{10.0, -1.0}),
               ConfigError);
  EXPECT_THROW(RingPhy(optobus(), std::vector<double>(100, 10.0)),
               ConfigError);  // > kMaxNodes
}

TEST(RingPhy, PathDelayBoundsChecked) {
  const RingPhy r = uniform_ring(4, 10.0);
  EXPECT_THROW((void)r.path_delay(4, 1), ConfigError);
  EXPECT_THROW((void)r.path_delay(0, 4), ConfigError);
  EXPECT_THROW((void)r.link_delay(4), ConfigError);
}

}  // namespace
}  // namespace ccredf::phy
