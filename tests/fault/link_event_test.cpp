// Satellite of the severed-segment PR: link cut/splice events through
// the injector, and the merged timestamp-sorted event view that covers
// node AND link events with a single FIFO tie-break (FaultEvent::seq is
// globally monotonic across kinds, so same-timestamp events replay in
// scheduling order no matter which kind they are).
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ccredf::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(LinkEvent, ScheduledCutAndSpliceTakeEffectAtTheirInstants) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  const Duration extent = n.timing().slot_plus_max_gap();
  // Wall-clock instants (idle slots pace tighter than the max-gap
  // extent, so generous slot counts bracket each instant).
  inj.schedule_link_cut(2, TimePoint::origin() + extent * 5);
  inj.schedule_link_splice(2, TimePoint::origin() + extent * 15);
  n.run_slots(4);
  EXPECT_TRUE(n.severed_links().empty());  // cut instant not reached yet
  n.run_slots(6);
  EXPECT_TRUE(n.severed_links().contains(2));
  n.run_slots(20);
  EXPECT_TRUE(n.severed_links().empty());
  EXPECT_EQ(n.stats().faults.link_cuts, 1);
}

TEST(LinkEvent, DoubleCutThroughSchedulerIsIdempotent) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  const TimePoint t = TimePoint::origin() + Duration::microseconds(5);
  inj.schedule_link_cut(1, t);
  inj.schedule_link_cut(1, t + Duration::microseconds(1));
  inj.schedule_link_splice(4, t);  // splice-of-intact: no-op
  n.run_slots(30);
  EXPECT_TRUE(n.severed_links().contains(1));
  EXPECT_EQ(n.stats().faults.link_cuts, 1);
  EXPECT_TRUE(n.splice_link(1));  // one splice undoes both cuts
  EXPECT_TRUE(n.severed_links().empty());
}

TEST(LinkEvent, SameTimestampLastScheduledActionWins) {
  // Same contract as node fail/restore: equal timestamps fire in
  // scheduling order, so the LAST scheduled action decides the link's
  // state after the instant.
  const TimePoint t = TimePoint::origin() + Duration::microseconds(10);
  {
    net::Network n(cfg6());
    FaultInjector inj(n);
    inj.schedule_link_cut(3, t);
    inj.schedule_link_splice(3, t);  // cut fires first, splice last
    n.run_slots(20);
    EXPECT_TRUE(n.severed_links().empty());
  }
  {
    net::Network n(cfg6());
    ASSERT_TRUE(n.cut_link(3));
    FaultInjector inj(n);
    inj.schedule_link_splice(3, t);
    inj.schedule_link_cut(3, t);  // splice fires first, cut last
    n.run_slots(20);
    EXPECT_TRUE(n.severed_links().contains(3));
  }
}

TEST(LinkEvent, MergedEventViewSortsByTimestampThenSeq) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  const TimePoint t1 = TimePoint::origin() + Duration::microseconds(1);
  const TimePoint t2 = TimePoint::origin() + Duration::microseconds(2);
  // Scheduled deliberately out of timestamp order, mixing kinds; two
  // events share t1 so the FIFO tie-break is exercised across kinds.
  inj.schedule_link_cut(4, t2);
  inj.schedule_node_failure(1, t1);
  inj.schedule_link_splice(4, t2 + Duration::microseconds(1));
  inj.schedule_link_cut(0, t1);  // same instant as the node failure
  inj.schedule_node_restore(1, t2);

  const auto events = inj.scheduled_events();
  ASSERT_EQ(events.size(), 5u);
  using Kind = FaultInjector::FaultEvent::Kind;
  // t1: node failure was scheduled before the cut -> it replays first.
  EXPECT_EQ(events[0].kind, Kind::kNodeFail);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].kind, Kind::kLinkCut);
  EXPECT_EQ(events[1].id, 0u);
  EXPECT_LT(events[0].seq, events[1].seq);
  // t2: the cut of link 4 (seq 0) precedes the restore (seq 4).
  EXPECT_EQ(events[2].kind, Kind::kLinkCut);
  EXPECT_EQ(events[2].id, 4u);
  EXPECT_EQ(events[3].kind, Kind::kNodeRestore);
  EXPECT_EQ(events[3].id, 1u);
  EXPECT_EQ(events[4].kind, Kind::kLinkSplice);
  EXPECT_EQ(events[4].id, 4u);
  // Timestamps are non-decreasing and seqs strictly increase within a
  // timestamp -- the merged view IS the replay order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at.ps(), events[i].at.ps());
    if (events[i - 1].at == events[i].at) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

}  // namespace
}  // namespace ccredf::fault
