#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::fault {
namespace {

using core::TrafficClass;
using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(Fault, TokenLossTriggersRecovery) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_token_loss(3);
  n.run_slots(10);
  EXPECT_EQ(inj.token_losses_injected(), 1);
  EXPECT_EQ(n.recoveries(), 1);
  EXPECT_GT(n.recovery_time(), Duration::zero());
}

TEST(Fault, DesignatedRestarterTakesOver) {
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 2;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_token_loss(3);
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(6);
  ASSERT_GE(recs.size(), 5u);
  EXPECT_TRUE(recs[3].token_lost);
  EXPECT_EQ(recs[3].next_master, 2u);
  EXPECT_EQ(recs[4].master, 2u);
}

TEST(Fault, RecoveryGapMatchesTimeoutConfig) {
  net::NetworkConfig cfg = cfg6();
  cfg.recovery_timeout_slots = 7;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_token_loss(2);
  sim::Duration gap_after_loss = Duration::zero();
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.token_lost) gap_after_loss = rec.gap_after;
  });
  n.run_slots(6);
  EXPECT_EQ(gap_after_loss,
            (n.timing().slot() + n.protocol().max_gap()) * 7);
}

TEST(Fault, TrafficSurvivesTokenLoss) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_token_loss(2);
  inj.schedule_token_loss(5);
  for (NodeId s = 0; s < 6; ++s) {
    n.send_best_effort(s, NodeSet::single((s + 2) % 6), 1,
                       Duration::milliseconds(50));
  }
  n.run_slots(60);
  std::size_t delivered = 0;
  for (NodeId i = 0; i < 6; ++i) delivered += n.node(i).inbox().size();
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(n.recoveries(), 2);
}

TEST(Fault, GrantsDieWithTheDistributionPacket) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  // The collection of slot 0 arbitrates slot 1; losing slot 0's
  // distribution kills those grants.
  inj.schedule_token_loss(0);
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::milliseconds(50));
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(5);
  EXPECT_TRUE(recs[0].token_lost);
  EXPECT_TRUE(recs[1].granted.empty());
  // The message is re-requested and still delivered afterwards.
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
}

TEST(Fault, RandomTokenLossRecoversRepeatedly) {
  net::Network n(cfg6());
  FaultInjector inj(n, /*seed=*/5);
  inj.set_random_token_loss(0.05);
  n.run_slots(500);
  EXPECT_GT(inj.token_losses_injected(), 5);
  EXPECT_EQ(n.recoveries(), inj.token_losses_injected());
}

TEST(Fault, FailedNodeDropsTrafficButRingSurvives) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_node_failure(3, sim::TimePoint::origin());
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(5));
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(5));
  n.run_slots(20);
  EXPECT_EQ(n.node(3).inbox().size(), 0u);  // failed receiver drops
  EXPECT_EQ(n.node(4).inbox().size(), 1u);  // others unaffected
}

TEST(Fault, FailedNodeDoesNotRequest) {
  net::Network n(cfg6());
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(5));
  n.fail_node(2);  // queue cleared, node silent
  n.run_slots(10);
  EXPECT_EQ(n.node(4).inbox().size(), 0u);
  EXPECT_EQ(n.stats().busy_slots, 0);
}

TEST(Fault, MasterFailureRecoversViaTimeout) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  // Node 0 is the initial master; kill it mid-run.
  inj.schedule_node_failure(
      0, sim::TimePoint::origin() + n.timing().slot() / 2);
  n.send_best_effort(3, NodeSet::single(5), 1, Duration::milliseconds(50));
  n.run_slots(20);
  EXPECT_GE(n.recoveries(), 1);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Fault, RestoredNodeWorksAgain) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_node_failure(2, sim::TimePoint::origin());
  inj.schedule_node_restore(
      2, sim::TimePoint::origin() + n.timing().slot() * 20);
  n.run_slots(25);
  n.send_best_effort(2, NodeSet::single(5), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Fault, InjectorValidatesProbability) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  EXPECT_THROW(inj.set_random_token_loss(1.0), ConfigError);
  EXPECT_THROW(inj.set_random_token_loss(-0.1), ConfigError);
}

}  // namespace
}  // namespace ccredf::fault
