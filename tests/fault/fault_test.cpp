#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::fault {
namespace {

using core::TrafficClass;
using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(Fault, TokenLossTriggersRecovery) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_token_loss(3);
  n.run_slots(10);
  EXPECT_EQ(inj.token_losses_injected(), 1);
  EXPECT_EQ(n.recoveries(), 1);
  EXPECT_GT(n.recovery_time(), Duration::zero());
}

TEST(Fault, DesignatedRestarterTakesOver) {
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 2;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_token_loss(3);
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(6);
  ASSERT_GE(recs.size(), 5u);
  EXPECT_TRUE(recs[3].token_lost);
  EXPECT_EQ(recs[3].next_master, 2u);
  EXPECT_EQ(recs[4].master, 2u);
}

TEST(Fault, RecoveryGapMatchesTimeoutConfig) {
  net::NetworkConfig cfg = cfg6();
  cfg.recovery_timeout_slots = 7;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_token_loss(2);
  sim::Duration gap_after_loss = Duration::zero();
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.token_lost) gap_after_loss = rec.gap_after;
  });
  n.run_slots(6);
  EXPECT_EQ(gap_after_loss,
            (n.timing().slot() + n.protocol().max_gap()) * 7);
}

TEST(Fault, TrafficSurvivesTokenLoss) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_token_loss(2);
  inj.schedule_token_loss(5);
  for (NodeId s = 0; s < 6; ++s) {
    n.send_best_effort(s, NodeSet::single((s + 2) % 6), 1,
                       Duration::milliseconds(50));
  }
  n.run_slots(60);
  std::size_t delivered = 0;
  for (NodeId i = 0; i < 6; ++i) delivered += n.node(i).inbox().size();
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(n.recoveries(), 2);
}

TEST(Fault, GrantsDieWithTheDistributionPacket) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  // The collection of slot 0 arbitrates slot 1; losing slot 0's
  // distribution kills those grants.
  inj.schedule_token_loss(0);
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::milliseconds(50));
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(5);
  EXPECT_TRUE(recs[0].token_lost);
  EXPECT_TRUE(recs[1].granted.empty());
  // The message is re-requested and still delivered afterwards.
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
}

TEST(Fault, RandomTokenLossRecoversRepeatedly) {
  net::Network n(cfg6());
  FaultInjector inj(n, /*seed=*/5);
  inj.set_random_token_loss(0.05);
  n.run_slots(500);
  EXPECT_GT(inj.token_losses_injected(), 5);
  EXPECT_EQ(n.recoveries(), inj.token_losses_injected());
}

TEST(Fault, FailedNodeDropsTrafficButRingSurvives) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_node_failure(3, sim::TimePoint::origin());
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(5));
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(5));
  n.run_slots(20);
  EXPECT_EQ(n.node(3).inbox().size(), 0u);  // failed receiver drops
  EXPECT_EQ(n.node(4).inbox().size(), 1u);  // others unaffected
}

TEST(Fault, FailedNodeDoesNotRequest) {
  net::Network n(cfg6());
  n.send_best_effort(2, NodeSet::single(4), 1, Duration::milliseconds(5));
  n.fail_node(2);  // queue cleared, node silent
  n.run_slots(10);
  EXPECT_EQ(n.node(4).inbox().size(), 0u);
  EXPECT_EQ(n.stats().busy_slots, 0);
}

TEST(Fault, MasterFailureRecoversViaTimeout) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  // Node 0 is the initial master; kill it mid-run.
  inj.schedule_node_failure(
      0, sim::TimePoint::origin() + n.timing().slot() / 2);
  n.send_best_effort(3, NodeSet::single(5), 1, Duration::milliseconds(50));
  n.run_slots(20);
  EXPECT_GE(n.recoveries(), 1);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Fault, RestoredNodeWorksAgain) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_node_failure(2, sim::TimePoint::origin());
  inj.schedule_node_restore(
      2, sim::TimePoint::origin() + n.timing().slot() * 20);
  n.run_slots(25);
  n.send_best_effort(2, NodeSet::single(5), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Fault, InjectorValidatesProbability) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  EXPECT_THROW(inj.set_random_token_loss(1.0), ConfigError);
  EXPECT_THROW(inj.set_random_token_loss(-0.1), ConfigError);
}

TEST(Fault, InjectorValidatesFaultParameters) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  EXPECT_THROW(inj.schedule_collection_drop(0, 6), ConfigError);
  EXPECT_THROW(inj.schedule_collection_corruption(0, 6), ConfigError);
  EXPECT_THROW(inj.schedule_collection_corruption(0, 1, 0), ConfigError);
  EXPECT_THROW(inj.schedule_distribution_corruption(0, 0), ConfigError);
  EXPECT_THROW(inj.set_babbling_node(6, 0.5), ConfigError);
  EXPECT_THROW(inj.set_babbling_node(1, 1.5), ConfigError);
  EXPECT_THROW(inj.set_control_ber(1.0), ConfigError);
  EXPECT_THROW(inj.set_control_ber({0.1, 0.1}), ConfigError);  // 6 links
  EXPECT_THROW(inj.set_data_ber(1.0), ConfigError);
  EXPECT_THROW(inj.set_data_ber({0.1, 0.1}), ConfigError);  // 6 links
  EXPECT_THROW(inj.schedule_payload_corruption(0, 6), ConfigError);
}

// -- satellite: token-loss recovery edge cases ---------------------------

TEST(Fault, AllNodesFailedLeavesRingDarkWithoutPhantomRecoveries) {
  // Regression: with EVERY node failed at token-loss time the restarter
  // search has no live candidate.  The engine must count the window as
  // ring-dark -- not as a recovery, which would poison the recovery-cost
  // statistics with events that never happened.
  net::Network n(cfg6());
  FaultInjector inj(n);
  for (NodeId i = 0; i < 6; ++i) {
    inj.schedule_node_failure(i, sim::TimePoint::origin());
  }
  n.run_slots(8);
  const auto& f = n.stats().faults;
  EXPECT_GE(f.ring_dark, 1);
  EXPECT_EQ(n.recoveries(), 0);
  EXPECT_EQ(f.recoveries, 0);
  EXPECT_EQ(f.recovery_gap.count(), 0);
  EXPECT_EQ(n.recovery_time(), Duration::zero());

  // A restored node ends the dark window through the normal recovery.
  n.restore_node(3);
  n.restore_node(4);
  n.run_slots(10);
  EXPECT_GE(n.recoveries(), 1);
  n.send_best_effort(3, NodeSet::single(4), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(4).inbox().size(), 1u);
}

TEST(Fault, MasterRestoredMidRecoveryYieldsOneClockMaster) {
  // The failed master comes back BEFORE the restarter timeout elapses.
  // The restart plan was already fixed at the loss: the designated
  // restarter -- and only it -- takes the clock; the restored node
  // rejoins as an ordinary participant (no concurrent masters).
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 2;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_node_failure(
      0, sim::TimePoint::origin() + n.timing().slot() / 2);
  inj.schedule_node_restore(
      0, sim::TimePoint::origin() + n.timing().slot() * 2);
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(15);
  ASSERT_GE(recs.size(), 15u);
  std::size_t lost = recs.size();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].token_lost) {
      lost = i;
      break;
    }
  }
  ASSERT_LT(lost, recs.size() - 1);
  EXPECT_EQ(recs[lost].next_master, 2u);
  EXPECT_EQ(recs[lost + 1].master, 2u);  // restarter, not the restored node
  EXPECT_EQ(n.recoveries(), 1);
  // One clock master: the ring is healthy after the recovery -- the
  // restored node does not break the rotation by asserting a stale clock.
  for (std::size_t i = lost + 1; i < recs.size(); ++i) {
    EXPECT_FALSE(recs[i].token_lost) << "slot " << i;
  }
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(3).inbox().size(), 1u);
}

// -- satellite: node-restore paths ---------------------------------------

TEST(Fault, RestoredMasterAtFailureTimeWorksAgain) {
  // Node 0 is the initial master; killing it breaks the clock, and a
  // restore must bring it back as an ordinary participant.
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_node_failure(
      0, sim::TimePoint::origin() + n.timing().slot() / 2);
  inj.schedule_node_restore(
      0, sim::TimePoint::origin() + n.timing().slot() * 20);
  n.run_slots(25);
  EXPECT_GE(n.recoveries(), 1);
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(3).inbox().size(), 1u);
}

TEST(Fault, FailedRestarterDeputizesThenResumesAfterRestore) {
  // The paper's "designated node that always will start" is itself a
  // single point of failure: when it is down, the first live node
  // downstream must assume the role, and a restore hands it back.
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 2;
  net::Network n(cfg);
  FaultInjector inj(n);
  inj.schedule_node_failure(2, sim::TimePoint::origin());
  inj.schedule_token_loss(3);
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(6);
  ASSERT_GE(recs.size(), 5u);
  EXPECT_TRUE(recs[3].token_lost);
  EXPECT_EQ(recs[3].next_master, 3u);  // deputy: downstream of node 2
  EXPECT_EQ(recs[4].master, 3u);

  n.restore_node(2);
  inj.schedule_token_loss(8);
  n.run_slots(6);
  ASSERT_GE(recs.size(), 10u);
  EXPECT_TRUE(recs[8].token_lost);
  EXPECT_EQ(recs[8].next_master, 2u);  // restored restarter is back
  EXPECT_EQ(recs[9].master, 2u);
}

// -- targeted control-channel corruption ---------------------------------

net::NetworkConfig cfg6_crc() {
  net::NetworkConfig cfg = cfg6();
  cfg.with_frame_crc = true;
  return cfg;
}

TEST(Fault, CollectionCorruptionIsDetectedWithCrcAndMessageSurvives) {
  net::Network n(cfg6_crc());
  FaultInjector inj(n);
  for (SlotIndex s = 0; s < 5; ++s) {
    inj.schedule_collection_corruption(s, 1);
  }
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(50));
  n.run_slots(20);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.collection_corruptions, 5);
  EXPECT_EQ(f.collection_detected, 5);
  EXPECT_EQ(f.silent(), 0);
  EXPECT_EQ(n.stats().per_node_faults[1].requests_corrupted, 5);
  EXPECT_EQ(n.stats().per_node_faults[1].requests_rejected, 5);
  EXPECT_GT(inj.bits_flipped(), 0);
  // Containment, not loss: the rejected node re-requests and delivers.
  EXPECT_EQ(n.node(4).inbox().size(), 1u);
}

TEST(Fault, PriorityFieldCorruptionNeverMisarbitratesWithCrc) {
  // Acceptance check: odd-weight flips (1 or 3 bits) across the record
  // -- priority, reservation and destination fields included -- must
  // all be caught by the CRC (poly 0x07 divides x+1, so every
  // odd-weight error is detected).  No silent misarbitration allowed.
  net::Network n(cfg6_crc());
  FaultInjector inj(n);
  for (SlotIndex s = 0; s < 12; ++s) {
    inj.schedule_collection_corruption(s, 2, s % 2 == 0 ? 1 : 3);
  }
  for (int i = 0; i < 15; ++i) {
    n.send_best_effort(2, NodeSet::single(5), 1,
                       Duration::milliseconds(50));
  }
  n.run_slots(30);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.collection_corruptions, 12);
  EXPECT_EQ(f.collection_detected, 12);
  EXPECT_EQ(f.silent(), 0);
  EXPECT_EQ(n.stats().priority_inversions, 0);
}

TEST(Fault, WithoutCrcSomeCorruptionSlipsThroughTheGuards) {
  // The plausibility guards alone cannot catch flips that keep the
  // record well-formed (e.g. a mutated priority value): those reach
  // arbitration as silent corruption.  This is the hazard the CRC
  // extension removes -- compare the test above.
  net::Network n(cfg6());  // no CRC
  FaultInjector inj(n);
  for (SlotIndex s = 0; s < 30; ++s) {
    inj.schedule_collection_corruption(s, 2, 1);
  }
  for (int i = 0; i < 35; ++i) {
    n.send_best_effort(2, NodeSet::single(5), 1,
                       Duration::milliseconds(50));
  }
  n.run_slots(40);
  const auto& f = n.stats().faults;
  // Every injected corruption is accounted: detected or silent.
  EXPECT_EQ(f.collection_corruptions,
            f.collection_detected + f.collection_silent);
  EXPECT_EQ(f.collection_corruptions, 30);
  EXPECT_GT(f.collection_silent, 0);
}

TEST(Fault, CollectionDropDelaysButDeliversMessage) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.schedule_collection_drop(0, 4);
  n.send_best_effort(4, NodeSet::single(1), 1, Duration::milliseconds(50));
  n.run_slots(10);
  EXPECT_EQ(n.stats().faults.collection_drops, 1);
  EXPECT_EQ(n.stats().per_node_faults[4].requests_dropped, 1);
  EXPECT_EQ(n.node(1).inbox().size(), 1u);
}

TEST(Fault, DistributionCorruptionDetectedTriggersRecovery) {
  // A receiver rejecting the distribution packet is exactly the
  // token-loss condition: the restarter timeout recovers, bounded.
  net::Network n(cfg6_crc());
  FaultInjector inj(n);
  inj.schedule_distribution_corruption(2);
  n.run_slots(10);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.distribution_corruptions, 1);
  EXPECT_EQ(f.distribution_detected, 1);
  EXPECT_EQ(f.silent(), 0);
  EXPECT_EQ(n.recoveries(), 1);
  EXPECT_EQ(f.recoveries, 1);
  EXPECT_EQ(f.recovery_gap.count(), 1);
  EXPECT_GT(f.recovery_gap.mean(), 0.0);
}

TEST(Fault, BabblingNodeWastesGrantsAndIsCounted) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  inj.set_babbling_node(5, 1.0);
  n.run_slots(20);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.spurious_requests, 20);
  EXPECT_EQ(n.stats().per_node_faults[5].spurious_requests, 20);
  // Fabricated requests carry no message: every grant they win is waste.
  EXPECT_GT(n.stats().wasted_grants, 0);
  EXPECT_EQ(n.stats().busy_slots, 0);
}

TEST(Fault, BerRunIsDeterministicAcrossIdenticalNetworks) {
  // The keyed fault streams make a BER run a pure function of (seed,
  // slot, channel): two identical networks see identical faults.
  auto run = [](net::NetworkStats* out) -> std::int64_t {
    net::Network n(cfg6_crc());
    FaultInjector inj(n, /*seed=*/7);
    inj.set_control_ber(2e-3);
    for (NodeId i = 0; i < 10; ++i) {
      n.send_best_effort(i % 6, NodeSet::single((i + 3) % 6), 1,
                         Duration::milliseconds(50));
    }
    n.run_slots(300);
    *out = n.stats();
    return inj.bits_flipped();
  };
  net::NetworkStats a, b;
  const std::int64_t fa = run(&a);
  const std::int64_t fb = run(&b);
  EXPECT_EQ(fa, fb);
  EXPECT_GT(fa, 0);
  EXPECT_EQ(a.faults.collection_corruptions, b.faults.collection_corruptions);
  EXPECT_EQ(a.faults.collection_detected, b.faults.collection_detected);
  EXPECT_EQ(a.faults.distribution_corruptions,
            b.faults.distribution_corruptions);
  EXPECT_EQ(a.faults.recoveries, b.faults.recoveries);
  // Accounting identity: every corrupted record is classified.
  EXPECT_EQ(a.faults.collection_corruptions,
            a.faults.collection_detected + a.faults.collection_silent);
}

TEST(Fault, IdleInjectorLeavesTheNetworkUntouched) {
  // An attached hook with nothing configured must not perturb the run:
  // the fault counters stay zero and traffic behaves as without it.
  net::Network clean(cfg6());
  net::Network hooked(cfg6());
  FaultInjector inj(hooked, /*seed=*/9);
  for (net::Network* n : {&clean, &hooked}) {
    for (NodeId s = 0; s < 6; ++s) {
      n->send_best_effort(s, NodeSet::single((s + 2) % 6), 1,
                          Duration::milliseconds(50));
    }
    n->run_slots(30);
  }
  EXPECT_EQ(inj.bits_flipped(), 0);
  EXPECT_EQ(hooked.stats().faults.detected(), 0);
  EXPECT_EQ(hooked.stats().faults.silent(), 0);
  EXPECT_EQ(hooked.stats().faults.token_losses, 0);
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(hooked.node(i).inbox().size(), clean.node(i).inbox().size());
  }
  EXPECT_EQ(hooked.stats().busy_slots, clean.stats().busy_slots);
}

// -- data-channel (payload) faults ---------------------------------------

net::NetworkConfig cfg6_payload_crc() {
  net::NetworkConfig cfg = cfg6();
  cfg.with_acks = true;
  cfg.with_payload_crc = true;
  return cfg;
}

TEST(Fault, PayloadCorruptionDetectedWithPayloadCrc) {
  net::Network n(cfg6_payload_crc());
  FaultInjector inj(n);
  for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 1);
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(50));
  n.run_slots(10);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.payload_corruptions, 1);
  EXPECT_EQ(f.payload_detected, 1);
  EXPECT_EQ(f.payload_undetected, 0);
  EXPECT_EQ(f.payload_nacks, 1);
  EXPECT_EQ(n.stats().per_node_faults[1].payloads_corrupted, 1);
  EXPECT_GT(inj.data_bits_flipped(), 0);
  EXPECT_EQ(inj.bits_flipped(), 0);  // control channel untouched
  // The receivers drop the garbage; the engine itself never retries
  // (end-to-end repair is the ReliableChannel's job).
  EXPECT_EQ(n.node(4).inbox().size(), 0u);
}

TEST(Fault, PayloadCorruptionSilentWithoutPayloadCrc) {
  net::Network n(cfg6());
  FaultInjector inj(n);
  for (SlotIndex s = 0; s < 6; ++s) inj.schedule_payload_corruption(s, 1);
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(50));
  n.run_slots(10);
  const auto& f = n.stats().faults;
  EXPECT_EQ(f.payload_corruptions, 1);
  EXPECT_EQ(f.payload_detected, 0);
  EXPECT_EQ(f.payload_undetected, 1);
  EXPECT_EQ(f.payload_nacks, 0);
  EXPECT_GE(f.silent(), 1);
  // The corrupted payload reaches the application as garbage.
  EXPECT_EQ(n.node(4).inbox().size(), 1u);
}

TEST(Fault, DataBerRunIsDeterministicAcrossIdenticalNetworks) {
  // The data-channel fault stream is keyed on (seed, slot, channel)
  // exactly as the control stream: identical networks see identical
  // payload corruption, and every corruption is classified.
  auto run = [](net::NetworkStats* out) -> std::int64_t {
    net::Network n(cfg6_payload_crc());
    FaultInjector inj(n, /*seed=*/7);
    inj.set_data_ber(1e-4);
    for (NodeId i = 0; i < 24; ++i) {
      n.send_best_effort(i % 6, NodeSet::single((i + 3) % 6), 1,
                         Duration::milliseconds(50));
    }
    n.run_slots(300);
    *out = n.stats();
    return inj.data_bits_flipped();
  };
  net::NetworkStats a, b;
  const std::int64_t fa = run(&a);
  const std::int64_t fb = run(&b);
  EXPECT_EQ(fa, fb);
  EXPECT_GT(fa, 0);
  EXPECT_EQ(a.faults.payload_corruptions, b.faults.payload_corruptions);
  EXPECT_EQ(a.faults.payload_detected, b.faults.payload_detected);
  EXPECT_EQ(a.faults.payload_nacks, b.faults.payload_nacks);
  EXPECT_GT(a.faults.payload_corruptions, 0);
  // Accounting identity: every corrupted payload is classified.
  EXPECT_EQ(a.faults.payload_corruptions,
            a.faults.payload_detected + a.faults.payload_undetected);
}

}  // namespace
}  // namespace ccredf::fault
