// Satellite of the churn-resilience PR: the idempotence contract of
// fail/restore (src/fault/injector.hpp).  Overlapping churn schedules
// naturally produce double-fails, double-restores and
// restore-of-healthy; all must be no-ops, and same-timestamp event
// pairs must resolve in scheduling order (event-queue FIFO tie-break).
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ccredf::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(InjectorIdempotence, FailReturnsTrueOnceThenFalse) {
  net::Network n(cfg6());
  EXPECT_TRUE(n.fail_node(3));
  EXPECT_TRUE(n.failed_nodes().contains(3));
  EXPECT_FALSE(n.fail_node(3));  // double-fail: no-op
  EXPECT_TRUE(n.failed_nodes().contains(3));
}

TEST(InjectorIdempotence, RestoreOfHealthyIsNoOp) {
  net::Network n(cfg6());
  EXPECT_FALSE(n.restore_node(2));
  EXPECT_FALSE(n.failed_nodes().contains(2));
}

TEST(InjectorIdempotence, DoubleRestoreIsNoOp) {
  net::Network n(cfg6());
  ASSERT_TRUE(n.fail_node(4));
  EXPECT_TRUE(n.restore_node(4));
  EXPECT_FALSE(n.restore_node(4));
  EXPECT_FALSE(n.failed_nodes().contains(4));
}

TEST(InjectorIdempotence, FailRestoreFailCyclesCleanly) {
  net::Network n(cfg6());
  EXPECT_TRUE(n.fail_node(1));
  EXPECT_TRUE(n.restore_node(1));
  EXPECT_TRUE(n.fail_node(1));
  EXPECT_TRUE(n.failed_nodes().contains(1));
  EXPECT_TRUE(n.restore_node(1));
  EXPECT_FALSE(n.failed_nodes().contains(1));
}

TEST(InjectorIdempotence, RestoreOfHealthyDoesNotDropQueuedTraffic) {
  net::Network n(cfg6());
  n.send_best_effort(0, NodeSet::single(2), 1, Duration::milliseconds(50));
  EXPECT_FALSE(n.restore_node(0));  // must NOT clear node 0's queue
  n.run_slots(10);
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
}

TEST(InjectorIdempotence, DoubleFailDoesNotResetState) {
  net::Network n(cfg6());
  // fail twice through the scheduler, then restore: the second fail
  // must not re-run teardown (trace/queue clearing) or flip anything.
  net::Network::OpenResult open;
  core::ConnectionParams p;
  p.source = 5;
  p.dests = NodeSet::single(1);
  p.size_slots = 1;
  p.period_slots = 50;
  open = n.open_connection(p);
  ASSERT_TRUE(open.admitted);
  FaultInjector inj(n);
  const TimePoint t1 = TimePoint::origin() + Duration::microseconds(5);
  inj.schedule_node_failure(5, t1);
  inj.schedule_node_failure(5, t1 + Duration::microseconds(1));
  n.run_slots(40);
  EXPECT_TRUE(n.failed_nodes().contains(5));
  EXPECT_TRUE(n.restore_node(5));  // one restore undoes both fails
  EXPECT_FALSE(n.failed_nodes().contains(5));
}

TEST(InjectorIdempotence, SameTimestampLastScheduledActionWins) {
  // Events at equal timestamps fire in scheduling order (event-queue
  // sequence tie-break), so the LAST action scheduled for an instant
  // decides the node's state after it.
  const TimePoint t = TimePoint::origin() + Duration::microseconds(10);
  {
    net::Network n(cfg6());
    FaultInjector inj(n);
    inj.schedule_node_failure(3, t);
    inj.schedule_node_restore(3, t);  // fail fires first, restore last
    n.run_slots(20);
    EXPECT_FALSE(n.failed_nodes().contains(3));
  }
  {
    net::Network n(cfg6());
    ASSERT_TRUE(n.fail_node(3));
    FaultInjector inj(n);
    inj.schedule_node_restore(3, t);
    inj.schedule_node_failure(3, t);  // restore fires first, fail last
    n.run_slots(20);
    EXPECT_TRUE(n.failed_nodes().contains(3));
  }
}

}  // namespace
}  // namespace ccredf::fault
