// The sweep-level fast-forward contract: GridSpec::fast_forward selects
// the engine's execution strategy, never its results.  The aggregated
// JSON report must be byte-identical across {fast-forward, slot-by-slot}
// x {1, 4, 8 worker threads} -- all six runs of a grid collapse to one
// document.  scripts/check.sh enforces the same over the shipped grids
// through `ccredf_sweep --no-fast-forward`.
#include <gtest/gtest.h>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

GridSpec mixed_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kCcFpr, Protocol::kTdma};
  spec.node_counts = {4, 8};
  spec.utilisations = {0.3, 0.6, 0.9};
  spec.mixes = {WorkloadMix::kPeriodic, WorkloadMix::kMixed};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 250;
  spec.base_seed = 3;
  return spec;
}

GridSpec fault_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.3, 0.8};
  spec.bers = {0.0, 1e-3};
  spec.data_bers = {0.0, 2e-4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 300;
  spec.frame_crc = true;
  spec.payload_crc = true;
  spec.base_seed = 3;
  return spec;
}

void expect_engine_invariant(GridSpec spec) {
  spec.fast_forward = true;
  const std::string reference = to_json(run_sweep(spec, {.threads = 1}));
  for (const bool fast_forward : {true, false}) {
    for (const int threads : {1, 4, 8}) {
      if (fast_forward && threads == 1) continue;  // the reference run
      spec.fast_forward = fast_forward;
      EXPECT_EQ(reference, to_json(run_sweep(spec, {.threads = threads})))
          << "report diverged at fast_forward="
          << (fast_forward ? "on" : "off") << ", threads=" << threads;
    }
  }
}

TEST(SweepFastForward, ReportInvariantAcrossEngineAndThreads) {
  expect_engine_invariant(mixed_grid());
}

TEST(SweepFastForward, FaultGridReportInvariantAcrossEngineAndThreads) {
  expect_engine_invariant(fault_grid());
}

TEST(SweepFastForward, GridFileKeyParses) {
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid("fast_forward = off\n", spec, error)) << error;
  EXPECT_FALSE(spec.fast_forward);
  ASSERT_TRUE(parse_grid("fast_forward = on\n", spec, error)) << error;
  EXPECT_TRUE(spec.fast_forward);
  EXPECT_FALSE(parse_grid("fast_forward = maybe\n", spec, error));
  EXPECT_FALSE(parse_grid("fast_forward = on, off\n", spec, error))
      << "fast_forward is a scalar, not an axis";
}

TEST(SweepFastForward, DefaultSpecFastForwards) {
  // The default must match the engine default (NetworkConfig), so grids
  // written before this key existed silently gain the fast engine with
  // unchanged reports.
  GridSpec spec;
  EXPECT_TRUE(spec.fast_forward);
  EXPECT_TRUE(make_network_config(spec, GridPoint{}).fast_forward);
  spec.fast_forward = false;
  EXPECT_FALSE(make_network_config(spec, GridPoint{}).fast_forward);
}

}  // namespace
}  // namespace ccredf::sweep
