// The link_cuts sweep axis: grid parsing, paired-workload invariance,
// cut metric population (containment gate included), and the
// determinism contract -- byte-identical reports across thread counts
// and across the fast-forward / slot-by-slot engines, with the cut ->
// quarantine -> splice -> re-admit hand-off inside the horizon.
#include <gtest/gtest.h>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

GridSpec cut_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {8};
  spec.utilisations = {0.5};
  spec.mixes = {WorkloadMix::kPeriodic};
  // link_cuts = 0 is the paired baseline; 1 runs the full severed-
  // segment loop (cut at slot 500, spliced 400 slots later, 600 slots
  // of healed tail inside the 1500-slot horizon).
  spec.link_cuts = {0, 1};
  spec.cut_slot = 500;
  spec.cut_down_slots = 400;
  spec.set_seeds = {7};
  spec.repetitions = 2;
  spec.slots = 1500;
  spec.base_seed = 11;
  return spec;
}

TEST(LinkSweep, ParsesLinkCutAxisAndScalars) {
  GridSpec spec;
  std::string error;
  const std::string text = R"(
link_cuts = 0, 1, 2
cut_slot = 700
cut_down_slots = 250
)";
  ASSERT_TRUE(parse_grid(text, spec, error)) << error;
  ASSERT_EQ(spec.link_cuts.size(), 3u);
  EXPECT_EQ(spec.link_cuts[0], 0);
  EXPECT_EQ(spec.link_cuts[1], 1);
  EXPECT_EQ(spec.link_cuts[2], 2);
  EXPECT_EQ(spec.cut_slot, 700);
  EXPECT_EQ(spec.cut_down_slots, 250);
  EXPECT_FALSE(parse_grid("link_cuts = -1\n", spec, error));
  EXPECT_FALSE(parse_grid("cut_slot = -5\n", spec, error));
  EXPECT_FALSE(parse_grid("cut_down_slots = 0\n", spec, error));
}

TEST(LinkSweep, CutCountMustStayBelowTheSmallestRing) {
  GridSpec spec;
  spec.node_counts = {4};
  spec.link_cuts = {0, 4};  // 4 cuts would sever every link of a 4-ring
  EXPECT_FALSE(spec.validate().empty());
  spec.link_cuts = {0, 3};
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
}

TEST(LinkSweep, LinkCutAxisMultipliesPointCount) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4};
  EXPECT_EQ(spec.point_count(), 2u);  // default single link_cuts = 0 cell
  spec.link_cuts = {0, 1};
  EXPECT_EQ(spec.point_count(), 4u);
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].link_cuts, 0);
  EXPECT_EQ(points[1].link_cuts, 1);
}

TEST(LinkSweep, WorkloadKeyIgnoresLinkCuts) {
  // Paired comparison along the cut axis: the cut and cut-free cells of
  // a scenario must generate the identical connection set, so any
  // metric delta is attributable to the cut alone.
  GridPoint a;
  a.link_cuts = 0;
  GridPoint b = a;
  b.link_cuts = 1;
  EXPECT_EQ(workload_key(a), workload_key(b));
}

TEST(LinkSweep, CutMetricsPopulatedOnlyOnCutPoints) {
  const GridSpec spec = cut_grid();
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  ASSERT_EQ(res.points.size(), 2u);
  for (const PointResult& pr : res.points) {
    if (pr.point.link_cuts == 0) {
      EXPECT_EQ(pr.mean(Metric::kLinkCuts), 0.0);
      EXPECT_EQ(pr.mean(Metric::kSegmentQuarantines), 0.0);
      EXPECT_EQ(pr.mean(Metric::kCutDetectSlots), 0.0);
      EXPECT_EQ(pr.mean(Metric::kCutDisjointMisses), 0.0);
    } else {
      EXPECT_EQ(pr.mean(Metric::kLinkCuts), 1.0);
      EXPECT_GT(pr.mean(Metric::kSegmentQuarantines), 0.0);
      // In-protocol detection: the very next collection phase carries
      // the truncated-heard evidence, so latency is 1..2 slots per cut.
      EXPECT_GE(pr.mean(Metric::kCutDetectSlots), 1.0);
      EXPECT_LE(pr.mean(Metric::kCutDetectSlots), 2.0);
      // The headline containment gate, sweep-side: connections whose
      // segment avoids every cut link never miss.
      EXPECT_EQ(pr.mean(Metric::kCutDisjointMisses), 0.0);
    }
  }
}

TEST(LinkSweep, ShardRerunsBitIdentical) {
  const GridSpec spec = cut_grid();
  const auto points = spec.expand();
  const GridPoint& live = points.back();
  ASSERT_GT(live.link_cuts, 0);
  const ShardMetrics a = run_shard(spec, live, 1);
  const ShardMetrics b = run_shard(spec, live, 1);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    EXPECT_EQ(a.values[i], b.values[i])
        << "metric " << metric_name(static_cast<Metric>(i));
  }
}

TEST(LinkSweep, ReportInvariantAcrossEngineThreadsAndPlanner) {
  // The determinism contract through a severed-segment cycle:
  // byte-identical JSON across {fast-forward, slot-by-slot} x {1, 4, 8
  // threads}, and again with the hypercycle planner enabled (cut cells
  // carry an injector, so no plan builds -- the divergence fallback must
  // be byte-identical too).
  for (const bool planner : {false, true}) {
    GridSpec spec = cut_grid();
    spec.planners = {planner};
    spec.fast_forward = true;
    const std::string reference = to_json(run_sweep(spec, {.threads = 1}));
    for (const bool fast_forward : {true, false}) {
      for (const int threads : {1, 4, 8}) {
        if (fast_forward && threads == 1) continue;  // the reference run
        spec.fast_forward = fast_forward;
        EXPECT_EQ(reference, to_json(run_sweep(spec, {.threads = threads})))
            << "report diverged at planner=" << (planner ? "on" : "off")
            << ", fast_forward=" << (fast_forward ? "on" : "off")
            << ", threads=" << threads;
      }
    }
  }
}

TEST(LinkSweep, ReportCarriesCutColumnsAndSpecKeys) {
  const GridSpec spec = cut_grid();
  const SweepResult res = run_sweep(spec, {.threads = 2});
  const std::string json = to_json(res);
  EXPECT_NE(json.find("\"link_cuts\""), std::string::npos);
  EXPECT_NE(json.find("\"cut_slot\""), std::string::npos);
  EXPECT_NE(json.find("\"cut_down_slots\""), std::string::npos);
  EXPECT_NE(json.find("\"segment_quarantines\""), std::string::npos);
  EXPECT_NE(json.find("\"cut_detect_slots\""), std::string::npos);
  EXPECT_NE(json.find("\"cut_disjoint_misses\""), std::string::npos);
}

}  // namespace
}  // namespace ccredf::sweep
