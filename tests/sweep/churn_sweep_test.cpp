// The churn sweep axis: grid parsing, point expansion, paired-workload
// invariance, churn metric population, and the determinism contract
// (thread count and engine strategy never change a byte of the report)
// extended to grids that run the full resilience loop.
#include <gtest/gtest.h>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

GridSpec churn_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {8};
  spec.utilisations = {0.5};
  spec.mixes = {WorkloadMix::kPeriodic};
  // churn = 0 is the paired baseline; 400 is a live cell whose dwells
  // cycle several detect/quarantine/re-admit loops inside the horizon.
  spec.churns = {0.0, 400.0};
  spec.churn_nodes = 2;
  spec.churn_down_slots = 120.0;
  spec.churn_detect_slots = 12;
  spec.set_seeds = {7};
  spec.repetitions = 2;
  spec.slots = 1500;
  spec.base_seed = 11;
  return spec;
}

TEST(ChurnSweep, ParsesChurnAxisAndScalars) {
  GridSpec spec;
  std::string error;
  const std::string text = R"(
churns = 0, 25000, 50000
churn_nodes = 3
churn_down_slots = 800
churn_detect_slots = 24
)";
  ASSERT_TRUE(parse_grid(text, spec, error)) << error;
  ASSERT_EQ(spec.churns.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.churns[0], 0.0);
  EXPECT_DOUBLE_EQ(spec.churns[1], 25000.0);
  EXPECT_DOUBLE_EQ(spec.churns[2], 50000.0);
  EXPECT_EQ(spec.churn_nodes, 3);
  EXPECT_DOUBLE_EQ(spec.churn_down_slots, 800.0);
  EXPECT_EQ(spec.churn_detect_slots, 24);
  EXPECT_FALSE(parse_grid("churns = -5\n", spec, error));
  EXPECT_FALSE(parse_grid("churn_nodes = 0\n", spec, error));
  EXPECT_FALSE(parse_grid("churn_down_slots = 0\n", spec, error));
  EXPECT_FALSE(parse_grid("churn_detect_slots = 1\n", spec, error));
}

TEST(ChurnSweep, ChurnAxisMultipliesPointCount) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4};
  EXPECT_EQ(spec.point_count(), 2u);  // default single churn = 0 cell
  spec.churns = {0.0, 20000.0};
  EXPECT_EQ(spec.point_count(), 4u);
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].churn, 0.0);
  EXPECT_DOUBLE_EQ(points[1].churn, 20000.0);
}

TEST(ChurnSweep, WorkloadKeyIgnoresChurn) {
  // Paired comparison along the churn axis: the churned and unchurned
  // cells of a scenario must generate the identical connection set, so
  // any metric delta is attributable to churn alone.
  GridPoint a;
  a.churn = 0.0;
  GridPoint b = a;
  b.churn = 25000.0;
  EXPECT_EQ(workload_key(a), workload_key(b));
}

TEST(ChurnSweep, ChurnMetricsPopulatedOnlyOnChurnPoints) {
  const GridSpec spec = churn_grid();
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  ASSERT_EQ(res.points.size(), 2u);
  for (const PointResult& pr : res.points) {
    if (pr.point.churn == 0.0) {
      EXPECT_EQ(pr.mean(Metric::kChurnDowns), 0.0);
      EXPECT_EQ(pr.mean(Metric::kChurnReclaimedU), 0.0);
      EXPECT_EQ(pr.mean(Metric::kChurnDisjointMisses), 0.0);
    } else {
      // Mean up-dwell 400 / down-dwell 120 over 1500 slots: several full
      // loops per repetition.
      EXPECT_GT(pr.mean(Metric::kChurnDowns), 0.0);
      EXPECT_GT(pr.mean(Metric::kChurnReclaimedU), 0.0);
      EXPECT_GT(pr.mean(Metric::kChurnDetectLatency), 0.0);
      EXPECT_LE(pr.mean(Metric::kChurnDetectLatency),
                static_cast<double>(spec.churn_detect_slots + 1));
      EXPECT_GE(pr.mean(Metric::kChurnReadmitFraction), 0.0);
      EXPECT_LE(pr.mean(Metric::kChurnReadmitFraction), 1.0);
      // The headline containment gate, sweep-side: connections disjoint
      // from every churned node never miss.
      EXPECT_EQ(pr.mean(Metric::kChurnDisjointMisses), 0.0);
    }
    // Recovery-gap quantiles are exact nearest-rank samples: p50 <= p99
    // always, on churned and unchurned points alike.
    EXPECT_LE(pr.mean(Metric::kRecoveryGapP50Us),
              pr.mean(Metric::kRecoveryGapP99Us));
  }
}

TEST(ChurnSweep, ShardRerunsBitIdentical) {
  const GridSpec spec = churn_grid();
  const auto points = spec.expand();
  const GridPoint& live = points.back();
  ASSERT_GT(live.churn, 0.0);
  const ShardMetrics a = run_shard(spec, live, 1);
  const ShardMetrics b = run_shard(spec, live, 1);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    EXPECT_EQ(a.values[i], b.values[i])
        << "metric " << metric_name(static_cast<Metric>(i));
  }
}

TEST(ChurnSweep, ReportInvariantAcrossEngineAndThreads) {
  // The determinism contract under the full resilience loop:
  // byte-identical JSON across {fast-forward, slot-by-slot} x {1, 4, 8
  // threads}.  The monitor is a ResilienceHook whose next_deadline_slot
  // bounds every skip, so the idle fast-forward stays enabled AND exact
  // through detection windows, quarantines and re-admission drains.
  GridSpec spec = churn_grid();
  spec.fast_forward = true;
  const std::string reference = to_json(run_sweep(spec, {.threads = 1}));
  for (const bool fast_forward : {true, false}) {
    for (const int threads : {1, 4, 8}) {
      if (fast_forward && threads == 1) continue;  // the reference run
      spec.fast_forward = fast_forward;
      EXPECT_EQ(reference, to_json(run_sweep(spec, {.threads = threads})))
          << "report diverged at fast_forward="
          << (fast_forward ? "on" : "off") << ", threads=" << threads;
    }
  }
}

TEST(ChurnSweep, ReportCarriesChurnColumnsAndSpecKeys) {
  const GridSpec spec = churn_grid();
  const SweepResult res = run_sweep(spec, {.threads = 2});
  const std::string json = to_json(res);
  EXPECT_NE(json.find("\"churns\""), std::string::npos);
  EXPECT_NE(json.find("\"churn_nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"churn_down_slots\""), std::string::npos);
  EXPECT_NE(json.find("\"churn_detect_slots\""), std::string::npos);
  EXPECT_NE(json.find("\"churn\""), std::string::npos);
  EXPECT_NE(json.find("\"churn_disjoint_misses\""), std::string::npos);
  const std::string table =
      to_table(res, {Metric::kChurnDowns}, "churn").str();
  EXPECT_NE(table.find("churn"), std::string::npos);
}

}  // namespace
}  // namespace ccredf::sweep
