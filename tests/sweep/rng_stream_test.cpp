// Per-shard RNG stream derivation: streams keyed on different grid
// coordinates must not collide, and the workload key must pair protocol
// variants of the same scenario onto identical streams.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "sim/rng.hpp"
#include "sweep/grid.hpp"

namespace ccredf::sweep {
namespace {

TEST(RngStreamTest, StreamSeedsDistinctAcrossSubstreamGrid) {
  std::unordered_set<std::uint64_t> seeds;
  constexpr std::uint64_t kBase = 42;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      ASSERT_TRUE(seeds.insert(sim::Rng::stream_seed(kBase, a, b)).second)
          << "collision at (" << a << ", " << b << ")";
    }
  }
}

TEST(RngStreamTest, StreamSeedOrderSensitive) {
  // (a, b) and (b, a) are different substreams.
  EXPECT_NE(sim::Rng::stream_seed(1, 2, 3), sim::Rng::stream_seed(1, 3, 2));
  // Different bases give different streams for the same coordinates.
  EXPECT_NE(sim::Rng::stream_seed(1, 2, 3), sim::Rng::stream_seed(2, 2, 3));
}

TEST(RngStreamTest, DerivedGeneratorsDecorrelated) {
  // First outputs of neighbouring streams must all differ (a weak but
  // cheap independence proxy; xoshiro's own quality covers the rest).
  std::unordered_set<std::uint64_t> first;
  for (std::uint64_t a = 0; a < 1024; ++a) {
    sim::Rng rng = sim::Rng::stream(7, a, 0);
    ASSERT_TRUE(first.insert(rng.next_u64()).second)
        << "first output collision for substream " << a;
  }
}

TEST(RngStreamTest, ShardSeedsDistinctAcrossPointsAndRepetitions) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4, 8, 16, 32};
  spec.utilisations = {0.3, 0.5, 0.7, 0.85};
  spec.mixes = {WorkloadMix::kPeriodic, WorkloadMix::kMixed};
  spec.set_seeds = {1, 2, 3};
  spec.repetitions = 5;
  std::set<std::uint64_t> seeds;
  for (const GridPoint& p : spec.expand()) {
    for (int r = 0; r < spec.repetitions; ++r) {
      ASSERT_TRUE(seeds.insert(shard_seed(spec, p, r)).second)
          << "shard-seed collision at point " << p.index << " rep " << r;
    }
  }
  EXPECT_EQ(seeds.size(), spec.shard_count());
}

TEST(RngStreamTest, WorkloadKeyIgnoresProtocolOnly) {
  GridPoint a;
  a.protocol = Protocol::kCcrEdf;
  GridPoint b = a;
  b.protocol = Protocol::kTdma;
  // Identical scenario on a different protocol: the same workload.
  EXPECT_EQ(workload_key(a), workload_key(b));

  GridPoint c = a;
  c.nodes = a.nodes + 1;
  EXPECT_NE(workload_key(a), workload_key(c));
  GridPoint d = a;
  d.utilisation += 0.1;
  EXPECT_NE(workload_key(a), workload_key(d));
  GridPoint e = a;
  e.mix = WorkloadMix::kMixed;
  EXPECT_NE(workload_key(a), workload_key(e));
  GridPoint f = a;
  f.set_seed += 1;
  EXPECT_NE(workload_key(a), workload_key(f));
}

}  // namespace
}  // namespace ccredf::sweep
