// Sweep-level hypercycle-planner contract (E23 methodology):
//
//  * the `planners` axis is EXCLUDED from workload_key -- planner-on and
//    planner-off cells offer bit-identical traffic, so the sweep is a
//    paired comparison of engines, never of workloads;
//  * wherever the plan is NOT in effect (fault and churn cells attach
//    hooks before any connection opens, so no plan ever builds) the
//    planner-on report is byte-identical to planner-off, planner
//    counters included;
//  * where the plan IS in effect (fault-free fully-periodic cells) the
//    planner counters light up, admission is unchanged at sub-U_max
//    load, and the planned schedule keeps zero deadline misses -- it may
//    pack grants differently (that is the point), so only the guarantees
//    are gated, not the byte-level schedule;
//  * the whole report stays byte-identical across engine strategy
//    (fast-forward vs slot-by-slot) and worker-thread count.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

bool is_planner_metric(Metric m) {
  return m == Metric::kPlannedSlotFraction || m == Metric::kPlanBuilds ||
         m == Metric::kPlanDivergences;
}

// Hexfloat serialization of a point's aggregated metrics: equality of
// these strings is bitwise equality of the statistics.
std::string stats_fingerprint(const PointResult& pr,
                              bool include_planner_metrics) {
  std::ostringstream os;
  os << std::hexfloat;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const auto m = static_cast<Metric>(i);
    if (!include_planner_metrics && is_planner_metric(m)) continue;
    const sim::OnlineStats& st = pr.stat(m);
    os << metric_name(m) << ':' << st.count() << ',' << st.mean() << ','
       << st.stddev() << ',' << st.min() << ',' << st.max() << ';';
  }
  return os.str();
}

// Identity of a point with the planner axis erased -- planner-on and
// planner-off cells sharing this key are the paired comparison.
std::string pair_key(const GridPoint& p) {
  std::ostringstream os;
  os << std::hexfloat << protocol_name(p.protocol) << '/' << p.nodes << '/'
     << p.utilisation << '/' << p.ber << '/' << p.data_ber << '/' << p.churn
     << '/' << mix_name(p.mix) << '/' << service_name(p.service) << '/'
     << p.set_seed;
  return os.str();
}

// Fault-free, fully periodic, one shared period: every planner-on cell
// lays out an H = 32 hypercycle and runs it.
GridSpec planned_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4, 8};
  spec.utilisations = {0.35};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.planners = {false, true};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 600;
  spec.min_period_slots = 32;
  spec.max_period_slots = 32;
  spec.base_seed = 3;
  return spec;
}

// Fault and churn axes: hooks attach before the first open, so the
// planner never engages and must be a byte-level no-op.
GridSpec faulted_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.4};
  spec.bers = {1e-3};
  spec.data_bers = {0.0, 2e-4};
  spec.churns = {0.0, 20000.0};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.planners = {false, true};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 400;
  spec.frame_crc = true;
  spec.payload_crc = true;
  spec.base_seed = 3;
  return spec;
}

TEST(SweepPlanner, PlannerAxisExcludedFromWorkloadKey) {
  const GridSpec spec = planned_grid();
  std::map<std::string, std::vector<std::uint64_t>> keys;
  for (const GridPoint& p : spec.expand()) {
    keys[pair_key(p)].push_back(workload_key(p));
  }
  for (const auto& [key, ks] : keys) {
    ASSERT_EQ(ks.size(), 2u) << key;
    EXPECT_EQ(ks[0], ks[1]) << "workload moved with the planner axis: "
                            << key;
  }
}

TEST(SweepPlanner, EngagedCellsKeepGuaranteesAndLightCounters) {
  const SweepResult result = run_sweep(planned_grid(), {.threads = 1});
  ASSERT_EQ(result.failed_shards, 0);
  std::map<std::string, const PointResult*> off, on;
  for (const PointResult& pr : result.points) {
    (pr.point.planner ? on : off)[pair_key(pr.point)] = &pr;
  }
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  for (const auto& [key, pr_off] : off) {
    const auto it = on.find(key);
    ASSERT_NE(it, on.end()) << key;
    const PointResult* pr_on = it->second;
    // Sub-U_max load: admission is decided by Eq. 5/6 either way.
    EXPECT_EQ(pr_off->mean(Metric::kAdmittedFraction),
              pr_on->mean(Metric::kAdmittedFraction))
        << key;
    // The planned schedule is a feasibility PROOF: zero misses, and the
    // CCR-EDF inversion-freedom guarantee survives the plan.
    EXPECT_EQ(pr_on->mean(Metric::kSchedMissRatio), 0.0) << key;
    EXPECT_EQ(pr_on->mean(Metric::kUserMisses), 0.0) << key;
    EXPECT_EQ(pr_on->mean(Metric::kInversions), 0.0) << key;
    // Same offered traffic, same horizon: throughput within the edge
    // effect of differently-packed in-flight messages at the cutoff.
    EXPECT_NEAR(pr_on->mean(Metric::kRtDelivered),
                pr_off->mean(Metric::kRtDelivered),
                0.01 * pr_off->mean(Metric::kRtDelivered))
        << key;
    // The plan actually ran on every repetition, and never diverged.
    EXPECT_GT(pr_on->mean(Metric::kPlanBuilds), 0.0) << key;
    EXPECT_GT(pr_on->stat(Metric::kPlannedSlotFraction).min(), 0.0) << key;
    EXPECT_EQ(pr_on->mean(Metric::kPlanDivergences), 0.0) << key;
    EXPECT_EQ(pr_off->mean(Metric::kPlanBuilds), 0.0) << key;
    EXPECT_EQ(pr_off->mean(Metric::kPlannedSlotFraction), 0.0) << key;
  }
}

TEST(SweepPlanner, FaultAndChurnCellsAreByteIdenticalPlannerOnOff) {
  const SweepResult result = run_sweep(faulted_grid(), {.threads = 1});
  ASSERT_EQ(result.failed_shards, 0);
  std::map<std::string, const PointResult*> off, on;
  for (const PointResult& pr : result.points) {
    (pr.point.planner ? on : off)[pair_key(pr.point)] = &pr;
  }
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  for (const auto& [key, pr_off] : off) {
    const auto it = on.find(key);
    ASSERT_NE(it, on.end()) << key;
    const PointResult* pr_on = it->second;
    // Hooks attach before any open, so no plan ever builds: planner-on
    // must be a byte-level no-op, planner counters included.
    EXPECT_EQ(stats_fingerprint(*pr_off, true),
              stats_fingerprint(*pr_on, true))
        << "planner-on diverged on a fault/churn cell: " << key;
    EXPECT_EQ(pr_on->mean(Metric::kPlanBuilds), 0.0) << key;
    EXPECT_EQ(pr_on->mean(Metric::kPlannedSlotFraction), 0.0) << key;
  }
}

TEST(SweepPlanner, ReportInvariantAcrossEngineAndThreads) {
  GridSpec spec = planned_grid();
  spec.fast_forward = true;
  const std::string reference = to_json(run_sweep(spec, {.threads = 1}));
  for (const bool fast_forward : {true, false}) {
    for (const int threads : {1, 8}) {
      if (fast_forward && threads == 1) continue;  // the reference run
      spec.fast_forward = fast_forward;
      EXPECT_EQ(reference, to_json(run_sweep(spec, {.threads = threads})))
          << "report diverged at fast_forward="
          << (fast_forward ? "on" : "off") << ", threads=" << threads;
    }
  }
}

TEST(SweepPlanner, GridFilePlannersKeyParses) {
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid("planners = off, on\n", spec, error)) << error;
  EXPECT_EQ(spec.planners, (std::vector<bool>{false, true}));
  EXPECT_FALSE(parse_grid("planners = maybe\n", spec, error));
  // Default single `off` keeps legacy grids' numbering untouched.
  EXPECT_EQ(GridSpec{}.planners, (std::vector<bool>{false}));
  EXPECT_FALSE(make_network_config(GridSpec{}, GridPoint{}).planner);
  GridPoint p;
  p.planner = true;
  EXPECT_TRUE(make_network_config(GridSpec{}, p).planner);
}

}  // namespace
}  // namespace ccredf::sweep
