// Regression: OnlineStats::merge() must equal serial accumulation -- the
// sweep runner's aggregation correctness rests on it.  (The runner folds
// in a fixed order so it is also byte-deterministic; here we only need
// mathematical agreement to tight tolerance.)
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace ccredf::sim {
namespace {

TEST(StatsMergeTest, MergeOfShardsMatchesSerialAccumulation) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int shards = static_cast<int>(rng.uniform_int(1, 16));
    OnlineStats serial;
    std::vector<OnlineStats> parts(static_cast<std::size_t>(shards));
    for (auto& part : parts) {
      const int n = static_cast<int>(rng.uniform_int(0, 200));
      for (int i = 0; i < n; ++i) {
        // Mixed magnitudes stress the numerics.
        const double x = rng.normal(0.0, 1.0) * std::pow(10.0, trial % 7);
        serial.add(x);
        part.add(x);
      }
    }
    OnlineStats merged;
    for (const auto& part : parts) merged.merge(part);

    ASSERT_EQ(merged.count(), serial.count());
    if (serial.count() == 0) continue;
    EXPECT_NEAR(merged.mean(), serial.mean(),
                1e-9 * (1.0 + std::fabs(serial.mean())));
    EXPECT_NEAR(merged.variance(), serial.variance(),
                1e-7 * (1.0 + serial.variance()));
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
    EXPECT_NEAR(merged.sum(), serial.sum(),
                1e-9 * (1.0 + std::fabs(serial.sum())));
  }
}

TEST(StatsMergeTest, MergeIntoEmptyCopiesExactly) {
  OnlineStats a;
  OnlineStats b;
  b.add(1.5);
  b.add(-2.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
  EXPECT_DOUBLE_EQ(a.min(), -2.5);
  EXPECT_DOUBLE_EQ(a.max(), 1.5);
}

TEST(StatsMergeTest, MergeOfEmptyIsNoop) {
  OnlineStats a;
  a.add(3.0);
  const double mean = a.mean();
  a.merge(OnlineStats{});
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
}

}  // namespace
}  // namespace ccredf::sim
