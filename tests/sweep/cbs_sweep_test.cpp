// The service-class sweep axis: grid parsing, point expansion, metric
// population on CBS points, and the determinism contract (thread count
// and engine strategy never change the report) extended to grids that
// carry a CBS population.
#include <gtest/gtest.h>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

GridSpec service_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.services = {ServiceMix::kRtOnly, ServiceMix::kCbs,
                   ServiceMix::kCbsSaturated};
  spec.cbs_flows = 6;
  spec.cbs_budget_slots = 2;
  spec.cbs_period_slots = 80;
  spec.queue_cap = 256;
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 300;
  spec.base_seed = 3;
  return spec;
}

TEST(CbsSweep, ParsesServiceAxisAndCbsScalars) {
  GridSpec spec;
  std::string error;
  const std::string text = R"(
services = rt-only, cbs, cbs-saturated
cbs_flows = 6
cbs_budget_slots = 3
cbs_period_slots = 90
cbs_rate = 0.05
cbs_saturation_rate = 0.4
queue_cap = 128
)";
  ASSERT_TRUE(parse_grid(text, spec, error)) << error;
  ASSERT_EQ(spec.services.size(), 3u);
  EXPECT_EQ(spec.services[0], ServiceMix::kRtOnly);
  EXPECT_EQ(spec.services[1], ServiceMix::kCbs);
  EXPECT_EQ(spec.services[2], ServiceMix::kCbsSaturated);
  EXPECT_EQ(spec.cbs_flows, 6);
  EXPECT_EQ(spec.cbs_budget_slots, 3);
  EXPECT_EQ(spec.cbs_period_slots, 90);
  EXPECT_DOUBLE_EQ(spec.cbs_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.cbs_saturation_rate, 0.4);
  EXPECT_EQ(spec.queue_cap, 128);
  EXPECT_FALSE(parse_grid("services = premium\n", spec, error));
  EXPECT_FALSE(parse_grid("queue_cap = -1\n", spec, error));
  EXPECT_FALSE(parse_grid("cbs_flows = 0\n", spec, error));
}

TEST(CbsSweep, ServiceAxisMultipliesPointCount) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4};
  EXPECT_EQ(spec.point_count(), 2u);  // default single rt-only mix
  spec.services = {ServiceMix::kRtOnly, ServiceMix::kCbsSaturated};
  EXPECT_EQ(spec.point_count(), 4u);
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].service, ServiceMix::kRtOnly);
  EXPECT_EQ(points[1].service, ServiceMix::kCbsSaturated);
}

TEST(CbsSweep, WorkloadKeyIgnoresServiceMix) {
  // Paired comparison along the service axis: rt-only and cbs points of
  // the same scenario must run the identical RT connection set.
  GridPoint a;
  a.service = ServiceMix::kRtOnly;
  GridPoint b = a;
  b.service = ServiceMix::kCbsSaturated;
  EXPECT_EQ(workload_key(a), workload_key(b));
}

TEST(CbsSweep, QueueCapReachesTheNetworkConfig) {
  GridSpec spec;
  GridPoint point;
  point.protocol = Protocol::kCcrEdf;
  point.nodes = 6;
  // Default 0 preserves the library default (unbounded) -- every grid
  // written before the key existed keeps its byte-identical report.
  EXPECT_EQ(make_network_config(spec, point).max_queue_messages,
            net::NetworkConfig{}.max_queue_messages);
  spec.queue_cap = 256;
  EXPECT_EQ(make_network_config(spec, point).max_queue_messages, 256u);
}

TEST(CbsSweep, CbsMetricsPopulatedOnlyOnCbsPoints) {
  const GridSpec spec = service_grid();
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  ASSERT_EQ(res.points.size(), 3u);
  for (const PointResult& pr : res.points) {
    if (pr.point.service == ServiceMix::kRtOnly) {
      EXPECT_EQ(pr.mean(Metric::kCbsAdmittedFraction), 0.0);
      EXPECT_EQ(pr.mean(Metric::kCbsDelivered), 0.0);
      EXPECT_EQ(pr.mean(Metric::kCbsPostponements), 0.0);
      EXPECT_EQ(pr.mean(Metric::kCbsJain), 0.0);
    } else {
      EXPECT_GT(pr.mean(Metric::kCbsAdmittedFraction), 0.0);
      EXPECT_GT(pr.mean(Metric::kCbsDelivered), 0.0);
      EXPECT_GT(pr.mean(Metric::kCbsJain), 0.0);
      EXPECT_LE(pr.mean(Metric::kCbsJain), 1.0);
    }
    if (pr.point.service == ServiceMix::kCbsSaturated) {
      EXPECT_GT(pr.mean(Metric::kCbsPostponements), 0.0);
    }
  }
}

TEST(CbsSweep, ShardRerunsBitIdentical) {
  const GridSpec spec = service_grid();
  const auto points = spec.expand();
  // The saturated point is the stress case: backlogged servers, drops at
  // the queue cap, postponement rescheduling -- rerun it bit-exactly.
  const GridPoint& saturated = points.back();
  ASSERT_EQ(saturated.service, ServiceMix::kCbsSaturated);
  const ShardMetrics a = run_shard(spec, saturated, 0);
  const ShardMetrics b = run_shard(spec, saturated, 0);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    EXPECT_EQ(a.values[i], b.values[i])
        << "metric " << metric_name(static_cast<Metric>(i));
  }
}

TEST(CbsSweep, ReportInvariantAcrossEngineAndThreads) {
  // The grid-level determinism contract survives the CBS population:
  // byte-identical JSON across {fast-forward, slot-by-slot} x {1, 4, 8
  // threads}.  A CBS replenishment is an event-queue bound, so the
  // fast-forward engine stays exact (DESIGN.md).
  GridSpec spec = service_grid();
  spec.fast_forward = true;
  const std::string reference = to_json(run_sweep(spec, {.threads = 1}));
  for (const bool fast_forward : {true, false}) {
    for (const int threads : {1, 4, 8}) {
      if (fast_forward && threads == 1) continue;  // the reference run
      spec.fast_forward = fast_forward;
      EXPECT_EQ(reference, to_json(run_sweep(spec, {.threads = threads})))
          << "report diverged at fast_forward="
          << (fast_forward ? "on" : "off") << ", threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ccredf::sweep
