// The sweep runner's load-bearing property: the aggregated report is a
// pure function of the grid -- byte-identical for any worker-thread
// count, and stable across repeated runs in one process.
#include <gtest/gtest.h>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {
namespace {

GridSpec small_grid() {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kCcFpr, Protocol::kTdma};
  spec.node_counts = {4, 8};
  spec.utilisations = {0.4, 0.8};
  spec.mixes = {WorkloadMix::kPeriodic, WorkloadMix::kMixed};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 200;
  spec.base_seed = 3;
  return spec;
}

TEST(SweepDeterminismTest, JsonIdenticalAcrossThreadCounts) {
  const GridSpec spec = small_grid();
  const std::string json_1 = to_json(run_sweep(spec, {.threads = 1}));
  for (const int threads : {4, 8}) {
    const std::string json_n =
        to_json(run_sweep(spec, {.threads = threads}));
    EXPECT_EQ(json_1, json_n) << "non-deterministic at " << threads
                              << " threads";
  }
}

TEST(SweepDeterminismTest, RepeatedRunsIdentical) {
  const GridSpec spec = small_grid();
  EXPECT_EQ(to_json(run_sweep(spec, {.threads = 2})),
            to_json(run_sweep(spec, {.threads = 2})));
}

TEST(SweepDeterminismTest, ShardRerunsBitIdentical) {
  const GridSpec spec = small_grid();
  const auto points = spec.expand();
  const ShardMetrics a = run_shard(spec, points[1], 0);
  const ShardMetrics b = run_shard(spec, points[1], 0);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    EXPECT_EQ(a.values[i], b.values[i])
        << "metric " << metric_name(static_cast<Metric>(i));
  }
}

TEST(SweepDeterminismTest, RepetitionsAreDistinctRuns) {
  // Distinct RNG streams per repetition: at least one metric must differ
  // between rep 0 and rep 1 of the same stochastic point.
  const GridSpec spec = small_grid();
  const auto points = spec.expand();
  const ShardMetrics r0 = run_shard(spec, points[0], 0);
  const ShardMetrics r1 = run_shard(spec, points[0], 1);
  ASSERT_TRUE(r0.ok);
  ASSERT_TRUE(r1.ok);
  bool any_diff = false;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    any_diff = any_diff || r0.values[i] != r1.values[i];
  }
  EXPECT_TRUE(any_diff) << "repetitions ran identical workloads";
}

TEST(SweepDeterminismTest, ProtocolsSeeIdenticalConnectionSets) {
  // Paired comparison: CCR-EDF and TDMA points of the same scenario must
  // admit against the same offered set -- equal admitted fractions (the
  // admission test is protocol-independent).
  GridSpec spec = small_grid();
  spec.mixes = {WorkloadMix::kPeriodic};
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  const std::size_t per_proto = res.points.size() / spec.protocols.size();
  for (std::size_t i = 0; i < per_proto; ++i) {
    const PointResult& edf = res.points[i];
    const PointResult& tdma = res.points[2 * per_proto + i];
    EXPECT_EQ(edf.mean(Metric::kAdmittedFraction),
              tdma.mean(Metric::kAdmittedFraction))
        << "point " << i << " admitted different sets across protocols";
  }
}

TEST(SweepDeterminismTest, FaultAxisJsonIdenticalAcrossThreadCounts) {
  // The BER fault axis attaches a keyed-stream injector per shard; the
  // report must stay a pure function of the grid regardless of worker
  // count (scripts/check.sh enforces the same over the shipped grid).
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kCcFpr};
  spec.node_counts = {6};
  spec.utilisations = {0.5};
  spec.bers = {0.0, 1e-3};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 150;
  spec.frame_crc = true;
  spec.base_seed = 3;
  const std::string json_1 = to_json(run_sweep(spec, {.threads = 1}));
  for (const int threads : {4, 8}) {
    EXPECT_EQ(json_1, to_json(run_sweep(spec, {.threads = threads})))
        << "fault sweep non-deterministic at " << threads << " threads";
  }
  // The ber > 0 points must actually have exercised the fault paths.
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  bool any_faults = false;
  for (const PointResult& pr : res.points) {
    if (pr.point.ber == 0.0) {
      EXPECT_EQ(pr.mean(Metric::kFaultsDetected), 0.0);
      EXPECT_EQ(pr.mean(Metric::kRecoveries), 0.0);
    } else if (pr.mean(Metric::kFaultsDetected) > 0.0) {
      any_faults = true;
    }
  }
  EXPECT_TRUE(any_faults) << "BER axis injected nothing";
}

TEST(SweepDeterminismTest, BerAxisDoesNotPerturbTheWorkload) {
  // Same point at ber 0 and ber > 0: fault draws come from a separate
  // stream family, so workload-shaped metrics (admitted fraction, u_max)
  // must agree exactly between the paired points.
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.5};
  spec.bers = {0.0, 1e-3};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {5};
  spec.repetitions = 1;
  spec.slots = 150;
  spec.frame_crc = true;
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u);
  const ShardMetrics clean = run_shard(spec, points[0], 0);
  const ShardMetrics faulty = run_shard(spec, points[1], 0);
  ASSERT_TRUE(clean.ok);
  ASSERT_TRUE(faulty.ok);
  EXPECT_EQ(clean.values[static_cast<std::size_t>(
                Metric::kAdmittedFraction)],
            faulty.values[static_cast<std::size_t>(
                Metric::kAdmittedFraction)]);
  EXPECT_EQ(clean.values[static_cast<std::size_t>(Metric::kUMax)],
            faulty.values[static_cast<std::size_t>(Metric::kUMax)]);
}

TEST(SweepDeterminismTest, DataBerAxisJsonIdenticalAcrossThreadCounts) {
  // The data-channel fault axis must honour the same contract as the
  // control axis: a pure function of the grid at any worker count, with
  // the payload counters actually exercised at data_ber > 0.
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.5};
  spec.data_bers = {0.0, 2e-4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {5};
  spec.repetitions = 2;
  spec.slots = 150;
  spec.payload_crc = true;
  spec.base_seed = 3;
  const std::string json_1 = to_json(run_sweep(spec, {.threads = 1}));
  for (const int threads : {4, 8}) {
    EXPECT_EQ(json_1, to_json(run_sweep(spec, {.threads = threads})))
        << "data-fault sweep non-deterministic at " << threads
        << " threads";
  }
  const SweepResult res = run_sweep(spec, {.threads = 2});
  ASSERT_EQ(res.failed_shards, 0);
  bool any_payload_faults = false;
  for (const PointResult& pr : res.points) {
    if (pr.point.data_ber == 0.0) {
      EXPECT_EQ(pr.mean(Metric::kPayloadCorruptions), 0.0);
      EXPECT_EQ(pr.mean(Metric::kPayloadNacks), 0.0);
    } else if (pr.mean(Metric::kPayloadCorruptions) > 0.0) {
      // With the CRC on, corrupted payloads are detected and NACKed.
      EXPECT_GT(pr.mean(Metric::kPayloadDetected), 0.0);
      any_payload_faults = true;
    }
  }
  EXPECT_TRUE(any_payload_faults) << "data-BER axis injected nothing";
}

TEST(SweepDeterminismTest, DataBerAxisDoesNotPerturbTheWorkload) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {6};
  spec.utilisations = {0.5};
  spec.data_bers = {0.0, 2e-4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {5};
  spec.repetitions = 1;
  spec.slots = 150;
  spec.payload_crc = true;
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u);
  const ShardMetrics clean = run_shard(spec, points[0], 0);
  const ShardMetrics faulty = run_shard(spec, points[1], 0);
  ASSERT_TRUE(clean.ok);
  ASSERT_TRUE(faulty.ok);
  EXPECT_EQ(clean.values[static_cast<std::size_t>(
                Metric::kAdmittedFraction)],
            faulty.values[static_cast<std::size_t>(
                Metric::kAdmittedFraction)]);
  EXPECT_EQ(clean.values[static_cast<std::size_t>(Metric::kUMax)],
            faulty.values[static_cast<std::size_t>(Metric::kUMax)]);
}

TEST(SweepDeterminismTest, AllShardsSucceedAndAggregate) {
  const GridSpec spec = small_grid();
  const SweepResult res = run_sweep(spec, {.threads = 8});
  EXPECT_EQ(res.failed_shards, 0);
  ASSERT_EQ(res.points.size(), spec.point_count());
  EXPECT_EQ(res.shards, static_cast<std::int64_t>(spec.shard_count()));
  for (const PointResult& pr : res.points) {
    EXPECT_EQ(pr.stat(Metric::kRtDelivered).count(), spec.repetitions);
    EXPECT_GT(pr.mean(Metric::kUMax), 0.0);
  }
}

}  // namespace
}  // namespace ccredf::sweep
