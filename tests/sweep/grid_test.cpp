// GridSpec expansion, validation and grid-file parsing.
#include <gtest/gtest.h>

#include "sweep/grid.hpp"

namespace ccredf::sweep {
namespace {

TEST(GridTest, ExpansionIsFullCrossProductInCanonicalOrder) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4, 8};
  spec.utilisations = {0.3, 0.7};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {1, 2, 3};
  spec.repetitions = 4;

  const auto points = spec.expand();
  ASSERT_EQ(points.size(), spec.point_count());
  EXPECT_EQ(points.size(), 2u * 2u * 2u * 1u * 3u);
  EXPECT_EQ(spec.shard_count(), points.size() * 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // Protocol is the outermost axis, seed the innermost.
  EXPECT_EQ(points[0].protocol, Protocol::kCcrEdf);
  EXPECT_EQ(points[0].set_seed, 1u);
  EXPECT_EQ(points[1].set_seed, 2u);
  EXPECT_EQ(points.back().protocol, Protocol::kTdma);
  EXPECT_EQ(points.back().nodes, 8u);
}

TEST(GridTest, ValidateCatchesBadAxes) {
  GridSpec spec;
  EXPECT_TRUE(spec.validate().empty());
  // Planner cells may legitimately oversubscribe the per-slot ceiling
  // through spatial reuse, up to the ring's 8x segment-packing limit.
  spec.utilisations = {1.5};
  EXPECT_TRUE(spec.validate().empty());
  spec.utilisations = {8.5};
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.protocols.clear();
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.repetitions = 0;
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.node_counts = {1};
  EXPECT_FALSE(spec.validate().empty());
}

TEST(GridTest, ParsesFullGridFile) {
  const std::string text = R"(
# comment line
protocols    = ccr-edf, cc-fpr, tdma
nodes        = 4, 8       # trailing comment
utilisations = 0.3, 0.85
mixes        = periodic, mixed, saturation
planners     = off, on
seeds        = 7, 11
repetitions  = 3
slots        = 1234
connections_per_node = 4
min_period_slots = 15
max_period_slots = 150
multicast_fraction = 0.25
background_rate = 0.1
saturation_rate = 2.5
link_length_m = 25.5
payload_bytes = 2048
spatial_reuse = off
base_seed = 99
)";
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid(text, spec, error)) << error;
  EXPECT_EQ(spec.protocols.size(), 3u);
  EXPECT_EQ(spec.node_counts, (std::vector<NodeId>{4, 8}));
  EXPECT_EQ(spec.utilisations, (std::vector<double>{0.3, 0.85}));
  EXPECT_EQ(spec.mixes.size(), 3u);
  EXPECT_EQ(spec.planners, (std::vector<bool>{false, true}));
  EXPECT_EQ(spec.set_seeds, (std::vector<std::uint64_t>{7, 11}));
  EXPECT_EQ(spec.repetitions, 3);
  EXPECT_EQ(spec.slots, 1234);
  EXPECT_EQ(spec.connections_per_node, 4);
  EXPECT_EQ(spec.min_period_slots, 15);
  EXPECT_EQ(spec.max_period_slots, 150);
  EXPECT_DOUBLE_EQ(spec.multicast_fraction, 0.25);
  EXPECT_DOUBLE_EQ(spec.background_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.saturation_rate, 2.5);
  EXPECT_DOUBLE_EQ(spec.link_length_m, 25.5);
  EXPECT_EQ(spec.slot_payload_bytes, 2048);
  EXPECT_FALSE(spec.spatial_reuse);
  EXPECT_EQ(spec.base_seed, 99u);
}

TEST(GridTest, UnmentionedKeysKeepDefaults) {
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid("nodes = 16\n", spec, error)) << error;
  EXPECT_EQ(spec.node_counts, (std::vector<NodeId>{16}));
  EXPECT_EQ(spec.slots, GridSpec{}.slots);
  EXPECT_EQ(spec.protocols.size(), 1u);
}

TEST(GridTest, RejectsMalformedInput) {
  GridSpec spec;
  std::string error;
  EXPECT_FALSE(parse_grid("nodes 8\n", spec, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_grid("frobnicate = 1\n", spec, error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(parse_grid("protocols = csma\n", spec, error));
  EXPECT_NE(error.find("unknown protocol"), std::string::npos);
  EXPECT_FALSE(parse_grid("nodes = 0\n", spec, error));
  EXPECT_FALSE(parse_grid("nodes = 999\n", spec, error));
  EXPECT_FALSE(parse_grid("utilisations = banana\n", spec, error));
  EXPECT_FALSE(parse_grid("slots = 10, 20\n", spec, error));
  EXPECT_FALSE(parse_grid("repetitions = -1\n", spec, error));
  // A failed parse must leave the spec untouched.
  GridSpec untouched;
  std::string err2;
  EXPECT_FALSE(parse_grid("nodes = 16\nbogus = 1\n", untouched, err2));
  EXPECT_EQ(untouched.node_counts, GridSpec{}.node_counts);
}

TEST(GridTest, ParserIsCrossFieldValidated) {
  GridSpec spec;
  std::string error;
  // min > max period caught by the final validate() pass.
  EXPECT_FALSE(parse_grid(
      "min_period_slots = 100\nmax_period_slots = 50\n", spec, error));
}

TEST(GridTest, BerAxisExpandsBetweenUtilisationAndMix) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4};
  spec.utilisations = {0.3, 0.7};
  spec.bers = {0.0, 1e-4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {1};

  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(spec.point_count(), 4u);
  // ber is an inner axis of utilisation: u cycles slowest of the two.
  EXPECT_DOUBLE_EQ(points[0].utilisation, 0.3);
  EXPECT_DOUBLE_EQ(points[0].ber, 0.0);
  EXPECT_DOUBLE_EQ(points[1].ber, 1e-4);
  EXPECT_DOUBLE_EQ(points[2].utilisation, 0.7);
  EXPECT_DOUBLE_EQ(points[2].ber, 0.0);
}

TEST(GridTest, DefaultBerAxisKeepsLegacyPointCount) {
  // The implicit {0.0} ber axis must not multiply legacy grids.
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4, 8};
  EXPECT_EQ(spec.point_count(), 4u);
  for (const auto& p : spec.expand()) EXPECT_DOUBLE_EQ(p.ber, 0.0);
}

TEST(GridTest, WorkloadKeyIgnoresBerAndProtocol) {
  // Paired comparison along the fault axis: a BER sweep must run the
  // exact same workloads at every ber value and for every protocol.
  GridPoint a;
  a.protocol = Protocol::kCcrEdf;
  a.ber = 0.0;
  GridPoint b = a;
  b.protocol = Protocol::kCcFpr;
  b.ber = 1e-3;
  EXPECT_EQ(workload_key(a), workload_key(b));
  GridPoint c = a;
  c.utilisation = a.utilisation + 0.1;
  EXPECT_NE(workload_key(a), workload_key(c));
}

TEST(GridTest, ValidatesBerAxis) {
  GridSpec spec;
  spec.bers = {};
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.bers = {0.0, 1.0};  // BER must stay below 1
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.bers = {-1e-6};
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.bers = {0.0, 1e-6, 1e-3};
  EXPECT_TRUE(spec.validate().empty());
}

TEST(GridTest, ParsesBerAndFrameCrcKeys) {
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid("bers = 0, 1e-4, 1e-3\nframe_crc = on\n", spec,
                         error))
      << error;
  EXPECT_EQ(spec.bers, (std::vector<double>{0.0, 1e-4, 1e-3}));
  EXPECT_TRUE(spec.frame_crc);
  GridSpec off;
  ASSERT_TRUE(parse_grid("frame_crc = off\n", off, error)) << error;
  EXPECT_FALSE(off.frame_crc);
  EXPECT_FALSE(parse_grid("bers = 1.5\n", spec, error));
  EXPECT_FALSE(parse_grid("bers = banana\n", spec, error));
}

// -- data-channel fault axis ---------------------------------------------

TEST(GridTest, DataBerAxisExpandsBetweenBerAndMix) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4};
  spec.utilisations = {0.5};
  spec.bers = {0.0, 1e-4};
  spec.data_bers = {0.0, 2e-4};
  spec.mixes = {WorkloadMix::kPeriodic};
  spec.set_seeds = {1};

  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(spec.point_count(), 4u);
  // data_ber is the inner axis of ber.
  EXPECT_DOUBLE_EQ(points[0].ber, 0.0);
  EXPECT_DOUBLE_EQ(points[0].data_ber, 0.0);
  EXPECT_DOUBLE_EQ(points[1].ber, 0.0);
  EXPECT_DOUBLE_EQ(points[1].data_ber, 2e-4);
  EXPECT_DOUBLE_EQ(points[2].ber, 1e-4);
  EXPECT_DOUBLE_EQ(points[2].data_ber, 0.0);
  EXPECT_DOUBLE_EQ(points[3].data_ber, 2e-4);
}

TEST(GridTest, DefaultDataBerAxisKeepsLegacyPointCount) {
  GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kTdma};
  spec.node_counts = {4, 8};
  EXPECT_EQ(spec.point_count(), 4u);
  for (const auto& p : spec.expand()) EXPECT_DOUBLE_EQ(p.data_ber, 0.0);
}

TEST(GridTest, WorkloadKeyIgnoresDataBer) {
  // Paired comparison along the data-fault axis too: the same workloads
  // must run at every data_ber value.
  GridPoint a;
  a.data_ber = 0.0;
  GridPoint b = a;
  b.data_ber = 2e-4;
  EXPECT_EQ(workload_key(a), workload_key(b));
}

TEST(GridTest, ValidatesDataBerAxis) {
  GridSpec spec;
  spec.data_bers = {};
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.data_bers = {0.0, 1.0};  // BER must stay below 1
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.data_bers = {-1e-6};
  EXPECT_FALSE(spec.validate().empty());
  spec = GridSpec{};
  spec.data_bers = {0.0, 1e-6, 2e-4};
  EXPECT_TRUE(spec.validate().empty());
}

TEST(GridTest, ParsesDataBersAndPayloadCrcKeys) {
  GridSpec spec;
  std::string error;
  ASSERT_TRUE(parse_grid("data_bers = 0, 2e-5, 2e-4\npayload_crc = on\n",
                         spec, error))
      << error;
  EXPECT_EQ(spec.data_bers, (std::vector<double>{0.0, 2e-5, 2e-4}));
  EXPECT_TRUE(spec.payload_crc);
  GridSpec off;
  ASSERT_TRUE(parse_grid("payload_crc = off\n", off, error)) << error;
  EXPECT_FALSE(off.payload_crc);
  EXPECT_FALSE(parse_grid("data_bers = 1.5\n", spec, error));
  EXPECT_FALSE(parse_grid("data_bers = banana\n", spec, error));
}

TEST(GridTest, PayloadCrcImpliesAcksInTheNetworkConfig) {
  // The NACK rides the distribution packet's ack mechanism; a grid that
  // asks for the payload CRC must get a wire that can carry the NACK.
  GridSpec spec;
  spec.payload_crc = true;
  GridPoint point;
  point.protocol = Protocol::kCcrEdf;
  point.nodes = 8;
  const net::NetworkConfig cfg = make_network_config(spec, point);
  EXPECT_TRUE(cfg.with_payload_crc);
  EXPECT_TRUE(cfg.with_acks);
}

}  // namespace
}  // namespace ccredf::sweep
