#include "common/nodeset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ccredf {
namespace {

TEST(NodeSet, EmptyByDefault) {
  const NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.lowest(), kInvalidNode);
  EXPECT_EQ(s.highest(), kInvalidNode);
}

TEST(NodeSet, SingleAndContains) {
  const NodeSet s = NodeSet::single(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.lowest(), 5u);
  EXPECT_EQ(s.highest(), 5u);
}

TEST(NodeSet, SingleRejectsOutOfRange) {
  EXPECT_THROW(NodeSet::single(64), ConfigError);
  EXPECT_NO_THROW(NodeSet::single(63));
}

TEST(NodeSet, FirstN) {
  const NodeSet s = NodeSet::first_n(4);
  EXPECT_EQ(s.size(), 4);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
}

TEST(NodeSet, FirstNFull64) {
  const NodeSet s = NodeSet::first_n(64);
  EXPECT_EQ(s.size(), 64);
  EXPECT_TRUE(s.contains(63));
  EXPECT_THROW(NodeSet::first_n(65), ConfigError);
}

TEST(NodeSet, InsertErase) {
  NodeSet s;
  s.insert(3);
  s.insert(7);
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  s.erase(7);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, SetAlgebra) {
  const NodeSet a = NodeSet::from_mask(0b1100);
  const NodeSet b = NodeSet::from_mask(0b1010);
  EXPECT_EQ((a | b).mask(), 0b1110u);
  EXPECT_EQ((a & b).mask(), 0b1000u);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(NodeSet::from_mask(0b0011)));
}

TEST(NodeSet, SubsetRelation) {
  const NodeSet small = NodeSet::from_mask(0b0110);
  const NodeSet big = NodeSet::from_mask(0b1110);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
  EXPECT_TRUE(NodeSet{}.is_subset_of(small));
}

TEST(NodeSet, CompoundAssignment) {
  NodeSet s = NodeSet::from_mask(0b01);
  s |= NodeSet::from_mask(0b10);
  EXPECT_EQ(s.mask(), 0b11u);
  s &= NodeSet::from_mask(0b10);
  EXPECT_EQ(s.mask(), 0b10u);
}

TEST(NodeSet, LowestHighest) {
  const NodeSet s = NodeSet::from_mask(0b101000);
  EXPECT_EQ(s.lowest(), 3u);
  EXPECT_EQ(s.highest(), 5u);
}

TEST(NodeSet, IterationInOrder) {
  NodeSet s;
  s.insert(2);
  s.insert(40);
  s.insert(7);
  std::vector<NodeId> seen;
  for (const NodeId n : s) seen.push_back(n);
  EXPECT_EQ(seen, (std::vector<NodeId>{2, 7, 40}));
}

TEST(NodeSet, IterationOfEmptySet) {
  int count = 0;
  for ([[maybe_unused]] const NodeId n : NodeSet{}) ++count;
  EXPECT_EQ(count, 0);
}

TEST(NodeSet, EqualityAndComplement) {
  const NodeSet a = NodeSet::from_mask(0xF0);
  EXPECT_EQ(a, NodeSet::from_mask(0xF0));
  EXPECT_NE(a, NodeSet::from_mask(0x0F));
  EXPECT_TRUE((~a).contains(0));
  EXPECT_FALSE((~a).contains(4));
}

}  // namespace
}  // namespace ccredf
