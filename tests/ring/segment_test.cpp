#include "ring/segment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::ring {
namespace {

TEST(LinksOnPath, EnumeratesConsecutiveLinks) {
  const RingTopology t(6);
  const LinkSet links = links_on_path(t, 1, 3);  // links 1,2,3
  EXPECT_EQ(links.size(), 3);
  EXPECT_TRUE(links.contains(1));
  EXPECT_TRUE(links.contains(2));
  EXPECT_TRUE(links.contains(3));
}

TEST(LinksOnPath, WrapsAroundRing) {
  const RingTopology t(4);
  const LinkSet links = links_on_path(t, 3, 2);  // links 3, 0
  EXPECT_TRUE(links.contains(3));
  EXPECT_TRUE(links.contains(0));
  EXPECT_EQ(links.size(), 2);
}

TEST(LinksOnPath, ZeroHopsIsEmpty) {
  const RingTopology t(4);
  EXPECT_TRUE(links_on_path(t, 2, 0).empty());
}

TEST(Segment, UnicastPath) {
  // Paper Fig. 2: Node 1 -> Node 3 occupies links 1 and 2.
  const RingTopology t(5);
  const auto seg = Segment::for_transmission(t, 1, NodeSet::single(3));
  EXPECT_EQ(seg.source(), 1u);
  EXPECT_EQ(seg.furthest_dest(), 3u);
  EXPECT_EQ(seg.hops(), 2u);
  EXPECT_TRUE(seg.links().contains(1));
  EXPECT_TRUE(seg.links().contains(2));
  EXPECT_EQ(seg.links().size(), 2);
}

TEST(Segment, Fig2TransmissionsAreCompatible) {
  // Paper Fig. 2: Node 1 -> Node 3 (links 1,2) and Node 4 -> {5(==0), 1}
  // multicast can share a slot.  In our 0-based 5-ring: node 0 -> node 2
  // and node 3 -> {4, 0}.
  const RingTopology t(5);
  const auto a = Segment::for_transmission(t, 0, NodeSet::single(2));
  NodeSet multicast;
  multicast.insert(4);
  multicast.insert(0);
  const auto b = Segment::for_transmission(t, 3, multicast);
  EXPECT_TRUE(a.compatible_with(b));
  EXPECT_TRUE(b.compatible_with(a));
}

TEST(Segment, MulticastCoversFurthestDest) {
  const RingTopology t(6);
  NodeSet dests;
  dests.insert(2);
  dests.insert(4);
  const auto seg = Segment::for_transmission(t, 1, dests);
  EXPECT_EQ(seg.furthest_dest(), 4u);
  EXPECT_EQ(seg.hops(), 3u);
  EXPECT_EQ(seg.links().size(), 3);
}

TEST(Segment, MulticastFurthestRespectsWraparound) {
  const RingTopology t(6);
  NodeSet dests;
  dests.insert(0);  // 2 hops from 4
  dests.insert(3);  // 5 hops from 4
  const auto seg = Segment::for_transmission(t, 4, dests);
  EXPECT_EQ(seg.furthest_dest(), 3u);
  EXPECT_EQ(seg.hops(), 5u);
}

TEST(Segment, BroadcastSpansNMinusOne) {
  const RingTopology t(5);
  NodeSet all = t.all_nodes();
  all.erase(2);
  const auto seg = Segment::for_transmission(t, 2, all);
  EXPECT_EQ(seg.hops(), 4u);
  EXPECT_EQ(seg.links().size(), 4);
  EXPECT_FALSE(seg.links().contains(t.link_into(2)));
}

TEST(Segment, OverlappingSegmentsIncompatible) {
  const RingTopology t(6);
  const auto a = Segment::for_transmission(t, 0, NodeSet::single(3));
  const auto b = Segment::for_transmission(t, 2, NodeSet::single(4));
  EXPECT_FALSE(a.compatible_with(b));  // both need link 2
}

TEST(Segment, AdjacentSegmentsCompatible) {
  const RingTopology t(6);
  const auto a = Segment::for_transmission(t, 0, NodeSet::single(2));
  const auto b = Segment::for_transmission(t, 2, NodeSet::single(4));
  EXPECT_TRUE(a.compatible_with(b));
}

TEST(Segment, FeasibleUnderMaster) {
  const RingTopology t(5);
  const auto seg = Segment::for_transmission(t, 1, NodeSet::single(3));
  // seg uses links 1,2.  Masters 0,1,4 have break links 4,0,3 -> feasible;
  // masters 2,3 have break links 1,2 -> infeasible.
  EXPECT_TRUE(seg.feasible_under_master(t, 0));
  EXPECT_TRUE(seg.feasible_under_master(t, 1));
  EXPECT_TRUE(seg.feasible_under_master(t, 4));
  EXPECT_FALSE(seg.feasible_under_master(t, 2));
  EXPECT_FALSE(seg.feasible_under_master(t, 3));
}

TEST(Segment, OwnTransmissionAlwaysFeasibleUnderOwnMastership) {
  // The paper's key invariant: the master's own transmission spans at
  // most N-1 hops and never crosses its own clock break.
  const RingTopology t(8);
  for (NodeId src = 0; src < 8; ++src) {
    NodeSet all = t.all_nodes();
    all.erase(src);
    const auto seg = Segment::for_transmission(t, src, all);
    EXPECT_TRUE(seg.feasible_under_master(t, src));
  }
}

TEST(Segment, RejectsBadInputs) {
  const RingTopology t(4);
  EXPECT_THROW(Segment::for_transmission(t, 0, NodeSet{}), ConfigError);
  EXPECT_THROW(Segment::for_transmission(t, 0, NodeSet::single(0)),
               ConfigError);
  EXPECT_THROW(Segment::for_transmission(t, 9, NodeSet::single(1)),
               ConfigError);
  EXPECT_THROW(Segment::for_transmission(t, 0, NodeSet::single(5)),
               ConfigError);
}

}  // namespace
}  // namespace ccredf::ring
