#include "ring/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::ring {
namespace {

TEST(RingTopology, Basics) {
  const RingTopology t(5);
  EXPECT_EQ(t.nodes(), 5u);
  EXPECT_EQ(t.links(), 5u);
}

TEST(RingTopology, RejectsBadSizes) {
  EXPECT_THROW(RingTopology(1), ConfigError);
  EXPECT_THROW(RingTopology(65), ConfigError);
  EXPECT_NO_THROW(RingTopology(2));
  EXPECT_NO_THROW(RingTopology(64));
}

TEST(RingTopology, DownstreamWraps) {
  const RingTopology t(4);
  EXPECT_EQ(t.downstream(0), 1u);
  EXPECT_EQ(t.downstream(3), 0u);
  EXPECT_EQ(t.downstream(1, 3), 0u);
  EXPECT_EQ(t.downstream(2, 0), 2u);
}

TEST(RingTopology, UpstreamWraps) {
  const RingTopology t(4);
  EXPECT_EQ(t.upstream(0), 3u);
  EXPECT_EQ(t.upstream(2), 1u);
  EXPECT_EQ(t.upstream(1, 2), 3u);
}

TEST(RingTopology, UpstreamInvertsDownstream) {
  const RingTopology t(7);
  for (NodeId n = 0; n < 7; ++n) {
    for (NodeId h = 0; h < 7; ++h) {
      EXPECT_EQ(t.upstream(t.downstream(n, h), h), n);
    }
  }
}

TEST(RingTopology, HopsDistance) {
  const RingTopology t(6);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 3), 3u);
  EXPECT_EQ(t.hops(4, 1), 3u);
  EXPECT_EQ(t.hops(5, 4), 5u);  // nearly all the way round
}

TEST(RingTopology, LinkNumbering) {
  const RingTopology t(5);
  EXPECT_EQ(t.link_from(2), 2u);
  EXPECT_EQ(t.link_into(3), 2u);
  EXPECT_EQ(t.link_into(0), 4u);
}

TEST(RingTopology, BreakLinkIsLinkIntoMaster) {
  // The clock dies on the link entering the master (paper §2): the clock
  // travels N-1 hops from the master, covering all links except that one.
  const RingTopology t(5);
  for (NodeId m = 0; m < 5; ++m) {
    EXPECT_EQ(t.break_link(m), t.link_into(m));
  }
  EXPECT_EQ(t.break_link(0), 4u);
  EXPECT_EQ(t.break_link(3), 2u);
}

TEST(RingTopology, AllNodesMask) {
  const RingTopology t(4);
  EXPECT_EQ(t.all_nodes().size(), 4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_TRUE(t.all_nodes().contains(n));
  EXPECT_FALSE(t.all_nodes().contains(4));
}

}  // namespace
}  // namespace ccredf::ring
