#include "baseline/ccfpr.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "ring/segment.hpp"

namespace ccredf::baseline {
namespace {

using core::Priority;
using core::Request;
using core::TrafficClass;
using sim::Duration;

net::NetworkConfig ccfpr_config(NodeId nodes = 8) {
  net::NetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol_factory = ccfpr_factory();
  return cfg;
}

Request req(Priority prio, const ring::RingTopology& topo, NodeId src,
            NodeId dst) {
  Request r;
  r.priority = prio;
  const auto seg =
      ring::Segment::for_transmission(topo, src, NodeSet::single(dst));
  r.links = seg.links();
  r.dests = NodeSet::single(dst);
  return r;
}

TEST(CcFpr, MasterRotatesRoundRobin) {
  net::Network n(ccfpr_config());
  EXPECT_STREQ(n.protocol().name(), "CC-FPR");
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(10);
  for (std::size_t i = 0; i < masters.size(); ++i) {
    EXPECT_EQ(masters[i], static_cast<NodeId>(i % 8));
  }
}

TEST(CcFpr, MasterRotatesEvenUnderLoad) {
  net::Network n(ccfpr_config());
  n.send_best_effort(5, NodeSet::single(6), 1, Duration::milliseconds(1));
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(4);
  // Round-robin: 0,1,2,3 -- never jumps to the urgent sender.
  EXPECT_EQ(masters, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(CcFpr, ConstantGap) {
  net::Network n(ccfpr_config());
  std::vector<Duration> gaps;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    gaps.push_back(rec.gap_after);
  });
  n.run_slots(10);
  for (const auto g : gaps) EXPECT_EQ(g, gaps.front());
  // D = 1: 50 ns + 2 stop bits * 2.5 ns.
  EXPECT_EQ(gaps.front(), Duration::nanoseconds(55));
}

TEST(CcFpr, ClockInterruptionBlocksUrgentMessage) {
  // The pathology of the simple strategy (paper §1): next master's break
  // link may lie on the most urgent message's path.
  ring::RingTopology topo(6);
  phy::RingPhy phy(phy::optobus(), 6, 10.0);
  CcFprProtocol proto(&phy, topo, true);
  std::vector<Request> reqs(6);
  // Current master 0 => next master 1, break link = link 0 (into node 1).
  // Node 5 -> 2 needs links 5, 0, 1: crosses the break link.
  reqs[5] = req(31, topo, 5, 2);
  const auto plan = proto.plan_next_slot(reqs, 0, 0);
  EXPECT_EQ(plan.next_master, 1u);
  EXPECT_FALSE(plan.granted.contains(5));  // priority inversion!
}

TEST(CcFpr, UpstreamBookingStarvesUrgentDownstream) {
  // Paper §3: "Node 1 ... books Links 1 and 2, regardless of what Node 2
  // may have to send."
  ring::RingTopology topo(6);
  phy::RingPhy phy(phy::optobus(), 6, 10.0);
  CcFprProtocol proto(&phy, topo, true);
  std::vector<Request> reqs(6);
  // Booking order from master 0: nodes 1, 2, 3, ...  Node 1 (low prio)
  // books links 1,2; node 2 (max prio) needs link 2 -> denied.
  reqs[1] = req(5, topo, 1, 3);
  reqs[2] = req(31, topo, 2, 3);
  const auto plan = proto.plan_next_slot(reqs, 0, 0);
  EXPECT_TRUE(plan.granted.contains(1));
  EXPECT_FALSE(plan.granted.contains(2));
}

TEST(CcFpr, NetworkCountsInversions) {
  net::Network n(ccfpr_config(6));
  // Node 5 -> 2 wraps across many break links while mastership rotates;
  // lower-priority node 1 -> 3 books first repeatedly.
  for (int i = 0; i < 10; ++i) {
    n.send_best_effort(5, NodeSet::single(2), 1, Duration::microseconds(50));
    n.send_non_realtime(1, NodeSet::single(3), 1);
    n.run_slots(4);
  }
  EXPECT_GT(n.stats().priority_inversions, 0);
}

TEST(CcFpr, EventuallyDeliversEverything) {
  net::Network n(ccfpr_config(6));
  for (NodeId s = 0; s < 6; ++s) {
    n.send_best_effort(s, NodeSet::single((s + 2) % 6), 1,
                       Duration::milliseconds(5));
  }
  n.run_slots(60);
  std::int64_t delivered = 0;
  for (NodeId i = 0; i < 6; ++i) {
    delivered += static_cast<std::int64_t>(n.node(i).inbox().size());
  }
  EXPECT_EQ(delivered, 6);
}

TEST(CcFpr, SpatialReuseStillWorks) {
  net::Network n(ccfpr_config(8));
  n.send_best_effort(1, NodeSet::single(2), 1, Duration::milliseconds(1));
  n.send_best_effort(5, NodeSet::single(6), 1, Duration::milliseconds(1));
  n.run_slots(6);
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
  EXPECT_EQ(n.node(6).inbox().size(), 1u);
}

}  // namespace
}  // namespace ccredf::baseline
