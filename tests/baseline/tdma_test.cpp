#include "baseline/tdma.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ccredf::baseline {
namespace {

using core::TrafficClass;
using sim::Duration;

net::NetworkConfig tdma_config(NodeId nodes = 4) {
  net::NetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol_factory = tdma_factory();
  return cfg;
}

TEST(Tdma, OwnershipRotates) {
  net::Network n(tdma_config());
  EXPECT_STREQ(n.protocol().name(), "TDMA");
  std::vector<NodeId> masters;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    masters.push_back(rec.master);
  });
  n.run_slots(8);
  for (std::size_t i = 1; i < masters.size(); ++i) {
    EXPECT_EQ(masters[i], static_cast<NodeId>(i % 4));
  }
}

TEST(Tdma, OnlyOwnerTransmits) {
  net::Network n(tdma_config());
  // Node 2 has a message; it can only use slots owned by node 2.
  n.send_best_effort(2, NodeSet::single(3), 1, Duration::milliseconds(1));
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    recs.push_back(rec);
  });
  n.run_slots(10);
  for (const auto& rec : recs) {
    for (const NodeId g : rec.granted) EXPECT_EQ(g, rec.master);
  }
  EXPECT_EQ(n.node(3).inbox().size(), 1u);
}

TEST(Tdma, AccessDelayUpToNSlots) {
  // A message arriving just after the owner's slot waits ~N slots.
  net::Network n(tdma_config(8));
  n.send_best_effort(0, NodeSet::single(1), 1, Duration::milliseconds(10));
  n.run_slots(20);
  ASSERT_EQ(n.node(1).inbox().size(), 1u);
  // Owner 0 gets slots 0, 8, 16...; collection for slot 8 happens in slot
  // 7, so delivery lands in slot 8 at the earliest.
  const auto lat = n.node(1).inbox()[0].latency();
  EXPECT_GE(lat, n.timing().slot() * 7);
}

TEST(Tdma, NoSpatialReuse) {
  net::Network n(tdma_config(8));
  n.send_best_effort(0, NodeSet::single(1), 1, Duration::milliseconds(5));
  n.send_best_effort(4, NodeSet::single(5), 1, Duration::milliseconds(5));
  n.run_slots(20);
  EXPECT_EQ(n.stats().reuse_slots, 0);
  EXPECT_EQ(n.node(1).inbox().size(), 1u);
  EXPECT_EQ(n.node(5).inbox().size(), 1u);
}

TEST(Tdma, IdleOwnersWasteSlots) {
  net::Network n(tdma_config(4));
  n.send_best_effort(1, NodeSet::single(2), 3, Duration::milliseconds(10));
  n.run_slots(16);
  // Node 1 owns every 4th slot; 3 slots of data need ~12 slots wall time.
  EXPECT_EQ(n.node(2).inbox().size(), 1u);
  EXPECT_LE(n.stats().busy_slots, 4);
}

}  // namespace
}  // namespace ccredf::baseline
