#include "services/flow.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(Flow, SendsWithinWindow) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 2);
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  EXPECT_EQ(fc.credits(0, 3), 0);
}

TEST(Flow, BlocksBeyondWindow) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 2);
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  EXPECT_FALSE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  EXPECT_EQ(fc.blocked(0, 3), 1u);
  EXPECT_EQ(fc.sends_blocked_total(), 1);
}

TEST(Flow, CreditsReturnOnDelivery) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 1);
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  n.run_slots(10);
  EXPECT_EQ(fc.credits(0, 3), 1);
}

TEST(Flow, BlockedSendsDrainAutomatically) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 1);
  for (int i = 0; i < 5; ++i) {
    fc.send(0, 3, 1, Duration::milliseconds(10));
  }
  EXPECT_EQ(fc.blocked(0, 3), 4u);
  n.run_slots(60);
  EXPECT_EQ(fc.blocked(0, 3), 0u);
  EXPECT_EQ(n.node(3).inbox().size(), 5u);
}

TEST(Flow, PairsAreIndependent) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 1);
  EXPECT_TRUE(fc.send(0, 3, 1, Duration::milliseconds(1)));
  // Different pair: fresh window.
  EXPECT_TRUE(fc.send(0, 4, 1, Duration::milliseconds(1)));
  EXPECT_TRUE(fc.send(1, 3, 1, Duration::milliseconds(1)));
  EXPECT_FALSE(fc.send(0, 3, 1, Duration::milliseconds(1)));
}

TEST(Flow, WindowPreservedAcrossManyRounds) {
  net::Network n(cfg6());
  CreditFlowControl fc(n, 3);
  for (int round = 0; round < 10; ++round) {
    fc.send(1, 4, 1, Duration::milliseconds(10));
    n.run_slots(8);
  }
  n.run_slots(40);
  EXPECT_EQ(fc.credits(1, 4), 3);
  EXPECT_EQ(n.node(4).inbox().size(), 10u);
}

TEST(Flow, RejectsBadConfig) {
  net::Network n(cfg6());
  EXPECT_THROW(CreditFlowControl(n, 0), ConfigError);
  CreditFlowControl fc(n, 1);
  EXPECT_THROW(fc.send(2, 2, 1, Duration::milliseconds(1)), ConfigError);
}

}  // namespace
}  // namespace ccredf::services
