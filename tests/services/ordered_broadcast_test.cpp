#include "services/ordered_broadcast.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(OrderedBroadcast, SingleBroadcastReachesEveryoneWithSeqZero) {
  net::Network n(cfg6());
  OrderedBroadcast ob(n);
  int fired = 0;
  for (NodeId i = 0; i < 6; ++i) {
    ob.set_handler(i, [&](NodeId, const OrderedBroadcast::Ordered& o) {
      EXPECT_EQ(o.sequence, 0);
      EXPECT_EQ(o.source, 2u);
      ++fired;
    });
  }
  ob.broadcast(2, 1, Duration::milliseconds(1));
  n.run_slots(6);
  EXPECT_EQ(fired, 6);  // 5 destinations + the source's own notification
  EXPECT_EQ(ob.delivered(), 1);
}

TEST(OrderedBroadcast, AllNodesSeeTheSameOrder) {
  net::Network n(cfg6());
  OrderedBroadcast ob(n);
  // Each node records the (sequence, id) pairs it observes.
  std::map<NodeId, std::vector<std::pair<std::int64_t, MessageId>>> seen;
  for (NodeId i = 0; i < 6; ++i) {
    ob.set_handler(i, [&, i](NodeId, const OrderedBroadcast::Ordered& o) {
      seen[i].emplace_back(o.sequence, o.id);
    });
  }
  // Competing broadcasts from several sources, staggered in time.
  sim::Rng rng(5);
  for (int k = 0; k < 10; ++k) {
    const auto src = static_cast<NodeId>(rng.uniform_u64(6));
    const auto delay = n.timing().slot() * rng.uniform_int(0, 30);
    n.sim().schedule_in(delay, [&ob, src] {
      ob.broadcast(src, 1, Duration::milliseconds(5));
    });
  }
  n.run_slots(200);
  EXPECT_EQ(ob.delivered(), 10);
  // Every node observed an identical, gap-free sequence of ids (sources
  // are notified of their own broadcasts, so all nodes see all ten).
  const auto& reference = seen[0];
  ASSERT_EQ(reference.size(), 10u);
  for (std::int64_t s = 0; s < 10; ++s) {
    EXPECT_EQ(reference[static_cast<std::size_t>(s)].first, s);
  }
  for (NodeId i = 1; i < 6; ++i) {
    EXPECT_EQ(seen[i], reference) << "node " << i;
  }
}

TEST(OrderedBroadcast, SequenceFollowsDeliveryNotSubmission) {
  net::Network n(cfg6());
  OrderedBroadcast ob(n);
  std::vector<NodeId> order;
  ob.set_handler(3, [&](NodeId, const OrderedBroadcast::Ordered& o) {
    order.push_back(o.source);
  });
  // An urgent later broadcast overtakes an earlier lazy one.
  ob.broadcast(0, 1, Duration::milliseconds(100));  // lazy
  ob.broadcast(1, 1, Duration::microseconds(5));    // urgent
  n.run_slots(10);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(OrderedBroadcast, MultiSlotBroadcastsStayOrdered) {
  net::Network n(cfg6());
  OrderedBroadcast ob(n);
  std::vector<std::int64_t> seqs;
  ob.set_handler(5, [&](NodeId, const OrderedBroadcast::Ordered& o) {
    seqs.push_back(o.sequence);
  });
  for (int k = 0; k < 5; ++k) {
    ob.broadcast(static_cast<NodeId>(k % 3), 3, Duration::milliseconds(10));
  }
  n.run_slots(60);
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<std::int64_t>(i));
  }
}

TEST(OrderedBroadcast, HandlerBoundsChecked) {
  net::Network n(cfg6());
  OrderedBroadcast ob(n);
  EXPECT_THROW(ob.set_handler(6, nullptr), ConfigError);
}

}  // namespace
}  // namespace ccredf::services
