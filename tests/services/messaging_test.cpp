#include "services/messaging.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace ccredf::services {
namespace {

using core::TrafficClass;
using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{1});
  return v;
}

TEST(Messenger, PayloadDeliveredIntact) {
  net::Network n(cfg6());
  Messenger msn(n);
  Messenger::Received got;
  msn.set_handler(3, [&](NodeId self, const Messenger::Received& r) {
    EXPECT_EQ(self, 3u);
    got = r;
  });
  const auto payload = pattern(100);
  msn.send_bytes(0, 3, payload, TrafficClass::kBestEffort,
                 Duration::milliseconds(1));
  n.run_slots(8);
  EXPECT_EQ(got.payload, payload);
  EXPECT_EQ(got.source, 0u);
  EXPECT_TRUE(got.met_deadline);
  EXPECT_EQ(msn.messages_received(), 1);
}

TEST(Messenger, SlotsForRoundsUp) {
  net::Network n(cfg6());
  Messenger msn(n);
  const std::int64_t per_slot = n.timing().payload_bytes();
  EXPECT_EQ(msn.slots_for(1), 1);
  EXPECT_EQ(msn.slots_for(per_slot), 1);
  EXPECT_EQ(msn.slots_for(per_slot + 1), 2);
  EXPECT_EQ(msn.slots_for(3 * per_slot), 3);
  EXPECT_EQ(msn.slots_for(0), 1);  // empty message still takes a slot
}

TEST(Messenger, LargePayloadSpansSlots) {
  net::Network n(cfg6());
  Messenger msn(n);
  bool got = false;
  const auto bytes = static_cast<std::size_t>(
      n.timing().payload_bytes() * 3 + 10);
  msn.set_handler(2, [&](NodeId, const Messenger::Received& r) {
    got = true;
    EXPECT_EQ(r.payload.size(), bytes);
  });
  std::vector<std::uint8_t> payload(bytes, 0xAB);
  msn.send_bytes(1, 2, payload, TrafficClass::kBestEffort,
                 Duration::milliseconds(5));
  n.run_slots(12);
  EXPECT_TRUE(got);
  EXPECT_EQ(n.stats().total_grants, 4);
}

TEST(Messenger, MulticastHandlersAllFire) {
  net::Network n(cfg6());
  Messenger msn(n);
  int fired = 0;
  for (const NodeId dst : {NodeId{2}, NodeId{4}}) {
    msn.set_handler(dst,
                    [&](NodeId, const Messenger::Received&) { ++fired; });
  }
  NodeSet dests;
  dests.insert(2);
  dests.insert(4);
  msn.multicast_bytes(0, dests, pattern(16), TrafficClass::kBestEffort,
                      Duration::milliseconds(1));
  n.run_slots(6);
  EXPECT_EQ(fired, 2);
}

TEST(Messenger, ShortMessageSingleSlotOnly) {
  net::Network n(cfg6());
  Messenger msn(n);
  const auto per_slot = static_cast<std::size_t>(n.timing().payload_bytes());
  EXPECT_NO_THROW(msn.send_short(0, 1, pattern(per_slot),
                                 Duration::milliseconds(1)));
  EXPECT_THROW(msn.send_short(0, 1, pattern(per_slot + 1),
                              Duration::milliseconds(1)),
               ConfigError);
}

TEST(Messenger, HandlerBoundsChecked) {
  net::Network n(cfg6());
  Messenger msn(n);
  EXPECT_THROW(msn.set_handler(6, nullptr), ConfigError);
}

TEST(Messenger, InterleavedMessagesKeepPayloadsSeparate) {
  net::Network n(cfg6());
  Messenger msn(n);
  std::vector<std::vector<std::uint8_t>> got;
  msn.set_handler(5, [&](NodeId, const Messenger::Received& r) {
    got.push_back(r.payload);
  });
  msn.send_bytes(0, 5, std::vector<std::uint8_t>{1, 1, 1},
                 TrafficClass::kBestEffort, Duration::milliseconds(1));
  msn.send_bytes(1, 5, std::vector<std::uint8_t>{2, 2},
                 TrafficClass::kBestEffort, Duration::milliseconds(2));
  n.run_slots(10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(got[0], got[1]);
}

}  // namespace
}  // namespace ccredf::services
