#include "services/reliable.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(Reliable, LosslessTransferCompletesFirstAttempt) {
  net::Network n(cfg6());
  ReliableChannel ch(n, ReliableChannel::Params{});
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, Duration::milliseconds(1),
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(10);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(ch.retransmissions(), 0);
  EXPECT_EQ(ch.transfers_delivered(), 1);
}

TEST(Reliable, LossTriggersRetransmission) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.5;
  p.seed = 3;
  p.timeout_slots = 4;
  ReliableChannel ch(n, p);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    ch.send(0, 3, 1, Duration::milliseconds(50),
            [&](const ReliableChannel::TransferResult& r) {
              EXPECT_TRUE(r.delivered);
              ++completed;
            });
  }
  n.run_slots(1500);
  EXPECT_EQ(completed, 20);
  EXPECT_GT(ch.retransmissions(), 0);
  EXPECT_EQ(ch.transfers_failed(), 0);
}

TEST(Reliable, RetriedTransferTakesLonger) {
  net::Network lossless(cfg6());
  net::Network lossy(cfg6());
  ReliableChannel ok(lossless, ReliableChannel::Params{});
  ReliableChannel::Params p;
  p.loss_probability = 0.9;
  p.seed = 5;
  p.timeout_slots = 4;
  ReliableChannel bad(lossy, p);

  sim::TimePoint t_ok, t_bad;
  ok.send(0, 3, 1, Duration::milliseconds(100),
          [&](const ReliableChannel::TransferResult& r) {
            t_ok = r.completed;
          });
  bad.send(0, 3, 1, Duration::milliseconds(100),
           [&](const ReliableChannel::TransferResult& r) {
             t_bad = r.completed;
           });
  lossless.run_slots(800);
  lossy.run_slots(800);
  EXPECT_GT(t_bad, t_ok);
}

TEST(Reliable, GivesUpAfterMaxAttempts) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.999999;  // effectively always lost
  p.max_attempts = 3;
  p.timeout_slots = 2;
  ReliableChannel ch(n, p);
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, Duration::milliseconds(50),
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(400);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(ch.transfers_failed(), 1);
}

TEST(Reliable, ManyConcurrentTransfers) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.2;
  p.seed = 11;
  ReliableChannel ch(n, p);
  int completed = 0;
  for (NodeId src = 0; src < 6; ++src) {
    for (int k = 0; k < 5; ++k) {
      ch.send(src, (src + 1 + static_cast<NodeId>(k)) % 6, 1,
              Duration::milliseconds(50),
              [&](const ReliableChannel::TransferResult& r) {
                EXPECT_TRUE(r.delivered);
                ++completed;
              });
    }
  }
  n.run_slots(3000);
  EXPECT_EQ(completed, 30);
}

TEST(Reliable, RejectsBadParams) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 1.0;
  EXPECT_THROW(ReliableChannel(n, p), ConfigError);
  p = ReliableChannel::Params{};
  p.timeout_slots = 0;
  EXPECT_THROW(ReliableChannel(n, p), ConfigError);
}

TEST(Reliable, RejectsSelfSend) {
  net::Network n(cfg6());
  ReliableChannel ch(n, ReliableChannel::Params{});
  EXPECT_THROW(ch.send(2, 2, 1, Duration::milliseconds(1), nullptr),
               ConfigError);
}

}  // namespace
}  // namespace ccredf::services
