#include "services/reliable.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "fault/injector.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

net::NetworkConfig cfg6_payload_crc() {
  net::NetworkConfig cfg = cfg6();
  cfg.with_acks = true;
  cfg.with_payload_crc = true;
  return cfg;
}

TEST(Reliable, LosslessTransferCompletesFirstAttempt) {
  net::Network n(cfg6());
  ReliableChannel ch(n, ReliableChannel::Params{});
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, Duration::milliseconds(1),
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(10);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(ch.retransmissions(), 0);
  EXPECT_EQ(ch.transfers_delivered(), 1);
}

TEST(Reliable, LossTriggersRetransmission) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.5;
  p.seed = 3;
  p.timeout_slots = 4;
  ReliableChannel ch(n, p);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    ch.send(0, 3, 1, Duration::milliseconds(50),
            [&](const ReliableChannel::TransferResult& r) {
              EXPECT_TRUE(r.delivered);
              ++completed;
            });
  }
  n.run_slots(1500);
  EXPECT_EQ(completed, 20);
  EXPECT_GT(ch.retransmissions(), 0);
  EXPECT_EQ(ch.transfers_failed(), 0);
}

TEST(Reliable, RetriedTransferTakesLonger) {
  net::Network lossless(cfg6());
  net::Network lossy(cfg6());
  ReliableChannel ok(lossless, ReliableChannel::Params{});
  ReliableChannel::Params p;
  p.loss_probability = 0.9;
  p.seed = 5;
  p.timeout_slots = 4;
  ReliableChannel bad(lossy, p);

  sim::TimePoint t_ok, t_bad;
  ok.send(0, 3, 1, Duration::milliseconds(100),
          [&](const ReliableChannel::TransferResult& r) {
            t_ok = r.completed;
          });
  bad.send(0, 3, 1, Duration::milliseconds(100),
           [&](const ReliableChannel::TransferResult& r) {
             t_bad = r.completed;
           });
  lossless.run_slots(800);
  lossy.run_slots(800);
  EXPECT_GT(t_bad, t_ok);
}

TEST(Reliable, GivesUpAfterMaxAttempts) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.999999;  // effectively always lost
  p.max_attempts = 3;
  p.timeout_slots = 2;
  ReliableChannel ch(n, p);
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, Duration::milliseconds(50),
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(400);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(ch.transfers_failed(), 1);
}

TEST(Reliable, ManyConcurrentTransfers) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 0.2;
  p.seed = 11;
  ReliableChannel ch(n, p);
  int completed = 0;
  for (NodeId src = 0; src < 6; ++src) {
    for (int k = 0; k < 5; ++k) {
      ch.send(src, (src + 1 + static_cast<NodeId>(k)) % 6, 1,
              Duration::milliseconds(50),
              [&](const ReliableChannel::TransferResult& r) {
                EXPECT_TRUE(r.delivered);
                ++completed;
              });
    }
  }
  n.run_slots(3000);
  EXPECT_EQ(completed, 30);
}

TEST(Reliable, RejectsBadParams) {
  net::Network n(cfg6());
  ReliableChannel::Params p;
  p.loss_probability = 1.0;
  EXPECT_THROW(ReliableChannel(n, p), ConfigError);
  p = ReliableChannel::Params{};
  p.timeout_slots = 0;
  EXPECT_THROW(ReliableChannel(n, p), ConfigError);
}

TEST(Reliable, RejectsSelfSend) {
  net::Network n(cfg6());
  ReliableChannel ch(n, ReliableChannel::Params{});
  EXPECT_THROW(ch.send(2, 2, 1, Duration::milliseconds(1), nullptr),
               ConfigError);
}

// -- physical NACK path (payload CRC + data-channel faults) --------------

TEST(Reliable, NackFromPayloadCrcTriggersRetransmission) {
  // No synthetic loss at all: corruption comes from the data fibres, is
  // caught by the receivers' CRC-32, and the NACK on the distribution
  // packet drives the retransmission.
  net::Network n(cfg6_payload_crc());
  fault::FaultInjector inj(n, /*seed=*/17);
  inj.set_data_ber(5e-5);
  ReliableChannel ch(n, ReliableChannel::Params{});
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    ch.send(0, 3, 1, Duration::milliseconds(50),
            [&](const ReliableChannel::TransferResult& r) {
              EXPECT_TRUE(r.delivered);
              ++completed;
            });
  }
  n.run_slots(1500);
  EXPECT_EQ(completed, 20);
  EXPECT_GT(ch.nacks_received(), 0);
  EXPECT_GT(ch.retransmissions(), 0);
  EXPECT_EQ(ch.transfers_failed(), 0);
  // Every NACK the channel saw is one the engine counted on the wire.
  EXPECT_GE(n.stats().faults.payload_nacks, ch.nacks_received());
  // With the CRC on, nothing reached an application as garbage (the
  // 2^-32 residual is unobservable at these sample sizes).
  EXPECT_EQ(n.stats().faults.payload_undetected, 0);
}

TEST(Reliable, HopelessTransferIsAbandonedEarly) {
  // Every attempt's payload is corrupted; with a deadline that covers
  // only a couple of attempts, the laxity budget must abandon the
  // transfer long before the attempt cap.
  net::Network n(cfg6_payload_crc());
  fault::FaultInjector inj(n);
  for (SlotIndex s = 0; s < 200; ++s) inj.schedule_payload_corruption(s, 0);
  ReliableChannel::Params p;
  p.max_attempts = 16;
  ReliableChannel ch(n, p);
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, n.timing().slot_plus_max_gap() * 6,
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(200);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.delivered);
  EXPECT_TRUE(result.abandoned);
  EXPECT_LT(result.attempts, p.max_attempts);
  EXPECT_EQ(ch.transfers_abandoned(), 1);
  EXPECT_EQ(ch.transfers_failed(), 1);
  EXPECT_GT(ch.nacks_received(), 0);
}

TEST(Reliable, FixedRetryBaselineBurnsAllAttempts) {
  // Same hopeless scenario with the budget off: the baseline keeps
  // resending until the attempt cap -- the contrast the laxity budget
  // exists to remove.
  net::Network n(cfg6_payload_crc());
  fault::FaultInjector inj(n);
  for (SlotIndex s = 0; s < 400; ++s) inj.schedule_payload_corruption(s, 0);
  ReliableChannel::Params p;
  p.laxity_budgeted = false;
  p.max_attempts = 5;
  ReliableChannel ch(n, p);
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, n.timing().slot_plus_max_gap() * 6,
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(400);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.delivered);
  EXPECT_FALSE(result.abandoned);
  EXPECT_EQ(result.attempts, 5);
  EXPECT_EQ(ch.transfers_abandoned(), 0);
  EXPECT_EQ(ch.transfers_failed(), 1);
}

TEST(Reliable, InfiniteDeadlineIsNeverAbandoned) {
  // The budget only bites when there IS a deadline.
  net::Network n(cfg6_payload_crc());
  fault::FaultInjector inj(n);
  for (SlotIndex s = 0; s < 400; ++s) inj.schedule_payload_corruption(s, 0);
  ReliableChannel::Params p;
  p.max_attempts = 4;
  ReliableChannel ch(n, p);
  ReliableChannel::TransferResult result;
  bool done = false;
  ch.send(0, 3, 1, Duration::infinity(),
          [&](const ReliableChannel::TransferResult& r) {
            result = r;
            done = true;
          });
  n.run_slots(400);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.abandoned);
  EXPECT_EQ(result.attempts, 4);  // the cap, not the budget, ended it
  EXPECT_EQ(ch.transfers_abandoned(), 0);
}

// -- deprecated synthetic-loss mode --------------------------------------

TEST(Reliable, DeprecatedLossProbabilityWarnsOnce) {
  net::Network n(cfg6());
  n.trace().enable(sim::TraceCategory::kService);
  n.trace().set_capture(true);
  ReliableChannel::Params p;
  p.loss_probability = 0.25;
  ReliableChannel ch(n, p);
  int warnings = 0;
  for (const auto& rec : n.trace().records()) {
    if (rec.text.find("deprecated") != std::string::npos) ++warnings;
  }
  EXPECT_EQ(warnings, 1);
}

TEST(Reliable, CleanParamsEmitNoDeprecationWarning) {
  net::Network n(cfg6());
  n.trace().enable(sim::TraceCategory::kService);
  n.trace().set_capture(true);
  ReliableChannel ch(n, ReliableChannel::Params{});
  for (const auto& rec : n.trace().records()) {
    EXPECT_EQ(rec.text.find("deprecated"), std::string::npos);
  }
}

}  // namespace
}  // namespace ccredf::services
