// services::ResilienceMonitor: failure detection from collection-phase
// heartbeat evidence, quarantine/reclamation exactness, staged
// re-admission pacing and back-off, false-positive self-heal, and the
// two churn interaction cases the PR's satellite demands -- a restore
// landing mid-token-loss-recovery and a master dying while the
// re-admission queue drains.
#include "services/resilience.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;
using sim::TimePoint;
using NodeState = ResilienceMonitor::NodeState;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

core::ConnectionParams rt(NodeId src, NodeId dst, std::int64_t size,
                          std::int64_t period) {
  core::ConnectionParams p;
  p.source = src;
  p.dests = NodeSet::single(dst);
  p.size_slots = size;
  p.period_slots = period;
  return p;
}

ResilienceParams fast_params(std::int64_t window = 8) {
  ResilienceParams rp;
  rp.detection_window_slots = window;
  rp.readmit_interval_slots = 1;
  rp.readmit_burst = 4;
  rp.backoff_slots = 4;
  rp.max_backoff_slots = 64;
  return rp;
}

TEST(Resilience, ParamsValidate) {
  EXPECT_NO_THROW(ResilienceParams{}.validate());
  ResilienceParams rp;
  rp.detection_window_slots = 1;
  EXPECT_THROW(rp.validate(), ConfigError);
  rp = ResilienceParams{};
  rp.suspect_window_slots = rp.detection_window_slots;
  EXPECT_THROW(rp.validate(), ConfigError);
  rp = ResilienceParams{};
  rp.readmit_burst = 0;
  EXPECT_THROW(rp.validate(), ConfigError);
  rp = ResilienceParams{};
  rp.max_backoff_slots = rp.backoff_slots - 1;
  EXPECT_THROW(rp.validate(), ConfigError);
}

TEST(Resilience, SecondMonitorIsRejected) {
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params());
  EXPECT_THROW(ResilienceMonitor(n, fast_params()), ConfigError);
}

TEST(Resilience, DetachesOnDestruction) {
  net::Network n(cfg6());
  {
    ResilienceMonitor m(n, fast_params());
    EXPECT_EQ(n.resilience_hook(), &m);
  }
  EXPECT_EQ(n.resilience_hook(), nullptr);
  // A fresh monitor can attach after the old one is gone.
  ResilienceMonitor m2(n, fast_params());
  EXPECT_EQ(n.resilience_hook(), &m2);
}

TEST(Resilience, DetectionWithinWindowPlusOne) {
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params(/*window=*/8));
  ASSERT_TRUE(n.fail_node(3));
  n.run_slots(30);
  EXPECT_EQ(m.state(3), NodeState::kDown);
  EXPECT_TRUE(m.is_down(3));
  EXPECT_EQ(m.stats().downs, 1);
  EXPECT_GE(m.stats().suspects, 1);  // passed through kSuspect on the way
  // Latency is miss count at declaration: first slot with miss > window,
  // i.e. exactly window + 1 when evidence flows every slot.
  EXPECT_EQ(m.stats().detection_latency_slots.max(), 9.0);
  // Everyone else stayed up the whole time.
  for (NodeId j = 0; j < 6; ++j) {
    if (j != 3) {
      EXPECT_EQ(m.state(j), NodeState::kUp) << "node " << j;
    }
  }
}

TEST(Resilience, HealthyRingNeverSuspects) {
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params());
  n.send_best_effort(1, NodeSet::single(4), 1, Duration::milliseconds(50));
  n.run_slots(200);
  EXPECT_EQ(m.stats().suspects, 0);
  EXPECT_EQ(m.stats().downs, 0);
  EXPECT_EQ(m.readmit_queue_depth(), 0u);
}

TEST(Resilience, QuarantineReleasesExactWeight) {
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params());
  const auto c1 = n.open_connection(rt(3, 1, 1, 20));
  const auto c2 = n.open_connection(rt(3, 5, 2, 40));
  core::CbsParams cp;
  cp.source = 3;
  cp.dests = NodeSet::single(0);
  cp.budget_slots = 2;
  cp.period_slots = 25;
  const auto s1 = n.open_cbs_server(cp);
  ASSERT_TRUE(c1.admitted && c2.admitted && s1.admitted);
  const auto survivor = n.open_connection(rt(1, 2, 1, 30));
  ASSERT_TRUE(survivor.admitted);

  const double u_before = n.admission().utilisation();
  const double expect_released = n.admission().weight(rt(3, 1, 1, 20)) +
                                 n.admission().weight(rt(3, 5, 2, 40)) +
                                 n.admission().weight(cp.admission_params());
  ASSERT_TRUE(n.fail_node(3));
  n.run_slots(20);

  EXPECT_EQ(m.stats().connections_quarantined, 2);
  EXPECT_EQ(m.stats().servers_quarantined, 1);
  EXPECT_DOUBLE_EQ(m.stats().weight_reclaimed, expect_released);
  EXPECT_DOUBLE_EQ(n.admission().utilisation(), u_before - expect_released);
  EXPECT_EQ(m.stats().reclaim_error, 0.0);
  EXPECT_EQ(m.readmit_queue_depth(), 3u);
  EXPECT_DOUBLE_EQ(m.quarantined_weight(), expect_released);
  EXPECT_TRUE(n.connections_of(3).empty());
  EXPECT_TRUE(n.cbs_servers_of(3).empty());
  // Quarantined ids map to "queued" until re-admission; survivors map to
  // themselves.
  EXPECT_EQ(m.current_incarnation(c1.id), kNoConnection);
  EXPECT_EQ(m.current_incarnation(s1.id), kNoConnection);
  EXPECT_EQ(m.current_incarnation(survivor.id), survivor.id);
}

TEST(Resilience, SurvivorAdmittedIntoFreedBandwidth) {
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params());
  // Saturate admission so the survivor's request must bounce, sourcing
  // the bulk of the load at node 4.
  const double u_max = n.admission().effective_u_max();
  const std::int64_t period = 100;
  const auto big = static_cast<std::int64_t>(u_max * period) - 1;
  ASSERT_GT(big, 1);
  ASSERT_TRUE(n.open_connection(rt(4, 2, big, period)).admitted);
  core::ConnectionParams want = rt(1, 5, big / 2, period);
  EXPECT_FALSE(n.open_connection(want).admitted);

  // Node 4 dies; its weight returns to the pool and the SAME request now
  // fits -- survivors reuse quarantined bandwidth immediately.
  ASSERT_TRUE(n.fail_node(4));
  n.run_slots(20);
  ASSERT_EQ(m.stats().downs, 1);
  EXPECT_GT(m.quarantined_weight(), 0.0);
  EXPECT_TRUE(n.open_connection(want).admitted);
}

TEST(Resilience, StagedReadmissionPacedByTokenBucket) {
  net::Network n(cfg6());
  ResilienceParams rp = fast_params();
  rp.readmit_interval_slots = 10;
  rp.readmit_burst = 1;
  ResilienceMonitor m(n, rp);
  for (NodeId d : {0u, 1u, 2u}) {
    ASSERT_TRUE(n.open_connection(rt(4, d, 1, 50)).admitted);
  }
  ASSERT_TRUE(n.fail_node(4));
  n.run_slots(20);
  ASSERT_EQ(m.readmit_queue_depth(), 3u);

  ASSERT_TRUE(n.restore_node(4));
  // Record the slot of every successful re-admission.
  std::vector<SlotIndex> drains;
  std::int64_t seen = m.stats().readmissions;
  for (int i = 0; i < 60 && m.readmit_queue_depth() > 0; ++i) {
    n.run_slots(1);
    if (m.stats().readmissions > seen) {
      drains.push_back(n.current_slot());
      seen = m.stats().readmissions;
    }
  }
  ASSERT_EQ(drains.size(), 3u);
  EXPECT_EQ(m.stats().readmit_attempts, 3);
  EXPECT_EQ(m.stats().readmit_rejections, 0);
  // One token per 10 slots, capacity 1: consecutive drains at least a
  // full refill interval apart -- no thundering herd.
  EXPECT_GE(drains[1] - drains[0], rp.readmit_interval_slots);
  EXPECT_GE(drains[2] - drains[1], rp.readmit_interval_slots);
  EXPECT_DOUBLE_EQ(m.quarantined_weight(), 0.0);
  EXPECT_EQ(n.connections_of(4).size(), 3u);
}

TEST(Resilience, RejectedReadmissionBacksOffThenLands) {
  net::Network n(cfg6());
  ResilienceParams rp = fast_params();
  rp.backoff_slots = 16;
  rp.max_backoff_slots = 256;
  ResilienceMonitor m(n, rp);
  const double u_max = n.admission().effective_u_max();
  const std::int64_t period = 100;
  const auto big = static_cast<std::int64_t>(u_max * period) - 1;
  const auto victim = n.open_connection(rt(5, 2, big, period));
  ASSERT_TRUE(victim.admitted);

  ASSERT_TRUE(n.fail_node(5));
  n.run_slots(20);
  ASSERT_EQ(m.readmit_queue_depth(), 1u);
  // A survivor takes the freed bandwidth before node 5 returns.
  const auto squatter = n.open_connection(rt(1, 3, big, period));
  ASSERT_TRUE(squatter.admitted);

  ASSERT_TRUE(n.restore_node(5));
  n.run_slots(10);
  // The attempt ran, bounced, and the entry is parked in back-off; the
  // bucket does NOT retry it every slot.
  EXPECT_GE(m.stats().readmit_rejections, 1);
  EXPECT_EQ(m.stats().readmissions, 0);
  const std::int64_t rejections_now = m.stats().readmit_rejections;
  n.run_slots(5);
  EXPECT_EQ(m.stats().readmit_rejections, rejections_now);  // backing off
  EXPECT_EQ(m.readmit_queue_depth(), 1u);

  // The squatter leaves; after the back-off expires the retry succeeds
  // and the incarnation chain points at the fresh id.
  ASSERT_TRUE(n.close_connection(squatter.id));
  n.run_slots(600);
  EXPECT_EQ(m.stats().readmissions, 1);
  EXPECT_EQ(m.readmit_queue_depth(), 0u);
  const ConnectionId successor = m.current_incarnation(victim.id);
  EXPECT_NE(successor, kNoConnection);
  EXPECT_NE(successor, victim.id);  // admission never reuses ids
  ASSERT_EQ(n.connections_of(5).size(), 1u);
  EXPECT_EQ(n.connections_of(5)[0].id, successor);
}

TEST(Resilience, FalsePositiveSelfHealsWithoutRestore) {
  // The node never fails -- a burst of dropped collection records just
  // makes it LOOK dead.  The monitor must declare it down (the evidence
  // is indistinguishable), then self-heal on the next heard record:
  // reappearance counted and its connection re-admitted with no
  // restore_node() anywhere.
  net::Network n(cfg6());
  ResilienceParams rp = fast_params(/*window=*/6);
  ResilienceMonitor m(n, rp);
  const auto c = n.open_connection(rt(2, 5, 1, 40));
  ASSERT_TRUE(c.admitted);
  fault::FaultInjector inj(n, /*seed=*/7);
  for (SlotIndex s = 1; s <= 7; ++s) inj.schedule_collection_drop(s, 2);

  n.run_slots(40);
  EXPECT_EQ(m.stats().downs, 1);
  EXPECT_EQ(m.stats().reappearances, 1);
  EXPECT_EQ(m.state(2), NodeState::kUp);
  EXPECT_EQ(m.stats().readmissions, 1);
  EXPECT_EQ(m.readmit_queue_depth(), 0u);
  EXPECT_DOUBLE_EQ(m.quarantined_weight(), 0.0);
  EXPECT_NE(m.current_incarnation(c.id), kNoConnection);
  EXPECT_TRUE(n.failed_nodes().empty());  // it really never failed
}

// -- satellite: churn x token-loss interaction cases ---------------------

TEST(Resilience, RestoreMidTokenLossRecoveryStaysClean) {
  // Node 0 is the initial master; it dies mid-slot (token lost) and is
  // restored BEFORE the restarter timeout elapses.  The outage is far
  // shorter than the detection window, so the monitor must ride through
  // it -- one recovery, zero declarations, node back to kUp -- and the
  // ring must carry traffic afterwards.
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 2;
  net::Network n(cfg);
  ResilienceMonitor m(n, fast_params(/*window=*/12));
  fault::FaultInjector inj(n);
  inj.schedule_node_failure(0, TimePoint::origin() + n.timing().slot() / 2);
  inj.schedule_node_restore(0, TimePoint::origin() + n.timing().slot() * 2);
  n.run_slots(30);
  EXPECT_EQ(n.recoveries(), 1);
  EXPECT_EQ(m.stats().downs, 0);
  EXPECT_EQ(m.stats().reappearances, 0);
  EXPECT_EQ(m.state(0), NodeState::kUp);
  n.send_best_effort(0, NodeSet::single(3), 1, Duration::milliseconds(5));
  n.run_slots(10);
  EXPECT_EQ(n.node(3).inbox().size(), 1u);
}

TEST(Resilience, MasterFailureDuringReadmitDrainRecoversAndDrains) {
  // Node 4 is declared down and restored, so its three connections sit
  // in the staged re-admission queue.  While the queue drains, the
  // CURRENT MASTER dies mid-slot: token loss, restarter recovery, a
  // second detection cycle -- and the drain must still complete for both
  // nodes once the dust settles.
  net::NetworkConfig cfg = cfg6();
  cfg.designated_restarter = 0;
  net::Network n(cfg);
  ResilienceParams rp = fast_params(/*window=*/6);
  rp.readmit_interval_slots = 20;  // slow drain: 3 entries take ~40 slots
  rp.readmit_burst = 1;
  ResilienceMonitor m(n, rp);
  fault::FaultInjector inj(n);
  for (NodeId d : {0u, 1u, 2u}) {
    ASSERT_TRUE(n.open_connection(rt(4, d, 1, 50)).admitted);
  }
  // Node 1 carries a tight periodic stream: mastership follows the
  // highest-priority requester, so node 1 holds the clock most slots --
  // making it the master we can kill on cue.
  ASSERT_TRUE(n.open_connection(rt(1, 3, 1, 3)).admitted);
  const double u_full = n.admission().utilisation();

  ASSERT_TRUE(n.fail_node(4));
  n.run_slots(15);
  ASSERT_EQ(m.stats().downs, 1);
  ASSERT_EQ(m.readmit_queue_depth(), 3u);
  ASSERT_TRUE(n.restore_node(4));
  // Let the drain start but not finish (1 token per 20 slots, 3 entries).
  n.run_slots(2);
  ASSERT_GT(m.readmit_queue_depth(), 0u);

  // Wait for node 1 to hold the clock, then kill it mid-slot: the token
  // dies with it while node 4's entries are still queued.
  int guard = 0;
  while (n.current_master() != 1 && guard++ < 100) n.run_slots(1);
  ASSERT_EQ(n.current_master(), 1u);
  ASSERT_GT(m.readmit_queue_depth(), 0u);
  const TimePoint now = n.sim().now();
  inj.schedule_node_failure(1, now + n.timing().slot() / 2);
  inj.schedule_node_restore(1, now + n.timing().slot() * 40);

  n.run_slots(400);
  EXPECT_GE(n.recoveries(), 1);
  // Both churn victims completed the loop: the master's death was
  // detected (second declaration, quarantining its stream too) and every
  // queued entry re-admitted once its owner reappeared.
  EXPECT_EQ(m.stats().downs, 2);
  EXPECT_EQ(m.stats().reappearances, 2);
  EXPECT_EQ(m.readmit_queue_depth(), 0u);
  EXPECT_EQ(m.stats().readmissions, m.stats().readmit_attempts -
                                        m.stats().readmit_rejections);
  EXPECT_EQ(n.connections_of(4).size(), 3u);
  EXPECT_EQ(n.connections_of(1).size(), 1u);
  EXPECT_EQ(m.state(1), NodeState::kUp);
  EXPECT_EQ(m.state(4), NodeState::kUp);
  EXPECT_DOUBLE_EQ(m.quarantined_weight(), 0.0);
  EXPECT_NEAR(n.admission().utilisation(), u_full, 1e-12);
}

}  // namespace
}  // namespace ccredf::services
