// The third quarantine kind (*segment-down*): a hard link cut closes
// exactly the cut-crossing connections/CBS servers with the same
// reclaim-exactness invariant as a node-death quarantine, derates the
// admission capacity to the surviving-region pair fraction, excuses the
// unreachable suffix from per-node miss accounting, and stages the
// parked entries back through the token bucket once the link splices.
#include "services/resilience.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/network.hpp"
#include "ring/segment.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;
using NodeState = ResilienceMonitor::NodeState;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

core::ConnectionParams rt(NodeId src, NodeId dst, std::int64_t size,
                          std::int64_t period) {
  core::ConnectionParams p;
  p.source = src;
  p.dests = NodeSet::single(dst);
  p.size_slots = size;
  p.period_slots = period;
  return p;
}

ResilienceParams fast_params(std::int64_t window = 8) {
  ResilienceParams rp;
  rp.detection_window_slots = window;
  rp.readmit_interval_slots = 1;
  rp.readmit_burst = 4;
  rp.backoff_slots = 4;
  rp.max_backoff_slots = 64;
  return rp;
}

/// Workload fixture around a cut of link 2: connections 0->1 (link 0)
/// and 4->5 (link 4) are cut-disjoint; 1->4 (links 1..3) and the CBS
/// server 1->3 (links 1..2) cross the cut.
struct Fixture {
  net::Network n{cfg6()};
  ResilienceMonitor m{n, fast_params()};
  ConnectionId disjoint_a, disjoint_b, crosser;
  ConnectionId cbs_crosser, cbs_disjoint;

  Fixture() {
    disjoint_a = open_rt(0, 1);
    crosser = open_rt(1, 4);
    disjoint_b = open_rt(4, 5);
    core::CbsParams cb;
    cb.budget_slots = 1;
    cb.period_slots = 25;
    cb.source = 1;
    cb.dests = NodeSet::single(3);
    cbs_crosser = open_cbs(cb);
    cb.source = 3;
    cb.dests = NodeSet::single(4);
    cbs_disjoint = open_cbs(cb);
  }
  ConnectionId open_rt(NodeId src, NodeId dst) {
    const auto r = n.open_connection(rt(src, dst, 1, 20));
    EXPECT_TRUE(r.admitted);
    return r.id;
  }
  ConnectionId open_cbs(const core::CbsParams& cb) {
    const auto r = n.open_cbs_server(cb);
    EXPECT_TRUE(r.admitted);
    return r.id;
  }
};

TEST(SegmentQuarantine, ClosesExactlyTheCrossersAndReclaimsTheirWeight) {
  Fixture f;
  const double u_before = f.n.admission().utilisation();
  ASSERT_TRUE(f.n.cut_link(2));
  f.n.run_slots(3);
  EXPECT_EQ(f.m.stats().segment_downs, 1);
  EXPECT_EQ(f.m.stats().segment_quarantines, 2);  // crosser + cbs_crosser
  EXPECT_EQ(f.n.stats().faults.segment_quarantines, 2);
  EXPECT_EQ(f.m.readmit_queue_depth(), 2u);
  // Exactly their Eq. 5/6 weight came back: 1/20 + 1/25.
  const double released = u_before - f.n.admission().utilisation();
  EXPECT_NEAR(released, 1.0 / 20 + 1.0 / 25, 1e-12);
  EXPECT_NEAR(f.m.quarantined_weight(), released, 1e-12);
  EXPECT_LE(f.m.stats().reclaim_error, 1e-9);
  // Node-death quarantine paths were never involved.
  EXPECT_EQ(f.m.stats().downs, 0);
  EXPECT_EQ(f.m.stats().connections_quarantined, 0);
  EXPECT_EQ(f.m.stats().servers_quarantined, 0);
}

TEST(SegmentQuarantine, SingleCutDeratesCapacityToHalfAndSpliceRestores) {
  Fixture f;
  const double u_max = f.n.admission().u_max();
  const std::int64_t renegs_before =
      f.n.stats().faults.admission_renegotiations;
  ASSERT_TRUE(f.n.cut_link(2));
  f.n.run_slots(3);
  // Surviving-region ordered-pair fraction: exactly 0.5 for any single
  // cut on any ring size (closed form, src/services/resilience.cpp).
  EXPECT_DOUBLE_EQ(f.n.admission().capacity_factor(), 0.5);
  EXPECT_DOUBLE_EQ(f.n.admission().effective_u_max(), 0.5 * u_max);
  EXPECT_EQ(f.n.stats().faults.admission_renegotiations, renegs_before + 1);
  ASSERT_TRUE(f.n.splice_link(2));
  f.n.run_slots(3);
  EXPECT_DOUBLE_EQ(f.n.admission().capacity_factor(), 1.0);
  EXPECT_DOUBLE_EQ(f.n.admission().effective_u_max(), u_max);
  EXPECT_EQ(f.n.stats().faults.admission_renegotiations, renegs_before + 2);
}

TEST(SegmentQuarantine, EntriesStayParkedWhileTheCutPersists) {
  Fixture f;
  ASSERT_TRUE(f.n.cut_link(2));
  f.n.run_slots(200);  // plenty of token-bucket refills
  EXPECT_EQ(f.m.readmit_queue_depth(), 2u);
  EXPECT_EQ(f.m.stats().readmit_attempts, 0);  // parked, never charged
  EXPECT_EQ(f.m.stats().readmissions, 0);
  EXPECT_EQ(f.m.current_incarnation(f.crosser), kNoConnection);
  // The cut-disjoint transfers were never touched.
  EXPECT_EQ(f.m.current_incarnation(f.disjoint_a), f.disjoint_a);
  EXPECT_EQ(f.m.current_incarnation(f.disjoint_b), f.disjoint_b);
  EXPECT_EQ(f.m.current_incarnation(f.cbs_disjoint), f.cbs_disjoint);
}

TEST(SegmentQuarantine, SpliceStagesReadmissionThroughTheTokenBucket) {
  Fixture f;
  ASSERT_TRUE(f.n.cut_link(2));
  f.n.run_slots(50);
  ASSERT_TRUE(f.n.splice_link(2));
  f.n.run_slots(50);
  EXPECT_EQ(f.m.stats().readmissions, 2);
  EXPECT_EQ(f.m.readmit_queue_depth(), 0u);
  EXPECT_NEAR(f.m.quarantined_weight(), 0.0, 1e-12);
  // Fresh incarnations (admission never reuses ids).
  const ConnectionId reborn = f.m.current_incarnation(f.crosser);
  EXPECT_NE(reborn, kNoConnection);
  EXPECT_NE(reborn, f.crosser);
  EXPECT_NE(f.m.current_incarnation(f.cbs_crosser), kNoConnection);
}

TEST(SegmentQuarantine, UnreachableSuffixIsExcusedNotSuspected) {
  // Ring-dark (two cuts) is the stress case: every slot's collection
  // truncates at reach 1 from the parked master, leaving nodes 2..5
  // unheard for the whole outage.  They are alive -- the classified
  // loss pattern (contiguous unreachable suffix) must be excused, not
  // escalate to suspects/downs like a node death's isolated gap.
  net::Network n(cfg6());
  ResilienceMonitor m(n, fast_params(/*window=*/4));
  ASSERT_TRUE(n.cut_link(1));
  ASSERT_TRUE(n.cut_link(3));
  n.run_slots(100);
  EXPECT_EQ(m.stats().suspects, 0);
  EXPECT_EQ(m.stats().downs, 0);
  for (NodeId j = 0; j < 6; ++j) {
    EXPECT_EQ(m.state(j), NodeState::kUp) << "node " << j;
  }
  // A REAL node death inside the reachable prefix still escalates:
  // node 1 is within reach of the parked master (node 0).
  ASSERT_TRUE(n.fail_node(1));
  n.run_slots(20);
  EXPECT_EQ(m.stats().downs, 1);
  EXPECT_TRUE(m.is_down(1));
}

TEST(SegmentQuarantine, CutDisjointConnectionsMissNothingAcrossTheCycle) {
  // The headline containment gate at unit-test scale: cut -> detect ->
  // quarantine -> splice -> re-admit, and the cut-disjoint connections
  // ride through with zero user misses.
  Fixture f;
  f.n.run_slots(100);
  ASSERT_TRUE(f.n.cut_link(2));
  f.n.run_slots(300);
  ASSERT_TRUE(f.n.splice_link(2));
  f.n.run_slots(300);
  EXPECT_EQ(f.m.stats().readmissions, 2);
  for (const ConnectionId id :
       {f.disjoint_a, f.disjoint_b}) {
    const auto& cs = f.n.connection_stats(id);
    EXPECT_GT(cs.delivered, 0) << "connection " << id;
    EXPECT_EQ(cs.user_misses, 0) << "connection " << id;
    EXPECT_EQ(cs.scheduling_misses, 0) << "connection " << id;
  }
}

}  // namespace
}  // namespace ccredf::services
