#include "services/admission_agent.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "fault/injector.hpp"

namespace ccredf::services {
namespace {

using core::ConnectionParams;
using core::TrafficClass;

net::NetworkConfig cfg8() {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

ConnectionParams conn(NodeId src, NodeId dst, std::int64_t e,
                      std::int64_t p) {
  ConnectionParams c;
  c.source = src;
  c.dests = NodeSet::single(dst);
  c.size_slots = e;
  c.period_slots = p;
  return c;
}

TEST(AdmissionAgent, NegotiationAdmitsOverBestEffort) {
  net::Network n(cfg8());
  AdmissionAgent agent(n, AdmissionAgent::Params{});
  bool done = false, admitted = false;
  ConnectionId id = kNoConnection;
  agent.request(3, conn(3, 6, 1, 20), [&](bool ok, ConnectionId cid) {
    done = true;
    admitted = ok;
    id = cid;
  });
  // The callback cannot fire before the request and reply messages have
  // crossed the ring (>= 2 slots each way is impossible in 1 slot).
  n.run_slots(1);
  EXPECT_FALSE(done);
  n.run_slots(20);
  ASSERT_TRUE(done);
  EXPECT_TRUE(admitted);
  EXPECT_NE(id, kNoConnection);
  EXPECT_EQ(agent.replies_delivered(), 1);
  // The connection then delivers periodically.
  n.run_slots(100);
  EXPECT_GT(n.stats().cls(TrafficClass::kRealTime).delivered, 2);
}

TEST(AdmissionAgent, RejectionAlsoNotified) {
  net::Network n(cfg8());
  AdmissionAgent agent(n, AdmissionAgent::Params{});
  // First, fill the budget directly.
  const double u_max = n.admission().u_max();
  const auto hog_period = static_cast<std::int64_t>(20.0 / (0.95 * u_max));
  ASSERT_TRUE(n.open_connection(conn(0, 4, 20, hog_period)).admitted);
  bool done = false, admitted = true;
  agent.request(2, conn(2, 5, 10, 40), [&](bool ok, ConnectionId) {
    done = true;
    admitted = ok;
  });
  n.run_slots(30);
  ASSERT_TRUE(done);
  EXPECT_FALSE(admitted);
}

TEST(AdmissionAgent, CoLocatedRequesterSkipsExchange) {
  net::NetworkConfig cfg = cfg8();
  net::Network n(cfg);
  AdmissionAgent agent(n, AdmissionAgent::Params{});  // admission node 0
  bool done = false;
  agent.request(0, conn(0, 4, 1, 20), [&](bool ok, ConnectionId) {
    done = true;
    EXPECT_TRUE(ok);
  });
  EXPECT_TRUE(done);  // immediate, no simulation needed
}

TEST(AdmissionAgent, NoReleaseBeforeNotification) {
  net::Network n(cfg8());
  AdmissionAgent::Params p;
  p.activation_margin_slots = 8;
  AdmissionAgent agent(n, p);
  sim::TimePoint notified = sim::TimePoint::infinity();
  agent.request(5, conn(5, 2, 1, 25), [&](bool ok, ConnectionId) {
    ASSERT_TRUE(ok);
    notified = n.sim().now();
  });
  sim::TimePoint first_rt_delivery = sim::TimePoint::infinity();
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    for (const auto& d : rec.deliveries) {
      if (d.traffic_class == TrafficClass::kRealTime &&
          first_rt_delivery == sim::TimePoint::infinity()) {
        first_rt_delivery = d.completed;
      }
    }
  });
  n.run_slots(100);
  ASSERT_LT(notified, sim::TimePoint::infinity());
  ASSERT_LT(first_rt_delivery, sim::TimePoint::infinity());
  EXPECT_LT(notified, first_rt_delivery);
}

TEST(AdmissionAgent, ManyConcurrentNegotiations) {
  net::Network n(cfg8());
  AdmissionAgent agent(n, AdmissionAgent::Params{});
  int done = 0, admitted = 0;
  for (NodeId r = 1; r < 8; ++r) {
    agent.request(r, conn(r, (r + 3) % 8, 1, 60),
                  [&](bool ok, ConnectionId) {
                    ++done;
                    if (ok) ++admitted;
                  });
  }
  n.run_slots(120);
  EXPECT_EQ(done, 7);
  EXPECT_EQ(admitted, 7);  // tiny utilisations: all fit
  EXPECT_EQ(agent.requests_sent(), 7);
}

TEST(AdmissionAgent, ValidatesConfig) {
  net::Network n(cfg8());
  AdmissionAgent::Params p;
  p.admission_node = 99;
  EXPECT_THROW(AdmissionAgent(n, p), ConfigError);
  p = AdmissionAgent::Params{};
  p.message_laxity_slots = 0;
  EXPECT_THROW(AdmissionAgent(n, p), ConfigError);
}

// -- health monitor: graceful degradation --------------------------------

net::NetworkConfig cfg8_payload_crc() {
  net::NetworkConfig cfg = cfg8();
  cfg.with_acks = true;
  cfg.with_payload_crc = true;
  return cfg;
}

void open_probe_traffic(net::Network& n) {
  // A few periodic connections so the monitor has transfers to observe.
  for (NodeId src = 0; src < 4; ++src) {
    ASSERT_TRUE(
        n.open_connection(conn(src, (src + 3) % 8, 1, 10)).admitted);
  }
}

TEST(AdmissionAgent, HealthMonitorDeratesUnderCorruptionAndRecovers) {
  net::Network n(cfg8_payload_crc());
  fault::FaultInjector inj(n, /*seed=*/23);
  inj.set_data_ber(2e-4);  // heavy corruption: most transfers are hit
  AdmissionAgent::Params p;
  p.health_window_slots = 300;
  p.derate_threshold = 0.005;
  AdmissionAgent agent(n, p);
  open_probe_traffic(n);
  n.run_slots(700);  // two complete windows

  EXPECT_GT(agent.observed_corruption_rate(), p.derate_threshold);
  EXPECT_LT(agent.capacity_factor(), 1.0);
  EXPECT_NEAR(agent.capacity_factor(),
              1.0 - agent.observed_corruption_rate(), 1e-12);
  EXPECT_GE(agent.renegotiations(), 1);
  // The factor is actually enforced on the controller, and the
  // renegotiations are mirrored into the network's fault accounting.
  EXPECT_DOUBLE_EQ(n.admission().capacity_factor(),
                   agent.capacity_factor());
  EXPECT_LT(n.admission().effective_u_max(), n.admission().u_max());
  EXPECT_EQ(n.stats().faults.admission_renegotiations,
            agent.renegotiations());
  // Per-link localisation: the sources of the probe traffic show a
  // non-zero corruption rate.
  double worst = 0.0;
  for (NodeId i = 0; i < 4; ++i) {
    worst = std::max(worst, agent.link_corruption_rate(i));
  }
  EXPECT_GT(worst, 0.0);

  // The channel heals: the factor recovers to 1 and admissions reopen.
  inj.set_data_ber(0.0);
  const std::int64_t renegs_before = agent.renegotiations();
  n.run_slots(700);
  EXPECT_DOUBLE_EQ(agent.capacity_factor(), 1.0);
  EXPECT_DOUBLE_EQ(n.admission().effective_u_max(), n.admission().u_max());
  EXPECT_GT(agent.renegotiations(), renegs_before);
}

TEST(AdmissionAgent, HealthMonitorOffByDefault) {
  // health_window_slots defaults to 0: corruption must not move the
  // admission bound unless the monitor was asked for.
  net::Network n(cfg8_payload_crc());
  fault::FaultInjector inj(n, /*seed=*/23);
  inj.set_data_ber(2e-4);
  AdmissionAgent agent(n, AdmissionAgent::Params{});
  open_probe_traffic(n);
  n.run_slots(700);
  EXPECT_DOUBLE_EQ(agent.capacity_factor(), 1.0);
  EXPECT_EQ(agent.renegotiations(), 0);
  EXPECT_DOUBLE_EQ(n.admission().effective_u_max(), n.admission().u_max());
  EXPECT_EQ(n.stats().faults.admission_renegotiations, 0);
  EXPECT_GT(n.stats().faults.payload_corruptions, 0);  // faults did occur
}

TEST(AdmissionAgent, HealthMonitorValidatesParams) {
  net::Network n(cfg8_payload_crc());
  AdmissionAgent::Params p;
  p.health_window_slots = -1;
  EXPECT_THROW(AdmissionAgent(n, p), ConfigError);
  p = AdmissionAgent::Params{};
  p.derate_threshold = -0.5;
  EXPECT_THROW(AdmissionAgent(n, p), ConfigError);
}

}  // namespace
}  // namespace ccredf::services
