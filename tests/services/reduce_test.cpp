#include "services/reduce.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::services {
namespace {

net::NetworkConfig cfg5() {
  net::NetworkConfig cfg;
  cfg.nodes = 5;
  return cfg;
}

TEST(ReduceOps, Semantics) {
  EXPECT_EQ(apply_reduce(ReduceOp::kSum, 3, 4), 7);
  EXPECT_EQ(apply_reduce(ReduceOp::kMin, 3, 4), 3);
  EXPECT_EQ(apply_reduce(ReduceOp::kMax, 3, 4), 4);
  EXPECT_EQ(apply_reduce(ReduceOp::kBitAnd, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(apply_reduce(ReduceOp::kBitOr, 0b1100, 0b1010), 0b1110);
}

TEST(ReduceOps, Identities) {
  for (const auto op : {ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax,
                        ReduceOp::kBitAnd, ReduceOp::kBitOr}) {
    for (const std::int64_t v : {-17L, 0L, 42L}) {
      EXPECT_EQ(apply_reduce(op, reduce_identity(op), v), v);
    }
  }
}

TEST(GlobalReduce, SumAcrossAllNodes) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  r.begin(n.topology().all_nodes(), ReduceOp::kSum);
  for (NodeId i = 0; i < 5; ++i) {
    r.contribute(i, static_cast<std::int64_t>(i) * 10);
  }
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), 0 + 10 + 20 + 30 + 40);
  EXPECT_EQ(r.rounds_completed(), 1);
}

TEST(GlobalReduce, MinAndMax) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  r.begin(n.topology().all_nodes(), ReduceOp::kMin);
  const std::int64_t vals[] = {7, -3, 12, 0, 5};
  for (NodeId i = 0; i < 5; ++i) r.contribute(i, vals[i]);
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), -3);

  r.begin(n.topology().all_nodes(), ReduceOp::kMax);
  for (NodeId i = 0; i < 5; ++i) r.contribute(i, vals[i]);
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), 12);
}

TEST(GlobalReduce, WaitsForStragglers) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  r.begin(n.topology().all_nodes(), ReduceOp::kSum);
  for (NodeId i = 0; i < 4; ++i) r.contribute(i, 1);
  n.run_slots(5);
  EXPECT_FALSE(r.complete());
  r.contribute(4, 1);
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), 5);
}

TEST(GlobalReduce, SubsetGroup) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  NodeSet group;
  group.insert(0);
  group.insert(2);
  r.begin(group, ReduceOp::kBitOr);
  r.contribute(0, 0b01);
  r.contribute(2, 0b10);
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), 0b11);
  EXPECT_THROW(r.contribute(1, 1), ConfigError);  // round over + non-member
}

TEST(GlobalReduce, DoubleContributeKeepsFirstValue) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  NodeSet group = NodeSet::single(0) | NodeSet::single(1);
  r.begin(group, ReduceOp::kSum);
  r.contribute(0, 5);
  r.contribute(0, 500);  // ignored
  r.contribute(1, 1);
  n.run_slots(3);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(*r.result(), 6);
}

TEST(GlobalReduce, CompletionAtSlotEnd) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  r.begin(n.topology().all_nodes(), ReduceOp::kSum);
  for (NodeId i = 0; i < 5; ++i) r.contribute(i, 1);
  n.run_slots(3);
  ASSERT_TRUE(r.completion_time().has_value());
  // Result known within two slot extents of the contributions.
  EXPECT_LE(*r.completion_time(), sim::TimePoint::origin() +
                                      2 * n.timing().slot_plus_max_gap());
}

TEST(GlobalReduce, BeginWhileActiveThrows) {
  net::Network n(cfg5());
  GlobalReduceService r(n);
  r.begin(n.topology().all_nodes(), ReduceOp::kSum);
  EXPECT_THROW(r.begin(n.topology().all_nodes(), ReduceOp::kSum),
               ConfigError);
}

}  // namespace
}  // namespace ccredf::services
