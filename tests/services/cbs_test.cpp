#include "services/cbs.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ccredf::services {
namespace {

net::NetworkConfig cfg8() {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

TEST(Jain, ClosedFormValues) {
  EXPECT_DOUBLE_EQ(CbsFlowSet::jain({}), 0.0);
  EXPECT_DOUBLE_EQ(CbsFlowSet::jain({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(CbsFlowSet::jain({5.0, 5.0, 5.0, 5.0}), 1.0);
  // One flow took everything: J = 1/n.
  EXPECT_DOUBLE_EQ(CbsFlowSet::jain({1.0, 0.0, 0.0, 0.0}), 0.25);
  // Two equal of four: J = (2x)^2 / (4 * 2x^2) = 0.5.
  EXPECT_DOUBLE_EQ(CbsFlowSet::jain({3.0, 3.0, 0.0, 0.0}), 0.5);
}

TEST(CbsFlowSet, AdmitsIdenticallyProvisionedPopulation) {
  net::Network n(cfg8());
  CbsFlowSetParams p;
  p.flows = 8;
  p.budget_slots = 2;
  p.period_slots = 100;
  CbsFlowSet flows(n, p);
  EXPECT_EQ(flows.admitted(), 8);
  EXPECT_EQ(flows.rejected(), 0);
  EXPECT_EQ(n.stats().cbs.servers_opened, 8);
  // Each server weighs Q/T in the admission set.
  EXPECT_NEAR(n.admission().utilisation(), 8 * 0.02, 1e-12);
  for (const ConnectionId id : flows.ids()) {
    ASSERT_NE(n.cbs_server(id), nullptr);
  }
}

TEST(CbsFlowSet, AdmissionRejectsBeyondEffectiveUMax) {
  net::Network n(cfg8());
  // Each server asks for half the ring: at most one fits under U_max
  // (< 1), the rest must be rejected by the same Eq. 5 test an RT
  // connection faces.
  CbsFlowSetParams p;
  p.flows = 8;
  p.budget_slots = 30;
  p.period_slots = 60;
  CbsFlowSet flows(n, p);
  EXPECT_GE(flows.admitted(), 1);
  EXPECT_LT(flows.admitted(), 8);
  EXPECT_EQ(flows.admitted() + flows.rejected(), 8);
  EXPECT_LE(n.admission().utilisation(),
            n.admission().effective_u_max() + 1e-12);
}

TEST(CbsFlowSet, DeratedCapacityShrinksThePopulation) {
  net::Network full(cfg8());
  net::Network derated(cfg8());
  // Graceful degradation: halving the capacity factor must shrink how
  // many identical servers fit.
  derated.admission().set_capacity_factor(0.05);
  CbsFlowSetParams p;
  p.flows = 8;
  p.budget_slots = 2;
  p.period_slots = 100;  // 0.02 each; 8 fit at full capacity
  CbsFlowSet a(full, p);
  CbsFlowSet b(derated, p);
  EXPECT_EQ(a.admitted(), 8);
  EXPECT_LT(b.admitted(), 8);
  EXPECT_GT(b.rejected(), 0);
}

TEST(CbsFlowSet, DeliversAndAccountsBytes) {
  net::Network n(cfg8());
  CbsFlowSetParams p;
  p.flows = 4;
  p.budget_slots = 2;
  p.period_slots = 20;
  CbsFlowSet flows(n, p);
  ASSERT_EQ(flows.admitted(), 4);
  for (std::size_t f = 0; f < 4; ++f) flows.send(f, 1);
  n.run_slots(200);
  std::int64_t delivered = 0;
  for (const ConnectionId id : flows.ids()) {
    delivered += n.connection_stats(id).delivered;
    EXPECT_GT(n.connection_stats(id).bytes, 0);
  }
  EXPECT_EQ(delivered, 4);
  // Equal single-job flows: perfectly fair shares.
  EXPECT_DOUBLE_EQ(flows.jain_index(), 1.0);
}

TEST(CbsFlowSet, CloseAllReleasesAdmission) {
  net::Network n(cfg8());
  CbsFlowSetParams p;
  p.flows = 6;
  CbsFlowSet flows(n, p);
  ASSERT_EQ(flows.admitted(), 6);
  const std::vector<ConnectionId> ids = flows.ids();
  flows.close_all();
  EXPECT_NEAR(n.admission().utilisation(), 0.0, 1e-12);
  for (const ConnectionId id : ids) {
    EXPECT_EQ(n.cbs_server(id), nullptr);
  }
  flows.close_all();  // idempotent
}

}  // namespace
}  // namespace ccredf::services
