#include "services/barrier.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::services {
namespace {

using sim::Duration;

net::NetworkConfig cfg6() {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  return cfg;
}

TEST(Barrier, CompletesWhenAllArrive) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(n.topology().all_nodes());
  for (NodeId i = 0; i < 6; ++i) b.arrive(i);
  EXPECT_FALSE(b.complete());
  n.run_slots(3);
  EXPECT_TRUE(b.complete());
  ASSERT_TRUE(b.completion_time().has_value());
  EXPECT_EQ(b.barriers_completed(), 1);
}

TEST(Barrier, IncompleteWithoutAllArrivals) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(n.topology().all_nodes());
  for (NodeId i = 0; i < 5; ++i) b.arrive(i);  // node 5 missing
  n.run_slots(10);
  EXPECT_FALSE(b.complete());
}

TEST(Barrier, LatencyWithinOneSlotExtentWhenAllPresent) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(n.topology().all_nodes());
  n.run_slots(2);  // let some slots pass first
  for (NodeId i = 0; i < 6; ++i) b.arrive(i);
  n.run_slots(3);
  ASSERT_TRUE(b.latency().has_value());
  // All flags are collected in the next collection phase: completion
  // within two slot extents of the last arrival.
  EXPECT_LE(*b.latency(), 2 * n.timing().slot_plus_max_gap());
}

TEST(Barrier, LateArrivalDelaysCompletion) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(n.topology().all_nodes());
  for (NodeId i = 0; i < 5; ++i) b.arrive(i);
  n.run_slots(5);
  EXPECT_FALSE(b.complete());
  b.arrive(5);
  n.run_slots(3);
  EXPECT_TRUE(b.complete());
}

TEST(Barrier, SubsetBarrier) {
  net::Network n(cfg6());
  BarrierService b(n);
  NodeSet group;
  group.insert(1);
  group.insert(3);
  b.begin(group);
  b.arrive(1);
  b.arrive(3);
  n.run_slots(3);
  EXPECT_TRUE(b.complete());
  EXPECT_THROW(b.arrive(0), ConfigError);  // after completion: no barrier
}

TEST(Barrier, NonParticipantRejected) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(NodeSet::single(1));
  EXPECT_THROW(b.arrive(2), ConfigError);
}

TEST(Barrier, SequentialRounds) {
  net::Network n(cfg6());
  BarrierService b(n);
  for (int round = 0; round < 3; ++round) {
    b.begin(n.topology().all_nodes());
    for (NodeId i = 0; i < 6; ++i) b.arrive(i);
    n.run_slots(3);
    ASSERT_TRUE(b.complete()) << "round " << round;
  }
  EXPECT_EQ(b.barriers_completed(), 3);
}

TEST(Barrier, CannotBeginWhileActive) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(n.topology().all_nodes());
  EXPECT_THROW(b.begin(n.topology().all_nodes()), ConfigError);
}

TEST(Barrier, DoubleArriveIsIdempotent) {
  net::Network n(cfg6());
  BarrierService b(n);
  b.begin(NodeSet::single(0) | NodeSet::single(1));
  b.arrive(0);
  b.arrive(0);
  n.run_slots(3);
  EXPECT_FALSE(b.complete());
  b.arrive(1);
  n.run_slots(3);
  EXPECT_TRUE(b.complete());
}

}  // namespace
}  // namespace ccredf::services
