#include "workload/periodic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/schedulability.hpp"

namespace ccredf::workload {
namespace {

TEST(UUniFast, SharesSumToTotal) {
  sim::Rng rng(1);
  for (const double total : {0.1, 0.5, 0.9}) {
    const auto u = uunifast(10, total, rng);
    double sum = 0.0;
    for (const double v : u) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, total, 1e-12);
  }
}

TEST(UUniFast, SingleShareGetsEverything) {
  sim::Rng rng(2);
  const auto u = uunifast(1, 0.42, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.42);
}

TEST(UUniFast, RejectsBadArgs) {
  sim::Rng rng(3);
  EXPECT_THROW((void)uunifast(0, 0.5, rng), ConfigError);
  EXPECT_THROW((void)uunifast(3, 0.0, rng), ConfigError);
}

TEST(PeriodicSet, ProducesRequestedCount) {
  PeriodicSetParams p;
  p.connections = 12;
  const auto set = make_periodic_set(p);
  EXPECT_EQ(set.size(), 12u);
}

TEST(PeriodicSet, AllConnectionsValid) {
  PeriodicSetParams p;
  p.connections = 30;
  p.total_utilisation = 0.6;
  p.seed = 9;
  for (const auto& c : make_periodic_set(p)) {
    EXPECT_NO_THROW(c.validate());
    EXPECT_GE(c.period_slots, p.min_period_slots);
    EXPECT_LE(c.period_slots, p.max_period_slots);
    EXPECT_LT(c.source, p.nodes);
    EXPECT_FALSE(c.dests.contains(c.source));
    EXPECT_GE(c.offset_slots, 0);
    EXPECT_LT(c.offset_slots, c.period_slots);
  }
}

TEST(PeriodicSet, UtilisationNearTarget) {
  PeriodicSetParams p;
  p.connections = 16;
  p.total_utilisation = 0.5;
  p.min_period_slots = 100;  // large periods keep rounding error small
  p.max_period_slots = 5000;
  const auto set = make_periodic_set(p);
  const double u = core::total_utilisation(set);
  EXPECT_NEAR(u, 0.5, 0.1);
}

TEST(PeriodicSet, DeterministicPerSeed) {
  PeriodicSetParams p;
  p.seed = 77;
  const auto a = make_periodic_set(p);
  const auto b = make_periodic_set(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].period_slots, b[i].period_slots);
    EXPECT_EQ(a[i].size_slots, b[i].size_slots);
  }
}

TEST(PeriodicSet, DifferentSeedsDiffer) {
  PeriodicSetParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  pa.connections = pb.connections = 10;
  const auto a = make_periodic_set(pa);
  const auto b = make_periodic_set(pb);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].period_slots == b[i].period_slots) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(PeriodicSet, MulticastFractionHonoured) {
  PeriodicSetParams p;
  p.connections = 40;
  p.multicast_fraction = 1.0;
  p.nodes = 8;
  p.seed = 5;
  int multi = 0;
  for (const auto& c : make_periodic_set(p)) {
    if (c.dests.size() > 1) ++multi;
  }
  EXPECT_GT(multi, 30);  // nearly all (bernoulli at p=1.0 is exact)
}

TEST(PeriodicSet, UnicastByDefault) {
  PeriodicSetParams p;
  p.connections = 20;
  for (const auto& c : make_periodic_set(p)) {
    EXPECT_EQ(c.dests.size(), 1);
  }
}

TEST(PeriodicSet, RejectsBadParams) {
  PeriodicSetParams p;
  p.nodes = 1;
  EXPECT_THROW((void)make_periodic_set(p), ConfigError);
  p = PeriodicSetParams{};
  p.min_period_slots = 100;
  p.max_period_slots = 10;
  EXPECT_THROW((void)make_periodic_set(p), ConfigError);
  p = PeriodicSetParams{};
  p.multicast_fraction = 1.5;
  EXPECT_THROW((void)make_periodic_set(p), ConfigError);
}

}  // namespace
}  // namespace ccredf::workload
