#include "workload/burst.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ccredf::workload {
namespace {

net::NetworkConfig cfg8() {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  return cfg;
}

TEST(Burst, GeneratesTrafficInBursts) {
  net::Network n(cfg8());
  BurstParams p;
  p.mean_idle_slots = 50.0;
  p.mean_burst_slots = 30.0;
  p.burst_rate = 1.0;
  p.seed = 5;
  BurstGenerator gen(n, p,
                     sim::TimePoint::origin() + n.timing().slot() * 4000);
  n.run_slots(4500);
  EXPECT_GT(gen.bursts_started(), 10);
  EXPECT_GT(gen.generated(), 100);
  EXPECT_GT(n.stats().cls(core::TrafficClass::kBestEffort).delivered, 50);
}

TEST(Burst, IdlePhasesProduceSilence) {
  // With enormous idle phases and the horizon inside the first one,
  // nothing is generated.
  net::Network n(cfg8());
  BurstParams p;
  p.mean_idle_slots = 1e7;
  p.seed = 1;
  BurstGenerator gen(n, p,
                     sim::TimePoint::origin() + n.timing().slot() * 100);
  n.run_slots(150);
  EXPECT_EQ(gen.generated(), 0);
}

TEST(Burst, BurstsTargetASinglePeer) {
  net::Network n(cfg8());
  BurstParams p;
  p.mean_idle_slots = 10.0;
  p.mean_burst_slots = 50.0;
  p.burst_rate = 2.0;
  p.seed = 9;
  BurstGenerator gen(n, p,
                     sim::TimePoint::origin() + n.timing().slot() * 500);
  n.run_slots(800);
  // Deliveries exist and every delivery's source differs from its dest
  // (sanity of the peer selection).
  std::int64_t seen = 0;
  for (NodeId i = 0; i < 8; ++i) {
    for (const auto& d : n.node(i).inbox()) {
      EXPECT_FALSE(d.dests.contains(d.source));
      ++seen;
    }
  }
  EXPECT_GT(seen, 0);
}

TEST(Burst, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    net::Network n(cfg8());
    BurstParams p;
    p.seed = seed;
    p.mean_idle_slots = 20.0;
    p.mean_burst_slots = 20.0;
    BurstGenerator gen(n, p,
                       sim::TimePoint::origin() + n.timing().slot() * 1000);
    n.run_slots(1200);
    return gen.generated();
  };
  EXPECT_EQ(run(4), run(4));
  EXPECT_NE(run(4), run(5));
}

TEST(Burst, RealTimeGuaranteeSurvivesBursts) {
  net::Network n(cfg8());
  core::ConnectionParams c;
  c.source = 0;
  c.dests = NodeSet::single(4);
  c.size_slots = 1;
  c.period_slots = 12;
  ASSERT_TRUE(n.open_connection(c).admitted);
  BurstParams p;
  p.mean_idle_slots = 20.0;
  p.mean_burst_slots = 60.0;
  p.burst_rate = 3.0;  // aggressive BE bursts
  p.seed = 13;
  BurstGenerator gen(n, p,
                     sim::TimePoint::origin() + n.timing().slot() * 3000);
  n.run_slots(3500);
  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 200);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(Burst, ValidatesParams) {
  net::Network n(cfg8());
  BurstParams p;
  p.burst_rate = 0.0;
  EXPECT_THROW(
      BurstGenerator(n, p, sim::TimePoint::origin()), ConfigError);
  p = BurstParams{};
  p.mean_idle_slots = -1.0;
  EXPECT_THROW(
      BurstGenerator(n, p, sim::TimePoint::origin()), ConfigError);
}

}  // namespace
}  // namespace ccredf::workload
