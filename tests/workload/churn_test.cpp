// workload::ChurnProcess: schedule determinism (per-node streams, node
// independence), horizon bounds, and end-to-end interaction with the
// resilience monitor under a real run.
#include "workload/churn.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "services/resilience.hpp"
#include "sim/time.hpp"

namespace ccredf::workload {
namespace {

using sim::Duration;
using sim::TimePoint;

net::NetworkConfig cfg(NodeId nodes = 6) {
  net::NetworkConfig c;
  c.nodes = nodes;
  return c;
}

ChurnParams quick_params(NodeSet nodes, std::uint64_t seed = 9) {
  ChurnParams p;
  p.nodes = nodes;
  p.mean_up_slots = 400.0;
  p.mean_down_slots = 100.0;
  p.seed = seed;
  return p;
}

TEST(Churn, ParamsValidate) {
  ChurnParams p = quick_params(NodeSet::single(3));
  EXPECT_NO_THROW(p.validate());
  p.nodes = NodeSet{};
  EXPECT_THROW(p.validate(), ConfigError);
  p = quick_params(NodeSet::single(3));
  p.mean_up_slots = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = quick_params(NodeSet::single(3));
  p.mean_down_slots = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Churn, SchedulesAlternatingFailRestorePairs) {
  net::Network n(cfg());
  fault::FaultInjector inj(n);
  const TimePoint until =
      TimePoint::origin() + n.timing().slot_plus_max_gap() * 5000;
  ChurnProcess churn(n, inj, quick_params(NodeSet::single(4)), until);
  // Alternation starts with a failure: restores never outnumber
  // failures, and can lag by at most one per node.
  EXPECT_GE(churn.failures_scheduled(), 1);
  EXPECT_LE(churn.restores_scheduled(), churn.failures_scheduled());
  EXPECT_GE(churn.restores_scheduled(), churn.failures_scheduled() - 1);
}

TEST(Churn, ScheduleIsAPureFunctionOfSeed) {
  // Two identical networks, same seed: identical event counts AND
  // identical observable failure trajectory (failed-set sampled per
  // slot).  A different seed must produce a different trajectory.
  const TimePoint until = TimePoint::origin() +
                          net::Network(cfg()).timing().slot_plus_max_gap() *
                              2000;
  auto trajectory = [&](std::uint64_t seed) {
    net::Network n(cfg());
    fault::FaultInjector inj(n);
    NodeSet set;
    set.insert(3);
    set.insert(5);
    ChurnProcess churn(n, inj, quick_params(set, seed), until);
    std::vector<std::uint64_t> masks;
    n.add_slot_observer([&](const net::SlotRecord&) {
      masks.push_back(n.failed_nodes().mask());
    });
    n.run_slots(2000);
    return masks;
  };
  const auto a = trajectory(9);
  const auto b = trajectory(9);
  const auto c = trajectory(10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Churn, NodeScheduleIndependentOfOtherChurnedNodes) {
  // Node 4's fail/restore instants come from its OWN stream: churning
  // node 2 alongside must not move a single one of node 4's events.
  const TimePoint until = TimePoint::origin() +
                          net::Network(cfg()).timing().slot_plus_max_gap() *
                              3000;
  auto node4_trajectory = [&](NodeSet set) {
    net::Network n(cfg());
    fault::FaultInjector inj(n);
    ChurnProcess churn(n, inj, quick_params(set), until);
    std::vector<bool> down4;
    n.add_slot_observer([&](const net::SlotRecord&) {
      down4.push_back(n.failed_nodes().contains(4));
    });
    n.run_slots(3000);
    return down4;
  };
  NodeSet solo = NodeSet::single(4);
  NodeSet pair = NodeSet::single(4);
  pair.insert(2);
  EXPECT_EQ(node4_trajectory(solo), node4_trajectory(pair));
}

TEST(Churn, NoEventsScheduledPastHorizon) {
  net::Network n(cfg());
  fault::FaultInjector inj(n);
  ChurnParams p = quick_params(NodeSet::single(3));
  p.mean_up_slots = 50.0;
  p.mean_down_slots = 20.0;
  const TimePoint until =
      TimePoint::origin() + n.timing().slot_plus_max_gap() * 1000;
  ChurnProcess churn(n, inj, p, until);
  ASSERT_GE(churn.failures_scheduled(), 2);
  // Run far past the horizon: the failed set must freeze once the last
  // pre-horizon event fires, and the frozen state must match the event
  // parity (equal counts => the node came back up; one extra failure =>
  // it stays down).
  std::vector<std::uint64_t> masks;
  n.add_slot_observer([&](const net::SlotRecord&) {
    masks.push_back(n.failed_nodes().mask());
  });
  n.run_slots(4000);
  ASSERT_EQ(masks.size(), 4000u);
  // Slot 3000 is safely past the 1000-extent horizon even though a
  // slot's wall time can undershoot the extent (gap <= max gap).
  for (std::size_t s = 3000; s < masks.size(); ++s) {
    ASSERT_EQ(masks[s], masks[3000 - 1]) << "event fired past horizon";
  }
  const bool down_at_end =
      churn.failures_scheduled() == churn.restores_scheduled() + 1;
  EXPECT_EQ(n.failed_nodes().contains(3), down_at_end);
}

TEST(Churn, DrivesResilienceLoopEndToEnd) {
  // Churn + monitor integration: a long-dwell churned node is detected,
  // quarantined and re-admitted repeatedly; counts stay consistent.
  net::Network n(cfg(8));
  fault::FaultInjector inj(n, /*seed=*/5);
  services::ResilienceParams rp;
  rp.detection_window_slots = 8;
  rp.readmit_interval_slots = 2;
  services::ResilienceMonitor monitor(n, rp);
  core::ConnectionParams cp;
  cp.source = 7;
  cp.dests = NodeSet::single(1);
  cp.size_slots = 1;
  cp.period_slots = 40;
  ASSERT_TRUE(n.open_connection(cp).admitted);

  ChurnParams p;
  p.nodes = NodeSet::single(7);
  p.mean_up_slots = 300.0;
  p.mean_down_slots = 150.0;  // far above the 8-slot detection window
  p.seed = 3;
  const TimePoint until =
      TimePoint::origin() + n.timing().slot_plus_max_gap() * 6000;
  ChurnProcess churn(n, inj, p, until);
  n.run_slots(8000);

  const auto& st = monitor.stats();
  EXPECT_GE(st.downs, 2);
  EXPECT_LE(st.downs, churn.failures_scheduled());
  EXPECT_GE(st.reappearances, st.downs - 1);  // last down may outlive run
  EXPECT_EQ(st.readmissions, st.connections_quarantined -
                                 static_cast<std::int64_t>(
                                     monitor.readmit_queue_depth()));
  EXPECT_LE(monitor.stats().detection_latency_slots.max(),
            static_cast<double>(rp.detection_window_slots + 1));
}

}  // namespace
}  // namespace ccredf::workload
