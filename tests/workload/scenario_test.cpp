#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/schedulability.hpp"
#include "net/network.hpp"
#include "workload/multimedia.hpp"
#include "workload/poisson.hpp"
#include "workload/radar.hpp"

namespace ccredf::workload {
namespace {

using core::TrafficClass;

TEST(Radar, ScenarioShape) {
  const RadarParams p;  // 3 beamformers, 2 Doppler banks
  const auto s = make_radar_scenario(p);
  // 1 frontend + 3*2 corner turns + 2 detections + 1 track = 10.
  EXPECT_EQ(s.connections.size(), 10u);
  EXPECT_EQ(s.labels.size(), 10u);
  EXPECT_EQ(s.nodes_required, 8u);  // 1 + 3 + 2 + 1 + 1
  EXPECT_GT(s.total_utilisation, 0.0);
}

TEST(Radar, FrontendMulticastsToAllBeamformers) {
  const auto s = make_radar_scenario(RadarParams{});
  const auto& frontend = s.connections.front();
  EXPECT_EQ(frontend.source, 0u);
  EXPECT_EQ(frontend.dests.size(), 3);
}

TEST(Radar, AllConnectionsValidateAndShareCpiPeriod) {
  const RadarParams p;
  for (const auto& c : make_radar_scenario(p).connections) {
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.period_slots, p.cpi_slots);
  }
}

TEST(Radar, ScalesWithStageCounts) {
  RadarParams p;
  p.beamformers = 5;
  p.doppler_banks = 4;
  const auto s = make_radar_scenario(p);
  EXPECT_EQ(s.connections.size(), 1u + 20u + 4u + 1u);
  EXPECT_EQ(s.nodes_required, 1u + 5u + 4u + 1u + 1u);
}

TEST(Radar, RejectsDegenerateConfig) {
  RadarParams p;
  p.beamformers = 0;
  EXPECT_THROW((void)make_radar_scenario(p), ConfigError);
}

TEST(Radar, WholeScenarioAdmitsAndMeetsDeadlines) {
  const auto s = make_radar_scenario(RadarParams{});
  net::NetworkConfig cfg;
  cfg.nodes = s.nodes_required;
  net::Network n(cfg);
  ASSERT_LT(s.total_utilisation, n.admission().u_max());
  for (const auto& c : s.connections) {
    EXPECT_TRUE(n.open_connection(c).admitted);
  }
  n.run_slots(4000);
  const auto& rt = n.stats().cls(TrafficClass::kRealTime);
  EXPECT_GT(rt.delivered, 20);
  EXPECT_EQ(rt.user_misses, 0);
}

TEST(Multimedia, ScenarioShape) {
  const MultimediaParams p;
  const auto s = make_multimedia_scenario(p);
  EXPECT_EQ(s.connections.size(),
            static_cast<std::size_t>(p.video_streams + p.audio_streams));
  for (const auto& c : s.connections) EXPECT_NO_THROW(c.validate());
  EXPECT_GT(s.total_utilisation, 0.0);
}

TEST(Multimedia, DeterministicPerSeed) {
  MultimediaParams p;
  p.seed = 4;
  const auto a = make_multimedia_scenario(p);
  const auto b = make_multimedia_scenario(p);
  for (std::size_t i = 0; i < a.connections.size(); ++i) {
    EXPECT_EQ(a.connections[i].source, b.connections[i].source);
  }
}

TEST(Multimedia, RejectsTooFewNodes) {
  MultimediaParams p;
  p.nodes = 2;
  EXPECT_THROW((void)make_multimedia_scenario(p), ConfigError);
}

TEST(Poisson, GeneratesTraffic) {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  net::Network n(cfg);
  PoissonParams p;
  p.rate_per_node = 0.1;
  PoissonGenerator gen(n, p,
                       sim::TimePoint::origin() + n.timing().slot() * 500);
  n.run_slots(600);
  EXPECT_GT(gen.generated(), 100);
  EXPECT_GT(n.stats().cls(TrafficClass::kBestEffort).delivered, 50);
}

TEST(Poisson, StopsAtHorizon) {
  net::NetworkConfig cfg;
  cfg.nodes = 6;
  net::Network n(cfg);
  PoissonParams p;
  p.rate_per_node = 0.2;
  PoissonGenerator gen(n, p,
                       sim::TimePoint::origin() + n.timing().slot() * 100);
  n.run_slots(400);
  const auto after_horizon = gen.generated();
  n.run_slots(200);
  EXPECT_EQ(gen.generated(), after_horizon);
}

TEST(Poisson, LocalityRestrictsDestinations) {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  net::Network n(cfg);
  std::vector<net::SlotRecord> recs;
  n.add_slot_observer([&](const net::SlotRecord& r) { recs.push_back(r); });
  PoissonParams p;
  p.rate_per_node = 0.3;
  p.locality_hops = 1;  // destination is always the next node downstream
  PoissonGenerator gen(n, p,
                       sim::TimePoint::origin() + n.timing().slot() * 200);
  n.run_slots(250);
  for (const auto& rec : recs) {
    for (NodeId i = 0; i < 8; ++i) {
      if (!rec.requests[i].wants_slot()) continue;
      EXPECT_EQ(rec.requests[i].dests.size(), 1);
      EXPECT_TRUE(rec.requests[i].dests.contains(
          n.topology().downstream(i)));
    }
  }
}

TEST(Poisson, NonRealTimeClassSupported) {
  net::NetworkConfig cfg;
  cfg.nodes = 4;
  net::Network n(cfg);
  PoissonParams p;
  p.rate_per_node = 0.1;
  p.traffic_class = core::TrafficClass::kNonRealTime;
  PoissonGenerator gen(n, p,
                       sim::TimePoint::origin() + n.timing().slot() * 200);
  n.run_slots(300);
  EXPECT_GT(n.stats().cls(TrafficClass::kNonRealTime).delivered, 10);
  EXPECT_EQ(n.stats().cls(TrafficClass::kBestEffort).delivered, 0);
}

TEST(Poisson, RejectsBadParams) {
  net::NetworkConfig cfg;
  cfg.nodes = 4;
  net::Network n(cfg);
  PoissonParams p;
  p.rate_per_node = 0.0;
  EXPECT_THROW(
      PoissonGenerator(n, p, sim::TimePoint::origin()), ConfigError);
}

}  // namespace
}  // namespace ccredf::workload
