#include "workload/aperiodic.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "net/network.hpp"
#include "services/cbs.hpp"

namespace ccredf::workload {
namespace {

net::NetworkConfig cfg8() {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  cfg.max_queue_messages = 256;
  return cfg;
}

services::CbsFlowSetParams flow_params() {
  services::CbsFlowSetParams p;
  p.flows = 8;
  p.budget_slots = 2;
  p.period_slots = 100;
  return p;
}

// Everything an aperiodic run can influence, as one comparable string.
std::string digest(net::Network& n, const services::CbsFlowSet& flows) {
  std::ostringstream os;
  const net::NetworkStats& s = n.stats();
  os << s.cbs.jobs << '/' << s.cbs.postponements << '/'
     << s.cbs.servers_opened << '|';
  for (const ConnectionId id : flows.ids()) {
    const net::ConnectionStats& c = n.connection_stats(id);
    os << c.released << ',' << c.delivered << ',' << c.bytes << ';';
  }
  return os.str();
}

TEST(AperiodicParams, ValidateRejectsBadShapes) {
  AperiodicParams p;
  p.rate_per_flow = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = AperiodicParams{};
  p.max_size_slots = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  // Burst modulation is all-or-nothing: one dwell alone is a config bug.
  p = AperiodicParams{};
  p.mean_burst_slots = 10.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = AperiodicParams{};
  p.mean_idle_slots = 10.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = AperiodicParams{};
  p.mean_idle_slots = 5.0;
  p.mean_burst_slots = 5.0;
  p.validate();  // both set is fine
}

TEST(AperiodicGenerator, PoissonRunsAreByteDeterministic) {
  std::string first;
  std::int64_t first_generated = 0;
  for (int rep = 0; rep < 2; ++rep) {
    net::Network n(cfg8());
    services::CbsFlowSet flows(n, flow_params());
    ASSERT_EQ(flows.admitted(), 8);
    AperiodicParams ap;
    ap.rate_per_flow = 0.1;
    ap.seed = 42;
    AperiodicGenerator gen(n, flows.ids(), ap,
                           sim::TimePoint::origin() +
                               n.timing().slot_plus_max_gap() * 2000);
    n.run_slots(2000);
    EXPECT_GT(gen.generated(), 0);
    if (rep == 0) {
      first = digest(n, flows);
      first_generated = gen.generated();
    } else {
      EXPECT_EQ(digest(n, flows), first);
      EXPECT_EQ(gen.generated(), first_generated);
    }
  }
}

TEST(AperiodicGenerator, BurstyModeGeneratesAndStaysDeterministic) {
  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    net::Network n(cfg8());
    services::CbsFlowSet flows(n, flow_params());
    ASSERT_EQ(flows.admitted(), 8);
    AperiodicParams ap;
    ap.rate_per_flow = 0.3;
    ap.mean_burst_slots = 40.0;
    ap.mean_idle_slots = 80.0;
    ap.seed = 7;
    AperiodicGenerator gen(n, flows.ids(), ap,
                           sim::TimePoint::origin() +
                               n.timing().slot_plus_max_gap() * 2000);
    n.run_slots(2000);
    EXPECT_GT(gen.generated(), 0);
    if (rep == 0) {
      first = digest(n, flows);
    } else {
      EXPECT_EQ(digest(n, flows), first);
    }
  }
}

TEST(AperiodicGenerator, SaturatingRatePostponesServers) {
  net::Network n(cfg8());
  services::CbsFlowSet flows(n, flow_params());
  ASSERT_EQ(flows.admitted(), 8);
  // 1 job per extent per flow against a 2/100 reservation: the budget
  // exhausts over and over, so the CBS rule must postpone rather than
  // let the backlog keep its stale deadline.
  AperiodicParams ap;
  ap.rate_per_flow = 1.0;
  ap.seed = 3;
  AperiodicGenerator gen(n, flows.ids(), ap,
                         sim::TimePoint::origin() +
                             n.timing().slot_plus_max_gap() * 1000);
  n.run_slots(1000);
  EXPECT_GT(gen.generated(), 100);
  EXPECT_GT(n.stats().cbs.postponements, 0);
  EXPECT_GT(n.stats().cbs.jobs, 0);
}

TEST(AperiodicGenerator, EmptyServerListIsANoOp) {
  net::Network n(cfg8());
  AperiodicParams ap;
  AperiodicGenerator gen(n, {}, ap,
                         sim::TimePoint::origin() +
                             n.timing().slot_plus_max_gap() * 100);
  n.run_slots(100);
  EXPECT_EQ(gen.generated(), 0);
  EXPECT_EQ(n.stats().cbs.jobs, 0);
}

}  // namespace
}  // namespace ccredf::workload
