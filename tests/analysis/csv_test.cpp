#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/report.hpp"

namespace ccredf::analysis {
namespace {

Table sample() {
  Table t("CSV Sample");
  t.columns({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("beta,gamma").cell(2.5, 1);
  t.row().cell("say \"hi\"").cell(std::int64_t{3});
  return t;
}

TEST(Csv, HeaderAndRows) {
  const std::string csv = sample().csv();
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1");
}

TEST(Csv, QuotesCommasAndQuotes) {
  const std::string csv = sample().csv();
  EXPECT_NE(csv.find("\"beta,gamma\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, ExportWritesFile) {
  const std::string path = ::testing::TempDir() + "/ccredf_csv_test.csv";
  ASSERT_TRUE(sample().export_csv(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "name,value");
  in.close();
  std::remove(path.c_str());
}

TEST(Csv, ExportToBadPathFails) {
  EXPECT_FALSE(sample().export_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(Csv, PrintHonoursResultsDirEnv) {
  const std::string dir = ::testing::TempDir();
  setenv("CCREDF_RESULTS_DIR", dir.c_str(), 1);
  std::ostringstream os;
  sample().print(os);
  unsetenv("CCREDF_RESULTS_DIR");
  const std::string path = dir + "/csv-sample.csv";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  in.close();
  std::remove(path.c_str());
}

TEST(Csv, NotesExcludedFromCsv) {
  Table t("N");
  t.columns({"v"});
  t.row().cell("x");
  t.note("a note");
  EXPECT_EQ(t.csv().find("a note"), std::string::npos);
}

}  // namespace
}  // namespace ccredf::analysis
