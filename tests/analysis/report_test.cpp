#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace ccredf::analysis {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t("Demo");
  t.columns({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("beta").cell(2.5, 1);
  const std::string out = t.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t("Align");
  t.columns({"a", "b"});
  t.row().cell("longvalue").cell("x");
  t.row().cell("s").cell("y");
  std::istringstream in(t.str());
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);  // header
  std::string sep;
  std::getline(in, sep);  // separator
  std::string r1, r2;
  std::getline(in, r1);
  std::getline(in, r2);
  EXPECT_EQ(r1.size(), r2.size());  // fixed-width columns
}

TEST(Table, PercentFormatting) {
  Table t("P");
  t.columns({"v"});
  t.row().pct(0.12345, 2);
  EXPECT_NE(t.str().find("12.35%"), std::string::npos);
}

TEST(Table, NotesInterleaved) {
  Table t("N");
  t.columns({"v"});
  t.row().cell("first");
  t.note("after first");
  t.row().cell("second");
  const std::string out = t.str();
  const auto first = out.find("first");
  const auto note = out.find("# after first");
  const auto second = out.find("second");
  EXPECT_LT(first, note);
  EXPECT_LT(note, second);
}

TEST(Table, RowBeforeColumnsThrows) {
  Table t("X");
  EXPECT_THROW((void)t.row(), ConfigError);
}

TEST(Table, DoubleColumnsThrows) {
  Table t("X");
  t.columns({"a"});
  EXPECT_THROW(t.columns({"b"}), ConfigError);
}

TEST(Table, RowCount) {
  Table t("C");
  t.columns({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatSi, ScalesUnits) {
  EXPECT_NE(format_si(3.2e9, "bit/s").find("G"), std::string::npos);
  EXPECT_NE(format_si(5.0e6, "bit/s").find("M"), std::string::npos);
  EXPECT_NE(format_si(7.0e3, "B").find("k"), std::string::npos);
  EXPECT_EQ(format_si(42.0, "B").find("k"), std::string::npos);
}

}  // namespace
}  // namespace ccredf::analysis
