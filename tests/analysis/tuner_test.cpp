#include "analysis/tuner.hpp"

#include <gtest/gtest.h>

namespace ccredf::analysis {
namespace {

using sim::Duration;

phy::RingPhy ring8() { return phy::RingPhy(phy::optobus(), 8, 10.0); }
core::FrameCodec codec8() {
  return core::FrameCodec(8, core::PriorityLayout{}, false);
}

TEST(Tuner, MinLegalPayloadCoversBothConstraints) {
  const auto ring = ring8();
  const auto codec = codec8();
  const auto min = min_legal_payload(ring, codec);
  EXPECT_GE(min, core::SlotTiming::min_payload_bytes(ring));
  EXPECT_GE(min, codec.collection_bits() + codec.distribution_bits());
  EXPECT_NO_THROW(core::SlotTiming(ring, min));
}

TEST(Tuner, FrameBitsDominateOnShortRings) {
  // 4 nodes, 5 m: Eq. 2 minimum is 48 B but the collection packet alone
  // is 53 bits + distribution 7 -> 60 ticks; frame budget wins... compute
  // dynamically to stay robust.
  const phy::RingPhy ring(phy::optobus(), 4, 5.0);
  const core::FrameCodec codec(4, core::PriorityLayout{}, false);
  const auto eq2 = core::SlotTiming::min_payload_bytes(ring);
  const auto frames = codec.collection_bits() + codec.distribution_bits();
  EXPECT_GT(frames, eq2);
  EXPECT_EQ(min_legal_payload(ring, codec), frames);
}

TEST(Tuner, PropagationDominatesOnLongRings) {
  const phy::RingPhy ring(phy::optobus(), 8, 100.0);
  const core::FrameCodec codec(8, core::PriorityLayout{}, false);
  EXPECT_EQ(min_legal_payload(ring, codec),
            core::SlotTiming::min_payload_bytes(ring));
}

TEST(Tuner, MeetsLatencyTarget) {
  const auto ring = ring8();
  const auto codec = codec8();
  const auto t = tune_slot_size(ring, codec, Duration::microseconds(10));
  ASSERT_TRUE(t.feasible);
  EXPECT_LE(t.worst_case_latency, Duration::microseconds(10));
  EXPECT_GT(t.u_max, 0.0);
}

TEST(Tuner, PicksLargestFeasiblePayload) {
  // One more byte must break the target.
  const auto ring = ring8();
  const auto codec = codec8();
  const auto target = Duration::microseconds(5);
  const auto t = tune_slot_size(ring, codec, target);
  ASSERT_TRUE(t.feasible);
  const core::SlotTiming bigger(ring, t.payload_bytes + 1);
  EXPECT_GT(bigger.worst_case_latency(), target);
}

TEST(Tuner, TighterTargetMeansSmallerSlotAndLowerUmax) {
  const auto ring = ring8();
  const auto codec = codec8();
  const auto loose = tune_slot_size(ring, codec, Duration::microseconds(50));
  const auto tight = tune_slot_size(ring, codec, Duration::microseconds(3));
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(loose.payload_bytes, tight.payload_bytes);
  EXPECT_GT(loose.u_max, tight.u_max);
}

TEST(Tuner, InfeasibleTargetReported) {
  const auto ring = ring8();
  const auto codec = codec8();
  // The minimum slot alone already costs ~2*min_payload bit times.
  const auto t = tune_slot_size(ring, codec, Duration::nanoseconds(100));
  EXPECT_FALSE(t.feasible);
  EXPECT_EQ(t.payload_bytes, min_legal_payload(ring, codec));
  EXPECT_GT(t.worst_case_latency, Duration::nanoseconds(100));
}

TEST(Tuner, ResultConsistentWithSlotTiming) {
  const auto ring = ring8();
  const auto codec = codec8();
  const auto t = tune_slot_size(ring, codec, Duration::microseconds(20));
  const core::SlotTiming check(ring, t.payload_bytes);
  EXPECT_EQ(t.slot, check.slot());
  EXPECT_DOUBLE_EQ(t.u_max, check.u_max());
  EXPECT_EQ(t.worst_case_latency, check.worst_case_latency());
}

}  // namespace
}  // namespace ccredf::analysis
