# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_radar_pipeline]=] "/root/repo/build/examples/radar_pipeline")
set_tests_properties([=[example_radar_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multimedia_lan]=] "/root/repo/build/examples/multimedia_lan")
set_tests_properties([=[example_multimedia_lan]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_parallel_computing]=] "/root/repo/build/examples/parallel_computing")
set_tests_properties([=[example_parallel_computing]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_admission_control]=] "/root/repo/build/examples/admission_control")
set_tests_properties([=[example_admission_control]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_fault_tolerance]=] "/root/repo/build/examples/fault_tolerance")
set_tests_properties([=[example_fault_tolerance]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_network_explorer]=] "/root/repo/build/examples/network_explorer")
set_tests_properties([=[example_network_explorer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;ccredf_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_network_explorer_flags]=] "/root/repo/build/examples/network_explorer" "--nodes" "10" "--protocol" "tdma" "--load" "0.3" "--slots" "500" "--seed" "2")
set_tests_properties([=[example_network_explorer_flags]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
