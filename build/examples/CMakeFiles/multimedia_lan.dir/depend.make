# Empty dependencies file for multimedia_lan.
# This may be replaced when dependencies are built.
