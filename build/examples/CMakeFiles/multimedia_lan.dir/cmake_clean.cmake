file(REMOVE_RECURSE
  "CMakeFiles/multimedia_lan.dir/multimedia_lan.cpp.o"
  "CMakeFiles/multimedia_lan.dir/multimedia_lan.cpp.o.d"
  "multimedia_lan"
  "multimedia_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
