# Empty dependencies file for parallel_computing.
# This may be replaced when dependencies are built.
