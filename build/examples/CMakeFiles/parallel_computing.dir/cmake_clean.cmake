file(REMOVE_RECURSE
  "CMakeFiles/parallel_computing.dir/parallel_computing.cpp.o"
  "CMakeFiles/parallel_computing.dir/parallel_computing.cpp.o.d"
  "parallel_computing"
  "parallel_computing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_computing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
