file(REMOVE_RECURSE
  "CMakeFiles/network_explorer.dir/network_explorer.cpp.o"
  "CMakeFiles/network_explorer.dir/network_explorer.cpp.o.d"
  "network_explorer"
  "network_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
