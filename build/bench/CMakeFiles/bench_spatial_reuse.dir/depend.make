# Empty dependencies file for bench_spatial_reuse.
# This may be replaced when dependencies are built.
