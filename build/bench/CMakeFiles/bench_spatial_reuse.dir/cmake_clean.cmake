file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_reuse.dir/bench_spatial_reuse.cpp.o"
  "CMakeFiles/bench_spatial_reuse.dir/bench_spatial_reuse.cpp.o.d"
  "bench_spatial_reuse"
  "bench_spatial_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
