# Empty compiler generated dependencies file for bench_radar_scenario.
# This may be replaced when dependencies are built.
