file(REMOVE_RECURSE
  "CMakeFiles/bench_radar_scenario.dir/bench_radar_scenario.cpp.o"
  "CMakeFiles/bench_radar_scenario.dir/bench_radar_scenario.cpp.o.d"
  "bench_radar_scenario"
  "bench_radar_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radar_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
