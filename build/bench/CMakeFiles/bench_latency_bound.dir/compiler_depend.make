# Empty compiler generated dependencies file for bench_latency_bound.
# This may be replaced when dependencies are built.
