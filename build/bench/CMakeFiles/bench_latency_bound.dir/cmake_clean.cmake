file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_bound.dir/bench_latency_bound.cpp.o"
  "CMakeFiles/bench_latency_bound.dir/bench_latency_bound.cpp.o.d"
  "bench_latency_bound"
  "bench_latency_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
