file(REMOVE_RECURSE
  "CMakeFiles/bench_edf_vs_ccfpr.dir/bench_edf_vs_ccfpr.cpp.o"
  "CMakeFiles/bench_edf_vs_ccfpr.dir/bench_edf_vs_ccfpr.cpp.o.d"
  "bench_edf_vs_ccfpr"
  "bench_edf_vs_ccfpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edf_vs_ccfpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
