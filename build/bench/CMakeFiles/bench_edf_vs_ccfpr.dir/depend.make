# Empty dependencies file for bench_edf_vs_ccfpr.
# This may be replaced when dependencies are built.
