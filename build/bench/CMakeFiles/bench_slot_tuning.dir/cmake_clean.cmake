file(REMOVE_RECURSE
  "CMakeFiles/bench_slot_tuning.dir/bench_slot_tuning.cpp.o"
  "CMakeFiles/bench_slot_tuning.dir/bench_slot_tuning.cpp.o.d"
  "bench_slot_tuning"
  "bench_slot_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slot_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
