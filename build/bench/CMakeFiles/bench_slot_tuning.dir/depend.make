# Empty dependencies file for bench_slot_tuning.
# This may be replaced when dependencies are built.
