file(REMOVE_RECURSE
  "CMakeFiles/bench_services.dir/bench_services.cpp.o"
  "CMakeFiles/bench_services.dir/bench_services.cpp.o.d"
  "bench_services"
  "bench_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
