# Empty dependencies file for bench_umax.
# This may be replaced when dependencies are built.
