file(REMOVE_RECURSE
  "CMakeFiles/bench_umax.dir/bench_umax.cpp.o"
  "CMakeFiles/bench_umax.dir/bench_umax.cpp.o.d"
  "bench_umax"
  "bench_umax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_umax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
