file(REMOVE_RECURSE
  "CMakeFiles/bench_priority_mapping.dir/bench_priority_mapping.cpp.o"
  "CMakeFiles/bench_priority_mapping.dir/bench_priority_mapping.cpp.o.d"
  "bench_priority_mapping"
  "bench_priority_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
