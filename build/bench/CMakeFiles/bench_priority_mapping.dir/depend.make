# Empty dependencies file for bench_priority_mapping.
# This may be replaced when dependencies are built.
