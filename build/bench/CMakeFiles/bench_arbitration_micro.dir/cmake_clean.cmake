file(REMOVE_RECURSE
  "CMakeFiles/bench_arbitration_micro.dir/bench_arbitration_micro.cpp.o"
  "CMakeFiles/bench_arbitration_micro.dir/bench_arbitration_micro.cpp.o.d"
  "bench_arbitration_micro"
  "bench_arbitration_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arbitration_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
