# Empty dependencies file for bench_arbitration_micro.
# This may be replaced when dependencies are built.
