# Empty dependencies file for bench_slot_timing.
# This may be replaced when dependencies are built.
