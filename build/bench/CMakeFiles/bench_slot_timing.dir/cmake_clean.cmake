file(REMOVE_RECURSE
  "CMakeFiles/bench_slot_timing.dir/bench_slot_timing.cpp.o"
  "CMakeFiles/bench_slot_timing.dir/bench_slot_timing.cpp.o.d"
  "bench_slot_timing"
  "bench_slot_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slot_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
