# Empty compiler generated dependencies file for bench_reuse_gain.
# This may be replaced when dependencies are built.
