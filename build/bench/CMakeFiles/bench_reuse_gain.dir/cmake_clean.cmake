file(REMOVE_RECURSE
  "CMakeFiles/bench_reuse_gain.dir/bench_reuse_gain.cpp.o"
  "CMakeFiles/bench_reuse_gain.dir/bench_reuse_gain.cpp.o.d"
  "bench_reuse_gain"
  "bench_reuse_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
