file(REMOVE_RECURSE
  "CMakeFiles/connection_stats_test.dir/net/connection_stats_test.cpp.o"
  "CMakeFiles/connection_stats_test.dir/net/connection_stats_test.cpp.o.d"
  "connection_stats_test"
  "connection_stats_test.pdb"
  "connection_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
