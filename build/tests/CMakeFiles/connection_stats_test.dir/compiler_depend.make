# Empty compiler generated dependencies file for connection_stats_test.
# This may be replaced when dependencies are built.
