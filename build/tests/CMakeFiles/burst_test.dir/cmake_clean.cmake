file(REMOVE_RECURSE
  "CMakeFiles/burst_test.dir/workload/burst_test.cpp.o"
  "CMakeFiles/burst_test.dir/workload/burst_test.cpp.o.d"
  "burst_test"
  "burst_test.pdb"
  "burst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
