file(REMOVE_RECURSE
  "CMakeFiles/multimedia_run_test.dir/integration/multimedia_run_test.cpp.o"
  "CMakeFiles/multimedia_run_test.dir/integration/multimedia_run_test.cpp.o.d"
  "multimedia_run_test"
  "multimedia_run_test.pdb"
  "multimedia_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
