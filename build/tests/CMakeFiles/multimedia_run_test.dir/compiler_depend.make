# Empty compiler generated dependencies file for multimedia_run_test.
# This may be replaced when dependencies are built.
