file(REMOVE_RECURSE
  "CMakeFiles/arbitration_test.dir/core/arbitration_test.cpp.o"
  "CMakeFiles/arbitration_test.dir/core/arbitration_test.cpp.o.d"
  "arbitration_test"
  "arbitration_test.pdb"
  "arbitration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
