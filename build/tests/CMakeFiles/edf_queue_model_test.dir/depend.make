# Empty dependencies file for edf_queue_model_test.
# This may be replaced when dependencies are built.
