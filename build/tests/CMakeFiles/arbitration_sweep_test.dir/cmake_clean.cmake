file(REMOVE_RECURSE
  "CMakeFiles/arbitration_sweep_test.dir/core/arbitration_sweep_test.cpp.o"
  "CMakeFiles/arbitration_sweep_test.dir/core/arbitration_sweep_test.cpp.o.d"
  "arbitration_sweep_test"
  "arbitration_sweep_test.pdb"
  "arbitration_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitration_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
