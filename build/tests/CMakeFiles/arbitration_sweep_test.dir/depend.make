# Empty dependencies file for arbitration_sweep_test.
# This may be replaced when dependencies are built.
