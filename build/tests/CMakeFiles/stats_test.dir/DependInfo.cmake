
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/stats_test.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/sim/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/ccredf_services.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ccredf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ccredf_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ccredf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccredf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ccredf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccredf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ccredf_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccredf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ccredf_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccredf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
