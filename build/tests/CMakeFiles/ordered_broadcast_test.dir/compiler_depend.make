# Empty compiler generated dependencies file for ordered_broadcast_test.
# This may be replaced when dependencies are built.
