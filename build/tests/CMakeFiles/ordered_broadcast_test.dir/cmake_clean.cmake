file(REMOVE_RECURSE
  "CMakeFiles/ordered_broadcast_test.dir/services/ordered_broadcast_test.cpp.o"
  "CMakeFiles/ordered_broadcast_test.dir/services/ordered_broadcast_test.cpp.o.d"
  "ordered_broadcast_test"
  "ordered_broadcast_test.pdb"
  "ordered_broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
