file(REMOVE_RECURSE
  "CMakeFiles/net_stats_test.dir/net/net_stats_test.cpp.o"
  "CMakeFiles/net_stats_test.dir/net/net_stats_test.cpp.o.d"
  "net_stats_test"
  "net_stats_test.pdb"
  "net_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
