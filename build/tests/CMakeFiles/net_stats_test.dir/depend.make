# Empty dependencies file for net_stats_test.
# This may be replaced when dependencies are built.
