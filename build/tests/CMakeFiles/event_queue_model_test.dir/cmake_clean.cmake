file(REMOVE_RECURSE
  "CMakeFiles/event_queue_model_test.dir/sim/event_queue_model_test.cpp.o"
  "CMakeFiles/event_queue_model_test.dir/sim/event_queue_model_test.cpp.o.d"
  "event_queue_model_test"
  "event_queue_model_test.pdb"
  "event_queue_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_queue_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
