# Empty compiler generated dependencies file for slot_chain_test.
# This may be replaced when dependencies are built.
