file(REMOVE_RECURSE
  "CMakeFiles/slot_chain_test.dir/integration/slot_chain_test.cpp.o"
  "CMakeFiles/slot_chain_test.dir/integration/slot_chain_test.cpp.o.d"
  "slot_chain_test"
  "slot_chain_test.pdb"
  "slot_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
