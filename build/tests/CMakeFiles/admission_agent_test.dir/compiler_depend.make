# Empty compiler generated dependencies file for admission_agent_test.
# This may be replaced when dependencies are built.
