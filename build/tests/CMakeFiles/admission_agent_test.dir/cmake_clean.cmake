file(REMOVE_RECURSE
  "CMakeFiles/admission_agent_test.dir/services/admission_agent_test.cpp.o"
  "CMakeFiles/admission_agent_test.dir/services/admission_agent_test.cpp.o.d"
  "admission_agent_test"
  "admission_agent_test.pdb"
  "admission_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
