file(REMOVE_RECURSE
  "CMakeFiles/messaging_test.dir/services/messaging_test.cpp.o"
  "CMakeFiles/messaging_test.dir/services/messaging_test.cpp.o.d"
  "messaging_test"
  "messaging_test.pdb"
  "messaging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
