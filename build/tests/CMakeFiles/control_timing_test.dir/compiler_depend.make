# Empty compiler generated dependencies file for control_timing_test.
# This may be replaced when dependencies are built.
