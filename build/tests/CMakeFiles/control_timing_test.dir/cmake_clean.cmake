file(REMOVE_RECURSE
  "CMakeFiles/control_timing_test.dir/core/control_timing_test.cpp.o"
  "CMakeFiles/control_timing_test.dir/core/control_timing_test.cpp.o.d"
  "control_timing_test"
  "control_timing_test.pdb"
  "control_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
