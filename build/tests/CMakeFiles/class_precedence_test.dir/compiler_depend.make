# Empty compiler generated dependencies file for class_precedence_test.
# This may be replaced when dependencies are built.
