file(REMOVE_RECURSE
  "CMakeFiles/class_precedence_test.dir/integration/class_precedence_test.cpp.o"
  "CMakeFiles/class_precedence_test.dir/integration/class_precedence_test.cpp.o.d"
  "class_precedence_test"
  "class_precedence_test.pdb"
  "class_precedence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_precedence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
