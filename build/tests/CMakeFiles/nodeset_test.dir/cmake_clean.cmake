file(REMOVE_RECURSE
  "CMakeFiles/nodeset_test.dir/ring/nodeset_test.cpp.o"
  "CMakeFiles/nodeset_test.dir/ring/nodeset_test.cpp.o.d"
  "nodeset_test"
  "nodeset_test.pdb"
  "nodeset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodeset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
