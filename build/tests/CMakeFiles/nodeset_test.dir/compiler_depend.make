# Empty compiler generated dependencies file for nodeset_test.
# This may be replaced when dependencies are built.
