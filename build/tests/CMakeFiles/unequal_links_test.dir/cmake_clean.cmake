file(REMOVE_RECURSE
  "CMakeFiles/unequal_links_test.dir/net/unequal_links_test.cpp.o"
  "CMakeFiles/unequal_links_test.dir/net/unequal_links_test.cpp.o.d"
  "unequal_links_test"
  "unequal_links_test.pdb"
  "unequal_links_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unequal_links_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
