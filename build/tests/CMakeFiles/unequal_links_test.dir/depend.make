# Empty dependencies file for unequal_links_test.
# This may be replaced when dependencies are built.
