file(REMOVE_RECURSE
  "CMakeFiles/ccfpr_test.dir/baseline/ccfpr_test.cpp.o"
  "CMakeFiles/ccfpr_test.dir/baseline/ccfpr_test.cpp.o.d"
  "ccfpr_test"
  "ccfpr_test.pdb"
  "ccfpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
