# Empty dependencies file for ccfpr_test.
# This may be replaced when dependencies are built.
