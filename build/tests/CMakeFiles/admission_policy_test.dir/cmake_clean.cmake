file(REMOVE_RECURSE
  "CMakeFiles/admission_policy_test.dir/core/admission_policy_test.cpp.o"
  "CMakeFiles/admission_policy_test.dir/core/admission_policy_test.cpp.o.d"
  "admission_policy_test"
  "admission_policy_test.pdb"
  "admission_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
