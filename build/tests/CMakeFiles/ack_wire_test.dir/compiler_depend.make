# Empty compiler generated dependencies file for ack_wire_test.
# This may be replaced when dependencies are built.
