file(REMOVE_RECURSE
  "CMakeFiles/ack_wire_test.dir/net/ack_wire_test.cpp.o"
  "CMakeFiles/ack_wire_test.dir/net/ack_wire_test.cpp.o.d"
  "ack_wire_test"
  "ack_wire_test.pdb"
  "ack_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ack_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
