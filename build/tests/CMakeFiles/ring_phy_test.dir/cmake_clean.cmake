file(REMOVE_RECURSE
  "CMakeFiles/ring_phy_test.dir/phy/ring_phy_test.cpp.o"
  "CMakeFiles/ring_phy_test.dir/phy/ring_phy_test.cpp.o.d"
  "ring_phy_test"
  "ring_phy_test.pdb"
  "ring_phy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_phy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
