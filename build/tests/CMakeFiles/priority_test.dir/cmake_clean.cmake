file(REMOVE_RECURSE
  "CMakeFiles/priority_test.dir/core/priority_test.cpp.o"
  "CMakeFiles/priority_test.dir/core/priority_test.cpp.o.d"
  "priority_test"
  "priority_test.pdb"
  "priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
