file(REMOVE_RECURSE
  "CMakeFiles/edf_queue_test.dir/core/edf_queue_test.cpp.o"
  "CMakeFiles/edf_queue_test.dir/core/edf_queue_test.cpp.o.d"
  "edf_queue_test"
  "edf_queue_test.pdb"
  "edf_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
