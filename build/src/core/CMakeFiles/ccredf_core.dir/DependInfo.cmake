
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/ccredf_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/arbitration.cpp" "src/core/CMakeFiles/ccredf_core.dir/arbitration.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/arbitration.cpp.o.d"
  "/root/repo/src/core/edf_queue.cpp" "src/core/CMakeFiles/ccredf_core.dir/edf_queue.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/edf_queue.cpp.o.d"
  "/root/repo/src/core/frames.cpp" "src/core/CMakeFiles/ccredf_core.dir/frames.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/frames.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/core/CMakeFiles/ccredf_core.dir/priority.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/priority.cpp.o.d"
  "/root/repo/src/core/schedulability.cpp" "src/core/CMakeFiles/ccredf_core.dir/schedulability.cpp.o" "gcc" "src/core/CMakeFiles/ccredf_core.dir/schedulability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccredf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccredf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ccredf_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ccredf_ring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
