# Empty compiler generated dependencies file for ccredf_core.
# This may be replaced when dependencies are built.
