file(REMOVE_RECURSE
  "libccredf_core.a"
)
