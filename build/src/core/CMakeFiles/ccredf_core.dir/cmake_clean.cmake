file(REMOVE_RECURSE
  "CMakeFiles/ccredf_core.dir/admission.cpp.o"
  "CMakeFiles/ccredf_core.dir/admission.cpp.o.d"
  "CMakeFiles/ccredf_core.dir/arbitration.cpp.o"
  "CMakeFiles/ccredf_core.dir/arbitration.cpp.o.d"
  "CMakeFiles/ccredf_core.dir/edf_queue.cpp.o"
  "CMakeFiles/ccredf_core.dir/edf_queue.cpp.o.d"
  "CMakeFiles/ccredf_core.dir/frames.cpp.o"
  "CMakeFiles/ccredf_core.dir/frames.cpp.o.d"
  "CMakeFiles/ccredf_core.dir/priority.cpp.o"
  "CMakeFiles/ccredf_core.dir/priority.cpp.o.d"
  "CMakeFiles/ccredf_core.dir/schedulability.cpp.o"
  "CMakeFiles/ccredf_core.dir/schedulability.cpp.o.d"
  "libccredf_core.a"
  "libccredf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
