file(REMOVE_RECURSE
  "libccredf_services.a"
)
