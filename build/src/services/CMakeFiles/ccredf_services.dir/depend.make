# Empty dependencies file for ccredf_services.
# This may be replaced when dependencies are built.
