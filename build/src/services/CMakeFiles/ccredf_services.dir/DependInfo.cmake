
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/admission_agent.cpp" "src/services/CMakeFiles/ccredf_services.dir/admission_agent.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/admission_agent.cpp.o.d"
  "/root/repo/src/services/barrier.cpp" "src/services/CMakeFiles/ccredf_services.dir/barrier.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/barrier.cpp.o.d"
  "/root/repo/src/services/flow.cpp" "src/services/CMakeFiles/ccredf_services.dir/flow.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/flow.cpp.o.d"
  "/root/repo/src/services/messaging.cpp" "src/services/CMakeFiles/ccredf_services.dir/messaging.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/messaging.cpp.o.d"
  "/root/repo/src/services/ordered_broadcast.cpp" "src/services/CMakeFiles/ccredf_services.dir/ordered_broadcast.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/ordered_broadcast.cpp.o.d"
  "/root/repo/src/services/reduce.cpp" "src/services/CMakeFiles/ccredf_services.dir/reduce.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/reduce.cpp.o.d"
  "/root/repo/src/services/reliable.cpp" "src/services/CMakeFiles/ccredf_services.dir/reliable.cpp.o" "gcc" "src/services/CMakeFiles/ccredf_services.dir/reliable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ccredf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccredf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ccredf_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ccredf_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccredf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccredf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
