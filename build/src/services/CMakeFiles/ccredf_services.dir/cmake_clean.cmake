file(REMOVE_RECURSE
  "CMakeFiles/ccredf_services.dir/admission_agent.cpp.o"
  "CMakeFiles/ccredf_services.dir/admission_agent.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/barrier.cpp.o"
  "CMakeFiles/ccredf_services.dir/barrier.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/flow.cpp.o"
  "CMakeFiles/ccredf_services.dir/flow.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/messaging.cpp.o"
  "CMakeFiles/ccredf_services.dir/messaging.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/ordered_broadcast.cpp.o"
  "CMakeFiles/ccredf_services.dir/ordered_broadcast.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/reduce.cpp.o"
  "CMakeFiles/ccredf_services.dir/reduce.cpp.o.d"
  "CMakeFiles/ccredf_services.dir/reliable.cpp.o"
  "CMakeFiles/ccredf_services.dir/reliable.cpp.o.d"
  "libccredf_services.a"
  "libccredf_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
