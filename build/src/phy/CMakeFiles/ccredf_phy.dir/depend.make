# Empty dependencies file for ccredf_phy.
# This may be replaced when dependencies are built.
