file(REMOVE_RECURSE
  "CMakeFiles/ccredf_phy.dir/ring_phy.cpp.o"
  "CMakeFiles/ccredf_phy.dir/ring_phy.cpp.o.d"
  "libccredf_phy.a"
  "libccredf_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
