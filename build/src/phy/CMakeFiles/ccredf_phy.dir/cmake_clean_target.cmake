file(REMOVE_RECURSE
  "libccredf_phy.a"
)
