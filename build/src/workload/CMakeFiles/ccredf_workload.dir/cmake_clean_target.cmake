file(REMOVE_RECURSE
  "libccredf_workload.a"
)
