# Empty dependencies file for ccredf_workload.
# This may be replaced when dependencies are built.
