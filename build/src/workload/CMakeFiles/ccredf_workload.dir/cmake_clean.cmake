file(REMOVE_RECURSE
  "CMakeFiles/ccredf_workload.dir/burst.cpp.o"
  "CMakeFiles/ccredf_workload.dir/burst.cpp.o.d"
  "CMakeFiles/ccredf_workload.dir/multimedia.cpp.o"
  "CMakeFiles/ccredf_workload.dir/multimedia.cpp.o.d"
  "CMakeFiles/ccredf_workload.dir/periodic.cpp.o"
  "CMakeFiles/ccredf_workload.dir/periodic.cpp.o.d"
  "CMakeFiles/ccredf_workload.dir/poisson.cpp.o"
  "CMakeFiles/ccredf_workload.dir/poisson.cpp.o.d"
  "CMakeFiles/ccredf_workload.dir/radar.cpp.o"
  "CMakeFiles/ccredf_workload.dir/radar.cpp.o.d"
  "libccredf_workload.a"
  "libccredf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
