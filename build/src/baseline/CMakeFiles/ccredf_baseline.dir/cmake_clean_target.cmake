file(REMOVE_RECURSE
  "libccredf_baseline.a"
)
