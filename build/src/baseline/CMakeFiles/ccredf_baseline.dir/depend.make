# Empty dependencies file for ccredf_baseline.
# This may be replaced when dependencies are built.
