file(REMOVE_RECURSE
  "CMakeFiles/ccredf_baseline.dir/ccfpr.cpp.o"
  "CMakeFiles/ccredf_baseline.dir/ccfpr.cpp.o.d"
  "CMakeFiles/ccredf_baseline.dir/tdma.cpp.o"
  "CMakeFiles/ccredf_baseline.dir/tdma.cpp.o.d"
  "libccredf_baseline.a"
  "libccredf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
