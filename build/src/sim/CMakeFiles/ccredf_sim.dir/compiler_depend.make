# Empty compiler generated dependencies file for ccredf_sim.
# This may be replaced when dependencies are built.
