file(REMOVE_RECURSE
  "CMakeFiles/ccredf_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ccredf_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ccredf_sim.dir/rng.cpp.o"
  "CMakeFiles/ccredf_sim.dir/rng.cpp.o.d"
  "CMakeFiles/ccredf_sim.dir/simulator.cpp.o"
  "CMakeFiles/ccredf_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ccredf_sim.dir/stats.cpp.o"
  "CMakeFiles/ccredf_sim.dir/stats.cpp.o.d"
  "CMakeFiles/ccredf_sim.dir/time.cpp.o"
  "CMakeFiles/ccredf_sim.dir/time.cpp.o.d"
  "CMakeFiles/ccredf_sim.dir/trace.cpp.o"
  "CMakeFiles/ccredf_sim.dir/trace.cpp.o.d"
  "libccredf_sim.a"
  "libccredf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
