file(REMOVE_RECURSE
  "libccredf_sim.a"
)
