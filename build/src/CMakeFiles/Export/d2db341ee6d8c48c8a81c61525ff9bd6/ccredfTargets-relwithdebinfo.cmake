#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ccredf::ccredf_common" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_common.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_common )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_common "${_IMPORT_PREFIX}/lib/libccredf_common.a" )

# Import target "ccredf::ccredf_sim" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_sim.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_sim )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_sim "${_IMPORT_PREFIX}/lib/libccredf_sim.a" )

# Import target "ccredf::ccredf_phy" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_phy APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_phy PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_phy.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_phy )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_phy "${_IMPORT_PREFIX}/lib/libccredf_phy.a" )

# Import target "ccredf::ccredf_ring" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_ring APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_ring PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_ring.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_ring )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_ring "${_IMPORT_PREFIX}/lib/libccredf_ring.a" )

# Import target "ccredf::ccredf_core" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_core.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_core )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_core "${_IMPORT_PREFIX}/lib/libccredf_core.a" )

# Import target "ccredf::ccredf_net" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_net.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_net )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_net "${_IMPORT_PREFIX}/lib/libccredf_net.a" )

# Import target "ccredf::ccredf_services" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_services APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_services PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_services.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_services )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_services "${_IMPORT_PREFIX}/lib/libccredf_services.a" )

# Import target "ccredf::ccredf_baseline" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_baseline APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_baseline PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_baseline.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_baseline )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_baseline "${_IMPORT_PREFIX}/lib/libccredf_baseline.a" )

# Import target "ccredf::ccredf_fault" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_fault APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_fault PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_fault.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_fault )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_fault "${_IMPORT_PREFIX}/lib/libccredf_fault.a" )

# Import target "ccredf::ccredf_workload" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_workload.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_workload )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_workload "${_IMPORT_PREFIX}/lib/libccredf_workload.a" )

# Import target "ccredf::ccredf_analysis" for configuration "RelWithDebInfo"
set_property(TARGET ccredf::ccredf_analysis APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ccredf::ccredf_analysis PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libccredf_analysis.a"
  )

list(APPEND _cmake_import_check_targets ccredf::ccredf_analysis )
list(APPEND _cmake_import_check_files_for_ccredf::ccredf_analysis "${_IMPORT_PREFIX}/lib/libccredf_analysis.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
