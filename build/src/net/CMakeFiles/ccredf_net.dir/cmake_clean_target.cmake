file(REMOVE_RECURSE
  "libccredf_net.a"
)
