# Empty compiler generated dependencies file for ccredf_net.
# This may be replaced when dependencies are built.
