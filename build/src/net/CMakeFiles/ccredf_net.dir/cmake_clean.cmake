file(REMOVE_RECURSE
  "CMakeFiles/ccredf_net.dir/network.cpp.o"
  "CMakeFiles/ccredf_net.dir/network.cpp.o.d"
  "libccredf_net.a"
  "libccredf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
