file(REMOVE_RECURSE
  "CMakeFiles/ccredf_analysis.dir/report.cpp.o"
  "CMakeFiles/ccredf_analysis.dir/report.cpp.o.d"
  "CMakeFiles/ccredf_analysis.dir/tuner.cpp.o"
  "CMakeFiles/ccredf_analysis.dir/tuner.cpp.o.d"
  "libccredf_analysis.a"
  "libccredf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
