# Empty dependencies file for ccredf_analysis.
# This may be replaced when dependencies are built.
