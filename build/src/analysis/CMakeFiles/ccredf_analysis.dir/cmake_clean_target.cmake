file(REMOVE_RECURSE
  "libccredf_analysis.a"
)
