# Empty compiler generated dependencies file for ccredf_common.
# This may be replaced when dependencies are built.
