file(REMOVE_RECURSE
  "libccredf_common.a"
)
