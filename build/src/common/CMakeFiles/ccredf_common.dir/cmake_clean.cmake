file(REMOVE_RECURSE
  "CMakeFiles/ccredf_common.dir/error.cpp.o"
  "CMakeFiles/ccredf_common.dir/error.cpp.o.d"
  "libccredf_common.a"
  "libccredf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
