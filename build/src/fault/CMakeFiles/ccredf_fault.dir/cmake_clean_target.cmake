file(REMOVE_RECURSE
  "libccredf_fault.a"
)
