file(REMOVE_RECURSE
  "CMakeFiles/ccredf_fault.dir/injector.cpp.o"
  "CMakeFiles/ccredf_fault.dir/injector.cpp.o.d"
  "libccredf_fault.a"
  "libccredf_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
