# Empty compiler generated dependencies file for ccredf_fault.
# This may be replaced when dependencies are built.
