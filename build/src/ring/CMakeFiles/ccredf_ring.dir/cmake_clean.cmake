file(REMOVE_RECURSE
  "CMakeFiles/ccredf_ring.dir/segment.cpp.o"
  "CMakeFiles/ccredf_ring.dir/segment.cpp.o.d"
  "libccredf_ring.a"
  "libccredf_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccredf_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
