# Empty dependencies file for ccredf_ring.
# This may be replaced when dependencies are built.
