file(REMOVE_RECURSE
  "libccredf_ring.a"
)
