// Radar signal-processing pipeline on a CCR-EDF ring -- the paper's
// motivating embedded application (§1, refs [1][2]).
//
// Front end -> beamformers -> (corner turn) -> Doppler banks -> CFAR
// detector -> tracker, every stage a guaranteed periodic connection with
// deadline = period = one coherent processing interval.
//
//   $ ./examples/radar_pipeline
#include <iostream>

#include "analysis/report.hpp"
#include "net/network.hpp"
#include "workload/radar.hpp"

using namespace ccredf;

int main() {
  workload::RadarParams radar;
  radar.beamformers = 3;
  radar.doppler_banks = 2;
  radar.cpi_slots = 600;
  const auto scenario = workload::make_radar_scenario(radar);

  net::NetworkConfig cfg;
  cfg.nodes = scenario.nodes_required;
  net::Network network(cfg);

  std::cout << "Radar pipeline on " << network.nodes()
            << "-node CCR-EDF ring\n"
            << "  scenario utilisation: " << scenario.total_utilisation
            << "  (U_max " << network.timing().u_max() << ")\n\n";

  analysis::Table setup("Connection set (one CPI = 600 slots)");
  setup.columns({"connection", "src", "dests", "e (slots)", "P (slots)",
                 "admitted"});
  for (std::size_t i = 0; i < scenario.connections.size(); ++i) {
    const auto& c = scenario.connections[i];
    const auto open = network.open_connection(c);
    setup.row()
        .cell(scenario.labels[i])
        .cell(static_cast<std::int64_t>(c.source))
        .cell(c.dests.size())
        .cell(c.size_slots)
        .cell(c.period_slots)
        .cell(open.admitted ? "yes" : "NO");
  }
  setup.print(std::cout);

  // Run 20 coherent processing intervals.
  network.run_slots(20 * radar.cpi_slots);

  const auto& rt = network.stats().cls(core::TrafficClass::kRealTime);
  std::cout << "\nAfter 20 CPIs:\n"
            << "  messages delivered:   " << rt.delivered << "\n"
            << "  user-deadline misses: " << rt.user_misses
            << "  (guarantee: 0)\n"
            << "  mean latency:         " << rt.latency.mean() / 1e6
            << " us\n"
            << "  spatial-reuse slots:  " << network.stats().reuse_slots
            << " of " << network.stats().busy_slots << " busy slots\n"
            << "  goodput:              "
            << analysis::format_si(network.stats().goodput_bps(), "bit/s")
            << "\n";
  return rt.user_misses == 0 ? 0 : 1;
}
