// Fault tolerance (the paper's §8 future work, implemented): clock-token
// loss recovered by the designated restarter's timeout, and a fail-silent
// node that is bypassed while traffic between live nodes continues.
//
//   $ ./examples/fault_tolerance
#include <iostream>

#include "fault/injector.hpp"
#include "net/network.hpp"

using namespace ccredf;

int main() {
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  cfg.designated_restarter = 0;
  cfg.recovery_timeout_slots = 4;
  net::Network network(cfg);
  fault::FaultInjector inject(network, /*seed=*/3);

  // Steady periodic traffic between live nodes.
  core::ConnectionParams c;
  c.source = 1;
  c.dests = NodeSet::single(5);
  c.size_slots = 1;
  c.period_slots = 10;
  if (!network.open_connection(c).admitted) return 1;

  // Inject: token losses at slots 50 and 51 (back to back), node 3 dies
  // at slot ~100 and comes back at ~200.
  inject.schedule_token_loss(50);
  inject.schedule_token_loss(51);
  const auto slot = network.timing().slot();
  inject.schedule_node_failure(3, sim::TimePoint::origin() + slot * 100);
  inject.schedule_node_restore(3, sim::TimePoint::origin() + slot * 200);

  std::int64_t lost_slots = 0;
  network.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.token_lost) {
      std::cout << "slot " << rec.index
                << ": distribution packet lost -> designated node "
                << rec.next_master << " restarts after timeout ("
                << rec.gap_after.us() << " us)\n";
      ++lost_slots;
    }
  });

  network.run_slots(400);

  const auto& rt = network.stats().cls(core::TrafficClass::kRealTime);
  std::cout << "\nafter 400 slots:\n"
            << "  token losses injected: " << inject.token_losses_injected()
            << ", recoveries: " << network.recoveries() << "\n"
            << "  wall time lost to recovery: "
            << network.recovery_time().us() << " us\n"
            << "  RT delivered: " << rt.delivered
            << ", scheduling misses (from recovery stalls): "
            << rt.scheduling_misses << "\n";
  std::cout << "  connection 1->5 kept running through node 3's failure "
            << "(optical bypass keeps the ring closed)\n";
  return network.recoveries() == inject.token_losses_injected() ? 0 : 1;
}
