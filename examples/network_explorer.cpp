// Command-line network explorer: run any configuration without writing
// code.  The seventh example doubles as the "downstream user" tool.
//
//   $ ./examples/network_explorer --nodes 16 --protocol ccfpr
//         --load 0.7 --slots 5000 --link-m 25 --seed 9  (one line)
//   $ ./examples/network_explorer --help
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "net/network.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

using namespace ccredf;

namespace {

struct Options {
  NodeId nodes = 8;
  std::string protocol = "ccredf";
  double load = 0.5;        // fraction of U_max as periodic RT traffic
  double be_rate = 0.1;     // Poisson best-effort msgs/slot/node
  std::int64_t slots = 5000;
  double link_m = 10.0;
  std::int64_t payload = 0;  // 0 = auto
  std::uint64_t seed = 1;
  bool reuse = true;
  bool trace = false;
};

void usage() {
  std::cout <<
      "network_explorer -- run a CCR-EDF ring from the command line\n"
      "  --nodes N        ring size (2..64)            [8]\n"
      "  --protocol P     ccredf | ccfpr | tdma        [ccredf]\n"
      "  --load F         RT load as fraction of U_max [0.5]\n"
      "  --be-rate R      best-effort msgs/slot/node   [0.1]\n"
      "  --slots S        slots to simulate            [5000]\n"
      "  --link-m L       link length in metres        [10]\n"
      "  --payload B      slot payload bytes (0=auto)  [0]\n"
      "  --seed X         workload seed                [1]\n"
      "  --no-reuse       disable spatial reuse\n"
      "  --trace          print per-slot trace\n";
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return false;
    } else if (a == "--nodes") {
      const char* v = next("--nodes");
      if (!v) return false;
      o.nodes = static_cast<NodeId>(std::stoul(v));
    } else if (a == "--protocol") {
      const char* v = next("--protocol");
      if (!v) return false;
      o.protocol = v;
    } else if (a == "--load") {
      const char* v = next("--load");
      if (!v) return false;
      o.load = std::stod(v);
    } else if (a == "--be-rate") {
      const char* v = next("--be-rate");
      if (!v) return false;
      o.be_rate = std::stod(v);
    } else if (a == "--slots") {
      const char* v = next("--slots");
      if (!v) return false;
      o.slots = std::stoll(v);
    } else if (a == "--link-m") {
      const char* v = next("--link-m");
      if (!v) return false;
      o.link_m = std::stod(v);
    } else if (a == "--payload") {
      const char* v = next("--payload");
      if (!v) return false;
      o.payload = std::stoll(v);
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      o.seed = std::stoull(v);
    } else if (a == "--no-reuse") {
      o.reuse = false;
    } else if (a == "--trace") {
      o.trace = true;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return 1;

  net::NetworkConfig cfg;
  cfg.nodes = o.nodes;
  cfg.link_length_m = o.link_m;
  cfg.slot_payload_bytes = o.payload;
  cfg.spatial_reuse = o.reuse;
  if (o.protocol == "ccfpr") {
    cfg.protocol_factory = baseline::ccfpr_factory();
  } else if (o.protocol == "tdma") {
    cfg.protocol_factory = baseline::tdma_factory();
  } else if (o.protocol != "ccredf") {
    std::cerr << "unknown protocol: " << o.protocol << "\n";
    return 1;
  }

  net::Network n(cfg);
  if (o.trace) {
    n.trace().enable(sim::TraceCategory::kSlot);
    n.trace().set_stream(&std::cout);
  }

  std::cout << "protocol " << n.protocol().name() << ", " << o.nodes
            << " nodes, " << o.link_m << " m links, payload "
            << n.timing().payload_bytes() << " B, t_slot "
            << n.timing().slot().ns() << " ns, U_max "
            << n.timing().u_max() << "\n";

  if (o.load > 0.0) {
    workload::PeriodicSetParams wp;
    wp.nodes = o.nodes;
    wp.connections = static_cast<int>(o.nodes) * 2;
    wp.total_utilisation = o.load * n.timing().u_max();
    wp.seed = o.seed;
    const auto set = workload::make_periodic_set(wp);
    int admitted = 0;
    for (const auto& c : set) {
      if (n.open_connection(c).admitted) ++admitted;
    }
    std::cout << "periodic RT: " << admitted << "/" << set.size()
              << " connections admitted (u="
              << n.admission().utilisation() << ")\n";
  }
  std::unique_ptr<workload::PoissonGenerator> gen;
  if (o.be_rate > 0.0) {
    workload::PoissonParams p;
    p.rate_per_node = o.be_rate;
    p.seed = o.seed + 1;
    gen = std::make_unique<workload::PoissonGenerator>(
        n, p, sim::TimePoint::origin() + n.timing().slot() * o.slots);
  }

  n.run_slots(o.slots);

  analysis::Table t("Run summary");
  t.columns({"metric", "value"});
  const auto& s = n.stats();
  const auto& rt = s.cls(core::TrafficClass::kRealTime);
  const auto& be = s.cls(core::TrafficClass::kBestEffort);
  t.row().cell("slots").cell(s.slots);
  t.row().cell("busy slots").cell(s.busy_slots);
  t.row().cell("grants / busy slot").cell(s.mean_grants_per_busy_slot(), 2);
  t.row().cell("slot-time fraction").cell(s.slot_time_fraction(), 4);
  t.row().cell("goodput").cell(analysis::format_si(s.goodput_bps(),
                                                   "bit/s"));
  t.row().cell("RT delivered").cell(rt.delivered);
  t.row().cell("RT user misses").cell(rt.user_misses);
  t.row().cell("BE delivered").cell(be.delivered);
  t.row().cell("BE sched-miss ratio").pct(be.scheduling_miss_ratio(), 2);
  t.row().cell("priority inversions").cell(s.priority_inversions);
  t.row().cell("mean handover hops").cell(s.handover_hops.mean(), 2);
  t.print(std::cout);
  return 0;
}
