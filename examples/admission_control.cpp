// Run-time admission control (paper §6): logical real-time connections
// arrive and leave while the network runs; the Eq. 5/6 test admits
// exactly as much as the worst-case bound allows, and everything admitted
// keeps its guarantee.
//
//   $ ./examples/admission_control
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"

using namespace ccredf;

int main() {
  net::NetworkConfig cfg;
  cfg.nodes = 12;
  net::Network network(cfg);
  sim::Rng rng(7);

  std::cout << "Admission control demo: U_max = "
            << network.timing().u_max() << "\n\n";

  analysis::Table log("Connection request log");
  log.columns({"t (slots)", "action", "e/P", "u(conn)", "u(total)",
               "decision"});

  std::vector<ConnectionId> open;
  std::int64_t t = 0;
  for (int event = 0; event < 30; ++event) {
    const auto advance = rng.uniform_int(20, 120);
    network.run_slots(advance);
    t += advance;

    const bool close_one = !open.empty() && rng.bernoulli(0.3);
    if (close_one) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_u64(open.size()));
      network.close_connection(open[idx]);
      log.row()
          .cell(t)
          .cell("close")
          .cell("-")
          .cell("-")
          .cell(network.admission().utilisation(), 3)
          .cell("-");
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }

    core::ConnectionParams c;
    c.source = static_cast<NodeId>(rng.uniform_u64(12));
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.uniform_u64(12));
    } while (dst == c.source);
    c.dests = NodeSet::single(dst);
    c.period_slots = rng.uniform_int(20, 200);
    c.size_slots = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(c.period_slots) *
               rng.uniform_real(0.02, 0.25)));
    const auto open_result = network.open_connection(c);
    if (open_result.admitted) open.push_back(open_result.id);

    std::string ep = std::to_string(c.size_slots) + "/" +
                     std::to_string(c.period_slots);
    log.row()
        .cell(t)
        .cell("open")
        .cell(ep)
        .cell(c.utilisation(), 3)
        .cell(network.admission().utilisation(), 3)
        .cell(open_result.admitted ? "ADMIT" : "reject");
  }
  log.print(std::cout);

  network.run_slots(2000);
  const auto& rt = network.stats().cls(core::TrafficClass::kRealTime);
  std::cout << "\nfinal utilisation " << network.admission().utilisation()
            << " of U_max " << network.admission().u_max() << "\n"
            << "requests seen " << network.admission().requests_seen()
            << ", rejected " << network.admission().rejections() << "\n"
            << "RT delivered " << rt.delivered << ", user-deadline misses "
            << rt.user_misses << " (guarantee: 0)\n";
  return rt.user_misses == 0 ? 0 : 1;
}
