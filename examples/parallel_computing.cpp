// Parallel/distributed-computing services: barrier synchronisation and
// global reduction riding the control channel (paper §1, §7).
//
// Simulates a bulk-synchronous computation: each node "computes" for a
// random time, contributes a partial sum, and waits at a barrier; the
// reduction result is available to everyone at the end of the slot in
// which the last contribution arrived.
//
//   $ ./examples/parallel_computing
#include <iostream>

#include "net/network.hpp"
#include "services/barrier.hpp"
#include "services/reduce.hpp"
#include "sim/rng.hpp"

using namespace ccredf;

int main() {
  net::NetworkConfig cfg;
  cfg.nodes = 16;
  net::Network network(cfg);
  services::BarrierService barrier(network);
  services::GlobalReduceService reduce(network);
  sim::Rng rng(2024);

  const NodeSet everyone = network.topology().all_nodes();
  std::int64_t expected_total = 0;

  for (int superstep = 0; superstep < 5; ++superstep) {
    reduce.begin(everyone, services::ReduceOp::kSum);
    barrier.begin(everyone);

    // Each node finishes its local work at a random time within the next
    // ~50 slots, then contributes and arrives at the barrier.
    std::int64_t step_sum = 0;
    for (NodeId node = 0; node < network.nodes(); ++node) {
      const auto delay =
          network.timing().slot() * rng.uniform_int(1, 50);
      const auto value = rng.uniform_int(1, 1000);
      step_sum += value;
      network.sim().schedule_in(delay, [&, node, value] {
        reduce.contribute(node, value);
        barrier.arrive(node);
      });
    }
    expected_total += step_sum;

    network.run_slots(80);
    if (!barrier.complete() || !reduce.complete()) {
      std::cerr << "superstep " << superstep << " did not complete!\n";
      return 1;
    }
    std::cout << "superstep " << superstep << ": sum=" << *reduce.result()
              << " (expected " << step_sum << "), barrier latency "
              << barrier.latency()->ns() << " ns after last arrival\n";
    if (*reduce.result() != step_sum) return 1;
  }

  std::cout << "\n5 supersteps, " << barrier.barriers_completed()
            << " barriers and " << 5 << " reductions completed -- all on "
            << "the control channel, zero data slots consumed\n"
            << "(busy data slots: " << network.stats().busy_slots << ")\n";
  return 0;
}
