// Distributed-multimedia LAN: video + audio streams as guaranteed
// connections, bursty best-effort file transfer over the reliable
// channel with credit flow control underneath (paper §1 services).
//
//   $ ./examples/multimedia_lan
#include <iostream>

#include "analysis/report.hpp"
#include "net/network.hpp"
#include "services/reliable.hpp"
#include "workload/multimedia.hpp"
#include "workload/poisson.hpp"

using namespace ccredf;

int main() {
  workload::MultimediaParams mm;
  mm.nodes = 8;
  mm.video_streams = 3;
  mm.audio_streams = 4;
  const auto scenario = workload::make_multimedia_scenario(mm);

  net::NetworkConfig cfg;
  cfg.nodes = mm.nodes;
  net::Network network(cfg);

  int admitted = 0;
  for (const auto& c : scenario.connections) {
    if (network.open_connection(c).admitted) ++admitted;
  }
  std::cout << "Multimedia LAN on " << network.nodes() << " nodes: "
            << admitted << "/" << scenario.connections.size()
            << " streams admitted (u=" << scenario.total_utilisation
            << ", U_max=" << network.timing().u_max() << ")\n";

  // Background best-effort (web/file) traffic.
  workload::PoissonGenerator background(
      network, scenario.background,
      sim::TimePoint::origin() + network.timing().slot() * 8000);

  // A 256 KiB reliable file transfer with a noisy receiver.
  services::ReliableChannel::Params rp;
  rp.loss_probability = 0.1;
  rp.timeout_slots = 6;
  services::ReliableChannel reliable(network, rp);
  const std::int64_t file_slots =
      (256 * 1024) / network.timing().payload_bytes() + 1;
  bool file_done = false;
  services::ReliableChannel::TransferResult file_result;
  reliable.send(1, 6, file_slots, sim::Duration::milliseconds(100),
                [&](const services::ReliableChannel::TransferResult& r) {
                  file_done = true;
                  file_result = r;
                });

  network.run_slots(10'000);

  analysis::Table t("Traffic summary after 10k slots");
  t.columns({"class", "delivered", "mean lat (us)", "p-misses"});
  const auto row = [&](const char* name, core::TrafficClass c) {
    const auto& s = network.stats().cls(c);
    t.row()
        .cell(name)
        .cell(s.delivered)
        .cell(s.latency.mean() / 1e6, 2)
        .cell(s.user_misses);
  };
  row("RT (video+audio)", core::TrafficClass::kRealTime);
  row("best effort", core::TrafficClass::kBestEffort);
  t.print(std::cout);

  std::cout << "\nreliable 256 KiB transfer: "
            << (file_done && file_result.delivered ? "delivered" : "FAILED")
            << " after " << file_result.attempts << " attempt(s), "
            << reliable.retransmissions() << " retransmissions\n"
            << "background messages generated: " << background.generated()
            << "\n";
  return 0;
}
