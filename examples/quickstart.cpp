// Quickstart: bring up a CCR-EDF ring, open a guaranteed real-time
// connection, mix in best-effort traffic, and read the statistics.
//
//   $ ./examples/quickstart
#include <iostream>

#include "analysis/report.hpp"
#include "net/network.hpp"

using namespace ccredf;

int main() {
  // An 8-node ring of 10 m OPTOBUS-class fibre-ribbon links.
  net::NetworkConfig cfg;
  cfg.nodes = 8;
  cfg.link_length_m = 10.0;
  net::Network network(cfg);

  std::cout << "CCR-EDF quickstart\n"
            << "  nodes:            " << network.nodes() << "\n"
            << "  slot payload:     " << network.timing().payload_bytes()
            << " bytes\n"
            << "  slot duration:    " << network.timing().slot().ns()
            << " ns\n"
            << "  worst hand-over:  " << network.timing().max_handover().ns()
            << " ns\n"
            << "  U_max (Eq. 6):    " << network.timing().u_max() << "\n\n";

  // A logical real-time connection: node 0 streams to node 4, one slot of
  // data every 20 slots, deadline = period (paper §5).  Admission control
  // (Eq. 5) guards the request.
  core::ConnectionParams stream;
  stream.source = 0;
  stream.dests = NodeSet::single(4);
  stream.size_slots = 1;
  stream.period_slots = 20;
  const auto open = network.open_connection(stream);
  std::cout << "real-time connection "
            << (open.admitted ? "admitted" : "REJECTED") << " (id "
            << open.id << ")\n";

  // Some best-effort and non-real-time traffic alongside.
  using sim::Duration;
  network.send_best_effort(2, NodeSet::single(6), /*size_slots=*/3,
                           /*relative_deadline=*/Duration::microseconds(50));
  network.send_non_realtime(5, network.broadcast_dests(5), 2);

  // Run 500 slots of simulated time.
  network.run_slots(500);

  analysis::Table t("Results after 500 slots");
  t.columns({"class", "delivered", "mean latency (us)", "deadline misses"});
  const auto row = [&](const char* name, core::TrafficClass c) {
    const auto& s = network.stats().cls(c);
    t.row()
        .cell(name)
        .cell(s.delivered)
        .cell(s.latency.mean() / 1e6, 2)
        .cell(s.user_misses);
  };
  row("real-time", core::TrafficClass::kRealTime);
  row("best-effort", core::TrafficClass::kBestEffort);
  row("non-real-time", core::TrafficClass::kNonRealTime);
  t.print(std::cout);

  std::cout << "\npriority inversions: "
            << network.stats().priority_inversions
            << " (CCR-EDF guarantees zero)\n"
            << "slot-time fraction:  "
            << network.stats().slot_time_fraction() << " (bound U_max "
            << network.timing().u_max() << ")\n";
  return 0;
}
