#!/usr/bin/env python3
"""Style lint that runs everywhere (no clang-format binary needed).

Checks the invariants .clang-format enforces that are cheap to verify
textually -- CI additionally runs the real `clang-format --dry-run`:

  * no tab characters in C++ sources
  * no trailing whitespace
  * no CRLF line endings
  * every file ends with exactly one newline
  * lines within the 80-column limit (URLs in comments exempt)

Usage: format_check.py [ROOT]
"""
import pathlib
import sys

CXX_GLOBS = ("src", "bench", "tests", "tools", "examples")
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}
COLUMN_LIMIT = 80


def check_file(path):
    problems = []
    raw = path.read_bytes()
    if b"\r" in raw:
        problems.append("CRLF line ending")
    if raw and not raw.endswith(b"\n"):
        problems.append("missing final newline")
    if raw.endswith(b"\n\n"):
        problems.append("trailing blank line at EOF")
    text = raw.decode("utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"line {lineno}: tab character")
        if line != line.rstrip():
            problems.append(f"line {lineno}: trailing whitespace")
        if len(line) > COLUMN_LIMIT and "http" not in line:
            problems.append(
                f"line {lineno}: {len(line)} columns (limit {COLUMN_LIMIT})"
            )
    return problems


def main(argv):
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    failures = 0
    checked = 0
    for top in CXX_GLOBS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES:
                continue
            checked += 1
            for problem in check_file(path):
                print(f"{path}: {problem}", file=sys.stderr)
                failures += 1
    print(f"format_check: {checked} files, {failures} problems")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
