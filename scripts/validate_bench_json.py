#!/usr/bin/env python3
"""Schema check for BENCH_*.json benchmark documents.

Every bench that supports --json writes

    {"bench": "<name>", "metrics": {"<key>": <number|null>, ...}}

and ccredf_sweep writes a richer {"report": "ccredf-sweep", ...}
document.  CI and scripts/check.sh run this validator after each bench so
a silently truncated or malformed write fails the pipeline instead of
poisoning the performance-trajectory archive.

Usage: validate_bench_json.py FILE [FILE...]
Exit codes: 0 all valid, 1 validation failure, 2 usage error.
"""
import json
import numbers
import sys


def fail(path, message):
    print(f"validate_bench_json: {path}: {message}", file=sys.stderr)
    return False


def validate_metrics(path, metrics):
    if not isinstance(metrics, dict) or not metrics:
        return fail(path, "`metrics` must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(key, str) or not key:
            return fail(path, "metric keys must be non-empty strings")
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, numbers.Real)
        ):
            return fail(path, f"metric `{key}` is not a number or null")
    # A speedup number is meaningless without the host's core count: a
    # 1.0x on a single-core container is expected, not a regression.  Any
    # document reporting one must say what hardware produced it.
    if any("speedup" in key for key in metrics) and not isinstance(
        metrics.get("hardware_threads"), numbers.Real
    ):
        return fail(
            path,
            "reports a speedup metric without numeric `hardware_threads`",
        )
    return True


def validate_data_reliability(path, metrics):
    """E19 acceptance gates, re-checked at validation time.

    The bench itself exits non-zero when a gate fails, but the validator
    re-asserts them so a stale or hand-edited JSON cannot sneak a
    regression past CI: the CRC + laxity-budgeted ARQ must strictly beat
    both baselines, low-BER runs must show zero undetected corruption,
    admission derating must be monotone, and the data-BER sweep must be
    thread-count deterministic.
    """
    required = (
        "arq_miss_ratio",
        "fixed_miss_ratio",
        "nocrc_miss_ratio",
        "low_ber_undetected",
        "derate_monotone",
        "threads_json_identical",
    )
    for key in required:
        value = metrics.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return fail(path, f"data_reliability needs numeric `{key}`")
    arq = metrics["arq_miss_ratio"]
    if not (arq < metrics["fixed_miss_ratio"] and arq < metrics["nocrc_miss_ratio"]):
        return fail(
            path,
            "laxity ARQ miss ratio not strictly below both baselines "
            f"(arq={arq}, fixed={metrics['fixed_miss_ratio']}, "
            f"nocrc={metrics['nocrc_miss_ratio']})",
        )
    if metrics["low_ber_undetected"] != 0:
        return fail(
            path,
            f"{metrics['low_ber_undetected']} undetected payload "
            "corruptions at low BER with the CRC on",
        )
    if metrics["derate_monotone"] != 1:
        return fail(path, "admission derating not monotone in the BER")
    if metrics["threads_json_identical"] != 1:
        return fail(path, "data-BER sweep not thread-count deterministic")
    return True


def validate_cbs_fairness(path, metrics):
    """E21 acceptance gates, re-checked at validation time.

    Mirrors the data_reliability precedent: the bench exits non-zero on
    its own, but a stale or hand-edited JSON must not green past CI.
    The hard-RT per-connection digest must be byte-identical with the
    CBS population saturating the ring, no RT deadline may be missed,
    at least 8 best-effort flows must share with Jain >= 0.9, budget
    postponements must actually have fired, and the services-axis sweep
    must be thread-count deterministic.
    """
    required = (
        "rt_digest_identical",
        "rt_sched_misses_alone",
        "rt_sched_misses_shared",
        "rt_user_misses_alone",
        "rt_user_misses_shared",
        "be_flows",
        "flows=8,jain_index",
        "cbs_postponements",
        "threads_json_identical",
    )
    for key in required:
        value = metrics.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return fail(path, f"cbs_fairness needs numeric `{key}`")
    if metrics["rt_digest_identical"] != 1:
        return fail(
            path,
            "hard-RT digest changed when the CBS population saturated",
        )
    misses = (
        metrics["rt_sched_misses_alone"],
        metrics["rt_sched_misses_shared"],
        metrics["rt_user_misses_alone"],
        metrics["rt_user_misses_shared"],
    )
    if any(m != 0 for m in misses):
        return fail(path, f"hard-RT set missed deadlines: {misses}")
    if metrics["be_flows"] < 8:
        return fail(
            path, f"only {metrics['be_flows']:.0f} CBS flows admitted (< 8)"
        )
    if metrics["flows=8,jain_index"] < 0.9:
        return fail(
            path,
            f"Jain index {metrics['flows=8,jain_index']} below the 0.9 "
            "fairness floor",
        )
    if metrics["cbs_postponements"] <= 0:
        return fail(path, "saturation run fired no budget postponements")
    if metrics["threads_json_identical"] != 1:
        return fail(path, "services-axis sweep not thread-count deterministic")
    return True


def validate_fault_churn(path, metrics):
    """E22 acceptance gates, re-checked at validation time.

    Same rationale as the data_reliability/cbs_fairness validators: the
    bench exits non-zero on a failed gate, but a stale or hand-edited
    JSON must not green past CI.  The containment invariant (connections
    disjoint from every churned node miss nothing), the detection bound
    (latency <= window + 1), reclamation exactness, a loop that actually
    cycled, exact recovery-gap quantile ordering, and both determinism
    gates are re-asserted here.
    """
    required = (
        "disjoint_connections",
        "disjoint_user_misses",
        "downs",
        "readmissions",
        "detection_window_slots",
        "detection_latency_max_slots",
        "reclaim_error",
        "recoveries",
        "recovery_gap_p50_us",
        "recovery_gap_p99_us",
        "threads_json_identical",
        "ff_json_identical",
    )
    for key in required:
        value = metrics.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return fail(path, f"fault_churn needs numeric `{key}`")
    if metrics["disjoint_connections"] <= 0:
        return fail(path, "no churn-disjoint connections: gate tested nothing")
    if metrics["disjoint_user_misses"] != 0:
        return fail(
            path,
            f"{metrics['disjoint_user_misses']:.0f} user misses on "
            "connections disjoint from every churned node",
        )
    if metrics["downs"] <= 0 or metrics["readmissions"] <= 0:
        return fail(path, "the churn loop never cycled")
    if (
        metrics["detection_latency_max_slots"]
        > metrics["detection_window_slots"] + 1
    ):
        return fail(
            path,
            f"detection latency {metrics['detection_latency_max_slots']} "
            "slots exceeds the configured window + 1",
        )
    if metrics["reclaim_error"] > 1e-9:
        return fail(
            path,
            "quarantine released weight diverges from the utilisation "
            f"drop by {metrics['reclaim_error']}",
        )
    if metrics["recovery_gap_p50_us"] > metrics["recovery_gap_p99_us"]:
        return fail(path, "recovery-gap p50 exceeds p99")
    if metrics["recoveries"] > 0 and metrics["recovery_gap_p50_us"] <= 0:
        return fail(path, "recoveries happened but the gap distribution is empty")
    if metrics["threads_json_identical"] != 1:
        return fail(path, "churn-axis sweep not thread-count deterministic")
    if metrics["ff_json_identical"] != 1:
        return fail(path, "churn-axis sweep not fast-forward invariant")
    return True


def validate_link_fault(path, metrics):
    """E24 acceptance gates, re-checked at validation time.

    Same rationale as the other per-bench validators: the bench exits
    non-zero on a failed gate, but a stale or hand-edited JSON must not
    green past CI.  Re-asserted: the containment invariant (connections
    whose segments avoid the severed link miss nothing across the full
    cut -> detect -> quarantine -> splice -> re-admit cycle), the
    in-protocol detection bound (at most 2 slots per cut: the absorbing
    collection plus at most one mid-slot carry), reclamation exactness,
    the ordered-pair capacity derate and its restoration on splice, a
    quarantine cycle that actually staged re-admissions, ring-dark
    parking under a double cut that healed and delivered, and all three
    determinism gates (thread count, fast-forward, planner no-op).
    """
    required = (
        "disjoint_connections",
        "disjoint_user_misses",
        "link_cuts",
        "cut_detect_slots",
        "segment_downs",
        "segment_quarantines",
        "reclaim_error",
        "capacity_while_severed",
        "capacity_after_splice",
        "readmissions",
        "ring_dark_slots",
        "delivered_after_heal",
        "threads_json_identical",
        "ff_json_identical",
        "planner_json_identical",
    )
    for key in required:
        value = metrics.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return fail(path, f"link_fault needs numeric `{key}`")
    if metrics["disjoint_connections"] <= 0:
        return fail(path, "no cut-disjoint connections: gate tested nothing")
    if metrics["disjoint_user_misses"] != 0:
        return fail(
            path,
            f"{metrics['disjoint_user_misses']:.0f} user misses on "
            "connections whose segments avoid the severed link",
        )
    if metrics["link_cuts"] <= 0:
        return fail(path, "the severed-segment cycle never cut a link")
    if not (
        1 <= metrics["cut_detect_slots"] <= 2 * metrics["link_cuts"]
    ):
        return fail(
            path,
            f"detection took {metrics['cut_detect_slots']:.0f} slots for "
            f"{metrics['link_cuts']:.0f} cut(s): outside the in-protocol "
            "1..2-per-cut bound",
        )
    if metrics["segment_downs"] <= 0 or metrics["segment_quarantines"] <= 0:
        return fail(path, "the cut never triggered a segment quarantine")
    if metrics["reclaim_error"] > 1e-9:
        return fail(
            path,
            "segment-quarantine released weight diverges from the "
            f"utilisation drop by {metrics['reclaim_error']}",
        )
    if metrics["capacity_while_severed"] >= metrics["capacity_after_splice"]:
        return fail(
            path,
            "capacity factor did not derate under the cut "
            f"({metrics['capacity_while_severed']} vs "
            f"{metrics['capacity_after_splice']} after splice)",
        )
    if metrics["capacity_after_splice"] != 1:
        return fail(path, "splice did not restore the full capacity factor")
    if metrics["readmissions"] <= 0:
        return fail(path, "splice staged no re-admissions")
    if metrics["ring_dark_slots"] <= 0:
        return fail(path, "the double cut never parked the ring dark")
    if metrics["delivered_after_heal"] <= 0:
        return fail(path, "nothing delivered after the ring-dark heal")
    if metrics["threads_json_identical"] != 1:
        return fail(path, "link-cut sweep not thread-count deterministic")
    if metrics["ff_json_identical"] != 1:
        return fail(path, "link-cut sweep not fast-forward invariant")
    if metrics["planner_json_identical"] != 1:
        return fail(
            path, "planner divergence fallback not thread-count deterministic"
        )
    return True


def validate_hypercycle(path, metrics):
    """E23 acceptance gates, re-checked at validation time.

    Same rationale as the other per-bench validators: the bench exits
    non-zero on a failed gate, but a stale or hand-edited JSON must not
    green past CI.  Re-asserted: the planner admits a utilisation
    strictly past the Eq. 6 bound with zero misses (the paper artefact),
    the per-slot baselines stay at or below that bound, the plan-driven
    engine clears the 2x throughput gate on the busy cell, and all three
    determinism gates (thread count, fast-forward, planner no-op on
    fault cells) held.
    """
    required = (
        "u_max",
        "planner,admitted_u",
        "planner,sched_miss_ratio",
        "planner,user_miss_ratio",
        "planner,plan_driven_fraction",
        "planner,plan_divergences",
        "tcma,admitted_u",
        "ccfpr,admitted_u",
        "engine_speedup",
        "planner32,planned_slot_fraction",
        "threads_json_identical",
        "ff_json_identical",
        "planner_noop_identical",
    )
    for key in required:
        value = metrics.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return fail(path, f"hypercycle needs numeric `{key}`")
    u_max = metrics["u_max"]
    if metrics["planner,admitted_u"] <= u_max:
        return fail(
            path,
            f"planner admitted_u {metrics['planner,admitted_u']} not past "
            f"the Eq. 6 bound U_max={u_max}: the paper artefact is gone",
        )
    if metrics["planner,sched_miss_ratio"] != 0:
        return fail(path, "planner admission past U_max missed deadlines")
    if metrics["planner,user_miss_ratio"] != 0:
        return fail(path, "planner admission past U_max missed user deadlines")
    for engine in ("tcma", "ccfpr"):
        if metrics[f"{engine},admitted_u"] > u_max:
            return fail(
                path,
                f"{engine} admitted_u {metrics[f'{engine},admitted_u']} "
                f"above U_max={u_max}: Eq. 5/6 admission broke",
            )
    if metrics["planner,plan_driven_fraction"] < 0.95:
        return fail(
            path,
            f"plan drove only {metrics['planner,plan_driven_fraction']} "
            "of slots on a fully periodic cell (< 0.95)",
        )
    if metrics["planner,plan_divergences"] != 0:
        return fail(path, "plan diverged on a fully periodic cell")
    if metrics["engine_speedup"] < 2.0:
        return fail(
            path,
            f"plan-driven engine speedup {metrics['engine_speedup']} "
            "below the 2x gate on the busy cell",
        )
    if metrics["threads_json_identical"] != 1:
        return fail(path, "planner-axis sweep not thread-count deterministic")
    if metrics["ff_json_identical"] != 1:
        return fail(path, "planner-axis sweep not fast-forward invariant")
    if metrics["planner_noop_identical"] != 1:
        return fail(
            path, "enabling the planner changed a cell it cannot plan"
        )
    return True


def validate_sweep_report(path, doc):
    for key, kind in (
        ("grid", dict),
        ("shards", int),
        ("failed_shards", int),
        ("points", list),
    ):
        if not isinstance(doc.get(key), kind):
            return fail(path, f"sweep report needs {kind.__name__} `{key}`")
    if doc["failed_shards"] != 0:
        return fail(path, f"sweep ran with {doc['failed_shards']} failed shards")
    if not doc["points"]:
        return fail(path, "sweep report has no points")
    for i, point in enumerate(doc["points"]):
        if not isinstance(point, dict) or "metrics" not in point:
            return fail(path, f"point {i} malformed")
        for name, stat in point["metrics"].items():
            expected = {"count", "mean", "stddev", "min", "max"}
            if not isinstance(stat, dict) or set(stat) != expected:
                return fail(path, f"point {i} metric `{name}` malformed")
        # Recovery-gap quantiles are exact nearest-rank sample values, so
        # p50 <= p99 must hold per point, not just on average.
        gaps = point["metrics"]
        p50 = gaps.get("recovery_gap_p50_us")
        p99 = gaps.get("recovery_gap_p99_us")
        if p50 is not None and p99 is not None:
            for field in ("mean", "min", "max"):
                if p50[field] > p99[field]:
                    return fail(
                        path,
                        f"point {i}: recovery_gap p50 {field} "
                        f"({p50[field]}) exceeds p99 ({p99[field]})",
                    )
    return True


def validate(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        return fail(path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        return fail(path, f"invalid JSON: {exc}")
    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")
    if doc.get("report") == "ccredf-sweep":
        return validate_sweep_report(path, doc)
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "missing non-empty string `bench`")
    if not validate_metrics(path, doc.get("metrics")):
        return False
    if doc["bench"] == "data_reliability":
        return validate_data_reliability(path, doc["metrics"])
    if doc["bench"] == "cbs_fairness":
        return validate_cbs_fairness(path, doc["metrics"])
    if doc["bench"] == "fault_churn":
        return validate_fault_churn(path, doc["metrics"])
    if doc["bench"] == "hypercycle":
        return validate_hypercycle(path, doc["metrics"])
    if doc["bench"] == "link_fault":
        return validate_link_fault(path, doc["metrics"])
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        if validate(path):
            print(f"validate_bench_json: {path}: ok")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
