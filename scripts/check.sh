#!/usr/bin/env bash
# Full pre-merge check: build + test under the sanitizer/release presets,
# then run the release benchmarks and validate their JSON output.
#
# Usage: scripts/check.sh [--quick] [--presets "release asan ubsan"]
#   --quick       shorter benchmark measurement windows (smoke test)
#   --presets     space-separated CMake preset list (default: all three);
#                 CI legs that already built elsewhere pass e.g.
#                 `--presets release` to only smoke the benches.
#
# Fails loudly when a bench binary is missing, exits non-zero, or writes
# a JSON document that does not validate against the bench schema.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
PRESETS=(release asan ubsan)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick)
      QUICK="--quick"
      shift
      ;;
    --presets)
      [[ $# -ge 2 ]] || { echo "check.sh: --presets needs a value" >&2; exit 2; }
      read -r -a PRESETS <<< "$2"
      shift 2
      ;;
    *)
      echo "check.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${PRESETS[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
done

# run_bench NAME [ARGS...]: run a release bench with --json and validate
# the document it wrote.
run_bench() {
  local name="$1"
  shift
  local bin="./build-release/bench/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "check.sh: FATAL: bench binary missing: ${bin}" >&2
    exit 1
  fi
  local json="BENCH_${name#bench_}.json"
  echo "==== bench: ${name} (release) ===="
  "${bin}" "$@" --json "${json}"
  python3 scripts/validate_bench_json.py "${json}"
}

run_bench bench_slot_throughput ${QUICK}
run_bench bench_sweep ${QUICK}
run_bench bench_fault_recovery ${QUICK}
run_bench bench_data_reliability ${QUICK}
run_bench bench_cbs_fairness ${QUICK}
run_bench bench_fault_churn ${QUICK}
run_bench bench_hypercycle ${QUICK}
run_bench bench_link_fault ${QUICK}

# E21b's fairness floor, asserted through the same generic floor checker
# as the throughput gate (bench/cbs_floors.json pins Jain >= 0.9).
python3 scripts/perf_floor_check.py BENCH_cbs_fairness.json \
  bench/cbs_floors.json

# The sweep CLI's determinism contract: byte-identical reports at any
# worker-thread count.  On a single-core host the 8-thread run exercises
# only the claiming logic, not real parallelism, so the wall-clock
# framing is dropped there -- the byte-equality gate itself always runs.
HW_THREADS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== sweep determinism (1 vs 8 threads) ===="
else
  echo "==== sweep determinism (byte-equality gate; single hardware" \
       "thread, no wall-clock comparison) ===="
fi
SWEEP=./build-release/tools/ccredf_sweep
if [[ ! -x "${SWEEP}" ]]; then
  echo "check.sh: FATAL: tool binary missing: ${SWEEP}" >&2
  exit 1
fi
TMPDIR_SWEEP="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_SWEEP}"' EXIT
"${SWEEP}" tools/grids/smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/t1.json"
"${SWEEP}" tools/grids/smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/t8.json"
cmp "${TMPDIR_SWEEP}/t1.json" "${TMPDIR_SWEEP}/t8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/t1.json"
echo "sweep reports byte-identical across thread counts"

# Same gate over the fault grid: the BER corruption paths must stay
# byte-deterministic at any thread count (keyed fault RNG streams).
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== fault-grid determinism (1 vs 8 threads) ===="
else
  echo "==== fault-grid determinism (byte-equality gate) ===="
fi
"${SWEEP}" tools/grids/fault_smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/f1.json"
"${SWEEP}" tools/grids/fault_smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/f8.json"
cmp "${TMPDIR_SWEEP}/f1.json" "${TMPDIR_SWEEP}/f8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/f1.json"
echo "fault-grid reports byte-identical across thread counts"

# Engine fast-forward contract (DESIGN.md section 8): the O(1) idle
# fast-forward must be invisible in every reported statistic, so a
# slot-by-slot run of the same grid must produce a byte-identical report
# -- including the fault grid, whose skip decisions replay the keyed
# fault draws.
echo "==== fast-forward equivalence (report byte-equality) ===="
"${SWEEP}" tools/grids/smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/t1_noff.json"
cmp "${TMPDIR_SWEEP}/t1.json" "${TMPDIR_SWEEP}/t1_noff.json"
"${SWEEP}" tools/grids/fault_smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/f1_noff.json"
cmp "${TMPDIR_SWEEP}/f1.json" "${TMPDIR_SWEEP}/f1_noff.json"
echo "fast-forward and slot-by-slot reports byte-identical"

# Same two gates over the service-class grid: the CBS slot-engine hooks
# (budget charging, deadline postponement, re-keying) must be thread-
# count deterministic AND invisible to the fast-forward contract.
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== cbs-grid determinism (1 vs 8 threads) ===="
else
  echo "==== cbs-grid determinism (byte-equality gate) ===="
fi
"${SWEEP}" tools/grids/cbs_smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/c1.json"
"${SWEEP}" tools/grids/cbs_smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/c8.json"
cmp "${TMPDIR_SWEEP}/c1.json" "${TMPDIR_SWEEP}/c8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/c1.json"
"${SWEEP}" tools/grids/cbs_smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/c1_noff.json"
cmp "${TMPDIR_SWEEP}/c1.json" "${TMPDIR_SWEEP}/c1_noff.json"
echo "cbs-grid reports byte-identical across thread counts and" \
     "fast-forward modes"

# Same two gates over the churn grid: the resilience loop (failure
# detection, quarantine, staged re-admission) runs inside the slot
# engine, so it must be thread-count deterministic AND invisible to the
# fast-forward contract -- next_deadline_slot bounds every idle skip at
# the first monitor transition.
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== churn-grid determinism (1 vs 8 threads) ===="
else
  echo "==== churn-grid determinism (byte-equality gate) ===="
fi
"${SWEEP}" tools/grids/churn_smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/n1.json"
"${SWEEP}" tools/grids/churn_smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/n8.json"
cmp "${TMPDIR_SWEEP}/n1.json" "${TMPDIR_SWEEP}/n8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/n1.json"
"${SWEEP}" tools/grids/churn_smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/n1_noff.json"
cmp "${TMPDIR_SWEEP}/n1.json" "${TMPDIR_SWEEP}/n1_noff.json"
echo "churn-grid reports byte-identical across thread counts and" \
     "fast-forward modes"

# Same two gates over the planner grid: the plan-driven collection
# phase, the batched planned fast-forward and the release-table cursor
# replace whole engine layers on planner-on cells, so they must be
# thread-count deterministic AND byte-invisible to the fast-forward
# contract (planned wait batches and the idle fast-forward compose).
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== planner-grid determinism (1 vs 8 threads) ===="
else
  echo "==== planner-grid determinism (byte-equality gate) ===="
fi
"${SWEEP}" tools/grids/planner_smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/p1.json"
"${SWEEP}" tools/grids/planner_smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/p8.json"
cmp "${TMPDIR_SWEEP}/p1.json" "${TMPDIR_SWEEP}/p8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/p1.json"
"${SWEEP}" tools/grids/planner_smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/p1_noff.json"
cmp "${TMPDIR_SWEEP}/p1.json" "${TMPDIR_SWEEP}/p1_noff.json"
echo "planner-grid reports byte-identical across thread counts and" \
     "fast-forward modes"

# Same two gates over the link-fault grid: the severed-segment cycle
# (cut detection, degraded-mode anchoring, segment quarantine, staged
# splice healing) crosses an engine hand-off that forces slot-by-slot
# execution exactly at the cut and splice instants -- the reports must
# still be thread-count deterministic AND byte-identical between the
# fast-forward and slot-by-slot engines.
if [[ "${HW_THREADS}" -gt 1 ]]; then
  echo "==== link-fault-grid determinism (1 vs 8 threads) ===="
else
  echo "==== link-fault-grid determinism (byte-equality gate) ===="
fi
"${SWEEP}" tools/grids/link_fault_smoke.grid --threads 1 --out "${TMPDIR_SWEEP}/l1.json"
"${SWEEP}" tools/grids/link_fault_smoke.grid --threads 8 --out "${TMPDIR_SWEEP}/l8.json"
cmp "${TMPDIR_SWEEP}/l1.json" "${TMPDIR_SWEEP}/l8.json"
python3 scripts/validate_bench_json.py "${TMPDIR_SWEEP}/l1.json"
"${SWEEP}" tools/grids/link_fault_smoke.grid --threads 1 --no-fast-forward \
  --out "${TMPDIR_SWEEP}/l1_noff.json"
cmp "${TMPDIR_SWEEP}/l1.json" "${TMPDIR_SWEEP}/l1_noff.json"
echo "link-fault-grid reports byte-identical across thread counts and" \
     "fast-forward modes"

echo "==== check.sh: all green ===="
