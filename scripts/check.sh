#!/usr/bin/env bash
# Full pre-merge check: build + test under the release and asan presets,
# then run the slot-throughput benchmark (release) and print its JSON.
#
# Usage: scripts/check.sh [--quick]
#   --quick   shorter benchmark measurement windows (smoke test)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
if [[ "${1:-}" == "--quick" ]]; then
  QUICK="--quick"
fi

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in release asan; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
done

echo "==== bench: slot throughput (release) ===="
./build-release/bench/bench_slot_throughput ${QUICK} \
    --json BENCH_slot_throughput.json
echo "---- BENCH_slot_throughput.json ----"
cat BENCH_slot_throughput.json
