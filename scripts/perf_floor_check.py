#!/usr/bin/env python3
"""Per-cell throughput floor check for BENCH_slot_throughput.json.

Reads the bench document written by `bench_slot_throughput --quick --json`
and a checked-in floors file, and fails when any (nodes, load) cell's
slots-per-second drops below floor * slack.  The floors are deliberately
GENEROUS (slack defaults to 0.35, i.e. a cell may lose almost two thirds
of its recorded throughput before the gate trips): shared CI runners are
noisy, and this gate exists to catch an accidental return to the
pre-fast-forward engine -- a 5-10x cliff -- not single-digit jitter.

Floors file schema (bench/perf_floors.json):

    {
      "metric_suffix": "slots_per_sec",
      "slack": 0.35,
      "floors": {"nodes=4,load=0.3": 1.0e6, ...},
      "benches": {"hypercycle": {"metric_suffix": ..., "slack": ...,
                                 "floors": {...}}}
    }

The top-level section applies to any bench document without an entry in
the optional `benches` object; a document whose `bench` name matches an
entry there is checked against that entry instead, so one floors file
covers several benchmarks without perturbing the original schema.

Every floor key must be present in the bench document (a silently dropped
cell would otherwise pass), and `hardware_threads` must be recorded so an
investigator knows what host produced a failing number.

Usage: perf_floor_check.py BENCH_JSON FLOORS_JSON
Exit codes: 0 all floors met, 1 a floor missed or input malformed,
2 usage error.
"""
import json
import numbers
import sys


def fail(message):
    print(f"perf_floor_check: {message}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path, floors_path = argv[1], argv[2]
    try:
        with open(bench_path, encoding="utf-8") as handle:
            bench = json.load(handle)
        with open(floors_path, encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"cannot load inputs: {exc}")

    metrics = bench.get("metrics")
    if not isinstance(metrics, dict):
        return fail(f"{bench_path}: no `metrics` object")
    if not isinstance(metrics.get("hardware_threads"), numbers.Real):
        return fail(f"{bench_path}: missing numeric `hardware_threads`")

    # A bench-specific section overrides the top-level floors wholesale.
    benches = spec.get("benches")
    if isinstance(benches, dict) and bench.get("bench") in benches:
        spec = benches[bench["bench"]]
        if not isinstance(spec, dict):
            return fail(f"{floors_path}: `benches` entry must be an object")

    suffix = spec.get("metric_suffix", "slots_per_sec")
    slack = spec.get("slack", 0.35)
    floors = spec.get("floors")
    if not isinstance(floors, dict) or not floors:
        return fail(f"{floors_path}: `floors` must be a non-empty object")
    if not isinstance(slack, numbers.Real) or not 0 < slack <= 1:
        return fail(f"{floors_path}: `slack` must be in (0, 1]")

    failures = 0
    for cell, floor in sorted(floors.items()):
        key = f"{cell},{suffix}"
        measured = metrics.get(key)
        if not isinstance(measured, numbers.Real):
            fail(f"{bench_path}: cell `{key}` missing or non-numeric")
            failures += 1
            continue
        bound = floor * slack
        verdict = "ok" if measured >= bound else "BELOW FLOOR"
        print(
            f"perf_floor_check: {cell}: {measured:.3g} {suffix} "
            f"(floor {floor:.3g} x slack {slack} = {bound:.3g}) {verdict}"
        )
        if measured < bound:
            failures += 1
    if failures:
        return fail(
            f"{failures} cell(s) below floor "
            f"(hardware_threads={metrics['hardware_threads']:.0f})"
        )
    print("perf_floor_check: all floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
