#!/usr/bin/env python3
"""Line-coverage floor gate over the library sources.

Walks every .gcda file produced by a CCREDF_COVERAGE build, asks gcov
for JSON intermediate output (gcov >= 9), unions executed lines per
source file across all test binaries, and compares the aggregate src/
line coverage against the checked-in floor:

    python3 scripts/coverage_check.py build-coverage
    python3 scripts/coverage_check.py build-coverage --update-floor

The floor file (scripts/coverage_floor.json) pins the minimum aggregate
percentage; CI fails when coverage drops below it.  The floor is seeded
at the measured baseline minus a 2-point slack, so it only trips on real
regressions (a new untested subsystem), not on noise.  Raise it with
--update-floor after landing tests that lift the baseline.
"""
import argparse
import gzip
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
FLOOR_FILE = pathlib.Path(__file__).resolve().parent / "coverage_floor.json"
SLACK_POINTS = 2.0


def gcov_json(gcda: pathlib.Path, build_dir: pathlib.Path):
    """Runs gcov on one .gcda and yields its per-file JSON records."""
    # -t streams JSON to stdout (no .gcov.json.gz litter); each line of
    # output is one JSON document per object file.
    proc = subprocess.run(
        ["gcov", "--json-format", "-t", str(gcda)],
        cwd=build_dir,
        capture_output=True,
        check=False,
    )
    if proc.returncode != 0:
        sys.stderr.write(
            f"warning: gcov failed on {gcda}: {proc.stderr.decode()}\n")
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            if line.startswith(b"\x1f\x8b"):  # some gcovs gzip even with -t
                line = gzip.decompress(line)
            yield json.loads(line)
        except (json.JSONDecodeError, OSError) as e:
            sys.stderr.write(f"warning: unparsable gcov output line: {e}\n")


def source_key(path: str) -> str | None:
    """Maps a gcov file path to a repo-relative src/ path, else None."""
    p = pathlib.Path(path)
    if not p.is_absolute():
        p = (REPO / p).resolve()
    try:
        rel = p.resolve().relative_to(REPO)
    except ValueError:
        return None
    return str(rel) if rel.parts and rel.parts[0] == "src" else None


def collect(build_dir: pathlib.Path):
    """Returns {src_file: (instrumented_lines, executed_lines)}."""
    gcdas = sorted(build_dir.rglob("*.gcda"))
    if not gcdas:
        sys.exit(f"FAIL: no .gcda files under {build_dir} -- build with "
                 "--preset coverage and run ctest first")
    instrumented: dict[str, set[int]] = {}
    executed: dict[str, set[int]] = {}
    for gcda in gcdas:
        for doc in gcov_json(gcda, build_dir):
            for f in doc.get("files", []):
                key = source_key(f.get("file", ""))
                if key is None:
                    continue
                inst = instrumented.setdefault(key, set())
                hit = executed.setdefault(key, set())
                for ln in f.get("lines", []):
                    n = ln.get("line_number")
                    if n is None:
                        continue
                    inst.add(n)
                    if ln.get("count", 0) > 0:
                        hit.add(n)
    return {k: (instrumented[k], executed[k]) for k in instrumented}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir", nargs="?", default="build-coverage")
    ap.add_argument("--floor-file", default=str(FLOOR_FILE))
    ap.add_argument("--update-floor", action="store_true",
                    help="rewrite the floor to measured minus "
                         f"{SLACK_POINTS} points")
    ap.add_argument("--verbose", action="store_true",
                    help="print per-file coverage")
    args = ap.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = REPO / build_dir
    per_file = collect(build_dir)

    total_inst = sum(len(i) for i, _ in per_file.values())
    total_hit = sum(len(h) for _, h in per_file.values())
    if total_inst == 0:
        sys.exit("FAIL: gcov reported no instrumented src/ lines")
    pct = 100.0 * total_hit / total_inst

    if args.verbose:
        for key in sorted(per_file):
            inst, hit = per_file[key]
            print(f"  {key}: {100.0 * len(hit) / len(inst):6.2f}% "
                  f"({len(hit)}/{len(inst)})")
    print(f"line coverage over src/: {pct:.2f}% "
          f"({total_hit}/{total_inst} lines, {len(per_file)} files)")

    floor_path = pathlib.Path(args.floor_file)
    if args.update_floor:
        floor = round(pct - SLACK_POINTS, 2)
        floor_path.write_text(json.dumps({
            "_comment": "Minimum aggregate src/ line coverage (percent) "
                        "for scripts/coverage_check.py; seeded at the "
                        "measured baseline minus "
                        f"{SLACK_POINTS} points.",
            "line_coverage_floor": floor,
        }, indent=2) + "\n")
        print(f"floor updated: {floor:.2f}% -> {floor_path}")
        return 0

    try:
        floor = json.loads(floor_path.read_text())["line_coverage_floor"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        sys.exit(f"FAIL: unreadable floor file {floor_path}: {e}")
    if pct < floor:
        print(f"FAIL: coverage {pct:.2f}% dropped below floor {floor:.2f}%")
        return 1
    print(f"OK: coverage {pct:.2f}% >= floor {floor:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
