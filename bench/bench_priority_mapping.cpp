// E8 (paper Table 1, §3): the laxity -> priority mapping.  Prints the
// Table 1 class allocation, the logarithmic mapping curve, and an
// ablation: logarithmic vs linear mapping under deadline-diverse load
// (the paper argues the logarithmic map's fine resolution near the
// deadline is what EDF needs).
#include "bench_common.hpp"

#include "core/priority.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E8", "laxity-to-priority mapping", "Table 1, Section 3");

  // Table 1 reproduction.
  const core::PriorityLayout layout;
  analysis::Table t1("E8a: priority-level allocation (paper Table 1)");
  t1.columns({"level(s)", "user service"});
  t1.row().cell("0").cell("nothing to send");
  t1.row().cell("1").cell("non-real time");
  t1.row()
      .cell(std::to_string(layout.best_effort_lo()) + "-" +
            std::to_string(layout.best_effort_hi()))
      .cell("best effort");
  t1.row()
      .cell(std::to_string(layout.real_time_lo()) + "-" +
            std::to_string(layout.real_time_hi()))
      .cell("logical real-time connection");
  t1.print(std::cout);

  // The logarithmic curve.
  const core::LogarithmicMapper log_map;
  analysis::Table t2("E8b: logarithmic mapping, RT band (5-bit field)");
  t2.columns({"laxity (slots)", "priority level"});
  for (const std::int64_t lax :
       {0LL, 1LL, 3LL, 7LL, 15LL, 63LL, 255LL, 1023LL, 16383LL, 100000LL}) {
    t2.row().cell(lax).cell(static_cast<std::int64_t>(
        log_map.map(layout, core::TrafficClass::kRealTime, lax)));
  }
  t2.note("one level per laxity doubling: finest resolution close to the "
          "deadline, as the paper prescribes");
  t2.print(std::cout);

  // Ablation: log vs linear mapper under mixed-deadline best-effort load.
  analysis::Table t3(
      "E8c: mapper ablation -- BE deadline misses under mixed laxities");
  t3.columns({"mapper", "quantum", "delivered", "sched-miss ratio"});
  struct Variant {
    net::NetworkConfig::Mapper mapper;
    std::int64_t quantum;
    const char* label;
  };
  for (const Variant v :
       {Variant{net::NetworkConfig::Mapper::kLogarithmic, 0, "logarithmic"},
        Variant{net::NetworkConfig::Mapper::kLinear, 64, "linear"},
        Variant{net::NetworkConfig::Mapper::kLinear, 512, "linear"}}) {
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.mapper = v.mapper;
    if (v.quantum > 0) cfg.linear_quantum_slots = v.quantum;
    net::Network n(cfg);
    // Near-capacity best effort with laxities spanning two decades: at
    // feasible load, misses come only from the mapper mis-ordering two
    // queued messages, so the mapper's near-deadline resolution is the
    // differentiator.  (Heavy overload would instead measure EDF's
    // overload pathology -- stale expired messages pinned at maximum
    // priority -- which no mapping can fix.)
    workload::PoissonParams p;
    p.rate_per_node = 0.11;
    p.min_laxity_slots = 4;
    p.max_laxity_slots = 400;
    p.min_size_slots = 1;
    p.max_size_slots = 2;
    p.seed = 77;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 8000);
    n.run_slots(9000);
    const auto& be = n.stats().cls(core::TrafficClass::kBestEffort);
    t3.row()
        .cell(v.label)
        .cell(v.quantum == 0 ? std::string("-")
                             : std::to_string(v.quantum))
        .cell(be.delivered)
        .pct(be.scheduling_miss_ratio(), 2);
  }
  t3.note("a linear quantum must trade range for resolution: q=512 cannot "
          "separate urgencies closer than ~512 slots and misses grow; a "
          "well-tuned quantum matches the logarithmic map on THIS "
          "workload, but the log map needs no tuning -- it spans the "
          "whole laxity range with fine near-deadline resolution in the "
          "same 5 field bits (the paper's rationale)");
  t3.print(std::cout);

  // Field-width ablation: the paper fixes 5 bits (Fig. 4); what do more
  // or fewer bits buy?  Wider fields enlarge every collection packet
  // (N * field_bits extra control bits) but refine EDF ordering.
  analysis::Table t4(
      "E8d: priority field width ablation (8 nodes, near-capacity BE)");
  t4.columns({"field bits", "RT band levels", "collection bits",
              "delivered", "sched-miss ratio"});
  for (const unsigned bits : {3u, 4u, 5u, 6u, 8u}) {
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.priority.field_bits = bits;
    net::Network n(cfg);
    workload::PoissonParams p;
    p.rate_per_node = 0.11;
    p.min_laxity_slots = 4;
    p.max_laxity_slots = 400;
    p.min_size_slots = 1;
    p.max_size_slots = 2;
    p.seed = 77;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 8000);
    n.run_slots(9000);
    const auto& be = n.stats().cls(core::TrafficClass::kBestEffort);
    const core::PriorityLayout& lay = cfg.priority;
    t4.row()
        .cell(static_cast<std::int64_t>(bits))
        .cell(static_cast<std::int64_t>(lay.real_time_hi() -
                                        lay.real_time_lo() + 1))
        .cell(n.codec().collection_bits())
        .cell(be.delivered)
        .pct(be.scheduling_miss_ratio(), 2);
  }
  t4.note("5 bits already resolves ~15 laxity doublings in the RT band; "
          "wider fields grow every collection packet for little gain -- "
          "supporting the paper's choice");
  t4.print(std::cout);
  return 0;
}
