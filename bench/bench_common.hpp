// Shared helpers for the experiment harness (bench_* binaries).
//
// Each binary reproduces one experiment from DESIGN.md §6 and prints the
// paper-style table/series through analysis::Table; EXPERIMENTS.md records
// prediction vs measurement.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "net/network.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf::bench {

enum class Protocol { kCcrEdf, kCcFpr, kTdma };

inline const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kCcrEdf:
      return "CCR-EDF";
    case Protocol::kCcFpr:
      return "CC-FPR";
    case Protocol::kTdma:
      return "TDMA";
  }
  return "?";
}

inline net::NetworkConfig make_config(NodeId nodes, Protocol proto,
                                      double link_length_m = 10.0,
                                      std::int64_t payload = 0) {
  net::NetworkConfig cfg;
  cfg.nodes = nodes;
  cfg.link_length_m = link_length_m;
  cfg.slot_payload_bytes = payload;
  switch (proto) {
    case Protocol::kCcrEdf:
      break;  // default factory
    case Protocol::kCcFpr:
      cfg.protocol_factory = baseline::ccfpr_factory();
      break;
    case Protocol::kTdma:
      cfg.protocol_factory = baseline::tdma_factory();
      break;
  }
  return cfg;
}

/// Opens every connection of a periodic set; returns how many admitted.
inline int open_all(net::Network& n,
                    const std::vector<core::ConnectionParams>& set) {
  int admitted = 0;
  for (const auto& c : set) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  return admitted;
}

/// Result digest used by several experiments.
struct RunDigest {
  std::int64_t rt_delivered = 0;
  double rt_sched_miss = 0.0;
  double rt_user_miss = 0.0;
  std::int64_t inversions = 0;
  double mean_latency_us = 0.0;
  double slot_fraction = 0.0;
  double goodput_bps = 0.0;
  double grants_per_busy_slot = 0.0;
};

inline RunDigest digest(const net::Network& n) {
  RunDigest d;
  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  d.rt_delivered = rt.delivered;
  d.rt_sched_miss = rt.scheduling_miss_ratio();
  d.rt_user_miss = rt.user_miss_ratio();
  d.inversions = n.stats().priority_inversions;
  d.mean_latency_us = rt.latency.mean() / 1e6;
  d.slot_fraction = n.stats().slot_time_fraction();
  d.goodput_bps = n.stats().goodput_bps();
  d.grants_per_busy_slot = n.stats().mean_grants_per_busy_slot();
  return d;
}

inline void header(const std::string& id, const std::string& title,
                   const std::string& paper_ref) {
  std::cout << "\n######## " << id << ": " << title << "\n"
            << "# paper artefact: " << paper_ref << "\n\n";
}

}  // namespace ccredf::bench
