// Shared helpers for the experiment harness (bench_* binaries).
//
// Each binary reproduces one experiment from DESIGN.md §6 and prints the
// paper-style table/series through analysis::Table; EXPERIMENTS.md records
// prediction vs measurement.
#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "net/network.hpp"
#include "sweep/grid.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf::bench {

// The protocol axis lives in the sweep module now (shared by the grid
// runner, the CLI and the benches).
using Protocol = sweep::Protocol;
using sweep::protocol_name;

inline net::NetworkConfig make_config(NodeId nodes, Protocol proto,
                                      double link_length_m = 10.0,
                                      std::int64_t payload = 0) {
  sweep::GridSpec spec;
  spec.link_length_m = link_length_m;
  spec.slot_payload_bytes = payload;
  sweep::GridPoint point;
  point.protocol = proto;
  point.nodes = nodes;
  net::NetworkConfig cfg = sweep::make_network_config(spec, point);
  // Benches drain inboxes in places; keep the library default.
  cfg.record_inboxes = true;
  return cfg;
}

/// Opens every connection of a periodic set; returns how many admitted.
inline int open_all(net::Network& n,
                    const std::vector<core::ConnectionParams>& set) {
  int admitted = 0;
  for (const auto& c : set) {
    if (n.open_connection(c).admitted) ++admitted;
  }
  return admitted;
}

// ---- fault-sweep scaffolding (bench_fault_recovery, E19) ---------------

/// One cell of a fault-rate sweep: the injected rate and the fragment
/// naming it in JSON keys.
struct BerCase {
  double ber;
  const char* label;
};

/// The canonical fault-experiment workload: tight deadlines (a few
/// slots), so one recovery stall or retransmission round trip overruns
/// them and faults translate directly into misses.
inline workload::PeriodicSetParams fault_workload(const net::Network& n,
                                                  double load = 0.5) {
  workload::PeriodicSetParams wp;
  wp.nodes = n.nodes();
  wp.connections = 12;
  wp.total_utilisation = load * n.timing().u_max();
  wp.min_period_slots = 8;
  wp.max_period_slots = 40;
  wp.seed = 3;
  return wp;
}

/// Result digest used by several experiments.
struct RunDigest {
  std::int64_t rt_delivered = 0;
  double rt_sched_miss = 0.0;
  double rt_user_miss = 0.0;
  std::int64_t inversions = 0;
  double mean_latency_us = 0.0;
  double slot_fraction = 0.0;
  double goodput_bps = 0.0;
  double grants_per_busy_slot = 0.0;
};

inline RunDigest digest(const net::Network& n) {
  RunDigest d;
  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  d.rt_delivered = rt.delivered;
  d.rt_sched_miss = rt.scheduling_miss_ratio();
  d.rt_user_miss = rt.user_miss_ratio();
  d.inversions = n.stats().priority_inversions;
  d.mean_latency_us = rt.latency.mean() / 1e6;
  d.slot_fraction = n.stats().slot_time_fraction();
  d.goodput_bps = n.stats().goodput_bps();
  d.grants_per_busy_slot = n.stats().mean_grants_per_busy_slot();
  return d;
}

inline void header(const std::string& id, const std::string& title,
                   const std::string& paper_ref) {
  std::cout << "\n######## " << id << ": " << title << "\n"
            << "# paper artefact: " << paper_ref << "\n\n";
}

// ---- machine-readable output (--json <path>) ---------------------------
//
// Benches that support it write `{"bench": <name>, "metrics": {...}}` so
// CI and later PRs can diff performance numbers run over run.

/// Consumes a `--json <path>` argument pair from argv (compacting it) and
/// returns the path, or "" when the flag is absent.
inline std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Flat metric document; insertion order is preserved in the output.
class JsonDoc {
 public:
  explicit JsonDoc(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  [[nodiscard]] std::string str() const {
    std::ostringstream os;
    os.precision(12);
    os << "{\"bench\": \"" << name_ << "\", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i != 0) os << ", ";
      os << '"' << metrics_[i].first << "\": ";
      // JSON has no NaN/inf literals.
      if (std::isfinite(metrics_[i].second)) {
        os << metrics_[i].second;
      } else {
        os << "null";
      }
    }
    os << "}}\n";
    return os.str();
  }

  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << str();
    return static_cast<bool>(out);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace ccredf::bench
