// E2 (paper Fig. 3, Eq. 2): the control channel must finish collecting
// requests for slot N+1 before slot N ends, which sets the minimum slot
// length t_minslot = N * t_node + t_prop.  Sweeps node count and ring
// length, reporting the minimum payload and verifying in simulation that
// arbitration always completes in time.
#include "bench_common.hpp"

#include "core/frames.hpp"
#include "core/schedulability.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E2", "minimum slot length and control/data overlap",
         "Fig. 3, Eq. 2, Section 4");

  analysis::Table t("E2a: Eq. 2 minimum slot vs nodes and link length");
  t.columns({"nodes", "link (m)", "t_minslot (ns)", "min payload (B)",
             "collection bits", "control fits min slot"});
  for (const NodeId nodes : {NodeId{4}, NodeId{8}, NodeId{16}, NodeId{32},
                             NodeId{64}}) {
    for (const double len : {5.0, 10.0, 50.0}) {
      const phy::RingPhy ring(phy::optobus(), nodes, len);
      const auto min_payload = core::SlotTiming::min_payload_bytes(ring);
      const core::SlotTiming timing(ring, min_payload);
      const core::FrameCodec codec(nodes, core::PriorityLayout{}, false);
      // The collection packet must also fit the slot bit-wise: its bits
      // ride the same clock as the payload bytes.
      const bool fits =
          codec.collection_bits() + codec.distribution_bits() <=
          min_payload + static_cast<std::int64_t>(nodes) *
                            ring.link().node_passthrough_bits;
      t.row()
          .cell(static_cast<std::int64_t>(nodes))
          .cell(len, 0)
          .cell(timing.min_slot().ns(), 1)
          .cell(min_payload)
          .cell(codec.collection_bits())
          .cell(fits ? "yes" : "NO");
    }
  }
  t.note("Eq. 2: t_minslot = N*t_node + t_prop; propagation dominates for "
         "long rings, per-node passthrough for large N");
  t.print(std::cout);

  // Simulated verification: at the minimum slot size the engine keeps the
  // arbitration pipeline full -- a saturated ring stays 100% busy.
  analysis::Table v("E2b: simulated pipeline check at minimum slot size");
  v.columns({"nodes", "slots run", "busy slots", "pipeline intact"});
  for (const NodeId nodes : {NodeId{4}, NodeId{16}, NodeId{32}}) {
    auto cfg = make_config(nodes, Protocol::kCcrEdf);
    cfg.slot_payload_bytes = 0;  // auto = Eq. 2 minimum (>= floor)
    net::Network n(cfg);
    workload::PoissonParams p;
    p.rate_per_node = 3.0;
    p.seed = 5;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 1200);
    n.run_slots(1000);
    // After the 2-slot pipeline fill, every slot should carry data.
    const bool intact = n.stats().busy_slots >= n.stats().slots - 3;
    v.row()
        .cell(static_cast<std::int64_t>(nodes))
        .cell(n.stats().slots)
        .cell(n.stats().busy_slots)
        .cell(intact ? "yes" : "NO");
  }
  v.note("arbitration for slot k+1 rides the control channel during slot "
         "k (Fig. 3): a saturated ring never idles a slot");
  v.print(std::cout);
  return 0;
}
