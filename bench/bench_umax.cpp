// E4 (paper Eq. 6): the worst-case guaranteed utilisation
// U_max = t_slot / (t_slot + t_handover_max).  Sweeps node count, link
// length and slot payload; verifies in simulation that a saturated ring
// (spatial reuse off, as the analysis assumes) achieves at least U_max
// slot-time fraction -- the bound is the floor, attained only when every
// hand-over is worst case.
#include "bench_common.hpp"

#include "core/schedulability.hpp"
#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E4", "worst-case guaranteed utilisation U_max",
         "Eq. 6, Sections 4-6");

  analysis::Table t("E4a: analytic U_max sweep (payload 1024 B)");
  t.columns({"nodes", "link (m)", "t_slot (ns)", "t_homax (ns)", "U_max"});
  for (const NodeId nodes : {NodeId{4}, NodeId{8}, NodeId{16}, NodeId{32}}) {
    for (const double len : {5.0, 10.0, 50.0, 100.0}) {
      const phy::RingPhy ring(phy::optobus(), nodes, len);
      const core::SlotTiming timing(
          ring, std::max<std::int64_t>(
                    1024, core::SlotTiming::min_payload_bytes(ring)));
      t.row()
          .cell(static_cast<std::int64_t>(nodes))
          .cell(len, 0)
          .cell(timing.slot().ns(), 0)
          .cell(timing.max_handover().ns(), 1)
          .cell(timing.u_max(), 4);
    }
  }
  t.note("U_max falls with N and L (longer worst-case hand-over) and "
         "rises with slot payload (gap amortised)");
  t.print(std::cout);

  analysis::Table p("E4b: U_max vs slot payload (8 nodes, 10 m)");
  p.columns({"payload (B)", "t_slot (ns)", "U_max", "wire efficiency"});
  const phy::RingPhy ring8(phy::optobus(), 8, 10.0);
  for (const std::int64_t payload : {176LL, 256LL, 512LL, 1024LL, 4096LL,
                                     16384LL}) {
    const core::SlotTiming timing(ring8, payload);
    p.row()
        .cell(payload)
        .cell(timing.slot().ns(), 0)
        .cell(timing.u_max(), 4)
        .pct(timing.u_max(), 1);
  }
  p.note("the latency/utilisation trade-off the paper discusses: short "
         "slots cut latency but pay the hand-over gap more often");
  p.print(std::cout);

  // E4c: measured slot-time fraction at saturation, one message per slot
  // (the analysis assumption), against the analytic floor.  Runs as a
  // saturation-mix sweep: no connections, every node flooded with Poisson
  // best-effort traffic at saturation_rate.
  sweep::GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4, 8, 16};
  spec.utilisations = {1.0};  // unused by the saturation mix
  spec.mixes = {sweep::WorkloadMix::kSaturation};
  spec.set_seeds = {31};
  spec.slots = 5000;
  spec.saturation_rate = 3.0;  // saturate every queue
  spec.spatial_reuse = false;
  spec.slot_payload_bytes = 1024;
  const sweep::SweepResult res = sweep::run_sweep(spec, {.threads = 0});

  analysis::Table m("E4c: measured utilisation at saturation vs bound");
  m.columns({"nodes", "U_max (Eq.6)", "measured slot fraction",
             "bound holds"});
  for (const sweep::PointResult& pr : res.points) {
    const double u_max = pr.mean(sweep::Metric::kUMax);
    const double measured = pr.mean(sweep::Metric::kSlotFraction);
    m.row()
        .cell(static_cast<std::int64_t>(pr.point.nodes))
        .cell(u_max, 4)
        .cell(measured, 4)
        .cell(measured >= u_max - 1e-9 ? "yes" : "NO");
  }
  m.note("measured >= U_max because real hand-overs average < N-1 hops; "
         "Eq. 6 is the guaranteed worst case");
  m.print(std::cout);
  return 0;
}
