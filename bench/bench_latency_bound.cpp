// E7 (paper Eq. 3-4): the protocol latency bound.  Every message may be
// delayed beyond its EDF schedule by at most t_latency = 2*t_slot +
// t_handover_max (one just-missed slot + one arbitration slot + worst
// hand-over), so user-level delivery always lands within t_maxdelay =
// t_deadline + t_latency.  Measures the actual overshoot distribution.
#include "bench_common.hpp"

#include "sim/stats.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E7", "worst-case protocol latency", "Eq. 3-4, Section 5");

  constexpr NodeId kNodes = 8;
  analysis::Table t(
      "E7: delivery overshoot past the EDF deadline vs Eq. 4 bound");
  t.columns({"u / U_max", "delivered", "p50 lat (us)", "p99 lat (us)",
             "max overshoot (ns)", "Eq.4 bound (ns)", "bound holds"});

  for (const double frac : {0.4, 0.7, 0.9}) {
    net::Network n(make_config(kNodes, Protocol::kCcrEdf));
    const double bound_ns = n.timing().worst_case_latency().ns();

    // Track the worst overshoot (completion - scheduling deadline) and
    // the delivery-latency distribution.
    std::int64_t max_overshoot_ps = 0;
    std::int64_t delivered = 0;
    sim::Histogram latency(0.0, 1e9, 200);  // ps, up to 1 ms
    n.add_slot_observer([&](const net::SlotRecord& rec) {
      for (const auto& d : rec.deliveries) {
        if (d.deadline == sim::TimePoint::infinity()) continue;
        ++delivered;
        latency.add(d.latency());
        const std::int64_t over = (d.completed - d.deadline).ps();
        max_overshoot_ps = std::max(max_overshoot_ps, over);
      }
    });

    workload::PeriodicSetParams wp;
    wp.nodes = kNodes;
    wp.connections = 20;
    wp.total_utilisation = frac * n.timing().u_max();
    wp.min_period_slots = 12;
    wp.max_period_slots = 200;
    wp.seed = 13;
    open_all(n, workload::make_periodic_set(wp));
    n.run_slots(12'000);

    t.row()
        .cell(frac, 2)
        .cell(delivered)
        .cell(latency.quantile(0.5) / 1e6, 2)
        .cell(latency.quantile(0.99) / 1e6, 2)
        .cell(static_cast<double>(max_overshoot_ps) / 1e3, 1)
        .cell(bound_ns, 1)
        .cell(static_cast<double>(max_overshoot_ps) / 1e3 <= bound_ns
                  ? "yes"
                  : "NO");
  }
  t.note("Eq. 3: the user perceives t_maxdelay = t_deadline + t_latency; "
         "the scheduler works against t_deadline, so any overshoot is "
         "bounded by Eq. 4");
  t.print(std::cout);

  // Latency anatomy on an idle ring: best case vs the pipeline's
  // structural 2-slot floor.
  analysis::Table a("E7b: single-message latency anatomy (idle ring)");
  a.columns({"component", "ns"});
  net::Network n(make_config(kNodes, Protocol::kCcrEdf));
  n.send_best_effort(0, NodeSet::single(4), 1, sim::Duration::seconds(1));
  n.run_slots(5);
  const auto& inbox = n.node(4).inbox();
  if (!inbox.empty()) {
    a.row().cell("measured arrival->delivery").cell(
        inbox[0].latency().ns(), 1);
  }
  a.row().cell("one slot (t_slot)").cell(n.timing().slot().ns(), 1);
  a.row().cell("Eq. 4 worst-case latency").cell(
      n.timing().worst_case_latency().ns(), 1);
  a.note("idle-ring latency ~ 2 slots: one to arbitrate, one to "
         "transmit -- exactly the pipeline of Fig. 3");
  a.print(std::cout);
  return 0;
}
