// E14 (ablation; paper §4's latency/utilisation trade-off made
// concrete): the slot payload is the one free design parameter of the
// network.  Sweeps the tuner across latency targets and validates each
// recommendation in simulation.
#include "bench_common.hpp"

#include "analysis/tuner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E14", "slot-size tuning ablation",
         "Section 4 (slot-length trade-off; tuner is our extension)");

  const phy::RingPhy ring(phy::optobus(), 8, 10.0);
  const core::FrameCodec codec(8, core::PriorityLayout{}, false);

  analysis::Table t("E14a: tuner recommendation vs latency target "
                    "(8 nodes, 10 m)");
  t.columns({"target (us)", "feasible", "payload (B)", "t_slot (ns)",
             "U_max", "Eq.4 latency (ns)"});
  for (const std::int64_t target_us : {1LL, 2LL, 5LL, 10LL, 50LL, 200LL}) {
    const auto r = analysis::tune_slot_size(
        ring, codec, sim::Duration::microseconds(target_us));
    t.row()
        .cell(target_us)
        .cell(r.feasible ? "yes" : "NO")
        .cell(r.payload_bytes)
        .cell(r.slot.ns(), 0)
        .cell(r.u_max, 4)
        .cell(r.worst_case_latency.ns(), 0);
  }
  t.note("tight targets force small slots and sacrifice U_max; the knee "
         "sits where the hand-over gap stops dominating");
  t.print(std::cout);

  // Validate two recommendations end to end: admit a set sized to the
  // tuned U_max and check the guarantee.
  analysis::Table v("E14b: simulated validation of tuned slots");
  v.columns({"target (us)", "payload (B)", "admitted u", "RT delivered",
             "user misses", "max latency (us)"});
  for (const std::int64_t target_us : {5LL, 50LL}) {
    const auto r = analysis::tune_slot_size(
        ring, codec, sim::Duration::microseconds(target_us));
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.slot_payload_bytes = r.payload_bytes;
    net::Network n(cfg);
    workload::PeriodicSetParams wp;
    wp.nodes = 8;
    wp.connections = 12;
    wp.total_utilisation = 0.8 * n.timing().u_max();
    wp.min_period_slots = 20;
    wp.max_period_slots = 200;
    wp.seed = 19;
    open_all(n, workload::make_periodic_set(wp));
    sim::OnlineStats lat;
    n.add_slot_observer([&](const net::SlotRecord& rec) {
      for (const auto& d : rec.deliveries) lat.add(d.latency());
    });
    n.run_slots(6000);
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    v.row()
        .cell(target_us)
        .cell(r.payload_bytes)
        .cell(n.admission().utilisation(), 3)
        .cell(rt.delivered)
        .cell(rt.user_misses)
        .cell(lat.max() / 1e6, 2);
  }
  v.note("both tunings keep the guarantee; the small-slot tuning trades "
         "~30 points of U_max for an order of magnitude less latency");
  v.print(std::cout);
  return 0;
}
