// E19: data-channel fault model with deadline-aware end-to-end
// reliability and graceful degradation (paper section 1's reliable
// user service meeting section 8's fault-tolerance sketch).
//
// E19a  deadline-miss ratio of three reliability strategies under the
//       same data-channel BER and the same transfer schedule:
//         crc_arq  -- payload CRC-32 + NACK wire + laxity-budgeted ARQ
//                     (retransmissions re-enter EDF at their true
//                     remaining laxity; hopeless transfers abandoned);
//         fixed    -- payload CRC-32 + NACK wire, but fixed retries at
//                     the original relative deadline until the attempt
//                     cap (the classical timeout-ARQ baseline);
//         nocrc    -- no payload CRC: corruption is delivered as
//                     garbage, which counts as a miss (the transfer
//                     carried the wrong bits to the application).
//       The bench FAILS (exit 1) unless crc_arq's miss ratio is
//       strictly below both baselines.
// E19b  undetected-corruption count at BER 1e-6 with the CRC on: the
//       2^-32 residual must not fire at these exposures (exit 1 if it
//       does).
// E19c  graceful degradation: the AdmissionAgent health monitor derates
//       the admission bound as the measured corruption rate rises; the
//       capacity factor must be monotonically non-increasing along the
//       BER axis (exit 1 otherwise).
// E19d  determinism: a data-BER sweep grid run with 1 and 8 worker
//       threads must serialise to byte-identical JSON (exit 1 otherwise).
//
// Flags: --quick (short windows), --json <path>
// (BENCH_data_reliability.json).
#include "bench_common.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "services/admission_agent.hpp"
#include "services/reliable.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

struct StrategyResult {
  std::int64_t total = 0;
  std::int64_t met = 0;       // delivered intact, on or before deadline
  std::int64_t garbage = 0;   // delivered corrupted (nocrc only)
  std::int64_t abandoned = 0;
  std::int64_t retx = 0;
  std::int64_t nacks = 0;
  double miss_ratio = 1.0;
};

/// One strategy run: every node streams reliable transfers with tight
/// deadlines over a ring whose data fibres flip bits at `data_ber`.
/// All data traffic is reliable transfers, so every undetected payload
/// corruption maps one-to-one to a transfer delivered as garbage.
StrategyResult run_strategy(bool payload_crc, bool laxity_budgeted,
                            double data_ber,
                            std::int64_t transfers_per_node) {
  auto cfg = make_config(8, Protocol::kCcrEdf);
  cfg.with_acks = true;
  cfg.with_payload_crc = payload_crc;
  net::Network n(cfg);
  fault::FaultInjector inj(n, 31);
  if (data_ber > 0.0) inj.set_data_ber(data_ber);

  services::ReliableChannel::Params rp;
  rp.max_attempts = 8;
  rp.laxity_budgeted = laxity_budgeted;
  services::ReliableChannel ch(n, rp);

  // Tight regime: the deadline covers the first attempt plus roughly one
  // retransmission round, and the offered load keeps every slot
  // contended -- so WHERE a retry enters the EDF order decides whether
  // it lands in time, and hopeless repeats burn slots others need.
  const sim::Duration extent = n.timing().slot_plus_max_gap();
  constexpr std::int64_t kPeriodSlots = 10;
  constexpr std::int64_t kDeadlineSlots = 14;
  constexpr std::int64_t kSizeSlots = 2;

  StrategyResult res;
  for (NodeId src = 0; src < n.nodes(); ++src) {
    const NodeId dst = static_cast<NodeId>((src + 3) % n.nodes());
    for (std::int64_t k = 0; k < transfers_per_node; ++k) {
      const sim::TimePoint at =
          sim::TimePoint::origin() +
          extent * (5 + static_cast<std::int64_t>(src) + k * kPeriodSlots);
      n.sim().schedule_at(at, [&res, &ch, &n, src, dst, extent] {
        ++res.total;
        ch.send(src, dst, kSizeSlots, extent * kDeadlineSlots,
                [&res](const services::ReliableChannel::TransferResult& r) {
                  if (r.delivered && r.completed <= r.deadline) ++res.met;
                });
        (void)n;
      });
    }
  }

  // Horizon in wall time (worst-case slot extents): the send schedule is
  // keyed to wall-clock instants, so a wall horizon guarantees every
  // strategy fires the identical transfer set regardless of how its
  // retransmission load shifts the hand-over gaps.
  const std::int64_t horizon =
      transfers_per_node * kPeriodSlots + 8 + 200;  // drain tail
  n.run_for(extent * horizon);

  res.garbage = n.stats().faults.payload_undetected;
  res.abandoned = ch.transfers_abandoned();
  res.retx = ch.retransmissions();
  res.nacks = ch.nacks_received();
  // A garbage delivery "met" its deadline at the service layer but
  // carried the wrong bits -- subtract it from the successes.
  const std::int64_t effective_met =
      std::max<std::int64_t>(0, res.met - res.garbage);
  res.miss_ratio =
      res.total == 0
          ? 1.0
          : 1.0 - static_cast<double>(effective_met) /
                      static_cast<double>(res.total);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  JsonDoc doc("data_reliability");
  bool ok = true;

  header("E19", "data-channel faults, laxity-budgeted ARQ and graceful "
                "degradation",
         "Section 1 (reliable user service) + Section 8 (fault handling)");

  // -- E19a: strategy comparison at a fixed data BER ----------------------
  // ~340-byte slots over ~3 links: 3e-5 corrupts roughly one transfer in
  // three -- enough retransmission pressure to separate the strategies
  // without collapsing the ring.
  const double kBer = 3e-5;
  const std::int64_t per_node = quick ? 60 : 200;
  const StrategyResult arq = run_strategy(true, true, kBer, per_node);
  const StrategyResult fixed = run_strategy(true, false, kBer, per_node);
  const StrategyResult nocrc = run_strategy(false, true, kBer, per_node);

  analysis::Table a(
      "E19a: deadline-miss ratio by reliability strategy (8 nodes, data "
      "BER 3e-5, tight deadlines, identical transfer schedule)");
  a.columns({"strategy", "transfers", "met", "garbage", "NACKs", "retx",
             "abandoned", "miss ratio"});
  const auto arow = [&a](const char* name, const StrategyResult& r) {
    a.row()
        .cell(name)
        .cell(r.total)
        .cell(r.met)
        .cell(r.garbage)
        .cell(r.nacks)
        .cell(r.retx)
        .cell(r.abandoned)
        .pct(r.miss_ratio, 2);
  };
  arow("crc + laxity ARQ", arq);
  arow("crc + fixed retry", fixed);
  arow("no crc", nocrc);
  a.note("laxity budgeting beats fixed retries by abandoning hopeless "
         "transfers (freeing their slots) and re-entering EDF at the true "
         "tighter laxity; without the CRC, corruption is silent garbage "
         "-- a miss the application cannot even see");
  a.print(std::cout);

  doc.set("arq_miss_ratio", arq.miss_ratio);
  doc.set("fixed_miss_ratio", fixed.miss_ratio);
  doc.set("nocrc_miss_ratio", nocrc.miss_ratio);
  doc.set("arq_abandoned", static_cast<double>(arq.abandoned));
  doc.set("arq_nacks", static_cast<double>(arq.nacks));
  doc.set("arq_retx", static_cast<double>(arq.retx));
  doc.set("fixed_retx", static_cast<double>(fixed.retx));
  doc.set("nocrc_garbage", static_cast<double>(nocrc.garbage));
  if (!(arq.miss_ratio < fixed.miss_ratio &&
        arq.miss_ratio < nocrc.miss_ratio)) {
    std::cerr << "E19a FAIL: crc+laxity-ARQ miss ratio not strictly below "
                 "both baselines\n";
    ok = false;
  }

  // -- E19b: no undetected corruption at realistic BER --------------------
  const StrategyResult low =
      run_strategy(true, true, 1e-6, quick ? 60 : 200);
  std::cout << "E19b: BER 1e-6 with payload CRC: "
            << low.garbage << " undetected corruptions ("
            << low.nacks << " detected+NACKed)\n\n";
  doc.set("low_ber_undetected", static_cast<double>(low.garbage));
  doc.set("low_ber_nacks", static_cast<double>(low.nacks));
  if (low.garbage != 0) {
    std::cerr << "E19b FAIL: undetected payload corruption at BER 1e-6\n";
    ok = false;
  }

  // -- E19c: graceful degradation of the admission bound ------------------
  const std::int64_t e19c_slots = quick ? 3'000 : 8'000;
  analysis::Table c(
      "E19c: health-monitor derating vs data-channel BER (8 nodes, "
      "admitted load 0.5 U_max, payload CRC on)");
  c.columns({"data BER", "corrupt", "observed rate", "renegotiations",
             "capacity factor", "effective U_max"});
  const BerCase derate_cases[] = {{0.0, "ber0"},
                                  {1e-5, "ber1e5"},
                                  {5e-5, "ber5e5"},
                                  {2e-4, "ber2e4"}};
  double prev_factor = 1.0;
  bool monotone = true;
  for (const auto& [ber, label] : derate_cases) {
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.with_acks = true;
    cfg.with_payload_crc = true;
    net::Network n(cfg);
    fault::FaultInjector inj(n, 47);
    if (ber > 0.0) inj.set_data_ber(ber);
    services::AdmissionAgent::Params ap;
    ap.health_window_slots = 500;
    ap.derate_threshold = 0.005;
    services::AdmissionAgent agent(n, ap);
    open_all(n, workload::make_periodic_set(fault_workload(n)));
    n.run_slots(e19c_slots);
    c.row()
        .cell(ber, 6)
        .cell(n.stats().faults.payload_corruptions)
        .pct(agent.observed_corruption_rate(), 2)
        .cell(agent.renegotiations())
        .cell(agent.capacity_factor(), 4)
        .cell(n.admission().effective_u_max(), 4);
    doc.set(std::string("derate_") + label + "_factor",
            agent.capacity_factor());
    doc.set(std::string("derate_") + label + "_effective_umax",
            n.admission().effective_u_max());
    if (agent.capacity_factor() > prev_factor) monotone = false;
    prev_factor = agent.capacity_factor();
  }
  c.note("each corrupted transfer returns as a retransmission, so the "
         "monitor derates U_max by the measured corruption rate -- the "
         "ring sheds admission capacity instead of silently missing "
         "deadlines in degraded mode");
  c.print(std::cout);
  doc.set("derate_monotone", monotone ? 1.0 : 0.0);
  if (!monotone) {
    std::cerr << "E19c FAIL: capacity factor not monotone along the BER "
                 "axis\n";
    ok = false;
  }

  // -- E19d: thread-count determinism of the data-BER fault axis ----------
  sweep::GridSpec spec;
  spec.node_counts = {8};
  spec.utilisations = {0.5};
  spec.data_bers = {0.0, 2e-4};
  spec.payload_crc = true;
  spec.mixes = {sweep::WorkloadMix::kPeriodic};
  spec.repetitions = 2;
  spec.slots = quick ? 400 : 1200;
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  spec.base_seed = 19;
  const std::string json_1t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 1}));
  const std::string json_8t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 8}));
  const bool identical = json_1t == json_8t;
  std::cout << "E19d: data-BER sweep 1-thread vs 8-thread JSON: "
            << (identical ? "byte-identical" : "MISMATCH") << "\n";
  doc.set("threads_json_identical", identical ? 1.0 : 0.0);
  if (!identical) {
    std::cerr << "E19d FAIL: sweep output depends on thread count\n";
    ok = false;
  }

  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_data_reliability: cannot write " << json_path
                << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
