// E17 (engineering metric): throughput and parallel speedup of the
// sweep runner, plus a determinism self-check.  The E17 grid covers the
// three protocols at four loads on three ring sizes; the same grid is run
// with 1 worker thread and with 8, the aggregated JSON documents are
// compared byte-for-byte, and shard throughput + speedup land in
// BENCH_sweep.json for CI trend tracking.
//
// Note: speedup is bounded by the machine -- on an M-core host the ideal
// is min(8, M); `hardware_threads` is recorded alongside so a 1.0x on a
// single-core container reads as expected, not as a regression.
#include "bench_common.hpp"

#include <string>
#include <thread>

#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

sweep::GridSpec e17_grid(bool quick) {
  sweep::GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kCcFpr, Protocol::kTdma};
  spec.node_counts = quick ? std::vector<NodeId>{4, 8}
                           : std::vector<NodeId>{4, 8, 16};
  spec.utilisations = quick ? std::vector<double>{0.3, 0.7}
                            : std::vector<double>{0.3, 0.5, 0.7, 0.85};
  spec.mixes = {sweep::WorkloadMix::kPeriodic};
  spec.set_seeds = {1};
  spec.repetitions = 2;
  spec.slots = quick ? 1000 : 4000;
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  spec.base_seed = 17;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick =
      argc > 1 && std::string(argv[1]) == "--quick";

  header("E17", "parallel sweep-runner throughput & determinism",
         "engineering metric (no paper artefact); DESIGN.md section 9");

  const sweep::GridSpec spec = e17_grid(quick);
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());

  // Discarded warm-up pass: first-touch page faults and allocator growth
  // would otherwise be billed entirely to the threads=1 measurement and
  // flatter the speedup.
  (void)sweep::run_sweep(spec, {.threads = 0});

  analysis::Table t("E17: sweep wall-clock vs worker threads");
  t.columns({"threads", "shards", "wall (s)", "shards/s", "speedup"});
  double wall_1t = 0.0;
  double wall_8t = 0.0;
  double shards_per_s_1t = 0.0;
  double shards_per_s_8t = 0.0;
  std::string json_1t;
  bool identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    sweep::RunOptions opts;
    opts.threads = threads;
    const sweep::SweepResult res = sweep::run_sweep(spec, opts);
    const auto shards = static_cast<double>(res.shards);
    const double rate = shards / res.wall_seconds;
    if (threads == 1) {
      wall_1t = res.wall_seconds;
      shards_per_s_1t = rate;
      json_1t = sweep::to_json(res);
    } else {
      identical = identical && sweep::to_json(res) == json_1t;
    }
    if (threads == 8) {
      wall_8t = res.wall_seconds;
      shards_per_s_8t = rate;
    }
    t.row()
        .cell(static_cast<std::int64_t>(threads))
        .cell(res.shards)
        .cell(res.wall_seconds, 3)
        .cell(rate, 1)
        .cell(wall_1t / res.wall_seconds, 2);
  }
  t.note("aggregated JSON byte-identical across thread counts: " +
         std::string(identical ? "yes" : "NO (BUG)") +
         "; hardware threads on this host: " + std::to_string(hw));
  t.print(std::cout);

  if (!json_path.empty()) {
    JsonDoc doc("sweep");
    doc.set("shards", static_cast<double>(spec.shard_count()));
    doc.set("points", static_cast<double>(spec.point_count()));
    doc.set("slots_per_shard", static_cast<double>(spec.slots));
    doc.set("wall_s_1t", wall_1t);
    doc.set("wall_s_8t", wall_8t);
    doc.set("shards_per_s_1t", shards_per_s_1t);
    doc.set("shards_per_s_8t", shards_per_s_8t);
    doc.set("speedup_8t_vs_1t", wall_1t / wall_8t);
    doc.set("hardware_threads", static_cast<double>(hw));
    doc.set("json_identical", identical ? 1.0 : 0.0);
    if (!doc.write(json_path)) {
      std::cerr << "bench_sweep: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << doc.str();
  }
  return identical ? 0 : 1;
}
