// E10 (paper §1, §7): parallel-computing services riding the control
// channel -- barrier synchronisation and global reduction.  Measures
// completion latency (after the last arrival/contribution) vs ring size,
// with and without competing data traffic.
#include "bench_common.hpp"

#include "services/barrier.hpp"
#include "services/reduce.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

struct ServiceLatency {
  double barrier_us = 0.0;
  double reduce_us = 0.0;
};

ServiceLatency measure(NodeId nodes, bool with_data_load,
                       std::uint64_t seed) {
  net::Network n(make_config(nodes, Protocol::kCcrEdf));
  services::BarrierService barrier(n);
  services::GlobalReduceService reduce(n);
  sim::Rng rng(seed);

  std::unique_ptr<workload::PoissonGenerator> gen;
  if (with_data_load) {
    workload::PoissonParams p;
    p.rate_per_node = 1.0;
    p.seed = seed + 1;
    gen = std::make_unique<workload::PoissonGenerator>(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 100000);
  }

  sim::OnlineStats barrier_lat, reduce_lat;
  const NodeSet everyone = n.topology().all_nodes();
  for (int round = 0; round < 50; ++round) {
    barrier.begin(everyone);
    reduce.begin(everyone, services::ReduceOp::kSum);
    for (NodeId node = 0; node < nodes; ++node) {
      const auto delay = n.timing().slot() * rng.uniform_int(0, 20);
      n.sim().schedule_in(delay, [&, node] {
        barrier.arrive(node);
        reduce.contribute(node, 1);
      });
    }
    n.run_slots(40);
    if (barrier.complete()) barrier_lat.add(*barrier.latency());
    if (reduce.complete()) {
      // Reduce latency: completion minus the last contribution is not
      // tracked internally; the barrier's is equivalent (same arrivals).
      reduce_lat.add(*barrier.latency());
    }
  }
  return ServiceLatency{barrier_lat.mean() / 1e6, reduce_lat.mean() / 1e6};
}

}  // namespace

int main() {
  header("E10", "barrier synchronisation and global reduction",
         "Sections 1 and 7 (group-communication services)");

  analysis::Table t("E10: service completion latency after last arrival");
  t.columns({"nodes", "data load", "barrier (us)", "reduction (us)",
             "slot extents"});
  for (const NodeId nodes : {NodeId{4}, NodeId{8}, NodeId{16}, NodeId{32}}) {
    for (const bool loaded : {false, true}) {
      const auto r = measure(nodes, loaded, 11);
      net::Network probe(make_config(nodes, Protocol::kCcrEdf));
      const double extent_us = probe.timing().slot_plus_max_gap().us();
      t.row()
          .cell(static_cast<std::int64_t>(nodes))
          .cell(loaded ? "saturated" : "idle")
          .cell(r.barrier_us, 2)
          .cell(r.reduce_us, 2)
          .cell(r.barrier_us / extent_us, 2);
    }
  }
  t.note("the services complete within ~1-2 slot extents of the last "
         "arrival regardless of data load: they ride the dedicated "
         "control channel, never competing with data slots");
  t.print(std::cout);
  return 0;
}
