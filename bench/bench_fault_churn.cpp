// E22: failure detection, bandwidth reclamation and staged re-admission
// under continuous node churn (services::ResilienceMonitor closing the
// paper section 8 failure loop with on-wire evidence only).
//
// E22a  containment: an admitted periodic RT set runs under continuous
//       churn of the two highest-numbered nodes (exponential up/down
//       renewals through fault::FaultInjector).  Connections whose
//       source AND destinations are disjoint from every churned node
//       must miss ZERO user deadlines across the whole horizon -- a
//       churned node may only ever hurt traffic that touches it (exit 1
//       otherwise).  Three invariants ride along: detection latency
//       never exceeds detection_window + 1 slots, the utilisation drop
//       of every quarantine equals the released Eq. 5/6 weight to
//       within 1e-9, and the loop actually cycled (downs > 0,
//       re-admissions > 0).
// E22b  recovery-gap distribution: the same run's token-loss recovery
//       gaps (churned masters die mid-slot) exported as exact
//       nearest-rank p50/p99 -- p50 <= p99, both positive whenever any
//       recovery happened (exit 1 otherwise).
// E22c  determinism: a churn-axis grid (churns = 0 and a live cell)
//       must serialise to byte-identical JSON with 1 and 8 worker
//       threads AND with fast-forward on and off -- the monitor is a
//       ResilienceHook, so the idle fast-forward stays enabled and must
//       stay bit-exact through detection windows and re-admission
//       drains (exit 1 otherwise).
//
// Flags: --quick (2e5-slot horizon instead of 1e7), --json <path>
// (BENCH_fault_churn.json).
#include "bench_common.hpp"

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "services/resilience.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "workload/churn.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

constexpr NodeId kNodes = 8;
constexpr std::int64_t kDetectWindow = 16;
// Mean dwells in slot extents: long healthy stretches, repairs far
// above the detection window so every failure is seen and every repair
// re-admits.
constexpr double kMeanUpSlots = 40'000.0;
constexpr double kMeanDownSlots = 2'000.0;

struct ChurnRun {
  int admitted = 0;
  int disjoint_count = 0;
  std::int64_t disjoint_user_misses = 0;
  std::int64_t touching_user_misses = 0;
  std::int64_t failures_scheduled = 0;
  services::ResilienceStats monitor;
  std::int64_t recoveries = 0;
  std::int64_t recovery_p50_ps = 0;
  std::int64_t recovery_p99_ps = 0;
};

ChurnRun run_case(std::int64_t horizon_slots) {
  net::NetworkConfig cfg = make_config(kNodes, Protocol::kCcrEdf);
  cfg.record_inboxes = false;  // long horizon must stay memory-bounded
  net::Network n(cfg);

  // The two highest-numbered nodes churn; node 0 (designated restarter)
  // and the bulk of the ring stay healthy.
  NodeSet churned;
  churned.insert(kNodes - 2);
  churned.insert(kNodes - 1);

  fault::FaultInjector injector(n, /*seed=*/22);
  services::ResilienceParams rp;
  rp.detection_window_slots = kDetectWindow;
  services::ResilienceMonitor monitor(n, rp);

  workload::PeriodicSetParams wp;
  wp.nodes = kNodes;
  wp.connections = 16;
  wp.total_utilisation = 0.5 * n.timing().u_max();
  wp.min_period_slots = 20;
  wp.max_period_slots = 120;
  wp.seed = 22;

  ChurnRun res;
  std::vector<ConnectionId> disjoint;
  std::vector<ConnectionId> touching;
  for (const auto& c : workload::make_periodic_set(wp)) {
    const auto open = n.open_connection(c);
    if (!open.admitted) continue;
    ++res.admitted;
    if (!churned.contains(c.source) && !c.dests.intersects(churned)) {
      disjoint.push_back(open.id);
    } else {
      touching.push_back(open.id);
    }
  }
  res.disjoint_count = static_cast<int>(disjoint.size());

  workload::ChurnParams chp;
  chp.nodes = churned;
  chp.mean_up_slots = kMeanUpSlots;
  chp.mean_down_slots = kMeanDownSlots;
  chp.seed = 22;
  const workload::ChurnProcess churn(
      n, injector, chp,
      sim::TimePoint::origin() + n.timing().slot() * horizon_slots);
  res.failures_scheduled = churn.failures_scheduled();

  n.run_slots(horizon_slots);

  for (const ConnectionId id : disjoint) {
    res.disjoint_user_misses += n.connection_stats(id).user_misses;
  }
  for (const ConnectionId id : touching) {
    res.touching_user_misses += n.connection_stats(id).user_misses;
  }
  res.monitor = monitor.stats();
  res.recoveries = n.recoveries();
  const auto& gaps = n.stats().faults.recovery_gap_quantiles;
  res.recovery_p50_ps = gaps.quantile(0.5);
  res.recovery_p99_ps = gaps.quantile(0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  JsonDoc doc("fault_churn");
  bool ok = true;

  header("E22",
         "Failure detection, bandwidth reclamation and staged "
         "re-admission under continuous node churn",
         "Section 8 (failure handling) grown into a closed loop");

  const std::int64_t horizon = quick ? 200'000 : 10'000'000;
  const ChurnRun r = run_case(horizon);

  // -- E22a: containment + detection/reclamation invariants ---------------
  analysis::Table a(
      "E22a: containment under churn (8 nodes, RT load 0.5 U_max, nodes "
      "6-7 churning, detection window " +
      std::to_string(kDetectWindow) + " slots, horizon " +
      std::to_string(horizon) + " slots)");
  a.columns({"quantity", "value"});
  a.row().cell("RT connections admitted").cell(r.admitted);
  a.row().cell("disjoint connections").cell(r.disjoint_count);
  a.row().cell("disjoint user misses").cell(r.disjoint_user_misses);
  a.row().cell("touching user misses").cell(r.touching_user_misses);
  a.row().cell("failures scheduled").cell(r.failures_scheduled);
  a.row().cell("downs declared").cell(r.monitor.downs);
  a.row().cell("reappearances").cell(r.monitor.reappearances);
  a.row()
      .cell("detection latency max (slots)")
      .cell(r.monitor.detection_latency_slots.max(), 0);
  a.row()
      .cell("weight reclaimed (sum)")
      .cell(r.monitor.weight_reclaimed, 4);
  a.row().cell("reclaim error (max)").cell(r.monitor.reclaim_error, 12);
  a.row().cell("re-admission attempts").cell(r.monitor.readmit_attempts);
  a.row().cell("re-admissions").cell(r.monitor.readmissions);
  a.note("a churned node may only hurt traffic that touches it: the "
         "disjoint set's user-miss count must be exactly zero, and every "
         "quarantine must release exactly the weight Eq. 5/6 charged");
  a.print(std::cout);

  doc.set("horizon_slots", static_cast<double>(horizon));
  doc.set("rt_connections", static_cast<double>(r.admitted));
  doc.set("disjoint_connections", static_cast<double>(r.disjoint_count));
  doc.set("disjoint_user_misses",
          static_cast<double>(r.disjoint_user_misses));
  doc.set("touching_user_misses",
          static_cast<double>(r.touching_user_misses));
  doc.set("downs", static_cast<double>(r.monitor.downs));
  doc.set("reappearances", static_cast<double>(r.monitor.reappearances));
  doc.set("detection_window_slots", static_cast<double>(kDetectWindow));
  doc.set("detection_latency_max_slots",
          r.monitor.detection_latency_slots.max());
  doc.set("weight_reclaimed", r.monitor.weight_reclaimed);
  doc.set("weight_readmitted", r.monitor.weight_readmitted);
  doc.set("reclaim_error", r.monitor.reclaim_error);
  doc.set("readmit_attempts", static_cast<double>(r.monitor.readmit_attempts));
  doc.set("readmissions", static_cast<double>(r.monitor.readmissions));
  doc.set("readmit_rejections",
          static_cast<double>(r.monitor.readmit_rejections));

  if (r.disjoint_count <= 0) {
    std::cerr << "E22a FAIL: workload produced no churn-disjoint "
                 "connections -- the containment gate tested nothing\n";
    ok = false;
  }
  if (r.disjoint_user_misses != 0) {
    std::cerr << "E22a FAIL: " << r.disjoint_user_misses
              << " user misses on connections disjoint from every "
                 "churned node\n";
    ok = false;
  }
  if (r.monitor.downs <= 0 || r.monitor.readmissions <= 0) {
    std::cerr << "E22a FAIL: the churn loop never cycled (downs = "
              << r.monitor.downs
              << ", readmissions = " << r.monitor.readmissions << ")\n";
    ok = false;
  }
  if (r.monitor.detection_latency_slots.max() >
      static_cast<double>(kDetectWindow + 1)) {
    std::cerr << "E22a FAIL: detection latency "
              << r.monitor.detection_latency_slots.max()
              << " slots exceeds the configured window + 1\n";
    ok = false;
  }
  if (r.monitor.reclaim_error > 1e-9) {
    std::cerr << "E22a FAIL: quarantine released weight diverges from "
                 "the utilisation drop by "
              << r.monitor.reclaim_error << "\n";
    ok = false;
  }

  // -- E22b: exact recovery-gap quantiles ---------------------------------
  std::cout << "E22b: " << r.recoveries
            << " token-loss recoveries (churned masters dying mid-slot); "
            << "gap p50 = " << static_cast<double>(r.recovery_p50_ps) / 1e6
            << " us, p99 = " << static_cast<double>(r.recovery_p99_ps) / 1e6
            << " us\n";
  doc.set("recoveries", static_cast<double>(r.recoveries));
  doc.set("recovery_gap_p50_us",
          static_cast<double>(r.recovery_p50_ps) / 1e6);
  doc.set("recovery_gap_p99_us",
          static_cast<double>(r.recovery_p99_ps) / 1e6);
  if (r.recovery_p50_ps > r.recovery_p99_ps) {
    std::cerr << "E22b FAIL: recovery-gap p50 exceeds p99\n";
    ok = false;
  }
  if (r.recoveries > 0 && r.recovery_p50_ps <= 0) {
    std::cerr << "E22b FAIL: recoveries happened but the gap "
                 "distribution is empty\n";
    ok = false;
  }

  // -- E22c: churn-axis sweep determinism ---------------------------------
  sweep::GridSpec spec;
  spec.node_counts = {8};
  spec.utilisations = {0.5};
  spec.churns = {0.0, 500.0};
  spec.churn_nodes = 2;
  spec.churn_down_slots = 100.0;
  spec.churn_detect_slots = kDetectWindow;
  spec.repetitions = 2;
  spec.slots = quick ? 600 : 2000;
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  spec.base_seed = 22;
  const std::string json_1t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 1}));
  const std::string json_8t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 8}));
  sweep::GridSpec noff = spec;
  noff.fast_forward = false;
  const std::string json_noff =
      sweep::to_json(sweep::run_sweep(noff, {.threads = 1}));
  const bool threads_identical = json_1t == json_8t;
  const bool ff_identical = json_1t == json_noff;
  std::cout << "E22c: churn-axis sweep 1-thread vs 8-thread JSON: "
            << (threads_identical ? "byte-identical" : "MISMATCH")
            << "; fast-forward vs slot-by-slot JSON: "
            << (ff_identical ? "byte-identical" : "MISMATCH") << "\n";
  doc.set("threads_json_identical", threads_identical ? 1.0 : 0.0);
  doc.set("ff_json_identical", ff_identical ? 1.0 : 0.0);
  if (!threads_identical) {
    std::cerr << "E22c FAIL: churn-axis sweep output depends on thread "
                 "count\n";
    ok = false;
  }
  if (!ff_identical) {
    std::cerr << "E22c FAIL: churn-axis sweep output depends on the "
                 "fast-forward engine\n";
    ok = false;
  }

  doc.set("hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency()));

  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_fault_churn: cannot write " << json_path << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
