// E12: microbenchmarks of the per-slot protocol machinery (google-
// benchmark).  The master must sort N requests, grant greedily, and the
// codecs must encode/decode the control frames -- all within a slot's
// worth of real time on period hardware; here we show the software model
// costs are negligible next to the simulated timescales.
// Usage: bench_arbitration_micro [--json <path>] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/arbitration.hpp"
#include "core/edf_queue.hpp"
#include "core/frames.hpp"
#include "core/hypercycle.hpp"
#include "core/priority.hpp"
#include "net/network.hpp"
#include "phy/ring_phy.hpp"
#include "ring/segment.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ccredf;

std::vector<core::Request> random_requests(NodeId n, std::uint64_t seed) {
  sim::Rng rng(seed);
  const ring::RingTopology topo(n);
  std::vector<core::Request> reqs(n);
  for (NodeId i = 0; i < n; ++i) {
    if (rng.bernoulli(0.2)) continue;
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.uniform_u64(n));
    } while (dst == i);
    const auto seg =
        ring::Segment::for_transmission(topo, i, NodeSet::single(dst));
    reqs[i].priority = static_cast<core::Priority>(1 + rng.uniform_u64(31));
    reqs[i].links = seg.links();
    reqs[i].dests = NodeSet::single(dst);
  }
  return reqs;
}

void BM_Arbitrate(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const ring::RingTopology topo(n);
  const core::Arbiter arb(topo, true);
  const auto reqs = random_requests(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.arbitrate(reqs, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Arbitrate)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EncodeCollection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const core::FrameCodec codec(n, core::PriorityLayout{}, false);
  core::CollectionPacket p;
  p.requests = random_requests(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(p));
  }
}
BENCHMARK(BM_EncodeCollection)->Arg(8)->Arg(32)->Arg(64);

void BM_DecodeCollection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const core::FrameCodec codec(n, core::PriorityLayout{}, false);
  core::CollectionPacket p;
  p.requests = random_requests(n, 7);
  const auto enc = codec.encode(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_collection(enc));
  }
}
BENCHMARK(BM_DecodeCollection)->Arg(8)->Arg(32)->Arg(64);

void BM_EdfQueuePushPop(benchmark::State& state) {
  const auto depth = state.range(0);
  sim::Rng rng(3);
  for (auto _ : state) {
    core::EdfQueueSet q;
    for (std::int64_t i = 0; i < depth; ++i) {
      core::Message m;
      m.id = static_cast<MessageId>(i + 1);
      m.source = 0;
      m.dests = NodeSet::single(1);
      m.traffic_class = core::TrafficClass::kRealTime;
      m.deadline = sim::TimePoint::origin() +
                   sim::Duration::nanoseconds(
                       static_cast<std::int64_t>(rng.uniform_u64(100000)));
      q.push(m);
    }
    for (std::int64_t i = 0; i < depth; ++i) {
      const auto* head = q.head(sim::TimePoint::infinity());
      benchmark::DoNotOptimize(q.consume_slot(head->id));
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EdfQueuePushPop)->Arg(8)->Arg(64)->Arg(512);

// A planner over `n` nodes carrying one harmonic stream per node
// (periods n, 2n, 4n slots round-robin), built once.
core::HypercyclePlanner harmonic_planner(const phy::RingPhy& phy, NodeId n) {
  core::HypercyclePlanner pl(&phy, ring::RingTopology(n),
                             sim::Duration::microseconds(2),
                             core::HypercyclePlanner::Config{});
  for (NodeId s = 0; s < n; ++s) {
    core::ConnectionParams c;
    c.source = s;
    c.dests = NodeSet::single(static_cast<NodeId>((s + 1) % n));
    c.size_slots = 1;
    c.period_slots = static_cast<std::int64_t>(n) << (s % 3);
    c.offset_slots = s % n;
    pl.add(s, c, c.offset_slots);
  }
  return pl;
}

void BM_PlannerBuild(benchmark::State& state) {
  // Full layout + steady-state extraction + feasibility certificate;
  // this runs at every open/close, so it bounds admission latency.
  const auto n = static_cast<NodeId>(state.range(0));
  const phy::RingPhy phy(phy::optobus(), n, 10.0);
  auto pl = harmonic_planner(phy, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.build(sim::TimePoint::origin(), 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlannerBuild)->Arg(8)->Arg(32);

void BM_PlannerLookup(benchmark::State& state) {
  // The O(1) nominal-grid lookup the planned collection phase rides:
  // one table read per slot, in place of sort-and-arbitrate.
  const auto n = static_cast<NodeId>(state.range(0));
  const phy::RingPhy phy(phy::optobus(), n, 10.0);
  auto pl = harmonic_planner(phy, n);
  if (!pl.build(sim::TimePoint::origin(), 0)) {
    state.SkipWithError("harmonic set did not build");
    return;
  }
  const std::int64_t h = pl.hyperperiod_slots();
  std::int64_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.plan_for_slot(s));
    if (++s == h) s = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlannerLookup)->Arg(8)->Arg(32);

void BM_LaxityMapping(benchmark::State& state) {
  const core::LogarithmicMapper mapper;
  const core::PriorityLayout layout;
  std::int64_t laxity = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.map(layout, core::TrafficClass::kRealTime, laxity));
    laxity = (laxity + 97) % 100000;
  }
}
BENCHMARK(BM_LaxityMapping);

void BM_SegmentConstruction(benchmark::State& state) {
  const ring::RingTopology topo(32);
  NodeSet dests;
  dests.insert(5);
  dests.insert(17);
  dests.insert(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring::Segment::for_transmission(topo, 2, dests));
  }
}
BENCHMARK(BM_SegmentConstruction);

void BM_SlotEngine(benchmark::State& state) {
  // Whole-engine throughput: simulated slots per second of host time,
  // under saturated traffic.  This is the number that bounds how long
  // the E1-E14 experiment runs take.
  const auto nodes = static_cast<NodeId>(state.range(0));
  net::NetworkConfig cfg;
  cfg.nodes = nodes;
  net::Network n(cfg);
  sim::Rng rng(1);
  for (auto _ : state) {
    // Keep every queue non-empty so each slot does full work.
    for (NodeId s = 0; s < nodes; ++s) {
      if (n.node(s).queues().size() < 2) {
        NodeId d;
        do {
          d = static_cast<NodeId>(rng.uniform_u64(nodes));
        } while (d == s);
        n.send_best_effort(s, NodeSet::single(d), 1,
                           sim::Duration::milliseconds(1));
      }
    }
    n.run_slots(1);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("slots/s");
}
BENCHMARK(BM_SlotEngine)->Arg(8)->Arg(16)->Arg(64);

// Console output plus a flat metric capture for the --json document.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(ccredf::bench::JsonDoc* doc) : doc_(doc) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      doc_->set(run.benchmark_name() + ",ns_per_iter",
                run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        doc_->set(run.benchmark_name() + ",items_per_sec",
                  items->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  ccredf::bench::JsonDoc* doc_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ccredf::bench::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ccredf::bench::JsonDoc doc("arbitration_micro");
  CollectingReporter reporter(&doc);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_arbitration_micro: cannot write " << json_path
                << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
