// E23: hypercycle reservation planner -- admitted-utilisation ceiling,
// control-channel occupancy and engine throughput (paper §2 spatial
// reuse turned into a constructive admission proof; DESIGN.md §13).
//
// E23a sweeps the three engines over a fully-periodic 32-node cell whose
// offered load (4 one-hop streams per node, e = 1, P = 32: sum e_i/P_i
// = 4.0) is far past the Eq. 6 per-slot ceiling U_max.  Pure TCMA
// (CCR-EDF, planner off) and CC-FPR must stop admitting at U_max; the
// planner lays the whole hypercycle out, proves the packing feasible
// and admits the full set -- and the run must then deliver every
// message with ZERO deadline misses, with the control channel silent on
// planned slots (requests per slot ~ 0).
//
// E23b times the engine on a busy fully-periodic 32-node cell both
// engines admit identically (0.9 x U_max): best-of-five slots/s,
// planner on vs off.  The plan-driven fast-forward must be >= 2x the
// slot-by-slot PR-8 engine (the acceptance claim; re-asserted by
// validate_bench_json.py, with absolute floors in perf_floors.json).
//
// E23c re-runs the planner-axis sweep determinism gates: the report is
// byte-identical across 1-vs-8 worker threads and fast-forward vs
// slot-by-slot, and on fault cells (hooks attach before any open, so no
// plan ever builds) planner-on is a byte-level no-op.
//
// Usage: bench_hypercycle [--quick] [--json <path>]
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace {

using namespace ccredf;

constexpr NodeId kNodes = 32;
constexpr std::int64_t kPeriod = 32;

std::vector<core::ConnectionParams> one_hop_set(int streams_per_node) {
  std::vector<core::ConnectionParams> set;
  for (int j = 0; j < streams_per_node; ++j) {
    for (NodeId i = 0; i < kNodes; ++i) {
      core::ConnectionParams c;
      c.source = i;
      c.dests = NodeSet::single(static_cast<NodeId>((i + 1) % kNodes));
      c.size_slots = 1;
      c.period_slots = kPeriod;
      // Spread the release phases so the per-slot demand stays even.
      c.offset_slots = static_cast<std::int64_t>(j) * (kPeriod / 4);
      set.push_back(c);
    }
  }
  return set;
}

std::vector<core::ConnectionParams> busy_set(int streams) {
  std::vector<core::ConnectionParams> set;
  for (int k = 0; k < streams; ++k) {
    const auto ku = static_cast<NodeId>(k);
    core::ConnectionParams c;
    c.source = ku % kNodes;
    c.dests = NodeSet::single((c.source + 1 + ku % 4) % kNodes);
    c.size_slots = 1;
    c.period_slots = kPeriod;
    c.offset_slots = (5 * k) % kPeriod;
    set.push_back(c);
  }
  return set;
}

net::NetworkConfig cell_config(bench::Protocol proto, bool planner) {
  net::NetworkConfig cfg = bench::make_config(kNodes, proto);
  cfg.record_inboxes = false;
  cfg.planner = planner;
  return cfg;
}

double requests_per_slot(const net::Network& n) {
  std::int64_t total = 0;
  for (NodeId j = 0; j < n.nodes(); ++j) total += n.stats().node_requests[j];
  return n.stats().slots == 0
             ? 0.0
             : static_cast<double>(total) /
                   static_cast<double>(n.stats().slots);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-five steady-state slots/s (same protocol as E16).
double time_engine(net::Network& n, double min_seconds) {
  n.run_slots(5'000);  // warm-up
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const std::int64_t slots0 = n.stats().slots;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      n.run_slots(20'000);
      elapsed = seconds_since(t0);
    } while (elapsed < min_seconds);
    const double rate =
        static_cast<double>(n.stats().slots - slots0) / elapsed;
    if (rate > best) best = rate;
  }
  return best;
}

// Hexfloat digest of a sweep point's aggregated metrics (bitwise
// statistics equality <=> equal strings).
std::string point_fingerprint(const sweep::PointResult& pr) {
  std::ostringstream os;
  os << std::hexfloat;
  for (std::size_t i = 0; i < sweep::kMetricCount; ++i) {
    const auto& st = pr.metrics[i];
    os << st.count() << ',' << st.mean() << ',' << st.stddev() << ','
       << st.min() << ',' << st.max() << ';';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::extract_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_hypercycle.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::int64_t run_slots = quick ? 6'000 : 20'000;
  const double min_seconds = quick ? 0.05 : 0.4;

  bench::header("E23", "hypercycle reservation planner",
                "admission past Eq. 6 via spatial reuse (paper section 2)");
  bench::JsonDoc doc("hypercycle");
  bool ok = true;

  // -- E23a: admitted-utilisation ceiling ---------------------------------
  const auto past_umax = one_hop_set(4);
  analysis::Table admit_table("admitted utilisation, offered u = 4.0");
  admit_table.columns({"engine", "admitted", "requested", "admitted_u",
                       "U_max", "sched_miss", "user_miss", "planned",
                       "req/slot"});
  double u_max = 0.0;

  struct Cell {
    const char* key;
    bench::Protocol proto;
    bool planner;
  };
  const Cell cells[] = {
      {"planner", bench::Protocol::kCcrEdf, true},
      {"tcma", bench::Protocol::kCcrEdf, false},
      {"ccfpr", bench::Protocol::kCcFpr, true},  // inert: no plan support
  };
  for (const Cell& cell : cells) {
    net::Network n(cell_config(cell.proto, cell.planner));
    u_max = n.admission().u_max();
    const int admitted = bench::open_all(n, past_umax);
    n.run_slots(run_slots);
    const bench::RunDigest d = bench::digest(n);
    const double admitted_u = n.admission().utilisation();
    const double planned = n.stats().planned_slot_fraction();
    const double reqs = requests_per_slot(n);
    admit_table.row()
        .cell(cell.key)
        .cell(admitted)
        .cell(static_cast<std::int64_t>(past_umax.size()))
        .cell(admitted_u, 3)
        .cell(u_max, 3)
        .cell(d.rt_sched_miss, 4)
        .cell(d.rt_user_miss, 4)
        .cell(planned, 3)
        .cell(reqs, 3);
    const std::string k(cell.key);
    doc.set(k + ",admitted_conns", admitted);
    doc.set(k + ",admitted_u", admitted_u);
    doc.set(k + ",sched_miss_ratio", d.rt_sched_miss);
    doc.set(k + ",user_miss_ratio", d.rt_user_miss);
    doc.set(k + ",planned_slot_fraction", planned);
    doc.set(k + ",control_requests_per_slot", reqs);

    if (cell.planner && cell.proto == bench::Protocol::kCcrEdf) {
      if (admitted != static_cast<int>(past_umax.size()) ||
          admitted_u <= 2.0 * u_max) {
        std::cerr << "E23a FAIL: planner admitted " << admitted << "/"
                  << past_umax.size() << " (u=" << admitted_u
                  << ", U_max=" << u_max << ")\n";
        ok = false;
      }
      if (d.rt_sched_miss != 0.0 || d.rt_user_miss != 0.0) {
        std::cerr << "E23a FAIL: planned past-U_max run missed deadlines\n";
        ok = false;
      }
      // Every slot the plan is engaged either grants a bundle or waits
      // for the next release instant; together they must cover nearly
      // the whole run (the shortfall is the pre-open transient).
      const double plan_driven =
          static_cast<double>(n.stats().planned_slots +
                              n.stats().plan_wait_slots) /
          static_cast<double>(n.stats().slots);
      if (planned <= 0.0 || plan_driven < 0.95 ||
          n.stats().plan_divergences != 0) {
        std::cerr << "E23a FAIL: plan not in effect (granting fraction "
                  << planned << ", plan-driven fraction " << plan_driven
                  << ", divergences " << n.stats().plan_divergences << ")\n";
        ok = false;
      }
      doc.set("planner,plan_driven_fraction", plan_driven);
      doc.set("planner,plan_divergences",
              static_cast<double>(n.stats().plan_divergences));
    } else if (admitted_u > u_max + 1e-9) {
      std::cerr << "E23a FAIL: " << cell.key
                << " admitted past U_max without a plan\n";
      ok = false;
    }
  }
  doc.set("u_max", u_max);
  admit_table.print(std::cout);

  // -- E23b: engine throughput on a busy fully-periodic cell --------------
  const int busy_streams =
      static_cast<int>(0.9 * u_max * static_cast<double>(kPeriod));
  const auto busy = busy_set(busy_streams);
  double rate_on = 0.0;
  double rate_off = 0.0;
  double planned_on = 0.0;
  for (const bool planner : {true, false}) {
    net::Network n(cell_config(bench::Protocol::kCcrEdf, planner));
    const int admitted = bench::open_all(n, busy);
    if (admitted != busy_streams) {
      std::cerr << "E23b FAIL: engine cell admitted " << admitted << "/"
                << busy_streams << " with planner "
                << (planner ? "on" : "off") << "\n";
      ok = false;
    }
    const double rate = time_engine(n, min_seconds);
    (planner ? rate_on : rate_off) = rate;
    if (planner) planned_on = n.stats().planned_slot_fraction();
    const bench::RunDigest d = bench::digest(n);
    if (d.rt_sched_miss != 0.0 || d.rt_user_miss != 0.0) {
      std::cerr << "E23b FAIL: busy cell missed deadlines (planner "
                << (planner ? "on" : "off") << ")\n";
      ok = false;
    }
  }
  const double speedup = rate_off > 0.0 ? rate_on / rate_off : 0.0;
  analysis::Table engine_table("slot engine, 32 nodes, 0.9 x U_max");
  engine_table.columns({"engine", "slots/s", "planned", "speedup"});
  engine_table.row()
      .cell("planner32")
      .cell(rate_on, 0)
      .cell(planned_on, 3)
      .cell(speedup, 2);
  engine_table.row().cell("tcma32").cell(rate_off, 0).cell(0.0, 3).cell(1.0,
                                                                        2);
  engine_table.print(std::cout);
  doc.set("planner32,slots_per_sec", rate_on);
  doc.set("tcma32,slots_per_sec", rate_off);
  doc.set("planner32,planned_slot_fraction", planned_on);
  doc.set("engine_speedup", speedup);
#if defined(CCREDF_BENCH_TIMING_UNGATED)
  // Sanitizer/coverage/debug build: instrumentation skews the engines'
  // relative cost, so the ratio is reported but not gated (see
  // bench/CMakeLists.txt; the release CI leg enforces it).
  std::cout << "E23b: speedup gate skipped (instrumented build)\n";
#else
  if (speedup < 2.0) {
    std::cerr << "E23b FAIL: plan-driven fast-forward only " << speedup
              << "x the slot-by-slot engine (< 2x)\n";
    ok = false;
  }
#endif

  // -- E23c: planner-axis sweep determinism -------------------------------
  sweep::GridSpec spec;
  spec.node_counts = {8};
  spec.utilisations = {0.35};
  spec.planners = {false, true};
  spec.repetitions = 2;
  spec.slots = quick ? 600 : 2000;
  spec.min_period_slots = 32;
  spec.max_period_slots = 32;
  spec.base_seed = 23;
  const std::string json_1t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 1}));
  const std::string json_8t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 8}));
  sweep::GridSpec noff = spec;
  noff.fast_forward = false;
  const std::string json_noff =
      sweep::to_json(sweep::run_sweep(noff, {.threads = 1}));
  const bool threads_identical = json_1t == json_8t;
  const bool ff_identical = json_1t == json_noff;

  // Fault cells attach hooks before any open: the planner never engages
  // and must be a byte-level no-op, planner counters included.
  sweep::GridSpec faulted = spec;
  faulted.bers = {1e-3};
  faulted.frame_crc = true;
  const sweep::SweepResult fr = sweep::run_sweep(faulted, {.threads = 1});
  bool noop_identical = fr.failed_shards == 0 && fr.points.size() == 2;
  if (noop_identical) {
    noop_identical =
        point_fingerprint(fr.points[0]) == point_fingerprint(fr.points[1]);
  }
  std::cout << "E23c: planner-axis sweep 1-thread vs 8-thread JSON: "
            << (threads_identical ? "byte-identical" : "MISMATCH")
            << "; fast-forward vs slot-by-slot JSON: "
            << (ff_identical ? "byte-identical" : "MISMATCH")
            << "; planner on/off on fault cells: "
            << (noop_identical ? "byte-identical" : "MISMATCH") << "\n";
  doc.set("threads_json_identical", threads_identical ? 1.0 : 0.0);
  doc.set("ff_json_identical", ff_identical ? 1.0 : 0.0);
  doc.set("planner_noop_identical", noop_identical ? 1.0 : 0.0);
  if (!threads_identical || !ff_identical || !noop_identical) {
    std::cerr << "E23c FAIL: planner sweep determinism gate\n";
    ok = false;
  }

  doc.set("hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency()));
  if (!doc.write(json_path)) {
    std::cerr << "bench_hypercycle: cannot write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return ok ? 0 : 1;
}
