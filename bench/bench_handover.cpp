// E3 (paper Fig. 6-7, Eq. 1): clock hand-over.  The gap between slots is
// P*L*D for D downstream hops to the next master (plus the two stop/
// detect bit times).  Measures the per-distance gap and the distribution
// of hand-over distances under load, and contrasts with CC-FPR's
// constant one-hop gap.
#include "bench_common.hpp"

#include <array>

#include "sim/stats.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E3", "clock hand-over time", "Fig. 6-7, Eq. 1, Section 4");

  constexpr NodeId kNodes = 8;
  constexpr double kLen = 10.0;  // m -> 50 ns per hop

  // E3a: measured gap per hand-over distance vs Eq. 1 prediction.
  net::Network n(make_config(kNodes, Protocol::kCcrEdf, kLen));
  std::array<sim::OnlineStats, kNodes> gap_by_hops;
  std::array<std::int64_t, kNodes> count_by_hops{};
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.token_lost) return;
    const NodeId h = n.topology().hops(rec.master, rec.next_master);
    gap_by_hops[h].add(rec.gap_after);
    ++count_by_hops[h];
  });
  workload::PoissonParams p;
  p.rate_per_node = 0.6;
  p.seed = 23;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 6000);
  n.run_slots(6000);

  const double bit_ns = n.phy().link().bit_time().ns();
  analysis::Table t("E3a: gap vs hand-over distance D (8 nodes, 10 m links)");
  t.columns({"D (hops)", "slots observed", "measured gap (ns)",
             "Eq.1 P*L*D + 2 bits (ns)", "match"});
  for (NodeId h = 0; h < kNodes; ++h) {
    if (count_by_hops[h] == 0) continue;
    const double eq1 = 50.0 * h + 2 * bit_ns;
    const double measured = gap_by_hops[h].mean() / 1e3;  // ps -> ns
    t.row()
        .cell(static_cast<std::int64_t>(h))
        .cell(count_by_hops[h])
        .cell(measured, 1)
        .cell(eq1, 1)
        .cell(std::abs(measured - eq1) < 0.5 ? "yes" : "NO");
  }
  t.note("worst case D = N-1 = 7 -> 355 ns; hand-over to the upstream "
         "neighbour (paper Section 4)");
  t.print(std::cout);

  // E3b: distribution of hand-over distances and total gap overhead,
  // CCR-EDF (variable) vs CC-FPR (constant D=1).
  analysis::Table c("E3b: gap overhead, CCR-EDF vs CC-FPR (same load)");
  c.columns({"protocol", "mean D", "mean gap (ns)", "max gap (ns)",
             "gap time share"});
  for (const Protocol proto : {Protocol::kCcrEdf, Protocol::kCcFpr}) {
    net::Network net2(make_config(kNodes, proto, kLen));
    workload::PoissonParams p2;
    p2.rate_per_node = 0.6;
    p2.seed = 23;
    workload::PoissonGenerator gen2(
        net2, p2, sim::TimePoint::origin() + net2.timing().slot() * 6000);
    net2.run_slots(6000);
    const auto& s = net2.stats();
    c.row()
        .cell(protocol_name(proto))
        .cell(s.handover_hops.mean(), 2)
        .cell(s.gap.mean() / 1e3, 1)
        .cell(s.gap.max() / 1e3, 1)
        .pct(s.time_in_gaps.ratio(s.time_in_gaps + s.time_in_slots), 2);
  }
  c.note("the EDF clocking strategy pays a variable (sometimes larger) "
         "gap; that is the price of zero priority inversion (see E6)");
  c.print(std::cout);

  // E3c: the shape of the hand-over distance distribution (Fig. 6's
  // variability made visible).
  sim::Histogram hops_hist(0.0, static_cast<double>(kNodes), kNodes);
  for (NodeId h = 0; h < kNodes; ++h) {
    for (std::int64_t k = 0; k < count_by_hops[h]; ++k) {
      hops_hist.add(static_cast<double>(h));
    }
  }
  std::cout << "\n== E3c: hand-over distance histogram (CCR-EDF, same "
               "run as E3a) ==\n"
            << hops_hist.render(40)
            << "  # D=0 dominates (the master often keeps the token); "
               "non-zero hand-overs cluster at short and at wrap-around "
               "distances\n";
  return 0;
}
