// E16: steady-state slot-engine throughput (engineering metric, no paper
// artefact).  Measures simulated slots and discrete events per second of
// host wall time, swept over ring size and admitted periodic load.  Every
// experiment binary is bounded by this number, so it is the repo's
// recorded perf trajectory: results land in BENCH_slot_throughput.json
// (override with --json <path>) for run-over-run diffing.
//
// The engine's idle fast-forward (DESIGN.md section 8) is ON by default,
// exactly as every experiment binary runs it; --no-fast-forward times the
// slot-by-slot path instead, so the two JSON documents diffed against
// each other measure the fast-forward speedup.  Each cell also records
// fast_forward_ratio -- the fraction of simulated slots the engine
// skipped arithmetically -- and the document records hardware_threads so
// wall-clock numbers are read against the host they came from.  Each
// cell reports the best of five timed repetitions: the fastest pass is
// the closest observable to the engine's real cost on a host with noisy
// neighbours, and the simulation is deterministic regardless.
//
// Usage: bench_slot_throughput [--quick] [--no-fast-forward]
//                              [--json <path>]
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace ccredf;

struct Sample {
  double slots_per_sec = 0.0;
  double events_per_sec = 0.0;
  double sim_utilisation = 0.0;  // admitted utilisation actually opened
  double fast_forward_ratio = 0.0;  // skipped / total slots
  int connections = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Sample run_config(NodeId nodes, double load_fraction, double min_seconds,
                  bool fast_forward) {
  net::NetworkConfig cfg = bench::make_config(nodes, bench::Protocol::kCcrEdf);
  cfg.record_inboxes = false;  // unbounded inboxes would dominate memory
  cfg.fast_forward = fast_forward;
  net::Network n(cfg);

  workload::PeriodicSetParams wp;
  wp.nodes = nodes;
  wp.connections = static_cast<int>(nodes);
  wp.total_utilisation = load_fraction * n.admission().u_max();
  wp.seed = 42;
  Sample s;
  s.connections = bench::open_all(n, workload::make_periodic_set(wp));
  s.sim_utilisation = n.admission().utilisation();

  // Warm-up: let queues, pools and scratch buffers reach steady state.
  n.run_slots(5'000);

  // Best of five timed repetitions: wall-clock throughput on a shared
  // or virtualised host dips unpredictably (scheduler preemption, noisy
  // neighbours), and a dip says nothing about the code under test.  The
  // fastest repetition is the closest observable to the engine's actual
  // cost; the simulation itself is deterministic either way.
  constexpr int kRepetitions = 5;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const std::int64_t slots0 = n.stats().slots;
    const std::uint64_t events0 = n.sim().events_fired();
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      n.run_slots(20'000);
      elapsed = seconds_since(t0);
    } while (elapsed < min_seconds);
    const double slots_per_sec =
        static_cast<double>(n.stats().slots - slots0) / elapsed;
    if (slots_per_sec > s.slots_per_sec) {
      s.slots_per_sec = slots_per_sec;
      s.events_per_sec =
          static_cast<double>(n.sim().events_fired() - events0) / elapsed;
    }
  }
  s.fast_forward_ratio = n.stats().fast_forward_ratio();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = ccredf::bench::extract_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_slot_throughput.json";
  bool quick = false;
  bool fast_forward = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--no-fast-forward") == 0) fast_forward = false;
  }
  const double min_seconds = quick ? 0.05 : 0.4;

  ccredf::bench::header("E16", "slot-engine throughput",
                        "engineering metric (perf trajectory)");
  if (!fast_forward) {
    std::cout << "(idle fast-forward disabled: timing the slot-by-slot"
                 " path)\n\n";
  }

  ccredf::analysis::Table table("slot-engine steady-state throughput");
  table.columns(
      {"nodes", "load", "conns", "util", "slots/s", "events/s", "ff"});
  ccredf::bench::JsonDoc doc("slot_throughput");

  const ccredf::NodeId node_counts[] = {4, 8, 16, 32};
  const double loads[] = {0.3, 0.6, 0.9};
  for (const auto nodes : node_counts) {
    for (const double load : loads) {
      const Sample s = run_config(nodes, load, min_seconds, fast_forward);
      table.row()
          .cell(static_cast<std::int64_t>(nodes))
          .cell(load, 1)
          .cell(s.connections)
          .cell(s.sim_utilisation, 3)
          .cell(s.slots_per_sec, 0)
          .cell(s.events_per_sec, 0)
          .cell(s.fast_forward_ratio, 3);
      const std::string key = "nodes=" + std::to_string(nodes) +
                              ",load=" + std::to_string(load).substr(0, 3);
      doc.set(key + ",slots_per_sec", s.slots_per_sec);
      doc.set(key + ",events_per_sec", s.events_per_sec);
      doc.set(key + ",fast_forward_ratio", s.fast_forward_ratio);
    }
  }
  doc.set("fast_forward", fast_forward ? 1.0 : 0.0);
  doc.set("hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency()));
  table.print(std::cout);

  if (!doc.write(json_path)) {
    std::cerr << "bench_slot_throughput: cannot write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
