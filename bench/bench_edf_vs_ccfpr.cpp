// E6 (the paper's comparative claim, §1-§3): CCR-EDF vs CC-FPR vs TDMA.
// Identical periodic connection sets (admitted under the same Eq. 5 test)
// run on all three protocols.  Expected shape: CCR-EDF keeps every
// user-level deadline at any admitted load and shows zero priority
// inversions; CC-FPR's simple clocking strategy inverts priorities and
// starts missing deadlines as load grows; TDMA misses whenever a deadline
// is tighter than its fixed N-slot access delay.
//
// The load x protocol grid runs on the parallel sweep runner; the runner
// keys each point's workload stream on every axis EXCEPT the protocol
// (sweep::workload_key), which is exactly the "identical sets" pairing
// this experiment requires.
#include "bench_common.hpp"

#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E6", "deadline misses: CCR-EDF vs CC-FPR vs TDMA",
         "Sections 1-3 (claims vs refs [4], [5], [9])");

  constexpr NodeId kNodes = 8;
  sweep::GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf, Protocol::kCcFpr, Protocol::kTdma};
  spec.node_counts = {kNodes};
  spec.utilisations = {0.3, 0.5, 0.7, 0.85};
  spec.set_seeds = {7};  // identical set for all protocols at a given load
  spec.slots = 10'000;
  spec.connections_per_node = 2;  // 16 connections
  // Short periods (= tight deadlines, D_i = P_i) expose the access-
  // delay differences between the protocols.
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  const sweep::SweepResult res = sweep::run_sweep(spec, {.threads = 0});

  analysis::Table t(
      "E6: RT miss ratios vs offered load (8 nodes, identical sets)");
  t.columns({"u / U_max", "protocol", "delivered", "sched-miss",
             "user-miss", "inversions"});

  // Canonical point order is protocol-major; the paper's table is
  // load-major, so index points as [protocol][load].
  const std::size_t loads = spec.utilisations.size();
  for (std::size_t l = 0; l < loads; ++l) {
    for (std::size_t p = 0; p < spec.protocols.size(); ++p) {
      const sweep::PointResult& pr = res.points[p * loads + l];
      t.row()
          .cell(pr.point.utilisation, 2)
          .cell(protocol_name(pr.point.protocol))
          .cell(static_cast<std::int64_t>(
              pr.mean(sweep::Metric::kRtDelivered)))
          .pct(pr.mean(sweep::Metric::kSchedMissRatio), 2)
          .pct(pr.mean(sweep::Metric::kUserMissRatio), 2)
          .cell(static_cast<std::int64_t>(
              pr.mean(sweep::Metric::kInversions)));
    }
  }
  t.note("CCR-EDF: zero user misses and zero inversions at every admitted "
         "load -- the paper's claim.  CC-FPR inverts priorities (clock "
         "break + upstream booking) and misses under load; TDMA's fixed "
         "rotation misses tight deadlines regardless of load.");
  t.print(std::cout);

  // Worst-case single-message inversion demonstration (paper §1):
  // an urgent message whose path crosses the next round-robin master.
  analysis::Table w("E6b: urgent wrap-around message (paper Section 1 "
                    "pathology)");
  w.columns({"protocol", "slots to deliver urgent 5->2 message"});
  for (const Protocol proto : {Protocol::kCcrEdf, Protocol::kCcFpr}) {
    net::Network n(make_config(6, proto));
    // Background: every node keeps a loose message queued so CC-FPR's
    // upstream booking has something to book.
    for (NodeId s = 0; s < 6; ++s) {
      if (s == 5) continue;
      n.send_best_effort(s, NodeSet::single((s + 1) % 6), 1,
                         sim::Duration::milliseconds(10));
    }
    n.send_best_effort(5, NodeSet::single(2), 1,
                       sim::Duration::microseconds(10));  // urgent, wraps
    std::int64_t slots = 0;
    n.add_slot_observer([&](const net::SlotRecord& rec) {
      if (slots == 0) {
        for (const auto& d : rec.deliveries) {
          if (d.source == 5) slots = rec.index + 1;
        }
      }
    });
    n.run_slots(30);
    w.row().cell(protocol_name(proto)).cell(slots);
  }
  w.note("CCR-EDF hands the clock to the urgent sender immediately; "
         "CC-FPR makes it wait for a rotation whose break link clears "
         "its path");
  w.print(std::cout);
  return 0;
}
