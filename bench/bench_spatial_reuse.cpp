// E1 (paper Fig. 2, §2): spatial reuse -- several simultaneous
// transmissions in non-overlapping segments push aggregate throughput
// beyond the single-link rate, and concurrent multicasts coexist when
// their segments do not overlap.
#include "bench_common.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

void locality_sweep() {
  analysis::Table t(
      "E1a: aggregate throughput vs traffic locality (16 nodes, saturated "
      "best effort)");
  t.columns({"dest distance", "grants/busy slot", "goodput",
             "x single-link rate"});
  for (const NodeId locality : {NodeId{1}, NodeId{2}, NodeId{4}, NodeId{8},
                                NodeId{0} /* uniform */}) {
    net::Network n(make_config(16, Protocol::kCcrEdf));
    workload::PoissonParams p;
    p.rate_per_node = 2.0;  // saturating
    p.locality_hops = locality;
    p.min_laxity_slots = 50;
    p.max_laxity_slots = 500;
    p.seed = 17 + locality;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 3000);
    n.run_slots(3000);
    const auto d = digest(n);
    const double link_rate = static_cast<double>(
        n.phy().link().aggregate_data_rate());
    // Payload actually moved per second of wall time, relative to what a
    // single link could carry flat out.
    const double x_link =
        n.stats().goodput_bps() / (link_rate * n.stats().slot_time_fraction());
    t.row()
        .cell(locality == 0 ? std::string("uniform")
                            : std::to_string(locality) + " hop(s)")
        .cell(d.grants_per_busy_slot, 2)
        .cell(analysis::format_si(n.stats().goodput_bps(), "bit/s"))
        .cell(x_link, 2);
  }
  t.note("local traffic leaves most of the ring free: reuse multiplies "
         "throughput; uniform traffic averages ~2 concurrent segments");
  t.print(std::cout);
}

void fig2_example() {
  // The literal Fig. 2 situation: node 0 -> 2 unicast plus node 3 ->
  // {4, 0} multicast in one slot on a 5-node ring.
  analysis::Table t("E1b: paper Fig. 2 example (5 nodes)");
  t.columns({"transmission", "links used", "delivered in slot"});
  net::Network n(make_config(5, Protocol::kCcrEdf));
  n.send_best_effort(0, NodeSet::single(2), 1,
                     sim::Duration::milliseconds(1));
  NodeSet multicast;
  multicast.insert(4);
  multicast.insert(0);
  n.send(3, multicast, core::TrafficClass::kBestEffort, 1,
         sim::Duration::milliseconds(1));
  std::int64_t both_in_one_slot = 0;
  n.add_slot_observer([&](const net::SlotRecord& rec) {
    if (rec.granted.size() == 2) ++both_in_one_slot;
  });
  n.run_slots(4);
  t.row().cell("node0 -> node2 (unicast)").cell("0,1").cell(
      n.node(2).inbox().empty() ? "no" : "yes");
  t.row().cell("node3 -> {4,0} (multicast)").cell("3,4").cell(
      (n.node(4).inbox().empty() || n.node(0).inbox().empty()) ? "no"
                                                               : "yes");
  t.note(both_in_one_slot > 0
             ? "both transmissions shared one slot (spatial reuse) -- "
               "matches Fig. 2"
             : "transmissions were serialised -- Fig. 2 NOT reproduced");
  t.print(std::cout);
}

}  // namespace

int main() {
  header("E1", "spatial reuse and pipelining", "Fig. 2, Section 2");
  fig2_example();
  std::cout << "\n";
  locality_sweep();
  return 0;
}
