// E15 (figure-style series): how the network scales with ring size at a
// fixed relative load -- U_max, latency bound, admitted throughput, miss
// behaviour, and the control-channel overheads that grow with N.
// Simulation points run on the parallel sweep runner (one shard per ring
// size); the analytic columns are computed directly from the timing model.
#include "bench_common.hpp"

#include "core/frames.hpp"
#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

/// The auto-payload rule the network applies when payload_bytes == 0
/// (see net::Network's constructor).
std::int64_t auto_payload(const phy::RingPhy& ring,
                          const core::FrameCodec& codec,
                          const net::NetworkConfig& cfg) {
  return std::max(core::SlotTiming::min_payload_bytes(ring) +
                      codec.collection_bits() + codec.distribution_bits(),
                  cfg.default_payload_floor);
}

}  // namespace

int main() {
  header("E15", "scaling with ring size",
         "derived series (no single figure; combines Eq. 1-6)");

  sweep::GridSpec spec;
  spec.protocols = {Protocol::kCcrEdf};
  spec.node_counts = {4, 8, 16, 32, 64};
  spec.utilisations = {0.6};
  spec.set_seeds = {21};
  spec.slots = 6000;
  spec.connections_per_node = 2;
  spec.min_period_slots = 30;
  spec.max_period_slots = 300;
  const sweep::SweepResult res = sweep::run_sweep(spec, {.threads = 0});

  analysis::Table t("E15: N-scaling at fixed 0.6*U_max periodic load");
  t.columns({"nodes", "payload (B)", "U_max", "Eq.4 bound (us)",
             "collection bits", "RT delivered", "user misses",
             "mean RT lat (us)", "goodput"});
  for (const sweep::PointResult& pr : res.points) {
    const NodeId nodes = pr.point.nodes;
    const net::NetworkConfig cfg = sweep::make_network_config(spec, pr.point);
    const phy::RingPhy ring(cfg.link, nodes, spec.link_length_m);
    const core::FrameCodec codec(nodes, cfg.priority, cfg.with_acks);
    const core::SlotTiming timing(ring, auto_payload(ring, codec, cfg));
    t.row()
        .cell(static_cast<std::int64_t>(nodes))
        .cell(timing.payload_bytes())
        .cell(pr.mean(sweep::Metric::kUMax), 4)
        .cell(timing.worst_case_latency().us(), 2)
        .cell(codec.collection_bits())
        .cell(static_cast<std::int64_t>(pr.mean(sweep::Metric::kRtDelivered)))
        .cell(static_cast<std::int64_t>(pr.mean(sweep::Metric::kUserMisses)))
        .cell(pr.mean(sweep::Metric::kMeanLatencyUs), 2)
        .cell(analysis::format_si(pr.mean(sweep::Metric::kGoodputBps),
                                  "bit/s"));
  }
  t.note("the collection packet grows O(N^2) bits (N requests x N-bit "
         "masks), forcing larger slots and longer latency bounds -- the "
         "reason the paper targets LAN/SAN scale where \"the number of "
         "nodes ... is relatively small\" (Section 1)");
  t.print(std::cout);

  sweep::GridSpec gs;
  gs.protocols = {Protocol::kCcrEdf};
  gs.node_counts = {4, 16, 64};
  gs.utilisations = {0.85};
  gs.set_seeds = {22};
  gs.slots = 5000;
  gs.connections_per_node = 3;
  gs.min_period_slots = 20;
  gs.max_period_slots = 200;
  const sweep::SweepResult guard = sweep::run_sweep(gs, {.threads = 0});

  analysis::Table g("E15b: guarantee holds at every scale");
  g.columns({"nodes", "inversions", "user-miss ratio"});
  for (const sweep::PointResult& pr : guard.points) {
    g.row()
        .cell(static_cast<std::int64_t>(pr.point.nodes))
        .cell(static_cast<std::int64_t>(pr.mean(sweep::Metric::kInversions)))
        .pct(pr.mean(sweep::Metric::kUserMissRatio), 3);
  }
  g.note("zero inversions and zero user misses from 4 to 64 nodes at "
         "0.85 U_max -- the EDF clocking strategy scales within the "
         "paper's intended envelope");
  g.print(std::cout);
  return 0;
}
