// E15 (figure-style series): how the network scales with ring size at a
// fixed relative load -- U_max, latency bound, admitted throughput, miss
// behaviour, and the control-channel overheads that grow with N.
#include "bench_common.hpp"

#include "core/frames.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E15", "scaling with ring size",
         "derived series (no single figure; combines Eq. 1-6)");

  analysis::Table t("E15: N-scaling at fixed 0.6*U_max periodic load");
  t.columns({"nodes", "payload (B)", "U_max", "Eq.4 bound (us)",
             "collection bits", "RT delivered", "user misses",
             "mean RT lat (us)", "goodput"});
  for (const NodeId nodes :
       {NodeId{4}, NodeId{8}, NodeId{16}, NodeId{32}, NodeId{64}}) {
    net::Network n(make_config(nodes, Protocol::kCcrEdf));
    workload::PeriodicSetParams wp;
    wp.nodes = nodes;
    wp.connections = static_cast<int>(nodes) * 2;
    wp.total_utilisation = 0.6 * n.timing().u_max();
    wp.min_period_slots = 30;
    wp.max_period_slots = 300;
    wp.seed = 21;
    open_all(n, workload::make_periodic_set(wp));
    n.run_slots(6000);
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    t.row()
        .cell(static_cast<std::int64_t>(nodes))
        .cell(n.timing().payload_bytes())
        .cell(n.timing().u_max(), 4)
        .cell(n.timing().worst_case_latency().us(), 2)
        .cell(n.codec().collection_bits())
        .cell(rt.delivered)
        .cell(rt.user_misses)
        .cell(rt.latency.mean() / 1e6, 2)
        .cell(analysis::format_si(n.stats().goodput_bps(), "bit/s"));
  }
  t.note("the collection packet grows O(N^2) bits (N requests x N-bit "
         "masks), forcing larger slots and longer latency bounds -- the "
         "reason the paper targets LAN/SAN scale where \"the number of "
         "nodes ... is relatively small\" (Section 1)");
  t.print(std::cout);

  analysis::Table g("E15b: guarantee holds at every scale");
  g.columns({"nodes", "inversions", "user-miss ratio"});
  for (const NodeId nodes : {NodeId{4}, NodeId{16}, NodeId{64}}) {
    net::Network n(make_config(nodes, Protocol::kCcrEdf));
    workload::PeriodicSetParams wp;
    wp.nodes = nodes;
    wp.connections = static_cast<int>(nodes) * 3;
    wp.total_utilisation = 0.85 * n.timing().u_max();
    wp.min_period_slots = 20;
    wp.max_period_slots = 200;
    wp.seed = 22;
    open_all(n, workload::make_periodic_set(wp));
    n.run_slots(5000);
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    g.row()
        .cell(static_cast<std::int64_t>(nodes))
        .cell(n.stats().priority_inversions)
        .pct(rt.user_miss_ratio(), 3);
  }
  g.note("zero inversions and zero user misses from 4 to 64 nodes at "
         "0.85 U_max -- the EDF clocking strategy scales within the "
         "paper's intended envelope");
  g.print(std::cout);
  return 0;
}
