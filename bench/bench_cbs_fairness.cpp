// E21: Constant-Bandwidth-Server isolation and fairness (paper section
// 3's three service classes, realised with the CBS of core/cbs.hpp on
// top of the guaranteed class the paper analyses).
//
// E21a  hard-RT isolation: the same admitted periodic RT set runs twice
//       over the same wall-clock horizon -- once alone, once beside a
//       CBS population saturated far past its reserved bandwidth.  The
//       per-connection RT digest (released / scheduling misses / user
//       misses, in admission order) must be BYTE-IDENTICAL and the RT
//       set must miss nothing in either run: CBS jobs ride the
//       best-effort band under server deadlines, so saturating them may
//       never perturb a hard guarantee (exit 1 otherwise).
// E21b  bandwidth fairness: the saturated population's per-flow
//       delivered bytes must reach a Jain index >= 0.9 across >= 8
//       admitted flows (identical reservations -> near-identical
//       shares), and budget-exhaustion postponements must actually have
//       fired -- a saturation run that never exhausts a budget tested
//       nothing (exit 1 otherwise).
// E21c  determinism: a grid with the `services` axis (rt-only and
//       cbs-saturated) must serialise to byte-identical JSON with 1 and
//       8 worker threads (exit 1 otherwise).
//
// Flags: --quick (short horizon), --json <path>
// (BENCH_cbs_fairness.json).  bench/cbs_floors.json pins the Jain floor
// for scripts/perf_floor_check.py.
#include "bench_common.hpp"

#include <string>
#include <thread>
#include <vector>

#include "services/cbs.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "workload/aperiodic.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

constexpr NodeId kNodes = 8;
constexpr int kBeFlows = 8;
constexpr std::int64_t kBudgetSlots = 2;
constexpr std::int64_t kPeriodSlots = 100;

/// The hard-RT set both runs share: moderate load, roomy deadlines --
/// the admitted set must be cleanly schedulable so any miss in the
/// CBS-saturated run is an isolation failure, not a tight-fit artefact.
workload::PeriodicSetParams rt_workload(double u_max) {
  workload::PeriodicSetParams wp;
  wp.nodes = kNodes;
  wp.connections = 16;
  wp.total_utilisation = 0.5 * u_max;
  wp.min_period_slots = 20;
  wp.max_period_slots = 120;
  wp.seed = 21;
  return wp;
}

struct IsolationRun {
  /// Per-connection "released/sched_misses/user_misses" records in
  /// admission order -- wall-keyed releases and (expected-zero) misses
  /// only, so the digest is insensitive to where the horizon cuts an
  /// in-flight delivery.
  std::string rt_digest;
  std::int64_t rt_released = 0;
  std::int64_t rt_sched_misses = 0;
  std::int64_t rt_user_misses = 0;
  int rt_admitted = 0;
  int be_admitted = 0;
  std::int64_t cbs_jobs = 0;
  std::int64_t cbs_delivered = 0;
  std::int64_t cbs_bytes = 0;
  std::int64_t postponements = 0;
  double jain = 0.0;
  std::vector<std::int64_t> flow_bytes;
};

IsolationRun run_case(bool with_cbs, std::int64_t horizon_slots) {
  net::NetworkConfig cfg = make_config(kNodes, Protocol::kCcrEdf);
  // Sustained overload needs a bounded transmit buffer: an unbounded
  // best-effort backlog grows for the whole horizon (and with it the
  // sorted-EDF insert cost).  Drops at the cap never touch the server
  // state, so the CBS accounting is unaffected.
  cfg.max_queue_messages = 256;
  net::Network n(cfg);

  std::vector<ConnectionId> rt_ids;
  IsolationRun res;
  for (const auto& c : workload::make_periodic_set(rt_workload(
           n.timing().u_max()))) {
    const auto open = n.open_connection(c);
    if (open.admitted) rt_ids.push_back(open.id);
  }
  res.rt_admitted = static_cast<int>(rt_ids.size());

  const sim::Duration extent = n.timing().slot_plus_max_gap();
  std::optional<services::CbsFlowSet> flows;
  std::optional<workload::AperiodicGenerator> gen;
  if (with_cbs) {
    services::CbsFlowSetParams cp;
    cp.flows = kBeFlows;
    cp.budget_slots = kBudgetSlots;
    cp.period_slots = kPeriodSlots;
    flows.emplace(n, cp);
    res.be_admitted = flows->admitted();

    // Saturation: each flow offers ~0.5 slots per slot extent against a
    // 0.02 reservation (25x overload), so every server lives in
    // budget-exhaustion postponement while the per-node transmit buffers
    // stay shallow enough that no source drowns in its own backlog.
    workload::AperiodicParams ap;
    ap.rate_per_flow = 0.2;
    ap.min_size_slots = 1;
    ap.max_size_slots = 4;
    ap.seed = 2121;
    gen.emplace(n, flows->ids(), ap,
                sim::TimePoint::origin() + extent * horizon_slots);
  }

  // Identical WALL horizon for both cases: periodic releases are keyed
  // to wall instants, so the two runs release the exact same RT message
  // set no matter how best-effort traffic shifts the hand-over gaps.
  n.run_for(extent * horizon_slots);

  for (const ConnectionId id : rt_ids) {
    const auto& cs = n.connection_stats(id);
    res.rt_digest += std::to_string(cs.released) + "/" +
                     std::to_string(cs.scheduling_misses) + "/" +
                     std::to_string(cs.user_misses) + ";";
    res.rt_released += cs.released;
    res.rt_sched_misses += cs.scheduling_misses;
    res.rt_user_misses += cs.user_misses;
  }
  if (flows.has_value()) {
    res.cbs_jobs = n.stats().cbs.jobs;
    res.postponements = n.stats().cbs.postponements;
    res.jain = flows->jain_index();
    for (const ConnectionId id : flows->ids()) {
      const auto& cs = n.connection_stats(id);
      res.cbs_delivered += cs.delivered;
      res.cbs_bytes += cs.bytes;
      res.flow_bytes.push_back(cs.bytes);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  JsonDoc doc("cbs_fairness");
  bool ok = true;

  header("E21", "CBS service class: hard-RT isolation and best-effort "
                "fairness under saturation",
         "Section 3 (service classes) + CBS isolation theorem");

  const std::int64_t horizon = quick ? 6'000 : 20'000;
  const IsolationRun alone = run_case(false, horizon);
  const IsolationRun shared = run_case(true, horizon);

  // -- E21a: byte-identical hard-RT digest --------------------------------
  const bool digest_identical = alone.rt_digest == shared.rt_digest;
  analysis::Table a(
      "E21a: hard-RT set alone vs beside a saturated CBS population "
      "(8 nodes, RT load 0.5 U_max, 8 servers at Q=2/T=100, same wall "
      "horizon)");
  a.columns({"run", "RT conns", "released", "sched misses", "user misses",
             "digest"});
  a.row()
      .cell("rt only")
      .cell(alone.rt_admitted)
      .cell(alone.rt_released)
      .cell(alone.rt_sched_misses)
      .cell(alone.rt_user_misses)
      .cell("--");
  a.row()
      .cell("rt + cbs sat.")
      .cell(shared.rt_admitted)
      .cell(shared.rt_released)
      .cell(shared.rt_sched_misses)
      .cell(shared.rt_user_misses)
      .cell(digest_identical ? "identical" : "MISMATCH");
  a.note("CBS jobs carry server deadlines in the best-effort band; the "
         "RT band wins every arbitration it enters, so saturating the "
         "servers leaves the per-connection RT accounting byte-identical");
  a.print(std::cout);

  doc.set("rt_digest_identical", digest_identical ? 1.0 : 0.0);
  doc.set("rt_connections", static_cast<double>(alone.rt_admitted));
  doc.set("rt_released", static_cast<double>(alone.rt_released));
  doc.set("rt_sched_misses_alone",
          static_cast<double>(alone.rt_sched_misses));
  doc.set("rt_sched_misses_shared",
          static_cast<double>(shared.rt_sched_misses));
  doc.set("rt_user_misses_alone", static_cast<double>(alone.rt_user_misses));
  doc.set("rt_user_misses_shared",
          static_cast<double>(shared.rt_user_misses));
  if (!digest_identical) {
    std::cerr << "E21a FAIL: per-connection RT digest changed when the "
                 "CBS population saturated the ring\n";
    ok = false;
  }
  if (alone.rt_user_misses != 0 || shared.rt_user_misses != 0 ||
      alone.rt_sched_misses != 0 || shared.rt_sched_misses != 0) {
    std::cerr << "E21a FAIL: hard-RT set missed deadlines (expected a "
                 "cleanly schedulable set in both runs)\n";
    ok = false;
  }

  // -- E21b: fairness across the saturated flows --------------------------
  analysis::Table b("E21b: per-flow delivered bytes under saturation");
  b.columns({"flow", "bytes", "share"});
  for (std::size_t f = 0; f < shared.flow_bytes.size(); ++f) {
    b.row()
        .cell(static_cast<std::int64_t>(f))
        .cell(shared.flow_bytes[f])
        .pct(shared.cbs_bytes == 0
                 ? 0.0
                 : static_cast<double>(shared.flow_bytes[f]) /
                       static_cast<double>(shared.cbs_bytes),
             2);
  }
  b.note("identical reservations (Q=2/T=100 each) must earn "
         "near-identical shares: Jain = " +
         std::to_string(shared.jain));
  b.print(std::cout);

  doc.set("be_flows", static_cast<double>(shared.be_admitted));
  doc.set("flows=8,jain_index", shared.jain);
  doc.set("cbs_jobs", static_cast<double>(shared.cbs_jobs));
  doc.set("cbs_delivered", static_cast<double>(shared.cbs_delivered));
  doc.set("cbs_postponements", static_cast<double>(shared.postponements));
  if (shared.be_admitted < kBeFlows) {
    std::cerr << "E21b FAIL: only " << shared.be_admitted << " of "
              << kBeFlows << " CBS servers admitted beside the RT set\n";
    ok = false;
  }
  if (shared.jain < 0.9) {
    std::cerr << "E21b FAIL: Jain index " << shared.jain
              << " below the 0.9 fairness floor\n";
    ok = false;
  }
  if (shared.postponements <= 0) {
    std::cerr << "E21b FAIL: no budget-exhaustion postponements -- the "
                 "saturation run never stressed the servers\n";
    ok = false;
  }

  // -- E21c: thread-count determinism of the services axis ----------------
  sweep::GridSpec spec;
  spec.node_counts = {8};
  spec.utilisations = {0.5};
  spec.mixes = {sweep::WorkloadMix::kPeriodic};
  spec.services = {sweep::ServiceMix::kRtOnly,
                   sweep::ServiceMix::kCbsSaturated};
  spec.repetitions = 2;
  spec.slots = quick ? 400 : 1200;
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  spec.base_seed = 21;
  const std::string json_1t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 1}));
  const std::string json_8t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 8}));
  const bool identical = json_1t == json_8t;
  std::cout << "E21c: services-axis sweep 1-thread vs 8-thread JSON: "
            << (identical ? "byte-identical" : "MISMATCH") << "\n";
  doc.set("threads_json_identical", identical ? 1.0 : 0.0);
  if (!identical) {
    std::cerr << "E21c FAIL: services-axis sweep output depends on "
                 "thread count\n";
    ok = false;
  }

  doc.set("hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency()));

  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_cbs_fairness: cannot write " << json_path << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
