// E24: severed-segment fault model -- partition-aware degraded mode and
// staged ring healing (hard link cuts through fault::FaultInjector, the
// ResilienceMonitor's segment-down quarantine, and the link_cuts sweep
// axis).
//
// E24a  containment: an admitted periodic RT set runs through one full
//       cut -> detect -> quarantine -> splice -> re-admit cycle of the
//       highest link.  Connections whose transmission segment avoids
//       the cut link must miss ZERO user deadlines across the whole
//       horizon -- a severed link may only ever hurt traffic that
//       crosses it (exit 1 otherwise).  Invariants riding along:
//       in-protocol detection latency is at most 2 slots per cut (the
//       next collection phase carries the truncated-heard evidence),
//       every segment quarantine releases exactly its Eq. 5/6 weight
//       (error <= 1e-9), the capacity derate hits the closed-form 0.5
//       while severed and restores to 1.0 after the splice, and the
//       loop actually cycled (segment_downs > 0, readmissions > 0).
// E24b  ring-dark parking: a second simultaneous cut partitions the
//       ring; the clock must park (ring_dark slots counted, nothing
//       granted) and resume cleanly after both splices.
// E24c  determinism: a link_cuts-axis grid must serialise to
//       byte-identical JSON with 1 and 8 worker threads, with
//       fast-forward on and off, AND with the hypercycle planner
//       enabled (cut cells never build a plan, so the slot-by-slot
//       fallback must be byte-exact too) -- exit 1 otherwise.
//
// Flags: --quick (1e5-slot horizon instead of 2e6), --json <path>
// (BENCH_link_fault.json).
#include "bench_common.hpp"

#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "ring/segment.hpp"
#include "services/resilience.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

constexpr NodeId kNodes = 8;
constexpr LinkId kCutLink = kNodes - 1;  // anchor = node 0, the restarter

struct CutRun {
  int admitted = 0;
  int disjoint_count = 0;
  std::int64_t disjoint_user_misses = 0;
  std::int64_t crossing_user_misses = 0;
  std::int64_t link_cuts = 0;
  std::int64_t cut_detect_slots = 0;
  double capacity_while_severed = 0.0;
  double capacity_after_splice = 0.0;
  services::ResilienceStats monitor;
};

CutRun run_cycle(std::int64_t horizon_slots) {
  net::NetworkConfig cfg = make_config(kNodes, Protocol::kCcrEdf);
  cfg.record_inboxes = false;
  net::Network n(cfg);

  fault::FaultInjector injector(n);
  services::ResilienceMonitor monitor(n, services::ResilienceParams{});

  workload::PeriodicSetParams wp;
  wp.nodes = kNodes;
  wp.connections = 16;
  wp.total_utilisation = 0.5 * n.timing().u_max();
  wp.min_period_slots = 20;
  wp.max_period_slots = 120;
  wp.seed = 24;

  CutRun res;
  std::vector<ConnectionId> disjoint;
  std::vector<ConnectionId> crossing;
  const LinkSet cut = LinkSet::single(kCutLink);
  for (const auto& c : workload::make_periodic_set(wp)) {
    const auto open = n.open_connection(c);
    if (!open.admitted) continue;
    ++res.admitted;
    const auto links =
        ring::Segment::for_transmission(n.topology(), c.source, c.dests)
            .links();
    (links.intersects(cut) ? crossing : disjoint).push_back(open.id);
  }
  res.disjoint_count = static_cast<int>(disjoint.size());

  // One full severed-segment cycle placed mid-horizon: cut for the
  // middle fifth of the run, healed tail long enough to re-admit and
  // settle.  Wall-clock instants (the injector's events bound the
  // engine's fast-forward automatically).
  const sim::Duration extent = n.timing().slot_plus_max_gap();
  const sim::TimePoint cut_at =
      sim::TimePoint::origin() + extent * (horizon_slots * 2 / 5);
  const sim::TimePoint splice_at =
      sim::TimePoint::origin() + extent * (horizon_slots * 3 / 5);
  injector.schedule_link_cut(kCutLink, cut_at);
  injector.schedule_link_splice(kCutLink, splice_at);

  // Sample the derated capacity while the cut is in effect (run_for
  // stops on wall time, so this lands strictly inside the severed
  // window), then finish the horizon.
  n.run_for((cut_at + extent * 50) - sim::TimePoint::origin());
  res.capacity_while_severed = n.admission().capacity_factor();
  n.run_slots(horizon_slots - n.current_slot());
  res.capacity_after_splice = n.admission().capacity_factor();

  for (const ConnectionId id : disjoint) {
    res.disjoint_user_misses += n.connection_stats(id).user_misses;
  }
  for (const ConnectionId id : crossing) {
    res.crossing_user_misses += n.connection_stats(id).user_misses;
  }
  res.link_cuts = n.stats().faults.link_cuts;
  res.cut_detect_slots = n.stats().faults.cut_detect_slots;
  res.monitor = monitor.stats();
  return res;
}

struct DarkRun {
  std::int64_t ring_dark = 0;
  std::int64_t delivered_after_heal = 0;
};

DarkRun run_ring_dark() {
  net::NetworkConfig cfg = make_config(kNodes, Protocol::kCcrEdf);
  net::Network n(cfg);
  n.run_slots(50);
  if (!n.cut_link(2)) std::abort();
  if (!n.cut_link(5)) std::abort();
  n.run_slots(200);  // partitioned: every slot parks dark
  DarkRun res;
  res.ring_dark = n.stats().faults.ring_dark;
  if (!n.splice_link(2)) std::abort();
  if (!n.splice_link(5)) std::abort();
  const std::int64_t before =
      n.stats().cls(core::TrafficClass::kBestEffort).delivered;
  n.send_best_effort(1, NodeSet::single(6), 1,
                     sim::Duration::milliseconds(50));
  n.run_slots(50);
  res.delivered_after_heal =
      n.stats().cls(core::TrafficClass::kBestEffort).delivered - before;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  JsonDoc doc("link_fault");
  bool ok = true;

  header("E24",
         "Severed-segment fault model: partition-aware degraded mode "
         "and staged ring healing",
         "Section 8 (failure handling) extended to hard link cuts");

  const std::int64_t horizon = quick ? 100'000 : 2'000'000;
  const CutRun r = run_cycle(horizon);

  // -- E24a: containment through one full cut/splice cycle ----------------
  analysis::Table a(
      "E24a: containment across cut -> detect -> quarantine -> splice -> "
      "re-admit (8 nodes, RT load 0.5 U_max, link " +
      std::to_string(kCutLink) + " cut for the middle fifth, horizon " +
      std::to_string(horizon) + " slots)");
  a.columns({"quantity", "value"});
  a.row().cell("RT connections admitted").cell(r.admitted);
  a.row().cell("cut-disjoint connections").cell(r.disjoint_count);
  a.row().cell("cut-disjoint user misses").cell(r.disjoint_user_misses);
  a.row().cell("cut-crossing user misses").cell(r.crossing_user_misses);
  a.row().cell("link cuts applied").cell(r.link_cuts);
  a.row().cell("cut detection latency (slots)").cell(r.cut_detect_slots);
  a.row().cell("segment-down events").cell(r.monitor.segment_downs);
  a.row()
      .cell("transfers segment-quarantined")
      .cell(r.monitor.segment_quarantines);
  a.row()
      .cell("weight reclaimed (sum)")
      .cell(r.monitor.weight_reclaimed, 4);
  a.row().cell("reclaim error (max)").cell(r.monitor.reclaim_error, 12);
  a.row()
      .cell("capacity factor while severed")
      .cell(r.capacity_while_severed, 2);
  a.row()
      .cell("capacity factor after splice")
      .cell(r.capacity_after_splice, 2);
  a.row().cell("re-admissions").cell(r.monitor.readmissions);
  a.note("a severed link may only hurt traffic whose segment crosses it: "
         "the cut-disjoint set's user-miss count must be exactly zero "
         "through the whole cycle, detection rides the very next "
         "collection phase, and the quarantine reclaims exactly the Eq. "
         "5/6 weight of the closed transfers");
  a.print(std::cout);

  doc.set("horizon_slots", static_cast<double>(horizon));
  doc.set("rt_connections", static_cast<double>(r.admitted));
  doc.set("disjoint_connections", static_cast<double>(r.disjoint_count));
  doc.set("disjoint_user_misses",
          static_cast<double>(r.disjoint_user_misses));
  doc.set("crossing_user_misses",
          static_cast<double>(r.crossing_user_misses));
  doc.set("link_cuts", static_cast<double>(r.link_cuts));
  doc.set("cut_detect_slots", static_cast<double>(r.cut_detect_slots));
  doc.set("segment_downs", static_cast<double>(r.monitor.segment_downs));
  doc.set("segment_quarantines",
          static_cast<double>(r.monitor.segment_quarantines));
  doc.set("weight_reclaimed", r.monitor.weight_reclaimed);
  doc.set("weight_readmitted", r.monitor.weight_readmitted);
  doc.set("reclaim_error", r.monitor.reclaim_error);
  doc.set("capacity_while_severed", r.capacity_while_severed);
  doc.set("capacity_after_splice", r.capacity_after_splice);
  doc.set("readmissions", static_cast<double>(r.monitor.readmissions));

  if (r.disjoint_count <= 0) {
    std::cerr << "E24a FAIL: workload produced no cut-disjoint "
                 "connections -- the containment gate tested nothing\n";
    ok = false;
  }
  if (r.disjoint_user_misses != 0) {
    std::cerr << "E24a FAIL: " << r.disjoint_user_misses
              << " user misses on connections whose segment avoids the "
                 "cut link\n";
    ok = false;
  }
  if (r.link_cuts != 1 || r.monitor.segment_downs <= 0 ||
      r.monitor.readmissions <= 0) {
    std::cerr << "E24a FAIL: the severed-segment loop never cycled "
                 "(cuts = "
              << r.link_cuts << ", segment_downs = "
              << r.monitor.segment_downs
              << ", readmissions = " << r.monitor.readmissions << ")\n";
    ok = false;
  }
  if (r.cut_detect_slots < 1 || r.cut_detect_slots > 2 * r.link_cuts) {
    std::cerr << "E24a FAIL: in-protocol cut detection took "
              << r.cut_detect_slots
              << " slots; the next collection phase must carry the "
                 "evidence (<= 2 per cut)\n";
    ok = false;
  }
  if (r.monitor.reclaim_error > 1e-9) {
    std::cerr << "E24a FAIL: segment quarantine released weight diverges "
                 "from the utilisation drop by "
              << r.monitor.reclaim_error << "\n";
    ok = false;
  }
  if (r.capacity_while_severed != 0.5 || r.capacity_after_splice != 1.0) {
    std::cerr << "E24a FAIL: capacity derate/restore cycle broken "
                 "(severed = "
              << r.capacity_while_severed
              << ", healed = " << r.capacity_after_splice << ")\n";
    ok = false;
  }

  // -- E24b: double cut parks the ring dark -------------------------------
  const DarkRun d = run_ring_dark();
  std::cout << "E24b: double cut parked " << d.ring_dark
            << " ring-dark slots; after both splices the healed ring "
            << "delivered " << d.delivered_after_heal << " message(s)\n";
  doc.set("ring_dark_slots", static_cast<double>(d.ring_dark));
  doc.set("delivered_after_heal",
          static_cast<double>(d.delivered_after_heal));
  if (d.ring_dark <= 0) {
    std::cerr << "E24b FAIL: a partitioned ring never parked dark\n";
    ok = false;
  }
  if (d.delivered_after_heal != 1) {
    std::cerr << "E24b FAIL: the healed ring failed to deliver\n";
    ok = false;
  }

  // -- E24c: link_cuts-axis sweep determinism -----------------------------
  sweep::GridSpec spec;
  spec.node_counts = {kNodes};
  spec.utilisations = {0.5};
  spec.link_cuts = {0, 1};
  spec.cut_slot = 500;
  spec.cut_down_slots = 400;
  spec.repetitions = 2;
  spec.slots = quick ? 1500 : 4000;
  spec.min_period_slots = 10;
  spec.max_period_slots = 120;
  spec.base_seed = 24;
  const std::string json_1t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 1}));
  const std::string json_8t =
      sweep::to_json(sweep::run_sweep(spec, {.threads = 8}));
  sweep::GridSpec noff = spec;
  noff.fast_forward = false;
  const std::string json_noff =
      sweep::to_json(sweep::run_sweep(noff, {.threads = 1}));
  sweep::GridSpec planner = spec;
  planner.planners = {true};
  const std::string planner_1t =
      sweep::to_json(sweep::run_sweep(planner, {.threads = 1}));
  const std::string planner_8t =
      sweep::to_json(sweep::run_sweep(planner, {.threads = 8}));
  const bool threads_identical = json_1t == json_8t;
  const bool ff_identical = json_1t == json_noff;
  const bool planner_identical = planner_1t == planner_8t;
  std::cout << "E24c: link-cut sweep 1-thread vs 8-thread JSON: "
            << (threads_identical ? "byte-identical" : "MISMATCH")
            << "; fast-forward vs slot-by-slot JSON: "
            << (ff_identical ? "byte-identical" : "MISMATCH")
            << "; planner-on 1 vs 8 threads: "
            << (planner_identical ? "byte-identical" : "MISMATCH") << "\n";
  doc.set("threads_json_identical", threads_identical ? 1.0 : 0.0);
  doc.set("ff_json_identical", ff_identical ? 1.0 : 0.0);
  doc.set("planner_json_identical", planner_identical ? 1.0 : 0.0);
  if (!threads_identical) {
    std::cerr << "E24c FAIL: link-cut sweep output depends on thread "
                 "count\n";
    ok = false;
  }
  if (!ff_identical) {
    std::cerr << "E24c FAIL: link-cut sweep output depends on the "
                 "fast-forward engine\n";
    ok = false;
  }
  if (!planner_identical) {
    std::cerr << "E24c FAIL: planner-enabled cut cells diverge across "
                 "thread counts\n";
    ok = false;
  }

  doc.set("hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency()));

  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_link_fault: cannot write " << json_path << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
