// E13 (paper §1, refs [1][2]): the motivating radar signal-processing
// application end to end.  Every stage of the pipeline is admitted and
// meets its CPI deadline; per-connection accounting via the
// Network::connection_stats API.
#include "bench_common.hpp"

#include "workload/radar.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E13", "radar signal-processing pipeline", "Section 1, refs [1][2]");

  workload::RadarParams params;
  const auto scenario = workload::make_radar_scenario(params);
  net::NetworkConfig cfg;
  cfg.nodes = scenario.nodes_required;
  net::Network n(cfg);

  std::vector<ConnectionId> ids;
  ids.reserve(scenario.connections.size());
  for (const auto& c : scenario.connections) {
    const auto r = n.open_connection(c);
    ids.push_back(r.admitted ? r.id : kNoConnection);
  }

  const int cpis = 30;
  n.run_slots(cpis * params.cpi_slots);

  analysis::Table t("E13: per-connection accounting after 30 CPIs");
  t.columns({"connection", "e/P (slots)", "released", "delivered",
             "user misses", "mean lat (us)"});
  std::int64_t total_misses = 0;
  for (std::size_t i = 0; i < scenario.connections.size(); ++i) {
    const auto& c = scenario.connections[i];
    if (ids[i] == kNoConnection) {
      t.row().cell(scenario.labels[i]).cell("-").cell("REJECTED");
      continue;
    }
    const auto& cs = n.connection_stats(ids[i]);
    total_misses += cs.user_misses;
    t.row()
        .cell(scenario.labels[i])
        .cell(std::to_string(c.size_slots) + "/" +
              std::to_string(c.period_slots))
        .cell(cs.released)
        .cell(cs.delivered)
        .cell(cs.user_misses)
        .cell(cs.latency.mean() / 1e6, 2);
  }
  t.note("scenario utilisation " +
         std::to_string(scenario.total_utilisation) + " of U_max " +
         std::to_string(n.timing().u_max()) +
         "; reuse slots: " + std::to_string(n.stats().reuse_slots));
  t.print(std::cout);

  std::cout << (total_misses == 0
                    ? "\nall pipeline stages met every CPI deadline\n"
                    : "\nDEADLINE MISSES DETECTED\n");
  return total_misses == 0 ? 0 : 1;
}
