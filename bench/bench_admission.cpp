// E5 (paper Eq. 5, §6): online admission control.  Offered utilisation is
// swept past U_max; the controller accepts connections up to the bound
// and everything admitted keeps its user-level deadline guarantee.
#include "bench_common.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E5", "online admission control", "Eq. 5, Section 6");

  constexpr NodeId kNodes = 8;
  analysis::Table t("E5: acceptance and guarantee vs offered load (8 nodes)");
  t.columns({"offered u / U_max", "offered u", "admitted u", "accepted",
             "rejected", "RT delivered", "user misses"});
  for (const double frac : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}) {
    net::Network n(make_config(kNodes, Protocol::kCcrEdf));
    const double u_max = n.admission().u_max();
    workload::PeriodicSetParams wp;
    wp.nodes = kNodes;
    wp.connections = 24;
    wp.total_utilisation = frac * u_max;
    wp.min_period_slots = 60;
    wp.max_period_slots = 600;
    wp.seed = 41 + static_cast<std::uint64_t>(frac * 10);
    const auto set = workload::make_periodic_set(wp);
    const int admitted = open_all(n, set);
    n.run_slots(8000);
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    t.row()
        .cell(frac, 2)
        .cell(frac * u_max, 3)
        .cell(n.admission().utilisation(), 3)
        .cell(admitted)
        .cell(static_cast<std::int64_t>(set.size()) - admitted)
        .cell(rt.delivered)
        .cell(rt.user_misses);
  }
  t.note("below U_max everything is accepted; beyond it the controller "
         "sheds exactly the excess, and admitted traffic never misses "
         "its user-level deadline (Eq. 3)");
  t.print(std::cout);

  // Dynamic churn: connections arrive and depart at run time (the
  // paper's motivating property for online admission).
  net::Network n(make_config(kNodes, Protocol::kCcrEdf));
  sim::Rng rng(99);
  std::vector<ConnectionId> open;
  std::int64_t accepted = 0, rejected = 0;
  for (int ev = 0; ev < 200; ++ev) {
    n.run_slots(rng.uniform_int(10, 60));
    if (!open.empty() && rng.bernoulli(0.4)) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_u64(open.size()));
      n.close_connection(open[idx]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    core::ConnectionParams c;
    c.source = static_cast<NodeId>(rng.uniform_u64(kNodes));
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.uniform_u64(kNodes));
    } while (dst == c.source);
    c.dests = NodeSet::single(dst);
    c.period_slots = rng.uniform_int(30, 300);
    c.size_slots = std::max<std::int64_t>(
        1, c.period_slots / rng.uniform_int(8, 40));
    if (const auto r = n.open_connection(c); r.admitted) {
      open.push_back(r.id);
      ++accepted;
    } else {
      ++rejected;
    }
  }
  n.run_slots(2000);
  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  analysis::Table d("E5b: run-time churn (200 open/close events)");
  d.columns({"accepted", "rejected", "final u", "U_max", "RT delivered",
             "user misses"});
  d.row()
      .cell(accepted)
      .cell(rejected)
      .cell(n.admission().utilisation(), 3)
      .cell(n.admission().u_max(), 3)
      .cell(rt.delivered)
      .cell(rt.user_misses);
  d.note("utilisation never exceeds U_max at any instant; the guarantee "
         "holds through arbitrary churn");
  d.print(std::cout);
  return rt.user_misses == 0 ? 0 : 1;
}
