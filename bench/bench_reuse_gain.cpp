// E9 (paper §5): the analysis conservatively assumes one message per
// slot, but at run time spatial reuse "always results in positive
// effects".  Quantifies the gain: throughput with reuse on vs off as a
// function of traffic locality.
#include "bench_common.hpp"

using namespace ccredf;
using namespace ccredf::bench;

namespace {

double run_goodput(NodeId nodes, bool reuse, NodeId locality,
                   std::uint64_t seed) {
  auto cfg = make_config(nodes, Protocol::kCcrEdf);
  cfg.spatial_reuse = reuse;
  net::Network n(cfg);
  workload::PoissonParams p;
  p.rate_per_node = 2.0;  // saturating
  p.locality_hops = locality;
  p.min_laxity_slots = 100;
  p.max_laxity_slots = 2000;
  p.seed = seed;
  workload::PoissonGenerator gen(
      n, p, sim::TimePoint::origin() + n.timing().slot() * 4000);
  n.run_slots(4000);
  return n.stats().goodput_bps();
}

}  // namespace

int main() {
  header("E9", "run-time gain of spatial reuse",
         "Section 5 (the one-message-per-slot analysis assumption)");

  analysis::Table t("E9: goodput with reuse on/off (16 nodes, saturated)");
  t.columns({"dest distance", "reuse off", "reuse on", "gain"});
  for (const NodeId locality :
       {NodeId{1}, NodeId{2}, NodeId{4}, NodeId{8}, NodeId{0}}) {
    const double off = run_goodput(16, false, locality, 3);
    const double on = run_goodput(16, true, locality, 3);
    t.row()
        .cell(locality == 0 ? std::string("uniform")
                            : std::to_string(locality) + " hop(s)")
        .cell(analysis::format_si(off, "bit/s"))
        .cell(analysis::format_si(on, "bit/s"))
        .cell(on / off, 2);
  }
  t.note("reuse gain grows as segments shrink (up to ~N/2 concurrent "
         "transmissions for 1-hop traffic); never below 1.0 -- the "
         "paper's 'always positive' claim");
  t.print(std::cout);

  // Gain vs node count at fixed locality.
  analysis::Table s("E9b: reuse gain vs ring size (1-hop traffic)");
  s.columns({"nodes", "gain"});
  for (const NodeId nodes : {NodeId{4}, NodeId{8}, NodeId{16}, NodeId{32}}) {
    const double off = run_goodput(nodes, false, 1, 5);
    const double on = run_goodput(nodes, true, 1, 5);
    s.row().cell(static_cast<std::int64_t>(nodes)).cell(on / off, 2);
  }
  s.note("with nearest-neighbour traffic the pipeline ring scales its "
         "aggregate throughput with N (paper Section 2)");
  s.print(std::cout);
  return 0;
}
