// E11 + E18 (paper §8, future work implemented): token-loss recovery
// with a time-out at a designated restart node, and RT degradation under
// a per-link control-channel bit-error model.
//
// E11a  recovery cost vs the timeout setting (scheduled token losses);
// E11b  RT guarantee degradation vs whole-packet token-loss rate;
// E18   deadline-miss ratio and recovery time vs control-channel BER for
//       CCR-EDF vs CC-FPR with the frame-integrity CRC enabled --
//       detected corruption turns into bounded recovery stalls instead
//       of silent misarbitration.
//
// Flags: --quick (short windows), --json <path> (BENCH_fault_recovery.json).
#include "bench_common.hpp"

#include "fault/injector.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  JsonDoc doc("fault_recovery");

  header("E11/E18", "token-loss recovery and control-channel bit errors",
         "Section 8 (future work)");

  const std::int64_t e11a_slots = quick ? 800 : 2500;
  analysis::Table t("E11a: recovery cost vs timeout setting (8 nodes)");
  t.columns({"timeout (slots)", "recoveries", "wall time lost (us)",
             "us / recovery"});
  for (const std::int64_t timeout : {2LL, 4LL, 8LL, 16LL}) {
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.recovery_timeout_slots = timeout;
    net::Network n(cfg);
    fault::FaultInjector inj(n, 7);
    for (SlotIndex s = 100; s < e11a_slots - 100; s += 200) {
      inj.schedule_token_loss(s);
    }
    workload::PoissonParams p;
    p.rate_per_node = 0.3;
    p.seed = 7;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * e11a_slots);
    n.run_slots(e11a_slots);
    const double per_recovery =
        n.recoveries() > 0
            ? n.recovery_time().us() / static_cast<double>(n.recoveries())
            : 0.0;
    t.row()
        .cell(timeout)
        .cell(n.recoveries())
        .cell(n.recovery_time().us(), 1)
        .cell(per_recovery, 1);
    doc.set("timeout_" + std::to_string(timeout) + "_us_per_recovery",
            per_recovery);
  }
  t.note("cost per recovery = timeout * (t_slot + max gap): a short "
         "timeout recovers fast but risks false restarts on a real "
         "network; the knob is exposed per Section 8's sketch");
  t.print(std::cout);

  const std::int64_t e11b_slots = quick ? 2'000 : 10'000;
  analysis::Table m(
      "E11b: RT guarantee degradation vs token-loss rate (admitted load "
      "0.5 U_max, tight deadlines, fixed wall-clock horizon)");
  m.columns({"loss prob / slot", "losses", "RT delivered", "sched misses",
             "user misses", "user-miss ratio"});
  const BerCase loss_cases[] = {{0.0, "p0"},
                                {0.01, "p01"},
                                {0.05, "p05"},
                                {0.15, "p15"}};
  for (const auto& [rate, label] : loss_cases) {
    net::Network n(make_config(8, Protocol::kCcrEdf));
    fault::FaultInjector inj(n, 13);
    if (rate > 0.0) inj.set_random_token_loss(rate);
    // Deadlines of a few slots: one recovery stall (timeout * slot
    // extents) overruns them, so losses translate directly to misses.
    open_all(n, workload::make_periodic_set(fault_workload(n)));
    n.run_for(n.timing().slot() * e11b_slots);  // same wall time per row
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    m.row()
        .cell(rate, 3)
        .cell(inj.token_losses_injected())
        .cell(rt.delivered)
        .cell(rt.scheduling_misses)
        .cell(rt.user_misses)
        .pct(rt.user_miss_ratio(), 2);
    doc.set(std::string("loss_") + label + "_user_miss_ratio",
            rt.user_miss_ratio());
  }
  m.note("the Eq. 5 guarantee assumes a fault-free ring; each token loss "
         "stalls the network for the recovery timeout, so with tight "
         "deadlines the user-miss ratio scales with the loss rate -- "
         "quantifying what the paper left open");
  m.print(std::cout);

  // E18: bit-errors, not packet losses.  Every control frame is exposed
  // to per-link flips; the CRC extension converts would-be silent
  // misarbitrations into detected rejections, which the engine resolves
  // through the bounded re-arbitration / restarter-timeout paths.
  const std::int64_t e18_slots = quick ? 1'500 : 6'000;
  analysis::Table e(
      "E18: RT degradation vs control-channel BER, frame CRC on "
      "(8 nodes, admitted load 0.5 U_max, tight deadlines)");
  e.columns({"protocol", "BER", "corrupt", "detected", "silent",
             "recoveries", "recovery (us)", "user-miss ratio"});
  const BerCase ber_cases[] = {{0.0, "ber0"},
                               {1e-5, "ber1e5"},
                               {1e-4, "ber1e4"},
                               {1e-3, "ber1e3"}};
  for (const Protocol proto : {Protocol::kCcrEdf, Protocol::kCcFpr}) {
    const std::string pname =
        proto == Protocol::kCcrEdf ? "ccr_edf" : "cc_fpr";
    for (const auto& [ber, label] : ber_cases) {
      auto cfg = make_config(8, proto);
      cfg.with_frame_crc = true;
      net::Network n(cfg);
      fault::FaultInjector inj(n, 21);
      if (ber > 0.0) inj.set_control_ber(ber);
      open_all(n, workload::make_periodic_set(fault_workload(n)));
      n.run_for(n.timing().slot() * e18_slots);
      const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
      const auto& f = n.stats().faults;
      e.row()
          .cell(protocol_name(proto))
          .cell(ber, 6)
          .cell(f.collection_corruptions + f.distribution_corruptions)
          .cell(f.detected())
          .cell(f.silent())
          .cell(n.recoveries())
          .cell(n.recovery_time().us(), 1)
          .pct(rt.user_miss_ratio(), 2);
      const std::string prefix = pname + "_" + label + "_";
      doc.set(prefix + "user_miss_ratio", rt.user_miss_ratio());
      doc.set(prefix + "recovery_us", n.recovery_time().us());
      doc.set(prefix + "detected", static_cast<double>(f.detected()));
      doc.set(prefix + "silent", static_cast<double>(f.silent()));
    }
  }
  e.note("the guards reject corrupted frames, so rising BER shows up as "
         "recovery stalls (bounded, counted) rather than misgrants; the "
         "residual silent column is the hazard class a CRC-8 cannot "
         "remove -- multi-bit patterns that forge a plausible frame");
  e.print(std::cout);

  if (!json_path.empty()) {
    if (!doc.write(json_path)) {
      std::cerr << "bench_fault_recovery: cannot write " << json_path
                << "\n";
      return 1;
    }
  }
  return 0;
}
