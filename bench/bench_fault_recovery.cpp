// E11 (paper §8, future work implemented): token-loss recovery with a
// time-out at a designated restart node.  Measures recovery cost vs the
// timeout setting and the deadline impact of sporadic token losses.
#include "bench_common.hpp"

#include "fault/injector.hpp"

using namespace ccredf;
using namespace ccredf::bench;

int main() {
  header("E11", "token-loss recovery", "Section 8 (future work)");

  analysis::Table t("E11a: recovery cost vs timeout setting (8 nodes)");
  t.columns({"timeout (slots)", "recoveries", "wall time lost (us)",
             "us / recovery"});
  for (const std::int64_t timeout : {2LL, 4LL, 8LL, 16LL}) {
    auto cfg = make_config(8, Protocol::kCcrEdf);
    cfg.recovery_timeout_slots = timeout;
    net::Network n(cfg);
    fault::FaultInjector inj(n, 7);
    for (SlotIndex s = 100; s < 2000; s += 200) {
      inj.schedule_token_loss(s);
    }
    workload::PoissonParams p;
    p.rate_per_node = 0.3;
    p.seed = 7;
    workload::PoissonGenerator gen(
        n, p, sim::TimePoint::origin() + n.timing().slot() * 2500);
    n.run_slots(2500);
    t.row()
        .cell(timeout)
        .cell(n.recoveries())
        .cell(n.recovery_time().us(), 1)
        .cell(n.recoveries() > 0
                  ? n.recovery_time().us() /
                        static_cast<double>(n.recoveries())
                  : 0.0,
              1);
  }
  t.note("cost per recovery = timeout * (t_slot + max gap): a short "
         "timeout recovers fast but risks false restarts on a real "
         "network; the knob is exposed per Section 8's sketch");
  t.print(std::cout);

  analysis::Table m(
      "E11b: RT guarantee degradation vs token-loss rate (admitted load "
      "0.5 U_max, tight deadlines, fixed wall-clock horizon)");
  m.columns({"loss prob / slot", "losses", "RT delivered", "sched misses",
             "user misses", "user-miss ratio"});
  for (const double rate : {0.0, 0.01, 0.05, 0.15}) {
    net::Network n(make_config(8, Protocol::kCcrEdf));
    fault::FaultInjector inj(n, 13);
    if (rate > 0.0) inj.set_random_token_loss(rate);
    workload::PeriodicSetParams wp;
    wp.nodes = 8;
    wp.connections = 12;
    wp.total_utilisation = 0.5 * n.timing().u_max();
    // Deadlines of a few slots: one recovery stall (timeout * slot
    // extents) overruns them, so losses translate directly to misses.
    wp.min_period_slots = 8;
    wp.max_period_slots = 40;
    wp.seed = 3;
    open_all(n, workload::make_periodic_set(wp));
    n.run_for(n.timing().slot() * 10'000);  // same wall time for all rows
    const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
    m.row()
        .cell(rate, 3)
        .cell(inj.token_losses_injected())
        .cell(rt.delivered)
        .cell(rt.scheduling_misses)
        .cell(rt.user_misses)
        .pct(rt.user_miss_ratio(), 2);
  }
  m.note("the Eq. 5 guarantee assumes a fault-free ring; each token loss "
         "stalls the network for the recovery timeout, so with tight "
         "deadlines the user-miss ratio scales with the loss rate -- "
         "quantifying what the paper left open");
  m.print(std::cout);
  return 0;
}
