#include "baseline/tdma.hpp"

#include "common/error.hpp"
#include "net/network.hpp"

namespace ccredf::baseline {

net::SlotPlan TdmaProtocol::plan_next_slot(
    const std::vector<core::Request>& requests, NodeId /*current_master*/,
    SlotIndex slot) {
  CCREDF_EXPECT(requests.size() == topo_.nodes(),
                "TdmaProtocol: need one request per node");
  net::SlotPlan plan;
  const NodeId owner =
      static_cast<NodeId>((slot + 1) % static_cast<SlotIndex>(topo_.nodes()));
  // The slot owner clocks its own slot: its transmission (<= N-1 hops
  // starting at itself) can never cross its own clock break.
  plan.next_master = owner;
  if (requests[owner].wants_slot()) plan.granted.insert(owner);
  return plan;
}

net::ProtocolFactory tdma_factory() {
  return [](const phy::RingPhy& phy, const ring::RingTopology& topo,
            const net::NetworkConfig& /*cfg*/) {
    return std::make_unique<TdmaProtocol>(&phy, topo);
  };
}

}  // namespace ccredf::baseline
