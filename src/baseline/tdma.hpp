// Static TDMA: slot k is owned by node k mod N, which is also that slot's
// clock master.  No arbitration at all -- the owner transmits its local
// head-of-queue message if it has one.  Included as the classical
// contention-free reference point: perfectly predictable, but a node's
// worst-case access delay is always N-1 slots regardless of urgency, and
// slots owned by idle nodes are wasted.
#pragma once

#include "core/clocking.hpp"
#include "net/config.hpp"
#include "net/protocol.hpp"
#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"

namespace ccredf::baseline {

class TdmaProtocol final : public net::MacProtocol {
 public:
  TdmaProtocol(const phy::RingPhy* phy, ring::RingTopology topo)
      : topo_(topo), handover_(phy) {}

  [[nodiscard]] const char* name() const override { return "TDMA"; }

  // The base's requester-mask overload delegates here (the TDMA owner
  // is a pure function of the slot index).
  using net::MacProtocol::plan_next_slot;
  [[nodiscard]] net::SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex slot) override;

  [[nodiscard]] sim::Duration gap(NodeId from, NodeId to) const override {
    return handover_.gap(from, to);
  }
  [[nodiscard]] sim::Duration max_gap() const override {
    return handover_.max_gap();
  }

 private:
  ring::RingTopology topo_;
  core::HandoverModel handover_;
};

[[nodiscard]] net::ProtocolFactory tdma_factory();

}  // namespace ccredf::baseline
