// CC-FPR: the predecessor protocol with the *simple* clocking strategy
// (paper references [9], [4]) -- the baseline CCR-EDF is measured against.
//
// Differences from CCR-EDF, both pathological for hard real-time traffic
// (paper §1, §3):
//   1. Clock hand-over is round-robin: the next downstream node becomes
//      master every slot, regardless of message urgency.  When the clock
//      break lands on the path of the most urgent message, that message is
//      infeasible in the slot -- priority inversion by clock interruption.
//   2. Link booking is decided hop by hop as the collection packet passes:
//      an upstream node books its links "regardless of what [a downstream
//      node] may have to send", so tight-deadline downstream requests can
//      starve behind loose upstream ones.
#pragma once

#include "core/clocking.hpp"
#include "net/config.hpp"
#include "net/protocol.hpp"
#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"

namespace ccredf::baseline {

class CcFprProtocol final : public net::MacProtocol {
 public:
  CcFprProtocol(const phy::RingPhy* phy, ring::RingTopology topo,
                bool spatial_reuse)
      : topo_(topo), handover_(phy), spatial_reuse_(spatial_reuse) {}

  [[nodiscard]] const char* name() const override { return "CC-FPR"; }

  // The base's requester-mask overload delegates here (CC-FPR's
  // round-robin scan depends on position, not on who requests).
  using net::MacProtocol::plan_next_slot;
  [[nodiscard]] net::SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex slot) override;

  [[nodiscard]] sim::Duration gap(NodeId from, NodeId to) const override;
  [[nodiscard]] sim::Duration max_gap() const override;

 private:
  ring::RingTopology topo_;
  core::HandoverModel handover_;
  bool spatial_reuse_;
};

/// Factory for NetworkConfig::protocol_factory.
[[nodiscard]] net::ProtocolFactory ccfpr_factory();

}  // namespace ccredf::baseline
