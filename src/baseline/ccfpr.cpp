#include "baseline/ccfpr.hpp"

#include "common/error.hpp"
#include "net/network.hpp"

namespace ccredf::baseline {

net::SlotPlan CcFprProtocol::plan_next_slot(
    const std::vector<core::Request>& requests, NodeId current_master,
    SlotIndex /*slot*/) {
  CCREDF_EXPECT(requests.size() == topo_.nodes(),
                "CcFprProtocol: need one request per node");
  net::SlotPlan plan;
  // Simple clocking strategy: mastership rotates downstream every slot.
  plan.next_master = topo_.downstream(current_master);
  const LinkId break_link = topo_.break_link(plan.next_master);

  // Bookings are decided in the order the collection packet visits the
  // nodes: the master's downstream neighbour first, the master itself
  // last (the packet returns to it).  First-come booking, no global sort.
  LinkSet taken;
  for (NodeId h = 1; h <= topo_.nodes(); ++h) {
    const NodeId node = topo_.downstream(current_master, h % topo_.nodes());
    const core::Request& rq = requests[node];
    if (!rq.wants_slot()) continue;
    if (rq.links.intersects(taken)) continue;
    if (rq.links.contains(break_link)) continue;  // clock interruption
    taken |= rq.links;
    plan.granted.insert(node);
    if (!spatial_reuse_) break;
  }
  return plan;
}

sim::Duration CcFprProtocol::gap(NodeId from, NodeId to) const {
  // Hand-over is always one hop downstream, so the gap is constant
  // (the advantage the paper concedes to the simple strategy, §1).
  CCREDF_ASSERT(to == topo_.downstream(from));
  (void)to;
  return handover_.round_robin_gap(from);
}

sim::Duration CcFprProtocol::max_gap() const {
  sim::Duration g = sim::Duration::zero();
  for (NodeId n = 0; n < topo_.nodes(); ++n) {
    g = std::max(g, handover_.round_robin_gap(n));
  }
  return g;
}

net::ProtocolFactory ccfpr_factory() {
  return [](const phy::RingPhy& phy, const ring::RingTopology& topo,
            const net::NetworkConfig& cfg) {
    return std::make_unique<CcFprProtocol>(&phy, topo, cfg.spatial_reuse);
  };
}

}  // namespace ccredf::baseline
