#include "ring/segment.hpp"

#include "common/error.hpp"

namespace ccredf::ring {

LinkSet links_on_path(const RingTopology& topo, NodeId source, NodeId hops) {
  CCREDF_EXPECT(source < topo.nodes(), "links_on_path: bad source");
  CCREDF_EXPECT(hops < topo.nodes(), "links_on_path: path too long");
  LinkSet links;
  LinkId l = topo.link_from(source);
  for (NodeId i = 0; i < hops; ++i) {
    links.insert(l);
    l = (l + 1) % topo.links();
  }
  return links;
}

Segment Segment::for_transmission(const RingTopology& topo, NodeId source,
                                  NodeSet dests) {
  CCREDF_EXPECT(source < topo.nodes(), "Segment: bad source");
  CCREDF_EXPECT(!dests.empty(), "Segment: empty destination set");
  CCREDF_EXPECT(!dests.contains(source),
                "Segment: source cannot be a destination");
  CCREDF_EXPECT(dests.is_subset_of(topo.all_nodes()),
                "Segment: destination outside topology");

  Segment seg;
  seg.source_ = source;
  seg.dests_ = dests;
  // Furthest destination = maximal downstream hop distance from the source.
  NodeId best_hops = 0;
  NodeId best_node = kInvalidNode;
  for (const NodeId d : dests) {
    const NodeId h = topo.hops(source, d);
    if (h > best_hops) {
      best_hops = h;
      best_node = d;
    }
  }
  seg.furthest_ = best_node;
  seg.hops_ = best_hops;
  seg.links_ = links_on_path(topo, source, best_hops);
  return seg;
}

}  // namespace ccredf::ring
