#include "ring/segment.hpp"

#include "common/error.hpp"

namespace ccredf::ring {

LinkSet links_on_path(const RingTopology& topo, NodeId source, NodeId hops) {
  CCREDF_EXPECT(source < topo.nodes(), "links_on_path: bad source");
  CCREDF_EXPECT(hops < topo.nodes(), "links_on_path: path too long");
  // A path is a contiguous run of `hops` links starting at link_from(src):
  // build the mask directly instead of inserting hop by hop.  hops < N <=
  // 64, so `ones` never shifts by 64; in the wrapped case first >= 1, so
  // both partial widths stay below 64 too.
  const NodeId n = topo.links();
  const LinkId first = topo.link_from(source);
  const std::uint64_t ones = (std::uint64_t{1} << hops) - 1;
  std::uint64_t mask;
  if (first + hops <= n) {
    mask = ones << first;
  } else {
    const NodeId tail = n - first;  // links [first, n)
    mask = (((std::uint64_t{1} << tail) - 1) << first) |
           ((std::uint64_t{1} << (hops - tail)) - 1);  // links [0, hops-tail)
  }
  return LinkSet::from_mask(mask);
}

Segment Segment::for_transmission(const RingTopology& topo, NodeId source,
                                  NodeSet dests) {
  CCREDF_EXPECT(source < topo.nodes(), "Segment: bad source");
  CCREDF_EXPECT(!dests.empty(), "Segment: empty destination set");
  CCREDF_EXPECT(!dests.contains(source),
                "Segment: source cannot be a destination");
  CCREDF_EXPECT(dests.is_subset_of(topo.all_nodes()),
                "Segment: destination outside topology");

  Segment seg;
  seg.source_ = source;
  seg.dests_ = dests;
  // Furthest destination = maximal downstream hop distance from the source.
  NodeId best_hops = 0;
  NodeId best_node = kInvalidNode;
  for (const NodeId d : dests) {
    const NodeId h = topo.hops(source, d);
    if (h > best_hops) {
      best_hops = h;
      best_node = d;
    }
  }
  seg.furthest_ = best_node;
  seg.hops_ = best_hops;
  seg.links_ = links_on_path(topo, source, best_hops);
  return seg;
}

}  // namespace ccredf::ring
