// Transmission segments and spatial reuse (paper §2, Fig. 2).
//
// A transmission from source s to a destination set D occupies the
// consecutive links from s through the *furthest* destination (multicast
// packets are read by every destination they pass).  Two transmissions may
// share a slot iff their link sets are disjoint and neither crosses the
// clock-break link -- this is the spatial-reuse ("pipeline ring") property
// that lets aggregate throughput exceed the single-link rate.
#pragma once

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "ring/topology.hpp"

namespace ccredf::ring {

/// The downstream path of one transmission.
class Segment {
 public:
  /// Builds the segment for `source` -> `dests` on `topo`.  `dests` must be
  /// non-empty and must not contain the source (a node cannot send to
  /// itself over the ring).
  static Segment for_transmission(const RingTopology& topo, NodeId source,
                                  NodeSet dests);

  [[nodiscard]] NodeId source() const { return source_; }
  [[nodiscard]] NodeSet dests() const { return dests_; }
  /// The destination farthest downstream from the source.
  [[nodiscard]] NodeId furthest_dest() const { return furthest_; }
  /// Number of links occupied (1..N-1).
  [[nodiscard]] NodeId hops() const { return hops_; }
  /// The occupied links, as the reservation mask of paper Fig. 4.
  [[nodiscard]] LinkSet links() const { return links_; }

  /// True iff this segment and `other` can share a slot (disjoint links).
  [[nodiscard]] bool compatible_with(const Segment& other) const {
    return !links_.intersects(other.links_);
  }

  /// True iff the segment avoids the clock-break link of `master`.
  [[nodiscard]] bool feasible_under_master(const RingTopology& topo,
                                           NodeId master) const {
    return !links_.contains(topo.break_link(master));
  }

 private:
  Segment() = default;
  NodeId source_ = kInvalidNode;
  NodeSet dests_;
  NodeId furthest_ = kInvalidNode;
  NodeId hops_ = 0;
  LinkSet links_;
};

/// Computes the links used from `source` over `hops` downstream links.
[[nodiscard]] LinkSet links_on_path(const RingTopology& topo, NodeId source,
                                    NodeId hops);

}  // namespace ccredf::ring
