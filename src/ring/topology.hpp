// Unidirectional ring topology arithmetic (paper §2, Fig. 1-2).
//
// Nodes 0..N-1; link i runs from node i to node (i+1) % N.  During a slot
// the master node generates the clock, which propagates N-1 hops and dies
// on the link *into* the master -- the "clock break".  No data can move on
// that link, so every legal transmission segment must avoid it.
#pragma once

#include "common/error.hpp"
#include "common/nodeset.hpp"
#include "common/types.hpp"

namespace ccredf::ring {

class RingTopology {
 public:
  explicit RingTopology(NodeId nodes) : n_(nodes) {
    CCREDF_EXPECT(nodes >= 2 && nodes <= kMaxNodes,
                  "RingTopology: node count out of range [2, kMaxNodes]");
  }

  [[nodiscard]] NodeId nodes() const { return n_; }
  [[nodiscard]] NodeId links() const { return n_; }

  [[nodiscard]] NodeId downstream(NodeId node, NodeId hops = 1) const {
    return (node + hops) % n_;
  }
  [[nodiscard]] NodeId upstream(NodeId node, NodeId hops = 1) const {
    return (node + n_ - hops % n_) % n_;
  }

  /// Downstream hop distance from `from` to `to` (0 if equal, else 1..N-1).
  [[nodiscard]] NodeId hops(NodeId from, NodeId to) const {
    return (to + n_ - from) % n_;
  }

  /// The link leaving node `node`.
  [[nodiscard]] LinkId link_from(NodeId node) const { return node; }

  /// The link entering node `node`.
  [[nodiscard]] LinkId link_into(NodeId node) const {
    return (node + n_ - 1) % n_;
  }

  /// The clock-break link when `master` clocks the ring: the clock signal
  /// is generated at the master and propagates N-1 hops, so the link into
  /// the master carries no clock and no data (paper §2).
  [[nodiscard]] LinkId break_link(NodeId master) const {
    return link_into(master);
  }

  /// All nodes as a destination mask (broadcast excludes the source; the
  /// caller removes it).
  [[nodiscard]] NodeSet all_nodes() const { return NodeSet::first_n(n_); }

 private:
  NodeId n_;
};

}  // namespace ccredf::ring
