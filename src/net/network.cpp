#include "net/network.hpp"

#include <algorithm>
#include <sstream>

#include "net/ccredf_protocol.hpp"
#include "ring/segment.hpp"

namespace ccredf::net {

namespace {
std::unique_ptr<core::LaxityMapper> make_mapper(const NetworkConfig& cfg) {
  switch (cfg.mapper) {
    case NetworkConfig::Mapper::kLinear:
      return std::make_unique<core::LinearMapper>(cfg.linear_quantum_slots);
    case NetworkConfig::Mapper::kLogarithmic:
      break;
  }
  return std::make_unique<core::LogarithmicMapper>();
}

std::unique_ptr<phy::RingPhy> make_phy(const NetworkConfig& cfg) {
  if (!cfg.link_lengths_m.empty()) {
    return std::make_unique<phy::RingPhy>(cfg.link, cfg.link_lengths_m);
  }
  return std::make_unique<phy::RingPhy>(cfg.link, cfg.nodes,
                                        cfg.link_length_m);
}
}  // namespace

Network::Network(NetworkConfig cfg)
    : cfg_(std::move(cfg)),
      phy_(make_phy(cfg_)),
      topo_(cfg_.nodes),
      admission_(0.0) {
  CCREDF_EXPECT(cfg_.nodes >= 2 && cfg_.nodes <= kMaxNodes,
                "Network: node count out of range");
  CCREDF_EXPECT(phy_->nodes() == cfg_.nodes,
                "Network: link length list does not match node count");
  CCREDF_EXPECT(cfg_.designated_restarter < cfg_.nodes,
                "Network: designated restarter out of range");
  CCREDF_EXPECT(cfg_.recovery_timeout_slots >= 1,
                "Network: recovery timeout must be at least one slot");

  // The NACK bits extend the ack field, so they exist only when both the
  // payload CRC and the ack wire are enabled (config.hpp).
  codec_ = std::make_unique<core::FrameCodec>(
      cfg_.nodes, cfg_.priority, cfg_.with_acks, cfg_.with_frame_crc,
      cfg_.with_acks && cfg_.with_payload_crc);
  std::int64_t payload = cfg_.slot_payload_bytes;
  if (payload == 0) {
    // Auto payload: the exact control-phase budget.  Eq. 2 counts only
    // propagation + passthrough; the collection packet's own bits (one
    // control bit rides per payload byte) and the distribution packet
    // must also fit the slot -- a constraint Eq. 2 leaves implicit and
    // which dominates on short rings.  Explicitly configured payloads
    // are only held to the paper's Eq. 2 (SlotTiming validates).
    payload = std::max(core::SlotTiming::min_payload_bytes(*phy_) +
                           codec_->collection_bits() +
                           codec_->distribution_bits(),
                       cfg_.default_payload_floor);
  }
  timing_ = std::make_unique<core::SlotTiming>(*phy_, payload);
  control_ = std::make_unique<core::ControlTiming>(
      phy_.get(), codec_->collection_bits(), codec_->distribution_bits());
  mapper_ = make_mapper(cfg_);
  if (cfg_.protocol_factory) {
    protocol_ = cfg_.protocol_factory(*phy_, topo_, cfg_);
  } else {
    protocol_ = std::make_unique<CcrEdfProtocol>(phy_.get(), topo_,
                                                 cfg_.spatial_reuse);
  }
  CCREDF_EXPECT(protocol_ != nullptr, "Network: protocol factory failed");
  // Eq. 6: the admission bound always uses the CCR-EDF worst-case gap
  // (the paper's analysis); baseline runs admit the same sets so that E6
  // compares protocols on identical load.
  admission_ =
      core::AdmissionController(timing_->u_max(), cfg_.admission_policy);
  if (cfg_.planner) {
    core::HypercyclePlanner::Config pcfg;
    pcfg.max_hyperperiod_slots = cfg_.planner_max_hyperperiod_slots;
    pcfg.spatial_reuse = cfg_.spatial_reuse;
    planner_ = std::make_unique<core::HypercyclePlanner>(
        phy_.get(), topo_, timing_->slot(), pcfg);
  }

  nodes_.reserve(cfg_.nodes);
  for (NodeId i = 0; i < cfg_.nodes; ++i) {
    nodes_.emplace_back(i);
    nodes_.back().set_inbox_recording(cfg_.record_inboxes);
  }
  // Per-slot scratch: at most one request and one completed delivery per
  // node per slot, so this capacity is final.
  rec_.requests.assign(cfg_.nodes, core::Request{});
  rec_.deliveries.reserve(cfg_.nodes);
  rec_.corrupt_deliveries.reserve(cfg_.nodes);
  stats_.per_node_faults.resize(cfg_.nodes);
  stats_.node_requests.assign(cfg_.nodes, 0);
  stats_.node_grants.assign(cfg_.nodes, 0);

  // Collection sampling offsets depend only on (master, node): precompute
  // the full table once so the per-slot path never recomputes a path
  // delay.  Offsets grow with hop count, so each master's furthest node
  // (hop N-1) carries its last-sample offset.
  sample_off_.resize(static_cast<std::size_t>(cfg_.nodes) * cfg_.nodes);
  for (NodeId m = 0; m < cfg_.nodes; ++m) {
    for (NodeId h = 0; h < cfg_.nodes; ++h) {
      const NodeId j = topo_.downstream(m, h);
      sample_off_[static_cast<std::size_t>(m) * cfg_.nodes + j] =
          control_->sample_offset(m, h);
    }
    last_sample_off_[m] =
        sample_off_[static_cast<std::size_t>(m) * cfg_.nodes +
                    topo_.downstream(m, cfg_.nodes - 1)];
  }
}

Node& Network::node(NodeId id) {
  CCREDF_EXPECT(id < nodes_.size(), "Network: node index out of range");
  return nodes_[id];
}

NodeSet Network::broadcast_dests(NodeId src) const {
  NodeSet all = topo_.all_nodes();
  all.erase(src);
  return all;
}

core::Priority Network::priority_of(const core::Message& m,
                                    sim::TimePoint sample) const {
  const std::int64_t laxity = m.laxity_slots(sample, timing_->slot());
  return mapper_->map(cfg_.priority, m.traffic_class, laxity);
}

MessageId Network::enqueue(NodeId src, NodeSet dests, core::TrafficClass cls,
                           std::int64_t size_slots, sim::TimePoint deadline,
                           ConnectionId conn, std::int64_t release_index,
                           sim::TimePoint arrival) {
  CCREDF_EXPECT(src < nodes_.size(), "enqueue: bad source");
  CCREDF_EXPECT(size_slots >= 1, "enqueue: size must be >= 1 slot");
  CCREDF_EXPECT(!dests.empty() && !dests.contains(src),
                "enqueue: destinations must be non-empty and exclude src");
  if (plan_valid_ && !plan_diverged_ &&
      (conn == kNoConnection || !planner_->is_planned(conn))) {
    // Traffic outside the plan (plain sends, CBS jobs): the precomputed
    // outcomes no longer model the wire -- back to slot-by-slot TCMA.
    mark_plan_diverged();
  }
  const MessageId id = next_message_id_++;
  if (nodes_[src].failed()) return id;  // dropped: source is down
  if (cfg_.max_queue_messages != 0 &&
      cls != core::TrafficClass::kRealTime &&
      nodes_[src].queues().size() >= cfg_.max_queue_messages) {
    ++stats_.buffer_drops;  // tail drop at a full transmit buffer
    return id;
  }
  core::Message m;
  m.id = id;
  m.source = src;
  m.dests = dests;
  m.traffic_class = cls;
  m.size_slots = size_slots;
  m.remaining_slots = size_slots;
  m.arrival = arrival;
  m.deadline = deadline;
  m.connection = conn;
  m.release_index = release_index;
  m.payload_bytes = size_slots * timing_->payload_bytes();
  nodes_[src].queues().push(std::move(m));
  soa_.queued.insert(src);
  return id;
}

void Network::refresh_queued_bit(NodeId src) {
  if (nodes_[src].queues().empty()) soa_.queued.erase(src);
}

MessageId Network::send(NodeId src, NodeSet dests, core::TrafficClass cls,
                        std::int64_t size_slots,
                        sim::Duration relative_deadline) {
  const sim::TimePoint deadline =
      relative_deadline >= sim::Duration::infinity()
          ? sim::TimePoint::infinity()
          : sim_.now() + relative_deadline;
  return enqueue(src, dests, cls, size_slots, deadline, kNoConnection, 0,
                 sim_.now());
}

MessageId Network::send_best_effort(NodeId src, NodeSet dests,
                                    std::int64_t size_slots,
                                    sim::Duration relative_deadline) {
  return send(src, dests, core::TrafficClass::kBestEffort, size_slots,
              relative_deadline);
}

MessageId Network::send_non_realtime(NodeId src, NodeSet dests,
                                     std::int64_t size_slots) {
  return send(src, dests, core::TrafficClass::kNonRealTime, size_slots,
              sim::Duration::infinity());
}

Network::OpenResult Network::open_connection(
    const core::ConnectionParams& params) {
  CCREDF_EXPECT(params.source < nodes_.size(), "connection: bad source");
  CCREDF_EXPECT(!params.dests.contains(params.source),
                "connection: source cannot be a destination");
  CCREDF_EXPECT(params.service == core::ServiceClass::kHardRealTime,
                "connection: CBS records go through open_cbs_server");
  auto decision = admission_.request(params, sim_.now());
  trace_.emit(sim_.now(), sim::TraceCategory::kAdmission, [&] {
    std::ostringstream os;
    os << (decision.admitted ? "admitted" : "rejected") << " connection from "
       << params.source << " u=" << params.utilisation()
       << " total=" << decision.utilisation_after << "/" << admission_.u_max();
    return os.str();
  });
  bool planner_admit = false;
  if (!decision.admitted) {
    if (!can_plan_admit()) return OpenResult{false, kNoConnection};
    // Eq. 5 charges every connection e_i/P_i of per-SLOT capacity, but
    // spatial reuse packs several segment-disjoint grants into one slot
    // -- so the planner may still find an exact schedule past U_max.
    // Admit tentatively; the constructive proof below decides.
    decision = admission_.admit_unchecked(params, sim_.now());
    planner_admit = true;
  }

  ReleaseState st;
  st.params = params;
  st.base = sim_.now() + timing_->slot() * params.offset_slots;
  const ConnectionId id = decision.id;
  releases_.emplace(id, st);
  auto& stored = releases_.at(id);
  stored.next_event = sim_.schedule_at(
      st.base, [this, id] { release_message(id); });
  rebuild_plan();
  if (planner_admit) {
    trace_.emit(sim_.now(), sim::TraceCategory::kAdmission, [&] {
      std::ostringstream os;
      os << (plan_valid_ ? "planner admitted" : "planner rejected")
         << " connection from " << params.source << " ("
         << (plan_valid_ ? "feasible hypercycle layout"
                         : planner_->invalid_reason())
         << ")";
      return os.str();
    });
    if (!plan_valid_) {
      // The layout/feasibility proof failed: the Eq. 5 rejection stands.
      sim_.cancel(stored.next_event);
      releases_.erase(id);
      admission_.release(id);
      rebuild_plan();
      return OpenResult{false, kNoConnection};
    }
  }
  return OpenResult{true, id};
}

void Network::fire_release(ConnectionId id, ReleaseState& st) {
  const core::ConnectionParams& p = st.params;
  const sim::TimePoint release_t =
      st.base + timing_->slot() * (p.period_slots * st.released);
  const sim::TimePoint deadline =
      release_t + timing_->slot() * p.effective_deadline_slots();
  // The arrival is the nominal release instant: the event path fires
  // exactly there, and the plan-driven table may catch up at the next
  // slot boundary without skewing latency accounting.
  const MessageId mid =
      enqueue(p.source, p.dests, core::TrafficClass::kRealTime, p.size_slots,
              deadline, id, st.released, release_t);
  if (plan_valid_ && !plan_diverged_) {
    // The plan's cursor binds this connection's jobs FIFO: remember the
    // released id so the bundle grant knows which message it carries.
    const std::int32_t pi = planner_->planned_index(id);
    if (pi >= 0) {
      plan_pending_[static_cast<std::size_t>(pi)].push_back(mid);
    } else {
      mark_plan_diverged();  // a release the plan does not know about
    }
  }
  ++conn_stats_slot(id).released;
  ++st.released;
}

void Network::release_message(ConnectionId id) {
  auto it = releases_.find(id);
  if (it == releases_.end() || !it->second.open) return;
  ReleaseState& st = it->second;
  fire_release(id, st);
  // The clamp only bites when a restored event is catching up on more
  // than one deferred release; on the steady event path next > now.
  const sim::TimePoint next =
      st.base + timing_->slot() * (st.params.period_slots * st.released);
  st.next_event = sim_.schedule_at(std::max(next, sim_.now()),
                                   [this, id] { release_message(id); });
}

bool Network::close_connection(ConnectionId id) {
  auto it = releases_.find(id);
  if (it == releases_.end() || !it->second.open) return false;
  it->second.open = false;
  sim_.cancel(it->second.next_event);
  nodes_[it->second.params.source].queues().drop_connection(id);
  refresh_queued_bit(it->second.params.source);
  const bool released = admission_.release(id);
  // Any in-effect plan covered the closed connection: re-derive (a
  // mid-run close leaves released>0 peers, so this lands on TCMA).
  rebuild_plan();
  return released;
}

Network::OpenResult Network::open_cbs_server(const core::CbsParams& params) {
  params.validate();
  CCREDF_EXPECT(params.source < nodes_.size(), "cbs: bad source");
  const auto decision =
      admission_.request(params.admission_params(), sim_.now());
  trace_.emit(sim_.now(), sim::TraceCategory::kAdmission, [&] {
    std::ostringstream os;
    os << (decision.admitted ? "admitted" : "rejected") << " cbs server from "
       << params.source << " Q=" << params.budget_slots
       << " T=" << params.period_slots
       << " total=" << decision.utilisation_after << "/" << admission_.u_max();
    return os.str();
  });
  if (!decision.admitted) return OpenResult{false, kNoConnection};
  cbs_.emplace(decision.id,
               CbsState{core::CbsServer(params, timing_->slot())});
  ++stats_.cbs.servers_opened;
  // CBS jobs are aperiodic: no plan can cover them (rebuild_plan gates
  // on an empty server set, so this invalidates any current plan).
  rebuild_plan();
  return OpenResult{true, decision.id};
}

MessageId Network::cbs_send(ConnectionId id, std::int64_t size_slots) {
  auto it = cbs_.find(id);
  CCREDF_EXPECT(it != cbs_.end(), "cbs_send: unknown or closed server");
  CbsState& st = it->second;
  const core::CbsParams& p = st.server.params();
  if (nodes_[p.source].failed() ||
      (cfg_.max_queue_messages != 0 &&
       nodes_[p.source].queues().size() >= cfg_.max_queue_messages)) {
    // Mirror enqueue's drop rules up front: a job the queue will refuse
    // must not recharge the budget or move the server deadline (the
    // enqueue call still does the drop accounting and burns the id).
    return enqueue(p.source, p.dests, core::TrafficClass::kBestEffort,
                   size_slots, sim_.now(), id, st.sent, sim_.now());
  }
  const sim::TimePoint deadline =
      st.server.on_arrival(sim_.now(), st.backlog > 0);
  const MessageId mid =
      enqueue(p.source, p.dests, core::TrafficClass::kBestEffort, size_slots,
              deadline, id, st.sent, sim_.now());
  ++st.backlog;
  ++st.sent;
  ++stats_.cbs.jobs;
  ++conn_stats_slot(id).released;
  return mid;
}

bool Network::close_cbs_server(ConnectionId id) {
  auto it = cbs_.find(id);
  if (it == cbs_.end()) return false;
  const NodeId src = it->second.server.params().source;
  nodes_[src].queues().drop_connection(id);
  refresh_queued_bit(src);
  cbs_.erase(it);
  const bool released = admission_.release(id);
  rebuild_plan();
  return released;
}

const core::CbsServer* Network::cbs_server(ConnectionId id) const {
  const auto it = cbs_.find(id);
  return it == cbs_.end() ? nullptr : &it->second.server;
}

void Network::charge_cbs(NodeId g, bool completed) {
  const auto it = cbs_.find(soa_.bind_conn[g]);
  if (it == cbs_.end()) return;
  CbsState& st = it->second;
  if (completed && st.backlog > 0) --st.backlog;
  if (st.server.charge_slot()) {
    // Budget exhausted exactly at this slot boundary: the server
    // postponed (c = Q, d += T) and every job still queued behind it --
    // including a partially transmitted one -- follows the deadline.
    ++stats_.cbs.postponements;
    nodes_[st.server.params().source].queues().reschedule_connection(
        it->first, st.server.deadline());
  }
}

bool Network::fail_node(NodeId id) {
  Node& n = node(id);
  // Idempotence contract (fault/injector.hpp): a double-fail -- which
  // overlapping churn schedules produce naturally -- must not re-clear
  // queues, re-zero CBS backlogs or emit a second transition trace.
  if (n.failed()) return false;
  mark_plan_diverged();  // the plan's outcomes assumed a healthy ring
  n.set_failed(true);
  n.queues().clear();
  soa_.failed.insert(id);
  soa_.queued.erase(id);
  for (auto& [cid, st] : cbs_) {
    // The failed source's queues were just cleared: its servers have no
    // backlog any more (the next job after restore recharges afresh).
    if (st.server.params().source == id) st.backlog = 0;
  }
  trace_.emit(sim_.now(), sim::TraceCategory::kFault,
              [id] { return "node " + std::to_string(id) + " failed"; });
  return true;
}

bool Network::restore_node(NodeId id) {
  Node& n = node(id);
  if (!n.failed()) return false;  // restore-of-healthy: no-op
  mark_plan_diverged();  // churn: the planned future no longer holds
  n.set_failed(false);
  soa_.failed.erase(id);
  trace_.emit(sim_.now(), sim::TraceCategory::kFault,
              [id] { return "node " + std::to_string(id) + " restored"; });
  return true;
}

bool Network::cut_link(LinkId l) {
  CCREDF_EXPECT(l < nodes(), "Network: link out of range");
  // Idempotence contract (fault/injector.hpp): cutting an already-
  // severed link -- which overlapping link-fault schedules produce
  // naturally -- must not re-count the cut or restart detection.
  if (severed_.contains(l)) return false;
  mark_plan_diverged();  // the plan's grant layout assumed an intact ring
  severed_.insert(l);
  ++stats_.faults.link_cuts;
  if (!cut_detect_pending_) {
    // The next collection phase classifies the loss pattern (its heard
    // evidence truncates at the severed hop) -- that slot books the
    // in-protocol detection latency.
    cut_detect_pending_ = true;
    cut_detect_from_ = slot_;
  }
  trace_.emit(sim_.now(), sim::TraceCategory::kFault, [l] {
    return "link " + std::to_string(l) + " severed";
  });
  return true;
}

bool Network::splice_link(LinkId l) {
  if (!severed_.contains(l)) return false;  // splice-of-intact: no-op
  mark_plan_diverged();  // healing changes the feasible grant set too
  severed_.erase(l);
  trace_.emit(sim_.now(), sim::TraceCategory::kFault, [l] {
    return "link " + std::to_string(l) + " spliced";
  });
  return true;
}

NodeId Network::degraded_anchor() const {
  if (severed_.size() != 1) return kInvalidNode;
  // The first live node downstream of the cut: anchored there, the
  // clock-break link coincides with the severed link (any failed nodes
  // skipped over sit between the cut and the anchor, where no record
  // travels anyway).
  NodeId anchor = topo_.downstream(severed_.lowest());
  NodeId tried = 0;
  while (tried < nodes() && soa_.failed.contains(anchor)) {
    anchor = topo_.downstream(anchor);
    ++tried;
  }
  return tried == nodes() ? kInvalidNode : anchor;
}

std::vector<Network::OpenConnectionInfo> Network::connections_of(
    NodeId src) const {
  std::vector<OpenConnectionInfo> out;
  for (const auto& [id, st] : releases_) {
    if (st.open && st.params.source == src) {
      out.push_back(OpenConnectionInfo{id, st.params});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OpenConnectionInfo& a, const OpenConnectionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<Network::OpenCbsInfo> Network::cbs_servers_of(NodeId src) const {
  std::vector<OpenCbsInfo> out;
  for (const auto& [id, st] : cbs_) {
    if (st.server.params().source == src) {
      out.push_back(OpenCbsInfo{id, st.server.params()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OpenCbsInfo& a, const OpenCbsInfo& b) {
              return a.id < b.id;
            });
  return out;
}

void Network::execute_grants(SlotRecord& rec, sim::TimePoint slot_end) {
  int executed = 0;
  for (const NodeId g : current_granted_) {
    Node& src = nodes_[g];
    if (!soa_.bound.contains(g) || src.failed() ||
        !src.queues().contains(soa_.bind_msg[g])) {
      ++stats_.wasted_grants;
      continue;
    }
    if (!severed_.empty() && soa_.bind_links[g].intersects(severed_)) {
      // The link was cut between arbitration and transmission: the data
      // packet dies at the severed hop, so the grant is voided and the
      // message stays queued (quarantine resolves its fate).
      ++stats_.wasted_grants;
      continue;
    }
    ++executed;
    ++stats_.total_grants;
    ++stats_.node_grants[g];
    auto done = src.queues().consume_slot(soa_.bind_msg[g]);
    if (!cbs_.empty()) charge_cbs(g, done.has_value());
    if (!done) continue;  // more slots of this message remain
    refresh_queued_bit(g);  // the consumed message may have drained g
    if (plan_valid_ && !plan_diverged_) {
      // Divergence-exact completion check: while the plan is in effect
      // every completion must be the front of its connection's pending
      // queue, else the engine's view has drifted from the plan's.
      plan_note_completion(done->connection, done->id);
    }

    core::Delivery d;
    d.id = done->id;
    d.source = done->source;
    d.dests = done->dests;
    d.traffic_class = done->traffic_class;
    d.connection = done->connection;
    d.arrival = done->arrival;
    d.completed = slot_end + phy_->path_delay(g, soa_.bind_hops[g]);
    d.deadline = done->deadline;
    d.size_slots = done->size_slots;

    if (fault_hook_ != nullptr) {
      // Data-channel exposure: the payload rode the byte-parallel fibres
      // from the source over the links to its furthest destination.
      // With the payload CRC every slot also carries its 32-bit check.
      std::int64_t payload_bits = done->payload_bytes * 8;
      if (cfg_.with_payload_crc) payload_bits += 32 * done->size_slots;
      using DataF = FaultHook::DataFault;
      const DataF fate =
          fault_hook_->filter_data(slot_, g, soa_.bind_hops[g], payload_bits);
      if (fate != DataF::kNone) {
        ++stats_.faults.payload_corruptions;
        ++stats_.per_node_faults[g].payloads_corrupted;
      }
      if (fate == DataF::kDetected) {
        // The receivers' CRC-32 rejected the payload: the garbage never
        // reaches an inbox, and the source learns through the NACK bits
        // of the next distribution packet (with_acks runs).
        ++stats_.faults.payload_detected;
        rec.corrupt_deliveries.push_back(d);
        continue;
      }
      // kSilent: the corruption escaped detection (no payload CRC, or
      // the CRC-32 residual) -- the garbage is delivered and counted as
      // the hazard it is.
      if (fate == DataF::kSilent) ++stats_.faults.payload_undetected;
    }
    rec.deliveries.push_back(d);

    for (const NodeId dst : soa_.bind_dests[g]) {
      if (!nodes_[dst].failed()) nodes_[dst].deliver(d);
    }
    auto& cs = stats_.cls(done->traffic_class);
    ++cs.delivered;
    cs.bytes += done->payload_bytes;
    cs.latency.add(d.latency());
    const bool sched_miss = !d.met_deadline();
    // Eq. 3: the user-level bound adds the protocol latency (Eq. 4).
    const bool user_miss =
        sched_miss &&
        d.completed > d.deadline + timing_->worst_case_latency();
    if (sched_miss) ++cs.scheduling_misses;
    if (user_miss) ++cs.user_misses;
    if (done->connection != kNoConnection) {
      auto& conn = conn_stats_slot(done->connection);
      ++conn.delivered;
      conn.bytes += done->payload_bytes;
      conn.latency.add(d.latency());
      if (sched_miss) ++conn.scheduling_misses;
      if (user_miss) ++conn.user_misses;
    }
  }
  if (executed > 0) {
    ++stats_.busy_slots;
    if (executed > 1) ++stats_.reuse_slots;
  }
}

void Network::collect_requests(std::vector<core::Request>& reqs) {
  // SoA dirty tracking: only the entries the previous slot wrote need
  // clearing (the reused vector keeps everything else idle already).
  for (const NodeId j : requesters_) reqs[j] = core::Request{};
  requesters_ = NodeSet{};
  soa_.bound = NodeSet{};

  // Severed-segment truncation (PROTOCOL.md section 7.5): the collection
  // packet dies at the first severed link in collection order, so the
  // master samples (and hears) only the contiguous prefix of nodes up to
  // and including the cut's upstream endpoint -- the packet dies LEAVING
  // that node.  With the single-cut master re-anchored at the cut's
  // downstream endpoint, the first severed link is the break link itself
  // and the prefix covers the whole ring.
  NodeId reach = static_cast<NodeId>(nodes() - 1);
  if (!severed_.empty()) {
    for (const NodeId l : severed_) {
      reach = std::min(reach, topo_.hops(master_, l));
    }
    if (cut_detect_pending_) {
      // First collection under the cut: the truncated heard prefix is
      // the classified loss pattern (contiguous downstream suffix
      // unheard while its nodes are alive -- unlike a node death's
      // isolated gap).  Book the in-protocol detection latency.
      stats_.faults.cut_detect_slots += slot_ - cut_detect_from_ + 1;
      cut_detect_pending_ = false;
    }
  }

  const sim::Duration* off =
      &sample_off_[static_cast<std::size_t>(master_) * nodes()];
  const auto bind = [&](NodeId j, const core::Message& m,
                        sim::TimePoint sample) {
    if (soa_.bind_msg[j] != m.id) {
      // New head at this node: compute its transmission geometry once.
      // Message ids are never reused and dests are immutable, so a
      // matching bind_msg means hops/links/dests are already right
      // (heads typically persist several slots awaiting their grant).
      const auto seg = ring::Segment::for_transmission(topo_, j, m.dests);
      soa_.bind_msg[j] = m.id;
      soa_.bind_hops[j] = seg.hops();
      soa_.bind_links[j] = seg.links();
      soa_.bind_dests[j] = m.dests;
      soa_.bind_conn[j] = m.connection;
    }
    if (!severed_.empty() && soa_.bind_links[j].intersects(severed_)) {
      // Degraded-mode candidate mask: the transfer's segment crosses a
      // severed link, so the arbiter never sees it (the node still
      // writes its idle record and stays heard; the message stays
      // queued -- quarantine, not arbitration, resolves its fate).
      return;
    }
    reqs[j].priority = priority_of(m, sample);
    reqs[j].links = soa_.bind_links[j];
    reqs[j].dests = m.dests;
    soa_.bound.insert(j);
    requesters_.insert(j);
    ++stats_.node_requests[j];
  };

  const sim::TimePoint last_sample = slot_start_ + last_sample_off_[master_];
  if (fault_hook_ == nullptr && sim_.next_event_time() > last_sample) {
    // Fast path: no event fires inside the sampling window (strict
    // comparison -- an event AT a sample time must precede that sample)
    // and no fault hook intercepts idle records, so only nodes with a
    // queued message can produce a request.  Sampling order is
    // irrelevant here: each node's sample depends only on its own
    // offset, and no event interleaves.  Every live node's record --
    // request or idle -- reaches the master untouched: the failed set
    // cannot change mid-window (no event), so the heard evidence is one
    // mask expression.  Under a severed segment the same expression is
    // intersected with the reachable prefix (an arc mask, built only on
    // degraded slots).
    NodeSet reached = topo_.all_nodes();
    if (reach + 1 < nodes()) {
      reached = NodeSet{};
      for (NodeId h = 0; h <= reach; ++h) {
        reached.insert(topo_.downstream(master_, h));
      }
    }
    rec_.heard = reached & ~soa_.failed;
    const NodeSet candidates = soa_.queued & ~soa_.failed & reached;
    for (const NodeId j : candidates) {
      const sim::TimePoint sample = slot_start_ + off[j];
      const core::Message* m = nodes_[j].queues().head(sample);
      if (m != nullptr) bind(j, *m, sample);
    }
    // Mirror the slow path's final run_until(sample of hop N-1).
    sim_.advance_to(last_sample);
    return;
  }

  for (NodeId h = 0; h <= reach; ++h) {
    const NodeId j = topo_.downstream(master_, h);
    // The collection packet reaches node j after propagating h hops and
    // being delayed in each intermediate node (t_node of Eq. 2).
    const sim::TimePoint sample = slot_start_ + off[j];
    sim_.run_until(sample);
    Node& nd = nodes_[j];
    if (nd.failed()) continue;
    // The node was live at its sampling instant: it wrote a (possibly
    // idle) record into the passing collection packet.  Faults below may
    // still destroy it in transit.
    rec_.heard.insert(j);
    if (soa_.queued.contains(j)) {
      const core::Message* m = nd.queues().head(sample);
      if (m != nullptr) bind(j, *m, sample);
    }
    if (fault_hook_ == nullptr) continue;
    using RF = FaultHook::RequestFault;
    switch (fault_hook_->filter_request(slot_, h, j, reqs[j])) {
      case RF::kNone:
        break;
      case RF::kDropped:
        // The record died on the wire: the master sees an idle node.
        reqs[j] = core::Request{};
        soa_.bound.erase(j);
        requesters_.erase(j);
        rec_.heard.erase(j);  // no valid record arrived: unheard
        ++stats_.faults.collection_drops;
        ++stats_.per_node_faults[j].requests_dropped;
        break;
      case RF::kDetected:
        // The master's integrity guards rejected the record; the
        // containment action is to treat the node as idle this round
        // (its message stays queued and re-requests next slot).
        reqs[j] = core::Request{};
        soa_.bound.erase(j);
        requesters_.erase(j);
        rec_.heard.erase(j);  // guards rejected the record: unheard
        ++stats_.faults.collection_corruptions;
        ++stats_.faults.collection_detected;
        ++stats_.per_node_faults[j].requests_corrupted;
        ++stats_.per_node_faults[j].requests_rejected;
        break;
      case RF::kSilent:
        // Corruption passed the guards: arbitration acts on the mutated
        // fields.  The binding stays -- if granted, the node transmits
        // its real message (only the master's view was lied to).
        requesters_.insert(j);
        ++stats_.faults.collection_corruptions;
        ++stats_.faults.collection_silent;
        ++stats_.per_node_faults[j].requests_corrupted;
        break;
      case RF::kSpurious:
        // Babbling node: a fabricated request with no message behind
        // it.  If granted, the grant is wasted (execute_grants counts
        // it) and the slot capacity is lost to the babbler.
        soa_.bound.erase(j);
        requesters_.insert(j);
        ++stats_.faults.spurious_requests;
        ++stats_.per_node_faults[j].spurious_requests;
        break;
    }
  }
  // When the walk was truncated by a severed link the engine still burns
  // the full sampling window -- the dead packet does not shorten the
  // slot.  A no-op for full walks (hop N-1's run_until already landed
  // exactly here).
  sim_.run_until(last_sample);
}

void Network::step_slot() {
  sim_.run_until(slot_start_);
  plan_release_due(slot_start_);
  const sim::Duration t_slot = timing_->slot();
  const sim::TimePoint slot_end = slot_start_ + t_slot;

  // Reuse the scratch record: its vectors keep their high-water capacity,
  // so a steady-state slot performs no heap allocation.
  SlotRecord& rec = rec_;
  rec.index = slot_;
  rec.start = slot_start_;
  rec.end = slot_end;
  rec.gap_after = sim::Duration::zero();
  rec.master = master_;
  rec.next_master = kInvalidNode;
  rec.granted = current_granted_;
  rec.deliveries.clear();
  rec.corrupt_deliveries.clear();
  rec.acks = NodeSet{};
  rec.nacks = NodeSet{};
  rec.token_lost = false;
  rec.heard = NodeSet{};

  // Phase 1: the data of this slot (granted during slot k-1).
  execute_grants(rec, slot_end);
  stats_.time_in_slots += t_slot;
  if (cfg_.with_acks) {
    // Receivers acknowledge last slot's completed transfers in this
    // slot's distribution packet (ref [11]); lost with the packet on a
    // token loss.
    rec.acks = pending_acks_;
    pending_acks_ = NodeSet{};
    for (const auto& d : rec.deliveries) pending_acks_.insert(d.source);
  }
  const bool nack_wire = cfg_.with_acks && cfg_.with_payload_crc;
  if (nack_wire) {
    // Receivers NACK last slot's CRC-rejected payloads the same way the
    // acks travel: on the next distribution packet.
    rec.nacks = pending_nacks_;
    pending_nacks_ = NodeSet{};
    for (const auto& d : rec.corrupt_deliveries) {
      pending_nacks_.insert(d.source);
    }
  }

  // Phase 2: collection for slot k+1 rides the control channel now --
  // unless an engaged hypercycle plan already knows the outcome, in
  // which case the wire stays silent (no sampling, no request records,
  // no arbitration).  The branch is latched here: divergence signalled
  // later in this slot takes effect at the next slot boundary, exactly
  // as on the try_plan_forward path.
  const bool planned = plan_engaged();
  if (planned) {
    for (const NodeId j : requesters_) rec.requests[j] = core::Request{};
    requesters_ = NodeSet{};
    soa_.bound = NodeSet{};
    // No failure can have survived engagement (fail_node diverges the
    // plan), so every node evidences itself on a planned slot.
    rec.heard = topo_.all_nodes() & ~soa_.failed;
  } else {
    collect_requests(rec.requests);
  }
  const std::vector<core::Request>& requests = rec.requests;

  // Phase 3: arbitration at the master; the distribution packet ends with
  // the slot.  A token loss (fault injection, or the master dying at any
  // point before the packet's last bit) means no node learns the outcome
  // -- so drain events through slot end before judging.
  sim_.run_until(slot_end);
  bool token_lost = false;
  if (!planned && fault_hook_ != nullptr &&
      fault_hook_->drop_distribution(slot_)) {
    token_lost = true;
    ++stats_.faults.token_losses;
  }
  if (nodes_[master_].failed()) {
    token_lost = true;
    // The heartbeat evidence lived in the collection packet the master
    // was accumulating; a dead master takes it down with the slot.  (A
    // distribution-packet loss above does NOT clear it: the master
    // heard everyone before the outbound packet died.)
    rec.heard = NodeSet{};
  }
  SlotPlan plan;
  if (!token_lost && planned) {
    plan = plan_next_from_cursor();
  } else if (!token_lost) {
    plan = protocol_->plan_next_slot(requests, master_, slot_, requesters_);
    // Priority-inversion accounting: the globally most urgent requester
    // must be among the granted (always true for CCR-EDF; the simple
    // clocking strategy of CC-FPR violates it -- paper §1).  requesters_
    // covers every non-idle entry (mask order = index order, so ties
    // resolve exactly as the full scan did).
    NodeId hp = kInvalidNode;
    core::Priority best = 0;
    for (const NodeId i : requesters_) {
      if (requests[i].priority > best) {
        best = requests[i].priority;
        hp = i;
      }
    }
    if (hp != kInvalidNode && !plan.granted.contains(hp)) {
      ++stats_.priority_inversions;
    }
  }
  if (!token_lost && !planned && fault_hook_ != nullptr) {
    // The distribution packet crosses every link; bit errors on it are
    // the most dangerous fault axis because ALL nodes act on the result.
    core::DistributionPacket pkt;
    pkt.granted = plan.granted;
    pkt.hp_node = plan.next_master;
    pkt.has_acks = cfg_.with_acks;
    pkt.acks = rec.acks;
    pkt.has_nacks = nack_wire;
    pkt.nacks = rec.nacks;
    using DF = FaultHook::DistributionFault;
    switch (fault_hook_->filter_distribution(slot_, pkt)) {
      case DF::kNone:
        break;
      case DF::kDetected:
        // Receivers reject the frame (CRC / start bit / hp range): no
        // node learns the next master, which is exactly the token-loss
        // condition, so the designated-restarter timeout recovers
        // (PROTOCOL.md §7).  Rejecting is the SAFE outcome -- the
        // alternative is acting on a corrupted grant view.
        ++stats_.faults.distribution_corruptions;
        ++stats_.faults.distribution_detected;
        token_lost = true;
        break;
      case DF::kGrantView: {
        // The frame passed the guards but its grant/ack bits mutated.
        // Each node cross-checks the view against what it knows
        // locally: a grant bit on a node that sent priority 0 is
        // impossible (that node knows it), so the ring can void the
        // slot and re-arbitrate instead of breaking the clock.
        ++stats_.faults.distribution_corruptions;
        bool impossible = false;  // grant bit on a non-requester
        bool collision = false;   // grant bit on an ungranted requester
        for (const NodeId g : pkt.granted) {
          if (plan.granted.contains(g)) continue;
          if (!requests[g].wants_slot()) {
            impossible = true;
          } else {
            collision = true;
          }
        }
        if (impossible) {
          ++stats_.faults.distribution_detected;
          ++stats_.faults.rearbitration_slots;
          plan.granted = NodeSet{};
          rec.acks = NodeSet{};
          rec.nacks = NodeSet{};
          soa_.bound = NodeSet{};
        } else if (collision) {
          // Undetectable: the extra node believes its request was
          // granted and transmits into links arbitration gave to
          // others.  Model the collision as the whole slot's transfers
          // garbled -- this is the residual hazard the CRC exists to
          // shrink.
          ++stats_.faults.silent_misarbitrations;
          plan.granted = NodeSet{};
          soa_.bound = NodeSet{};
        } else {
          // Only cleared bits: granted nodes stay silent, capacity is
          // lost but nothing collides -- harmless degradation.
          plan.granted = pkt.granted;
          rec.acks = pkt.acks;
          rec.nacks = pkt.nacks;
        }
        break;
      }
      case DF::kSilentMaster:
        // The hp-node index mutated to another in-range value.  Nodes
        // upstream of the corrupted link saw the true master, nodes
        // downstream the wrong one: two nodes start slot k+1 -- the
        // clock-break hazard.  The collision is detected only by the
        // restarter's silence timeout, so model it as a stalled clock.
        ++stats_.faults.distribution_corruptions;
        ++stats_.faults.silent_misarbitrations;
        token_lost = true;
        break;
    }
  }

  sim::Duration gap;
  if (token_lost) {
    // Recovery (paper §8): the designated node times out and restarts the
    // clock; the planned grants died with the distribution packet.
    rec.token_lost = true;
    mark_plan_diverged();
    gap = (t_slot + protocol_->max_gap()) * cfg_.recovery_timeout_slots;
    // The designated restarter takes over; if it is itself down, the
    // first live node downstream of it assumes the role.
    NodeId restarter = cfg_.designated_restarter;
    NodeId tried = 0;
    while (tried < nodes() && nodes_[restarter].failed()) {
      restarter = topo_.downstream(restarter);
      ++tried;
    }
    if (tried == nodes()) {
      // EVERY node is failed: no deputy exists, so nothing restarts the
      // clock -- the ring is dark until a node is restored.  Counting a
      // recovery here would be a phantom restart; the clock is parked at
      // the designated restarter so recovery resumes the moment it (or
      // any upstream deputy) comes back.
      ++stats_.faults.ring_dark;
      plan.next_master = cfg_.designated_restarter;
    } else {
      ++recoveries_;
      ++stats_.faults.recoveries;
      recovery_time_ += gap;
      stats_.faults.recovery_gap.add(gap);
      stats_.faults.recovery_gap_quantiles.add(gap.ps());
      plan.next_master = restarter;
    }
    plan.granted = NodeSet{};
    // The acks and NACKs died with the distribution packet.
    rec.acks = NodeSet{};
    rec.nacks = NodeSet{};
    soa_.bound = NodeSet{};
  } else {
    gap = protocol_->gap(master_, plan.next_master);
  }
  if (!severed_.empty()) {
    if (severed_.size() >= 2) {
      // Two or more cuts partition the ring: no single surviving
      // orientation exists, so the ring parks dark exactly like the
      // all-failed token-loss case -- grants voided, clock parked at the
      // designated restarter, resuming the moment splices bring the cut
      // count back to one or zero.
      ++stats_.faults.ring_dark;
      plan.granted = NodeSet{};
      soa_.bound = NodeSet{};
      if (!token_lost) {
        plan.next_master = cfg_.designated_restarter;
        gap = protocol_->gap(master_, plan.next_master);
      }
    } else {
      // Single cut: master succession re-anchors at the cut's downstream
      // endpoint so the collection path never traverses the severed
      // segment (the break link coincides with the cut).
      const NodeId anchor = degraded_anchor();
      if (anchor != kInvalidNode && plan.next_master != anchor &&
          !token_lost) {
        plan.next_master = anchor;
        gap = protocol_->gap(master_, anchor);
      }
    }
  }
  stats_.faults.payload_nacks += rec.nacks.size();

  rec.gap_after = gap;
  rec.next_master = plan.next_master;

  stats_.time_in_gaps += gap;
  stats_.gap.add(gap);
  stats_.handover_hops.add(
      static_cast<std::int64_t>(topo_.hops(master_, plan.next_master)));
  ++stats_.slots;

  trace_.emit(slot_start_, sim::TraceCategory::kSlot, [&] {
    std::ostringstream os;
    os << "slot " << slot_ << " master=" << master_ << " granted="
       << rec.granted.size() << " next=" << plan.next_master
       << " gap=" << gap.ns() << "ns";
    return os.str();
  });

  current_granted_ = plan.granted;
  master_ = plan.next_master;
  slot_start_ = slot_end + gap;
  ++slot_;

  for (const auto& obs : observers_) obs(rec);
  // The resilience hook runs LAST: it may mutate the network (quarantine
  // closes, staged re-opens), and the observers above must see the slot
  // as it actually ran.
  if (resilience_ != nullptr) resilience_->on_slot_end(rec);
}

std::int64_t Network::try_fast_forward(std::int64_t max_slots) {
  if (!cfg_.fast_forward || max_slots <= 0) return 0;
  // A slot is skippable only when it is provably the idle fixed point:
  // nothing transmits (no live node has a queued message, no grants or
  // ack/NACK bits are in flight), the protocol keeps the master on an
  // all-idle slot, the master is alive (a dead master is the token-loss
  // path), and nobody observes per-slot artefacts.
  if (!protocol_->idle_keeps_master()) return 0;
  if (!observers_.empty() || trace_.enabled(sim::TraceCategory::kSlot)) {
    return 0;
  }
  if (!(soa_.queued & ~soa_.failed).empty()) return 0;
  if (!current_granted_.empty()) return 0;
  if (!pending_acks_.empty() || !pending_nacks_.empty()) return 0;
  if (soa_.failed.contains(master_)) return 0;
  // A severed ring is skippable only once it has settled into the stable
  // degraded orbit: exactly one cut with the master parked at the cut's
  // downstream anchor (the break link coincides with the cut, so an idle
  // slot keeps the master and hears everyone -- the same fixed point as
  // the intact ring).  Multi-cut dark slots and un-anchored slots mutate
  // state (ring_dark, succession) and must be simulated.
  if (!severed_.empty() &&
      (severed_.size() != 1 || master_ != degraded_anchor())) {
    return 0;
  }
  // The first collection under a fresh cut books the detection latency;
  // that slot must run for real.
  if (cut_detect_pending_) return 0;

  const sim::Duration t_slot = timing_->slot();
  const sim::Duration g = protocol_->gap(master_, master_);
  const sim::Duration step = t_slot + g;

  // Only slots ending STRICTLY before the next event are skippable: an
  // event landing inside (or exactly at the end of) a slot could release
  // a message a later collection sample of that slot would see, so that
  // slot is simulated normally.
  std::int64_t k = max_slots;
  // With the release events suppressed by an adopted plan, the table
  // cursor is the release "event" the skip window must not cross.
  const sim::TimePoint t_next =
      std::min(sim_.next_event_time(), plan_next_release_time());
  if (t_next < sim::TimePoint::infinity()) {
    const sim::Duration avail = t_next - slot_start_ - t_slot;
    if (avail <= sim::Duration::zero()) return 0;
    // Count of i >= 0 with i*step < avail, i.e. ceil(avail / step).
    const std::int64_t fit = (avail.ps() + step.ps() - 1) / step.ps();
    k = std::min(k, fit);
  }
  if (fault_hook_ != nullptr) {
    // With fault axes armed, fall back to batched keyed probes: the hook
    // reports the first slot in range that could fire.  The draws stay
    // keyed to (slot, channel), so probing preserves byte-determinism.
    const SlotIndex quiet =
        fault_hook_->first_idle_fault_slot(slot_, slot_ + k);
    k = std::min<std::int64_t>(k, quiet - slot_);
  }
  if (resilience_ != nullptr) {
    // The resilience hook bounds the skip by its own deadlines (a
    // detection window expiring, a reappearance to witness, an eligible
    // re-admission): the bounding slot itself is always simulated, so no
    // monitor transition can fall inside a skipped window.
    const SlotIndex safe = resilience_->next_deadline_slot(slot_, slot_ + k);
    k = std::min<std::int64_t>(k, safe - slot_);
  }
  if (k <= 0) return 0;

  // Advance every aggregate arithmetically.  ExactStats::add_n is
  // bitwise identical to k sequential adds, and per-node idle accounting
  // is derived (slots grow, node_requests do not), so the fast-forward
  // and slot-by-slot paths produce byte-identical statistics.
  stats_.slots += k;
  stats_.ff_slots_skipped += k;
  ++stats_.ff_windows;
  if (plan_valid_ && !plan_diverged_) {
    // Under an engaged plan an idle slot IS a planned wait (the queue
    // being empty proves the next bundle's releases have not fired), so
    // the idle fast path must mirror the cursor's wait accounting for
    // the planned-vs-unplanned and ff-vs-slot-by-slot parity gates.
    stats_.plan_wait_slots += k;
  }
  stats_.time_in_slots += t_slot * k;
  stats_.time_in_gaps += g * k;
  stats_.gap.add_n(g.ps(), k);
  stats_.handover_hops.add_n(0, k);

  const sim::TimePoint last_end = slot_start_ + step * (k - 1) + t_slot;
  sim_.advance_to(last_end);  // no event precedes last_end, by the bound
  const SlotIndex first = slot_;
  slot_ += k;
  slot_start_ = last_end + g;
  if (resilience_ != nullptr) {
    // Batch heartbeat advance: every skipped slot evidenced the same
    // live set (no event could change it inside the window).
    resilience_->on_fast_forward(first, k, topo_.all_nodes() & ~soa_.failed);
  }
  return k;
}

bool Network::can_plan_admit() const {
  return planner_ != nullptr && protocol_->supports_planning() &&
         fault_hook_ == nullptr && resilience_ == nullptr && cbs_.empty() &&
         soa_.failed.empty() && severed_.empty() &&
         current_granted_.empty() && soa_.queued.empty();
}

void Network::rebuild_plan() {
  // A previously adopted plan may have suppressed the release events;
  // bring them back before re-deriving (a successful build re-adopts).
  plan_restore_releases();
  plan_valid_ = false;
  plan_diverged_ = false;
  if (planner_ == nullptr || !protocol_->supports_planning()) return;
  if (fault_hook_ != nullptr || resilience_ != nullptr) return;
  if (!cbs_.empty() || !soa_.failed.empty()) return;
  // The planner's grant layout assumes an intact ring; a severed segment
  // keeps the engine on slot-by-slot TCMA until spliced whole.
  if (!severed_.empty()) return;
  // A plan anchors on a clean slot boundary: no grant in flight, no
  // message already queued (the plan's feasibility sim assumes every
  // job is released by its nominal instant and none earlier).
  if (!current_granted_.empty() || !soa_.queued.empty()) return;
  const sim::Duration t_slot = timing_->slot();
  planner_->clear();
  bool any = false;
  for (const auto& [id, st] : releases_) {
    if (!st.open) continue;
    if (st.released != 0) return;  // mid-stream: stay on TCMA
    const sim::Duration off = st.base - sim::TimePoint::origin();
    if (off.ps() % t_slot.ps() != 0) return;  // off the nominal grid
    planner_->add(id, st.params, off.ps() / t_slot.ps());
    any = true;
  }
  if (!any) return;
  if (!planner_->build(slot_start_, master_)) return;
  plan_valid_ = true;
  ++stats_.plan_builds;
  plan_prefix_pos_ = 0;
  plan_cycle_pos_ = 0;
  plan_cycle_no_ = 0;
  plan_pending_.assign(planner_->connection_count(), {});
  plan_adopt_releases();
}

void Network::plan_adopt_releases() {
  // While the plan drives the engine, the event heap would hold exactly
  // one self-rescheduling release event per connection (everything else
  // is gated off by the rebuild preconditions).  The plan knows the
  // whole periodic schedule, so those events collapse into a sorted
  // cyclic table walked by a cursor -- no schedule/sift/pop/dispatch
  // per message on the planned hot path.  Purely an engine strategy:
  // plan_release_due fires the same releases, in the same grid order,
  // with the same arrival instants, as the events it replaces.
  const std::int64_t h = planner_->hyperperiod_slots();
  const sim::Duration t_slot = timing_->slot();
  std::size_t entries = 0;
  for (const auto& [id, st] : releases_) {
    if (st.open) entries += static_cast<std::size_t>(h / st.params.period_slots);
  }
  if (entries > kMaxPlanReleaseEntries) return;  // keep the events
  plan_releases_.clear();
  plan_releases_.reserve(entries);
  for (auto& [id, st] : releases_) {
    if (!st.open) continue;
    sim_.cancel(st.next_event);
    const std::int64_t base =
        (st.base - sim::TimePoint::origin()).ps() / t_slot.ps();
    const std::int64_t period = st.params.period_slots;
    for (std::int64_t k = 0; k < h / period; ++k) {
      const std::int64_t first = base + k * period;
      plan_releases_.push_back(PlanRelease{first % h, first, id, &st});
    }
  }
  std::sort(plan_releases_.begin(), plan_releases_.end(),
            [](const PlanRelease& a, const PlanRelease& b) {
              if (a.rel != b.rel) return a.rel < b.rel;
              if (a.first_abs != b.first_abs) return a.first_abs < b.first_abs;
              return a.conn < b.conn;
            });
  // Position the cursor at the earliest unfired release (rebuild
  // guarantees released == 0 everywhere, so that is the smallest base).
  std::int64_t start = plan_releases_.front().first_abs;
  for (const PlanRelease& r : plan_releases_) {
    start = std::min(start, r.first_abs);
  }
  plan_release_cycle_ = start / h;
  plan_release_idx_ = 0;
  while (plan_release_idx_ < plan_releases_.size() &&
         plan_releases_[plan_release_idx_].rel < start % h) {
    ++plan_release_idx_;
  }
  if (plan_release_idx_ == plan_releases_.size()) {
    plan_release_idx_ = 0;
    ++plan_release_cycle_;
  }
}

void Network::plan_restore_releases() {
  if (plan_releases_.empty()) return;
  // Hand each open connection back to its self-rescheduling event.  A
  // release the table still owes (a mid-slot deferral) is scheduled at
  // max(nominal, now) -- it fires on the next event drain, and
  // fire_release stamps the nominal release instant either way, so the
  // message is bit-identical to the one the event path would have made.
  // Nothing fires inline: a release due exactly at now stays pending,
  // just as its original event would have been.
  plan_releases_.clear();
  for (auto& [id, st] : releases_) {
    if (!st.open) continue;
    // A connection opened this very call still has its admission-time
    // event pending (adoption never saw it) -- cancel before
    // re-scheduling or two self-rescheduling chains would run at once.
    sim_.cancel(st.next_event);
    const sim::TimePoint next =
        st.base + timing_->slot() * (st.params.period_slots * st.released);
    const ConnectionId cid = id;
    st.next_event = sim_.schedule_at(std::max(next, sim_.now()),
                                     [this, cid] { release_message(cid); });
  }
}

void Network::plan_release_due_slow(sim::TimePoint upto) {
  const std::int64_t h = planner_->hyperperiod_slots();
  const sim::Duration t_slot = timing_->slot();
  const sim::TimePoint origin = sim::TimePoint::origin();
  for (;;) {
    const PlanRelease& r = plan_releases_[plan_release_idx_];
    const std::int64_t abs = r.rel + plan_release_cycle_ * h;
    if (origin + t_slot * abs > upto) return;
    // Visits below first_abs are the start-up transient of an offset
    // connection (its k-th entry exists in every cycle but only fires
    // from cycle (first_abs - rel) / H on).
    if (abs >= r.first_abs && r.st->open) fire_release(r.conn, *r.st);
    if (plan_releases_.empty()) return;  // a divergence tore the table down
    if (++plan_release_idx_ == plan_releases_.size()) {
      plan_release_idx_ = 0;
      ++plan_release_cycle_;
    }
  }
}

sim::TimePoint Network::plan_next_release_time() const {
  if (plan_releases_.empty()) return sim::TimePoint::infinity();
  const PlanRelease& r = plan_releases_[plan_release_idx_];
  return sim::TimePoint::origin() +
         timing_->slot() *
             (r.rel + plan_release_cycle_ * planner_->hyperperiod_slots());
}

sim::TimePoint Network::plan_next_eligible_time() const {
  std::int64_t rel;
  if (plan_prefix_pos_ < planner_->prefix().size()) {
    rel = planner_->prefix()[plan_prefix_pos_].release_slot;
  } else {
    rel = planner_->cycle()[plan_cycle_pos_].release_slot +
          planner_->cycle_origin_slot() +
          plan_cycle_no_ * planner_->hyperperiod_slots();
  }
  return sim::TimePoint::origin() + timing_->slot() * rel;
}

SlotPlan Network::plan_next_from_cursor() {
  SlotPlan plan;
  plan.next_master = master_;
  const bool from_prefix = plan_prefix_pos_ < planner_->prefix().size();
  std::int64_t rel_base = 0;
  const core::HypercyclePlanner::Bundle* b;
  if (from_prefix) {
    b = &planner_->prefix()[plan_prefix_pos_];
  } else {
    b = &planner_->cycle()[plan_cycle_pos_];
    rel_base = planner_->cycle_origin_slot() +
               plan_cycle_no_ * planner_->hyperperiod_slots();
  }
  const sim::TimePoint eligible =
      sim::TimePoint::origin() + timing_->slot() * (b->release_slot + rel_base);
  if (eligible > slot_start_) {
    ++stats_.plan_wait_slots;
    return plan;  // wait: master keeps the clock, nobody granted
  }
  const core::HypercyclePlanner::Grant* gs = planner_->grants(*b);
  // Validate every pending front BEFORE binding, so a divergence (queue
  // drift) leaves no partial bindings behind.
  for (std::uint32_t i = 0; i < b->grant_count; ++i) {
    const std::int32_t pi = planner_->planned_index(gs[i].conn);
    if (pi < 0 || plan_pending_[static_cast<std::size_t>(pi)].empty() ||
        !nodes_[gs[i].source].queues().contains(
            plan_pending_[static_cast<std::size_t>(pi)].front())) {
      mark_plan_diverged();
      return plan;  // idle decision; TCMA resumes next slot
    }
  }
  for (std::uint32_t i = 0; i < b->grant_count; ++i) {
    const auto& g = gs[i];
    const NodeId s = g.source;
    const auto pi = static_cast<std::size_t>(planner_->planned_index(g.conn));
    soa_.bound.insert(s);
    soa_.bind_msg[s] = plan_pending_[pi].front();
    soa_.bind_hops[s] = g.hops;
    soa_.bind_links[s] = g.links;
    soa_.bind_dests[s] = g.dests;
    soa_.bind_conn[s] = g.conn;
  }
  plan.next_master = b->master;
  plan.granted = b->granted;
  if (from_prefix) {
    ++plan_prefix_pos_;
  } else if (++plan_cycle_pos_ == planner_->cycle().size()) {
    plan_cycle_pos_ = 0;
    ++plan_cycle_no_;
  }
  ++stats_.planned_slots;
  return plan;
}

void Network::execute_plan_grants(sim::TimePoint slot_end) {
  int executed = 0;
  for (const NodeId g : current_granted_) {
    Node& src = nodes_[g];
    if (!soa_.bound.contains(g) || src.failed() ||
        !src.queues().contains(soa_.bind_msg[g])) {
      ++stats_.wasted_grants;
      continue;
    }
    ++executed;
    ++stats_.total_grants;
    ++stats_.node_grants[g];
    auto done = src.queues().consume_slot(soa_.bind_msg[g]);
    if (!done) continue;
    refresh_queued_bit(g);
    if (plan_valid_ && !plan_diverged_) {
      plan_note_completion(done->connection, done->id);
    }
    core::Delivery d;
    d.id = done->id;
    d.source = done->source;
    d.dests = done->dests;
    d.traffic_class = done->traffic_class;
    d.connection = done->connection;
    d.arrival = done->arrival;
    d.completed = slot_end + phy_->path_delay(g, soa_.bind_hops[g]);
    d.deadline = done->deadline;
    d.size_slots = done->size_slots;
    for (const NodeId dst : soa_.bind_dests[g]) {
      if (!nodes_[dst].failed()) nodes_[dst].deliver(d);
    }
    auto& cs = stats_.cls(done->traffic_class);
    ++cs.delivered;
    cs.bytes += done->payload_bytes;
    cs.latency.add(d.latency());
    const bool sched_miss = !d.met_deadline();
    const bool user_miss =
        sched_miss && d.completed > d.deadline + timing_->worst_case_latency();
    if (sched_miss) ++cs.scheduling_misses;
    if (user_miss) ++cs.user_misses;
    if (done->connection != kNoConnection) {
      auto& conn = conn_stats_slot(done->connection);
      ++conn.delivered;
      conn.bytes += done->payload_bytes;
      conn.latency.add(d.latency());
      if (sched_miss) ++conn.scheduling_misses;
      if (user_miss) ++conn.user_misses;
    }
  }
  if (executed > 0) {
    ++stats_.busy_slots;
    if (executed > 1) ++stats_.reuse_slots;
  }
}

std::int64_t Network::try_plan_forward(std::int64_t max_slots) {
  if (!cfg_.fast_forward || max_slots <= 0) return 0;
  if (!plan_valid_ || plan_diverged_) return 0;
  if (cfg_.with_acks) return 0;  // ack bookkeeping needs the full path
  const sim::Duration t_slot = timing_->slot();
  std::int64_t done = 0;
  while (done < max_slots) {
    if (!observers_.empty() || trace_.enabled(sim::TraceCategory::kSlot)) {
      break;
    }
    sim_.run_until(slot_start_);
    plan_release_due(slot_start_);
    if (!plan_valid_ || plan_diverged_) break;  // an event broke the plan
    if (current_granted_.empty()) {
      // Wait stretch: batched exactly like try_fast_forward's idle skip.
      const sim::TimePoint need = plan_next_eligible_time();
      if (need > slot_start_) {
        const sim::Duration g = protocol_->gap(master_, master_);
        const sim::Duration step = t_slot + g;
        std::int64_t k = max_slots - done;
        k = std::min(k,
                     ((need - slot_start_).ps() + step.ps() - 1) / step.ps());
        const sim::TimePoint t_next = sim_.next_event_time();
        if (t_next < sim::TimePoint::infinity()) {
          const sim::Duration avail = t_next - slot_start_ - t_slot;
          if (avail <= sim::Duration::zero()) {
            k = 0;
          } else {
            k = std::min(k, (avail.ps() + step.ps() - 1) / step.ps());
          }
        }
        if (k > 0) {
          stats_.slots += k;
          stats_.plan_wait_slots += k;
          stats_.time_in_slots += t_slot * k;
          stats_.time_in_gaps += g * k;
          stats_.gap.add_n(g.ps(), k);
          stats_.handover_hops.add_n(0, k);
          const sim::TimePoint last_end = slot_start_ + step * (k - 1) + t_slot;
          sim_.advance_to(last_end);
          slot_ += k;
          slot_start_ = last_end + g;
          done += k;
          continue;
        }
        // An event lands inside the next slot: run it on the full path
        // below (the decision is still the same wait).
      }
    }
    // One full planned slot on the lean path.
    const sim::TimePoint slot_end = slot_start_ + t_slot;
    execute_plan_grants(slot_end);
    stats_.time_in_slots += t_slot;
    soa_.bound = NodeSet{};
    sim_.run_until(slot_end);
    if (nodes_[master_].failed()) {
      // Token loss: accounting identical to step_slot's recovery path.
      mark_plan_diverged();
      const sim::Duration gap =
          (t_slot + protocol_->max_gap()) * cfg_.recovery_timeout_slots;
      NodeId restarter = cfg_.designated_restarter;
      NodeId tried = 0;
      while (tried < nodes() && nodes_[restarter].failed()) {
        restarter = topo_.downstream(restarter);
        ++tried;
      }
      if (tried == nodes()) {
        ++stats_.faults.ring_dark;
        restarter = cfg_.designated_restarter;
      } else {
        ++recoveries_;
        ++stats_.faults.recoveries;
        recovery_time_ += gap;
        stats_.faults.recovery_gap.add(gap);
        stats_.faults.recovery_gap_quantiles.add(gap.ps());
      }
      soa_.bound = NodeSet{};
      stats_.time_in_gaps += gap;
      stats_.gap.add(gap);
      stats_.handover_hops.add(
          static_cast<std::int64_t>(topo_.hops(master_, restarter)));
      ++stats_.slots;
      current_granted_ = NodeSet{};
      master_ = restarter;
      slot_start_ = slot_end + gap;
      ++slot_;
      ++done;
      break;
    }
    const SlotPlan plan = plan_next_from_cursor();
    const sim::Duration gap = protocol_->gap(master_, plan.next_master);
    stats_.time_in_gaps += gap;
    stats_.gap.add(gap);
    stats_.handover_hops.add(
        static_cast<std::int64_t>(topo_.hops(master_, plan.next_master)));
    ++stats_.slots;
    current_granted_ = plan.granted;
    master_ = plan.next_master;
    slot_start_ = slot_end + gap;
    ++slot_;
    ++done;
  }
  return done;
}

void Network::run_slots(std::int64_t n) {
  std::int64_t done = 0;
  while (done < n) {
    done += try_fast_forward(n - done);
    if (done >= n) break;
    const std::int64_t p = try_plan_forward(n - done);
    if (p > 0) {
      done += p;
      continue;
    }
    step_slot();
    ++done;
  }
}

void Network::run_for(sim::Duration d) {
  const sim::TimePoint horizon = sim_.now() + d;
  // gap(m, m) is only meaningful for protocols with the idle fixed point
  // (CC-FPR asserts on non-adjacent hand-overs), so gate up front.
  const bool can_ff = cfg_.fast_forward && protocol_->idle_keeps_master();
  while (slot_start_ < horizon) {
    if (can_ff) {
      // Mirror the slot-by-slot loop: only slots STARTING before the
      // horizon run, so bound the skip by the same condition.  The gap
      // of an idle slot is fixed, so the bound is exact arithmetic.
      const sim::Duration step =
          timing_->slot() + protocol_->gap(master_, master_);
      const sim::Duration room = horizon - slot_start_;
      const std::int64_t starts =
          (room.ps() + step.ps() - 1) / step.ps();  // ceil: starts < horizon
      if (try_fast_forward(starts) > 0) continue;
    }
    step_slot();
  }
}

}  // namespace ccredf::net
