// Network construction parameters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/priority.hpp"
#include "phy/link.hpp"

namespace ccredf::phy {
class RingPhy;
}
namespace ccredf::ring {
class RingTopology;
}

namespace ccredf::net {

class MacProtocol;
struct NetworkConfig;

/// Builds the MAC protocol once the physical ring exists.  Leaving the
/// factory empty selects CCR-EDF; the baseline module provides factories
/// for CC-FPR and TDMA.
using ProtocolFactory = std::function<std::unique_ptr<MacProtocol>(
    const phy::RingPhy&, const ring::RingTopology&, const NetworkConfig&)>;

struct NetworkConfig {
  NodeId nodes = 8;

  phy::RibbonLinkParams link = phy::optobus();
  /// Uniform link length (paper assumes equal lengths); ignored when
  /// `link_lengths_m` is non-empty.
  double link_length_m = 10.0;
  std::vector<double> link_lengths_m;

  /// Data payload per slot in bytes; 0 selects
  /// max(Eq. 2 minimum, default_payload_floor).
  std::int64_t slot_payload_bytes = 0;
  std::int64_t default_payload_floor = 64;

  core::PriorityLayout priority{};

  /// Spatial reuse on (run-time behaviour) or off (the §5 analysis mode:
  /// one message per slot).
  bool spatial_reuse = true;

  /// Carry the reliable-service ack field in the distribution packet.
  bool with_acks = false;

  /// Frame-integrity extension: append a CRC-8 to every request record
  /// in the collection packet and to the distribution packet, so
  /// receivers detect control-channel bit errors instead of acting on
  /// garbage (see PROTOCOL.md §7).  Off by default: the paper's frames
  /// carry no checksum, and enabling it lengthens both control packets.
  bool with_frame_crc = false;

  /// Data-channel integrity extension: every data packet carries a
  /// CRC-32 per payload slot, so receivers detect payload corruption
  /// instead of delivering garbage.  A detected packet is dropped before
  /// the inbox and its source is NACKed through the distribution
  /// packet's ack field on the next slot (requires with_acks for the
  /// NACK bits to have a wire to ride; without acks, detection still
  /// suppresses the delivery).  Off by default: the paper's data fibres
  /// are raw byte lanes, and the checksum costs 4 bytes per slot of
  /// payload.  See PROTOCOL.md §7.3.
  bool with_payload_crc = false;

  enum class Mapper { kLogarithmic, kLinear };
  Mapper mapper = Mapper::kLogarithmic;
  /// Slots per priority level for the linear mapper ablation.
  std::int64_t linear_quantum_slots = 8;

  /// Node designated to restart the clock after token loss (paper §8
  /// suggests "a designated node that always will start").
  NodeId designated_restarter = 0;
  /// Idle slots-equivalents the restarter waits before declaring the
  /// token lost.
  std::int64_t recovery_timeout_slots = 4;

  /// Record every delivery in the receiving node's inbox vector.  On by
  /// default (tests and examples drain inboxes); long-running throughput
  /// and soak experiments turn it off so steady-state slots stay
  /// allocation-free and memory stays bounded -- delivery callbacks and
  /// NetworkStats still see every delivery.
  bool record_inboxes = true;

  /// Slot fast-forward: when the ring is provably idle (no queued
  /// messages, no pending grants/acks, master keeps the clock) and no
  /// event fires before a slot's end, the engine advances whole slots
  /// arithmetically instead of simulating them.  Statistics are bitwise
  /// identical either way (DESIGN.md §8); off only to benchmark the
  /// slot-by-slot path or to debug the engine itself.
  bool fast_forward = true;

  /// Hypercycle reservation planner (ROADMAP item 4, PROTOCOL.md §9):
  /// at connection admit/close time the engine lays the whole grant
  /// schedule out over the hyperperiod H = lcm(P_i) and, while the plan
  /// is in effect, skips the collection phase and arbitration for
  /// planned traffic -- falling back to slot-by-slot TCMA on any
  /// divergence (faults, churn, CBS, aperiodic sends).  Admission may
  /// then exceed the Eq. 6 U_max ceiling when the planner's exact
  /// feasibility simulation proves the layout meets every deadline.
  /// CCR-EDF only; other protocols ignore the flag.
  bool planner = false;
  /// Hyperperiod cap for the planner: connection sets whose lcm of
  /// periods exceeds this (or overflows) are simply never planned.
  std::int64_t planner_max_hyperperiod_slots = std::int64_t{1} << 16;

  /// Per-node transmit-buffer capacity in messages; 0 = unlimited.
  /// When full, new best-effort / non-real-time messages are tail-dropped
  /// (counted in NetworkStats); real-time releases are never dropped --
  /// admitted connections have bounded backlog by Eq. 5, so a sane cap
  /// cannot be exceeded by well-behaved sources.
  std::size_t max_queue_messages = 0;

  /// Feasibility test used by the admission controller; kDensity stays
  /// safe for connections with constrained deadlines D_i < P_i.
  core::AdmissionPolicy admission_policy =
      core::AdmissionPolicy::kUtilisation;

  /// Empty => CCR-EDF.
  ProtocolFactory protocol_factory;
};

}  // namespace ccredf::net
