// Aggregated measurements collected by the slot engine.
//
// Latencies and deadline accounting are kept per traffic class.  For
// real-time traffic two miss notions are tracked (paper §5): a
// *scheduling* miss (delivery after the EDF deadline t_deadline) and a
// *user-level* miss (delivery after t_maxdelay = t_deadline + t_latency,
// Eq. 3) -- the admission guarantee covers the latter.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "core/message.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ccredf::net {

/// Per-logical-real-time-connection accounting.
struct ConnectionStats {
  std::int64_t released = 0;
  std::int64_t delivered = 0;
  std::int64_t scheduling_misses = 0;
  std::int64_t user_misses = 0;
  sim::OnlineStats latency;  // arrival -> completion, ps
};

struct ClassStats {
  std::int64_t delivered = 0;
  std::int64_t scheduling_misses = 0;
  std::int64_t user_misses = 0;
  std::int64_t bytes = 0;
  sim::OnlineStats latency;  // arrival -> completion, ps

  [[nodiscard]] double scheduling_miss_ratio() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(scheduling_misses) /
                     static_cast<double>(delivered);
  }
  [[nodiscard]] double user_miss_ratio() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(user_misses) /
                                static_cast<double>(delivered);
  }
};

struct NetworkStats {
  std::int64_t slots = 0;
  /// Slots in which at least one transmission was granted.
  std::int64_t busy_slots = 0;
  std::int64_t total_grants = 0;
  /// Slots carrying two or more simultaneous transmissions (spatial reuse).
  std::int64_t reuse_slots = 0;
  /// Grants whose bound message had vanished by transmission time
  /// (connection torn down between arbitration and slot).
  std::int64_t wasted_grants = 0;
  /// Messages tail-dropped at a full transmit buffer (BE/NRT only; see
  /// NetworkConfig::max_queue_messages).
  std::int64_t buffer_drops = 0;
  /// Slots where the globally highest-priority requester was NOT granted
  /// -- the priority-inversion pathology of the simple clocking strategy;
  /// always zero for CCR-EDF.
  std::int64_t priority_inversions = 0;
  /// Clock hand-over hops distribution and gap durations.
  sim::OnlineStats handover_hops;
  sim::OnlineStats gap;  // ps
  /// Wall-clock accounting.
  sim::Duration time_in_slots = sim::Duration::zero();
  sim::Duration time_in_gaps = sim::Duration::zero();

  std::array<ClassStats, 3> per_class;  // indexed by TrafficClass
  std::unordered_map<ConnectionId, ConnectionStats> per_connection;

  [[nodiscard]] ClassStats& cls(core::TrafficClass c) {
    return per_class[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const ClassStats& cls(core::TrafficClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }

  /// Fraction of wall time spent inside slots (upper-bounds throughput;
  /// compare with Eq. 6's U_max).
  [[nodiscard]] double slot_time_fraction() const {
    const sim::Duration total = time_in_slots + time_in_gaps;
    return total == sim::Duration::zero() ? 0.0
                                          : time_in_slots.ratio(total);
  }

  /// Mean simultaneous transmissions per busy slot (>1 iff spatial reuse
  /// pays off; paper Fig. 2).
  [[nodiscard]] double mean_grants_per_busy_slot() const {
    return busy_slots == 0 ? 0.0
                           : static_cast<double>(total_grants) /
                                 static_cast<double>(busy_slots);
  }

  /// Delivered payload bits per second of simulated wall time.
  [[nodiscard]] double goodput_bps() const {
    const sim::Duration total = time_in_slots + time_in_gaps;
    if (total == sim::Duration::zero()) return 0.0;
    std::int64_t bytes = 0;
    for (const auto& c : per_class) bytes += c.bytes;
    return static_cast<double>(bytes) * 8.0 / total.s();
  }
};

}  // namespace ccredf::net
