// Aggregated measurements collected by the slot engine.
//
// Latencies and deadline accounting are kept per traffic class.  For
// real-time traffic two miss notions are tracked (paper §5): a
// *scheduling* miss (delivery after the EDF deadline t_deadline) and a
// *user-level* miss (delivery after t_maxdelay = t_deadline + t_latency,
// Eq. 3) -- the admission guarantee covers the latter.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ccredf::net {

/// Per-logical-connection accounting (hard-RT connections and CBS
/// servers share the map; `bytes` is what the fairness index compares).
struct ConnectionStats {
  std::int64_t released = 0;
  std::int64_t delivered = 0;
  std::int64_t scheduling_misses = 0;
  std::int64_t user_misses = 0;
  std::int64_t bytes = 0;
  sim::OnlineStats latency;  // arrival -> completion, ps
};

/// Constant-Bandwidth-Server accounting (zero unless servers are open).
struct CbsStats {
  /// Servers admitted over the run (open_cbs_server successes).
  std::int64_t servers_opened = 0;
  /// Jobs accepted into server queues (cbs_send minus drops).
  std::int64_t jobs = 0;
  /// Budget-exhaustion postponements across all servers (c = Q, d += T).
  std::int64_t postponements = 0;
};

struct ClassStats {
  std::int64_t delivered = 0;
  std::int64_t scheduling_misses = 0;
  std::int64_t user_misses = 0;
  std::int64_t bytes = 0;
  sim::OnlineStats latency;  // arrival -> completion, ps

  [[nodiscard]] double scheduling_miss_ratio() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(scheduling_misses) /
                     static_cast<double>(delivered);
  }
  [[nodiscard]] double user_miss_ratio() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(user_misses) /
                                static_cast<double>(delivered);
  }
};

/// Per-node fault containment accounting (fault experiments).  Indexed by
/// the node whose request record the fault struck (or that babbled).
struct NodeFaultCounters {
  std::int64_t requests_dropped = 0;    // record destroyed in transit
  std::int64_t requests_corrupted = 0;  // bit errors hit the record
  std::int64_t requests_rejected = 0;   // guards rejected -> treated idle
  std::int64_t spurious_requests = 0;   // babbling fabrications
  std::int64_t payloads_corrupted = 0;  // data packets sourced here that
                                        // were hit on the data fibres
};

/// Network-wide fault / detection / recovery accounting.  All zero unless
/// a FaultHook is attached -- the clean path never touches these.
struct FaultStats {
  /// Distribution packets destroyed whole (drop_distribution hook).
  std::int64_t token_losses = 0;
  /// Collection-packet request records destroyed in transit.
  std::int64_t collection_drops = 0;
  /// Request records hit by bit errors (detected + silent).
  std::int64_t collection_corruptions = 0;
  /// ... of which the frame-integrity guards rejected (record treated as
  /// idle; the requester retries next slot).
  std::int64_t collection_detected = 0;
  /// ... of which passed the guards and reached arbitration mutated.
  std::int64_t collection_silent = 0;
  /// Fabricated requests from babbling nodes.
  std::int64_t spurious_requests = 0;
  /// Distribution packets hit by bit errors (detected + grant-view +
  /// silent-master).
  std::int64_t distribution_corruptions = 0;
  /// ... of which receivers rejected outright (handled as token loss).
  std::int64_t distribution_detected = 0;
  /// Slots voided because receivers proved the grant view inconsistent
  /// (a grant bit on a known non-requester) -- re-arbitration instead of
  /// a clock break.
  std::int64_t rearbitration_slots = 0;
  /// Corruptions no receiver could detect: a grant bit landing on an
  /// ungranted requester (data-channel collision) or a mutated
  /// next-master index (clock break).  The hazard class the guards
  /// cannot remove, only shrink.
  std::int64_t silent_misarbitrations = 0;
  /// Token-loss recoveries performed (mirror of Network::recoveries()).
  std::int64_t recoveries = 0;
  /// Distribution of the recovery timeout gaps, ps.
  sim::OnlineStats recovery_gap;
  /// Exact per-value counts of the same gaps: the gap is a deterministic
  /// function of the configuration, so distinct values stay few and the
  /// p50/p99 sweep metrics (kRecoveryGapP50Us/P99Us) come out as exact
  /// sample values -- deterministic to the last bit, as the sweep's
  /// byte-equality gates require.
  sim::ExactQuantiles recovery_gap_quantiles;
  /// Token-loss windows during which EVERY node was failed: no live
  /// restarter exists, so the ring stays dark until a node is restored
  /// (no phantom recovery is counted for these).
  std::int64_t ring_dark = 0;

  // -- data channel (payload) axis ---------------------------------------
  /// Data packets whose payload was hit by bit errors on the data
  /// fibres (detected + undetected).
  std::int64_t payload_corruptions = 0;
  /// ... of which the payload CRC-32 caught at the receivers: the
  /// garbage is dropped before any inbox and the source is NACKed.
  std::int64_t payload_detected = 0;
  /// ... of which reached the application as garbage (no payload CRC,
  /// or the 2^-32 residual that forges a valid checksum).
  std::int64_t payload_undetected = 0;
  /// NACK bits that rode a distribution packet back to a source.
  std::int64_t payload_nacks = 0;
  /// Degraded-mode renegotiations: a health monitor changed the
  /// admission capacity factor (services::AdmissionAgent).
  std::int64_t admission_renegotiations = 0;

  // -- severed-segment (hard link cut) axis -------------------------------
  /// Hard link cuts applied (Network::cut_link transitions; splices are
  /// the complementary transition and are not separately counted).
  std::int64_t link_cuts = 0;
  /// Connections and CBS servers closed by a segment-down quarantine
  /// (services::ResilienceMonitor's third quarantine kind: the source is
  /// alive but the transfer's segment crosses a severed link).
  std::int64_t segment_quarantines = 0;
  /// Summed in-protocol detection latency, in slots: for every cut, the
  /// distance from the cut event to the first slot whose collection
  /// phase ran with the cut in effect (the slot whose truncated heard
  /// evidence classifies the loss pattern).
  std::int64_t cut_detect_slots = 0;

  /// Corruptions the receivers caught before acting on them.
  [[nodiscard]] std::int64_t detected() const {
    return collection_detected + distribution_detected +
           rearbitration_slots + payload_detected;
  }
  /// Corruptions that mutated behaviour without any receiver noticing.
  [[nodiscard]] std::int64_t silent() const {
    return collection_silent + silent_misarbitrations +
           payload_undetected;
  }
};

struct NetworkStats {
  std::int64_t slots = 0;
  /// Slots in which at least one transmission was granted.
  std::int64_t busy_slots = 0;
  std::int64_t total_grants = 0;
  /// Slots carrying two or more simultaneous transmissions (spatial reuse).
  std::int64_t reuse_slots = 0;
  /// Grants whose bound message had vanished by transmission time
  /// (connection torn down between arbitration and slot).
  std::int64_t wasted_grants = 0;
  /// Messages tail-dropped at a full transmit buffer (BE/NRT only; see
  /// NetworkConfig::max_queue_messages).
  std::int64_t buffer_drops = 0;
  /// Slots where the globally highest-priority requester was NOT granted
  /// -- the priority-inversion pathology of the simple clocking strategy;
  /// always zero for CCR-EDF.
  std::int64_t priority_inversions = 0;
  /// Clock hand-over hops distribution and gap durations.  Exact integer
  /// moments: the fast-forward path batches k idle slots into one
  /// add_n() call and must stay bitwise identical to k sequential adds
  /// (see ExactStats).
  sim::ExactStats handover_hops;
  sim::ExactStats gap;  // ps
  /// Wall-clock accounting.
  sim::Duration time_in_slots = sim::Duration::zero();
  sim::Duration time_in_gaps = sim::Duration::zero();

  /// Slots the engine fast-forwarded over (idle stretches computed
  /// arithmetically instead of simulated; NetworkConfig::fast_forward).
  /// Every skipped slot is also counted in `slots` -- the two paths
  /// produce identical aggregate statistics.
  std::int64_t ff_slots_skipped = 0;
  /// Number of contiguous fast-forward windows taken.
  std::int64_t ff_windows = 0;

  /// Hypercycle-planner accounting (NetworkConfig::planner; all zero
  /// when the planner is off or never engaged).  A slot's next-slot
  /// decision either GRANTS a planned bundle (planned_slots) or WAITS
  /// for the next bundle's release instant (plan_wait_slots, including
  /// wait stretches batched arithmetically) -- both counters identical
  /// between the plan-driven fast-forward and slot-by-slot paths.
  std::int64_t planned_slots = 0;
  std::int64_t plan_wait_slots = 0;
  /// Successful plan builds (admit/close-time relayouts).
  std::int64_t plan_builds = 0;
  /// Times an in-effect plan was abandoned for slot-by-slot TCMA
  /// (divergence: faults, churn, CBS, aperiodic traffic, queue drift).
  std::int64_t plan_divergences = 0;

  /// Per-node activity, parallel flat arrays sized to the node count at
  /// construction (SoA: a slot touches only the entries that changed).
  /// node_requests[j]: slots whose collection phase sampled a live
  /// request from node j; node_grants[j]: transmissions node j executed.
  std::vector<std::int64_t> node_requests;
  std::vector<std::int64_t> node_grants;

  std::array<ClassStats, 3> per_class;  // indexed by TrafficClass
  std::unordered_map<ConnectionId, ConnectionStats> per_connection;

  /// Fault / detection / recovery accounting (zero on clean runs).
  FaultStats faults;
  /// CBS accounting (zero when no servers are opened).
  CbsStats cbs;
  /// Per-node fault counters, sized to the node count at construction.
  std::vector<NodeFaultCounters> per_node_faults;

  [[nodiscard]] ClassStats& cls(core::TrafficClass c) {
    return per_class[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const ClassStats& cls(core::TrafficClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }

  /// Fraction of all slots the engine fast-forwarded over.
  [[nodiscard]] double fast_forward_ratio() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(ff_slots_skipped) /
                            static_cast<double>(slots);
  }

  /// Fraction of all slots whose decision granted a planned bundle.
  [[nodiscard]] double planned_slot_fraction() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(planned_slots) /
                            static_cast<double>(slots);
  }

  /// Slots in which node `j` had nothing sampled: the per-node idle
  /// accounting the fast-forward path advances arithmetically (a skipped
  /// slot increments `slots` and no node_requests entry).
  [[nodiscard]] std::int64_t node_idle_slots(NodeId j) const {
    return slots - node_requests[j];
  }

  /// Fraction of wall time spent inside slots (upper-bounds throughput;
  /// compare with Eq. 6's U_max).
  [[nodiscard]] double slot_time_fraction() const {
    const sim::Duration total = time_in_slots + time_in_gaps;
    return total == sim::Duration::zero() ? 0.0
                                          : time_in_slots.ratio(total);
  }

  /// Mean simultaneous transmissions per busy slot (>1 iff spatial reuse
  /// pays off; paper Fig. 2).
  [[nodiscard]] double mean_grants_per_busy_slot() const {
    return busy_slots == 0 ? 0.0
                           : static_cast<double>(total_grants) /
                                 static_cast<double>(busy_slots);
  }

  /// Delivered payload bits per second of simulated wall time.
  [[nodiscard]] double goodput_bps() const {
    const sim::Duration total = time_in_slots + time_in_gaps;
    if (total == sim::Duration::zero()) return 0.0;
    std::int64_t bytes = 0;
    for (const auto& c : per_class) bytes += c.bytes;
    return static_cast<double>(bytes) * 8.0 / total.s();
  }
};

}  // namespace ccredf::net
