// The slot-stepped network engine binding phy + ring + MAC + EDF.
//
// Per slot k (master m_k, start T_k, fixed data time t_slot):
//   1. fire queued events up to T_k (message releases, user actions);
//   2. execute the grants decided during slot k-1: move one slot of each
//      granted message; completed messages are delivered with timestamp
//      T_k + t_slot + propagation to the furthest destination;
//   3. collection phase: the control packet leaves the master and visits
//      node j at T_k + prop(m_k -> j) + j_passthroughs; each node's head
//      eligible message (arrival <= its sampling time) becomes its
//      request, with laxity mapped to the priority field;
//   4. the protocol plans slot k+1 (grants + next master m_{k+1});
//   5. the slot ends at T_k + t_slot; the clock hand-over gap to m_{k+1}
//      follows (Eq. 1), so T_{k+1} = T_k + t_slot + gap.
// This realises the paper's pipeline: arbitration for slot k+1 rides the
// control channel while slot k's data flows (Fig. 3).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/cbs.hpp"
#include "core/connection.hpp"
#include "core/control_timing.hpp"
#include "core/frames.hpp"
#include "core/hypercycle.hpp"
#include "core/message.hpp"
#include "core/priority.hpp"
#include "core/schedulability.hpp"
#include "net/config.hpp"
#include "net/node.hpp"
#include "net/protocol.hpp"
#include "net/stats.hpp"
#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ccredf::net {

/// Everything that happened in one slot, handed to observers at slot end.
/// The network reuses one record object across slots (its vectors keep
/// their capacity, so the steady-state slot path never allocates); copy
/// whatever must outlive the observer call.
struct SlotRecord {
  SlotIndex index = 0;
  sim::TimePoint start;
  sim::TimePoint end;
  sim::Duration gap_after = sim::Duration::zero();
  NodeId master = kInvalidNode;
  NodeId next_master = kInvalidNode;
  /// Requests sampled this slot (arbitrating slot k+1).
  std::vector<core::Request> requests;
  /// Nodes that transmitted during THIS slot.
  NodeSet granted;
  /// Messages whose final slot completed this slot.
  std::vector<core::Delivery> deliveries;
  /// Messages whose final slot completed this slot but whose payload
  /// failed the receivers' CRC-32 (NetworkConfig::with_payload_crc):
  /// the garbage was dropped before any inbox and the source will be
  /// NACKed in the NEXT slot's distribution packet.  Always empty on
  /// clean runs (no fault hook attached).
  std::vector<core::Delivery> corrupt_deliveries;
  /// When the network runs with the reliable-service ack field
  /// (NetworkConfig::with_acks), the per-source acknowledgement bits
  /// carried by this slot's distribution packet: sources whose transfer
  /// completed in the PREVIOUS slot (the receivers' acks ride the next
  /// control-channel round, paper ref [11]).
  NodeSet acks;
  /// Per-source NACK bits carried by this slot's distribution packet:
  /// sources whose transfer failed its payload CRC in the PREVIOUS slot
  /// (with_acks + with_payload_crc runs only).
  NodeSet nacks;
  /// True when this slot boundary suffered a token loss (fault runs).
  bool token_lost = false;
  /// On-wire heartbeat evidence: nodes whose request record -- a live
  /// request OR the idle record every healthy node writes as the
  /// collection packet passes (the start bit alone proves the writer) --
  /// validly reached the master this slot.  A record destroyed in
  /// transit or rejected by the integrity guards removes its node;
  /// fail-silent nodes never appear; and when the MASTER is failed at
  /// slot end the whole set is empty (the evidence died with its
  /// collector).  services::ResilienceMonitor's failure detection reads
  /// exactly this set -- no wire change.
  NodeSet heard;
};

/// Run-time fault injection hooks (see src/fault/ for implementations).
///
/// The engine calls a hook at each point where a physical fault can
/// strike a control frame.  A hook mutates the in-flight frame content
/// and reports WHAT HAPPENED; the engine models the receivers' reaction
/// (containment or hazard) and counts it in NetworkStats::faults.  Every
/// hook defaults to "no fault", so an implementation overrides only the
/// axes it injects.
class FaultHook {
 public:
  /// What befell one request record of the collection packet.
  enum class RequestFault {
    kNone,      ///< untouched
    kDropped,   ///< record destroyed in transit; master sees nothing
    kDetected,  ///< corrupted; the integrity guards rejected it
    kSilent,    ///< corrupted; passed the guards -- `rq` was mutated
    kSpurious,  ///< fabricated by a babbling node -- `rq` was filled in
  };
  /// What befell the distribution packet.
  enum class DistributionFault {
    kNone,
    kDetected,      ///< receivers reject the frame (=> token loss)
    kGrantView,     ///< grant/ack bits mutated; frame passes the guards
    kSilentMaster,  ///< hp-node index mutated undetectably
  };
  /// What befell the data payload of one completed transfer.
  enum class DataFault {
    kNone,      ///< untouched
    kDetected,  ///< corrupted; the receivers' payload CRC caught it
    kSilent,    ///< corrupted; reaches the application as garbage
  };

  virtual ~FaultHook() = default;
  /// Return true to destroy the distribution packet ending `slot`
  /// (token loss: no node learns the next master).
  virtual bool drop_distribution(SlotIndex) { return false; }
  /// Intercepts node `node`'s request record as the collection packet
  /// leaves it (`hop` links downstream of the master; hop 0 is the
  /// master itself).  May mutate `rq`; returns the classification.
  virtual RequestFault filter_request(SlotIndex, NodeId /*hop*/,
                                      NodeId /*node*/, core::Request&) {
    return RequestFault::kNone;
  }
  /// Intercepts the distribution packet ending `slot`.  May mutate `p`;
  /// returns the classification.
  virtual DistributionFault filter_distribution(SlotIndex,
                                                core::DistributionPacket&) {
    return DistributionFault::kNone;
  }
  /// Intercepts the payload of a transfer from `source` whose FINAL slot
  /// is `slot`: `payload_bits` bits rode the data fibres over `hops`
  /// consecutive links (source to furthest destination).  On kDetected
  /// the engine suppresses the delivery and NACKs the source; on kSilent
  /// it delivers the garbage and counts the hazard.
  virtual DataFault filter_data(SlotIndex, NodeId /*source*/,
                                NodeId /*hops*/,
                                std::int64_t /*payload_bits*/) {
    return DataFault::kNone;
  }

  /// Fast-forward probe: the first slot in [from, limit) in which this
  /// hook COULD fire a fault on an all-idle slot (no data transfers, no
  /// requesters), or `limit` if the whole range is provably quiet.  The
  /// engine only skips slots the probe clears, then simulates the flagged
  /// slot normally -- so a conservative answer costs speed, never
  /// correctness.  Because injector randomness is keyed per (slot,
  /// channel), probing MUST NOT perturb any stream the fault path draws
  /// from.  The default claims no slot is quiet, which disables
  /// fast-forward for hooks that do not implement the probe.
  [[nodiscard]] virtual SlotIndex first_idle_fault_slot(SlotIndex from,
                                                        SlotIndex /*limit*/) {
    return from;
  }
};

/// Protocol-level resilience hook (services::ResilienceMonitor).
///
/// Unlike a SlotObserver -- whose mere presence disables the idle
/// fast-forward -- a ResilienceHook is a first-class engine citizen: it
/// receives per-slot heartbeat evidence, is consulted for the first slot
/// it MUST see simulated (detection deadlines, re-admission drains), and
/// is batch-notified about skipped idle windows so its bookkeeping stays
/// byte-identical between the fast-forward and slot-by-slot engines.
class ResilienceHook {
 public:
  virtual ~ResilienceHook() = default;
  /// End-of-slot notification (after the observers).  `rec.heard`
  /// carries the heartbeat evidence; the hook may mutate the network
  /// (quarantine closes, staged re-opens) -- the slot is already over.
  virtual void on_slot_end(const SlotRecord& rec) = 0;
  /// `k` idle slots [first, first + k) were skipped; `heard` is the
  /// constant live set every one of them evidenced (fast-forward
  /// guarantees no event, fault or master death inside the window).
  virtual void on_fast_forward(SlotIndex first, std::int64_t k,
                               NodeSet heard) = 0;
  /// First slot in [from, limit] this hook must observe simulated, or
  /// `limit` when the whole range needs nothing.  The engine never
  /// fast-forwards across the returned slot.
  [[nodiscard]] virtual SlotIndex next_deadline_slot(SlotIndex from,
                                                     SlotIndex limit) = 0;
};

class Network {
 public:
  explicit Network(NetworkConfig cfg);

  // -- construction products --------------------------------------------
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }
  [[nodiscard]] const phy::RingPhy& phy() const { return *phy_; }
  [[nodiscard]] const ring::RingTopology& topology() const { return topo_; }
  [[nodiscard]] const core::SlotTiming& timing() const { return *timing_; }
  [[nodiscard]] const core::ControlTiming& control_timing() const {
    return *control_;
  }
  [[nodiscard]] const core::FrameCodec& codec() const { return *codec_; }
  [[nodiscard]] MacProtocol& protocol() { return *protocol_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const sim::Simulator& sim() const { return sim_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] core::AdmissionController& admission() { return admission_; }
  [[nodiscard]] const core::AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] NodeId nodes() const { return cfg_.nodes; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] NetworkStats& mutable_stats() { return stats_; }
  /// Per-connection accounting (empty record if never released).
  [[nodiscard]] const ConnectionStats& connection_stats(ConnectionId id) {
    return stats_.per_connection[id];
  }
  [[nodiscard]] sim::Duration slot_duration() const {
    return timing_->slot();
  }
  [[nodiscard]] NodeId current_master() const { return master_; }
  [[nodiscard]] SlotIndex current_slot() const { return slot_; }

  // -- user traffic -------------------------------------------------------
  /// Enqueues a message at `src` now.  `relative_deadline` is the EDF
  /// (scheduling) deadline; pass Duration::infinity() for none.
  MessageId send(NodeId src, NodeSet dests, core::TrafficClass cls,
                 std::int64_t size_slots, sim::Duration relative_deadline);

  MessageId send_best_effort(NodeId src, NodeSet dests,
                             std::int64_t size_slots,
                             sim::Duration relative_deadline);
  MessageId send_non_realtime(NodeId src, NodeSet dests,
                              std::int64_t size_slots);
  /// Broadcast = all nodes except the source.
  [[nodiscard]] NodeSet broadcast_dests(NodeId src) const;

  // -- logical real-time connections (admission-controlled) ---------------
  struct OpenResult {
    bool admitted = false;
    ConnectionId id = kNoConnection;
  };
  /// Runs the Eq. 5-6 admission test; on success, periodic releases are
  /// scheduled automatically (period/deadline in slots of wall time
  /// P_i * t_slot, matching the units of the analysis).
  OpenResult open_connection(const core::ConnectionParams& params);
  /// Stops releases and drops this connection's queued messages.
  bool close_connection(ConnectionId id);

  // -- constant-bandwidth servers (soft real-time service class) ----------
  /// Admits a CBS through the same Eq. 5-6 test as an RT connection
  /// (utilisation Q/T; core/cbs.hpp).  Jobs submitted with cbs_send then
  /// ride the best-effort priority band under the SERVER deadline, so
  /// the hard-RT grant order is never perturbed.
  OpenResult open_cbs_server(const core::CbsParams& params);
  /// Submits one aperiodic job of `size_slots` to server `id`; the CBS
  /// wake-up rule assigns its deadline.  Subject to the same source-
  /// failed / full-buffer drop rules as any best-effort send (a dropped
  /// job does not touch the server state).
  MessageId cbs_send(ConnectionId id, std::int64_t size_slots);
  /// Closes the server: drops its queued jobs, releases its bandwidth.
  bool close_cbs_server(ConnectionId id);
  /// The live server state machine, or nullptr when `id` is not open.
  [[nodiscard]] const core::CbsServer* cbs_server(ConnectionId id) const;

  // -- execution -----------------------------------------------------------
  void run_slots(std::int64_t n);
  void run_for(sim::Duration d);

  // -- instrumentation ------------------------------------------------------
  using SlotObserver = std::function<void(const SlotRecord&)>;
  void add_slot_observer(SlotObserver obs) {
    observers_.push_back(std::move(obs));
  }
  /// Attaching a fault hook diverges any in-effect hypercycle plan: the
  /// plan's precomputed outcomes no longer model the wire.
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    if (hook != nullptr) mark_plan_diverged();
  }
  /// Attaches the resilience hook (one at a time; nullptr detaches).
  /// Same divergence rule as the fault hook: a monitor may quarantine.
  void set_resilience_hook(ResilienceHook* hook) {
    resilience_ = hook;
    if (hook != nullptr) mark_plan_diverged();
  }
  [[nodiscard]] ResilienceHook* resilience_hook() const {
    return resilience_;
  }

  /// Fail-silent node (fault experiments); queued messages are dropped.
  /// Idempotent: failing an already-failed node is a no-op (no queue
  /// clearing, no trace, no CBS backlog reset) and returns false.
  bool fail_node(NodeId id);
  /// Idempotent: restoring a healthy node is a no-op, returns false.
  bool restore_node(NodeId id);

  /// Hard severed-segment fault: link `l` (node l to its downstream
  /// neighbour) carries nothing -- control, data or clock -- until
  /// spliced.  The collection packet dies at the severed hop, so the
  /// master's heard evidence truncates to the contiguous reachable
  /// prefix (a loss pattern distinguishable from a single node death),
  /// transfers whose segment crosses the cut are masked out of
  /// arbitration, and with a single cut the master re-anchors to the
  /// cut's downstream endpoint, where the clock-break link coincides
  /// with the severed link and every surviving node stays heard.  Two or
  /// more simultaneous cuts partition the ring: it parks dark (counted
  /// in FaultStats::ring_dark) until splices bring it back to <= 1.
  /// Idempotent: cutting a severed link is a no-op, returns false.
  bool cut_link(LinkId l);
  /// Repairs a severed link.  Idempotent: splicing an intact link is a
  /// no-op, returns false.
  bool splice_link(LinkId l);
  /// Currently severed links (empty on a healthy ring).
  [[nodiscard]] LinkSet severed_links() const { return severed_; }
  /// The master position degraded mode re-anchors to: the first live
  /// node downstream of the single severed link (its clock-break link
  /// is then the cut itself).  kInvalidNode when the ring is intact,
  /// dark (>= 2 cuts) or has no live node downstream of the cut.
  [[nodiscard]] NodeId degraded_anchor() const;

  /// Open hard-RT connections sourced at `src`, sorted by id.  The
  /// sorted order matters: quarantine (services::ResilienceMonitor)
  /// enumerates these to close them, and every downstream admission id
  /// depends on the order -- unordered_map iteration would leak
  /// nondeterminism into the byte-identical sweep reports.
  struct OpenConnectionInfo {
    ConnectionId id = kNoConnection;
    core::ConnectionParams params;
  };
  [[nodiscard]] std::vector<OpenConnectionInfo> connections_of(
      NodeId src) const;
  /// Open CBS servers sourced at `src`, sorted by id (same contract).
  struct OpenCbsInfo {
    ConnectionId id = kNoConnection;
    core::CbsParams params;
  };
  [[nodiscard]] std::vector<OpenCbsInfo> cbs_servers_of(NodeId src) const;

  /// Count of token-loss recoveries performed.
  [[nodiscard]] std::int64_t recoveries() const { return recoveries_; }
  /// Wall time lost to recovery timeouts.
  [[nodiscard]] sim::Duration recovery_time() const {
    return recovery_time_;
  }

  /// Nodes whose transmit queues are non-empty right now (dirty-node
  /// tracking; maintained incrementally at every queue mutation site).
  [[nodiscard]] NodeSet queued_nodes() const { return soa_.queued; }
  /// Nodes currently failed (mirror of the per-node flags as a mask).
  [[nodiscard]] NodeSet failed_nodes() const { return soa_.failed; }

  // -- hypercycle planner (NetworkConfig::planner) -------------------------
  /// True while a built plan covers the open connection set (it may
  /// have diverged; see plan_engaged).  Always false with planner off.
  [[nodiscard]] bool plan_valid() const { return plan_valid_; }
  /// True while the plan actually drives slot decisions: valid and not
  /// yet diverged to slot-by-slot TCMA.
  [[nodiscard]] bool plan_engaged() const {
    return plan_valid_ && !plan_diverged_;
  }
  /// The planner instance (nullptr when NetworkConfig::planner is off).
  [[nodiscard]] const core::HypercyclePlanner* planner() const {
    return planner_.get();
  }

 private:
  /// Struct-of-arrays hot state: everything the per-slot pipeline reads
  /// or writes for "which nodes matter this slot" lives in parallel flat
  /// arrays indexed by node, guarded by bitmask sets -- so the steady
  /// state touches O(active nodes), not O(N), and the fast-forward
  /// predicate is a handful of mask tests.
  struct SoaState {
    /// Nodes with at least one queued message (candidates for the
    /// collection phase; kept in sync at every queue mutation).
    NodeSet queued;
    /// Nodes in fail-silent state (mirror of Node::failed()).
    NodeSet failed;
    /// Nodes with a live request->message binding from the last
    /// collection phase (replaces an array of optionals: clearing all
    /// bindings is one mask store).
    NodeSet bound;
    // Parallel binding arrays, valid where `bound` has the bit set.
    // bind_msg doubles as a geometry memo across slots: message ids are
    // never reused and a message's destination set is immutable, so
    // while a head message waits for its grant (bind_msg unchanged) the
    // segment computation is skipped and hops/links/dests are reused.
    std::array<MessageId, kMaxNodes> bind_msg{};
    std::array<NodeId, kMaxNodes> bind_hops{};  // to furthest destination
    std::array<LinkSet, kMaxNodes> bind_links{};
    std::array<NodeSet, kMaxNodes> bind_dests{};
    /// Connection of the bound message (kNoConnection for plain sends);
    /// lets the grant path find the owning CBS server without a queue
    /// lookup.
    std::array<ConnectionId, kMaxNodes> bind_conn{};
  };
  struct ReleaseState {
    core::ConnectionParams params;
    sim::TimePoint base;  // time of release 0
    sim::EventId next_event = 0;
    std::int64_t released = 0;
    bool open = true;
  };
  /// A live CBS: the pure core::CbsServer plus the engine-side backlog
  /// tracking that feeds the wake-up rule.
  struct CbsState {
    core::CbsServer server;
    std::int64_t backlog = 0;  // jobs queued or in service at the source
    std::int64_t sent = 0;     // accepted jobs (release_index numbering)
  };

  void step_slot();
  void execute_grants(SlotRecord& rec, sim::TimePoint slot_end);
  void collect_requests(std::vector<core::Request>& reqs);
  /// Skips up to `max_slots` provably idle slots in O(1) (plus O(live
  /// nodes) of keyed fault probes per slot when a hook is armed);
  /// returns the number skipped (0 = the next slot must be simulated).
  std::int64_t try_fast_forward(std::int64_t max_slots);
  /// Plan-driven engine: while the plan is engaged and nobody observes
  /// per-slot artefacts, busy planned slots run on a lean path (no
  /// collection phase, no SlotRecord bookkeeping) and wait stretches
  /// advance arithmetically; returns the number of slots processed.
  /// Statistics stay byte-identical to step_slot's planned branch.
  std::int64_t try_plan_forward(std::int64_t max_slots);
  /// Lean phase-1 clone of execute_grants for try_plan_forward: no
  /// fault hook, no CBS, no SlotRecord -- all provably absent or unread
  /// while the plan is engaged and unobserved.
  void execute_plan_grants(sim::TimePoint slot_end);
  /// Consults the plan cursor for the decision phase of the current
  /// slot (start slot_start_, master master_): on an eligible bundle it
  /// writes the soa_ bindings, advances the cursor and returns the
  /// bundle's grants; otherwise the idle wait decision.  A pending-
  /// queue mismatch marks divergence and returns the idle decision.
  SlotPlan plan_next_from_cursor();
  /// Release instant of the bundle the cursor points at (the earliest
  /// slot start that can grant it).
  [[nodiscard]] sim::TimePoint plan_next_eligible_time() const;
  /// Re-derives the plan from the open connection set (admit/close
  /// time).  The plan only builds from a clean engine state: CCR-EDF,
  /// no hooks, no CBS, no failed nodes, no in-flight grants or queued
  /// messages, and every connection still unreleased and grid-aligned;
  /// otherwise the engine stays on slot-by-slot TCMA.
  void rebuild_plan();
  /// Whether a rejected admission may be retried through the planner's
  /// constructive feasibility proof.
  [[nodiscard]] bool can_plan_admit() const;
  /// Sticky divergence: the plan stays valid but stops driving slots
  /// until the next successful rebuild.  Release generation falls back
  /// to the event heap (plan_restore_releases) in the same breath.
  void mark_plan_diverged() {
    if (plan_valid_ && !plan_diverged_) {
      plan_diverged_ = true;
      ++stats_.plan_divergences;
      plan_restore_releases();
    }
  }
  /// Divergence-exact completion bookkeeping: a planned message must
  /// complete in plan order (front of its connection's pending queue).
  void plan_note_completion(ConnectionId conn, MessageId id) {
    const std::int32_t pi = planner_->planned_index(conn);
    if (pi < 0 || plan_pending_[static_cast<std::size_t>(pi)].empty() ||
        plan_pending_[static_cast<std::size_t>(pi)].front() != id) {
      mark_plan_diverged();
    } else {
      plan_pending_[static_cast<std::size_t>(pi)].pop_front();
    }
  }
  /// Notifies the dirty-node tracking that `src`'s queue may have
  /// drained (after a consume/drop/clear).
  void refresh_queued_bit(NodeId src);
  void release_message(ConnectionId id);
  /// Releases connection `st`'s next periodic message (shared by the
  /// event path and the plan-driven release table).
  void fire_release(ConnectionId id, ReleaseState& st);
  /// Plan adoption: cancels every connection's self-rescheduling release
  /// event and replaces it with the precomputed cyclic release table --
  /// the plan knows the whole periodic schedule, so the per-message heap
  /// round trip (schedule + sift + pop + callback dispatch) vanishes
  /// from the planned hot path.
  void plan_adopt_releases();
  /// Fires everything the release table owes up to now, then hands each
  /// open connection back to its event (divergence / plan teardown).
  void plan_restore_releases();
  /// Fires every table release due at or before `upto`, in grid order.
  void plan_release_due(sim::TimePoint upto) {
    if (!plan_releases_.empty()) plan_release_due_slow(upto);
  }
  void plan_release_due_slow(sim::TimePoint upto);
  /// Grid instant of the table cursor's next candidate (infinity when
  /// the table is inactive); bounds the idle fast-forward exactly like
  /// a pending release event would.
  [[nodiscard]] sim::TimePoint plan_next_release_time() const;
  /// Charges one granted data slot to the CBS server owning the message
  /// bound at node `g` (no-op for non-CBS traffic); on budget exhaustion
  /// the server postpones and its queued backlog is re-keyed.
  void charge_cbs(NodeId g, bool completed);
  MessageId enqueue(NodeId src, NodeSet dests, core::TrafficClass cls,
                    std::int64_t size_slots, sim::TimePoint deadline,
                    ConnectionId conn, std::int64_t release_index,
                    sim::TimePoint arrival);
  [[nodiscard]] core::Priority priority_of(const core::Message& m,
                                           sim::TimePoint sample) const;
  /// Hot-path accessor for stats_.per_connection[id]: connection ids are
  /// dense (admission hands them out sequentially from 1) and map nodes
  /// are pointer-stable and never erased, so a flat pointer cache turns
  /// the twice-per-message hash lookup into an array index.
  [[nodiscard]] ConnectionStats& conn_stats_slot(ConnectionId id) {
    if (id < conn_stats_cache_.size() && conn_stats_cache_[id] != nullptr) {
      return *conn_stats_cache_[id];
    }
    ConnectionStats& slot = stats_.per_connection[id];
    if (id < kMaxCachedConnections) {
      if (id >= conn_stats_cache_.size()) {
        conn_stats_cache_.resize(id + 1, nullptr);
      }
      conn_stats_cache_[id] = &slot;
    }
    return slot;
  }

  NetworkConfig cfg_;
  std::unique_ptr<phy::RingPhy> phy_;
  ring::RingTopology topo_;
  std::unique_ptr<core::SlotTiming> timing_;
  std::unique_ptr<core::ControlTiming> control_;
  std::unique_ptr<core::FrameCodec> codec_;
  std::unique_ptr<core::LaxityMapper> mapper_;
  std::unique_ptr<MacProtocol> protocol_;
  core::AdmissionController admission_;
  sim::Simulator sim_;
  sim::Trace trace_;
  std::vector<Node> nodes_;
  std::vector<SlotObserver> observers_;
  FaultHook* fault_hook_ = nullptr;
  ResilienceHook* resilience_ = nullptr;

  // Severed-segment state (empty/false on a healthy ring).
  LinkSet severed_;
  /// A cut landed and no collection phase has run under it yet: the
  /// next simulated slot's collection classifies the loss pattern and
  /// books the in-protocol detection latency.
  bool cut_detect_pending_ = false;
  SlotIndex cut_detect_from_ = 0;

  // Slot-engine state.
  SlotIndex slot_ = 0;
  sim::TimePoint slot_start_;
  NodeId master_ = 0;
  SoaState soa_;
  NodeSet current_granted_;
  /// Nodes whose entry in rec_.requests is live this slot; clearing the
  /// reused request vector touches only these entries next slot.
  NodeSet requesters_;
  /// Per-slot scratch, reused so steady-state slots stay allocation-free.
  SlotRecord rec_;
  /// Precomputed collection sampling offsets, flat [master * N + node]
  /// (kills the per-node path_delay recomputation the profile blamed for
  /// ~15% of slot time), plus each master's last-sample offset.
  std::vector<sim::Duration> sample_off_;
  std::array<sim::Duration, kMaxNodes> last_sample_off_{};

  // Hypercycle-planner state (null/false unless NetworkConfig::planner).
  std::unique_ptr<core::HypercyclePlanner> planner_;
  bool plan_valid_ = false;
  bool plan_diverged_ = false;
  /// Cursor over the plan: next transient bundle, then position within
  /// the cyclic window and the occurrence count.
  std::size_t plan_prefix_pos_ = 0;
  std::size_t plan_cycle_pos_ = 0;
  std::int64_t plan_cycle_no_ = 0;
  /// Per planned connection (dense planner index): released message ids
  /// not yet fully delivered, in release order.  The cursor binds the
  /// front; execute_grants pops it on completion (plan order is FIFO
  /// per connection by construction).
  std::vector<std::deque<MessageId>> plan_pending_;
  /// One cyclic-release-table entry: connection `conn` releases a
  /// message at grid slots first_abs, first_abs + H, first_abs + 2H, ...
  /// (rel = first_abs mod H keys the sorted table; visits of the entry
  /// at abs < first_abs are start-up transients and fire nothing).
  struct PlanRelease {
    std::int64_t rel = 0;
    std::int64_t first_abs = 0;
    ConnectionId conn = kNoConnection;
    ReleaseState* st = nullptr;  // node-stable unordered_map entry
  };
  /// The plan-driven release schedule for one hypercycle, sorted by rel
  /// (non-empty exactly while release events are suppressed).  Bounded:
  /// adoption skips (keeping the events) when sum H/P_i exceeds
  /// kMaxPlanReleaseEntries, so a pathological grid cannot balloon it.
  static constexpr std::size_t kMaxPlanReleaseEntries = std::size_t{1} << 20;
  std::vector<PlanRelease> plan_releases_;
  std::size_t plan_release_idx_ = 0;
  std::int64_t plan_release_cycle_ = 0;

  std::unordered_map<ConnectionId, ReleaseState> releases_;
  /// Open constant-bandwidth servers (empty on RT-only runs: every CBS
  /// hook in the slot path is gated on `!cbs_.empty()`).
  std::unordered_map<ConnectionId, CbsState> cbs_;
  /// Flat id -> &per_connection[id] cache (see conn_stats_slot); bounded
  /// so a pathological id (never produced by admission) cannot balloon it.
  static constexpr ConnectionId kMaxCachedConnections = 1u << 20;
  std::vector<ConnectionStats*> conn_stats_cache_;
  /// Sources whose transfers completed last slot (ack bits for the next
  /// distribution packet when with_acks is enabled).
  NodeSet pending_acks_;
  /// Sources whose transfers failed the payload CRC last slot (NACK bits
  /// for the next distribution packet; with_acks + with_payload_crc).
  NodeSet pending_nacks_;
  MessageId next_message_id_ = 1;
  NetworkStats stats_;
  std::int64_t recoveries_ = 0;
  sim::Duration recovery_time_ = sim::Duration::zero();
};

}  // namespace ccredf::net
