// One station on the ring: user-facing queues, inbox and counters.
//
// The Node is deliberately passive -- the slot engine samples its queues
// during the collection phase and pushes deliveries into its inbox; user
// code enqueues messages through Network's send_* API and drains the
// inbox (or registers a callback).
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/edf_queue.hpp"
#include "core/message.hpp"

namespace ccredf::net {

class Node {
 public:
  using DeliveryCallback = std::function<void(const core::Delivery&)>;

  explicit Node(NodeId id) : id_(id) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] core::EdfQueueSet& queues() { return queues_; }
  [[nodiscard]] const core::EdfQueueSet& queues() const { return queues_; }

  /// Messages delivered to this node, in completion order.
  [[nodiscard]] const std::vector<core::Delivery>& inbox() const {
    return inbox_;
  }
  void clear_inbox() { inbox_.clear(); }

  /// Inbox recording toggle (NetworkConfig::record_inboxes); callbacks
  /// and statistics are unaffected.
  void set_inbox_recording(bool on) { record_inbox_ = on; }
  [[nodiscard]] bool inbox_recording() const { return record_inbox_; }

  /// Invoked (in addition to inbox recording) on every delivery.
  void set_delivery_callback(DeliveryCallback cb) {
    on_delivery_ = std::move(cb);
  }

  void deliver(const core::Delivery& d) {
    if (record_inbox_) inbox_.push_back(d);
    if (on_delivery_) on_delivery_(d);
  }

  /// Fail-silent state (fault experiments): a failed node neither
  /// requests slots nor accepts deliveries; its ribbon is optically
  /// bypassed so the ring stays closed.
  [[nodiscard]] bool failed() const { return failed_; }
  void set_failed(bool f) { failed_ = f; }

 private:
  NodeId id_;
  core::EdfQueueSet queues_;
  std::vector<core::Delivery> inbox_;
  DeliveryCallback on_delivery_;
  bool record_inbox_ = true;
  bool failed_ = false;
};

}  // namespace ccredf::net
