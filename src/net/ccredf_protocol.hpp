// The CCR-EDF protocol: global EDF arbitration + priority-driven clock
// hand-over (the paper's contribution, §2-3).
#pragma once

#include "core/arbitration.hpp"
#include "core/clocking.hpp"
#include "net/protocol.hpp"
#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"

namespace ccredf::net {

class CcrEdfProtocol final : public MacProtocol {
 public:
  CcrEdfProtocol(const phy::RingPhy* phy, ring::RingTopology topo,
                 bool spatial_reuse)
      : arbiter_(topo, spatial_reuse), handover_(phy) {}

  [[nodiscard]] const char* name() const override { return "CCR-EDF"; }

  [[nodiscard]] SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex /*slot*/) override {
    const core::ArbitrationResult r =
        arbiter_.arbitrate(requests, current_master);
    return SlotPlan{r.next_master, r.packet.granted};
  }

  /// Arbitration only touches the requesting nodes, so the engine's
  /// dirty-requester mask lets the arbiter skip the idle majority.
  [[nodiscard]] SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex /*slot*/, NodeSet requesters) override {
    const core::ArbitrationResult r =
        arbiter_.arbitrate(requests, current_master, requesters);
    return SlotPlan{r.next_master, r.packet.granted};
  }

  [[nodiscard]] sim::Duration gap(NodeId from, NodeId to) const override {
    return handover_.gap(from, to);
  }

  [[nodiscard]] sim::Duration max_gap() const override {
    return handover_.max_gap();
  }

  /// §3: with zero requesters arbitration returns the current master and
  /// an empty grant set -- the idle slot is a fixed point.
  [[nodiscard]] bool idle_keeps_master() const override { return true; }

  /// The hypercycle planner lays out exactly this protocol's EDF +
  /// spatial-reuse arbitration over the known periodic future.
  [[nodiscard]] bool supports_planning() const override { return true; }

  [[nodiscard]] const core::Arbiter& arbiter() const { return arbiter_; }

 private:
  core::Arbiter arbiter_;
  core::HandoverModel handover_;
};

}  // namespace ccredf::net
