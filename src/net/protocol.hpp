// Pluggable medium-access protocol interface.
//
// The slot engine (net::Network) is protocol-agnostic: each slot it
// collects one Request per node and asks the protocol to plan the next
// slot (grants + next master).  CCR-EDF, the baseline CC-FPR and static
// TDMA all implement this interface, so every experiment compares them on
// an identical substrate.
#pragma once

#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/frames.hpp"
#include "sim/time.hpp"

namespace ccredf::net {

struct SlotPlan {
  /// Master (clock generator) of the next slot.
  NodeId next_master = kInvalidNode;
  /// Nodes granted a transmission in the next slot.
  NodeSet granted;
};

class MacProtocol {
 public:
  virtual ~MacProtocol() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Plans the next slot from the requests collected during the current
  /// one.  `requests` has exactly one entry per node (priority 0 = idle).
  [[nodiscard]] virtual SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex slot) = 0;

  /// Hot-path variant the slot engine calls: `requesters` is a superset
  /// of the nodes whose request has wants_slot() set (every node outside
  /// it is guaranteed idle).  Protocols that sort or scan requests may
  /// restrict their work to the set; the default ignores the hint and
  /// delegates, so the two overloads are interchangeable by contract.
  [[nodiscard]] virtual SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex slot, NodeSet /*requesters*/) {
    return plan_next_slot(requests, current_master, slot);
  }

  /// Clock hand-over gap between a slot mastered by `from` and the next
  /// mastered by `to`.
  [[nodiscard]] virtual sim::Duration gap(NodeId from, NodeId to) const = 0;

  /// Worst-case gap (enters Eq. 4 and Eq. 6 for this protocol).
  [[nodiscard]] virtual sim::Duration max_gap() const = 0;

  /// True iff an all-idle slot is a fixed point of this protocol:
  /// plan_next_slot() on N idle requests grants nobody and keeps the
  /// current master, for every slot index.  CCR-EDF qualifies (the
  /// master keeps clocking when nobody requests, §3); CC-FPR and TDMA
  /// rotate the clock every slot regardless of load, so they do not.
  /// The engine only fast-forwards idle stretches when this holds --
  /// otherwise the master (and with it every gap) changes slot to slot.
  [[nodiscard]] virtual bool idle_keeps_master() const { return false; }

  /// True iff the hypercycle planner may stand in for this protocol's
  /// arbitration: a planned bundle must be exactly what plan_next_slot
  /// would have granted had every planned job requested (EDF order,
  /// spatial-reuse packing, master = highest-priority source, idle keeps
  /// master).  Only CCR-EDF satisfies this; CC-FPR's fixed-priority
  /// clocking and TDMA's rotation do not, so they stay slot-by-slot.
  [[nodiscard]] virtual bool supports_planning() const { return false; }
};

}  // namespace ccredf::net
