// Pluggable medium-access protocol interface.
//
// The slot engine (net::Network) is protocol-agnostic: each slot it
// collects one Request per node and asks the protocol to plan the next
// slot (grants + next master).  CCR-EDF, the baseline CC-FPR and static
// TDMA all implement this interface, so every experiment compares them on
// an identical substrate.
#pragma once

#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/frames.hpp"
#include "sim/time.hpp"

namespace ccredf::net {

struct SlotPlan {
  /// Master (clock generator) of the next slot.
  NodeId next_master = kInvalidNode;
  /// Nodes granted a transmission in the next slot.
  NodeSet granted;
};

class MacProtocol {
 public:
  virtual ~MacProtocol() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Plans the next slot from the requests collected during the current
  /// one.  `requests` has exactly one entry per node (priority 0 = idle).
  [[nodiscard]] virtual SlotPlan plan_next_slot(
      const std::vector<core::Request>& requests, NodeId current_master,
      SlotIndex slot) = 0;

  /// Clock hand-over gap between a slot mastered by `from` and the next
  /// mastered by `to`.
  [[nodiscard]] virtual sim::Duration gap(NodeId from, NodeId to) const = 0;

  /// Worst-case gap (enters Eq. 4 and Eq. 6 for this protocol).
  [[nodiscard]] virtual sim::Duration max_gap() const = 0;
};

}  // namespace ccredf::net
