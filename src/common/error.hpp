// Error handling policy (C++ Core Guidelines E.*):
//  - configuration mistakes (bad topology, illegal parameters) throw
//    ConfigError at setup time;
//  - protocol invariant violations detected at run time throw
//    ProtocolError -- these indicate a bug, not a recoverable condition;
//  - hot-path checks use CCREDF_ASSERT, compiled out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace ccredf {

/// Invalid user-supplied configuration (caught at construction time).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// A protocol invariant was violated; indicates an internal bug.
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace ccredf

/// Always-on precondition check for configuration/API boundaries.
#define CCREDF_EXPECT(cond, msg)                  \
  do {                                            \
    if (!(cond)) throw ::ccredf::ConfigError(msg); \
  } while (false)

/// Debug-only internal invariant check (hot paths).  Define
/// CCREDF_FORCE_ASSERTS to keep the checks in optimised builds (the test
/// suite does).
#if defined(NDEBUG) && !defined(CCREDF_FORCE_ASSERTS)
#define CCREDF_ASSERT(cond) ((void)0)
#else
#define CCREDF_ASSERT(cond)                                       \
  do {                                                            \
    if (!(cond))                                                  \
      ::ccredf::detail::assert_fail(#cond, __FILE__, __LINE__);   \
  } while (false)
#endif
