// Bit-mask sets of nodes and links.
//
// The TCMA collection-phase request carries two N-bit mask fields per node
// (paper Fig. 4): the *link reservation field* (which ring links the
// transmission needs) and the *destination field* (which nodes must receive
// the packet -- one bit for unicast, several for multicast, all for
// broadcast).  Both are represented as 64-bit masks.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ccredf {

/// A set of node (or link) indices in [0, kMaxNodes), stored as a bit mask.
class NodeSet {
 public:
  constexpr NodeSet() = default;

  /// Constructs from a raw mask (low bit = node 0).
  static constexpr NodeSet from_mask(std::uint64_t mask) {
    NodeSet s;
    s.bits_ = mask;
    return s;
  }

  /// The singleton set {id}.
  static NodeSet single(NodeId id) {
    CCREDF_EXPECT(id < kMaxNodes, "NodeSet: index out of range");
    return from_mask(std::uint64_t{1} << id);
  }

  /// The full set {0, 1, ..., n-1}.
  static NodeSet first_n(NodeId n) {
    CCREDF_EXPECT(n <= kMaxNodes, "NodeSet: size out of range");
    if (n == 64) return from_mask(~std::uint64_t{0});
    return from_mask((std::uint64_t{1} << n) - 1);
  }

  [[nodiscard]] constexpr bool contains(NodeId id) const {
    return id < kMaxNodes && ((bits_ >> id) & 1u) != 0;
  }

  constexpr void insert(NodeId id) { bits_ |= std::uint64_t{1} << id; }
  constexpr void erase(NodeId id) { bits_ &= ~(std::uint64_t{1} << id); }

  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr int size() const { return std::popcount(bits_); }
  [[nodiscard]] constexpr std::uint64_t mask() const { return bits_; }

  [[nodiscard]] constexpr bool intersects(NodeSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  [[nodiscard]] constexpr bool is_subset_of(NodeSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  [[nodiscard]] constexpr NodeSet operator|(NodeSet o) const {
    return from_mask(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr NodeSet operator&(NodeSet o) const {
    return from_mask(bits_ & o.bits_);
  }
  [[nodiscard]] constexpr NodeSet operator~() const {
    return from_mask(~bits_);
  }
  constexpr NodeSet& operator|=(NodeSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr NodeSet& operator&=(NodeSet o) {
    bits_ &= o.bits_;
    return *this;
  }
  constexpr bool operator==(const NodeSet&) const = default;

  /// Lowest-index member, or kInvalidNode when empty.
  [[nodiscard]] constexpr NodeId lowest() const {
    return empty() ? kInvalidNode
                   : static_cast<NodeId>(std::countr_zero(bits_));
  }
  /// Highest-index member, or kInvalidNode when empty.
  [[nodiscard]] constexpr NodeId highest() const {
    return empty() ? kInvalidNode
                   : static_cast<NodeId>(63 - std::countl_zero(bits_));
  }

  /// Iteration over members in increasing index order.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t rest) : rest_(rest) {}
    constexpr NodeId operator*() const {
      return static_cast<NodeId>(std::countr_zero(rest_));
    }
    constexpr iterator& operator++() {
      rest_ &= rest_ - 1;  // clear lowest set bit
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const {
      return rest_ != o.rest_;
    }

   private:
    std::uint64_t rest_;
  };
  [[nodiscard]] constexpr iterator begin() const { return iterator{bits_}; }
  [[nodiscard]] constexpr iterator end() const { return iterator{0}; }

 private:
  std::uint64_t bits_ = 0;
};

/// Links are indexed like nodes (link i leaves node i); the reservation
/// field is the same shape of mask.
using LinkSet = NodeSet;

}  // namespace ccredf
