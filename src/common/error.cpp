#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace ccredf::detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ccredf assertion failed: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace ccredf::detail
