// Fundamental identifier types shared by every CCR-EDF subsystem.
//
// The network is a unidirectional ring of N nodes (paper §2).  Node i's
// outgoing fibre-ribbon link is link i, connecting node i to node
// (i + 1) mod N.  All identifier types are kept as plain integers for
// arithmetic convenience; `NodeSet` / `LinkSet` (nodeset.hpp) provide the
// bit-mask fields used in the control-channel packets (paper Fig. 4).
#pragma once

#include <cstdint>
#include <limits>

namespace ccredf {

/// Index of a node on the ring, 0-based, clockwise in transmission order.
using NodeId = std::uint32_t;

/// Index of a unidirectional link: link `i` runs from node `i` to node
/// `(i + 1) % N`.
using LinkId = std::uint32_t;

/// Monotonic index of a time slot since simulation start.
using SlotIndex = std::int64_t;

/// Unique identifier of one message (one request unit queued at a node).
using MessageId = std::uint64_t;

/// Identifier of a logical real-time connection (paper §6).
using ConnectionId = std::uint32_t;

/// The bit-mask fields in the control packets are modelled with 64-bit
/// masks; the paper targets LANs/SANs where "the number of nodes ... is
/// relatively small" (§1), so 64 nodes is ample headroom.
inline constexpr NodeId kMaxNodes = 64;

/// Sentinel for "no node" (e.g. no master elected yet).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no connection" (best-effort / non-real-time messages).
inline constexpr ConnectionId kNoConnection =
    std::numeric_limits<ConnectionId>::max();

}  // namespace ccredf
