// Simulated-time arithmetic.
//
// All protocol timing in the paper reduces to products of propagation
// constant, fibre length and bit time (Eq. 1-2), so time is represented
// exactly as a 64-bit count of picoseconds: at 1 ps resolution a signed
// 64-bit tick counter covers ~106 days of simulated time, far beyond any
// experiment, with no floating-point drift between equal slots.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace ccredf::sim {

/// A span of simulated time (may be negative in intermediate arithmetic).
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration picoseconds(std::int64_t v) { return Duration{v}; }
  static constexpr Duration nanoseconds(std::int64_t v) {
    return Duration{v * 1'000};
  }
  static constexpr Duration microseconds(std::int64_t v) {
    return Duration{v * 1'000'000};
  }
  static constexpr Duration milliseconds(std::int64_t v) {
    return Duration{v * 1'000'000'000};
  }
  static constexpr Duration seconds(std::int64_t v) {
    return Duration{v * 1'000'000'000'000};
  }
  static constexpr Duration zero() { return Duration{0}; }
  /// Larger than any duration arising in practice; used as "never".
  static constexpr Duration infinity() {
    return Duration{std::int64_t{1} << 62};
  }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const {
    return static_cast<double>(ps_) / 1e3;
  }
  [[nodiscard]] constexpr double us() const {
    return static_cast<double>(ps_) / 1e6;
  }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(ps_) / 1e9;
  }
  [[nodiscard]] constexpr double s() const {
    return static_cast<double>(ps_) / 1e12;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration{ps_ + o.ps_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{ps_ - o.ps_};
  }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration{ps_ * k};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{ps_ / k};
  }
  /// Integer ratio of two durations, rounding down.
  constexpr std::int64_t operator/(Duration o) const { return ps_ / o.ps_; }
  /// Remainder of integer division.
  constexpr Duration operator%(Duration o) const {
    return Duration{ps_ % o.ps_};
  }
  constexpr Duration& operator+=(Duration o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr Duration operator-() const { return Duration{-ps_}; }

  /// Ratio as a real number (for utilisation computations, Eq. 5-6).
  [[nodiscard]] constexpr double ratio(Duration denom) const {
    return static_cast<double>(ps_) / static_cast<double>(denom.ps_);
  }

 private:
  constexpr explicit Duration(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An absolute instant on the simulated clock (ps since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint at(Duration since_origin) {
    return TimePoint{since_origin.ps()};
  }
  /// Later than every reachable instant; used as "never".
  static constexpr TimePoint infinity() {
    return TimePoint{std::int64_t{1} << 62};
  }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr Duration since_origin() const {
    return Duration::picoseconds(ps_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ps_ + d.ps()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ps_ - d.ps()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::picoseconds(ps_ - o.ps_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ps_ += d.ps();
    return *this;
  }

 private:
  constexpr explicit TimePoint(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) {
  return Duration::picoseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace ccredf::sim
