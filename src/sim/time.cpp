#include "sim/time.hpp"

#include <cstdlib>
#include <ostream>

namespace ccredf::sim {

std::ostream& operator<<(std::ostream& os, Duration d) {
  const std::int64_t ps = d.ps();
  const std::int64_t a = std::llabs(ps);
  if (a < 10'000) return os << ps << "ps";
  if (a < 10'000'000) return os << d.ns() << "ns";
  if (a < 10'000'000'000) return os << d.us() << "us";
  if (a < 10'000'000'000'000) return os << d.ms() << "ms";
  return os << d.s() << "s";
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t+" << t.since_origin();
}

}  // namespace ccredf::sim
