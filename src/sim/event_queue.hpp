// Discrete-event core: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in scheduling order (a strictly
// increasing sequence number breaks ties), which keeps simulations
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace ccredf::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`; returns a handle for cancel().
  EventId schedule(TimePoint at, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled.  Cancellation is lazy (O(1)); the slot is skipped on pop.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; infinity when empty.  Non-const
  /// because it eagerly discards lazily-cancelled heap entries.
  [[nodiscard]] TimePoint next_time();

  /// Pops and returns the earliest event (time + callback).  Precondition:
  /// !empty().
  struct Fired {
    TimePoint time;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    EventId id;
    // Ordered as a max-heap by std::priority_queue, so invert.
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  struct Pending {
    Callback fn;
    bool cancelled = false;
  };

  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, Pending> pending_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace ccredf::sim
