// Discrete-event core: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in scheduling order (a strictly
// increasing sequence number breaks ties), which keeps simulations
// deterministic regardless of heap internals.
//
// Storage is allocation-free in steady state: callbacks live in a slab of
// reusable slots (recycled through a free list), the heap is a flat binary
// heap of {time, seq, slot} entries, and small closures are stored inline
// (sim/callback.hpp).  Cancellation is O(1) and frees the slot
// immediately -- the orphaned heap entry is recognised by its stale
// sequence number and skipped on pop.  Slab/heap/free-list capacity is
// retained across use, so a simulation that schedules and fires events at
// a steady rate performs zero heap allocations per event after warm-up.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace ccredf::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedules `fn` at absolute time `at`; returns a handle for cancel().
  EventId schedule(TimePoint at, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled.  O(1): the slab slot is recycled immediately and the
  /// orphaned heap entry is skipped when it surfaces.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; infinity when empty.  Non-const
  /// because it eagerly discards stale (cancelled) heap entries.  Inline:
  /// the slot engine polls this several times per slot and the common
  /// case (fresh head, no event due) is two loads and a compare.
  [[nodiscard]] TimePoint next_time() {
    drop_stale_heads();
    return heap_.empty() ? TimePoint::infinity() : heap_.front().time;
  }

  /// Pops and returns the earliest event (time + callback).  Precondition:
  /// !empty().
  struct Fired {
    TimePoint time;
    Callback fn;
  };
  Fired pop();

  /// Reserves slab/heap capacity for `n` simultaneously pending events.
  void reserve(std::size_t n);

  /// Number of slab slots ever allocated (capacity diagnostics; slots are
  /// recycled, so this plateaus at the peak number of pending events).
  [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }

 private:
  // An EventId packs {generation, slot index} so stale handles (slot
  // recycled since) are rejected by cancel() in O(1).
  static constexpr std::uint32_t kIndexBits = 32;
  static EventId make_id(std::uint32_t gen, std::uint32_t index) {
    return (static_cast<EventId>(gen) << kIndexBits) | index;
  }
  static std::uint32_t id_index(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id >> kIndexBits);
  }

  struct Slot {
    Callback fn;
    std::uint64_t seq = 0;   // of the current occupant; 0 = vacant
    std::uint32_t gen = 0;   // bumped each time the slot is vacated
  };
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;

    [[nodiscard]] bool before(const HeapEntry& o) const {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  [[nodiscard]] bool stale(const HeapEntry& e) const {
    return slots_[e.slot].seq != e.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(HeapEntry e);
  void heap_pop_top();
  // Stale heads are rare (only cancellation creates them), so the loop
  // body almost never runs -- worth inlining into next_time()/pop().
  void drop_stale_heads() {
    while (!heap_.empty() && stale(heap_.front())) heap_pop_top();
  }
  void free_slot(std::uint32_t index);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;   // recycled slab indices (LIFO)
  std::vector<HeapEntry> heap_;       // flat binary min-heap
  std::uint64_t next_seq_ = 1;        // 0 marks a vacant slot
  std::size_t live_ = 0;
};

}  // namespace ccredf::sim
