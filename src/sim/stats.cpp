#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ccredf::sim {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double ExactStats::variance() const {
  if (n_ <= 1) return 0.0;
  // n*sumsq - sum^2 is exact in 128-bit arithmetic; one final division.
  const int128 num =
      static_cast<int128>(n_) * sumsq_ -
      static_cast<int128>(sum_) * static_cast<int128>(sum_);
  return static_cast<double>(num) /
         (static_cast<double>(n_) * static_cast<double>(n_ - 1));
}

double ExactStats::stddev() const { return std::sqrt(variance()); }

void ExactStats::merge(const ExactStats& other) {
  if (other.n_ == 0) return;
  n_ += other.n_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void ExactQuantiles::add(std::int64_t v, std::int64_t count) {
  if (count <= 0) return;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const std::pair<std::int64_t, std::int64_t>& e, std::int64_t x) {
        return e.first < x;
      });
  if (it != entries_.end() && it->first == v) {
    it->second += count;
  } else {
    entries_.insert(it, {v, count});
  }
  total_ += count;
}

std::int64_t ExactQuantiles::quantile(double q) const {
  CCREDF_EXPECT(q >= 0.0 && q <= 1.0, "ExactQuantiles: q out of [0, 1]");
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  auto rank = static_cast<std::int64_t>(target);
  if (static_cast<double>(rank) < target) ++rank;  // ceil
  if (rank < 1) rank = 1;
  std::int64_t cum = 0;
  for (const auto& [v, c] : entries_) {
    cum += c;
    if (cum >= rank) return v;
  }
  return entries_.back().first;
}

void ExactQuantiles::merge(const ExactQuantiles& other) {
  for (const auto& [v, c] : other.entries_) add(v, c);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  CCREDF_EXPECT(hi > lo, "Histogram: hi must exceed lo");
  CCREDF_EXPECT(bins > 0, "Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
  if (samples_valid_) {
    if (samples_.size() < kSampleCap) {
      samples_.push_back(x);
      samples_sorted_ = false;
    } else {
      samples_valid_ = false;
      samples_.clear();
      samples_.shrink_to_fit();
    }
  }
}

std::int64_t Histogram::bin_count(std::size_t bin) const {
  CCREDF_EXPECT(bin < counts_.size(), "Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::quantile(double q) const {
  CCREDF_EXPECT(q >= 0.0 && q <= 1.0, "Histogram: quantile out of [0,1]");
  if (total_ == 0) return 0.0;
  if (samples_valid_) {
    if (!samples_sorted_) {
      std::sort(samples_.begin(), samples_.end());
      samples_sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }
  // Binned fallback: walk the CDF, report the bin midpoint.
  const auto target = static_cast<std::int64_t>(
      q * static_cast<double>(total_ - 1));
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum > target) return (bin_lo(b) + bin_hi(b)) / 2.0;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::int64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) * static_cast<double>(width) /
        static_cast<double>(peak));
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << " "
       << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace ccredf::sim
