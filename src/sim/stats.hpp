// Online statistics used by the experiment harness.
//
// OnlineStats: numerically stable running mean/variance/min/max (Welford).
// Histogram:  fixed-width bins with exact-sample quantile support for
//             moderate sample counts (keeps raw samples up to a cap, then
//             falls back to binned quantiles).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace ccredf::sim {

class OnlineStats {
 public:
  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.ps())); }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Interprets the accumulated values as picosecond durations.
  [[nodiscard]] Duration mean_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(mean()));
  }
  [[nodiscard]] Duration max_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(max()));
  }
  [[nodiscard]] Duration min_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(min()));
  }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class Histogram {
 public:
  /// `bins` equal-width bins spanning [lo, hi); out-of-range samples are
  /// counted in saturating edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.ps())); }

  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] std::int64_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// q in [0,1]; exact while <= sample cap, binned (midpoint) afterwards.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering for reports.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  // Raw samples retained for exact quantiles on small runs.
  static constexpr std::size_t kSampleCap = 1u << 16;
  mutable std::vector<double> samples_;
  mutable bool samples_sorted_ = false;
  bool samples_valid_ = true;
};

/// Simple named monotonic counter (protocol event counts).
class Counter {
 public:
  void inc(std::int64_t by = 1) { value_ += by; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace ccredf::sim
