// Online statistics used by the experiment harness.
//
// OnlineStats: numerically stable running mean/variance/min/max (Welford).
// Histogram:  fixed-width bins with exact-sample quantile support for
//             moderate sample counts (keeps raw samples up to a cap, then
//             falls back to binned quantiles).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace ccredf::sim {

class OnlineStats {
 public:
  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.ps())); }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Interprets the accumulated values as picosecond durations.
  [[nodiscard]] Duration mean_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(mean()));
  }
  [[nodiscard]] Duration max_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(max()));
  }
  [[nodiscard]] Duration min_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(min()));
  }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact integer-moment accumulator for integer-valued samples (slot
/// gaps in ps, hand-over hop counts, ...).
///
/// Unlike OnlineStats (Welford, floating point), every moment is kept in
/// integer arithmetic: count and sum in int64, the sum of squares in a
/// 128-bit integer.  Integer addition is associative, so
///     add_n(x, k)  ==  k consecutive add(x)
/// holds BITWISE for every derived statistic -- the property the slot
/// engine's fast-forward path relies on to advance k identical idle
/// slots in O(1) while staying byte-identical to slot-by-slot execution
/// (tests/sim/exact_stats_test.cpp pins it).
///
/// Capacity: |sum| stays exact while count * |x| < 2^63 -- a 10^9-slot
/// soak of ~10^6 ps gaps uses 10^15, three orders of magnitude of
/// headroom; sumsq has 2^127 to work with.
class ExactStats {
 public:
  // GCC/Clang extension; silenced for -Wpedantic builds.  128 bits keep
  // the sum of squares exact for any realistic run length.
  __extension__ using int128 = __int128;

  void add(std::int64_t x) { add_n(x, 1); }
  void add(Duration d) { add_n(d.ps(), 1); }

  /// Adds `k` samples of the identical value `x` in O(1).
  void add_n(std::int64_t x, std::int64_t k) {
    if (k <= 0) return;
    n_ += k;
    sum_ += x * k;
    sumsq_ += static_cast<int128>(x) * x * k;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  /// Exact integer sum; the double view keeps the legacy OnlineStats
  /// read API (exact while |sum| < 2^53, far beyond every current use).
  [[nodiscard]] std::int64_t sum_exact() const { return sum_; }
  [[nodiscard]] double sum() const { return static_cast<double>(sum_); }
  [[nodiscard]] double mean() const {
    return n_ > 0 ? static_cast<double>(sum_) / static_cast<double>(n_)
                  : 0.0;
  }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const {
    return n_ > 0 ? static_cast<double>(min_) : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? static_cast<double>(max_) : 0.0;
  }

  /// Interprets the accumulated values as picosecond durations.
  [[nodiscard]] Duration mean_duration() const {
    return Duration::picoseconds(static_cast<std::int64_t>(mean()));
  }
  [[nodiscard]] Duration max_duration() const {
    return n_ > 0 ? Duration::picoseconds(max_) : Duration::zero();
  }
  [[nodiscard]] Duration min_duration() const {
    return n_ > 0 ? Duration::picoseconds(min_) : Duration::zero();
  }

  /// Merges another accumulator (parallel reduction); exact, so the
  /// merge order cannot change any derived statistic.
  void merge(const ExactStats& other);

 private:
  std::int64_t n_ = 0;
  std::int64_t sum_ = 0;
  int128 sumsq_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

/// Exact quantiles over integer-valued samples with FEW distinct values
/// (recovery gaps: each gap is a deterministic function of the network
/// configuration, so even a soak of millions of token losses produces a
/// handful of distinct values).  Keeps a sorted (value, count) vector --
/// integer arithmetic only, so every quantile is an exact sample value
/// and a pure function of the sample multiset: no accumulation-order or
/// float-rounding sensitivity, which the sweep's byte-determinism gates
/// rely on when p50/p99 are exported as per-point metrics.
class ExactQuantiles {
 public:
  void add(std::int64_t v, std::int64_t count = 1);
  void add(Duration d) { add(d.ps()); }

  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] std::size_t distinct() const { return entries_.size(); }
  /// Nearest-rank quantile (the smallest sample value whose cumulative
  /// count reaches ceil(q * count)); q in [0, 1]; 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// Merges another accumulator (parallel reduction); exact, so the
  /// merge order cannot change any quantile.
  void merge(const ExactQuantiles& other);

 private:
  std::vector<std::pair<std::int64_t, std::int64_t>> entries_;  // sorted
  std::int64_t total_ = 0;
};

class Histogram {
 public:
  /// `bins` equal-width bins spanning [lo, hi); out-of-range samples are
  /// counted in saturating edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.ps())); }

  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] std::int64_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// q in [0,1]; exact while <= sample cap, binned (midpoint) afterwards.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering for reports.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  // Raw samples retained for exact quantiles on small runs.
  static constexpr std::size_t kSampleCap = 1u << 16;
  mutable std::vector<double> samples_;
  mutable bool samples_sorted_ = false;
  bool samples_valid_ = true;
};

/// Simple named monotonic counter (protocol event counts).
class Counter {
 public:
  void inc(std::int64_t by = 1) { value_ += by; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace ccredf::sim
