#include "sim/trace.hpp"

#include <ostream>

namespace ccredf::sim {

namespace {
const char* category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSlot:
      return "slot";
    case TraceCategory::kArbitration:
      return "arb";
    case TraceCategory::kData:
      return "data";
    case TraceCategory::kService:
      return "svc";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kAdmission:
      return "adm";
  }
  return "?";
}
}  // namespace

void Trace::emit_record(TimePoint t, TraceCategory c, std::string text) {
  if (stream_ != nullptr) {
    *stream_ << t << " [" << category_name(c) << "] " << text << "\n";
  }
  if (capture_) {
    records_.push_back(TraceRecord{t, c, std::move(text)});
  }
}

}  // namespace ccredf::sim
