#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace ccredf::sim {

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  pending_.emplace(id, Pending{std::move(fn), false});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.cancelled) return false;
  it->second.cancelled = true;
  --live_;
  return true;
}

TimePoint EventQueue::next_time() {
  while (!heap_.empty()) {
    auto it = pending_.find(heap_.top().id);
    if (it != pending_.end() && !it->second.cancelled)
      return heap_.top().time;
    if (it != pending_.end()) pending_.erase(it);
    heap_.pop();
  }
  return TimePoint::infinity();
}

EventQueue::Fired EventQueue::pop() {
  CCREDF_EXPECT(live_ > 0, "EventQueue::pop on empty queue");
  for (;;) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = pending_.find(top.id);
    const bool cancelled = (it == pending_.end()) || it->second.cancelled;
    Fired fired{top.time, cancelled ? Callback{} : std::move(it->second.fn)};
    if (it != pending_.end()) pending_.erase(it);
    if (!cancelled) {
      --live_;
      return fired;
    }
  }
}

}  // namespace ccredf::sim
