#include "sim/event_queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace ccredf::sim {

void EventQueue::reserve(std::size_t n) {
  slots_.reserve(n);
  free_.reserve(n);
  heap_.reserve(n);
}

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    CCREDF_EXPECT(slots_.size() < (std::uint64_t{1} << kIndexBits),
                  "EventQueue: slab index space exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.seq = next_seq_++;
  heap_push(HeapEntry{at, slot.seq, index});
  ++live_;
  return make_id(slot.gen, index);
}

void EventQueue::free_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.seq = 0;
  ++slot.gen;  // invalidates outstanding EventIds for this slot
  free_.push_back(index);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t index = id_index(id);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.seq == 0 || slot.gen != id_gen(id)) return false;
  free_slot(index);
  --live_;
  return true;
}

EventQueue::Fired EventQueue::pop() {
  CCREDF_EXPECT(live_ > 0, "EventQueue::pop on empty queue");
  drop_stale_heads();
  const HeapEntry top = heap_.front();
  heap_pop_top();
  Fired fired{top.time, std::move(slots_[top.slot].fn)};
  free_slot(top.slot);
  --live_;
  return fired;
}

// ---- flat binary min-heap over (time, seq) ------------------------------

void EventQueue::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!e.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
    if (!heap_[child].before(e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventQueue::heap_push(HeapEntry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void EventQueue::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

}  // namespace ccredf::sim
