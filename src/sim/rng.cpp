#include "sim/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace ccredf::sim {

std::uint64_t Rng::splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Seed expansion via splitmix64, per the xoshiro authors' recommendation;
  // guards against the all-zero state.
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  CCREDF_EXPECT(bound > 0, "Rng::uniform_u64: bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CCREDF_EXPECT(lo <= hi, "Rng::uniform_int: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  CCREDF_EXPECT(mean > 0.0, "Rng::exponential: mean must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

Duration Rng::exponential(Duration mean) {
  const double ps = exponential(static_cast<double>(mean.ps()));
  return Duration::picoseconds(static_cast<std::int64_t>(ps));
}

double Rng::normal(double mu, double sigma) {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_u64(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::stream_seed(std::uint64_t base, std::uint64_t a,
                               std::uint64_t b) {
  // Each word passes through the full splitmix64 finaliser before the next
  // is absorbed, so streams that differ in a single bit of (base, a, b)
  // decorrelate completely.  Distinct odd multipliers keep (a, b) and
  // (b, a) from colliding.
  std::uint64_t x = base;
  std::uint64_t h = splitmix64(x);
  x ^= a * 0xA24BAED4963EE407ull;
  h ^= splitmix64(x);
  x ^= b * 0x9FB21C651E98DF25ull;
  h ^= splitmix64(x);
  return h;
}

}  // namespace ccredf::sim
