// The discrete-event simulator driving all experiments.
//
// The protocol engines (net::Network and the MAC drivers) advance the clock
// slot by slot; workload generators and timeouts are events on this queue.
// Network::run_*() interleaves the two: before each slot boundary it fires
// every event with timestamp <= that boundary.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ccredf::sim {

class Simulator {
 public:
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` after `delay` from now.
  EventId schedule_in(Duration delay, EventQueue::Callback fn) {
    CCREDF_EXPECT(delay >= Duration::zero(),
                  "Simulator: cannot schedule into the past");
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (must not precede now()).
  EventId schedule_at(TimePoint at, EventQueue::Callback fn) {
    CCREDF_EXPECT(at >= now_, "Simulator: cannot schedule into the past");
    return queue_.schedule(at, std::move(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs all events with time <= horizon, advancing now() to each event
  /// time; finally sets now() = horizon.  Returns the number of events run.
  /// The slot engine calls this at every intra-slot phase boundary and
  /// usually nothing is due, so that case stays inline (one heap peek).
  std::size_t run_until(TimePoint horizon) {
    if (queue_.next_time() > horizon) {
      if (horizon > now_) now_ = horizon;
      return 0;
    }
    return run_until_slow(horizon);
  }

  /// Runs every pending event; returns the number run.
  std::size_t run_all();

  /// Advances the clock with no event processing (used by the slot engine
  /// for intra-slot phases; callers must have drained earlier events).
  void advance_to(TimePoint t) {
    CCREDF_EXPECT(t >= now_, "Simulator: clock cannot move backwards");
    now_ = t;
  }

  [[nodiscard]] bool idle() { return queue_.empty(); }
  [[nodiscard]] TimePoint next_event_time() { return queue_.next_time(); }

  /// Cumulative number of events fired since construction (throughput
  /// accounting for the bench harness).
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

 private:
  std::size_t run_until_slow(TimePoint horizon);

  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t events_fired_ = 0;
};

}  // namespace ccredf::sim
