// Small-buffer-optimised move-only callable for simulator events.
//
// Event callbacks are overwhelmingly tiny closures -- a pointer and an id
// ("[this, id] { release_message(id); }") -- yet std::function gives no
// portable guarantee that they stay off the heap, and the old event queue
// paid one std::function per scheduled event.  InlineCallback stores any
// callable of up to kInlineSize bytes (and suitable alignment) directly in
// the slab slot; larger closures fall back to a single heap cell.  The
// steady-state slot path therefore schedules and fires events without
// touching the allocator.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ccredf::sim {

class InlineCallback {
 public:
  /// Inline capacity: comfortably fits a pointer + two 64-bit ids.  Kept
  /// deliberately small so event-queue slab slots stay cache-friendly.
  static constexpr std::size_t kInlineSize = 40;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(std::move(o)); }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(std::move(o));
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Const like std::function::operator(): the held callable may still
  /// mutate its own captures.
  void operator()() const { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held callable (if any), returning to the empty state.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True iff a callable of type F is stored in the inline buffer.
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  // Manual vtable: one static instance per callable type keeps the object
  // two words beyond the buffer with no RTTI or virtual dispatch.
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*destroy)(unsigned char*);
    void (*relocate)(unsigned char* dst, unsigned char* src);
  };

  template <typename F>
  static constexpr Ops inline_ops = {
      [](unsigned char* b) { (*std::launder(reinterpret_cast<F*>(b)))(); },
      [](unsigned char* b) { std::launder(reinterpret_cast<F*>(b))->~F(); },
      [](unsigned char* dst, unsigned char* src) {
        F* s = std::launder(reinterpret_cast<F*>(src));
        ::new (static_cast<void*>(dst)) F(std::move(*s));
        s->~F();
      }};

  template <typename F>
  static constexpr Ops heap_ops = {
      [](unsigned char* b) {
        (**std::launder(reinterpret_cast<F**>(b)))();
      },
      [](unsigned char* b) {
        delete *std::launder(reinterpret_cast<F**>(b));
      },
      [](unsigned char* dst, unsigned char* src) {
        // The slot holds a plain F*; stealing it is a pointer copy.
        ::new (static_cast<void*>(dst))
            F*(*std::launder(reinterpret_cast<F**>(src)));
      }};

  void move_from(InlineCallback&& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) mutable unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ccredf::sim
