// Deterministic pseudo-random number generation.
//
// Every stochastic experiment takes an explicit 64-bit seed so that runs
// are exactly reproducible.  The generator is xoshiro256** (Blackman &
// Vigna), which is fast, has 256 bits of state and passes BigCrush; the
// standard <random> engines are avoided because their distributions are
// not reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace ccredf::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound), bias-free (rejection sampling).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Exponentially distributed duration with the given mean.
  Duration exponential(Duration mean);

  /// Normally distributed value (Box-Muller, one value per call).
  double normal(double mu, double sigma);

  /// Uniformly random index permutation of size n (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for per-node streams).
  Rng fork();

  /// A generator for substream (a, b) of `base` (see stream_seed).
  static Rng stream(std::uint64_t base, std::uint64_t a, std::uint64_t b) {
    return Rng(stream_seed(base, a, b));
  }

  /// SplitMix-style counter-based stream derivation: maps (base, a, b) to
  /// a seed whose generators are statistically independent across distinct
  /// (a, b) pairs.  Unlike fork(), derivation is stateless, so parallel
  /// workers can key their streams on (grid-point index, repetition)
  /// without any shared generator -- the foundation of the sweep runner's
  /// thread-count-independent determinism.
  static std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a,
                                   std::uint64_t b);

 private:
  static std::uint64_t splitmix64(std::uint64_t& x);
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ccredf::sim
