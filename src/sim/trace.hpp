// Structured trace log for protocol debugging and the experiment harness.
//
// Tracing is category-filtered and zero-cost when a category is disabled
// (the message lambda is never evaluated).  Records can be kept in memory
// (tests assert on them) and/or streamed to an ostream.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ccredf::sim {

enum class TraceCategory : unsigned {
  kSlot = 1u << 0,       // slot boundaries, master identity, gaps
  kArbitration = 1u << 1,  // requests, sort results, grants
  kData = 1u << 2,       // data-packet movement
  kService = 1u << 3,    // barrier / reduction / reliable-transfer events
  kFault = 1u << 4,      // injected faults and recovery actions
  kAdmission = 1u << 5,  // connection admission decisions
};

struct TraceRecord {
  TimePoint time;
  TraceCategory category;
  std::string text;
};

class Trace {
 public:
  Trace() = default;

  void enable(TraceCategory c) { mask_ |= static_cast<unsigned>(c); }
  void disable(TraceCategory c) { mask_ &= ~static_cast<unsigned>(c); }
  void enable_all() { mask_ = ~0u; }
  void disable_all() { mask_ = 0; }
  [[nodiscard]] bool enabled(TraceCategory c) const {
    return (mask_ & static_cast<unsigned>(c)) != 0;
  }

  /// Keep records in memory (default off).
  void set_capture(bool on) { capture_ = on; }
  /// Also stream formatted records to `os` (nullptr to disable).
  void set_stream(std::ostream* os) { stream_ = os; }

  /// Emits a record if the category is enabled; `make_text` is only
  /// invoked when needed.  Template (not std::function): with the
  /// category disabled the call compiles to a mask test -- no closure is
  /// materialised, keeping the slot hot path allocation-free.
  template <typename MakeText>
  void emit(TimePoint t, TraceCategory c, const MakeText& make_text) {
    if (!enabled(c)) return;
    emit_record(t, c, make_text());
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  void emit_record(TimePoint t, TraceCategory c, std::string text);

  unsigned mask_ = 0;
  bool capture_ = false;
  std::ostream* stream_ = nullptr;
  std::vector<TraceRecord> records_;
};

}  // namespace ccredf::sim
