#include "sim/simulator.hpp"

namespace ccredf::sim {

std::size_t Simulator::run_until_slow(TimePoint horizon) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  events_fired_ += fired;
  if (horizon > now_) now_ = horizon;
  return fired;
}

std::size_t Simulator::run_all() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  events_fired_ += fired;
  return fired;
}

}  // namespace ccredf::sim
