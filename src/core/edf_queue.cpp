#include "core/edf_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ccredf::core {

namespace {
bool edf_before(const Message& a, const Message& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}
}  // namespace

void EdfQueueSet::insert_edf(std::deque<Message>& q, Message msg) {
  const auto pos =
      std::upper_bound(q.begin(), q.end(), msg, edf_before);
  q.insert(pos, std::move(msg));
}

void EdfQueueSet::push(Message msg) {
  CCREDF_EXPECT(msg.remaining_slots >= 1 && msg.size_slots >= 1,
                "EdfQueueSet: message must need at least one slot");
  switch (msg.traffic_class) {
    case TrafficClass::kRealTime:
      insert_edf(rt_, std::move(msg));
      break;
    case TrafficClass::kBestEffort:
      insert_edf(be_, std::move(msg));
      break;
    case TrafficClass::kNonRealTime:
      nrt_.push_back(std::move(msg));  // FIFO
      break;
  }
}

const Message* EdfQueueSet::first_eligible(const std::deque<Message>& q,
                                           sim::TimePoint sample) {
  for (const Message& m : q) {
    if (m.arrival <= sample) return &m;
  }
  return nullptr;
}

const Message* EdfQueueSet::head(sim::TimePoint sample) const {
  // Class precedence (paper §3): RT strictly before BE before NRT, even if
  // a queued BE message has a tighter deadline.
  if (const Message* m = first_eligible(rt_, sample)) return m;
  if (const Message* m = first_eligible(be_, sample)) return m;
  if (const Message* m = first_eligible(nrt_, sample)) return m;
  return nullptr;
}

std::optional<Message> EdfQueueSet::consume_in(std::deque<Message>& q,
                                               MessageId id) {
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->id != id) continue;
    if (--it->remaining_slots > 0) return std::nullopt;
    Message done = std::move(*it);
    q.erase(it);
    return done;
  }
  throw ProtocolError("EdfQueueSet: consume_slot for unknown message");
}

bool EdfQueueSet::contains(MessageId id) const {
  for (const auto* q : {&rt_, &be_, &nrt_}) {
    for (const Message& m : *q) {
      if (m.id == id) return true;
    }
  }
  return false;
}

std::optional<Message> EdfQueueSet::consume_slot(MessageId id) {
  for (auto* q : {&rt_, &be_, &nrt_}) {
    for (const Message& m : *q) {
      if (m.id == id) return consume_in(*q, id);
    }
  }
  throw ProtocolError("EdfQueueSet: consume_slot for unknown message");
}

std::size_t EdfQueueSet::drop_connection(ConnectionId id) {
  std::size_t dropped = 0;
  for (auto* q : {&rt_, &be_, &nrt_}) {
    const auto before = q->size();
    std::erase_if(*q, [id](const Message& m) { return m.connection == id; });
    dropped += before - q->size();
  }
  return dropped;
}

std::size_t EdfQueueSet::clear() {
  const std::size_t n = size();
  rt_.clear();
  be_.clear();
  nrt_.clear();
  return n;
}

std::size_t EdfQueueSet::size_of(TrafficClass c) const {
  switch (c) {
    case TrafficClass::kRealTime:
      return rt_.size();
    case TrafficClass::kBestEffort:
      return be_.size();
    case TrafficClass::kNonRealTime:
      return nrt_.size();
  }
  return 0;
}

std::optional<sim::TimePoint> EdfQueueSet::earliest_rt_deadline() const {
  if (rt_.empty()) return std::nullopt;
  return rt_.front().deadline;
}

}  // namespace ccredf::core
