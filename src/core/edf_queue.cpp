#include "core/edf_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ccredf::core {

namespace {
bool edf_before(const Message& a, const Message& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}
}  // namespace

std::vector<Message>& EdfQueueSet::queue_of(TrafficClass c) {
  switch (c) {
    case TrafficClass::kRealTime:
      return rt_;
    case TrafficClass::kBestEffort:
      return be_;
    case TrafficClass::kNonRealTime:
      return nrt_;
  }
  return nrt_;
}

void EdfQueueSet::insert_edf(std::vector<Message>& q, Message msg) {
  const auto pos = std::upper_bound(q.begin(), q.end(), msg, edf_before);
  q.insert(pos, std::move(msg));
}

void EdfQueueSet::push(Message msg) {
  CCREDF_EXPECT(msg.remaining_slots >= 1 && msg.size_slots >= 1,
                "EdfQueueSet: message must need at least one slot");
  index_.insert(msg.id,
                IndexEntry{msg.traffic_class, msg.deadline, msg.arrival});
  if (msg.traffic_class == TrafficClass::kNonRealTime) {
    nrt_.push_back(std::move(msg));  // FIFO
  } else {
    insert_edf(queue_of(msg.traffic_class), std::move(msg));
  }
  ++version_;
}

const Message* EdfQueueSet::first_eligible_scan(const std::vector<Message>& q,
                                                HeadCache& cache,
                                                sim::TimePoint sample) const {
  cache.version = version_;
  cache.sample = sample;
  cache.index = kNoHead;
  cache.min_skipped_arrival = sim::TimePoint::infinity();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].arrival <= sample) {
      cache.index = i;
      return &q[i];
    }
    cache.min_skipped_arrival =
        std::min(cache.min_skipped_arrival, q[i].arrival);
  }
  return nullptr;
}

std::size_t EdfQueueSet::locate_sorted(const std::vector<Message>& q,
                                       const IndexEntry& entry,
                                       MessageId id) const {
  Message probe;
  probe.id = id;
  probe.deadline = entry.deadline;
  probe.arrival = entry.arrival;
  const auto it = std::lower_bound(q.begin(), q.end(), probe, edf_before);
  CCREDF_ASSERT(it != q.end() && it->id == id);
  return static_cast<std::size_t>(it - q.begin());
}

std::optional<Message> EdfQueueSet::consume_at(std::vector<Message>& q,
                                               std::size_t pos) {
  Message& m = q[pos];
  if (--m.remaining_slots > 0) return std::nullopt;
  Message done = std::move(m);
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(done.id);
  ++version_;
  return done;
}

std::optional<Message> EdfQueueSet::consume_slot(MessageId id) {
  const IndexEntry* entry = index_.find(id);
  if (entry == nullptr) {
    throw ProtocolError("EdfQueueSet: consume_slot for unknown message");
  }
  std::vector<Message>& q = queue_of(entry->cls);
  if (entry->cls == TrafficClass::kNonRealTime) {
    // FIFO queue: the consumed message is almost always the front.
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].id == id) return consume_at(q, i);
    }
    throw ProtocolError("EdfQueueSet: consume_slot for unknown message");
  }
  return consume_at(q, locate_sorted(q, *entry, id));
}

std::size_t EdfQueueSet::drop_connection_in(std::vector<Message>& q,
                                            ConnectionId id) {
  std::size_t write = 0;
  for (std::size_t read = 0; read < q.size(); ++read) {
    if (q[read].connection == id) {
      index_.erase(q[read].id);
    } else {
      if (write != read) q[write] = std::move(q[read]);
      ++write;
    }
  }
  const std::size_t dropped = q.size() - write;
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(write), q.end());
  return dropped;
}

std::size_t EdfQueueSet::drop_connection(ConnectionId id) {
  std::size_t dropped = 0;
  for (auto* q : {&rt_, &be_, &nrt_}) {
    dropped += drop_connection_in(*q, id);
  }
  if (dropped > 0) ++version_;
  return dropped;
}

std::size_t EdfQueueSet::reschedule_in(std::vector<Message>& q,
                                       ConnectionId id,
                                       sim::TimePoint deadline) {
  resched_scratch_.clear();
  std::size_t write = 0;
  for (std::size_t read = 0; read < q.size(); ++read) {
    if (q[read].connection == id && q[read].deadline != deadline) {
      resched_scratch_.push_back(std::move(q[read]));
    } else {
      if (write != read) q[write] = std::move(q[read]);
      ++write;
    }
  }
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(write), q.end());
  for (Message& m : resched_scratch_) {
    m.deadline = deadline;
    index_.erase(m.id);
    index_.insert(m.id, IndexEntry{m.traffic_class, m.deadline, m.arrival});
    insert_edf(q, std::move(m));
  }
  return resched_scratch_.size();
}

std::size_t EdfQueueSet::reschedule_connection(ConnectionId id,
                                               sim::TimePoint deadline) {
  std::size_t moved = 0;
  for (auto* q : {&rt_, &be_}) {  // NRT is FIFO: no EDF key to move
    moved += reschedule_in(*q, id, deadline);
  }
  if (moved > 0) ++version_;
  return moved;
}

std::size_t EdfQueueSet::clear() {
  const std::size_t n = size();
  rt_.clear();
  be_.clear();
  nrt_.clear();
  index_.clear();
  ++version_;
  return n;
}

std::size_t EdfQueueSet::size_of(TrafficClass c) const {
  switch (c) {
    case TrafficClass::kRealTime:
      return rt_.size();
    case TrafficClass::kBestEffort:
      return be_.size();
    case TrafficClass::kNonRealTime:
      return nrt_.size();
  }
  return 0;
}

std::optional<sim::TimePoint> EdfQueueSet::earliest_rt_deadline() const {
  if (rt_.empty()) return std::nullopt;
  return rt_.front().deadline;
}

void EdfQueueSet::reserve(std::size_t messages) {
  rt_.reserve(messages);
  be_.reserve(messages);
  nrt_.reserve(messages);
  index_.reserve(messages);
}

}  // namespace ccredf::core
