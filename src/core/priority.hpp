// Traffic classes and the laxity -> priority mapping (paper §3, Table 1).
//
// The request's priority field is 5 bits wide (Fig. 4), giving levels
// 0..31 allocated as:
//     0        nothing to send
//     1        non-real-time
//     2..16    best effort
//     17..31   logical real-time connection
// Within a class, *numerically larger* means shorter laxity (more urgent);
// RT always beats BE which always beats NRT.  The paper assumes a
// logarithmic laxity mapping ("higher resolution of laxity, the closer to
// its deadline a packet gets") and leaves alternatives open; we provide
// the logarithmic mapper plus a linear one for the E8 ablation.
#pragma once

#include <cstdint>
#include <memory>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

/// A value of the request priority field.
using Priority = std::uint8_t;

enum class TrafficClass : std::uint8_t {
  kNonRealTime = 0,
  kBestEffort = 1,
  kRealTime = 2,
};

/// Field-width-dependent layout of Table 1.
struct PriorityLayout {
  unsigned field_bits = 5;  // paper Fig. 4

  [[nodiscard]] Priority max_level() const {
    return static_cast<Priority>((1u << field_bits) - 1);
  }
  [[nodiscard]] Priority nothing() const { return 0; }
  [[nodiscard]] Priority non_real_time() const { return 1; }
  [[nodiscard]] Priority best_effort_lo() const { return 2; }
  /// Upper bound of the BE band; Table 1 gives 16 for the 5-bit field and
  /// we keep the band split proportional for other widths.
  [[nodiscard]] Priority best_effort_hi() const {
    return static_cast<Priority>((max_level() + 1) / 2);
  }
  [[nodiscard]] Priority real_time_lo() const {
    return static_cast<Priority>(best_effort_hi() + 1);
  }
  [[nodiscard]] Priority real_time_hi() const { return max_level(); }

  [[nodiscard]] Priority class_lo(TrafficClass c) const {
    switch (c) {
      case TrafficClass::kNonRealTime:
        return non_real_time();
      case TrafficClass::kBestEffort:
        return best_effort_lo();
      case TrafficClass::kRealTime:
        return real_time_lo();
    }
    return nothing();
  }
  [[nodiscard]] Priority class_hi(TrafficClass c) const {
    switch (c) {
      case TrafficClass::kNonRealTime:
        return non_real_time();
      case TrafficClass::kBestEffort:
        return best_effort_hi();
      case TrafficClass::kRealTime:
        return real_time_hi();
    }
    return nothing();
  }

  void validate() const {
    CCREDF_EXPECT(field_bits >= 3 && field_bits <= 8,
                  "PriorityLayout: field width must be in [3, 8] bits");
  }
};

/// Maps a message's laxity (time to deadline, in whole slots) to a level in
/// the class band.  Laxity may be negative for an already-late message; it
/// is clamped to zero (maximally urgent).
class LaxityMapper {
 public:
  virtual ~LaxityMapper() = default;

  [[nodiscard]] Priority map(const PriorityLayout& layout, TrafficClass cls,
                             std::int64_t laxity_slots) const;

  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  /// Returns the urgency *step count* down from the top of the band for a
  /// non-negative laxity.  0 => maximal priority in band.
  [[nodiscard]] virtual std::int64_t steps(std::int64_t laxity_slots)
      const = 0;
};

/// The paper's logarithmic mapping: one level per doubling of laxity, so
/// resolution is finest near the deadline.
class LogarithmicMapper final : public LaxityMapper {
 public:
  [[nodiscard]] const char* name() const override { return "logarithmic"; }

 protected:
  [[nodiscard]] std::int64_t steps(std::int64_t laxity_slots) const override;
};

/// Linear mapping with a fixed slots-per-level quantum (ablation baseline).
class LinearMapper final : public LaxityMapper {
 public:
  explicit LinearMapper(std::int64_t slots_per_level)
      : quantum_(slots_per_level) {
    CCREDF_EXPECT(slots_per_level > 0,
                  "LinearMapper: quantum must be positive");
  }
  [[nodiscard]] const char* name() const override { return "linear"; }

 protected:
  [[nodiscard]] std::int64_t steps(std::int64_t laxity_slots) const override {
    return laxity_slots / quantum_;
  }

 private:
  std::int64_t quantum_;
};

}  // namespace ccredf::core
