#include "core/hypercycle.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "ring/segment.hpp"

namespace ccredf::core {

namespace {

/// A layout backlog this deep means the registered set is hopelessly
/// over-subscribed; bail out instead of going quadratic.
constexpr std::size_t kMaxBacklog = 4096;

/// Cycles simulated before giving up on offset contraction (see
/// feasible()).  Real plans contract within a handful of cycles (the
/// first wait re-anchors the dominating cursor onto the release grid);
/// a cursor still drifting forward after this many cycles is heading
/// for a deadline miss anyway.
constexpr std::int64_t kMaxCycleProbe = 1024;

/// lcm(a, b) clamped to `cap`; 0 signals overflow or over-cap.
std::int64_t lcm_capped(std::int64_t a, std::int64_t b, std::int64_t cap) {
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  if (a_red > cap / b) return 0;
  const std::int64_t l = a_red * b;
  return l > cap ? 0 : l;
}

/// One unfinished job in the layout's ready list, EDF-ordered.
struct ReadyJob {
  std::int64_t deadline = 0;  // absolute grid slot
  NodeId source = kInvalidNode;
  ConnectionId conn_id = kNoConnection;
  std::int64_t job = 0;  // index within its connection
  std::uint32_t ci = 0;  // index into conns_
  std::int64_t release = 0;
  std::int64_t remaining = 0;

  [[nodiscard]] bool before(const ReadyJob& o) const {
    if (deadline != o.deadline) return deadline < o.deadline;
    if (source != o.source) return source < o.source;
    if (conn_id != o.conn_id) return conn_id < o.conn_id;
    return job < o.job;
  }
};

}  // namespace

HypercyclePlanner::HypercyclePlanner(const phy::RingPhy* phy,
                                     ring::RingTopology topo,
                                     sim::Duration slot_time, Config cfg)
    : phy_(phy),
      topo_(topo),
      handover_(phy),
      t_slot_(slot_time),
      cfg_(cfg) {}

void HypercyclePlanner::clear() {
  conns_.clear();
  valid_ = false;
  reason_ = "not built";
}

void HypercyclePlanner::add(ConnectionId id, const ConnectionParams& params,
                            std::int64_t base_slot) {
  const ring::Segment seg =
      ring::Segment::for_transmission(topo_, params.source, params.dests);
  ConnInfo c;
  c.id = id;
  c.source = params.source;
  c.hops = seg.hops();
  c.links = seg.links();
  c.dests = seg.dests();
  c.path_delay = phy_->path_delay(params.source, seg.hops());
  c.size = params.size_slots;
  c.period = params.period_slots;
  c.deadline = params.effective_deadline_slots();
  c.base = base_slot;
  conns_.push_back(c);
  valid_ = false;
  reason_ = "not built";
}

double HypercyclePlanner::planned_utilisation() const {
  double u = 0.0;
  for (const ConnInfo& c : conns_) {
    u += static_cast<double>(c.size) / static_cast<double>(c.period);
  }
  return u;
}

bool HypercyclePlanner::fail(const char* reason) {
  valid_ = false;
  reason_ = reason;
  return false;
}

bool HypercyclePlanner::build(sim::TimePoint anchor_start,
                              NodeId anchor_master) {
  valid_ = false;
  hyper_ = 0;
  cycle_origin_ = 0;
  prefix_.clear();
  cycle_.clear();
  grants_.clear();
  slot_table_.clear();
  conn_index_.clear();

  if (conns_.empty()) return fail("no planned connections");
  // The bundle tie-break keys below use connection ids, so the plan is
  // a pure function of the registered SET, not the registration order.
  std::sort(conns_.begin(), conns_.end(),
            [](const ConnInfo& a, const ConnInfo& b) { return a.id < b.id; });

  std::int64_t hyper = 1;
  for (const ConnInfo& c : conns_) {
    // The cursor model relies on at most one outstanding job per
    // connection (FIFO binding against the pending queue's front).
    if (c.deadline > c.period) return fail("deadline beyond period");
    hyper = lcm_capped(hyper, c.period, cfg_.max_hyperperiod_slots);
    if (hyper == 0) return fail("hyperperiod exceeds cap");
  }
  hyper_ = hyper;

  std::int64_t s0 = conns_.front().base;
  for (const ConnInfo& c : conns_) s0 = std::min(s0, c.base);

  std::vector<Bundle> bundles;
  std::vector<Grant> grants;
  std::vector<std::int64_t> grant_jobs;
  if (!layout(bundles, grants, grant_jobs, s0, s0 + 4 * hyper_)) {
    return false;
  }
  cycle_origin_ = s0 + 2 * hyper_ + 1;
  if (!extract_steady_state(bundles, grants, grant_jobs)) return false;
  if (!feasible(anchor_start, anchor_master)) return false;

  ConnectionId max_id = 0;
  for (const ConnInfo& c : conns_) max_id = std::max(max_id, c.id);
  conn_index_.assign(static_cast<std::size_t>(max_id) + 1, -1);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    conn_index_[conns_[i].id] = static_cast<std::int32_t>(i);
  }
  valid_ = true;
  reason_ = "";
  return true;
}

bool HypercyclePlanner::layout(std::vector<Bundle>& bundles,
                               std::vector<Grant>& grants,
                               std::vector<std::int64_t>& grant_jobs,
                               std::int64_t s0, std::int64_t horizon_end) {
  // Min-heap of (next release slot, connection index).
  using Release = std::pair<std::int64_t, std::uint32_t>;
  std::vector<Release> heap;
  heap.reserve(conns_.size());
  std::vector<std::int64_t> next_job(conns_.size(), 0);
  const auto heap_cmp = std::greater<Release>{};
  for (std::uint32_t ci = 0; ci < conns_.size(); ++ci) {
    if (conns_[ci].base <= horizon_end - 1) {
      heap.emplace_back(conns_[ci].base, ci);
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_cmp);

  std::vector<ReadyJob> ready;
  std::vector<std::size_t> finished;

  std::int64_t s = s0 + 1;
  while (s <= horizon_end) {
    // Jobs released by the end of slot s-1 are grantable in slot s.
    while (!heap.empty() && heap.front().first <= s - 1) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      const auto [r, ci] = heap.back();
      heap.pop_back();
      const ConnInfo& c = conns_[ci];
      ReadyJob j;
      j.deadline = r + c.deadline;
      j.source = c.source;
      j.conn_id = c.id;
      j.job = next_job[ci]++;
      j.ci = ci;
      j.release = r;
      j.remaining = c.size;
      if (ready.size() >= kMaxBacklog) return fail("planner backlog overflow");
      ready.insert(std::upper_bound(ready.begin(), ready.end(), j,
                                    [](const ReadyJob& a, const ReadyJob& b) {
                                      return a.before(b);
                                    }),
                   j);
      const std::int64_t next_r = r + c.period;
      if (next_r <= horizon_end - 1) {
        heap.emplace_back(next_r, ci);
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      }
    }

    if (ready.empty()) {
      if (heap.empty()) break;
      // Idle stretch: jump straight to the first slot that can grant
      // the next release.
      s = std::max(s + 1, heap.front().first + 1);
      continue;
    }

    // Greedy EDF packing, mirroring Arbiter: the head job's source
    // masters the slot; further jobs join while their segments stay
    // link-disjoint and avoid the master's clock-break link.
    Bundle b;
    b.layout_slot = s;
    b.master = conns_[ready[0].ci].source;
    b.release_slot = ready[0].release;
    b.first_grant = static_cast<std::uint32_t>(grants.size());
    const LinkId brk = topo_.break_link(b.master);
    LinkSet taken;
    finished.clear();
    for (std::size_t k = 0; k < ready.size(); ++k) {
      const ConnInfo& c = conns_[ready[k].ci];
      if (k > 0) {
        if (!cfg_.spatial_reuse) break;
        if (b.granted.contains(c.source)) continue;
        if (c.links.intersects(taken)) continue;
        if (c.links.contains(brk)) continue;
      }
      Grant g;
      g.conn = c.id;
      g.source = c.source;
      g.hops = c.hops;
      g.links = c.links;
      g.dests = c.dests;
      g.release_slot = ready[k].release;
      g.deadline_slots = c.deadline;
      g.path_delay = c.path_delay;
      g.completes = --ready[k].remaining == 0;
      grants.push_back(g);
      grant_jobs.push_back(ready[k].job);
      taken |= c.links;
      b.granted.insert(c.source);
      b.release_slot = std::max(b.release_slot, ready[k].release);
      if (g.completes) finished.push_back(k);
    }
    b.grant_count = static_cast<std::uint32_t>(grants.size()) - b.first_grant;
    bundles.push_back(b);
    for (auto it = finished.rbegin(); it != finished.rend(); ++it) {
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    ++s;
  }
  return true;
}

bool HypercyclePlanner::extract_steady_state(
    const std::vector<Bundle>& bundles, const std::vector<Grant>& grants,
    const std::vector<std::int64_t>& grant_jobs) {
  // bundles is sorted by layout_slot; windows 3 and 4 are the slot
  // ranges [cycle_origin_, +H) and [cycle_origin_ + H, +2H).
  const std::int64_t w3 = cycle_origin_;
  const std::int64_t w4 = cycle_origin_ + hyper_;
  std::size_t i3 = 0;
  while (i3 < bundles.size() && bundles[i3].layout_slot < w3) ++i3;
  std::size_t i4 = i3;
  while (i4 < bundles.size() && bundles[i4].layout_slot < w4) ++i4;
  const std::size_t n3 = i4 - i3;
  const std::size_t n4 = bundles.size() - i4;
  if (n3 == 0) return fail("empty steady-state window");
  if (n3 != n4) return fail("no steady-state pattern");

  // Window 4 must be window 3 shifted H slots, with every job index
  // advanced by that connection's jobs-per-cycle -- the certificate
  // that the layout has entered a periodic orbit.
  for (std::size_t k = 0; k < n3; ++k) {
    const Bundle& a = bundles[i3 + k];
    const Bundle& b = bundles[i4 + k];
    if (b.layout_slot != a.layout_slot + hyper_ || b.master != a.master ||
        b.grant_count != a.grant_count) {
      return fail("no steady-state pattern");
    }
    for (std::uint32_t g = 0; g < a.grant_count; ++g) {
      const Grant& ga = grants[a.first_grant + g];
      const Grant& gb = grants[b.first_grant + g];
      const ConnInfo& c = conns_[static_cast<std::size_t>(
          std::lower_bound(conns_.begin(), conns_.end(), ga.conn,
                           [](const ConnInfo& ci, ConnectionId id) {
                             return ci.id < id;
                           }) -
          conns_.begin())];
      if (gb.conn != ga.conn || gb.completes != ga.completes ||
          grant_jobs[b.first_grant + g] !=
              grant_jobs[a.first_grant + g] + hyper_ / c.period) {
        return fail("no steady-state pattern");
      }
    }
  }

  // Throughput balance: each cyclic window must complete exactly one
  // hyperperiod's worth of jobs per connection, else some job is
  // starved or dragging (either way, not a schedule to trust forever).
  for (const ConnInfo& c : conns_) {
    const std::int64_t jobs_per_cycle = hyper_ / c.period;
    std::int64_t completes = 0;
    std::int64_t slots = 0;
    for (std::size_t k = i3; k < i4; ++k) {
      for (std::uint32_t g = 0; g < bundles[k].grant_count; ++g) {
        const Grant& gr = grants[bundles[k].first_grant + g];
        if (gr.conn != c.id) continue;
        ++slots;
        if (gr.completes) ++completes;
      }
    }
    if (completes != jobs_per_cycle || slots != jobs_per_cycle * c.size) {
      return fail("steady-state window out of balance");
    }
  }

  // Emit the final plan: prefix in absolute coordinates, one cyclic
  // window re-coded relative to cycle_origin_.
  for (std::size_t k = 0; k < i3; ++k) {
    Bundle b = bundles[k];
    const std::uint32_t first = b.first_grant;
    b.first_grant = static_cast<std::uint32_t>(grants_.size());
    for (std::uint32_t g = 0; g < b.grant_count; ++g) {
      grants_.push_back(grants[first + g]);
    }
    prefix_.push_back(b);
  }
  slot_table_.assign(static_cast<std::size_t>(hyper_), -1);
  for (std::size_t k = i3; k < i4; ++k) {
    Bundle b = bundles[k];
    const std::uint32_t first = b.first_grant;
    b.layout_slot -= cycle_origin_;
    b.release_slot -= cycle_origin_;
    b.first_grant = static_cast<std::uint32_t>(grants_.size());
    for (std::uint32_t g = 0; g < b.grant_count; ++g) {
      Grant gr = grants[first + g];
      gr.release_slot -= cycle_origin_;
      grants_.push_back(gr);
    }
    slot_table_[static_cast<std::size_t>(b.layout_slot)] =
        static_cast<std::int32_t>(cycle_.size());
    cycle_.push_back(b);
  }
  return true;
}

bool HypercyclePlanner::feasible(sim::TimePoint anchor_start,
                                 NodeId anchor_master) {
  // Integer re-enactment of the cursor execution model (header comment)
  // from the engine state the plan will engage at -- run as a DOMINATING
  // trajectory, not the exact one.  The exact cursor lands anywhere in
  // [eligible, eligible + wait_step) after a wait stretch, so the
  // slot-start offsets from the nominal grid perform a rotation by
  // (H * t_slot mod wait_step) per cycle -- an exact (offset, master)
  // recurrence can take millions of cycles or never happen at all.
  // Instead, bound every slot start by max(t, eligible + wait_step).
  // That step is monotone and dominates every exact step from any
  // earlier-or-equal start, so once the cycle-boundary offset stops
  // increasing (off_n <= off_{n-1}) every later cycle is pointwise
  // dominated by an already-checked one and all deadlines hold forever.
  // The pessimism is < one wait step per waiting bundle: a schedule
  // that only works with sub-wait-step slack is rejected back to TCMA
  // (never a wrong admission).
  const sim::TimePoint origin = sim::TimePoint::origin();
  const sim::Duration g0 = handover_.gap(anchor_master, anchor_master);
  const sim::Duration wait_step = t_slot_ + g0;
  sim::TimePoint t = anchor_start;
  NodeId m = anchor_master;

  const auto exec = [&](const Bundle& b, std::int64_t rel_base) {
    const sim::TimePoint eligible =
        origin + t_slot_ * (b.release_slot + rel_base);
    if (eligible + wait_step > t) t = eligible + wait_step;
    const sim::TimePoint exec_start = t + t_slot_ + handover_.gap(m, b.master);
    const sim::TimePoint exec_end = exec_start + t_slot_;
    const Grant* gs = grants_.data() + b.first_grant;
    for (std::uint32_t g = 0; g < b.grant_count; ++g) {
      if (!gs[g].completes) continue;
      const sim::TimePoint deadline =
          origin +
          t_slot_ * (gs[g].release_slot + rel_base + gs[g].deadline_slots);
      if (exec_end + gs[g].path_delay > deadline) return false;
    }
    t = exec_start;
    m = b.master;
    return true;
  };

  for (const Bundle& b : prefix_) {
    if (!exec(b, 0)) return fail("plan misses a deadline");
  }
  std::int64_t prev_off = 0;
  for (std::int64_t n = 0; n < kMaxCycleProbe; ++n) {
    const sim::TimePoint nominal =
        origin + t_slot_ * (cycle_origin_ + n * hyper_);
    const std::int64_t off = (t - nominal).ps();
    if (n > 0 && off <= prev_off) return true;
    prev_off = off;
    for (const Bundle& b : cycle_) {
      if (!exec(b, cycle_origin_ + n * hyper_)) {
        return fail("plan misses a deadline");
      }
    }
  }
  return fail("no steady-state fixed point");
}

}  // namespace ccredf::core
