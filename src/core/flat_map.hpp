// Open-addressing hash map over 64-bit keys, built for hot paths.
//
// std::unordered_map allocates one node per insert, which would put the
// allocator back on the per-slot path the moment an index entry is added
// or removed.  FlatMap64 stores slots contiguously (linear probing,
// backward-shift deletion, power-of-two capacity): after the table has
// grown to its steady-state size, insert/find/erase never touch the heap.
// Values must be cheap to move; iteration order is unspecified.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ccredf::core {

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` entries without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts or overwrites; returns true when the key was new.
  bool insert(std::uint64_t key, Value value) {
    if (slots_.empty() ||
        (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = index_of(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return false;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return true;
  }

  [[nodiscard]] Value* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = index_of(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] const Value* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return find(key) != nullptr;
  }

  /// Removes `key`; returns false when absent.  Backward-shift deletion
  /// keeps probe chains intact without tombstones, so lookup cost never
  /// degrades with churn.
  bool erase(std::uint64_t key) {
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask_;
    if (!slots_[i].used) return false;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) break;
      const std::size_t ideal = index_of(slots_[j].key);
      // Move j back into the hole iff its ideal slot does not lie in the
      // (cyclic) open interval (hole, j].
      const bool reachable = hole <= j ? (ideal > hole && ideal <= j)
                                       : (ideal > hole || ideal <= j);
      if (!reachable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].used = false;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  void clear() {
    for (auto& s : slots_) {
      s.used = false;
      s.value = Value{};
    }
    size_ = 0;
  }

  /// Calls `fn(key, value)` for every entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: probes stay short, memory stays modest.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    // Fibonacci mixing spreads sequential ids across the table.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  void rehash(std::size_t new_cap) {
    CCREDF_ASSERT((new_cap & (new_cap - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (auto& s : old) {
      if (s.used) insert(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccredf::core
