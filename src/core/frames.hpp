// TCMA control-channel frames, bit-exact (paper Fig. 4-5).
//
// Collection-phase packet (built hop by hop, master receives it whole):
//   start bit | request[0] | request[1] | ... | request[N-1]
//   request  = priority (5 bits) | link reservation (N bits)
//            | destination field (N bits)
//
// Distribution-phase packet (master -> all, end aligned with slot end):
//   start bit | request results (N bits, 1 = granted)
//   | index of hp-node (ceil(log2 N) bits)
//   | other fields: ack bits (N bits, reliable service [11]), present when
//     the network enables reliable transmission.
//
// A node with nothing to send writes priority 0 and zeroes in the other
// fields (paper §3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/bits.hpp"
#include "core/priority.hpp"

namespace ccredf::core {

/// One node's slot request inside the collection packet.
struct Request {
  Priority priority = 0;  // 0 = nothing to send
  LinkSet links;          // link reservation field
  NodeSet dests;          // destination field

  [[nodiscard]] bool wants_slot() const { return priority != 0; }
  bool operator==(const Request&) const = default;
};

struct CollectionPacket {
  std::vector<Request> requests;  // exactly N entries, indexed by node

  bool operator==(const CollectionPacket&) const = default;
};

struct DistributionPacket {
  NodeSet granted;                // request-result bits
  NodeId hp_node = kInvalidNode;  // index of the highest-priority node ==
                                  // next master; when no node requested,
                                  // arbitration sets this to the current
                                  // master (it keeps the role), so the
                                  // field is always a valid index on wire
  bool has_acks = false;
  NodeSet acks;  // per-source ack of the previous slot's transfers

  bool operator==(const DistributionPacket&) const = default;
};

/// Encodes/decodes the frames for an N-node ring with the given priority
/// layout.  The encoded bit counts are the exact control-channel occupancy
/// used in the timing model.
class FrameCodec {
 public:
  FrameCodec(NodeId nodes, PriorityLayout layout, bool with_acks);

  [[nodiscard]] NodeId nodes() const { return n_; }
  [[nodiscard]] const PriorityLayout& layout() const { return layout_; }

  /// Bits in a complete collection packet (start + N requests).
  [[nodiscard]] std::int64_t collection_bits() const;
  /// Bits in a distribution packet (start + results + index + extras).
  [[nodiscard]] std::int64_t distribution_bits() const;

  struct Encoded {
    std::vector<std::uint8_t> bytes;
    std::size_t bit_count = 0;
  };

  [[nodiscard]] Encoded encode(const CollectionPacket& p) const;
  [[nodiscard]] Encoded encode(const DistributionPacket& p) const;
  [[nodiscard]] CollectionPacket decode_collection(const Encoded& e) const;
  [[nodiscard]] DistributionPacket decode_distribution(const Encoded& e)
      const;

 private:
  NodeId n_;
  PriorityLayout layout_;
  bool with_acks_;
  unsigned idx_bits_;
};

}  // namespace ccredf::core
