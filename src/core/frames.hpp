// TCMA control-channel frames, bit-exact (paper Fig. 4-5).
//
// Collection-phase packet (built hop by hop, master receives it whole):
//   start bit | request[0] | request[1] | ... | request[N-1]
//   request  = priority (5 bits) | link reservation (N bits)
//            | destination field (N bits)
//
// Distribution-phase packet (master -> all, end aligned with slot end):
//   start bit | request results (N bits, 1 = granted)
//   | index of hp-node (ceil(log2 N) bits)
//   | other fields: ack bits (N bits, reliable service [11]), present when
//     the network enables reliable transmission; NACK bits (N bits),
//     present when the payload CRC-32 extension rides on top of the ack
//     field -- a set bit tells that source its previous slot's transfer
//     failed the receivers' payload check (PROTOCOL.md §7.3).
//
// A node with nothing to send writes priority 0 and zeroes in the other
// fields (paper §3).
//
// Frame-integrity extension (with_crc, our robustness addition beyond the
// paper): each request record carries a trailing CRC-8 over its own bits
// (appended by the requesting node as the collection packet passes), and
// the distribution packet carries a whole-frame CRC-8 (computed by the
// master).  Together with the start-bit and field-plausibility checks in
// the *_checked decoders this lets nodes DETECT control-channel bit
// errors instead of acting on garbage -- see PROTOCOL.md §7.
#pragma once

#include <cstdint>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/bits.hpp"
#include "core/priority.hpp"

namespace ccredf::core {

/// One node's slot request inside the collection packet.
struct Request {
  Priority priority = 0;  // 0 = nothing to send
  LinkSet links;          // link reservation field
  NodeSet dests;          // destination field

  [[nodiscard]] bool wants_slot() const { return priority != 0; }
  bool operator==(const Request&) const = default;
};

struct CollectionPacket {
  std::vector<Request> requests;  // exactly N entries, indexed by node

  bool operator==(const CollectionPacket&) const = default;
};

struct DistributionPacket {
  NodeSet granted;                // request-result bits
  NodeId hp_node = kInvalidNode;  // index of the highest-priority node ==
                                  // next master; when no node requested,
                                  // arbitration sets this to the current
                                  // master (it keeps the role), so the
                                  // field is always a valid index on wire
  bool has_acks = false;
  NodeSet acks;  // per-source ack of the previous slot's transfers
  bool has_nacks = false;
  NodeSet nacks;  // per-source NACK: the previous slot's transfer failed
                  // the receivers' payload CRC (with_payload_crc runs)

  bool operator==(const DistributionPacket&) const = default;
};

/// Encodes/decodes the frames for an N-node ring with the given priority
/// layout.  The encoded bit counts are the exact control-channel occupancy
/// used in the timing model.
class FrameCodec {
 public:
  FrameCodec(NodeId nodes, PriorityLayout layout, bool with_acks,
             bool with_crc = false, bool with_nacks = false);

  [[nodiscard]] NodeId nodes() const { return n_; }
  [[nodiscard]] const PriorityLayout& layout() const { return layout_; }
  [[nodiscard]] bool with_crc() const { return with_crc_; }
  [[nodiscard]] bool with_nacks() const { return with_nacks_; }

  /// Bits in a complete collection packet (start + N requests).
  [[nodiscard]] std::int64_t collection_bits() const;
  /// Bits in a distribution packet (start + results + index + extras).
  [[nodiscard]] std::int64_t distribution_bits() const;
  /// Bits of one request record inside the collection packet (priority +
  /// links + dests [+ CRC]) -- the unit a corruption model flips bits in.
  [[nodiscard]] std::int64_t request_bits() const;

  struct Encoded {
    std::vector<std::uint8_t> bytes;
    std::size_t bit_count = 0;
  };

  [[nodiscard]] Encoded encode(const CollectionPacket& p) const;
  [[nodiscard]] Encoded encode(const DistributionPacket& p) const;
  /// Wire image of a single request record (no start bit).
  [[nodiscard]] Encoded encode_request(const Request& rq) const;
  [[nodiscard]] CollectionPacket decode_collection(const Encoded& e) const;
  [[nodiscard]] DistributionPacket decode_distribution(const Encoded& e)
      const;

  // -- integrity-checked decoding (fault paths) ---------------------------
  //
  // The plain decoders above CCREDF_EXPECT on malformed frames -- right
  // for trusted in-process round trips, wrong for a receiver that must
  // survive corruption.  The checked decoders classify instead of throw:
  // ok == false means the guards rejected the frame and the receiver
  // must fall back to its containment action (treat the request as idle,
  // or treat the distribution as a lost token).

  struct CheckedRequest {
    Request request;
    bool ok = false;
    const char* reason = nullptr;  // static string when !ok
  };
  struct CheckedDistribution {
    DistributionPacket packet;
    bool ok = false;
    const char* reason = nullptr;
  };

  /// Decodes and integrity-checks one request record as the master does:
  /// CRC (when enabled), the paper-§3 idle rule (priority 0 => zeroed
  /// fields), non-empty reservation/destination fields for a live
  /// request, and source-consistency (`source` cannot address itself).
  [[nodiscard]] CheckedRequest decode_request_checked(const Encoded& e,
                                                      NodeId source) const;

  /// Decodes and integrity-checks a distribution packet as a receiver
  /// does: length, start bit, CRC (when enabled) and hp-index range.
  [[nodiscard]] CheckedDistribution decode_distribution_checked(
      const Encoded& e) const;

 private:
  NodeId n_;
  PriorityLayout layout_;
  bool with_acks_;
  bool with_crc_;
  bool with_nacks_;
  unsigned idx_bits_;
};

}  // namespace ccredf::core
