// The paper's closed-form timing and schedulability results (Eq. 1-6).
//
//   Eq. 1  t_handover   = P * L * D          (clock hand-over over D hops)
//   Eq. 2  t_minslot    = N * t_node + t_prop (collection must fit a slot)
//   Eq. 3  t_maxdelay   = t_deadline + t_latency
//   Eq. 4  t_latency    = 2 * t_slot + t_handover_max
//   Eq. 5  sum(e_i/P_i) <= U_max             (EDF feasibility)
//   Eq. 6  U_max        = t_slot / (t_slot + t_handover_max)
//
// SlotTiming derives every quantity from the physical ring and the chosen
// slot payload; the admission controller consumes u_max().
#pragma once

#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "core/connection.hpp"
#include "phy/ring_phy.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

/// Bit cost of the TCMA control frames, needed to size the slot so both
/// phases complete in time (see frames.hpp for the layouts).
struct ControlFrameBits {
  std::int64_t collection_bits = 0;
  std::int64_t distribution_bits = 0;
};

class SlotTiming {
 public:
  /// `payload_bytes` is the data-packet size carried per slot; it must be
  /// large enough that the collection phase fits the slot (Eq. 2).
  SlotTiming(const phy::RingPhy& phy, std::int64_t payload_bytes);

  [[nodiscard]] sim::Duration slot() const { return t_slot_; }
  [[nodiscard]] std::int64_t payload_bytes() const { return payload_bytes_; }

  /// Eq. 2: minimum slot duration so that the collection-phase packet
  /// (appended at each of the N nodes, propagating once around) returns to
  /// the master within the slot.
  [[nodiscard]] sim::Duration min_slot() const { return t_minslot_; }

  /// Smallest payload (bytes) satisfying Eq. 2 for a given ring -- the
  /// "minimum slot length" the paper discusses in §4.
  static std::int64_t min_payload_bytes(const phy::RingPhy& phy);

  /// Eq. 1 with D = N-1: worst-case clock hand-over.
  [[nodiscard]] sim::Duration max_handover() const { return t_handover_max_; }

  /// Eq. 6: worst-case guaranteed utilisation at full load.
  [[nodiscard]] double u_max() const {
    return t_slot_.ratio(t_slot_ + t_handover_max_);
  }

  /// Eq. 4: worst-case protocol latency experienced by any message beyond
  /// its EDF schedule: one just-missed slot, one arbitration slot, and a
  /// worst-case hand-over gap.
  [[nodiscard]] sim::Duration worst_case_latency() const {
    return 2 * t_slot_ + t_handover_max_;
  }

  /// Eq. 3: the delay bound perceived at user level for a message with the
  /// given scheduling deadline.
  [[nodiscard]] sim::Duration max_delay(sim::Duration t_deadline) const {
    return t_deadline + worst_case_latency();
  }

  /// Upper bound on a slot's wall-clock extent including the worst gap --
  /// the denominator of Eq. 6.
  [[nodiscard]] sim::Duration slot_plus_max_gap() const {
    return t_slot_ + t_handover_max_;
  }

 private:
  std::int64_t payload_bytes_;
  sim::Duration t_slot_;
  sim::Duration t_minslot_;
  sim::Duration t_handover_max_;
};

/// Eq. 5: EDF feasibility of a connection set under bound `u_max`.
[[nodiscard]] bool edf_feasible(std::span<const ConnectionParams> set,
                                double u_max);

/// Total utilisation sum(e_i / P_i) of a connection set.
[[nodiscard]] double total_utilisation(std::span<const ConnectionParams> set);

}  // namespace ccredf::core
