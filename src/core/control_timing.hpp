// Timing of the control-channel phases within one slot (paper Fig. 3).
//
// The collection packet leaves the master at slot start, is delayed
// t_node (passthrough) in each node it crosses and reaches node j (h hops
// downstream) at
//     sample_time(h) = slot_start + prop(master -> j) + h * t_node,
// which is the instant node j's request is frozen.  The packet is fully
// back at the master once it has circled the ring AND its last bit has
// arrived, giving the exact form of Eq. 2's constraint; the distribution
// packet is then timed so its end coincides with slot end (paper §3).
//
// One shared implementation keeps the slot engine and every control-
// channel service (barrier, reduction) in exact agreement.
#pragma once

#include "common/types.hpp"
#include "phy/ring_phy.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

class ControlTiming {
 public:
  /// `collection_bits` / `distribution_bits` from the FrameCodec.
  ControlTiming(const phy::RingPhy* phy, std::int64_t collection_bits,
                std::int64_t distribution_bits)
      : phy_(phy),
        collection_bits_(collection_bits),
        distribution_bits_(distribution_bits) {}

  /// Offset from slot start at which the collection packet samples the
  /// node `hops` downstream of the master (0 = the master itself).
  [[nodiscard]] sim::Duration sample_offset(NodeId master,
                                            NodeId hops) const {
    const auto& lp = phy_->link();
    return phy_->path_delay(master, hops) +
           lp.control_time(static_cast<std::int64_t>(hops) *
                           lp.node_passthrough_bits);
  }

  /// Offset from slot start at which node `node` is sampled under
  /// `master`.
  [[nodiscard]] sim::Duration sample_offset_of(NodeId master,
                                               NodeId node) const {
    return sample_offset(master, phy_->hops_between(master, node));
  }

  /// Offset at which the *last bit* of the complete collection packet is
  /// back at the master: full ring propagation + every passthrough +
  /// the packet's own serialisation time.  This is Eq. 2 made exact --
  /// the paper's t_minslot omits the packet-length term, which dominates
  /// on short rings.
  [[nodiscard]] sim::Duration collection_complete_offset() const {
    const auto& lp = phy_->link();
    return phy_->ring_delay() +
           lp.control_time(static_cast<std::int64_t>(phy_->nodes()) *
                           lp.node_passthrough_bits) +
           lp.control_time(collection_bits_);
  }

  /// Serialisation time of the distribution packet; its end is aligned
  /// with the slot end, so it starts at slot_end - this.
  [[nodiscard]] sim::Duration distribution_time() const {
    return phy_->link().control_time(distribution_bits_);
  }

  /// True iff both control phases fit a slot of the given duration:
  /// collection completes, the master arbitrates, and the distribution
  /// packet still ends with the slot.
  [[nodiscard]] bool fits_slot(sim::Duration t_slot) const {
    return collection_complete_offset() + distribution_time() <= t_slot;
  }

 private:
  const phy::RingPhy* phy_;  // non-owning; outlives this object
  std::int64_t collection_bits_;
  std::int64_t distribution_bits_;
};

}  // namespace ccredf::core
