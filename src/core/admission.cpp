#include "core/admission.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ccredf::core {

void AdmissionController::set_capacity_factor(double factor) {
  CCREDF_EXPECT(factor >= 0.0 && factor <= 1.0,
                "AdmissionController: capacity factor out of [0,1]");
  capacity_factor_ = factor;
}

double AdmissionController::weight(const ConnectionParams& params) const {
  switch (policy_) {
    case AdmissionPolicy::kDensity: {
      const auto d = std::min(params.effective_deadline_slots(),
                              params.period_slots);
      return static_cast<double>(params.size_slots) /
             static_cast<double>(d);
    }
    case AdmissionPolicy::kUtilisation:
      break;
  }
  return params.utilisation();
}

AdmissionController::Decision AdmissionController::request(
    const ConnectionParams& params, sim::TimePoint now) {
  params.validate();
  ++requests_;
  Decision d;
  const double u_new = weight(params);
  // Eq. 5 against Eq. 6's bound (derated in degraded mode).  A small
  // epsilon forgives accumulated floating-point error when many
  // connections sum exactly to the bound.
  constexpr double kEps = 1e-12;
  if (utilisation_ + u_new <= effective_u_max() + kEps) {
    Connection c;
    c.id = next_id_++;
    c.params = params;
    c.admitted = now;
    utilisation_ += u_new;
    d.admitted = true;
    d.id = c.id;
    ma_.emplace(c.id, std::move(c));
  } else {
    ++rejections_;
  }
  d.utilisation_after = utilisation_;
  return d;
}

AdmissionController::Decision AdmissionController::admit_unchecked(
    const ConnectionParams& params, sim::TimePoint now) {
  params.validate();
  ++requests_;
  Decision d;
  Connection c;
  c.id = next_id_++;
  c.params = params;
  c.admitted = now;
  utilisation_ += weight(params);
  d.admitted = true;
  d.id = c.id;
  ma_.emplace(c.id, std::move(c));
  d.utilisation_after = utilisation_;
  return d;
}

bool AdmissionController::release(ConnectionId id) {
  auto it = ma_.find(id);
  if (it == ma_.end()) return false;
  utilisation_ -= weight(it->second.params);
  if (utilisation_ < 0.0) utilisation_ = 0.0;  // guard rounding drift
  ma_.erase(it);
  return true;
}

const Connection* AdmissionController::find(ConnectionId id) const {
  const auto it = ma_.find(id);
  return it == ma_.end() ? nullptr : &it->second;
}

std::vector<Connection> AdmissionController::snapshot() const {
  std::vector<Connection> v;
  v.reserve(ma_.size());
  for (const auto& [id, c] : ma_) v.push_back(c);
  return v;
}

}  // namespace ccredf::core
