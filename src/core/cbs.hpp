// Constant Bandwidth Server (Abeni & Buttazzo) for aperiodic traffic.
//
// The paper names three service classes but analyses only the guaranteed
// periodic one (§5-6).  A CBS gives aperiodic/bursty sources isolated
// bandwidth without endangering the hard guarantees: a server with
// budget Q slots per period T slots is admitted through the Eq. 5 test
// exactly like a periodic connection of utilisation Q/T, and every job
// it serves carries the SERVER deadline instead of a per-message
// deadline.  Because the server set passes the same utilisation bound,
// the EDF analysis over connections-plus-servers is unchanged -- the
// classic CBS isolation theorem.
//
// Rules implemented (slot-granular, all integer arithmetic):
//   * arrival to an idle server at time t: if the pair (c, d) could
//     exceed the reserved bandwidth -- c >= (d - t) * Q/T -- the server
//     recharges: c = Q, d = t + T.  Otherwise the job inherits the
//     current (c, d).
//   * arrival to a backlogged server: the job queues behind the
//     in-service one and inherits the server deadline as it stands.
//   * each granted data slot consumes one budget unit; at c == 0 the
//     server POSTPONES: c = Q, d = d + T.  Queued jobs of the server are
//     re-keyed to the postponed deadline (EdfQueueSet::
//     reschedule_connection), so an overrunning server slides itself
//     down the EDF order instead of starving its peers.
//
// Time base: deadlines advance in wall time by T * t_slot, the same unit
// convention the periodic release machinery and the Eq. 5-6 analysis
// use (net::Network::open_connection).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/connection.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

struct CbsParams {
  NodeId source = kInvalidNode;
  /// Destination set jobs are sent to (unicast or multicast, fixed per
  /// server like a connection's).
  NodeSet dests;
  /// Budget Q in slots per period (>= 1).
  std::int64_t budget_slots = 1;
  /// Replenishment period T in slots (>= budget).
  std::int64_t period_slots = 1;

  /// Reserved utilisation Q/T -- the Eq. 5 summand of the server.
  [[nodiscard]] double utilisation() const {
    return static_cast<double>(budget_slots) /
           static_cast<double>(period_slots);
  }

  void validate() const {
    CCREDF_EXPECT(budget_slots >= 1, "cbs: budget must be >= 1 slot");
    CCREDF_EXPECT(period_slots >= budget_slots,
                  "cbs: period must be >= budget");
    CCREDF_EXPECT(!dests.empty(), "cbs: no destinations");
    CCREDF_EXPECT(!dests.contains(source),
                  "cbs: source cannot be a destination");
  }

  /// The connection record the admission controller tests: a server of
  /// budget Q per period T weighs exactly like a periodic connection
  /// e = Q, P = T (utilisation policy) -- the CBS admission hook.
  [[nodiscard]] ConnectionParams admission_params() const {
    ConnectionParams p;
    p.source = source;
    p.dests = dests;
    p.size_slots = budget_slots;
    p.period_slots = period_slots;
    p.service = ServiceClass::kConstantBandwidth;
    return p;
  }
};

/// The per-server state machine.  Pure (no network dependency): the slot
/// engine drives it via on_arrival / charge_slot and propagates the
/// deadline it reports into the EDF queues.
class CbsServer {
 public:
  /// `slot` is the data-slot wall duration t_slot (core::SlotTiming).
  CbsServer(const CbsParams& params, sim::Duration slot)
      : params_(params),
        period_wall_(slot * params.period_slots),
        budget_(params.budget_slots),
        deadline_(sim::TimePoint::origin()) {
    params_.validate();
    CCREDF_EXPECT(slot > sim::Duration::zero(),
                  "CbsServer: slot duration must be positive");
  }

  /// Applies the CBS wake-up rule for a job arriving at `now` and
  /// returns the absolute server deadline the job must carry.
  /// `backlogged` = the server already has queued or in-flight work (a
  /// backlogged arrival never recharges -- it inherits the deadline).
  sim::TimePoint on_arrival(sim::TimePoint now, bool backlogged) {
    if (!backlogged && exceeds_bandwidth(now)) {
      budget_ = params_.budget_slots;
      deadline_ = now + period_wall_;
      ++recharges_;
    }
    return deadline_;
  }

  /// Consumes one granted data slot of budget.  Returns true when the
  /// budget exhausted and the server postponed (budget refilled, the
  /// deadline moved one period later) -- the caller must then re-key the
  /// server's queued messages to deadline().
  bool charge_slot() {
    CCREDF_ASSERT(budget_ > 0);
    if (--budget_ > 0) return false;
    budget_ = params_.budget_slots;
    deadline_ = deadline_ + period_wall_;
    ++postponements_;
    return true;
  }

  [[nodiscard]] const CbsParams& params() const { return params_; }
  /// The current absolute server deadline (EDF key of every queued job).
  [[nodiscard]] sim::TimePoint deadline() const { return deadline_; }
  [[nodiscard]] std::int64_t budget_remaining() const { return budget_; }
  /// Wake-up recharges performed (c = Q, d = t + T).
  [[nodiscard]] std::int64_t recharges() const { return recharges_; }
  /// Budget-exhaustion postponements performed (c = Q, d += T).
  [[nodiscard]] std::int64_t postponements() const { return postponements_; }

 private:
  /// The wake-up test c >= (d - now) * Q/T, rearranged to the
  /// division-free-on-the-left form (d - now) <= c * T_wall / Q.
  /// Integer truncation of the right side only makes the recharge LESS
  /// eager, which stays on the bandwidth-safe side.
  [[nodiscard]] bool exceeds_bandwidth(sim::TimePoint now) const {
    if (deadline_ <= now) return true;
    const std::int64_t bound_ps =
        budget_ * (period_wall_.ps() / params_.budget_slots);
    return (deadline_ - now).ps() <= bound_ps;
  }

  CbsParams params_;
  sim::Duration period_wall_;  // T * t_slot
  std::int64_t budget_;        // c, in slots
  sim::TimePoint deadline_;    // d (absolute)
  std::int64_t recharges_ = 0;
  std::int64_t postponements_ = 0;
};

}  // namespace ccredf::core
