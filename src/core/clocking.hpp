// Clock hand-over between slots (paper §2 and §4, Fig. 6-7).
//
// At the end of a slot the master stops the clock one bit after the
// distribution packet; the next master detects the silence one bit later
// and starts clocking.  The gap between slots is therefore the
// propagation from the old master to the new one (Eq. 1, D = downstream
// hops) plus those two bit times.  When the master keeps the role
// (D = 0) the slot boundary is seamless apart from the stop/detect bits.
#pragma once

#include "common/types.hpp"
#include "phy/ring_phy.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

class HandoverModel {
 public:
  explicit HandoverModel(const phy::RingPhy* phy) : phy_(phy) {}

  /// Gap between the end of a slot mastered by `from` and the start of the
  /// next slot mastered by `to`.
  [[nodiscard]] sim::Duration gap(NodeId from, NodeId to) const {
    const NodeId hops = phy_->hops_between(from, to);
    const auto& lp = phy_->link();
    sim::Duration g = lp.control_time(2 * lp.clock_stop_bits);
    if (hops > 0) g += phy_->handover_time(from, hops);
    return g;
  }

  /// Worst-case gap (Eq. 1 with D = N-1, plus stop/detect bits) -- the
  /// t_handover_max of Eq. 4 and Eq. 6.
  [[nodiscard]] sim::Duration max_gap() const {
    const auto& lp = phy_->link();
    return phy_->max_handover_time() +
           lp.control_time(2 * lp.clock_stop_bits);
  }

  /// Constant gap of the *simple* strategy (CC-FPR [9]): hand-over always
  /// to the next downstream node, D = 1.
  [[nodiscard]] sim::Duration round_robin_gap(NodeId from) const {
    const auto& lp = phy_->link();
    return phy_->handover_time(from, 1) +
           lp.control_time(2 * lp.clock_stop_bits);
  }

 private:
  const phy::RingPhy* phy_;  // non-owning; outlives the model
};

}  // namespace ccredf::core
