#include "core/priority.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace ccredf::core {

Priority LaxityMapper::map(const PriorityLayout& layout, TrafficClass cls,
                           std::int64_t laxity_slots) const {
  const Priority lo = layout.class_lo(cls);
  const Priority hi = layout.class_hi(cls);
  const std::int64_t clamped = std::max<std::int64_t>(laxity_slots, 0);
  const std::int64_t down = steps(clamped);
  const std::int64_t band = hi - lo;
  const std::int64_t level = hi - std::min(down, band);
  return static_cast<Priority>(level);
}

std::int64_t LogarithmicMapper::steps(std::int64_t laxity_slots) const {
  // floor(log2(1 + laxity)): 1+laxity in [2^k, 2^(k+1)) => k steps, so
  // laxity 0 => 0, 1..2 => 1, 3..6 => 2, 7..14 => 3, ... -- one level per
  // doubling, finest resolution near the deadline.
  // bit_width(v) - 1 == floor(log2(v)); the callers clamp laxity >= 0,
  // so 1 + laxity is always positive.  One instruction on the per-sample
  // hot path instead of a shift loop.
  return static_cast<std::int64_t>(
             std::bit_width(static_cast<std::uint64_t>(1 + laxity_slots))) -
         1;
}

}  // namespace ccredf::core
