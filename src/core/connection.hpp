// Logical real-time connections (paper §5-6).
//
// A connection is a periodic message stream: every P_i slots the source
// releases a message of e_i slots whose relative deadline equals the
// period (the paper's assumption in §5).  Connections are admitted and
// removed at run time through the admission test of Eq. 5-6.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

/// Which of the paper's service classes a connection record represents.
/// Hard-RT connections are the periodic guaranteed streams of §5-6; a
/// constant-bandwidth record is the admission-side shadow of a CBS
/// (core/cbs.hpp): size = budget Q, period = replenishment period T, so
/// the Eq. 5 utilisation test covers servers and connections uniformly.
enum class ServiceClass : std::uint8_t {
  kHardRealTime = 0,
  kConstantBandwidth = 1,
};

[[nodiscard]] constexpr const char* service_class_name(ServiceClass s) {
  switch (s) {
    case ServiceClass::kHardRealTime:
      return "hard-rt";
    case ServiceClass::kConstantBandwidth:
      return "cbs";
  }
  return "?";
}

struct ConnectionParams {
  NodeId source = kInvalidNode;
  NodeSet dests;
  /// Message size e_i in slots (>= 1).
  std::int64_t size_slots = 1;
  /// Period P_i in slots (>= size).
  std::int64_t period_slots = 1;
  /// Relative deadline in slots; the paper fixes D_i = P_i, which remains
  /// the default, but the framework accepts constrained deadlines too.
  std::int64_t deadline_slots = 0;  // 0 => equal to period
  /// Release offset of the first message, in slots.
  std::int64_t offset_slots = 0;
  /// Service class of the record (admission treats both alike; only the
  /// release machinery differs -- periodic vs server-paced).
  ServiceClass service = ServiceClass::kHardRealTime;

  [[nodiscard]] std::int64_t effective_deadline_slots() const {
    return deadline_slots == 0 ? period_slots : deadline_slots;
  }

  /// Utilisation e_i / P_i (Eq. 5 summand).
  [[nodiscard]] double utilisation() const {
    return static_cast<double>(size_slots) /
           static_cast<double>(period_slots);
  }

  void validate() const {
    CCREDF_EXPECT(size_slots >= 1, "connection: size must be >= 1 slot");
    CCREDF_EXPECT(period_slots >= size_slots,
                  "connection: period must be >= size");
    CCREDF_EXPECT(deadline_slots == 0 || deadline_slots >= size_slots,
                  "connection: deadline shorter than message size");
    CCREDF_EXPECT(offset_slots >= 0, "connection: negative offset");
    CCREDF_EXPECT(!dests.empty(), "connection: no destinations");
  }
};

/// An admitted connection (element of the set Ma, paper §6).
struct Connection {
  ConnectionId id = kNoConnection;
  ConnectionParams params;
  /// Time of admission.
  sim::TimePoint admitted;
  bool active = true;
};

}  // namespace ccredf::core
