#include "core/schedulability.hpp"

namespace ccredf::core {

SlotTiming::SlotTiming(const phy::RingPhy& phy, std::int64_t payload_bytes)
    : payload_bytes_(payload_bytes) {
  CCREDF_EXPECT(payload_bytes >= 1, "SlotTiming: payload must be >= 1 byte");
  const auto& lp = phy.link();
  t_slot_ = lp.data_time(payload_bytes);
  // Eq. 2: N nodes' passthrough plus one full ring propagation.
  t_minslot_ = lp.control_time(static_cast<std::int64_t>(phy.nodes()) *
                               lp.node_passthrough_bits) +
               phy.ring_delay();
  t_handover_max_ =
      phy.max_handover_time() +
      lp.control_time(2 * lp.clock_stop_bits);  // stop + detect silence
  CCREDF_EXPECT(t_slot_ >= t_minslot_,
                "SlotTiming: payload too small for Eq. 2 (collection phase "
                "does not fit the slot); increase payload_bytes");
}

std::int64_t SlotTiming::min_payload_bytes(const phy::RingPhy& phy) {
  const auto& lp = phy.link();
  const sim::Duration t_minslot =
      lp.control_time(static_cast<std::int64_t>(phy.nodes()) *
                      lp.node_passthrough_bits) +
      phy.ring_delay();
  const sim::Duration byte_time = lp.bit_time();
  // Round up to the next whole byte time.
  return (t_minslot.ps() + byte_time.ps() - 1) / byte_time.ps();
}

bool edf_feasible(std::span<const ConnectionParams> set, double u_max) {
  return total_utilisation(set) <= u_max;
}

double total_utilisation(std::span<const ConnectionParams> set) {
  double u = 0.0;
  for (const auto& c : set) u += c.utilisation();
  return u;
}

}  // namespace ccredf::core
