#include "core/arbitration.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace ccredf::core {

ArbitrationResult Arbiter::arbitrate(const std::vector<Request>& requests,
                                     NodeId current_master) const {
  CCREDF_EXPECT(requests.size() == topo_.nodes(),
                "Arbiter: need exactly one request per node");
  CCREDF_EXPECT(current_master < topo_.nodes(),
                "Arbiter: invalid current master");

  // Collect the actual requesters and sort them by (priority desc, index
  // asc).  Idle nodes (priority 0) sort after every requester anyway, so
  // skipping them up front is equivalent to the full sort that the master
  // conceptually performs -- and keeps the work stack-only.
  std::array<NodeId, kMaxNodes> order;
  std::size_t requesters = 0;
  for (NodeId i = 0; i < requests.size(); ++i) {
    if (requests[i].wants_slot()) order[requesters++] = i;
  }
  std::sort(order.begin(), order.begin() + requesters,
            [&](NodeId a, NodeId b) {
              return request_before(requests[a].priority, a,
                                    requests[b].priority, b);
            });

  ArbitrationResult result;
  if (requesters == 0) {
    // Nobody has anything to send: the current master keeps clocking and
    // no data flows next slot.
    result.packet.hp_node = current_master;
    result.next_master = current_master;
    return result;
  }

  const NodeId top = order[0];
  const NodeId next_master = top;
  const LinkId break_link = topo_.break_link(next_master);
  LinkSet taken;
  for (std::size_t k = 0; k < requesters; ++k) {
    const NodeId node = order[k];
    const Request& rq = requests[node];
    if (rq.links.intersects(taken)) continue;
    if (rq.links.contains(break_link)) continue;  // would cross clock break
    taken |= rq.links;
    result.packet.granted.insert(node);
    ++result.granted_count;
    if (!spatial_reuse_) break;  // analysis mode: single grant per slot
  }

  // Invariant (paper §2): the top-priority request is always granted --
  // its segment starts at the next master and spans <= N-1 links, so it
  // cannot contain the break link, and it is considered first.
  CCREDF_ASSERT(result.packet.granted.contains(top));

  result.packet.hp_node = next_master;
  result.next_master = next_master;
  result.granted_links = taken;
  return result;
}

}  // namespace ccredf::core
