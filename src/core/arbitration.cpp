#include "core/arbitration.hpp"

#include <array>

#include "common/error.hpp"

namespace ccredf::core {

ArbitrationResult Arbiter::arbitrate(const std::vector<Request>& requests,
                                     NodeId current_master) const {
  return arbitrate(requests, current_master,
                   NodeSet::first_n(static_cast<NodeId>(requests.size())));
}

ArbitrationResult Arbiter::arbitrate(const std::vector<Request>& requests,
                                     NodeId current_master,
                                     NodeSet candidates) const {
  CCREDF_EXPECT(requests.size() == topo_.nodes(),
                "Arbiter: need exactly one request per node");
  CCREDF_EXPECT(current_master < topo_.nodes(),
                "Arbiter: invalid current master");

  // Collect the actual requesters and sort them by (priority desc, index
  // asc).  Idle nodes (priority 0) sort after every requester anyway, so
  // skipping them up front is equivalent to the full sort that the master
  // conceptually performs -- and keeps the work stack-only.  NodeSet
  // iterates in ascending node order, so restricting the scan to the
  // caller's candidate superset visits the same requesters the full
  // index loop would.
  std::array<NodeId, kMaxNodes> order;
  std::size_t requesters = 0;
  for (const NodeId i : candidates) {
    if (requests[i].wants_slot()) order[requesters++] = i;
  }
  // Steady-state requester counts are tiny (a couple of nodes), where
  // an insertion sort beats std::sort's dispatch; request_before is a
  // total order (node index breaks every tie), so any correct sort
  // produces the same permutation.
  for (std::size_t k = 1; k < requesters; ++k) {
    const NodeId v = order[k];
    const Priority pv = requests[v].priority;
    std::size_t j = k;
    while (j > 0 &&
           request_before(pv, v, requests[order[j - 1]].priority,
                          order[j - 1])) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = v;
  }

  ArbitrationResult result;
  if (requesters == 0) {
    // Nobody has anything to send: the current master keeps clocking and
    // no data flows next slot.
    result.packet.hp_node = current_master;
    result.next_master = current_master;
    return result;
  }

  const NodeId top = order[0];
  const NodeId next_master = top;
  const LinkId break_link = topo_.break_link(next_master);
  LinkSet taken;
  for (std::size_t k = 0; k < requesters; ++k) {
    const NodeId node = order[k];
    const Request& rq = requests[node];
    if (rq.links.intersects(taken)) continue;
    if (rq.links.contains(break_link)) continue;  // would cross clock break
    taken |= rq.links;
    result.packet.granted.insert(node);
    ++result.granted_count;
    if (!spatial_reuse_) break;  // analysis mode: single grant per slot
  }

  // Invariant (paper §2): the top-priority request is always granted --
  // its segment starts at the next master and spans <= N-1 links, so it
  // cannot contain the break link, and it is considered first.
  CCREDF_ASSERT(result.packet.granted.contains(top));

  result.packet.hp_node = next_master;
  result.next_master = next_master;
  result.granted_links = taken;
  return result;
}

}  // namespace ccredf::core
