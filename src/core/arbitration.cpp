#include "core/arbitration.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ccredf::core {

ArbitrationResult Arbiter::arbitrate(const std::vector<Request>& requests,
                                     NodeId current_master) const {
  CCREDF_EXPECT(requests.size() == topo_.nodes(),
                "Arbiter: need exactly one request per node");
  CCREDF_EXPECT(current_master < topo_.nodes(),
                "Arbiter: invalid current master");

  // Sort node indices by (priority desc, index asc).
  std::vector<NodeId> order(requests.size());
  for (NodeId i = 0; i < requests.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return request_before(requests[a].priority, a, requests[b].priority, b);
  });

  ArbitrationResult result;
  const NodeId top = order.front();
  if (!requests[top].wants_slot()) {
    // Nobody has anything to send: the current master keeps clocking and
    // no data flows next slot.
    result.packet.hp_node = current_master;
    result.next_master = current_master;
    return result;
  }

  const NodeId next_master = top;
  const LinkId break_link = topo_.break_link(next_master);
  LinkSet taken;
  for (const NodeId node : order) {
    const Request& rq = requests[node];
    if (!rq.wants_slot()) break;  // sorted: the rest are idle too
    if (rq.links.intersects(taken)) continue;
    if (rq.links.contains(break_link)) continue;  // would cross clock break
    taken |= rq.links;
    result.packet.granted.insert(node);
    ++result.granted_count;
    if (!spatial_reuse_) break;  // analysis mode: single grant per slot
  }

  // Invariant (paper §2): the top-priority request is always granted --
  // its segment starts at the next master and spans <= N-1 links, so it
  // cannot contain the break link, and it is considered first.
  CCREDF_ASSERT(result.packet.granted.contains(top));

  result.packet.hp_node = next_master;
  result.next_master = next_master;
  result.granted_links = taken;
  return result;
}

}  // namespace ccredf::core
