#include "core/frames.hpp"

#include "common/error.hpp"

namespace ccredf::core {

namespace {
// Extracts the low `n` bits of a mask written MSB-first as node 0 first.
// We serialise mask fields node-0-first to match the figure's field order.
void write_mask(BitWriter& w, std::uint64_t mask, NodeId n) {
  for (NodeId i = 0; i < n; ++i) w.push_bit(((mask >> i) & 1u) != 0);
}

std::uint64_t read_mask(BitReader& r, NodeId n) {
  std::uint64_t mask = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (r.pop_bit()) mask |= std::uint64_t{1} << i;
  }
  return mask;
}
}  // namespace

FrameCodec::FrameCodec(NodeId nodes, PriorityLayout layout, bool with_acks,
                       bool with_crc, bool with_nacks)
    : n_(nodes), layout_(layout), with_acks_(with_acks),
      with_crc_(with_crc), with_nacks_(with_nacks),
      idx_bits_(index_bits(nodes)) {
  CCREDF_EXPECT(nodes >= 2 && nodes <= kMaxNodes,
                "FrameCodec: node count out of range");
  CCREDF_EXPECT(!with_nacks || with_acks,
                "FrameCodec: the NACK field rides on top of the ack field");
  layout_.validate();
}

std::int64_t FrameCodec::request_bits() const {
  // prio + links + dests [+ per-request CRC]
  return layout_.field_bits + 2ll * n_ + (with_crc_ ? 8 : 0);
}

std::int64_t FrameCodec::collection_bits() const {
  // start + N request records
  return 1 + static_cast<std::int64_t>(n_) * request_bits();
}

std::int64_t FrameCodec::distribution_bits() const {
  // start + result bits + hp index + optional ack bits + optional NACK
  // bits + optional CRC
  std::int64_t bits = 1 + n_ + idx_bits_;
  if (with_acks_) bits += n_;
  if (with_nacks_) bits += n_;
  if (with_crc_) bits += 8;
  return bits;
}

namespace {
void write_request_fields(BitWriter& w, const Request& rq,
                          const PriorityLayout& layout, NodeId n,
                          bool with_crc) {
  CCREDF_EXPECT(rq.priority <= layout.max_level(),
                "Request: priority exceeds field width");
  // A node with nothing to send must zero the other fields (paper §3).
  if (!rq.wants_slot()) {
    CCREDF_EXPECT(rq.links.empty() && rq.dests.empty(),
                  "Request: idle request must carry zero fields");
  }
  const std::size_t first = w.bit_count();
  w.write(rq.priority, layout.field_bits);
  write_mask(w, rq.links.mask(), n);
  write_mask(w, rq.dests.mask(), n);
  if (with_crc) {
    w.write(crc8_bits(w.bytes(), first, w.bit_count() - first), 8);
  }
}

Request read_request_fields(BitReader& r, const PriorityLayout& layout,
                            NodeId n) {
  Request rq;
  rq.priority = static_cast<Priority>(r.read(layout.field_bits));
  rq.links = LinkSet::from_mask(read_mask(r, n));
  rq.dests = NodeSet::from_mask(read_mask(r, n));
  return rq;
}
}  // namespace

FrameCodec::Encoded FrameCodec::encode(const CollectionPacket& p) const {
  CCREDF_EXPECT(p.requests.size() == n_,
                "CollectionPacket: must carry one request per node");
  BitWriter w;
  w.push_bit(true);  // start bit
  for (const Request& rq : p.requests) {
    write_request_fields(w, rq, layout_, n_, with_crc_);
  }
  return Encoded{w.bytes(), w.bit_count()};
}

FrameCodec::Encoded FrameCodec::encode_request(const Request& rq) const {
  BitWriter w;
  write_request_fields(w, rq, layout_, n_, with_crc_);
  return Encoded{w.bytes(), w.bit_count()};
}

FrameCodec::Encoded FrameCodec::encode(const DistributionPacket& p) const {
  CCREDF_EXPECT(p.hp_node < n_, "DistributionPacket: invalid hp-node index");
  CCREDF_EXPECT(p.has_acks == with_acks_,
                "DistributionPacket: ack field presence mismatch");
  CCREDF_EXPECT(p.has_nacks == with_nacks_,
                "DistributionPacket: NACK field presence mismatch");
  BitWriter w;
  w.push_bit(true);  // start bit
  write_mask(w, p.granted.mask(), n_);
  w.write(p.hp_node, idx_bits_);
  if (with_acks_) write_mask(w, p.acks.mask(), n_);
  if (with_nacks_) write_mask(w, p.nacks.mask(), n_);
  if (with_crc_) w.write(crc8_bits(w.bytes(), 0, w.bit_count()), 8);
  return Encoded{w.bytes(), w.bit_count()};
}

CollectionPacket FrameCodec::decode_collection(const Encoded& e) const {
  CCREDF_EXPECT(e.bit_count == static_cast<std::size_t>(collection_bits()),
                "CollectionPacket: wrong frame length");
  BitReader r(e.bytes, e.bit_count);
  CCREDF_EXPECT(r.pop_bit(), "CollectionPacket: missing start bit");
  CollectionPacket p;
  p.requests.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    const std::size_t first = e.bit_count - r.remaining();
    Request rq = read_request_fields(r, layout_, n_);
    if (with_crc_) {
      const auto crc = static_cast<std::uint8_t>(r.read(8));
      const std::size_t field_bits =
          static_cast<std::size_t>(request_bits()) - 8;
      CCREDF_EXPECT(crc == crc8_bits(e.bytes, first, field_bits),
                    "CollectionPacket: request CRC mismatch");
    }
    p.requests.push_back(rq);
  }
  return p;
}

DistributionPacket FrameCodec::decode_distribution(const Encoded& e) const {
  CCREDF_EXPECT(e.bit_count == static_cast<std::size_t>(distribution_bits()),
                "DistributionPacket: wrong frame length");
  BitReader r(e.bytes, e.bit_count);
  CCREDF_EXPECT(r.pop_bit(), "DistributionPacket: missing start bit");
  DistributionPacket p;
  p.granted = NodeSet::from_mask(read_mask(r, n_));
  p.hp_node = static_cast<NodeId>(r.read(idx_bits_));
  p.has_acks = with_acks_;
  if (with_acks_) p.acks = NodeSet::from_mask(read_mask(r, n_));
  p.has_nacks = with_nacks_;
  if (with_nacks_) p.nacks = NodeSet::from_mask(read_mask(r, n_));
  if (with_crc_) {
    const auto crc = static_cast<std::uint8_t>(r.read(8));
    CCREDF_EXPECT(crc == crc8_bits(e.bytes, 0, e.bit_count - 8),
                  "DistributionPacket: CRC mismatch");
  }
  return p;
}

FrameCodec::CheckedRequest FrameCodec::decode_request_checked(
    const Encoded& e, NodeId source) const {
  CheckedRequest out;
  if (e.bit_count != static_cast<std::size_t>(request_bits())) {
    out.reason = "wrong record length";
    return out;
  }
  BitReader r(e.bytes, e.bit_count);
  Request rq = read_request_fields(r, layout_, n_);
  if (with_crc_) {
    const auto crc = static_cast<std::uint8_t>(r.read(8));
    if (crc != crc8_bits(e.bytes, 0, e.bit_count - 8)) {
      out.reason = "CRC mismatch";
      return out;
    }
  }
  if (!rq.wants_slot()) {
    // Paper §3: an idle node zeroes every field, so a priority of 0 with
    // a non-zero reservation or destination field is corruption.
    if (!rq.links.empty() || !rq.dests.empty()) {
      out.reason = "idle request with non-zero fields";
      return out;
    }
  } else {
    if (rq.dests.empty()) {
      out.reason = "live request with empty destination field";
      return out;
    }
    if (rq.links.empty()) {
      out.reason = "live request with empty reservation field";
      return out;
    }
    if (rq.dests.contains(source)) {
      out.reason = "request addresses its own source";
      return out;
    }
    // The reservation field of a genuine request is fully determined by
    // (source, dests): the consecutive links from the source through its
    // furthest destination (ring::Segment).  Any receiver can recompute
    // it with modular arithmetic alone, so a mismatch is corruption.
    // This guard also protects the arbiter's central invariant -- a
    // forged reservation not anchored at its source could make the
    // winning requester ungrantable (its own clock-break link inside
    // its claimed segment), which a genuine request never is.
    NodeId span = 0;
    for (NodeId hop = 1; hop < n_; ++hop) {
      if (rq.dests.contains((source + hop) % n_)) span = hop;
    }
    std::uint64_t expected = 0;
    for (NodeId hop = 0; hop < span; ++hop) {
      expected |= std::uint64_t{1} << ((source + hop) % n_);
    }
    if (rq.links.mask() != expected) {
      out.reason = "reservation field inconsistent with destinations";
      return out;
    }
  }
  out.request = rq;
  out.ok = true;
  return out;
}

FrameCodec::CheckedDistribution FrameCodec::decode_distribution_checked(
    const Encoded& e) const {
  CheckedDistribution out;
  if (e.bit_count != static_cast<std::size_t>(distribution_bits())) {
    out.reason = "wrong frame length";
    return out;
  }
  BitReader r(e.bytes, e.bit_count);
  if (!r.pop_bit()) {
    out.reason = "missing start bit";
    return out;
  }
  DistributionPacket p;
  p.granted = NodeSet::from_mask(read_mask(r, n_));
  p.hp_node = static_cast<NodeId>(r.read(idx_bits_));
  p.has_acks = with_acks_;
  if (with_acks_) p.acks = NodeSet::from_mask(read_mask(r, n_));
  p.has_nacks = with_nacks_;
  if (with_nacks_) p.nacks = NodeSet::from_mask(read_mask(r, n_));
  if (with_crc_) {
    const auto crc = static_cast<std::uint8_t>(r.read(8));
    if (crc != crc8_bits(e.bytes, 0, e.bit_count - 8)) {
      out.reason = "CRC mismatch";
      return out;
    }
  }
  if (p.hp_node >= n_) {
    // The hp field is ceil(log2 N) bits wide, so for non-power-of-two
    // rings an out-of-range index is detectable without any CRC.
    out.reason = "hp-node index out of range";
    return out;
  }
  out.packet = p;
  out.ok = true;
  return out;
}

}  // namespace ccredf::core
