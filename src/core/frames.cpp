#include "core/frames.hpp"

#include "common/error.hpp"

namespace ccredf::core {

namespace {
// Extracts the low `n` bits of a mask written MSB-first as node 0 first.
// We serialise mask fields node-0-first to match the figure's field order.
void write_mask(BitWriter& w, std::uint64_t mask, NodeId n) {
  for (NodeId i = 0; i < n; ++i) w.push_bit(((mask >> i) & 1u) != 0);
}

std::uint64_t read_mask(BitReader& r, NodeId n) {
  std::uint64_t mask = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (r.pop_bit()) mask |= std::uint64_t{1} << i;
  }
  return mask;
}
}  // namespace

FrameCodec::FrameCodec(NodeId nodes, PriorityLayout layout, bool with_acks)
    : n_(nodes), layout_(layout), with_acks_(with_acks),
      idx_bits_(index_bits(nodes)) {
  CCREDF_EXPECT(nodes >= 2 && nodes <= kMaxNodes,
                "FrameCodec: node count out of range");
  layout_.validate();
}

std::int64_t FrameCodec::collection_bits() const {
  // start + N * (prio + links + dests)
  return 1 + static_cast<std::int64_t>(n_) *
                 (layout_.field_bits + 2ll * n_);
}

std::int64_t FrameCodec::distribution_bits() const {
  // start + result bits + hp index + optional ack bits
  std::int64_t bits = 1 + n_ + idx_bits_;
  if (with_acks_) bits += n_;
  return bits;
}

FrameCodec::Encoded FrameCodec::encode(const CollectionPacket& p) const {
  CCREDF_EXPECT(p.requests.size() == n_,
                "CollectionPacket: must carry one request per node");
  BitWriter w;
  w.push_bit(true);  // start bit
  for (const Request& rq : p.requests) {
    CCREDF_EXPECT(rq.priority <= layout_.max_level(),
                  "Request: priority exceeds field width");
    // A node with nothing to send must zero the other fields (paper §3).
    if (!rq.wants_slot()) {
      CCREDF_EXPECT(rq.links.empty() && rq.dests.empty(),
                    "Request: idle request must carry zero fields");
    }
    w.write(rq.priority, layout_.field_bits);
    write_mask(w, rq.links.mask(), n_);
    write_mask(w, rq.dests.mask(), n_);
  }
  return Encoded{w.bytes(), w.bit_count()};
}

FrameCodec::Encoded FrameCodec::encode(const DistributionPacket& p) const {
  CCREDF_EXPECT(p.hp_node < n_, "DistributionPacket: invalid hp-node index");
  CCREDF_EXPECT(p.has_acks == with_acks_,
                "DistributionPacket: ack field presence mismatch");
  BitWriter w;
  w.push_bit(true);  // start bit
  write_mask(w, p.granted.mask(), n_);
  w.write(p.hp_node, idx_bits_);
  if (with_acks_) write_mask(w, p.acks.mask(), n_);
  return Encoded{w.bytes(), w.bit_count()};
}

CollectionPacket FrameCodec::decode_collection(const Encoded& e) const {
  CCREDF_EXPECT(e.bit_count == static_cast<std::size_t>(collection_bits()),
                "CollectionPacket: wrong frame length");
  BitReader r(e.bytes, e.bit_count);
  CCREDF_EXPECT(r.pop_bit(), "CollectionPacket: missing start bit");
  CollectionPacket p;
  p.requests.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    Request rq;
    rq.priority = static_cast<Priority>(r.read(layout_.field_bits));
    rq.links = LinkSet::from_mask(read_mask(r, n_));
    rq.dests = NodeSet::from_mask(read_mask(r, n_));
    p.requests.push_back(rq);
  }
  return p;
}

DistributionPacket FrameCodec::decode_distribution(const Encoded& e) const {
  CCREDF_EXPECT(e.bit_count == static_cast<std::size_t>(distribution_bits()),
                "DistributionPacket: wrong frame length");
  BitReader r(e.bytes, e.bit_count);
  CCREDF_EXPECT(r.pop_bit(), "DistributionPacket: missing start bit");
  DistributionPacket p;
  p.granted = NodeSet::from_mask(read_mask(r, n_));
  p.hp_node = static_cast<NodeId>(r.read(idx_bits_));
  p.has_acks = with_acks_;
  if (with_acks_) p.acks = NodeSet::from_mask(read_mask(r, n_));
  return p;
}

}  // namespace ccredf::core
