// Online admission control for logical real-time connections (paper §6).
//
// A designated node solely handles addition and removal of connections.
// The test is the EDF utilisation bound of Eq. 5: the new connection is
// admitted iff U(Ma) + e/P <= U_max, with U_max from Eq. 6.  Connections
// are "well behaved": sources honour the agreed parameters (enforced by
// the traffic generators, checked by tests).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/connection.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

/// Which feasibility test guards admission.
enum class AdmissionPolicy {
  /// Eq. 5 verbatim: sum(e_i / P_i) <= U_max.  Exact for the paper's
  /// model where every relative deadline equals the period (§5).
  kUtilisation,
  /// Density test: sum(e_i / min(D_i, P_i)) <= U_max.  A sufficient
  /// (conservative) condition that stays safe when connections use
  /// constrained deadlines D_i < P_i -- an extension beyond the paper.
  kDensity,
};

class AdmissionController {
 public:
  explicit AdmissionController(
      double u_max, AdmissionPolicy policy = AdmissionPolicy::kUtilisation)
      : u_max_(u_max), policy_(policy) {}

  [[nodiscard]] AdmissionPolicy policy() const { return policy_; }

  /// The admission weight of one connection under the active policy.
  [[nodiscard]] double weight(const ConnectionParams& params) const;

  struct Decision {
    bool admitted = false;
    ConnectionId id = kNoConnection;
    /// Utilisation of the accepted set after the decision.
    double utilisation_after = 0.0;
  };

  /// Runs the admission test at time `now`; on success the connection
  /// enters the accepted set Ma and receives a fresh id.
  Decision request(const ConnectionParams& params, sim::TimePoint now);

  /// Admits WITHOUT the Eq. 5 bound test: the caller holds a stronger
  /// feasibility proof (the hypercycle planner's exact constructive
  /// schedule, core/hypercycle.hpp).  The connection still enters Ma
  /// and its weight still counts toward utilisation(), which may then
  /// legitimately exceed effective_u_max().
  Decision admit_unchecked(const ConnectionParams& params,
                           sim::TimePoint now);

  /// Removes a connection from Ma; returns false if unknown.
  bool release(ConnectionId id);

  [[nodiscard]] double u_max() const { return u_max_; }
  /// Degraded-mode capacity scaling in [0,1] (graceful degradation): a
  /// health monitor derates the admission bound when retransmission
  /// overhead eats into the schedulable capacity.  1 = full capacity.
  void set_capacity_factor(double factor);
  [[nodiscard]] double capacity_factor() const { return capacity_factor_; }
  /// The bound actually enforced: U_max scaled by the capacity factor.
  [[nodiscard]] double effective_u_max() const {
    return u_max_ * capacity_factor_;
  }
  [[nodiscard]] double utilisation() const { return utilisation_; }
  [[nodiscard]] std::size_t active_connections() const { return ma_.size(); }
  [[nodiscard]] const Connection* find(ConnectionId id) const;

  /// Snapshot of the accepted set (for analysis and reporting).
  [[nodiscard]] std::vector<Connection> snapshot() const;

  [[nodiscard]] std::int64_t requests_seen() const { return requests_; }
  [[nodiscard]] std::int64_t rejections() const { return rejections_; }

 private:
  double u_max_;
  double capacity_factor_ = 1.0;
  AdmissionPolicy policy_ = AdmissionPolicy::kUtilisation;
  double utilisation_ = 0.0;
  ConnectionId next_id_ = 1;
  std::unordered_map<ConnectionId, Connection> ma_;
  std::int64_t requests_ = 0;
  std::int64_t rejections_ = 0;
};

}  // namespace ccredf::core
