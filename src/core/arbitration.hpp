// The master's per-slot arbitration (paper §3).
//
// The master sorts the N collected requests by priority (ties broken by
// node index), names the highest-priority requester as next master, and
// greedily grants as many non-overlapping requests as possible (spatial
// reuse).  Because the next master is the top-priority requester and a
// segment spans at most N-1 links, the top request can never cross the
// clock break -- the paper's central claim -- and the arbiter enforces
// the break-link constraint for every *other* grant.
#pragma once

#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/frames.hpp"
#include "ring/topology.hpp"

namespace ccredf::core {

struct ArbitrationResult {
  /// The distribution-phase packet to broadcast.
  DistributionPacket packet;
  /// Convenience mirror of packet.hp_node.
  NodeId next_master = kInvalidNode;
  /// Number of requests granted this slot (0..N).
  int granted_count = 0;
  /// The union of links granted (diagnostics / tests).
  LinkSet granted_links;
};

class Arbiter {
 public:
  /// `spatial_reuse` off restricts grants to the single highest-priority
  /// request, the assumption under which the schedulability analysis of
  /// §5-6 is exact ("one message per slot can always be guaranteed").
  Arbiter(ring::RingTopology topo, bool spatial_reuse)
      : topo_(topo), spatial_reuse_(spatial_reuse) {}

  /// Sorted request evaluation for the coming slot.  `requests` holds one
  /// entry per node (idle nodes send priority 0).  `current_master` keeps
  /// the clock when nobody requests.
  [[nodiscard]] ArbitrationResult arbitrate(
      const std::vector<Request>& requests, NodeId current_master) const;

  /// Hot-path variant: `candidates` is any superset of the requesting
  /// nodes (every node outside it must be idle).  Scans only the set
  /// members instead of all N request records -- the slot engine passes
  /// its dirty-requester mask, which on a lightly loaded ring is a
  /// couple of bits.  Identical result to the full scan: set iteration
  /// is in ascending node order and idle members are skipped.
  [[nodiscard]] ArbitrationResult arbitrate(
      const std::vector<Request>& requests, NodeId current_master,
      NodeSet candidates) const;

  /// The deterministic request ordering used by the master: higher
  /// priority first, lower node index breaking ties (paper §3).
  [[nodiscard]] static bool request_before(Priority pa, NodeId na,
                                           Priority pb, NodeId nb) {
    if (pa != pb) return pa > pb;
    return na < nb;
  }

  [[nodiscard]] bool spatial_reuse() const { return spatial_reuse_; }
  [[nodiscard]] const ring::RingTopology& topology() const { return topo_; }

 private:
  ring::RingTopology topo_;
  bool spatial_reuse_;
};

}  // namespace ccredf::core
