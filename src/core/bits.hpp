// Bit-level serialisation for the control-channel packets.
//
// The control channel is bit-serial (one bit per clock tick), so the
// collection/distribution packets are defined as exact bit layouts
// (paper Fig. 4-5).  BitWriter/BitReader give MSB-first packing so the
// encoded frames are byte-for-byte testable and their length in bits is
// exactly the control-channel occupancy used in the timing model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace ccredf::core {

class BitWriter {
 public:
  /// Appends the low `width` bits of `value`, MSB first.
  void write(std::uint64_t value, unsigned width) {
    CCREDF_EXPECT(width <= 64, "BitWriter: width > 64");
    for (unsigned i = width; i > 0; --i) {
      push_bit(((value >> (i - 1)) & 1u) != 0);
    }
  }

  void push_bit(bool b) {
    const std::size_t byte = nbits_ / 8;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if (b) bytes_[byte] = static_cast<std::uint8_t>(
        bytes_[byte] | (0x80u >> (nbits_ % 8)));
    ++nbits_;
  }

  [[nodiscard]] std::size_t bit_count() const { return nbits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t nbits)
      : bytes_(bytes), nbits_(nbits) {}

  /// Reads `width` bits, MSB first.
  [[nodiscard]] std::uint64_t read(unsigned width) {
    CCREDF_EXPECT(width <= 64, "BitReader: width > 64");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i) {
      v = (v << 1) | (pop_bit() ? 1u : 0u);
    }
    return v;
  }

  [[nodiscard]] bool pop_bit() {
    CCREDF_EXPECT(pos_ < nbits_, "BitReader: read past end");
    const bool b =
        (bytes_[pos_ / 8] & (0x80u >> (pos_ % 8))) != 0;
    ++pos_;
    return b;
  }

  [[nodiscard]] std::size_t remaining() const { return nbits_ - pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t nbits_;
  std::size_t pos_ = 0;
};

/// Bit-serial CRC-8 (polynomial 0x07 = x^8 + x^2 + x + 1, init 0).
///
/// The control channel is bit-serial, so the frame-integrity extension
/// (FrameCodec with_crc) defines its checksum over the *bit* sequence of
/// a frame, not over padded bytes; a receiver clocks each arriving bit
/// through this register and compares against the trailing CRC field.
/// The polynomial detects every single-bit error and every burst of at
/// most 8 bits -- the error shapes a fibre-ribbon control link actually
/// produces.
class Crc8 {
 public:
  void push_bit(bool b) {
    const bool msb = (crc_ & 0x80u) != 0;
    crc_ = static_cast<std::uint8_t>(crc_ << 1);
    if (msb != b) crc_ ^= 0x07u;
  }

  [[nodiscard]] std::uint8_t value() const { return crc_; }

 private:
  std::uint8_t crc_ = 0;
};

/// CRC-8 over bits [first, first + nbits) of an MSB-first packed buffer
/// (the layout BitWriter produces).
[[nodiscard]] inline std::uint8_t crc8_bits(
    const std::vector<std::uint8_t>& bytes, std::size_t first,
    std::size_t nbits) {
  CCREDF_EXPECT((first + nbits + 7) / 8 <= bytes.size(),
                "crc8_bits: range past end of buffer");
  Crc8 c;
  for (std::size_t i = first; i < first + nbits; ++i) {
    c.push_bit((bytes[i / 8] & (0x80u >> (i % 8))) != 0);
  }
  return c.value();
}

/// ceil(log2(n)) for n >= 1 -- width of the hp-node index field (Fig. 5).
[[nodiscard]] constexpr unsigned index_bits(std::uint64_t n) {
  unsigned b = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++b;
  }
  return b == 0 ? 1 : b;
}

}  // namespace ccredf::core
