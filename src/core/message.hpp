// Messages: the unit a node queues and requests slots for.
//
// A message of size e occupies e slots; each granted slot moves one
// data-packet of the message one segment downstream.  Deadlines are
// absolute simulated times; NRT messages carry an infinite deadline.
// Destinations are a node set: one bit for unicast, several for multicast,
// all-but-source for broadcast (paper supports all three, §1).
#pragma once

#include <cstdint>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/priority.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

struct Message {
  MessageId id = 0;
  NodeId source = kInvalidNode;
  NodeSet dests;
  TrafficClass traffic_class = TrafficClass::kBestEffort;
  /// Total size in slots (>= 1).
  std::int64_t size_slots = 1;
  /// Slots still to transmit; the message leaves the queue at zero.
  std::int64_t remaining_slots = 1;
  /// Arrival at the source queue.
  sim::TimePoint arrival;
  /// Absolute deadline used for EDF ordering and the laxity mapping;
  /// TimePoint::infinity() for non-real-time traffic.
  sim::TimePoint deadline = sim::TimePoint::infinity();
  /// Owning logical real-time connection, or kNoConnection.
  ConnectionId connection = kNoConnection;
  /// Release index within the connection (0, 1, 2, ...).
  std::int64_t release_index = 0;
  /// Payload byte count, for throughput accounting (defaults to the full
  /// slots' worth; set by the sender for accounting only).
  std::int64_t payload_bytes = 0;

  [[nodiscard]] bool is_real_time() const {
    return traffic_class == TrafficClass::kRealTime;
  }

  /// Laxity in whole slots at time `now` with the given slot length;
  /// negative when the deadline has passed.
  [[nodiscard]] std::int64_t laxity_slots(sim::TimePoint now,
                                          sim::Duration slot) const {
    if (deadline == sim::TimePoint::infinity()) return INT64_MAX / 2;
    return (deadline - now).ps() / slot.ps();
  }
};

/// Delivery record emitted when the final slot of a message reaches its
/// destinations.
struct Delivery {
  MessageId id = 0;
  NodeId source = kInvalidNode;
  NodeSet dests;
  TrafficClass traffic_class = TrafficClass::kBestEffort;
  ConnectionId connection = kNoConnection;
  sim::TimePoint arrival;
  sim::TimePoint completed;
  sim::TimePoint deadline;
  std::int64_t size_slots = 0;

  [[nodiscard]] sim::Duration latency() const { return completed - arrival; }
  [[nodiscard]] bool met_deadline() const {
    return deadline == sim::TimePoint::infinity() || completed <= deadline;
  }
};

}  // namespace ccredf::core
